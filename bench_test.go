// Benchmarks regenerating every table and figure in the paper's evaluation
// (one benchmark per figure; see DESIGN.md §4 for the mapping), plus
// ablation benchmarks for the design choices DESIGN.md §5 calls out and
// micro-benchmarks of the hot substrates.
//
// Figure benchmarks run the experiment at a reduced corpus scale per
// iteration and report the headline median as a benchmark metric, so
// `go test -bench` both exercises the full pipeline and prints the
// reproduced numbers. cmd/vroom-bench runs the same experiments at the
// paper's full scale.
package vroom_test

import (
	"fmt"
	"testing"
	"time"

	"vroom"
	"vroom/internal/experiments"
	"vroom/internal/h2"
	"vroom/internal/obs"
	"vroom/internal/runner"
	"vroom/internal/webpage"
)

func benchOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.NewsSites, o.SportsSites, o.Top100Sites = 4, 4, 8
	return o
}

// benchFigure runs one experiment per iteration and reports its first
// series' median.
func benchFigure(b *testing.B, id string, metricUnit string) {
	b.Helper()
	o := benchOptions()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Registry[id](o)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil && len(last.Series) > 0 {
		for _, row := range last.Series {
			b.ReportMetric(row.Dist.Median(), sanitizeMetric(row.Label)+"-"+metricUnit)
		}
	}
}

func sanitizeMetric(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r == ' ' || r == ',' || r == '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkFig01_StatusQuoPLT(b *testing.B)     { benchFigure(b, "fig01", "s") }
func BenchmarkFig02_LowerBound(b *testing.B)       { benchFigure(b, "fig02", "s") }
func BenchmarkFig03_H2Adoption(b *testing.B)       { benchFigure(b, "fig03", "s") }
func BenchmarkFig04_CriticalPathWait(b *testing.B) { benchFigure(b, "fig04", "frac") }
func BenchmarkFig07_Persistence(b *testing.B)      { benchFigure(b, "fig07", "frac") }
func BenchmarkFig09_DeviceIoU(b *testing.B)        { benchFigure(b, "fig09", "iou") }
func BenchmarkFig11_ReceiptTimes(b *testing.B)     { benchFigure(b, "fig11", "s") }
func BenchmarkFig13_MainResult(b *testing.B)       { benchFigure(b, "fig13", "s") }
func BenchmarkFig14_Polaris(b *testing.B)          { benchFigure(b, "fig14", "s") }
func BenchmarkFig16_Discovery(b *testing.B)        { benchFigure(b, "fig16", "frac") }
func BenchmarkFig17_PrevLoadDeps(b *testing.B)     { benchFigure(b, "fig17", "s") }
func BenchmarkFig18_PushOnly(b *testing.B)         { benchFigure(b, "fig18", "s") }
func BenchmarkFig19_Scheduling(b *testing.B)       { benchFigure(b, "fig19", "s") }
func BenchmarkFig20_WarmCache(b *testing.B)        { benchFigure(b, "fig20", "s") }
func BenchmarkFig21_ResolverAccuracy(b *testing.B) { benchFigure(b, "fig21", "frac") }

// BenchmarkExt01_TemplateHints measures the §7 scalability extension:
// per-page-type template hints for pages the server never crawled.
func BenchmarkExt01_TemplateHints(b *testing.B) { benchFigure(b, "ext01", "frac") }

// BenchmarkOnlineParseOverhead measures the server-side on-the-fly HTML
// analysis the paper reports at ~100 ms median for large pages (§4.1.2) —
// here as pure parser throughput over generated root documents.
func BenchmarkOnlineParseOverhead(b *testing.B) {
	site := vroom.NewSite("parsebench", vroom.CategoryNews, 2)
	sn := site.Snapshot(time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC), vroom.Profile{}, 1)
	root := sn.RootResource()
	b.SetBytes(int64(len(root.Body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refs := webpage.ExtractRefs(root)
		if len(refs) == 0 {
			b.Fatal("no refs")
		}
	}
}

// Ablation: Vroom with and without request-order response serialization
// (§5.1). The metric is median PLT over a small corpus.
func BenchmarkAblation_ResponseOrdering(b *testing.B) {
	for _, pol := range []runner.Policy{runner.Vroom, runner.VroomNoSerialize} {
		pol := pol
		b.Run(string(pol), func(b *testing.B) {
			benchPolicy(b, pol)
		})
	}
}

// Ablation: excluding iframe-derived dependencies from hints (§4.2) versus
// hinting them (stale personalized content, wasted fetches).
func BenchmarkAblation_IframeExclusion(b *testing.B) {
	for _, pol := range []runner.Policy{runner.Vroom, runner.VroomIframeDeps} {
		pol := pol
		b.Run(string(pol), func(b *testing.B) {
			benchPolicy(b, pol)
		})
	}
}

func benchPolicy(b *testing.B, pol runner.Policy) {
	b.Helper()
	sites := make([]*vroom.Site, 4)
	for i := range sites {
		sites[i] = vroom.NewSite(fmt.Sprintf("ablation%d", i), vroom.CategoryNews, int64(300+i))
	}
	var plt time.Duration
	var waste int64
	for i := 0; i < b.N; i++ {
		plt, waste = 0, 0
		for _, s := range sites {
			// A real user (non-zero UserID) so personalized iframe
			// content differs from the server crawler's view.
			res, err := runner.Run(s, pol, runner.Options{Nonce: 1,
				Profile: webpage.Profile{Device: webpage.PhoneSmall, UserID: 7}})
			if err != nil {
				b.Fatal(err)
			}
			plt += res.PLT
			waste += res.WastedBytes
		}
	}
	b.ReportMetric(plt.Seconds()/float64(len(sites)), "mean-plt-s")
	b.ReportMetric(float64(waste)/1024/float64(len(sites)), "wasted-KB")
}

// Micro-benchmarks of the substrates.

func BenchmarkHPACKEncodeDecode(b *testing.B) {
	fields := []h2.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/img/photo12-ab34cd56ef.jpg"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "img.dailynews00.com"},
		{Name: "link", Value: "<https://static.dailynews00.com/js/app0.js>; rel=preload"},
		{Name: "x-unimportant", Value: "https://img.dailynews00.com/img/photo1.jpg"},
	}
	enc := h2.NewHPACKEncoder()
	dec := h2.NewHPACKDecoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := enc.Encode(nil, fields)
		if _, err := dec.Decode(block); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotGeneration(b *testing.B) {
	site := vroom.NewSite("genbench", vroom.CategoryNews, 3)
	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := site.Snapshot(at, vroom.Profile{}, uint64(i))
		if sn.Len() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkSimulatedVroomLoad(b *testing.B) {
	site := vroom.NewSite("loadbench", vroom.CategoryNews, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vroom.LoadPage(site, vroom.PolicyVroom, vroom.LoadOptions{Nonce: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerOverhead measures the cost the observability layer adds to
// a full simulated load: "disabled" is the nil-tracer fast path every normal
// experiment runs on (must stay within ~2% of an untraced load), "recording"
// pays for event capture into an in-memory recording.
func BenchmarkTracerOverhead(b *testing.B) {
	site := vroom.NewSite("tracebench", vroom.CategoryNews, 6)
	opts := func(i int) runner.Options {
		return runner.Options{Nonce: uint64(i + 1),
			Profile: webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}}
	}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(site, runner.Vroom, opts(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recording", func(b *testing.B) {
		var events int
		for i := 0; i < b.N; i++ {
			o := opts(i)
			o.Trace = &obs.Recording{}
			if _, err := runner.Run(site, runner.Vroom, o); err != nil {
				b.Fatal(err)
			}
			events = o.Trace.Len()
		}
		b.ReportMetric(float64(events), "events")
	})
}

func BenchmarkResolverTraining(b *testing.B) {
	site := vroom.NewSite("trainbench", vroom.CategoryNews, 5)
	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := vroom.NewResolver(vroom.DefaultResolverConfig())
		r.Train(site, at, vroom.DevicePhoneSmall)
	}
}
