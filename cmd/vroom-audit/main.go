// vroom-audit distills a load run's observability exhaust into a
// per-origin hint-efficacy report: precision, recall, wasted push bytes,
// push lead time, and hint-table staleness per tenant, plus the server's
// runtime vitals, cross-checked against the storm's merged trace and
// flight-recorder dumps.
//
// Usage, offline (the usual CI shape — vroom-load wrote the inputs):
//
//	vroom-audit -scrapes storm-scrapes.json -trace storm.json \
//	    -flight-dir flight/ -json-out audit.json
//
// or live, against a running vroom-server:
//
//	vroom-audit -scrape http://127.0.0.1:9090/metrics
//
// With -bench the efficacy block is also folded into an existing
// vroom-bench/v1 artifact's Server stats (in place, or to -bench-out),
// so vroom-benchdiff can gate on precision/recall drift like any other
// figure.
//
// Exit status: 0 on success; 1 when no usable scrape was found, when an
// input failed to parse, or when a -min-precision / -min-recall gate
// failed.
package main

import (
	"flag"
	"fmt"
	"os"

	"vroom/internal/audit"
	"vroom/internal/benchfmt"
	"vroom/internal/loadgen"
)

func main() {
	var (
		scrapesIn  = flag.String("scrapes", "", "scrape-series file written by vroom-load -scrape-out")
		scrapeURL  = flag.String("scrape", "", "live server /metrics URL to scrape once instead")
		traceIn    = flag.String("trace", "", "merged Perfetto storm trace (vroom-load -trace-out)")
		flightDir  = flag.String("flight-dir", "", "flight-recorder dump directory (vroom-load -flight-dir)")
		jsonOut    = flag.String("json-out", "", "write the vroom-audit/v1 report JSON here")
		benchIn    = flag.String("bench", "", "vroom-bench/v1 artifact whose Server block gets the efficacy fields folded in")
		benchOut   = flag.String("bench-out", "", "write the updated artifact here (default: overwrite -bench)")
		top        = flag.Int("top", 20, "per-origin rows to print (0 = all)")
		minPrec    = flag.Float64("min-precision", 0, "fail unless aggregate hint precision reaches this")
		minRecall  = flag.Float64("min-recall", 0, "fail unless aggregate hint recall reaches this")
		quiet      = flag.Bool("q", false, "suppress the terminal table")
		requireAcc = flag.Bool("require-accounting", false, "fail unless the scrape carries per-origin hint-quality series")
	)
	flag.Parse()

	points, err := collect(*scrapesIn, *scrapeURL)
	if err != nil {
		fatal(err)
	}
	rep := audit.Summarize(points)
	if loadgen.Last(points) == nil {
		fatal(fmt.Errorf("no usable scrape among %d point(s) (%d gapped)", rep.Scrapes, rep.ScrapeGaps))
	}
	if *traceIn != "" {
		if err := rep.AddTrace(*traceIn); err != nil {
			fatal(err)
		}
	}
	if *flightDir != "" {
		if err := rep.AddFlightDir(*flightDir); err != nil {
			fatal(err)
		}
	}

	if !*quiet {
		rep.Render(os.Stdout, *top)
	}
	if *jsonOut != "" {
		if err := rep.Save(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Printf("audit: wrote %s\n", *jsonOut)
	}
	if *benchIn != "" {
		if err := foldBench(rep, *benchIn, *benchOut); err != nil {
			fatal(err)
		}
	}

	if *requireAcc && len(rep.Origins) == 0 {
		fatal(fmt.Errorf("scrape carries no per-origin hint-quality series (server running without accounting?)"))
	}
	if *minPrec > 0 && rep.Totals.Precision < *minPrec {
		fatal(fmt.Errorf("hint precision %.3f below gate %.3f", rep.Totals.Precision, *minPrec))
	}
	if *minRecall > 0 && rep.Totals.Recall < *minRecall {
		fatal(fmt.Errorf("hint recall %.3f below gate %.3f", rep.Totals.Recall, *minRecall))
	}
}

// collect loads the scrape series from a file, or takes one live scrape.
func collect(path, url string) ([]loadgen.ScrapePoint, error) {
	switch {
	case path != "" && url != "":
		return nil, fmt.Errorf("give either -scrapes or -scrape, not both")
	case path != "":
		return loadgen.LoadSeries(path)
	case url != "":
		ss := loadgen.StartScrapes(url, 0)
		return ss.Stop(), nil // Stop takes the one (final) scrape
	default:
		return nil, fmt.Errorf("one of -scrapes or -scrape is required")
	}
}

// foldBench stamps the report into every Server block of the artifact.
func foldBench(rep *audit.Report, in, out string) error {
	f, err := benchfmt.Load(in)
	if err != nil {
		return err
	}
	n := 0
	for i := range f.Figures {
		if f.Figures[i].Server != nil {
			rep.FoldInto(f.Figures[i].Server)
			n++
		}
	}
	if n == 0 {
		return fmt.Errorf("%s: no figure carries a Server block to fold into", in)
	}
	if out == "" {
		out = in
	}
	if err := benchfmt.Save(out, f); err != nil {
		return err
	}
	fmt.Printf("audit: folded efficacy into %d Server block(s) of %s\n", n, out)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vroom-audit:", err)
	os.Exit(1)
}
