// vroom-bench regenerates the paper's tables and figures from the
// simulated corpus.
//
// Usage:
//
//	vroom-bench [-fig all|fig01,...] [-scale quick|half|full] [-seed N] [-workers N]
//	vroom-bench -scale quick -json-out BENCH.json   # machine-readable artifact
//
// With -json-out the run also writes a schema-versioned JSON artifact
// (internal/benchfmt) carrying every figure's series percentiles plus
// execution telemetry — worker-pool utilization and training-cache hit
// rates — for cmd/vroom-benchdiff to gate CI on.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vroom/internal/benchfmt"
	"vroom/internal/experiments"
	"vroom/internal/faults"
	"vroom/internal/runner"
)

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated figure ids, or 'all' (see -list)")
		scale   = flag.String("scale", "half", "corpus scale: quick (3+3 sites), half (15+15), full (50+50, the paper's)")
		seed    = flag.Int64("seed", 2017, "corpus seed")
		regimeS = flag.String("faults", "none", "fault regime applied to every measured load: none, mild, or severe (seeded, reproducible)")
		workers = flag.Int("workers", 0, "concurrent site workers per figure (0 = GOMAXPROCS, 1 = serial); any count produces identical tables")
		list    = flag.Bool("list", false, "list figure ids and exit")
		jsonOut = flag.String("json-out", "", "write a machine-readable benchmark artifact (vroom-benchdiff input) to this path")
		gobench = flag.String("gobench-in", "", "embed `go test -bench` output from this file into the -json-out artifact (informational)")
	)
	flag.Parse()

	regime, err := faults.ParseRegime(*regimeS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	o := experiments.DefaultOptions()
	o.Seed = *seed
	o.FaultRegime = regime
	o.Workers = *workers
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	switch *scale {
	case "quick":
		o.NewsSites, o.SportsSites, o.Top100Sites = 3, 3, 6
		o.LoadsPerSite = 1
	case "half":
		o.NewsSites, o.SportsSites, o.Top100Sites = 15, 15, 30
		o.LoadsPerSite = 1
	case "full":
		// The paper's scale: top 50 News + top 50 Sports, Alexa top 100.
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := experiments.IDs()
	if *figs != "all" {
		ids = strings.Split(*figs, ",")
	}
	artifact := &benchfmt.File{
		Scale: *scale, Seed: *seed, Faults: regime.String(), Workers: o.Workers,
	}
	start := time.Now()
	for _, id := range ids {
		run, ok := experiments.Registry[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (use -list)\n", id)
			os.Exit(2)
		}
		// Per-figure caches and pool accounting so the artifact attributes
		// cache effectiveness and utilization to the figure that earned it.
		caches := runner.NewCaches()
		experiments.ResetPoolStats()
		t0 := time.Now()
		res, err := run(o.WithCaches(caches))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(t0)
		fmt.Println(res.Text)
		fmt.Printf("  [%s completed in %.1fs]\n\n", id, elapsed.Seconds())
		artifact.Figures = append(artifact.Figures, figureArtifact(res, elapsed, o.Workers, caches))
	}
	artifact.ElapsedMs = time.Since(start).Seconds() * 1000
	fmt.Printf("all done in %.1fs (scale=%s, seed=%d, workers=%d)\n", time.Since(start).Seconds(), *scale, *seed, o.Workers)

	if *jsonOut != "" {
		if *gobench != "" {
			b, err := os.ReadFile(*gobench)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			artifact.GoBench = benchfmt.ParseGoBench(string(b))
		}
		if err := benchfmt.Save(*jsonOut, artifact); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s, %d figures)\n", *jsonOut, benchfmt.Schema, len(artifact.Figures))
	}
}

// figureArtifact distills one figure result into its artifact entry.
func figureArtifact(res *experiments.Result, elapsed time.Duration, workers int, caches *runner.Caches) benchfmt.Figure {
	fig := benchfmt.Figure{
		ID: res.ID, Title: res.Title, Direction: benchfmt.DirectionFor(res.Title),
		ElapsedMs: elapsed.Seconds() * 1000, Notes: res.Notes,
	}
	for _, row := range res.Series {
		fig.Series = append(fig.Series, benchfmt.Series{
			Label: row.Label, N: row.Dist.N(), Mean: row.Dist.Mean(),
			P25: row.Dist.Percentile(25), P50: row.Dist.Median(),
			P75: row.Dist.Percentile(75), P95: row.Dist.Percentile(95),
		})
	}
	ps := experiments.ReadPoolStats()
	fig.Pool = &benchfmt.PoolStats{
		Workers:     workers,
		BusyMs:      ps.Busy.Seconds() * 1000,
		CapacityMs:  ps.Capacity.Seconds() * 1000,
		Utilization: ps.Utilization(),
		Sites:       ps.Sites,
	}
	cs := caches.Stats()
	fig.Cache = &benchfmt.CacheStats{
		TrainingHits: cs.TrainingHits, TrainingMisses: cs.TrainingMisses,
		PolarisHits: cs.PolarisHits, PolarisMisses: cs.PolarisMisses,
		SnapshotHits: cs.SnapshotHits, SnapshotMisses: cs.SnapshotMisses,
	}
	return fig
}
