// vroom-bench regenerates the paper's tables and figures from the
// simulated corpus.
//
// Usage:
//
//	vroom-bench [-fig all|fig01,...] [-scale quick|half|full] [-seed N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vroom/internal/experiments"
	"vroom/internal/faults"
)

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated figure ids, or 'all' (see -list)")
		scale   = flag.String("scale", "half", "corpus scale: quick (3+3 sites), half (15+15), full (50+50, the paper's)")
		seed    = flag.Int64("seed", 2017, "corpus seed")
		regimeS = flag.String("faults", "none", "fault regime applied to every measured load: none, mild, or severe (seeded, reproducible)")
		workers = flag.Int("workers", 0, "concurrent site workers per figure (0 = GOMAXPROCS, 1 = serial); any count produces identical tables")
		list    = flag.Bool("list", false, "list figure ids and exit")
	)
	flag.Parse()

	regime, err := faults.ParseRegime(*regimeS)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	o := experiments.DefaultOptions()
	o.Seed = *seed
	o.FaultRegime = regime
	o.Workers = *workers
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	switch *scale {
	case "quick":
		o.NewsSites, o.SportsSites, o.Top100Sites = 3, 3, 6
		o.LoadsPerSite = 1
	case "half":
		o.NewsSites, o.SportsSites, o.Top100Sites = 15, 15, 30
		o.LoadsPerSite = 1
	case "full":
		// The paper's scale: top 50 News + top 50 Sports, Alexa top 100.
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := experiments.IDs()
	if *figs != "all" {
		ids = strings.Split(*figs, ",")
	}
	start := time.Now()
	for _, id := range ids {
		run, ok := experiments.Registry[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (use -list)\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		res, err := run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Text)
		fmt.Printf("  [%s completed in %.1fs]\n\n", id, time.Since(t0).Seconds())
	}
	fmt.Printf("all done in %.1fs (scale=%s, seed=%d, workers=%d)\n", time.Since(start).Seconds(), *scale, *seed, o.Workers)
}
