// vroom-benchdiff compares two vroom-bench JSON artifacts and fails on
// performance regressions, so CI can gate on the committed baseline.
//
// Usage:
//
//	vroom-benchdiff [-threshold 0.10] [-all] baseline.json candidate.json
//
// Every series median in the baseline is matched by figure id and label in
// the candidate and compared relative to the figure's better-direction
// (recorded in the artifact at write time). Medians that move past the
// threshold in the worse direction — and figures or series the candidate
// lost entirely — are regressions: they are listed and the exit status is 1.
// Exit 0 means no regression; 2 means bad usage or unreadable artifacts.
package main

import (
	"flag"
	"fmt"
	"os"

	"vroom/internal/benchfmt"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.10, "relative median drift tolerated before a series counts as regressed")
		all       = flag.Bool("all", false, "print every compared series, not just regressions")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: vroom-benchdiff [-threshold 0.10] [-all] baseline.json candidate.json")
		os.Exit(2)
	}
	base, err := benchfmt.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cand, err := benchfmt.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	deltas, err := benchfmt.Compare(base, cand, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *all {
		fmt.Print(benchfmt.Report(deltas))
	}
	regs := benchfmt.Regressions(deltas)
	if len(regs) > 0 {
		fmt.Printf("%d of %d series regressed past %.0f%%:\n", len(regs), len(deltas), *threshold*100)
		fmt.Print(benchfmt.Report(regs))
		os.Exit(1)
	}
	fmt.Printf("no regressions across %d series (threshold %.0f%%)\n", len(deltas), *threshold*100)
}
