// vroom-client loads a page from a vroom-server over real HTTP/2, using
// either Vroom's staged request scheduler or baseline fetch-on-discovery,
// and reports per-resource timings.
//
// Usage:
//
//	vroom-client -server 127.0.0.1:8443 -root https://www.dailynews00.com/ [-staged=false]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"

	"vroom/internal/h1"
	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/wire"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:8443", "vroom-server address")
		rootRaw = flag.String("root", "", "root page URL (as recorded in the archive)")
		staged  = flag.Bool("staged", true, "use Vroom's staged scheduler")
		proto   = flag.String("proto", "h2", "wire protocol: h2 or h1")
		verbose = flag.Bool("v", false, "print every fetch")
	)
	flag.Parse()
	if *rootRaw == "" {
		fmt.Fprintln(os.Stderr, "need -root")
		os.Exit(2)
	}
	root, err := urlutil.Parse(*rootRaw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	c := &wire.Client{Staged: *staged}
	if *proto == "h1" {
		c.DialOrigin = func(origin string) (wire.OriginConn, error) {
			u, err := urlutil.Parse(origin + "/")
			if err != nil {
				return nil, err
			}
			return &h1.Pool{Authority: u.Host, Dial: func() (net.Conn, error) { return net.Dial("tcp", *server) }}, nil
		}
	} else {
		c.Dial = func(string) (net.Conn, error) { return net.Dial("tcp", *server) }
	}
	rep, err := c.LoadPage(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sort.Slice(rep.Fetches, func(i, j int) bool { return rep.Fetches[i].Done.Before(rep.Fetches[j].Done) })
	if *verbose {
		for _, f := range rep.Fetches {
			mark := " "
			if f.Pushed {
				mark = "P"
			}
			fmt.Printf("%s %-4s %7dB %8.1fms  %s\n", mark, prioName(f.Priority), f.Bytes,
				f.Done.Sub(rep.Started).Seconds()*1000, f.URL)
		}
	}
	fmt.Printf("loaded %s: %d resources, %d pushed, %.1f KB, %.0f ms (staged=%v)\n",
		rep.Root, len(rep.Fetches), rep.Pushed, float64(rep.Bytes)/1024,
		rep.Total().Seconds()*1000, *staged)
}

func prioName(p hints.Priority) string {
	switch p {
	case hints.High:
		return "high"
	case hints.Semi:
		return "semi"
	default:
		return "low"
	}
}
