// vroom-client loads a page from a vroom-server over real HTTP/2, using
// either Vroom's staged request scheduler or baseline fetch-on-discovery,
// and reports per-resource timings.
//
// Usage:
//
//	vroom-client -server 127.0.0.1:8443 -root https://www.dailynews00.com/ [-staged=false]
//	vroom-client -root ... -faults severe -fault-seed 7   # inject wire faults
//
// With -faults the client's dials pass through a seeded netem fault shim
// that injects origin outages, brownout first-byte delays, and per-connection
// resets/stalls/truncation. The load still completes: failed fetches are
// reported with a typed error kind and retry count instead of aborting the
// page.
//
// Observability:
//
//	vroom-client -root ... -trace load.json       # Perfetto trace of the load
//	vroom-client -root ... -metrics-out m.json    # metrics registry dump
//
// -trace records wall-clock spans for every phase of the load (dials,
// retries, backoff waits, header/body transfer, pushes, injected faults)
// into a Chrome trace-event file that chrome://tracing or ui.perfetto.dev
// opens directly. -metrics-out dumps the client's metric registry
// (counters, gauges, latency histograms) as JSON after the load.
//
// With -trace-propagate the client mints a per-load trace ID and sends it
// (plus a per-fetch span ID) in the vroom-trace request header; a server
// running with -trace adopts it. -trace-scrape then fetches the server's
// /trace recording after the load and merges it (tracks prefixed "srv:")
// into the -trace file, joined to the client's fetches by flow events.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"vroom/internal/faults"
	"vroom/internal/h1"
	"vroom/internal/hints"
	"vroom/internal/netem"
	"vroom/internal/obs"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/wire"
)

func main() {
	var (
		server     = flag.String("server", "127.0.0.1:8443", "vroom-server address")
		rootRaw    = flag.String("root", "", "root page URL (as recorded in the archive)")
		staged     = flag.Bool("staged", true, "use Vroom's staged scheduler")
		proto      = flag.String("proto", "h2", "wire protocol: h2 or h1")
		verbose    = flag.Bool("v", false, "print every fetch")
		faultsRaw  = flag.String("faults", "none", "wire fault regime injected on dials: none, mild, or severe")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the fault plan (same seed => same injected faults)")
		dialTO     = flag.Duration("dial-timeout", 10*time.Second, "per-connection dial timeout")
		headerTO   = flag.Duration("header-timeout", 5*time.Second, "per-request response-header timeout")
		stallTO    = flag.Duration("stall-timeout", 5*time.Second, "per-request body-progress stall timeout")
		deadline   = flag.Duration("deadline", 2*time.Minute, "whole-load deadline; a partial report is returned on expiry")
		retries    = flag.Int("retries", 3, "max attempts per fetch (1 disables retries)")
		traceOut   = flag.String("trace", "", "write a Perfetto (Chrome trace-event) trace of the load to this path")
		propagate  = flag.Bool("trace-propagate", false, "send a per-load trace context in the vroom-trace header")
		traceScr   = flag.String("trace-scrape", "", "server /trace URL; its recording is merged (tracks prefixed srv:) into -trace")
		metricsOut = flag.String("metrics-out", "", "write the client metric registry as JSON to this path after the load")
	)
	flag.Parse()
	if *rootRaw == "" {
		fmt.Fprintln(os.Stderr, "need -root")
		os.Exit(2)
	}
	root, err := urlutil.Parse(*rootRaw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	regime, err := faults.ParseRegime(*faultsRaw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var (
		tr  *obs.Tracer
		rec *obs.LiveRecording
		reg *telemetry.Registry
	)
	if *traceOut != "" {
		rec = &obs.LiveRecording{Start: time.Now()}
		tr = obs.NewWall(rec)
	}
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
	}

	dial := func() (net.Conn, error) { return net.Dial("tcp", *server) }
	originDial := func(origin string) (net.Conn, error) { return dial() }
	if regime != faults.RegimeNone {
		plan := faults.New(*faultSeed, faults.RegimeConfig(regime))
		plan.ExemptURL(root)
		shim := netem.NewFaultShim(plan)
		shim.Trace = tr
		originDial = func(origin string) (net.Conn, error) { return shim.Dial(origin, dial) }
	}

	c := &wire.Client{
		Staged:        *staged,
		DialTimeout:   *dialTO,
		HeaderTimeout: *headerTO,
		StallTimeout:  *stallTO,
		LoadDeadline:  *deadline,
		Retry:         wire.RetryPolicy{MaxAttempts: *retries},
		Trace:         tr,
		Propagate:     *propagate,
		Metrics:       reg,
	}
	if *proto == "h1" {
		c.DialOrigin = func(origin string) (wire.OriginConn, error) {
			u, err := urlutil.Parse(origin + "/")
			if err != nil {
				return nil, err
			}
			return &h1.Pool{Authority: u.Host, Trace: tr, Metrics: reg,
				Dial: func() (net.Conn, error) { return originDial(origin) }}, nil
		}
	} else {
		c.Dial = originDial
	}
	rep, err := c.LoadPage(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if rec != nil {
		snap := rec.Snapshot()
		if *traceScr != "" {
			srvRec, err := scrapeTrace(*traceScr)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			snap = obs.Merge(snap, obs.PrefixTracks(srvRec, "srv:"))
		}
		if err := writeTrace(*traceOut, snap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (%d events)\n", *traceOut, len(snap.Events))
	}
	if reg != nil {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics: %s\n", *metricsOut)
	}

	sort.Slice(rep.Fetches, func(i, j int) bool { return rep.Fetches[i].Done.Before(rep.Fetches[j].Done) })
	if *verbose {
		for _, f := range rep.Fetches {
			mark := " "
			if f.Pushed {
				mark = "P"
			}
			if f.Failed() {
				mark = "!"
			}
			fmt.Printf("%s %-4s %7dB %8.1fms  %s\n", mark, prioName(f.Priority), f.Bytes,
				f.Done.Sub(rep.Started).Seconds()*1000, f.URL)
		}
	}
	for _, f := range rep.Fetches {
		if f.Failed() {
			fmt.Printf("failed %-15s retries=%d  %s  (%s)\n", f.ErrKind, f.Retries, f.URL, f.Err)
		}
	}
	fmt.Printf("loaded %s: %d resources (%d failed, %d retries), %d pushed, %.1f KB, %.0f ms (staged=%v)\n",
		rep.Root, len(rep.Fetches), rep.Failed, rep.Retries, rep.Pushed, float64(rep.Bytes)/1024,
		rep.Total().Seconds()*1000, *staged)
	if rep.DeadlineHit {
		fmt.Printf("load deadline %v hit: report is partial\n", *deadline)
	}
}

// writeTrace exports the recorded load as a Perfetto file, validating the
// JSON before it lands so a broken trace never reaches chrome://tracing.
func writeTrace(path string, snap *obs.Recording) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WritePerfetto(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return obs.CheckPerfetto(data)
}

// scrapeTrace fetches a /trace endpoint and parses its vroom-events body.
func scrapeTrace(url string) (*obs.Recording, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("trace scrape %s: status %d", url, resp.StatusCode)
	}
	return obs.ReadEvents(resp.Body)
}

// writeMetrics dumps the registry as JSON.
func writeMetrics(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func prioName(p hints.Priority) string {
	switch p {
	case hints.High:
		return "high"
	case hints.Semi:
		return "semi"
	default:
		return "low"
	}
}
