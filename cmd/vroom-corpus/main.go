// vroom-corpus generates and inspects the synthetic page corpus, and
// records pages into replay archives for the wire-level tools.
//
// Usage:
//
//	vroom-corpus -stats                         # corpus statistics
//	vroom-corpus -record out.json -site news03  # record one page
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vroom/internal/metrics"
	"vroom/internal/replay"
	"vroom/internal/webpage"
)

func main() {
	var (
		stats    = flag.Bool("stats", false, "print corpus statistics")
		record   = flag.String("record", "", "record one site's page to this archive file")
		siteName = flag.String("site", "dailynews00", "site to record (dailynewsNN, sportlyNN, popularNN)")
		seed     = flag.Int64("seed", 2017, "corpus seed")
		news     = flag.Int("news", 50, "news sites")
		sports   = flag.Int("sports", 50, "sports sites")
		top      = flag.Int("top", 100, "top-100-style sites")
	)
	flag.Parse()

	corpus := webpage.Generate(webpage.CorpusConfig{Seed: *seed, NumNews: *news, NumSports: *sports, NumTop100: *top})
	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	profile := webpage.Profile{Device: webpage.PhoneSmall, UserID: 11}

	if *record != "" {
		for _, s := range corpus.Sites {
			if s.Name == *siteName {
				sn := s.Snapshot(at, profile, 1)
				a := replay.FromSnapshot(sn)
				if err := a.SaveFile(*record); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("recorded %s: %d resources -> %s\n", s.Name, a.Len(), *record)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "site %q not in corpus\n", *siteName)
		os.Exit(2)
	}

	if *stats {
		counts := metrics.NewDist()
		bytesTotal := metrics.NewDist()
		procFrac := metrics.NewDist()
		domains := metrics.NewDist()
		for _, s := range corpus.Sites {
			sn := s.Snapshot(at, profile, 1)
			counts.Add(float64(sn.Len()))
			tot, proc := sn.TotalBytes()
			bytesTotal.Add(float64(tot) / 1024)
			procFrac.Add(float64(proc) / float64(tot))
			hosts := map[string]bool{}
			for _, r := range sn.Ordered() {
				hosts[r.URL.Host] = true
			}
			domains.Add(float64(len(hosts)))
		}
		fmt.Printf("sites: %d\n", len(corpus.Sites))
		fmt.Printf("resources/page:      %s\n", counts.Summary())
		fmt.Printf("page KB:             %s\n", bytesTotal.Summary())
		fmt.Printf("processed-byte frac: %s\n", procFrac.Summary())
		fmt.Printf("domains/page:        %s\n", domains.Summary())
		return
	}

	flag.Usage()
}
