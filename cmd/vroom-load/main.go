// vroom-load storms a vroom-server with many concurrent simulated clients
// and asserts the robustness invariants the overload plane promises: no load
// ever hangs, shed responses stay retryable, and degradation is always
// tagged. It is the acceptance harness for the resolver-as-a-service work —
// CI runs it against a faulted server and fails on a hung load or on a
// missing shed/stale signal.
//
// Usage:
//
//	vroom-load -server 127.0.0.1:8443 -root https://www.dailynews00.com/ \
//	    -loads 500 -concurrency 64 -faults severe -fault-seed 7 \
//	    -scrape http://127.0.0.1:9090/metrics -json-out load.json
//
// With -faults, every client dial passes through a seeded netem fault shim,
// so the storm exercises the server's recovery paths, not just its happy
// path. -scrape reads the server's /metrics after the storm and folds
// serving-side figures (QPS, hint-lookup p50/p99, shed rate) and the
// hint-efficacy block (per-origin precision/recall, wasted push bytes)
// into the vroom-bench/v1 artifact written by -json-out, which
// vroom-benchdiff can then gate against a committed baseline. With
// -scrape-every the scrape runs periodically through the whole storm
// (each failure retried once, two in a row marked as a gap rather than
// failing the run) and -scrape-out persists the series as a
// vroom-scrapes/v1 file for offline vroom-audit.
//
// Distributed tracing:
//
//	vroom-load -root ... -trace-out storm.json -trace-propagate \
//	    -trace-scrape http://127.0.0.1:9090/trace -flight-dir flight/
//
// -trace-out records every load's client-side spans into one storm
// recording, exported as a validated Perfetto file. -trace-propagate mints
// a per-load trace ID sent in the vroom-trace header; with -trace-scrape
// the server's recording (it must run with -trace) is fetched after the
// storm, its tracks prefixed "srv:", and merged under the clients' — the
// run fails unless at least one fetch's flow joins both sides.
// -flight-dir arms a bounded per-load flight recorder whose ring is dumped
// there as a vroom-events artifact only for loads that end degraded,
// failed, past deadline, or hung.
//
// Exit status: 0 on success; 1 when a load hung, when -require-degraded
// tokens were not all observed, when the scrape was unreachable, or when
// the merged trace failed validation (or joined no cross-process flow).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"vroom/internal/audit"
	"vroom/internal/benchfmt"
	"vroom/internal/faults"
	"vroom/internal/loadgen"
	"vroom/internal/netem"
	"vroom/internal/obs"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
)

func main() {
	var (
		server      = flag.String("server", "127.0.0.1:8443", "vroom-server address")
		rootRaw     = flag.String("root", "", "root page URL (as recorded in the archive)")
		loads       = flag.Int("loads", 200, "total page loads")
		concurrency = flag.Int("concurrency", 32, "loads in flight at once")
		seed        = flag.Int64("seed", 1, "seed for the client-class draw")
		faultsRaw   = flag.String("faults", "none", "wire fault regime injected on client dials: none, mild, or severe")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for the fault plan")
		grace       = flag.Duration("grace", 30*time.Second, "hang-watchdog grace beyond each class's load deadline")
		jsonOut     = flag.String("json-out", "", "write a vroom-bench/v1 artifact to this path")
		scrapeURL   = flag.String("scrape", "", "server /metrics URL to scrape after the storm")
		scrapeEvery = flag.Duration("scrape-every", 0, "also scrape -scrape periodically during the storm (0 = final scrape only)")
		scrapeOut   = flag.String("scrape-out", "", "write the scrape series (vroom-scrapes/v1) here for offline vroom-audit")
		requireRaw  = flag.String("require-degraded", "", "comma-separated degradation tokens that must be observed (e.g. stale-hints,shed-push)")
		traceOut    = flag.String("trace-out", "", "write a validated Perfetto trace of the storm to this path")
		traceScrape = flag.String("trace-scrape", "", "server /trace URL; its recording is merged (tracks prefixed srv:) into -trace-out")
		propagate   = flag.Bool("trace-propagate", false, "mint per-load trace IDs and send them in the vroom-trace header")
		flightDir   = flag.String("flight-dir", "", "dump per-load flight-recorder rings here for loads that end degraded, failed, late, or hung")
		flightEvts  = flag.Int("flight-events", 0, "flight-ring capacity per track (default 256)")
	)
	flag.Parse()
	if *rootRaw == "" {
		fmt.Fprintln(os.Stderr, "need -root")
		os.Exit(2)
	}
	root, err := urlutil.Parse(*rootRaw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	regime, err := faults.ParseRegime(*faultsRaw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	dial := func(origin string) (net.Conn, error) { return net.Dial("tcp", *server) }
	if regime != faults.RegimeNone {
		plan := faults.New(*faultSeed, faults.RegimeConfig(regime))
		plan.ExemptURL(root)
		shim := netem.NewFaultShim(plan)
		raw := dial
		dial = func(origin string) (net.Conn, error) {
			return shim.Dial(origin, func() (net.Conn, error) { return raw(origin) })
		}
	}

	var storm *obs.LiveRecording
	var tr *obs.Tracer
	if *traceOut != "" {
		storm = &obs.LiveRecording{Start: time.Now()}
		tr = obs.NewWall(storm)
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// A periodic scraper runs for the storm's whole life so the artifact can
	// say how much of the run it actually observed: each failed scrape is
	// retried once, two failures in a row become a marked gap, never a
	// crashed storm.
	var series *loadgen.ScrapeSeries
	if *scrapeURL != "" && *scrapeEvery > 0 {
		series = loadgen.StartScrapes(*scrapeURL, *scrapeEvery)
	}

	reg := telemetry.NewRegistry()
	res := loadgen.Run(loadgen.Config{
		Root:         root,
		Loads:        *loads,
		Concurrency:  *concurrency,
		Seed:         *seed,
		Dial:         dial,
		Metrics:      reg,
		HangGrace:    *grace,
		Trace:        tr,
		Propagate:    *propagate,
		FlightDir:    *flightDir,
		FlightEvents: *flightEvts,
	})

	printSummary(res)
	if *flightDir != "" {
		fmt.Printf("flight: %d dump(s) in %s\n", len(res.FlightDumps), *flightDir)
	}

	failed := false
	if res.Hung > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d load(s) hung past deadline+grace\n", res.Hung)
		failed = true
	}
	for _, tok := range splitTokens(*requireRaw) {
		if res.DegradedModes[tok] == 0 {
			fmt.Fprintf(os.Stderr, "FAIL: required degradation mode %q never observed\n", tok)
			failed = true
		}
	}

	if storm != nil {
		if err := exportTrace(*traceOut, *traceScrape, *propagate, storm); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: trace: %v\n", err)
			failed = true
		}
	}

	var srvStats *benchfmt.ServerStats
	if *scrapeURL != "" {
		if series == nil {
			// No periodic cadence asked for: take one final scrape through
			// the same retry-once path a mid-storm scrape gets.
			series = loadgen.StartScrapes(*scrapeURL, 0)
		}
		points := series.Stop()
		if gaps := loadgen.Gaps(points); gaps > 0 {
			fmt.Printf("scrape: %d/%d point(s) gapped (server unreachable past one retry)\n",
				gaps, len(points))
		}
		sc := loadgen.Last(points)
		if sc == nil {
			fmt.Fprintf(os.Stderr, "FAIL: scrape: every attempt failed: %s\n", points[len(points)-1].Err)
			failed = true
		} else {
			srvStats = serverStats(sc, res.Elapsed)
			rep := audit.Summarize(points)
			rep.FoldInto(srvStats)
			fmt.Printf("server: %d requests (%.1f qps), %d shed (%.1f%%), hint lookup p50=%.2fms p99=%.2fms, degraded %.1f%%\n",
				srvStats.Requests, srvStats.QPS, srvStats.Shed, 100*srvStats.ShedRate,
				srvStats.HintLookupP50, srvStats.HintLookupP99, 100*srvStats.DegradedRate)
			if srvStats.HintsEmitted > 0 {
				fmt.Printf("efficacy: %d hints emitted, precision %.3f recall %.3f, %d origin(s), wasted push %dB\n",
					srvStats.HintsEmitted, srvStats.HintPrecision, srvStats.HintRecall,
					len(srvStats.Origins), srvStats.WastedPushBytes)
			}
		}
		if *scrapeOut != "" {
			if err := loadgen.SaveSeries(*scrapeOut, *scrapeURL, points); err != nil {
				fmt.Fprintf(os.Stderr, "FAIL: scrape-out: %v\n", err)
				failed = true
			} else {
				fmt.Printf("scrapes: %s (%d point(s))\n", *scrapeOut, len(points))
			}
		}
	} else if *scrapeOut != "" {
		fmt.Fprintln(os.Stderr, "FAIL: -scrape-out needs -scrape")
		failed = true
	}

	if *jsonOut != "" {
		if err := writeArtifact(*jsonOut, res, srvStats, regime, *seed, *concurrency); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		} else {
			fmt.Printf("artifact: %s\n", *jsonOut)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printSummary(res *loadgen.Result) {
	fmt.Printf("storm: %d loads in %.1fs (%d hung, %d deadline-hit)\n",
		res.Loads, res.Elapsed.Seconds(), res.Hung, res.DeadlineHit)
	fmt.Printf("fetches: %d (%d failed, %d retries), %d pushed, %d degraded responses\n",
		res.Fetches, res.FailedFetches, res.Retries, res.Pushed, res.DegradedResps)
	if len(res.DegradedModes) > 0 {
		modes := make([]string, 0, len(res.DegradedModes))
		for m := range res.DegradedModes {
			modes = append(modes, m)
		}
		sort.Strings(modes)
		parts := make([]string, 0, len(modes))
		for _, m := range modes {
			parts = append(parts, fmt.Sprintf("%s=%d", m, res.DegradedModes[m]))
		}
		fmt.Printf("degradation: %s\n", strings.Join(parts, " "))
	}
	classes := make([]string, 0, len(res.ByClass))
	for cl := range res.ByClass {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	for _, cl := range classes {
		ms := res.ByClass[cl]
		fmt.Printf("  %-20s n=%-4d p50=%7.1fms p95=%7.1fms\n",
			cl, len(ms), percentile(ms, 50), percentile(ms, 95))
	}
}

// exportTrace merges the storm's client recording with the server's /trace
// scrape (when given) and writes one validated Perfetto file. With
// propagation on and a server recording in hand, at least one fetch flow
// must join both processes or the export fails — the cross-process gate CI
// pins.
func exportTrace(path, scrape string, propagate bool, storm *obs.LiveRecording) error {
	merged := storm.Snapshot()
	if scrape != "" {
		srvRec, err := scrapeTrace(scrape)
		if err != nil {
			return err
		}
		merged = obs.Merge(merged, obs.PrefixTracks(srvRec, "srv:"))
		if propagate {
			n := crossProcessJoins(merged)
			if n == 0 {
				return fmt.Errorf("no fetch flow joined client and server spans")
			}
			fmt.Printf("trace: %d cross-process flow join(s)\n", n)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WritePerfetto(f, merged); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := obs.CheckPerfetto(data); err != nil {
		return err
	}
	fmt.Printf("trace: %s (%d events)\n", path, len(merged.Events))
	return nil
}

// scrapeTrace fetches a /trace endpoint and parses its vroom-events body.
func scrapeTrace(url string) (*obs.Recording, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	return obs.ReadEvents(resp.Body)
}

// crossProcessJoins counts distinct flow IDs seen on Begin events both on a
// server-side ("srv:"-prefixed) track and a client-side one — fetches whose
// propagated context the server demonstrably adopted. (obs.FlowJoinCount is
// looser: client-internal track crossings also count there.)
func crossProcessJoins(rec *obs.Recording) int {
	type sides struct{ client, server bool }
	flows := make(map[string]*sides)
	for _, ev := range rec.Events {
		if ev.Kind != obs.KindBegin {
			continue
		}
		flow := ev.Arg(obs.ArgFlow)
		if flow == "" {
			continue
		}
		s := flows[flow]
		if s == nil {
			s = &sides{}
			flows[flow] = s
		}
		if strings.HasPrefix(ev.Track, "srv:") {
			s.server = true
		} else {
			s.client = true
		}
	}
	n := 0
	for _, s := range flows {
		if s.client && s.server {
			n++
		}
	}
	return n
}

// serverStats distills a final /metrics scrape into the serving-side
// figures for the artifact. elapsed is the storm's wall time, used for QPS.
func serverStats(sc *loadgen.Scrape, elapsed time.Duration) *benchfmt.ServerStats {
	reqs := sc.Sum("vroom_server_requests_total", nil)
	shed := sc.Sum("vroom_server_shed_total", nil)
	degraded := sc.Sum("vroom_server_degraded_total", nil)
	st := &benchfmt.ServerStats{
		Requests:      int64(reqs),
		Shed:          int64(shed),
		HintLookupP50: sc.HistogramQuantile("vroom_store_hint_lookup_ms", 50),
		HintLookupP99: sc.HistogramQuantile("vroom_store_hint_lookup_ms", 99),
		// The durable-state block: all zero when the server runs without
		// -state-dir, and omitted from the JSON accordingly.
		RecoveryMs:      sc.Sum("vroom_persist_recovery_ms", nil),
		RecoveredTables: int64(sc.Sum("vroom_persist_recovered_tables", nil)),
		Quarantined:     int64(sc.Sum("vroom_persist_quarantined_total", nil)),
		WALFsyncP99:     sc.HistogramQuantile("vroom_persist_wal_fsync_ms", 99),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		st.QPS = reqs / secs
	}
	if reqs+shed > 0 {
		st.ShedRate = shed / (reqs + shed)
	}
	if reqs > 0 {
		st.DegradedRate = degraded / reqs
		st.StaleRestoreRate = sc.Sum("vroom_server_degraded_total",
			map[string]string{"mode": "stale-restore"}) / reqs
	}
	return st
}

// writeArtifact distills the storm into a vroom-bench/v1 file: one figure of
// per-class load times plus the serving-side block when a scrape succeeded.
func writeArtifact(path string, res *loadgen.Result, srv *benchfmt.ServerStats,
	regime faults.Regime, seed int64, workers int) error {
	fig := benchfmt.Figure{
		ID:        "load-storm-plt",
		Title:     "Storm PLT by client class (s)",
		ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
		Server:    srv,
		Notes: []string{
			fmt.Sprintf("%d loads, %d hung, %d deadline-hit, %d fetch retries",
				res.Loads, res.Hung, res.DeadlineHit, res.Retries),
		},
	}
	fig.Direction = benchfmt.DirectionFor(fig.Title)
	classes := make([]string, 0, len(res.ByClass))
	for cl := range res.ByClass {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	for _, cl := range classes {
		ms := res.ByClass[cl]
		fig.Series = append(fig.Series, benchfmt.Series{
			Label: cl,
			N:     len(ms),
			Mean:  mean(ms),
			P25:   percentile(ms, 25),
			P50:   percentile(ms, 50),
			P75:   percentile(ms, 75),
			P95:   percentile(ms, 95),
		})
	}
	return benchfmt.Save(path, &benchfmt.File{
		Scale:     "load",
		Seed:      seed,
		Faults:    regime.String(),
		Workers:   workers,
		ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
		Figures:   []benchfmt.Figure{fig},
	})
}

func splitTokens(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
