// vroom-server replays recorded pages over real HTTP/2 with Vroom's
// dependency hints and server push, Mahimahi-style: a single listener
// serves every authority in the archive.
//
// Usage:
//
//	vroom-server -archive page.json -listen :8443 [-hints=false] [-push=false]
//	vroom-server -site dailynews00 -listen :8443   # generate + serve
//	vroom-server -sites dailynews00,socialites01 -listen :8443   # multi-tenant
//	vroom-server -site dailynews00 -faults severe -fault-seed 7   # broken world
//
// Hints are served by a multi-tenant hint store: one shard per origin, each
// holding an immutable, atomically-swapped hint table that background
// workers retrain as it ages (-hint-ttl, the paper's hourly churn). Stale
// tables serve tagged stale-while-revalidate; only far past the TTL
// (-max-stale) are hints shed — never the response itself.
//
// The serving path runs behind admission control (-max-concurrent,
// -max-queue, -max-wait): requests beyond capacity queue LIFO and shed with
// a retryable 503, and an admitting-but-loaded gate degrades push first,
// hints second. Degraded responses carry a vroom-degraded header naming
// every mode applied.
//
// On SIGTERM/SIGINT the server drains gracefully: admission stops, the
// listener closes, every HTTP/2 connection gets a GOAWAY, in-flight streams
// have -drain to finish, background retraining is cancelled, and each hint
// shard's final table version is checkpointed to the log.
//
// With -state-dir trained hint tables are durable: every retrain publish
// appends to a per-origin CRC-framed write-ahead log (-fsync always|none),
// periodic snapshots compact it (-snapshot-every, -wal-rotate), and the
// SIGTERM drain writes one final snapshot per origin — each checkpoint logs
// its snapshot path and bytes, and a failed final flush exits nonzero. On
// restart the store recovers the newest valid snapshot plus WAL tail,
// quarantining corrupt or torn files, and serves the restored tables
// immediately tagged "vroom-degraded: stale-restore" while background
// retraining refreshes them; /readyz reports "recovering" until it has.
//
// With -telemetry-addr the server also runs a plain net/http sidecar
// exposing /metrics (Prometheus text), /healthz (liveness), /readyz
// (readiness: every tenant trained and not draining), and the standard
// /debug/pprof/ endpoints. With -trace the serving path additionally
// records wall-clock spans (admission wait, hint lookup, degradation
// decisions, pushes) adopting any trace context clients propagate in the
// vroom-trace header; /trace on the sidecar serves the recording as
// vroom-events JSON for a client to merge with its own. The sidecar is
// observability-only — replay traffic never touches it.
//
// With -accounting (on by default) the serving path keeps per-tenant
// hint-quality ledgers: each served hint opens a bounded prediction
// window (-accounting-window) that settles used when the client requests
// the hinted URL and unused when it expires, with unpredicted subresource
// fetches counted as misses and redundant pushes as wasted bytes. The
// ledgers surface as bounded-cardinality vroom_hint_quality_* series on
// /metrics (vroom-audit turns them into a per-origin efficacy report) and
// persist with -state-dir snapshots. -runtime-metrics-every samples Go
// runtime vitals (heap, goroutines, GC pause, scheduler latency) into the
// same registry, and -pprof-labels stamps request goroutines with
// origin/phase labels for /debug/pprof profiles.
//
// All operational output is structured (log/slog): -log-format selects
// text or json, -log-level the threshold. Message values are single words
// (msg=trained, msg=checkpoint, msg=drained) so pipelines can grep
// structurally in either format.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"vroom/internal/core"
	"vroom/internal/faults"
	"vroom/internal/h1"
	"vroom/internal/hintstore"
	"vroom/internal/hintstore/persist"
	"vroom/internal/logutil"
	"vroom/internal/obs"
	"vroom/internal/overload"
	"vroom/internal/replay"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
	"vroom/internal/wire"
)

// tenant is one origin to be registered in the hint store.
type tenant struct {
	origin  string
	root    urlutil.URL
	body    string
	trainer hintstore.Trainer
}

func main() {
	var (
		archivePath = flag.String("archive", "", "replay archive (JSON) to serve")
		siteName    = flag.String("site", "", "generate and serve this site instead (e.g. dailynews00)")
		sitesRaw    = flag.String("sites", "", "comma-separated site names to generate and serve multi-tenant")
		seed        = flag.Int64("seed", 2017, "generator seed when using -site/-sites")
		listen      = flag.String("listen", "127.0.0.1:8443", "listen address (h2c)")
		sendHints   = flag.Bool("hints", true, "attach dependency-hint headers")
		push        = flag.Bool("push", true, "push high-priority same-origin dependencies (h2 only)")
		think       = flag.Duration("think", 10*time.Millisecond, "per-request server think time")
		proto       = flag.String("proto", "h2", "wire protocol: h2 or h1")
		faultsRaw   = flag.String("faults", "none", "server-side fault regime: none, mild, or severe")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for the fault plan (same seed => same injected faults)")
		drain       = flag.Duration("drain", 3*time.Second, "graceful-drain budget for in-flight streams on SIGTERM")
		telAddr     = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /readyz, /trace, /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		traceOn     = flag.Bool("trace", false, "record serving-path spans (adopting propagated vroom-trace contexts); scrape them at /trace on -telemetry-addr")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		logLevel    = flag.String("log-level", "info", "log threshold: debug, info, warn, or error")

		hintTTL  = flag.Duration("hint-ttl", time.Hour, "hint-table freshness window before a background retrain")
		maxStale = flag.Duration("max-stale", 0, "age past which hints are shed instead of served stale (default 4x -hint-ttl)")
		workers  = flag.Int("train-workers", 2, "background training workers")

		stateDir  = flag.String("state-dir", "", "persist trained hint tables here (snapshot+WAL per origin); on restart the store serves restored tables immediately, tagged stale-restore")
		snapEvery = flag.Duration("snapshot-every", 30*time.Second, "periodic full-snapshot interval under -state-dir")
		walRotate = flag.Int64("wal-rotate", 1<<20, "WAL size in bytes past which a snapshot is cut and the WAL reset")
		fsyncMode = flag.String("fsync", "always", "fsync policy for -state-dir writes: always or none")

		maxConc  = flag.Int("max-concurrent", 64, "requests admitted at once (0 disables admission control)")
		maxQueue = flag.Int("max-queue", 0, "admission queue depth (default 2x -max-concurrent)")
		maxWait  = flag.Duration("max-wait", time.Second, "longest a request waits for admission before shedding")

		accounting  = flag.Bool("accounting", true, "per-tenant hint-quality accounting (precision, recall, wasted push bytes) exported as vroom_hint_quality_* series")
		acctWindow  = flag.Duration("accounting-window", 0, "how long an emitted hint may wait for its request before settling unused (default 5s)")
		rtEvery     = flag.Duration("runtime-metrics-every", 5*time.Second, "Go-runtime vitals sampling interval for /metrics (0 disables); needs -telemetry-addr")
		pprofLabels = flag.Bool("pprof-labels", false, "stamp request goroutines with origin/phase pprof labels (small per-request allocation)")
	)
	flag.Parse()

	log, err := logutil.New(os.Stdout, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	device := webpage.PhoneSmall

	archive, tenants, fallback, err := buildWorld(*archivePath, *siteName, *sitesRaw, *seed, at, device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	regime, err := faults.ParseRegime(*faultsRaw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Train every tenant synchronously before accepting traffic, logging the
	// warmup cost: readiness (the /readyz endpoint) is exactly "every shard
	// has a published table". Under -state-dir the store first recovers
	// whatever the previous process persisted — restored origins skip the
	// synchronous warmup and serve their disk tables immediately (tagged
	// stale-restore) while background retraining refreshes them.
	storeCfg := hintstore.Config{
		TTL: *hintTTL, MaxStale: *maxStale, Workers: *workers, Log: log,
	}
	var store *hintstore.Store
	if *stateDir != "" {
		fsync, err := persist.ParseFsync(*fsyncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		storeCfg.Persist = persist.Options{
			Dir: *stateDir, SnapshotEvery: *snapEvery,
			WALRotateBytes: *walRotate, Fsync: fsync,
		}
		var rec *persist.Recovery
		store, rec, err = hintstore.NewDurable(storeCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		log.Info("recovered", "dir", *stateDir, "tables", len(rec.Tables),
			"snapshots", rec.Snapshots, "wal_records", rec.WALRecords,
			"quarantined", len(rec.Quarantined), "torn_tails", rec.TornTails,
			"ms", rec.Elapsed.Milliseconds())
	} else {
		store = hintstore.New(storeCfg)
	}
	trainStart := time.Now()
	for _, tn := range tenants {
		t0 := time.Now()
		if err := store.Register(tn.origin, device, tn.trainer); err != nil {
			fmt.Fprintf(os.Stderr, "train %s: %v\n", tn.origin, err)
			os.Exit(1)
		}
		hs, res := store.Lookup(tn.root, tn.body)
		log.Info("trained", "origin", tn.origin, "hints", len(hs),
			"version", res.Version, "ms", int(time.Since(t0).Milliseconds()))
	}
	log.Info("store-ready", "tenants", store.Tenants(),
		"ms", int(time.Since(trainStart).Milliseconds()), "ttl", hintTTL.String(), "workers", *workers)

	var gate *overload.Gate
	if *maxConc > 0 {
		gate = overload.NewGate(overload.Config{
			MaxConcurrent: *maxConc, MaxQueue: *maxQueue, MaxWait: *maxWait, Log: log,
		})
	}

	srv := wire.NewServer(archive, fallback, device, wire.ServerConfig{
		SendHints: *sendHints, Push: *push, ThinkTime: *think,
		ProfileLabels: *pprofLabels,
	})
	srv.Store = store
	srv.Gate = gate
	srv.Log = log
	if *accounting {
		srv.Acct = wire.NewAccountant(wire.AccountingConfig{Store: store, Window: *acctWindow})
	}
	if regime != faults.RegimeNone {
		plan := faults.New(*faultSeed, faults.RegimeConfig(regime))
		// The root document must stay loadable or every run is a trivial
		// total failure.
		if root, perr := urlutil.Parse(archive.RootURL); perr == nil {
			plan.ExemptURL(root)
		}
		srv.Faults = plan
	}

	// The serving-path tracer: -trace records every request's admission,
	// hint, degradation, and push spans into one live recording; clients
	// that propagate a vroom-trace context get their IDs adopted, so the
	// /trace scrape merges cleanly under their own timeline.
	var live *obs.LiveRecording
	var tr *obs.Tracer
	if *traceOn {
		live = &obs.LiveRecording{Start: time.Now()}
		tr = obs.NewWall(live)
	}

	var draining atomic.Bool
	if *telAddr == "" {
		srv.Instrument(tr, nil)
	} else {
		reg := telemetry.NewRegistry()
		srv.Instrument(tr, reg)
		// Runtime vitals ride the same registry: a scrape answers "is the
		// process healthy", not just "is the protocol".
		rc := telemetry.NewRuntimeCollector(reg, *rtEvery)
		if *rtEvery > 0 {
			rc.Start()
			defer rc.Stop()
		}
		// net/http/pprof registers its handlers on the default mux; put
		// /metrics and the health endpoints there too so one listener serves
		// the whole plane.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		http.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		http.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
			if draining.Load() || !store.Ready() {
				http.Error(w, "not ready", http.StatusServiceUnavailable)
				return
			}
			// Serving, but some tenant is still on a disk-restored table that
			// background retraining has not refreshed: available-degraded, a
			// distinct state so operators and CI can tell stale-restore
			// serving from full freshness.
			if store.Recovering() {
				fmt.Fprintln(w, "recovering")
				return
			}
			fmt.Fprintln(w, "ready")
		})
		http.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			if live == nil {
				http.Error(w, "tracing disabled (run with -trace)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			obs.WriteEvents(w, live.Snapshot())
		})
		tl, err := net.Listen("tcp", *telAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		log.Info("telemetry", "addr", tl.Addr().String(), "trace", *traceOn)
		go http.Serve(tl, nil)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Info("serving", "resources", archive.Len(), "root", archive.RootURL,
		"addr", l.Addr().String(), "proto", *proto, "hints", *sendHints,
		"push", *push, "faults", regime.String(), "gate", *maxConc)

	h1srv := &h1.Server{Handler: srv, Overloaded: func() bool { return gate.Saturated() }}
	serveErr := make(chan error, 1)
	go func() {
		if *proto == "h1" {
			serveErr <- h1srv.Serve(l)
		} else {
			serveErr <- srv.H2().Serve(l)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err = <-serveErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Info("draining", "signal", s.String(), "budget", drain.String())
		draining.Store(true)
		l.Close()
		var cps []hintstore.Checkpoint
		if *proto == "h1" {
			gate.Drain()
			h1srv.Drain(*drain)
			srv.Acct.Flush()
			cps = store.Drain(*drain)
		} else {
			cps = srv.Drain(*drain)
		}
		flushFailed := false
		for _, cp := range cps {
			args := []any{"origin", cp.Origin, "version", cp.Version,
				"trained", cp.TrainedAt.Format(time.RFC3339),
				"lookups", cp.Lookups, "retrains", cp.Retrains}
			if *stateDir != "" {
				args = append(args, "snapshot", cp.SnapshotPath, "bytes", cp.SnapshotBytes)
			}
			if cp.FlushErr != "" {
				flushFailed = true
				args = append(args, "flush_err", cp.FlushErr)
				log.Error("checkpoint", args...)
				continue
			}
			log.Info("checkpoint", args...)
		}
		if flushFailed {
			// A drain whose final flush lost state must not look clean to the
			// supervisor: the next cold start will serve older tables.
			log.Error("drained", "flush", "failed")
			os.Exit(1)
		}
		log.Info("drained")
	}
}

// buildWorld assembles the archive to replay, the hint-store tenants, and
// the fallback resolver for origins outside the store.
func buildWorld(archivePath, siteName, sitesRaw string, seed int64,
	at time.Time, device webpage.DeviceClass) (*replay.Archive, []tenant, *core.Resolver, error) {
	names := splitNames(sitesRaw)
	if siteName != "" {
		names = append([]string{siteName}, names...)
	}
	switch {
	case archivePath != "":
		archive, err := replay.LoadFile(archivePath)
		if err != nil {
			return nil, nil, nil, err
		}
		// Without the generating site we cannot train offline; online
		// analysis of the archived bodies still provides hints. The archive's
		// origin gets a static store tenant so the serving path is uniform.
		resolver := core.NewResolver(core.ResolverConfig{UseOnline: true})
		root, err := urlutil.Parse(archive.RootURL)
		if err != nil {
			return nil, nil, nil, err
		}
		body := ""
		if rec, ok := archive.Lookup(archive.RootURL); ok {
			body = rec.Body
		}
		tn := tenant{origin: root.Host, root: root, body: body,
			trainer: hintstore.StaticTrainer(resolver)}
		return archive, []tenant{tn}, resolver, nil

	case len(names) > 0:
		var (
			archives []*replay.Archive
			tenants  []tenant
		)
		for i, name := range names {
			site := webpage.NewSite(name, webpage.News, seed+int64(i))
			a := replay.FromSnapshot(site.Snapshot(at, webpage.Profile{Device: device, UserID: 11}, 1))
			root, err := urlutil.Parse(a.RootURL)
			if err != nil {
				return nil, nil, nil, err
			}
			body := ""
			if rec, ok := a.Lookup(a.RootURL); ok {
				body = rec.Body
			}
			archives = append(archives, a)
			tenants = append(tenants, tenant{
				origin: root.Host, root: root, body: body,
				trainer: hintstore.SiteTrainer(site, at, device, core.DefaultResolverConfig()),
			})
		}
		return replay.Merge(archives...), tenants, nil, nil

	default:
		return nil, nil, nil, fmt.Errorf("need -archive, -site, or -sites")
	}
}

func splitNames(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if name := s[start:i]; name != "" {
				out = append(out, name)
			}
			start = i + 1
		}
	}
	return out
}
