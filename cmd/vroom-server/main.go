// vroom-server replays a recorded page over real HTTP/2 with Vroom's
// dependency hints and server push, Mahimahi-style: a single listener
// serves every authority in the archive.
//
// Usage:
//
//	vroom-server -archive page.json -listen :8443 [-hints=false] [-push=false]
//	vroom-server -site dailynews00 -listen :8443   # generate + serve
//	vroom-server -site dailynews00 -faults severe -fault-seed 7   # broken world
//
// On SIGTERM/SIGINT the server drains gracefully: the listener closes, every
// HTTP/2 connection gets a GOAWAY, and in-flight streams have -drain to
// finish before connections are cut.
//
// With -telemetry-addr the server also runs a plain net/http sidecar
// exposing /metrics (Prometheus text: request/push/fault counters,
// connection/stream/drain gauges) and the standard /debug/pprof/ endpoints
// for live profiling. The sidecar is observability-only — replay traffic
// never touches it.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vroom/internal/core"
	"vroom/internal/faults"
	"vroom/internal/h1"
	"vroom/internal/replay"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
	"vroom/internal/wire"
)

func main() {
	var (
		archivePath = flag.String("archive", "", "replay archive (JSON) to serve")
		siteName    = flag.String("site", "", "generate and serve this site instead (e.g. dailynews00)")
		seed        = flag.Int64("seed", 2017, "generator seed when using -site")
		listen      = flag.String("listen", "127.0.0.1:8443", "listen address (h2c)")
		sendHints   = flag.Bool("hints", true, "attach dependency-hint headers")
		push        = flag.Bool("push", true, "push high-priority same-origin dependencies (h2 only)")
		think       = flag.Duration("think", 10*time.Millisecond, "per-request server think time")
		proto       = flag.String("proto", "h2", "wire protocol: h2 or h1")
		faultsRaw   = flag.String("faults", "none", "server-side fault regime: none, mild, or severe")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for the fault plan (same seed => same injected faults)")
		drain       = flag.Duration("drain", 3*time.Second, "graceful-drain budget for in-flight streams on SIGTERM")
		telAddr     = flag.String("telemetry-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	)
	flag.Parse()

	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	device := webpage.PhoneSmall
	var (
		archive  *replay.Archive
		resolver *core.Resolver
		err      error
	)
	switch {
	case *archivePath != "":
		archive, err = replay.LoadFile(*archivePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Without the generating site we cannot train offline; online
		// analysis of the archived bodies still provides hints.
		resolver = core.NewResolver(core.ResolverConfig{UseOnline: true})
	case *siteName != "":
		site := webpage.NewSite(*siteName, webpage.News, *seed)
		archive = replay.FromSnapshot(site.Snapshot(at, webpage.Profile{Device: device, UserID: 11}, 1))
		resolver = wire.TrainResolver(site, at, device)
	default:
		fmt.Fprintln(os.Stderr, "need -archive or -site")
		os.Exit(2)
	}

	regime, err := faults.ParseRegime(*faultsRaw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	srv := wire.NewServer(archive, resolver, device, wire.ServerConfig{
		SendHints: *sendHints, Push: *push, ThinkTime: *think,
	})
	if regime != faults.RegimeNone {
		plan := faults.New(*faultSeed, faults.RegimeConfig(regime))
		// The root document must stay loadable or every run is a trivial
		// total failure.
		if root, perr := urlutil.Parse(archive.RootURL); perr == nil {
			plan.ExemptURL(root)
		}
		srv.Faults = plan
	}
	if *telAddr != "" {
		reg := telemetry.NewRegistry()
		srv.Instrument(nil, reg)
		// net/http/pprof registers its handlers on the default mux; put
		// /metrics there too so one listener serves the whole plane.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		tl, err := net.Listen("tcp", *telAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: http://%s/metrics and /debug/pprof/\n", tl.Addr())
		go http.Serve(tl, nil)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serving %d resources (root %s) on %s  proto=%s hints=%v push=%v faults=%s\n",
		archive.Len(), archive.RootURL, l.Addr(), *proto, *sendHints, *push, regime)

	h1srv := &h1.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() {
		if *proto == "h1" {
			serveErr <- h1srv.Serve(l)
		} else {
			serveErr <- srv.H2().Serve(l)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err = <-serveErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Printf("%s: draining (up to %v for in-flight streams)\n", s, *drain)
		l.Close()
		if *proto == "h1" {
			h1srv.Drain(*drain)
		} else {
			srv.Drain(*drain)
		}
		fmt.Println("drained")
	}
}
