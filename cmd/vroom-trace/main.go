// vroom-trace loads one generated page under a policy and prints a
// WProf-style waterfall plus a phase summary, for inspecting why a policy
// is fast or slow.
//
// Usage:
//
//	vroom-trace -site dailynews00 -policy vroom [-rows 40] [-width 100]
//	vroom-trace -site dailynews00 -policy vroom -blame -perfetto out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vroom/internal/har"
	"vroom/internal/obs"
	"vroom/internal/runner"
	"vroom/internal/trace"
	"vroom/internal/webpage"
)

func main() {
	var (
		siteName = flag.String("site", "dailynews00", "site name (category inferred from the name)")
		policy   = flag.String("policy", "vroom", strings.Join(policyNames(), "|"))
		seed     = flag.Int64("seed", 2017, "generator seed")
		rows     = flag.Int("rows", 48, "max waterfall rows (0 = all)")
		width    = flag.Int("width", 90, "waterfall width")
		allRes   = flag.Bool("all", false, "include speculative fetches")
		harOut   = flag.String("har", "", "also write a HAR 1.2 file to this path")
		blame    = flag.Bool("blame", false, "print the critical-path blame decomposition of PLT")
		perfetto = flag.String("perfetto", "", "write a Chrome trace-event JSON file to this path (load in ui.perfetto.dev)")
	)
	flag.Parse()

	cat := webpage.News
	switch {
	case strings.HasPrefix(*siteName, "sport"):
		cat = webpage.Sports
	case strings.HasPrefix(*siteName, "popular"):
		cat = webpage.Top100
	}
	site := webpage.NewSite(*siteName, cat, *seed)
	opts := runner.Options{
		Time:    time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC),
		Profile: webpage.Profile{Device: webpage.PhoneSmall, UserID: 11},
		Nonce:   1,
	}
	var rec *obs.Recording
	if *blame || *perfetto != "" {
		rec = &obs.Recording{}
		opts.Trace = rec
	}
	res, err := runner.Run(site, runner.Policy(*policy), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(trace.Summary(res))
	fmt.Println()
	fmt.Print(trace.Waterfall(res, trace.Options{Width: *width, MaxRows: *rows, RequiredOnly: !*allRes}))

	if *blame {
		rep := obs.Blame(rec, res.PLT)
		fmt.Println()
		fmt.Print(rep.Format())
		if diff := rep.Sum() - res.PLT; diff > time.Millisecond || diff < -time.Millisecond {
			fmt.Fprintf(os.Stderr, "blame segments sum to %v but PLT is %v (off by %v)\n",
				rep.Sum(), res.PLT, diff)
			os.Exit(1)
		}
	}

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := obs.WritePerfetto(f, rec); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nPerfetto trace written to %s\n", *perfetto)
	}

	if *harOut != "" {
		f, err := os.Create(*harOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := har.FromResult(res, site.RootURL().String(), opts.Time).Write(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nHAR written to %s\n", *harOut)
	}
}

func policyNames() []string {
	out := make([]string, 0, len(runner.AllPolicies()))
	for _, p := range runner.AllPolicies() {
		out = append(out, string(p))
	}
	return out
}
