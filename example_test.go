package vroom_test

import (
	"fmt"
	"time"

	"vroom"
)

// Example demonstrates the basic comparison the paper makes: the same page
// loaded under the HTTP/2 baseline and under Vroom.
func Example() {
	site := vroom.NewSite("example-news", vroom.CategoryNews, 7)
	h2, err := vroom.LoadPage(site, vroom.PolicyH2, vroom.LoadOptions{})
	if err != nil {
		panic(err)
	}
	vr, err := vroom.LoadPage(site, vroom.PolicyVroom, vroom.LoadOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(vr.PLT < h2.PLT)
	// Output: true
}

// ExampleResolver shows server-side dependency resolution: training on
// periodic offline loads and producing Table-1 hints for a served HTML.
func ExampleResolver() {
	site := vroom.NewSite("example-news", vroom.CategoryNews, 7)
	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

	resolver := vroom.NewResolver(vroom.DefaultResolverConfig())
	resolver.Train(site, at, vroom.DevicePhoneSmall)

	sn := site.Snapshot(at, vroom.Profile{Device: vroom.DevicePhoneSmall, UserID: 1}, 1)
	hs := resolver.HintsFor(sn.Root, sn.RootResource().Body, vroom.DevicePhoneSmall)

	headers := vroom.FormatHints(hs)
	fmt.Println(len(headers["link"]) > 0)          // high-priority preloads
	fmt.Println(len(headers["x-unimportant"]) > 0) // images etc.
	fmt.Println(headers["access-control-expose-headers"] != nil)
	// Output:
	// true
	// true
	// true
}

// ExampleLoadPage_lowerBound computes the paper's §2 lower bound for one
// site: the max of a CPU-bottleneck load and a network-bottleneck load.
func ExampleLoadPage_lowerBound() {
	site := vroom.NewSite("example-news", vroom.CategoryNews, 7)
	cpu, _ := vroom.LoadPage(site, vroom.PolicyCPUOnly, vroom.LoadOptions{})
	net, _ := vroom.LoadPage(site, vroom.PolicyNetworkOnly, vroom.LoadOptions{})
	bound := cpu.PLT
	if net.PLT > bound {
		bound = net.PLT
	}
	fmt.Println(bound > 0)
	// Output: true
}
