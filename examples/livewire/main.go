// livewire runs the whole Vroom pipeline over real HTTP/2 connections on an
// emulated LTE link: record a generated page into a replay archive, serve
// it with dependency hints + server push, and load it with the staged
// client versus the baseline client.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"vroom"
	"vroom/internal/netem"
	"vroom/internal/urlutil"
)

func main() {
	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	site := vroom.NewSite("livewire-news", vroom.CategoryNews, 99)
	snapshot := site.Snapshot(at, vroom.Profile{Device: vroom.DevicePhoneSmall, UserID: 3}, 1)
	archive := vroom.RecordSnapshot(snapshot)
	resolver := vroom.TrainResolver(site, at, vroom.DevicePhoneSmall)

	fmt.Printf("recorded %s: %d resources\n", archive.RootURL, archive.Len())

	type result struct {
		label  string
		total  time.Duration
		high   time.Duration
		pushed int
		kb     float64
	}
	run := func(label string, cfg vroom.WireServerConfig, staged bool) result {
		srv := vroom.NewWireServer(archive, resolver, vroom.DevicePhoneSmall, cfg)
		link := netem.Listen(netem.LTE())
		go srv.H2().Serve(link)
		defer func() { srv.H2().Close(); link.Close() }()

		client := &vroom.WireClient{
			Dial:   func(string) (net.Conn, error) { return link.Dial() },
			Staged: staged,
		}
		root, err := urlutil.Parse(archive.RootURL)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := client.LoadPage(root)
		if err != nil {
			log.Fatal(err)
		}
		var lastHigh time.Time
		for _, f := range rep.Fetches {
			if f.Priority == vroom.HintHigh && f.Done.After(lastHigh) {
				lastHigh = f.Done
			}
		}
		return result{label, rep.Total(), lastHigh.Sub(rep.Started), rep.Pushed, float64(rep.Bytes) / 1024}
	}

	baseline := run("h2 baseline", vroom.WireServerConfig{}, false)
	vr := run("vroom (hints+push+staged)", vroom.WireServerConfig{SendHints: true, Push: true}, true)

	for _, r := range []result{baseline, vr} {
		fmt.Printf("%-26s total=%7.0fms  high-priority-done=%7.0fms  pushed=%2d  %.0f KB\n",
			r.label, r.total.Seconds()*1000, r.high.Seconds()*1000, r.pushed, r.kb)
	}
	fmt.Println("\nvroom delivers everything the CPU must process earlier; the emulated link")
	fmt.Println("carries real HTTP/2 frames, HPACK, flow control, and PUSH_PROMISE.")
}
