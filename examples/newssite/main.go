// newssite reproduces the paper's headline comparison (Fig. 13) on a small
// News/Sports corpus: page-load-time quartiles for the lower bound, Vroom,
// incremental adoption, HTTP/2, and HTTP/1.1.
package main

import (
	"fmt"
	"log"

	"vroom"
	"vroom/internal/metrics"
)

func main() {
	corpus := vroom.GenerateCorpus(vroom.CorpusConfig{Seed: 7, NumNews: 5, NumSports: 5})

	policies := []struct {
		label string
		pol   vroom.Policy
	}{
		{"vroom", vroom.PolicyVroom},
		{"vroom first-party only", vroom.PolicyVroomFirstParty},
		{"http/2 baseline", vroom.PolicyH2},
		{"http/1.1 (status quo)", vroom.PolicyHTTP1},
	}

	var rows []metrics.TableRow
	bound := metrics.NewDist()
	for _, s := range corpus.Sites {
		cpu, err := vroom.LoadPage(s, vroom.PolicyCPUOnly, vroom.LoadOptions{})
		if err != nil {
			log.Fatal(err)
		}
		net, err := vroom.LoadPage(s, vroom.PolicyNetworkOnly, vroom.LoadOptions{})
		if err != nil {
			log.Fatal(err)
		}
		m := cpu.PLT
		if net.PLT > m {
			m = net.PLT
		}
		bound.AddDuration(m)
	}
	rows = append(rows, metrics.TableRow{Label: "lower bound", Dist: bound})

	for _, pc := range policies {
		d := metrics.NewDist()
		for _, s := range corpus.Sites {
			res, err := vroom.LoadPage(s, pc.pol, vroom.LoadOptions{})
			if err != nil {
				log.Fatal(err)
			}
			d.AddDuration(res.PLT)
		}
		rows = append(rows, metrics.TableRow{Label: pc.label, Dist: d})
	}

	fmt.Print(metrics.Table("page load time (s) across 10 News/Sports sites", rows))
	fmt.Println("\npaper shape: http/1.1 > http/2 > vroom ≈ lower bound (10.5 → 7.3 → 5.1 ≈ 5.0 s medians)")
}
