// Quickstart: generate one News site and load it under the HTTP/2 baseline
// and under Vroom, printing the headline metrics.
package main

import (
	"fmt"
	"log"

	"vroom"
)

func main() {
	site := vroom.NewSite("mynews", vroom.CategoryNews, 42)

	for _, pol := range []vroom.Policy{vroom.PolicyH2, vroom.PolicyVroom} {
		res, err := vroom.LoadPage(site, pol, vroom.LoadOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s PLT=%.2fs  above-the-fold=%.2fs  speed-index=%.0f  cpu-idle=%.0f%%  resources=%d\n",
			pol, res.PLT.Seconds(), res.AFT.Seconds(), res.SpeedIndex, res.IdleFrac*100, res.NumRequired)
	}

	// The lower bound of §2: the better of fully-using-the-CPU and
	// fully-using-the-network.
	cpu, err := vroom.LoadPage(site, vroom.PolicyCPUOnly, vroom.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	net, err := vroom.LoadPage(site, vroom.PolicyNetworkOnly, vroom.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	bound := cpu.PLT
	if net.PLT > bound {
		bound = net.PLT
	}
	fmt.Printf("lower bound (max of cpu-only %.2fs, network-only %.2fs) = %.2fs\n",
		cpu.PLT.Seconds(), net.PLT.Seconds(), bound.Seconds())
}
