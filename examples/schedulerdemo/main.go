// schedulerdemo reproduces Fig. 11's insight on one site: how push-all-
// fetch-ASAP delays the first resources the CPU needs, while Vroom's staged
// scheduling delivers them in processing order without individual delays.
package main

import (
	"fmt"
	"log"
	"time"

	"vroom"
	"vroom/internal/hints"
)

func main() {
	site := vroom.NewSite("eurosport-like", vroom.CategorySports, 17)

	arrivals := func(pol vroom.Policy) (map[string]time.Duration, []string) {
		res, err := vroom.LoadPage(site, pol, vroom.LoadOptions{})
		if err != nil {
			log.Fatal(err)
		}
		m := make(map[string]time.Duration)
		var order []string
		for _, rt := range res.Resources {
			if rt.Required && rt.Priority == hints.High && rt.ArrivedAt > 0 {
				m[rt.URL] = rt.ArrivedAt
				order = append(order, rt.URL)
			}
		}
		return m, order
	}

	base, order := arrivals(vroom.PolicyH2)
	asap, _ := arrivals(vroom.PolicyPushAllFetchASAP)
	stgd, _ := arrivals(vroom.PolicyVroom)

	fmt.Println("receipt-time change vs HTTP/2 baseline for the first 10 processed resources")
	fmt.Printf("%-3s %9s %14s %10s\n", "id", "base (s)", "push-asap Δ(s)", "vroom Δ(s)")
	n := 0
	for _, u := range order {
		if n >= 10 {
			break
		}
		da, dv := asap[u]-base[u], stgd[u]-base[u]
		fmt.Printf("%-3d %9.2f %+14.2f %+10.2f\n", n+1, base[u].Seconds(), da.Seconds(), dv.Seconds())
		n++
	}
	fmt.Println("\npaper: fetch-ASAP speeds some resources but delays others (bandwidth contention);")
	fmt.Println("vroom matches its overall gains without delaying any early resource (Fig. 11).")
}
