module vroom

go 1.22
