// Package audit distills a load run's observability exhaust — periodic
// /metrics scrapes, the merged Perfetto trace, flight-recorder dumps —
// into one per-origin hint-efficacy report. It is the read side of the
// hint-quality accounting the wire server and hint store keep: precision,
// recall, wasted push bytes, push lead time, and table staleness, broken
// down per tenant and cross-checked against client-side trace latencies.
//
// The package is pure computation over already-collected artifacts so it
// can run offline: cmd/vroom-audit feeds it a scrape-series file written
// by vroom-load -scrape-out (or a single live scrape), and vroom-load
// itself uses FoldInto to stamp the same numbers into its vroom-bench/v1
// artifact.
package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vroom/internal/benchfmt"
	"vroom/internal/hintstore"
	"vroom/internal/loadgen"
	"vroom/internal/obs"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
)

// Schema versions the report JSON cmd/vroom-audit emits.
const Schema = "vroom-audit/v1"

// Report is the merged efficacy view of one run.
type Report struct {
	Schema     string  `json:"schema"`
	Scrapes    int     `json:"scrapes"`
	ScrapeGaps int     `json:"scrape_gaps"`
	WindowMs   float64 `json:"window_ms,omitempty"`

	Totals  Totals                 `json:"totals"`
	Origins []benchfmt.OriginStats `json:"origins,omitempty"`

	Runtime *RuntimeHealth `json:"runtime,omitempty"`
	Trace   *TraceStats    `json:"trace,omitempty"`
	Flight  *FlightStats   `json:"flight,omitempty"`
}

// Totals aggregates the efficacy counters across every origin. Precision
// and recall are recomputed here from the summed counters — never averaged
// over per-origin ratios, which would weight a one-hint tenant equally
// with a thousand-hint one.
type Totals struct {
	Requests int64 `json:"requests"`
	Shed     int64 `json:"shed,omitempty"`
	Degraded int64 `json:"degraded,omitempty"`

	HintsEmitted int64   `json:"hints_emitted"`
	HintsUsed    int64   `json:"hints_used"`
	HintsUnused  int64   `json:"hints_unused"`
	HintsMissed  int64   `json:"hints_missed"`
	Precision    float64 `json:"precision"`
	Recall       float64 `json:"recall"`

	PushedBytes     int64 `json:"pushed_bytes,omitempty"`
	WastedPushBytes int64 `json:"wasted_push_bytes,omitempty"`

	PushLeadP50Ms  float64 `json:"push_lead_p50_ms,omitempty"`
	PushLeadP99Ms  float64 `json:"push_lead_p99_ms,omitempty"`
	StalenessP50Ms float64 `json:"staleness_p50_ms,omitempty"`
	StalenessP99Ms float64 `json:"staleness_p99_ms,omitempty"`
}

// RuntimeHealth is the server's Go-runtime vitals at the final scrape.
type RuntimeHealth struct {
	HeapBytes     float64 `json:"heap_bytes"`
	Goroutines    float64 `json:"goroutines"`
	GCCycles      float64 `json:"gc_cycles"`
	GCPauseP99Ms  float64 `json:"gc_pause_p99_ms,omitempty"`
	SchedLatP99Ms float64 `json:"sched_lat_p99_ms,omitempty"`
	SampleErrors  float64 `json:"sample_errors,omitempty"`
}

// TraceStats summarizes the merged storm trace: client fetch latencies
// (per origin, joined into the table by origin name) and how many flows
// actually stitched the client and server recordings together.
type TraceStats struct {
	Events      int                     `json:"events"`
	Fetches     int                     `json:"fetches"`
	FetchP50Ms  float64                 `json:"fetch_p50_ms,omitempty"`
	FetchP95Ms  float64                 `json:"fetch_p95_ms,omitempty"`
	ServerSpans int                     `json:"server_spans,omitempty"`
	CrossFlows  int                     `json:"cross_flows,omitempty"`
	ByOrigin    map[string]TraceFetches `json:"by_origin,omitempty"`
}

// TraceFetches is one origin's client-side fetch latency digest.
type TraceFetches struct {
	Fetches int     `json:"fetches"`
	P50Ms   float64 `json:"p50_ms"`
}

// FlightStats summarizes the flight-recorder dumps a storm left behind —
// each one is a load that ended degraded, failed, late, or hung.
type FlightStats struct {
	Dumps   int   `json:"dumps"`
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped,omitempty"`
}

// ratio returns num/den guarding the empty denominator.
func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Summarize builds a report from a scrape series. Counters come from the
// newest usable scrape (they are cumulative, so the last scrape is the
// whole run); the gap count reports how much of the storm the series
// failed to observe.
func Summarize(points []loadgen.ScrapePoint) *Report {
	r := &Report{Schema: Schema, Scrapes: len(points), ScrapeGaps: loadgen.Gaps(points)}
	if len(points) > 1 {
		r.WindowMs = float64(points[len(points)-1].At.Sub(points[0].At).Milliseconds())
	}
	sc := loadgen.Last(points)
	if sc == nil {
		return r
	}

	r.Totals = Totals{
		Requests:        int64(sc.Sum("vroom_server_requests_total", nil)),
		Shed:            int64(sc.Sum("vroom_server_shed_total", nil)),
		Degraded:        int64(sc.Sum("vroom_server_degraded_total", nil)),
		HintsEmitted:    int64(sc.Sum(hintstore.MetricHintsEmitted, nil)),
		HintsUsed:       int64(sc.Sum(hintstore.MetricHintsUsed, nil)),
		HintsUnused:     int64(sc.Sum(hintstore.MetricHintsUnused, nil)),
		HintsMissed:     int64(sc.Sum(hintstore.MetricHintsMissed, nil)),
		PushedBytes:     int64(sc.Sum(hintstore.MetricPushedBytes, nil)),
		WastedPushBytes: int64(sc.Sum(hintstore.MetricWastedPush, nil)),
		PushLeadP50Ms:   sc.HistogramQuantile(hintstore.MetricPushLeadMs, 50),
		PushLeadP99Ms:   sc.HistogramQuantile(hintstore.MetricPushLeadMs, 99),
		StalenessP50Ms:  sc.HistogramQuantile(hintstore.MetricStalenessMs, 50),
		StalenessP99Ms:  sc.HistogramQuantile(hintstore.MetricStalenessMs, 99),
	}
	r.Totals.Precision = ratio(r.Totals.HintsUsed, r.Totals.HintsUsed+r.Totals.HintsUnused)
	r.Totals.Recall = ratio(r.Totals.HintsUsed, r.Totals.HintsUsed+r.Totals.HintsMissed)
	r.Origins = originRows(sc)

	if sc.Has(telemetry.MRuntimeGoroutines) || sc.Has(telemetry.MRuntimeHeapBytes) {
		r.Runtime = &RuntimeHealth{
			HeapBytes:     sc.Sum(telemetry.MRuntimeHeapBytes, nil),
			Goroutines:    sc.Sum(telemetry.MRuntimeGoroutines, nil),
			GCCycles:      sc.Sum(telemetry.MRuntimeGCCycles, nil),
			GCPauseP99Ms:  sc.HistogramQuantile(telemetry.MRuntimeGCPauseMs, 99),
			SchedLatP99Ms: sc.HistogramQuantile(telemetry.MRuntimeSchedLatMs, 99),
			SampleErrors:  sc.Sum(telemetry.MRuntimeSampleErrors, nil),
		}
	}
	return r
}

// originRows reassembles per-origin rows from the flat exposition: the
// union of origins across the serving and hint-quality families, one row
// each, sorted by origin. Per-row precision/recall are computed from that
// row's own counters; because settlements attribute to the hinted URL's
// host while emissions attribute to the hinting document, cross-origin
// hints can make a row's used+unused exceed its emitted — the aggregate
// in Totals is the invariant-bearing number.
func originRows(sc *loadgen.Scrape) []benchfmt.OriginStats {
	families := map[string]map[string]float64{
		"req":    sc.SumBy("vroom_server_origin_requests_total", "origin"),
		"shed":   sc.SumBy("vroom_server_origin_shed_total", "origin"),
		"degr":   sc.SumBy("vroom_server_origin_degraded_total", "origin"),
		"emit":   sc.SumBy(hintstore.MetricHintsEmitted, "origin"),
		"used":   sc.SumBy(hintstore.MetricHintsUsed, "origin"),
		"unused": sc.SumBy(hintstore.MetricHintsUnused, "origin"),
		"missed": sc.SumBy(hintstore.MetricHintsMissed, "origin"),
		"pushed": sc.SumBy(hintstore.MetricPushedBytes, "origin"),
		"wasted": sc.SumBy(hintstore.MetricWastedPush, "origin"),
	}
	set := make(map[string]bool)
	for _, m := range families {
		for o := range m {
			if o != "" {
				set[o] = true
			}
		}
	}
	if len(set) == 0 {
		return nil
	}
	origins := make([]string, 0, len(set))
	for o := range set {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	rows := make([]benchfmt.OriginStats, 0, len(origins))
	for _, o := range origins {
		row := benchfmt.OriginStats{
			Origin:          o,
			Requests:        int64(families["req"][o]),
			Shed:            int64(families["shed"][o]),
			Degraded:        int64(families["degr"][o]),
			HintsEmitted:    int64(families["emit"][o]),
			HintsUsed:       int64(families["used"][o]),
			HintsUnused:     int64(families["unused"][o]),
			HintsMissed:     int64(families["missed"][o]),
			PushedBytes:     int64(families["pushed"][o]),
			WastedPushBytes: int64(families["wasted"][o]),
		}
		row.Precision = ratio(row.HintsUsed, row.HintsUsed+row.HintsUnused)
		row.Recall = ratio(row.HintsUsed, row.HintsUsed+row.HintsMissed)
		rows = append(rows, row)
	}
	return rows
}

// FoldInto stamps the report's efficacy view into a vroom-bench/v1 Server
// block, leaving the block's serving-side figures (QPS, lookup latency)
// alone — those come from the load run itself.
func (r *Report) FoldInto(st *benchfmt.ServerStats) {
	if st == nil {
		return
	}
	st.HintPrecision = r.Totals.Precision
	st.HintRecall = r.Totals.Recall
	st.HintsEmitted = r.Totals.HintsEmitted
	st.PushedBytes = r.Totals.PushedBytes
	st.WastedPushBytes = r.Totals.WastedPushBytes
	st.PushLeadP50Ms = r.Totals.PushLeadP50Ms
	st.StalenessP50Ms = r.Totals.StalenessP50Ms
	st.Scrapes = r.Scrapes
	st.ScrapeGaps = r.ScrapeGaps
	st.Origins = append([]benchfmt.OriginStats(nil), r.Origins...)
}

// AddTrace merges a Perfetto storm trace (vroom-load -trace-out) into the
// report: fetch-span latencies per origin and the count of flows that
// joined the client and server recordings.
func (r *Report) AddTrace(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	ts, err := summarizeTrace(b)
	if err != nil {
		return fmt.Errorf("audit: %s: %w", path, err)
	}
	r.Trace = ts
	return nil
}

// AddFlightDir counts and sizes the flight-recorder dumps under dir.
// Unreadable files are skipped — a torn dump must not fail the audit.
func (r *Report) AddFlightDir(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	fs := &FlightStats{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		rec, err := obs.ReadEvents(f)
		f.Close()
		if err != nil {
			continue
		}
		fs.Dumps++
		fs.Events += len(rec.Events)
		for _, ev := range rec.Events {
			if ev.Kind == obs.KindInstant && ev.Name == "events-dropped" {
				fs.Dropped++
			}
		}
	}
	r.Flight = fs
	return nil
}

// perfetto-side parsing, private to the audit.

type perfettoEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"` // microseconds
	Tid  int               `json:"tid"`
	ID   string            `json:"id,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

func summarizeTrace(data []byte) (*TraceStats, error) {
	var f struct {
		TraceEvents []perfettoEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	ts := &TraceStats{Events: len(f.TraceEvents)}

	// Recover track names from thread_name metadata, so server-side spans
	// (tracks prefixed "srv:" by the merge) are tellable from client ones.
	srvTid := make(map[int]bool)
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			srvTid[ev.Tid] = strings.HasPrefix(ev.Args["name"], "srv:")
		}
	}

	// Pair fetch spans: nested B/E by per-tid stack, async b/e by tid+id.
	type open struct {
		ts     int64
		origin string
	}
	stacks := make(map[int][]open)
	async := make(map[string]open)
	var durs []float64
	byOrigin := make(map[string][]float64)
	record := func(o open, end int64) {
		ms := float64(end-o.ts) / 1000
		durs = append(durs, ms)
		if o.origin != "" {
			byOrigin[o.origin] = append(byOrigin[o.origin], ms)
		}
	}
	originOf := func(ev perfettoEvent) string {
		u, err := urlutil.Parse(ev.Args["url"])
		if err != nil {
			return ""
		}
		return u.Host
	}
	flowTids := make(map[string]map[bool]bool)
	for _, ev := range f.TraceEvents {
		if ev.Ph == "s" || ev.Ph == "f" {
			m := flowTids[ev.ID]
			if m == nil {
				m = make(map[bool]bool)
				flowTids[ev.ID] = m
			}
			m[srvTid[ev.Tid]] = true
			continue
		}
		if srvTid[ev.Tid] && (ev.Ph == "B" || ev.Ph == "b") {
			ts.ServerSpans++
		}
		if ev.Name != "fetch" {
			continue
		}
		switch ev.Ph {
		case "B":
			stacks[ev.Tid] = append(stacks[ev.Tid], open{ev.Ts, originOf(ev)})
		case "E":
			st := stacks[ev.Tid]
			if n := len(st); n > 0 {
				record(st[n-1], ev.Ts)
				stacks[ev.Tid] = st[:n-1]
			}
		case "b":
			async[fmt.Sprintf("%d|%s", ev.Tid, ev.ID)] = open{ev.Ts, originOf(ev)}
		case "e":
			key := fmt.Sprintf("%d|%s", ev.Tid, ev.ID)
			if o, ok := async[key]; ok {
				record(o, ev.Ts)
				delete(async, key)
			}
		}
	}
	for _, sides := range flowTids {
		if sides[true] && sides[false] {
			ts.CrossFlows++
		}
	}
	ts.Fetches = len(durs)
	ts.FetchP50Ms = percentileOf(durs, 50)
	ts.FetchP95Ms = percentileOf(durs, 95)
	if len(byOrigin) > 0 {
		ts.ByOrigin = make(map[string]TraceFetches, len(byOrigin))
		for o, d := range byOrigin {
			ts.ByOrigin[o] = TraceFetches{Fetches: len(d), P50Ms: percentileOf(d, 50)}
		}
	}
	return ts, nil
}

func percentileOf(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// Render prints the report as a terminal table: an aggregate header, then
// the per-origin rows sorted by hints emitted (ties by origin), capped at
// top rows (0 = all).
func (r *Report) Render(w io.Writer, top int) {
	fmt.Fprintf(w, "hint efficacy — %d scrape(s), %d gap(s)", r.Scrapes, r.ScrapeGaps)
	if r.WindowMs > 0 {
		fmt.Fprintf(w, ", %.1fs window", r.WindowMs/1000)
	}
	fmt.Fprintln(w)
	t := r.Totals
	fmt.Fprintf(w, "  requests %d  shed %d  degraded %d\n", t.Requests, t.Shed, t.Degraded)
	fmt.Fprintf(w, "  hints: emitted %d  used %d  unused %d  missed %d  precision %.3f  recall %.3f\n",
		t.HintsEmitted, t.HintsUsed, t.HintsUnused, t.HintsMissed, t.Precision, t.Recall)
	fmt.Fprintf(w, "  push: %s pushed, %s wasted, lead p50 %.1fms  staleness p50 %.0fms\n",
		fmtBytes(t.PushedBytes), fmtBytes(t.WastedPushBytes), t.PushLeadP50Ms, t.StalenessP50Ms)
	if r.Runtime != nil {
		rt := r.Runtime
		fmt.Fprintf(w, "  runtime: heap %s  goroutines %.0f  gc %.0f (pause p99 %.2fms)  sched p99 %.2fms\n",
			fmtBytes(int64(rt.HeapBytes)), rt.Goroutines, rt.GCCycles, rt.GCPauseP99Ms, rt.SchedLatP99Ms)
	}
	if r.Trace != nil {
		tr := r.Trace
		fmt.Fprintf(w, "  trace: %d fetch span(s), p50 %.1fms p95 %.1fms, %d server span(s), %d cross-process flow(s)\n",
			tr.Fetches, tr.FetchP50Ms, tr.FetchP95Ms, tr.ServerSpans, tr.CrossFlows)
	}
	if r.Flight != nil {
		fmt.Fprintf(w, "  flight: %d dump(s), %d event(s)\n", r.Flight.Dumps, r.Flight.Events)
	}
	if len(r.Origins) == 0 {
		fmt.Fprintln(w, "  (no per-origin accounting in scrape — server running without -accounting?)")
		return
	}

	rows := append([]benchfmt.OriginStats(nil), r.Origins...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].HintsEmitted != rows[j].HintsEmitted {
			return rows[i].HintsEmitted > rows[j].HintsEmitted
		}
		return rows[i].Origin < rows[j].Origin
	})
	shown := rows
	if top > 0 && len(rows) > top {
		shown = rows[:top]
	}
	fmt.Fprintf(w, "\n  %-34s %8s %6s %6s %6s %6s %6s %9s %9s %9s\n",
		"origin", "reqs", "emit", "used", "unused", "miss", "prec", "recall", "pushed", "wasted")
	for _, row := range shown {
		fmt.Fprintf(w, "  %-34s %8d %6d %6d %6d %6d %6.3f %9.3f %9s %9s",
			clip(row.Origin, 34), row.Requests, row.HintsEmitted, row.HintsUsed,
			row.HintsUnused, row.HintsMissed, row.Precision, row.Recall,
			fmtBytes(row.PushedBytes), fmtBytes(row.WastedPushBytes))
		if r.Trace != nil {
			if tf, ok := r.Trace.ByOrigin[row.Origin]; ok {
				fmt.Fprintf(w, "  fetch p50 %.1fms", tf.P50Ms)
			}
		}
		fmt.Fprintln(w)
	}
	if len(shown) < len(rows) {
		fmt.Fprintf(w, "  … %d more origin(s)\n", len(rows)-len(shown))
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fmtBytes(n int64) string {
	switch {
	case n >= 10<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 10<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Save writes the report JSON, indented for diffable artifacts.
func (r *Report) Save(path string) error {
	r.Schema = Schema
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
