package audit

import (
	"strings"
	"testing"
	"time"

	"vroom/internal/benchfmt"
	"vroom/internal/loadgen"
)

const exposition = `
# HELP vroom_server_requests_total Requests served, by protocol.
vroom_server_requests_total{proto="h2"} 90
vroom_server_requests_total{proto="h1"} 10
vroom_server_shed_total 5
vroom_server_degraded_total{mode="stale-hints"} 3
vroom_server_origin_requests_total{origin="news.example"} 80
vroom_server_origin_requests_total{origin="cdn.example"} 20
vroom_hint_quality_hints_emitted_total{origin="news.example"} 40
vroom_hint_quality_hints_used_total{origin="news.example"} 18
vroom_hint_quality_hints_used_total{origin="cdn.example"} 12
vroom_hint_quality_hints_unused_total{origin="news.example"} 6
vroom_hint_quality_hints_unused_total{origin="cdn.example"} 4
vroom_hint_quality_hints_missed_total{origin="cdn.example"} 10
vroom_hint_quality_pushed_bytes_total{origin="cdn.example"} 4096
vroom_hint_quality_wasted_push_bytes_total{origin="cdn.example"} 1024
vroom_hint_quality_push_lead_ms_bucket{le="5"} 2
vroom_hint_quality_push_lead_ms_bucket{le="50"} 10
vroom_hint_quality_push_lead_ms_bucket{le="+Inf"} 10
vroom_runtime_heap_bytes 1048576
vroom_runtime_goroutines 42
vroom_runtime_gc_cycles_total 7
`

func seriesFrom(t *testing.T, text string) []loadgen.ScrapePoint {
	t.Helper()
	sc, err := loadgen.ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(100, 0)
	return []loadgen.ScrapePoint{
		{At: base, Gap: true, Err: "connection refused"},
		{At: base.Add(2 * time.Second), Scrape: sc},
	}
}

func TestSummarizeTotalsAndOrigins(t *testing.T) {
	r := Summarize(seriesFrom(t, exposition))

	if r.Scrapes != 2 || r.ScrapeGaps != 1 {
		t.Fatalf("scrapes/gaps = %d/%d, want 2/1", r.Scrapes, r.ScrapeGaps)
	}
	tot := r.Totals
	if tot.Requests != 100 || tot.Shed != 5 || tot.Degraded != 3 {
		t.Fatalf("serving totals wrong: %+v", tot)
	}
	// used 30, unused 10 → precision 0.75; missed 10 → recall 0.75.
	if tot.HintsEmitted != 40 || tot.HintsUsed != 30 || tot.HintsUnused != 10 || tot.HintsMissed != 10 {
		t.Fatalf("hint totals wrong: %+v", tot)
	}
	if tot.Precision != 0.75 || tot.Recall != 0.75 {
		t.Fatalf("precision/recall = %v/%v, want 0.75/0.75", tot.Precision, tot.Recall)
	}
	if tot.PushedBytes != 4096 || tot.WastedPushBytes != 1024 {
		t.Fatalf("push bytes wrong: %+v", tot)
	}
	if tot.PushLeadP50Ms <= 0 || tot.PushLeadP50Ms > 50 {
		t.Fatalf("push lead p50 = %v, want within (0, 50]", tot.PushLeadP50Ms)
	}

	if len(r.Origins) != 2 {
		t.Fatalf("want 2 origin rows, got %+v", r.Origins)
	}
	// Sorted by origin: cdn first.
	cdn, news := r.Origins[0], r.Origins[1]
	if cdn.Origin != "cdn.example" || news.Origin != "news.example" {
		t.Fatalf("rows not sorted by origin: %+v", r.Origins)
	}
	if cdn.HintsUsed != 12 || cdn.HintsMissed != 10 || cdn.PushedBytes != 4096 {
		t.Fatalf("cdn row wrong: %+v", cdn)
	}
	if got, want := cdn.Precision, 12.0/16.0; got != want {
		t.Fatalf("cdn precision = %v, want %v", got, want)
	}
	if news.HintsEmitted != 40 || news.Requests != 80 {
		t.Fatalf("news row wrong: %+v", news)
	}

	if r.Runtime == nil || r.Runtime.Goroutines != 42 || r.Runtime.HeapBytes != 1048576 {
		t.Fatalf("runtime health missing or wrong: %+v", r.Runtime)
	}
}

func TestSummarizeAllGapsDegradesGracefully(t *testing.T) {
	base := time.Unix(100, 0)
	r := Summarize([]loadgen.ScrapePoint{{At: base, Gap: true, Err: "down"}})
	if r.Scrapes != 1 || r.ScrapeGaps != 1 || len(r.Origins) != 0 || r.Totals.Requests != 0 {
		t.Fatalf("all-gap summary should be empty, got %+v", r)
	}
	var sb strings.Builder
	r.Render(&sb, 0)
	if !strings.Contains(sb.String(), "no per-origin accounting") {
		t.Fatalf("render missing empty-table note:\n%s", sb.String())
	}
}

func TestFoldInto(t *testing.T) {
	r := Summarize(seriesFrom(t, exposition))
	var st benchfmt.ServerStats
	r.FoldInto(&st)
	if st.HintPrecision != 0.75 || st.HintRecall != 0.75 || st.HintsEmitted != 40 {
		t.Fatalf("folded efficacy wrong: %+v", st)
	}
	if st.Scrapes != 2 || st.ScrapeGaps != 1 {
		t.Fatalf("folded scrape counts wrong: %+v", st)
	}
	if len(st.Origins) != 2 || st.Origins[0].Origin != "cdn.example" {
		t.Fatalf("folded origins wrong: %+v", st.Origins)
	}
}

func TestRenderTable(t *testing.T) {
	r := Summarize(seriesFrom(t, exposition))
	var sb strings.Builder
	r.Render(&sb, 1)
	out := sb.String()
	for _, want := range []string{"precision 0.750", "news.example", "… 1 more origin(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Top-1 by emitted: news (40) shown, cdn clipped.
	if strings.Contains(out, "cdn.example") {
		t.Fatalf("top=1 should clip the cdn row:\n%s", out)
	}
}

const stormTrace = `{"traceEvents":[
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"load"}},
{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"srv:server"}},
{"name":"fetch","ph":"B","ts":0,"pid":1,"tid":1,"args":{"url":"https://news.example/","flow":"1:1"}},
{"name":"fetch","ph":"E","ts":8000,"pid":1,"tid":1},
{"name":"fetch","ph":"b","ts":1000,"pid":1,"tid":1,"cat":"vroom","id":"0x2","args":{"url":"https://cdn.example/a.js"}},
{"name":"fetch","ph":"e","ts":3000,"pid":1,"tid":1,"cat":"vroom","id":"0x2"},
{"name":"serve","ph":"B","ts":2000,"pid":1,"tid":2},
{"name":"serve","ph":"E","ts":2500,"pid":1,"tid":2},
{"name":"flow","ph":"s","ts":0,"pid":1,"tid":1,"cat":"vroom-flow","id":"1:1"},
{"name":"flow","ph":"f","bp":"e","ts":2000,"pid":1,"tid":2,"cat":"vroom-flow","id":"1:1"}
],"displayTimeUnit":"ms"}`

func TestSummarizeTrace(t *testing.T) {
	ts, err := summarizeTrace([]byte(stormTrace))
	if err != nil {
		t.Fatal(err)
	}
	if ts.Fetches != 2 {
		t.Fatalf("fetches = %d, want 2", ts.Fetches)
	}
	if ts.ServerSpans != 1 {
		t.Fatalf("server spans = %d, want 1", ts.ServerSpans)
	}
	if ts.CrossFlows != 1 {
		t.Fatalf("cross flows = %d, want 1", ts.CrossFlows)
	}
	if tf := ts.ByOrigin["news.example"]; tf.Fetches != 1 || tf.P50Ms != 8 {
		t.Fatalf("news fetch digest wrong: %+v", ts.ByOrigin)
	}
	if tf := ts.ByOrigin["cdn.example"]; tf.Fetches != 1 || tf.P50Ms != 2 {
		t.Fatalf("cdn fetch digest wrong: %+v", ts.ByOrigin)
	}
}
