// Package benchfmt defines the machine-readable benchmark artifact
// cmd/vroom-bench emits (-json-out) and the comparison logic
// cmd/vroom-benchdiff applies to two such artifacts. The schema is
// versioned so CI can reject artifacts from a different pipeline
// generation instead of comparing apples to oranges.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Schema identifies the artifact layout. Bump on incompatible change.
const Schema = "vroom-bench/v1"

// File is one benchmark run: the corpus configuration plus every figure's
// distilled series and execution telemetry.
type File struct {
	Schema    string   `json:"schema"`
	Scale     string   `json:"scale"`
	Seed      int64    `json:"seed"`
	Faults    string   `json:"faults"`
	Workers   int      `json:"workers"`
	ElapsedMs float64  `json:"elapsed_ms"`
	Figures   []Figure `json:"figures"`
	// GoBench carries go-test benchmark results (ns/op and friends) when
	// the driver ingested them (vroom-bench -gobench-in). Informational:
	// the diff reports drift but never gates on them — micro-benchmark
	// noise on shared CI runners would make the gate flaky.
	GoBench []GoBench `json:"go_bench,omitempty"`
}

// GoBench is one parsed `go test -bench` result line.
type GoBench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Figure is one reproduced table or figure.
type Figure struct {
	ID string `json:"id"`
	// Title is the figure's human title; Direction is derived from it at
	// write time (see DirectionFor) so the diff never re-guesses.
	Title string `json:"title"`
	// Direction says which way the series are better: "lower" (latencies),
	// "higher" (fractions, coverage), or "both" (any drift is notable).
	Direction string   `json:"direction"`
	ElapsedMs float64  `json:"elapsed_ms"`
	Series    []Series `json:"series"`
	Notes     []string `json:"notes,omitempty"`
	// Pool and Cache carry execution telemetry: worker-pool utilization and
	// shared-training-cache effectiveness for this figure's run.
	Pool  *PoolStats  `json:"pool,omitempty"`
	Cache *CacheStats `json:"cache,omitempty"`
	// Server carries the serving side of a load-generator run
	// (vroom-load -json-out): offered rate, hint-lookup latency, shed and
	// degradation rates. Absent on simulation figures, so old and new
	// artifacts stay merge-compatible.
	Server *ServerStats `json:"server,omitempty"`
}

// ServerStats is the server-side series block a load run records.
type ServerStats struct {
	// QPS is requests served per wall-clock second over the run.
	QPS float64 `json:"qps"`
	// HintLookupP50/P99 are hint-store lookup latencies in milliseconds.
	HintLookupP50 float64 `json:"hint_lookup_p50_ms"`
	HintLookupP99 float64 `json:"hint_lookup_p99_ms"`
	// ShedRate is shed requests / (served + shed).
	ShedRate float64 `json:"shed_rate"`
	// DegradedRate is degraded responses / served.
	DegradedRate float64 `json:"degraded_rate"`
	// Requests and Shed are the raw counters behind the rates.
	Requests int64 `json:"requests"`
	Shed     int64 `json:"shed"`
	// RecoveryMs, RecoveredTables, and Quarantined report the server's
	// cold-start restore when it ran with -state-dir: how long the
	// snapshot-load + WAL-replay pass took, how many origin tables it
	// brought back, and how many corrupt or torn artifacts it set aside.
	// All zero (and omitted) on a server without durable state.
	RecoveryMs      float64 `json:"recovery_ms,omitempty"`
	RecoveredTables int64   `json:"recovered_tables,omitempty"`
	Quarantined     int64   `json:"quarantined,omitempty"`
	// WALFsyncP99 is the WAL fsync latency p99 in milliseconds — the
	// durability tax each retrain publish pays under -state-dir.
	WALFsyncP99 float64 `json:"wal_fsync_p99_ms,omitempty"`
	// StaleRestoreRate is stale-restore-tagged responses / served: how much
	// of the storm was answered from disk-restored tables not yet refreshed
	// by background retraining.
	StaleRestoreRate float64 `json:"stale_restore_rate,omitempty"`
	// Hint-efficacy block, aggregated across every origin from the
	// server's vroom_hint_quality_* families. Precision is used hints /
	// settled hints; Recall is used hints / (used + missed fetches). All
	// omitted when the server ran without accounting.
	HintPrecision   float64 `json:"hint_precision,omitempty"`
	HintRecall      float64 `json:"hint_recall,omitempty"`
	HintsEmitted    int64   `json:"hints_emitted,omitempty"`
	PushedBytes     int64   `json:"pushed_bytes,omitempty"`
	WastedPushBytes int64   `json:"wasted_push_bytes,omitempty"`
	// PushLeadP50Ms is the median time a pushed resource sat ready before
	// the client needed it; StalenessP50Ms the median age of served hint
	// tables.
	PushLeadP50Ms  float64 `json:"push_lead_p50_ms,omitempty"`
	StalenessP50Ms float64 `json:"staleness_p50_ms,omitempty"`
	// Scrapes and ScrapeGaps report the periodic-scrape series the stats
	// were merged from: how many scrapes landed and how many gapped (both
	// the attempt and its retry failed). A gappy series means the numbers
	// above may under-count a mid-storm outage window.
	Scrapes    int `json:"scrapes,omitempty"`
	ScrapeGaps int `json:"scrape_gaps,omitempty"`
	// Origins breaks the efficacy and serving counters down per origin,
	// sorted by origin name. The telemetry layer bounds cardinality, so a
	// trailing "other" row may absorb past-cap origins.
	Origins []OriginStats `json:"origins,omitempty"`
}

// OriginStats is one origin's row in the per-tenant efficacy breakdown.
// Settlement counters attribute to the hinted URL's host while emissions
// attribute to the hinting document's origin, so cross-origin hints make
// used+unused ≤ emitted hold only over the aggregate, not per row.
type OriginStats struct {
	Origin          string  `json:"origin"`
	Requests        int64   `json:"requests,omitempty"`
	Shed            int64   `json:"shed,omitempty"`
	Degraded        int64   `json:"degraded,omitempty"`
	HintsEmitted    int64   `json:"hints_emitted,omitempty"`
	HintsUsed       int64   `json:"hints_used,omitempty"`
	HintsUnused     int64   `json:"hints_unused,omitempty"`
	HintsMissed     int64   `json:"hints_missed,omitempty"`
	Precision       float64 `json:"precision,omitempty"`
	Recall          float64 `json:"recall,omitempty"`
	PushedBytes     int64   `json:"pushed_bytes,omitempty"`
	WastedPushBytes int64   `json:"wasted_push_bytes,omitempty"`
}

// Series is one labelled distribution, distilled to the quartiles the
// terminal table prints plus mean and p95.
type Series struct {
	Label string  `json:"label"`
	N     int     `json:"n"`
	Mean  float64 `json:"mean"`
	P25   float64 `json:"p25"`
	P50   float64 `json:"p50"`
	P75   float64 `json:"p75"`
	P95   float64 `json:"p95"`
}

// PoolStats reports worker-pool usage while the figure ran.
type PoolStats struct {
	Workers     int     `json:"workers"`
	BusyMs      float64 `json:"busy_ms"`
	CapacityMs  float64 `json:"capacity_ms"`
	Utilization float64 `json:"utilization"`
	Sites       int     `json:"sites"`
}

// CacheStats reports shared-training-cache effectiveness while the figure
// ran, one hits/misses pair per cached artifact kind.
type CacheStats struct {
	TrainingHits   int64 `json:"training_hits"`
	TrainingMisses int64 `json:"training_misses"`
	PolarisHits    int64 `json:"polaris_hits"`
	PolarisMisses  int64 `json:"polaris_misses"`
	SnapshotHits   int64 `json:"snapshot_hits"`
	SnapshotMisses int64 `json:"snapshot_misses"`
}

// DirectionFor derives a figure's better-direction from its title. Latency
// and speed-index figures want lower numbers; persistence, coverage, and
// fraction-of-improvement figures want higher; anything unrecognized is
// "both" so drift in either direction surfaces.
func DirectionFor(title string) string {
	t := strings.ToLower(title)
	switch {
	case strings.Contains(t, "plt") || strings.Contains(t, "speedindex") ||
		strings.Contains(t, "(s)") || strings.Contains(t, "receipt-time"):
		return "lower"
	case strings.Contains(t, "persisting") || strings.Contains(t, "iou") ||
		strings.Contains(t, "coverage") || strings.Contains(t, "improvement"):
		return "higher"
	default:
		return "both"
	}
}

// ParseGoBench extracts benchmark result lines from `go test -bench`
// output. Lines that are not benchmark results (headers, PASS, ok) are
// skipped; malformed metric fields skip just that field.
func ParseGoBench(output string) []GoBench {
	var out []GoBench
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var b GoBench
		b.Name = fields[0]
		if _, err := fmt.Sscanf(fields[1], "%d", &b.Iterations); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			var v float64
			if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if b.NsPerOp > 0 {
			out = append(out, b)
		}
	}
	return out
}

// Load reads and validates one artifact.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchfmt: %s: schema %q, want %q", path, f.Schema, Schema)
	}
	return &f, nil
}

// Save writes one artifact, indented for diffable commits.
func Save(path string, f *File) error {
	f.Schema = Schema
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
