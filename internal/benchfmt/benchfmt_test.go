package benchfmt

import (
	"path/filepath"
	"testing"
)

func sampleFile() *File {
	return &File{
		Schema: Schema, Scale: "quick", Seed: 2017, Faults: "none", Workers: 4,
		Figures: []Figure{
			{
				ID: "fig01", Title: "Status-quo PLT CDFs (s)", Direction: "lower",
				Series: []Series{
					{Label: "h2 baseline", N: 6, Mean: 2.0, P25: 1.5, P50: 2.0, P75: 2.5, P95: 3.0},
					{Label: "vroom", N: 6, Mean: 1.0, P25: 0.8, P50: 1.0, P75: 1.2, P95: 1.5},
				},
			},
			{
				ID: "fig07", Title: "Fraction of resources persisting over time", Direction: "higher",
				Series: []Series{
					{Label: "1 day", N: 6, Mean: 0.9, P25: 0.85, P50: 0.9, P75: 0.95, P95: 0.99},
				},
			},
		},
	}
}

func TestCompareIdentical(t *testing.T) {
	a, b := sampleFile(), sampleFile()
	deltas, err := Compare(a, b, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("identical artifacts produced regressions: %v", regs)
	}
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
}

func TestComparePLTRegression(t *testing.T) {
	a, b := sampleFile(), sampleFile()
	// Doctor a 20% PLT regression into the vroom series.
	b.Figures[0].Series[1].P50 *= 1.20
	deltas, err := Compare(a, b, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Label != "vroom" {
		t.Fatalf("20%% PLT regression not flagged: %v", deltas)
	}
	// A 20% PLT *improvement* must not flag on a lower-better figure.
	c := sampleFile()
	c.Figures[0].Series[1].P50 *= 0.80
	deltas, err = Compare(a, c, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("PLT improvement flagged as regression: %v", regs)
	}
}

func TestCompareHigherBetter(t *testing.T) {
	a, b := sampleFile(), sampleFile()
	b.Figures[1].Series[0].P50 = 0.70 // persistence fell from 0.9
	deltas, err := Compare(a, b, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].FigureID != "fig07" {
		t.Fatalf("persistence drop not flagged: %v", deltas)
	}
}

func TestCompareCoverageLoss(t *testing.T) {
	a, b := sampleFile(), sampleFile()
	b.Figures = b.Figures[:1]                     // drop fig07
	b.Figures[0].Series = b.Figures[0].Series[:1] // drop the vroom series
	deltas, err := Compare(a, b, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 2 {
		t.Fatalf("lost figure + lost series should be 2 regressions, got %v", regs)
	}
}

func TestCompareCorpusMismatch(t *testing.T) {
	a, b := sampleFile(), sampleFile()
	b.Scale = "full"
	if _, err := Compare(a, b, 0.10); err == nil {
		t.Fatal("corpus mismatch not rejected")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Save(path, sampleFile()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Figures) != 2 || got.Figures[0].Series[1].P50 != 1.0 {
		t.Fatalf("round trip mangled the artifact: %+v", got)
	}
	// A wrong-schema artifact must be rejected, not silently compared.
	bad := sampleFile()
	bad.Schema = "vroom-bench/v0"
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := Save(badPath, bad); err != nil {
		t.Fatal(err)
	}
	// Save stamps the current schema; corrupt it on disk instead.
	f, err := Load(badPath)
	if err != nil || f.Schema != Schema {
		t.Fatalf("Save must stamp the schema: %v %v", f, err)
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: vroom/internal/wire
BenchmarkWireTracerOverhead/nil-8         	57735362	        20.30 ns/op	       0 B/op	       0 allocs/op
BenchmarkWireTracerOverhead/enabled-8     	 2661445	       447.2 ns/op	     136 B/op	       4 allocs/op
PASS
ok  	vroom/internal/wire	3.1s
`
	got := ParseGoBench(out)
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(got), got)
	}
	if got[0].Name != "BenchmarkWireTracerOverhead/nil-8" || got[0].NsPerOp != 20.30 ||
		got[0].AllocsPerOp != 0 || got[0].Iterations != 57735362 {
		t.Errorf("first result mangled: %+v", got[0])
	}
	if got[1].BytesPerOp != 136 || got[1].AllocsPerOp != 4 {
		t.Errorf("second result mangled: %+v", got[1])
	}
}

func TestDirectionFor(t *testing.T) {
	cases := map[string]string{
		"Status-quo PLT CDFs (s)":                                         "lower",
		"Main result: PLT / AFT / SpeedIndex":                             "lower",
		"Fraction of resources persisting over time":                      "higher",
		"Stable-set IoU vs a Nexus-6-class phone":                         "higher",
		"Discovery / fetch-completion improvement over HTTP/2 (fraction)": "higher",
		"Something else entirely":                                         "both",
	}
	for title, want := range cases {
		if got := DirectionFor(title); got != want {
			t.Errorf("DirectionFor(%q) = %q, want %q", title, got, want)
		}
	}
}
