package benchfmt

import (
	"fmt"
	"math"
	"strings"
)

// Delta is one compared series median. Rel is (new-old)/old; Regression
// marks a move past the threshold in the figure's worse direction.
type Delta struct {
	FigureID   string
	Label      string
	Old, New   float64
	Rel        float64
	Regression bool
}

func (d Delta) String() string {
	mark := " "
	if d.Regression {
		mark = "!"
	}
	return fmt.Sprintf("%s %-8s %-34s p50 %10.4f -> %10.4f  (%+.1f%%)",
		mark, d.FigureID, d.Label, d.Old, d.New, d.Rel*100)
}

// Compare diffs two benchmark artifacts series-by-series on the median.
// Regressions are moves past threshold (relative, e.g. 0.10 = 10%) in the
// figure's worse direction, plus figures or series the new run lost
// entirely (coverage loss is always a regression). Comparison requires
// matching corpus configuration — diffing a quick run against a full run
// measures the corpus, not the code.
func Compare(old, new *File, threshold float64) ([]Delta, error) {
	if old.Scale != new.Scale || old.Seed != new.Seed || old.Faults != new.Faults {
		return nil, fmt.Errorf("benchfmt: artifacts disagree on corpus: scale %s/%s seed %d/%d faults %s/%s",
			old.Scale, new.Scale, old.Seed, new.Seed, old.Faults, new.Faults)
	}
	newFigs := make(map[string]*Figure, len(new.Figures))
	for i := range new.Figures {
		newFigs[new.Figures[i].ID] = &new.Figures[i]
	}
	var deltas []Delta
	for i := range old.Figures {
		of := &old.Figures[i]
		nf, ok := newFigs[of.ID]
		if !ok {
			deltas = append(deltas, Delta{FigureID: of.ID, Label: "(figure missing)", Regression: true})
			continue
		}
		newSeries := make(map[string]*Series, len(nf.Series))
		for j := range nf.Series {
			newSeries[nf.Series[j].Label] = &nf.Series[j]
		}
		for j := range of.Series {
			os := &of.Series[j]
			ns, ok := newSeries[os.Label]
			if !ok {
				deltas = append(deltas, Delta{FigureID: of.ID, Label: os.Label + " (series missing)", Regression: true})
				continue
			}
			d := Delta{FigureID: of.ID, Label: os.Label, Old: os.P50, New: ns.P50}
			d.Rel = relChange(os.P50, ns.P50)
			d.Regression = worse(of.Direction, d.Rel, threshold)
			deltas = append(deltas, d)
		}
	}
	return deltas, nil
}

// relChange returns (new-old)/|old|, with a floor on the denominator so a
// series that moves off zero still registers.
func relChange(old, new float64) float64 {
	den := math.Abs(old)
	if den < 1e-9 {
		if math.Abs(new) < 1e-9 {
			return 0
		}
		den = 1e-9
	}
	return (new - old) / den
}

// worse reports whether a relative median move is a regression for the
// given direction.
func worse(direction string, rel, threshold float64) bool {
	switch direction {
	case "lower":
		return rel > threshold
	case "higher":
		return rel < -threshold
	default: // "both" or unknown
		return math.Abs(rel) > threshold
	}
}

// Regressions filters deltas down to the regressions.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Report renders the full delta list, regressions marked with '!'.
func Report(deltas []Delta) string {
	var b strings.Builder
	for _, d := range deltas {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
