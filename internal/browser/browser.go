// Package browser implements a deterministic simulated mobile browser
// engine: a single main thread that parses HTML, executes scripts in
// document order, and decodes subresources, coupled to a transport through
// which it fetches resources. Fetch issuance is delegated to a pluggable
// Scheduler so that the baseline (fetch on discovery), Vroom's staged
// scheduler, and Polaris-style prioritization can be compared on identical
// engine mechanics.
//
// The engine models the two couplings the paper identifies (§2-§3): the CPU
// cannot process a resource before the network delivers it, and the network
// cannot fetch a resource before CPU-driven parsing/execution (or a server
// hint) discovers it.
package browser

import (
	"fmt"
	"time"

	"vroom/internal/event"
	"vroom/internal/hints"
	"vroom/internal/obs"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// Fetched is a completed response delivered by the transport.
type Fetched struct {
	URL urlutil.URL
	// Res is the resource content; nil when the server had no content for
	// the URL (a stale hint), in which case the body was a small error
	// page.
	Res *webpage.Resource
	// Size is the number of bytes transferred.
	Size int
	// Pushed marks server-initiated delivery (HTTP/2 PUSH).
	Pushed bool
	// NotModified marks a 304 revalidation: the client's expired cached
	// copy is still valid and only headers crossed the network.
	NotModified bool
	// Failed marks a terminal transport failure (connection refused, 5xx,
	// truncated transfer); FailReason names it. The browser may retry.
	Failed     bool
	FailReason string
	// RedirectTo, when set, is where a stale hinted URL now points; the
	// response itself carried no content.
	RedirectTo urlutil.URL
	// Hints are the dependency hints carried on the response headers.
	Hints []hints.Hint
}

// Transport issues fetches on behalf of the browser. Implementations attach
// the server model and simulated network. started (may be nil) fires when
// the response headers reach the client — the browser uses it to disarm
// its response timeout, since a transfer that has started will complete.
// The returned abort func (may be nil) cancels the fetch from the
// client side; after an abort, done must not be called.
type Transport interface {
	Fetch(u urlutil.URL, started func(), done func(*Fetched)) (abort func())
}

// EntryState tracks a resource's lifecycle within a load.
type EntryState int

// Entry states.
const (
	StateKnown EntryState = iota // URL known, no fetch issued
	StateInFlight
	StateArrived
	StateProcessed
)

// Entry is the per-URL bookkeeping of a load.
type Entry struct {
	URL urlutil.URL
	Res *webpage.Resource

	State EntryState
	// Required: the page load cannot complete without this resource (it
	// was discovered by actual parsing/execution, not just hinted).
	Required bool
	// Hinted: the URL was learned from a dependency hint, so its prefetch
	// is advisory — a failure degrades to vanilla discovery.
	Hinted bool
	// Priority classifies the entry for scheduling (derived from how the
	// page uses it, or from its hint).
	Priority hints.Priority
	Pushed   bool

	// Size is the number of bytes transferred for this entry.
	Size int

	// FailReason names the terminal transport failure when the entry
	// degraded to an error body ("" otherwise).
	FailReason string

	DiscoveredAt time.Time // first knowledge (hint, push promise, or parse)
	RequiredAt   time.Time
	RequestedAt  time.Time
	// FirstByteAt is when response headers first reached the client for
	// this entry (zero if no response ever started).
	FirstByteAt time.Time
	// PushPromisedAt is when the PUSH_PROMISE for this entry reached the
	// client (zero if never promised).
	PushPromisedAt time.Time
	ArrivedAt      time.Time
	ProcessedAt    time.Time

	waiters           []func(*Entry)
	procWaiters       []func()
	processingStarted bool
	gated             bool // executed by a document's sync-script pump
	execAsync         bool

	attempts  int // fetch attempts made for the current in-flight cycle
	abort     func()
	timeoutEv *event.Event
	fetchSpan obs.Span
}

// Load is one page load in progress.
type Load struct {
	Eng       *event.Engine
	Transport Transport
	Cfg       Config
	Sched     Scheduler

	Root  urlutil.URL
	start time.Time

	entries map[string]*Entry
	order   []string

	// main-thread accounting
	cpuFreeAt time.Time
	busyTotal time.Duration

	outstandingRequired int
	finished            bool
	finishedAt          time.Time
	finalizeQueued      bool

	// fault/degradation accounting
	retries       int
	timeouts      int
	failedFetches int
	hintsFailed   int

	paints []paintEvent

	// syncChains tracks in-order execution of synchronous scripts per
	// document.
	docs map[string]*docState

	// via names the resource whose processing is currently discovering
	// references, so discovery events carry dependency edges.
	via string

	// OnFinish, when set, fires once when the load completes.
	OnFinish func()
}

type paintEvent struct {
	at     time.Time
	weight float64
}

// Config parameterizes the engine.
type Config struct {
	// Costs is the CPU cost model; zero value means MobileCosts.
	Costs Costs
	// CPUScale divides all CPU costs (1.0 = Nexus-6-class phone; larger
	// is faster). Zero means 1.0.
	CPUScale float64
	// Cache is the warm browser cache; nil means cold.
	Cache *Cache
	// CacheHitDelay is the local lookup latency for a fresh cache entry.
	CacheHitDelay time.Duration
	// NoProcessing zeroes all CPU costs (the network-bottleneck lower
	// bound of §2: resources fetched but not evaluated).
	NoProcessing bool
	// FetchTimeout bounds one fetch attempt's time to response headers:
	// when it expires before any response has started the attempt is
	// aborted and counts as failed. It is deliberately not a
	// total-transfer bound — a loaded link can take longer than any
	// reasonable timeout to finish a transfer that is making progress, and
	// killing it only to re-download wastes the bandwidth that made it
	// slow. Zero disables timeouts — the pre-fault-injection behaviour.
	FetchTimeout time.Duration
	// Retry is the policy for reissuing failed fetch attempts.
	Retry RetryPolicy
	// OnFetchFailure, when set, observes every terminal per-attempt failure
	// (the runner uses it to mark origins unhealthy).
	OnFetchFailure func(u urlutil.URL, reason string)
	// Trace records main-thread task slices and per-resource fetch
	// lifecycle events. Nil disables tracing.
	Trace *obs.Tracer
}

// RetryPolicy caps retries of failed fetches with exponential backoff.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Zero or one means no retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy mirrors common browser/CDN client defaults: three
// attempts, 250ms initial backoff, 4s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 250 * time.Millisecond, MaxBackoff: 4 * time.Second}
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the delay before the given retry (attempt counts the
// tries already made, so the first retry sees attempt == 1).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		d = 250 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

func (c Config) costs() Costs {
	if c.Costs == (Costs{}) {
		return MobileCosts()
	}
	return c.Costs
}

func (c Config) scale() float64 {
	if c.CPUScale <= 0 {
		return 1.0
	}
	return c.CPUScale
}

// docState tracks incremental parsing of one HTML document.
type docState struct {
	entry    *Entry
	steps    []docStep
	idx      int
	running  bool
	waiting  bool
	finished bool
	inline   []webpage.Discovered
	iframes  []webpage.Discovered
}

// NewLoad prepares a page load for the given root URL.
func NewLoad(eng *event.Engine, tr Transport, cfg Config, sched Scheduler, root urlutil.URL) *Load {
	if sched == nil {
		sched = &FetchASAP{}
	}
	l := &Load{
		Eng:       eng,
		Transport: tr,
		Cfg:       cfg,
		Sched:     sched,
		Root:      root,
		entries:   make(map[string]*Entry),
		docs:      make(map[string]*docState),
	}
	return l
}

// Start begins the load at the current simulation time.
func (l *Load) Start() {
	l.start = l.Eng.Now()
	l.cpuFreeAt = l.start
	l.Sched.Start(l)
	l.Require(l.Root, hints.High)
}

// StartTime returns when the load began.
func (l *Load) StartTime() time.Time { return l.start }

// Tracer returns the load's tracer (nil when tracing is disabled).
// Schedulers and the server farm use it to emit onto the shared recording.
func (l *Load) Tracer() *obs.Tracer { return l.Cfg.Trace }

// Entry returns (creating) the bookkeeping entry for a URL.
func (l *Load) Entry(u urlutil.URL) *Entry {
	key := u.String()
	e, ok := l.entries[key]
	if !ok {
		e = &Entry{URL: u, DiscoveredAt: l.Eng.Now(), Priority: hints.Low}
		l.entries[key] = e
		l.order = append(l.order, key)
		if l.Cfg.Trace.Enabled() {
			l.Cfg.Trace.Instant(obs.TrackLoad, "discover:"+key, obs.Arg{Key: "by", Val: l.via})
		}
	}
	return e
}

// Entries returns all entries in discovery order.
func (l *Load) Entries() []*Entry {
	out := make([]*Entry, 0, len(l.order))
	for _, k := range l.order {
		out = append(out, l.entries[k])
	}
	return out
}

// Hint registers a dependency hint: the URL becomes known and is handed to
// the scheduler, which decides when (or whether) to fetch it.
func (l *Load) Hint(h hints.Hint) {
	e := l.Entry(h.URL)
	e.Hinted = true
	if h.Priority < e.Priority {
		e.Priority = h.Priority
	}
	l.Sched.OnHint(l, e, h)
}

// Require marks a resource as needed by the page (discovered through actual
// parsing/execution, or the root itself). The scheduler is told so it can
// issue or reorder the fetch.
func (l *Load) Require(u urlutil.URL, prio hints.Priority) *Entry {
	e := l.Entry(u)
	if prio < e.Priority {
		e.Priority = prio
	}
	if !e.Required {
		e.Required = true
		e.RequiredAt = l.Eng.Now()
		if l.Cfg.Trace.Enabled() {
			l.Cfg.Trace.Instant(obs.TrackLoad, "require:"+u.String(), obs.Arg{Key: "by", Val: l.via})
		}
		l.outstandingRequired++
		if e.State == StateArrived {
			l.beginProcessing(e)
		} else {
			l.Sched.OnRequired(l, e)
		}
	}
	return e
}

// FetchNow issues the network fetch for an entry unless one is already in
// flight or the resource is already local. Schedulers call this.
func (l *Load) FetchNow(e *Entry) {
	if e.State != StateKnown {
		return
	}
	e.State = StateInFlight
	e.RequestedAt = l.Eng.Now()
	e.attempts = 0
	if l.Cfg.Cache != nil {
		if res, ok := l.Cfg.Cache.Get(e.URL.String(), l.Eng.Now()); ok {
			delay := l.Cfg.CacheHitDelay
			if delay <= 0 {
				delay = time.Millisecond
			}
			if l.Cfg.Trace.Enabled() {
				l.Cfg.Trace.Instant(obs.TrackLoad, "cache-hit:"+e.URL.String())
			}
			l.Eng.ScheduleAfter(delay, "cache-hit", func() {
				l.deliver(e, &Fetched{URL: e.URL, Res: res, Size: 0})
			})
			return
		}
	}
	l.fetchAttempt(e)
}

// fetchAttempt issues one transport attempt for an in-flight entry, arming
// the per-attempt first-byte timeout.
func (l *Load) fetchAttempt(e *Entry) {
	e.attempts++
	settled := false
	if tr := l.Cfg.Trace; tr.Enabled() {
		e.fetchSpan = tr.Begin(obs.TrackLoad, "fetch:"+e.URL.String(),
			obs.Arg{Key: "attempt", Val: fmt.Sprint(e.attempts)})
	}
	e.abort = l.Transport.Fetch(e.URL, func() {
		if settled {
			return
		}
		// Headers arrived: the response is live, so stop the clock. Faults
		// that strike after this point (truncation, 5xx body) surface
		// through the done callback, not the timeout.
		if e.FirstByteAt.IsZero() {
			e.FirstByteAt = l.Eng.Now()
		}
		if l.Cfg.Trace.Enabled() {
			l.Cfg.Trace.Instant(obs.TrackLoad, "headers:"+e.URL.String())
		}
		l.clearTimeout(e)
	}, func(f *Fetched) {
		if settled {
			return
		}
		settled = true
		l.clearTimeout(e)
		e.abort = nil
		if f.Failed {
			l.endFetchSpan(e, "failed:"+f.FailReason)
			l.onFetchFailed(e, f.FailReason)
			return
		}
		l.endFetchSpan(e, "ok")
		l.deliver(e, f)
	})
	if l.Cfg.FetchTimeout > 0 {
		e.timeoutEv = l.Eng.ScheduleAfter(l.Cfg.FetchTimeout, "fetch-timeout@"+e.URL.String(), func() {
			if settled {
				return
			}
			settled = true
			e.timeoutEv = nil
			l.timeouts++
			if e.abort != nil {
				e.abort() // stream reset: frees a wedged connection
				e.abort = nil
			}
			l.endFetchSpan(e, "timeout")
			l.onFetchFailed(e, "timeout")
		})
	}
}

// endFetchSpan closes the entry's open fetch-attempt span with its outcome.
func (l *Load) endFetchSpan(e *Entry, outcome string) {
	if e.fetchSpan.Active() {
		e.fetchSpan.End(obs.Arg{Key: "outcome", Val: outcome})
		e.fetchSpan = obs.Span{}
	}
}

// onFetchFailed handles one failed attempt: retry with capped exponential
// backoff while budget remains, otherwise degrade. Only required work earns
// retries — an advisory prefetch is pure speculation, and a speculative
// fetch grinding through its backoff schedule holds the scheduler's stage
// gates hostage for something the page may never need. It degrades to
// vanilla discovery after a single failure instead, and if parsing later
// requires the URL the fetch reissues with a full fresh budget.
func (l *Load) onFetchFailed(e *Entry, reason string) {
	l.failedFetches++
	if l.Cfg.OnFetchFailure != nil {
		l.Cfg.OnFetchFailure(e.URL, reason)
	}
	if e.Required && e.attempts < l.Cfg.Retry.maxAttempts() {
		l.retries++
		delay := l.Cfg.Retry.backoff(e.attempts)
		if tr := l.Cfg.Trace; tr.Enabled() {
			now := l.Eng.Now()
			tr.BeginAt(now, obs.TrackLoad, "backoff:"+e.URL.String(),
				obs.Arg{Key: "after", Val: reason}).EndAt(now.Add(delay))
		}
		l.Eng.ScheduleAfter(delay, "retry@"+e.URL.String(), func() {
			if e.State != StateInFlight {
				return
			}
			l.fetchAttempt(e)
		})
		return
	}
	l.giveUp(e, reason)
}

// giveUp retires an entry whose retry budget is exhausted (for advisory
// prefetches, after the single attempt they get). The invariant: a failed
// fetch must never block parse/execute progress.
//
//   - A required resource degrades to an error body — the page renders
//     without it rather than hanging (browsers fire onerror and move on).
//   - An advisory (hinted) prefetch reverts to vanilla discovery: the entry
//     returns to StateKnown so that if parsing later requires the URL, the
//     fetch is reissued with a fresh budget.
func (l *Load) giveUp(e *Entry, reason string) {
	if e.Hinted {
		l.hintsFailed++
	}
	if l.Cfg.Trace.Enabled() {
		l.Cfg.Trace.Instant(obs.TrackLoad, "give-up:"+e.URL.String(), obs.Arg{Key: "reason", Val: reason})
	}
	if e.Required {
		l.deliver(e, &Fetched{URL: e.URL, Failed: true, FailReason: reason})
		return
	}
	e.State = StateKnown
	e.attempts = 0
	l.Sched.OnArrived(l, e) // retire the issue so stages advance past it
}

// clearTimeout cancels an entry's pending attempt timeout, if any.
func (l *Load) clearTimeout(e *Entry) {
	if e.timeoutEv != nil {
		l.Eng.Cancel(e.timeoutEv)
		e.timeoutEv = nil
	}
}

// PushPromise records a server's announcement that it will push u; the
// browser will not issue its own request for a promised resource. There is
// no timer on a promise: every way a push can die in the network (stalled,
// 5xx, truncated stream) reports back through PushFailed, and a slow push
// that is merely queued behind other responses will arrive.
func (l *Load) PushPromise(u urlutil.URL) {
	e := l.Entry(u)
	if e.State != StateKnown {
		return
	}
	e.State = StateInFlight
	e.Pushed = true
	e.RequestedAt = l.Eng.Now()
	e.PushPromisedAt = l.Eng.Now()
	if l.Cfg.Trace.Enabled() {
		l.Cfg.Trace.Instant(obs.TrackLoad, "push-promise:"+u.String())
	}
}

// PushFailed tells the browser a promised push died before delivering (the
// server stream was reset). The entry re-enters the normal fetch path.
func (l *Load) PushFailed(u urlutil.URL, reason string) {
	e := l.Entry(u)
	if e.State != StateInFlight {
		return
	}
	l.failedFetches++
	if l.Cfg.OnFetchFailure != nil {
		l.Cfg.OnFetchFailure(u, reason)
	}
	if l.Cfg.Trace.Enabled() {
		l.Cfg.Trace.Instant(obs.TrackLoad, "push-failed:"+u.String(), obs.Arg{Key: "reason", Val: reason})
	}
	l.pushBroken(e)
}

// pushBroken recovers an entry whose promised push never delivered: it
// returns to StateKnown, and if the page already required it the scheduler
// is re-asked so the fetch goes out client-initiated.
func (l *Load) pushBroken(e *Entry) {
	l.clearTimeout(e)
	e.State = StateKnown
	e.attempts = 0
	if e.Required {
		l.Sched.OnRequired(l, e)
	}
}

// PushArrived delivers a pushed response body.
func (l *Load) PushArrived(f *Fetched) {
	e := l.Entry(f.URL)
	e.Pushed = true
	if e.State == StateProcessed || e.State == StateArrived {
		return // duplicate push of something we already have
	}
	e.State = StateInFlight
	l.deliver(e, f)
}

// deliver finalizes arrival of a response (fetched, pushed, cache hit, or
// an exhausted-retries error body).
func (l *Load) deliver(e *Entry, f *Fetched) {
	if e.State == StateArrived || e.State == StateProcessed {
		return
	}
	l.clearTimeout(e)
	e.abort = nil
	e.State = StateArrived
	e.ArrivedAt = l.Eng.Now()
	e.Res = f.Res
	e.Size = f.Size
	if f.Failed {
		e.FailReason = f.FailReason
	}
	if tr := l.Cfg.Trace; tr.Enabled() {
		args := []obs.Arg{{Key: "bytes", Val: fmt.Sprint(f.Size)}}
		if f.Pushed {
			args = append(args, obs.Arg{Key: "pushed", Val: "1"})
		}
		if f.Failed {
			args = append(args, obs.Arg{Key: "failed", Val: f.FailReason})
		}
		tr.Instant(obs.TrackLoad, "arrived:"+e.URL.String(), args...)
	}
	if f.Pushed {
		e.Pushed = true
	}
	if e.Hinted && f.Res == nil && !f.NotModified && !f.Failed && f.RedirectTo.Host == "" {
		l.hintsFailed++ // stale hint: the server 404ed the prefetch
	}
	if l.Cfg.Cache != nil && f.Res != nil && f.Res.Cacheable {
		l.Cfg.Cache.Put(e.URL.String(), f.Res, l.Eng.Now())
	}
	if len(f.Hints) > 0 {
		restore := l.setVia(e)
		for _, h := range f.Hints {
			l.Hint(h)
		}
		restore()
	}
	if f.RedirectTo.Host != "" {
		// A stale hint that redirects: follow to the fresh URL as a new
		// hint-driven prefetch, paying the extra round trip.
		l.Hint(hints.Hint{URL: f.RedirectTo, Priority: e.Priority})
	}
	if e.Required {
		l.beginProcessing(e)
	}
	for _, w := range e.waiters {
		w(e)
	}
	e.waiters = nil
	l.Sched.OnArrived(l, e)
}

// onEntryDone marks a required entry fully processed and checks completion.
func (l *Load) onEntryDone(e *Entry) {
	if e.State == StateProcessed {
		return
	}
	e.State = StateProcessed
	e.ProcessedAt = l.Eng.Now()
	if l.Cfg.Trace.Enabled() {
		l.Cfg.Trace.Instant(obs.TrackLoad, "processed:"+e.URL.String())
	}
	if e.Res != nil && e.Res.ViewportWeight > 0 {
		l.paints = append(l.paints, paintEvent{at: e.ProcessedAt, weight: e.Res.ViewportWeight})
	}
	for _, w := range e.procWaiters {
		w()
	}
	e.procWaiters = nil
	if e.Required {
		l.outstandingRequired--
		l.checkFinished()
	}
}

// checkFinished fires the onload event once every required resource is
// fetched and processed, after a final layout task.
func (l *Load) checkFinished() {
	if l.finished || l.outstandingRequired > 0 || l.finalizeQueued {
		return
	}
	l.finalizeQueued = true
	l.runTask(l.cost(l.Cfg.costs().Finalize), "finalize", func() {
		l.finalizeQueued = false
		if l.outstandingRequired > 0 {
			return // finalize raced with a late discovery; it will re-run
		}
		l.finished = true
		l.finishedAt = l.Eng.Now()
		if l.OnFinish != nil {
			l.OnFinish()
		}
	})
}

// Finished reports whether onload has fired.
func (l *Load) Finished() bool { return l.finished }

// cost scales a CPU cost by the configured CPU speed.
func (l *Load) cost(d time.Duration) time.Duration {
	if l.Cfg.NoProcessing {
		return 0
	}
	return time.Duration(float64(d) / l.Cfg.scale())
}

// runTask queues a task on the main thread (FIFO) and invokes fn when it
// completes.
func (l *Load) runTask(d time.Duration, name string, fn func()) {
	now := l.Eng.Now()
	start := l.cpuFreeAt
	if start.Before(now) {
		start = now
	}
	end := start.Add(d)
	l.cpuFreeAt = end
	l.busyTotal += d
	if tr := l.Cfg.Trace; tr.Enabled() && d > 0 {
		tr.BeginAt(start, obs.TrackMain, name).EndAt(end)
	}
	l.Eng.Schedule(end, "task:"+name, fn)
}

// setVia records e as the resource currently discovering references, so
// discover/require instants carry the dependency edge. It returns a restore
// func for the previous context (discovery can nest: a sync script's
// document.write runs inside the document pump).
func (l *Load) setVia(e *Entry) func() {
	prev := l.via
	l.via = e.URL.String()
	return func() { l.via = prev }
}

// onArrivedOrNow runs fn immediately if the entry has arrived, or when it
// does.
func (l *Load) onArrivedOrNow(e *Entry, fn func(*Entry)) {
	if e.State == StateArrived || e.State == StateProcessed {
		fn(e)
		return
	}
	e.waiters = append(e.waiters, fn)
}

// onProcessed runs fn immediately if the entry is fully processed, or when
// it becomes so.
func (l *Load) onProcessed(e *Entry, fn func()) {
	if e.State == StateProcessed {
		fn()
		return
	}
	e.procWaiters = append(e.procWaiters, fn)
}

func (l *Load) String() string {
	return fmt.Sprintf("load(%s, %d entries, required out %d)", l.Root, len(l.entries), l.outstandingRequired)
}
