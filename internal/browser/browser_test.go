package browser

import (
	"testing"
	"time"

	"vroom/internal/event"
	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

var t0 = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

// fakeTransport serves a snapshot with a fixed per-resource delay on the
// event engine; no bandwidth modeling.
type fakeTransport struct {
	eng   *event.Engine
	sn    *webpage.Snapshot
	delay time.Duration
	// perURL overrides the delay for specific URLs.
	perURL map[string]time.Duration
	// log records fetch issue order.
	log []string
}

func (ft *fakeTransport) Fetch(u urlutil.URL, started func(), done func(*Fetched)) func() {
	ft.log = append(ft.log, u.String())
	d := ft.delay
	if o, ok := ft.perURL[u.String()]; ok {
		d = o
	}
	ft.eng.ScheduleAfter(d, "fake-fetch", func() {
		res, ok := ft.sn.Lookup(u)
		if !ok {
			done(&Fetched{URL: u, Res: nil, Size: 1200})
			return
		}
		done(&Fetched{URL: u, Res: res, Size: res.Size})
	})
	return nil
}

func loadSite(t *testing.T, cfg Config, sched Scheduler, delay time.Duration) (*Load, *fakeTransport) {
	t.Helper()
	site := webpage.NewSite("browsertest", webpage.Top100, 33)
	sn := site.Snapshot(t0, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	eng := event.New(t0)
	ft := &fakeTransport{eng: eng, sn: sn, delay: delay, perURL: map[string]time.Duration{}}
	l := NewLoad(eng, ft, cfg, sched, site.RootURL())
	l.Start()
	if _, err := eng.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if !l.Finished() {
		t.Fatalf("load did not finish: %s", l)
	}
	return l, ft
}

func TestLoadCompletesAndCoversSnapshot(t *testing.T) {
	l, ft := loadSite(t, Config{}, nil, 50*time.Millisecond)
	res := l.Result()
	if res.PLT <= 0 {
		t.Fatal("no PLT")
	}
	want := webpage.CrawlURLSet(ft.sn)
	got := map[string]bool{}
	for _, e := range l.Entries() {
		if e.Required && e.State == StateProcessed {
			got[e.URL.String()] = true
		}
	}
	for u := range want {
		if !got[u] {
			t.Errorf("crawlable resource not loaded: %s", u)
		}
	}
	if res.NumRequired != len(want) {
		t.Errorf("NumRequired = %d, crawl set %d", res.NumRequired, len(want))
	}
}

func TestZeroNetworkIsCPUBound(t *testing.T) {
	l, _ := loadSite(t, Config{}, nil, 0)
	res := l.Result()
	if res.IdleFrac > 0.05 {
		t.Errorf("idle fraction %.2f with instant network", res.IdleFrac)
	}
}

func TestNoProcessingIsNetworkBound(t *testing.T) {
	l, _ := loadSite(t, Config{NoProcessing: true}, nil, 30*time.Millisecond)
	res := l.Result()
	if res.CPUBusy != 0 {
		t.Errorf("CPU busy %v with NoProcessing", res.CPUBusy)
	}
}

func TestSlowNetworkIncreasesIdle(t *testing.T) {
	fastL, _ := loadSite(t, Config{}, nil, 5*time.Millisecond)
	slowL, _ := loadSite(t, Config{}, nil, 300*time.Millisecond)
	fast, slow := fastL.Result(), slowL.Result()
	if slow.PLT <= fast.PLT {
		t.Errorf("slower network did not slow load: %v vs %v", slow.PLT, fast.PLT)
	}
	if slow.IdleFrac <= fast.IdleFrac {
		t.Errorf("idle fraction did not grow: %.2f vs %.2f", slow.IdleFrac, fast.IdleFrac)
	}
}

func TestCPUScaleSpeedsLoad(t *testing.T) {
	phoneL, _ := loadSite(t, Config{}, nil, 20*time.Millisecond)
	desktopL, _ := loadSite(t, Config{CPUScale: 8}, nil, 20*time.Millisecond)
	if desktopL.Result().PLT >= phoneL.Result().PLT {
		t.Errorf("8x CPU not faster: %v vs %v", desktopL.Result().PLT, phoneL.Result().PLT)
	}
}

func TestSyncScriptBlocksCriticalPath(t *testing.T) {
	// Delay exactly one synchronous head script massively; PLT must absorb
	// it (the parser stalls), demonstrating the CPU/network coupling.
	site := webpage.NewSite("browsertest", webpage.Top100, 33)
	sn := site.Snapshot(t0, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	var syncJS string
	for _, r := range sn.Ordered() {
		if r.Type == webpage.JS && !r.Async && !r.InIframe && !r.ParserBlocking {
			syncJS = r.URL.String()
			break
		}
	}
	if syncJS == "" {
		t.Skip("no sync script in generated site")
	}
	run := func(extra time.Duration) time.Duration {
		eng := event.New(t0)
		ft := &fakeTransport{eng: eng, sn: sn, delay: 10 * time.Millisecond,
			perURL: map[string]time.Duration{syncJS: extra}}
		l := NewLoad(eng, ft, Config{}, nil, site.RootURL())
		l.Start()
		if _, err := eng.Run(3_000_000); err != nil {
			t.Fatal(err)
		}
		if !l.Finished() {
			t.Fatal("unfinished")
		}
		return l.Result().PLT
	}
	base := run(10 * time.Millisecond)
	delayed := run(3 * time.Second)
	if delayed < base+2*time.Second {
		t.Errorf("sync script delay not on critical path: %v vs %v", delayed, base)
	}
}

func TestCacheHitsSkipNetwork(t *testing.T) {
	cache := NewCache()
	l1, ft1 := loadSite(t, Config{Cache: cache}, nil, 40*time.Millisecond)
	if cache.Len() == 0 {
		t.Fatal("nothing cached after first load")
	}
	_ = l1
	// Second load, same snapshot: cached fetches bypass the transport.
	eng := event.New(t0.Add(time.Minute))
	ft := &fakeTransport{eng: eng, sn: ft1.sn, delay: 40 * time.Millisecond, perURL: map[string]time.Duration{}}
	l2 := NewLoad(eng, ft, Config{Cache: cache}, nil, ft1.sn.Root)
	l2.Start()
	if _, err := eng.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if !l2.Finished() {
		t.Fatal("unfinished warm load")
	}
	if len(ft.log) >= len(ft1.log) {
		t.Errorf("warm load fetched %d vs cold %d", len(ft.log), len(ft1.log))
	}
	if l2.Result().PLT >= l1.Result().PLT {
		t.Errorf("warm load not faster: %v vs %v", l2.Result().PLT, l1.Result().PLT)
	}
}

func TestPushAvoidsDuplicateRequest(t *testing.T) {
	site := webpage.NewSite("browsertest", webpage.Top100, 33)
	sn := site.Snapshot(t0, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	eng := event.New(t0)
	ft := &fakeTransport{eng: eng, sn: sn, delay: 30 * time.Millisecond, perURL: map[string]time.Duration{}}
	l := NewLoad(eng, ft, Config{}, nil, site.RootURL())

	// Find a stylesheet to push.
	var css *webpage.Resource
	for _, r := range sn.Ordered() {
		if r.Type == webpage.CSS {
			css = r
			break
		}
	}
	if css == nil {
		t.Skip("no css")
	}
	l.Start()
	l.PushPromise(css.URL)
	eng.ScheduleAfter(5*time.Millisecond, "push-body", func() {
		l.PushArrived(&Fetched{URL: css.URL, Res: css, Size: css.Size, Pushed: true})
	})
	if _, err := eng.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if !l.Finished() {
		t.Fatal("unfinished")
	}
	for _, u := range ft.log {
		if u == css.URL.String() {
			t.Fatal("browser requested a pushed resource")
		}
	}
	e := l.Entry(css.URL)
	if !e.Pushed || e.State != StateProcessed {
		t.Fatalf("pushed entry state: %+v", e)
	}
}

func TestHintsPrefetchSpeculative(t *testing.T) {
	site := webpage.NewSite("browsertest", webpage.Top100, 33)
	sn := site.Snapshot(t0, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	eng := event.New(t0)
	ft := &fakeTransport{eng: eng, sn: sn, delay: 30 * time.Millisecond, perURL: map[string]time.Duration{}}
	l := NewLoad(eng, ft, Config{}, &FetchASAP{FollowHints: true}, site.RootURL())
	l.Start()
	// Hint a URL the page never references.
	stale := urlutil.MustParse("https://static.browsertest.com/js/gone-123.js")
	l.Hint(hints.Hint{URL: stale, Priority: hints.High})
	if _, err := eng.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if !l.Finished() {
		t.Fatal("speculative fetch blocked onload")
	}
	res := l.Result()
	if res.WastedBytes == 0 {
		t.Error("stale hint fetch not counted as waste")
	}
}

func TestVisualMetrics(t *testing.T) {
	l, _ := loadSite(t, Config{}, nil, 30*time.Millisecond)
	res := l.Result()
	if res.AFT <= 0 || res.AFT > res.PLT {
		t.Errorf("AFT %v outside (0, PLT=%v]", res.AFT, res.PLT)
	}
	if res.SpeedIndex <= 0 || res.SpeedIndex > float64(res.PLT.Milliseconds()) {
		t.Errorf("SpeedIndex %.0f outside (0, %d]", res.SpeedIndex, res.PLT.Milliseconds())
	}
}

func TestCostsMonotonicInSize(t *testing.T) {
	c := MobileCosts()
	for _, typ := range []webpage.ResourceType{webpage.HTML, webpage.CSS, webpage.JS, webpage.Image, webpage.JSON} {
		if c.For(typ, 100_000) <= c.For(typ, 1_000) {
			t.Errorf("%v cost not monotonic", typ)
		}
	}
}

func TestCacheExpiry(t *testing.T) {
	cache := NewCache()
	res := &webpage.Resource{Cacheable: true, TTL: time.Hour}
	cache.Put("u", res, t0)
	if !cache.Fresh("u", t0.Add(30*time.Minute)) {
		t.Error("entry expired early")
	}
	if cache.Fresh("u", t0.Add(2*time.Hour)) {
		t.Error("entry served after TTL")
	}
	cache.Put("nc", &webpage.Resource{Cacheable: false}, t0)
	if cache.Fresh("nc", t0) {
		t.Error("uncacheable entry stored")
	}
}
