package browser

import (
	"time"

	"vroom/internal/webpage"
)

// Cache is the browser's HTTP cache, keyed by URL. Entries expire per the
// resource's TTL; the digest of cached URLs is also what a Vroom server
// consults to avoid pushing content the client already holds (§6.1,
// "VROOM accelerates page loads with warm caches").
type Cache struct {
	entries map[string]cacheEntry
}

type cacheEntry struct {
	res     *webpage.Resource
	expires time.Time
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]cacheEntry)}
}

// Get returns the cached resource if present and fresh at now.
func (c *Cache) Get(url string, now time.Time) (*webpage.Resource, bool) {
	e, ok := c.entries[url]
	if !ok || now.After(e.expires) {
		return nil, false
	}
	return e.res, true
}

// Fresh reports whether url is cached and unexpired (the server-side cache
// digest check).
func (c *Cache) Fresh(url string, now time.Time) bool {
	_, ok := c.Get(url, now)
	return ok
}

// Stale reports whether url is cached but expired — a candidate for
// conditional revalidation (If-None-Match → 304).
func (c *Cache) Stale(url string, now time.Time) bool {
	e, ok := c.entries[url]
	return ok && now.After(e.expires)
}

// Put stores a cacheable resource.
func (c *Cache) Put(url string, res *webpage.Resource, now time.Time) {
	if res == nil || !res.Cacheable || res.TTL <= 0 {
		return
	}
	c.entries[url] = cacheEntry{res: res, expires: now.Add(res.TTL)}
}

// Len returns the number of cached entries (including expired ones not yet
// evicted).
func (c *Cache) Len() int { return len(c.entries) }
