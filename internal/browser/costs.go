package browser

import (
	"time"

	"vroom/internal/webpage"
)

// Costs is the main-thread CPU cost model: a fixed per-task overhead plus a
// per-kilobyte rate for each resource type, at CPUScale 1.0 (a 2017
// flagship phone).
type Costs struct {
	HTMLBase   time.Duration
	HTMLPerKB  time.Duration
	JSBase     time.Duration
	JSPerKB    time.Duration
	CSSBase    time.Duration
	CSSPerKB   time.Duration
	ImageBase  time.Duration
	ImagePerKB time.Duration
	JSONBase   time.Duration
	JSONPerKB  time.Duration
	OtherBase  time.Duration
	// Finalize is the closing layout/paint work before onload fires.
	Finalize time.Duration
}

// MobileCosts returns the cost model calibrated so that CPU-bound loads of
// the generated News/Sports corpus land near the paper's ~5 s median
// (Fig. 2), with JavaScript execution dominating — the finding of the
// mobile browsing studies the paper cites [34, 44].
func MobileCosts() Costs {
	return Costs{
		HTMLBase:  15 * time.Millisecond,
		HTMLPerKB: 2200 * time.Microsecond,
		JSBase:    9 * time.Millisecond,
		JSPerKB:   3600 * time.Microsecond,
		CSSBase:   4 * time.Millisecond,
		CSSPerKB:  1100 * time.Microsecond,
		// Image decode happens off the main thread in modern engines;
		// only a small raster/upload slice lands on it.
		ImageBase:  300 * time.Microsecond,
		ImagePerKB: 6 * time.Microsecond,
		JSONBase:   1 * time.Millisecond,
		JSONPerKB:  120 * time.Microsecond,
		OtherBase:  300 * time.Microsecond,
		Finalize:   120 * time.Millisecond,
	}
}

// For returns the processing cost of one resource.
func (c Costs) For(t webpage.ResourceType, size int) time.Duration {
	kb := float64(size) / 1024
	switch t {
	case webpage.HTML:
		return c.HTMLBase + time.Duration(kb*float64(c.HTMLPerKB))
	case webpage.JS:
		return c.JSBase + time.Duration(kb*float64(c.JSPerKB))
	case webpage.CSS:
		return c.CSSBase + time.Duration(kb*float64(c.CSSPerKB))
	case webpage.Image, webpage.Media:
		return c.ImageBase + time.Duration(kb*float64(c.ImagePerKB))
	case webpage.JSON:
		return c.JSONBase + time.Duration(kb*float64(c.JSONPerKB))
	default:
		return c.OtherBase
	}
}
