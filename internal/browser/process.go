package browser

import (
	"time"

	"vroom/internal/hints"
	"vroom/internal/webpage"
)

// refPriority maps a discovered reference to Vroom's priority classes
// (Table 1): resources needing processing are high, async scripts semi,
// everything else — and whole iframe subtrees — low. The type is inferred
// from the URL the way a browser classifies a request before the response
// arrives.
func refPriority(d webpage.Discovered) hints.Priority {
	switch webpage.TypeFromURL(d.URL) {
	case webpage.HTML:
		return hints.Low // iframes and their subtrees (footnote 4)
	case webpage.CSS:
		return hints.High
	case webpage.JS:
		if d.Async {
			return hints.Semi
		}
		return hints.High
	default:
		return hints.Low
	}
}

// beginProcessing is invoked when an entry is both required and arrived.
func (l *Load) beginProcessing(e *Entry) {
	if e.processingStarted {
		return
	}
	e.processingStarted = true
	if e.Res == nil {
		// Stale hint or vanished resource: a small error body, nothing to
		// process.
		l.runTask(0, "error-body", func() { l.onEntryDone(e) })
		return
	}
	switch e.Res.Type {
	case webpage.HTML:
		l.processDocument(e)
	case webpage.CSS:
		l.processCSS(e)
	case webpage.JS:
		l.processJS(e)
	default:
		c := l.Cfg.costs()
		l.runTask(l.cost(c.For(e.Res.Type, e.Res.Size)), e.Res.Type.String(), func() { l.onEntryDone(e) })
	}
}

// docStep is one unit of document processing: a parse segment, or a
// synchronous script execution that gates further parsing.
type docStep struct {
	parse  time.Duration // segment duration; used when script == nil
	script *Entry
	// cssGate lists stylesheets declared before the script: real engines
	// block script execution on pending CSSOM construction.
	cssGate []*Entry
}

// processDocument models an HTML document the way browsers load one:
//
//   - a preload scan fires the moment the bytes arrive, requesting every
//     statically declared subresource (scripts, stylesheets, images) ahead
//     of the parser;
//   - parsing then proceeds incrementally, pausing at each synchronous
//     script until that script has arrived, earlier stylesheets have been
//     parsed, and the script has executed — the CPU/network coupling at the
//     core of the paper;
//   - iframes and inline-code references surface only as parsing passes
//     them, and iframe documents begin loading after the embedding parse
//     completes (footnote 4).
func (l *Load) processDocument(e *Entry) {
	doc := &docState{entry: e}
	l.docs[e.URL.String()] = doc

	defer l.setVia(e)()
	refs := webpage.ExtractRefs(e.Res)
	// Preload scan. Gating flags must be set before Require: a resource
	// may already have arrived (hint prefetch, warm cache), in which case
	// Require starts processing immediately and must already know the
	// script's execution is owned by this document's parser.
	var cssSoFar []*Entry
	for _, d := range refs {
		typ := webpage.TypeFromURL(d.URL)
		if typ == webpage.HTML || d.Inline {
			continue
		}
		child := l.Entry(d.URL)
		if typ == webpage.JS {
			if d.Async {
				child.execAsync = true
			} else {
				child.gated = true
			}
		}
		l.Require(d.URL, refPriority(d))
	}

	// Build the parse/execute step sequence.
	c := l.Cfg.costs()
	total := l.cost(c.For(webpage.HTML, e.Res.Size))
	bodyLen := len(e.Res.Body)
	if bodyLen == 0 {
		bodyLen = 1
	}
	prevOffset := 0
	for _, d := range refs {
		typ := webpage.TypeFromURL(d.URL)
		switch {
		case typ == webpage.CSS && !d.Inline:
			cssSoFar = append(cssSoFar, l.Entry(d.URL))
		case typ == webpage.JS && !d.Async && !d.Inline:
			seg := segmentCost(total, prevOffset, d.Offset, bodyLen)
			prevOffset = d.Offset
			gate := make([]*Entry, len(cssSoFar))
			copy(gate, cssSoFar)
			doc.steps = append(doc.steps,
				docStep{parse: seg},
				docStep{script: l.Entry(d.URL), cssGate: gate})
		case typ == webpage.HTML:
			doc.iframes = append(doc.iframes, d)
		case d.Inline:
			doc.inline = append(doc.inline, d)
		}
	}
	doc.steps = append(doc.steps, docStep{parse: segmentCost(total, prevOffset, bodyLen, bodyLen)})
	l.advanceDoc(doc)
}

func segmentCost(total time.Duration, from, to, bodyLen int) time.Duration {
	if to < from {
		to = from
	}
	return time.Duration(float64(total) * float64(to-from) / float64(bodyLen))
}

// advanceDoc drives a document's step sequence forward.
func (l *Load) advanceDoc(doc *docState) {
	if doc.running || doc.waiting {
		return
	}
	if doc.idx >= len(doc.steps) {
		l.finishDoc(doc)
		return
	}
	step := doc.steps[doc.idx]
	if step.script == nil {
		doc.running = true
		l.runTask(step.parse, "parse-html", func() {
			doc.running = false
			doc.idx++
			l.advanceDoc(doc)
		})
		return
	}
	e := step.script
	// The parser is blocked: the script must be here...
	if e.State != StateArrived && e.State != StateProcessed {
		doc.waiting = true
		l.onArrivedOrNow(e, func(*Entry) {
			doc.waiting = false
			l.advanceDoc(doc)
		})
		return
	}
	// ...and earlier stylesheets applied (CSSOM blocks execution).
	for _, css := range step.cssGate {
		if css.Required && css.State != StateProcessed {
			doc.waiting = true
			l.onProcessed(css, func() {
				doc.waiting = false
				l.advanceDoc(doc)
			})
			return
		}
	}
	if e.State == StateProcessed {
		doc.idx++
		l.advanceDoc(doc)
		return
	}
	if e.Res == nil {
		// The script's fetch failed terminally: nothing to execute. Wait
		// for its error-body task to retire the entry, then move on — the
		// parser must not hang on a dead script.
		doc.waiting = true
		l.onProcessed(e, func() {
			doc.waiting = false
			l.advanceDoc(doc)
		})
		return
	}
	doc.running = true
	c := l.Cfg.costs()
	gate := step.cssGate
	l.runTask(l.cost(c.For(webpage.JS, e.Res.Size)), "exec-sync-js", func() {
		blocking := l.discoverScriptChildren(e, true)
		// document.write-injected scripts block this parser right after
		// the current script, inheriting its stylesheet gate.
		if len(blocking) > 0 {
			inserted := make([]docStep, 0, len(blocking))
			for _, ch := range blocking {
				inserted = append(inserted, docStep{script: ch, cssGate: gate})
			}
			rest := append(inserted, doc.steps[doc.idx+1:]...)
			doc.steps = append(doc.steps[:doc.idx+1:doc.idx+1], rest...)
		}
		l.onEntryDone(e)
		doc.running = false
		doc.idx++
		l.advanceDoc(doc)
	})
}

// finishDoc completes parsing: inline-code references and iframes surface,
// and the document itself counts as processed.
func (l *Load) finishDoc(doc *docState) {
	if doc.finished {
		return
	}
	doc.finished = true
	defer l.setVia(doc.entry)()
	for _, d := range doc.inline {
		l.Require(d.URL, refPriority(d))
	}
	for _, d := range doc.iframes {
		l.Require(d.URL, hints.Low)
	}
	l.onEntryDone(doc.entry)
}

// processJS handles async (non-parser-gated) scripts. Parser-gated scripts
// are executed by advanceDoc instead.
func (l *Load) processJS(e *Entry) {
	if e.gated {
		// Execution order is owned by the document's step sequence;
		// arrival alone does not trigger execution.
		e.processingStarted = false
		return
	}
	c := l.Cfg.costs()
	l.runTask(l.cost(c.For(webpage.JS, e.Res.Size)), "exec-js", func() {
		l.discoverScriptChildren(e, false)
		l.onEntryDone(e)
	})
}

// discoverScriptChildren requires everything a script fetches when it runs,
// returning document.write-injected scripts when the parent ran under a
// document's parser (viaDocPump): those block that parser. A document.write
// from an async script has no parser to block and behaves like an async
// insertion. Flags are set before Require so that an already-arrived child
// is processed under the right ownership.
func (l *Load) discoverScriptChildren(e *Entry, viaDocPump bool) []*Entry {
	defer l.setVia(e)()
	var blocking []*Entry
	for _, d := range webpage.ExtractRefs(e.Res) {
		prio := refPriority(d)
		typ := webpage.TypeFromURL(d.URL)
		if typ == webpage.JS {
			child := l.Entry(d.URL)
			if d.Blocking && viaDocPump {
				child.gated = true
				blocking = append(blocking, child)
			} else {
				prio = hints.Semi // dynamically inserted scripts are async
				if !child.gated {
					child.execAsync = true
				}
			}
		}
		l.Require(d.URL, prio)
	}
	return blocking
}

// processCSS parses a stylesheet and requires its url()/@import references.
// The stylesheet counts as applied — unblocking scripts gated on it — only
// once its @import chain is processed too, as in real CSSOM construction.
func (l *Load) processCSS(e *Entry) {
	c := l.Cfg.costs()
	l.runTask(l.cost(c.For(webpage.CSS, e.Res.Size)), "parse-css", func() {
		defer l.setVia(e)()
		var imports []*Entry
		for _, d := range webpage.ExtractRefs(e.Res) {
			child := l.Require(d.URL, refPriority(d))
			if webpage.TypeFromURL(d.URL) == webpage.CSS && child != e {
				imports = append(imports, child)
			}
		}
		pending := len(imports)
		if pending == 0 {
			l.onEntryDone(e)
			return
		}
		for _, imp := range imports {
			l.onProcessed(imp, func() {
				pending--
				if pending == 0 {
					l.onEntryDone(e)
				}
			})
		}
	})
}
