package browser

import (
	"sort"
	"time"

	"vroom/internal/hints"
	"vroom/internal/webpage"
)

// ResourceTiming is the per-resource timeline extracted from a finished
// load, used by the per-resource figures (Fig. 11, Fig. 16).
type ResourceTiming struct {
	URL      string
	Priority hints.Priority
	Required bool
	Hinted   bool
	Pushed   bool
	// Doc marks an HTML document (root or iframe) — exempt from the
	// hint-miss count, since documents are what hints are served on.
	Doc          bool
	Size         int
	DiscoveredAt time.Duration // relative to load start
	RequiredAt   time.Duration
	RequestedAt  time.Duration
	// PushPromisedAt is when the PUSH_PROMISE reached the client (zero if
	// the resource was never promised).
	PushPromisedAt time.Duration
	// FirstByteAt is when response headers first reached the client (zero
	// if no response ever started — refused connection, dead push).
	FirstByteAt time.Duration
	ArrivedAt   time.Duration
	ProcessedAt time.Duration
	// Failed marks an entry that degraded to an error body after exhausting
	// its retries; FailReason names the terminal transport failure.
	Failed     bool
	FailReason string
}

// Result summarizes a finished load.
type Result struct {
	Scheduler string
	// PLT is the page load time (start to onload).
	PLT time.Duration
	// AFT is the above-the-fold time: the last visual change.
	AFT time.Duration
	// SpeedIndex integrates visual incompleteness over time (ms).
	SpeedIndex float64
	// CPUBusy is total main-thread busy time; IdleFrac is the share of
	// the load the main thread spent idle (≈ critical-path network wait,
	// Fig. 4).
	CPUBusy  time.Duration
	IdleFrac float64
	// DiscoverAll/FetchAll are when the last required resource became
	// known / finished arriving. The High variants cover only
	// high-priority (processed, non-iframe) resources (Fig. 16).
	DiscoverAll  time.Duration
	FetchAll     time.Duration
	DiscoverHigh time.Duration
	FetchHigh    time.Duration
	// BytesFetched counts all delivered bytes; WastedBytes those of
	// speculative fetches (hints/pushes) the page never needed.
	BytesFetched int64
	WastedBytes  int64
	// WastedPushBytes are delivered push bytes the page never required —
	// the server burned client bandwidth on them.
	WastedPushBytes int64
	// Fault/degradation counters: retries issued, attempt timeouts fired,
	// terminal per-attempt failures observed, and hinted prefetches that
	// failed or 404ed (degrading to vanilla discovery).
	Retries       int
	Timeouts      int
	FailedFetches int
	HintsFailed   int
	NumRequired   int
	NumFetched    int
	// Hint-quality ledger, the simulator's half of the per-tenant efficacy
	// accounting (DESIGN.md §13): a hinted URL is "used" when the page
	// turned out to require it and "unused" otherwise; a required
	// non-document resource the hints never named is "missed".
	HintsEmitted int
	HintsUsed    int
	HintsUnused  int
	HintsMissed  int
	Resources    []ResourceTiming
}

// HintPrecision is used / settled hints (0 when no hint settled).
func (r Result) HintPrecision() float64 {
	if n := r.HintsUsed + r.HintsUnused; n > 0 {
		return float64(r.HintsUsed) / float64(n)
	}
	return 0
}

// HintRecall is used hints / (used + missed) — the share of required
// subresources the hints named ahead of discovery.
func (r Result) HintRecall() float64 {
	if n := r.HintsUsed + r.HintsMissed; n > 0 {
		return float64(r.HintsUsed) / float64(n)
	}
	return 0
}

// Result computes the load summary. It must be called after the load
// finished.
func (l *Load) Result() Result {
	r := Result{Scheduler: l.Sched.Name()}
	if !l.finished {
		return r
	}
	start := l.start
	r.PLT = l.finishedAt.Sub(start)
	r.CPUBusy = l.busyTotal
	if r.PLT > 0 {
		idle := r.PLT - l.busyTotal
		if idle < 0 {
			idle = 0
		}
		r.IdleFrac = float64(idle) / float64(r.PLT)
	}
	r.Retries = l.retries
	r.Timeouts = l.timeouts
	r.FailedFetches = l.failedFetches
	r.HintsFailed = l.hintsFailed
	for _, e := range l.Entries() {
		if e.State == StateArrived || e.State == StateProcessed {
			r.NumFetched++
			r.BytesFetched += int64(e.Size)
			if !e.Required {
				r.WastedBytes += int64(e.Size)
				if e.Pushed {
					r.WastedPushBytes += int64(e.Size)
				}
			}
		}
		rt := ResourceTiming{
			URL:        e.URL.String(),
			Priority:   e.Priority,
			Required:   e.Required,
			Hinted:     e.Hinted,
			Pushed:     e.Pushed,
			Doc:        e.Res != nil && e.Res.Type == webpage.HTML,
			Size:       e.Size,
			Failed:     e.FailReason != "",
			FailReason: e.FailReason,
		}
		switch {
		case e.Hinted && e.Required:
			r.HintsEmitted++
			r.HintsUsed++
		case e.Hinted:
			r.HintsEmitted++
			r.HintsUnused++
		case e.Required && !rt.Doc:
			r.HintsMissed++
		}
		if !e.DiscoveredAt.IsZero() {
			rt.DiscoveredAt = e.DiscoveredAt.Sub(start)
		}
		if !e.RequiredAt.IsZero() {
			rt.RequiredAt = e.RequiredAt.Sub(start)
		}
		if !e.RequestedAt.IsZero() {
			rt.RequestedAt = e.RequestedAt.Sub(start)
		}
		if !e.PushPromisedAt.IsZero() {
			rt.PushPromisedAt = e.PushPromisedAt.Sub(start)
		}
		if !e.FirstByteAt.IsZero() {
			rt.FirstByteAt = e.FirstByteAt.Sub(start)
		}
		if !e.ArrivedAt.IsZero() {
			rt.ArrivedAt = e.ArrivedAt.Sub(start)
		}
		if !e.ProcessedAt.IsZero() {
			rt.ProcessedAt = e.ProcessedAt.Sub(start)
		}
		r.Resources = append(r.Resources, rt)
		if !e.Required {
			continue
		}
		r.NumRequired++
		if rt.DiscoveredAt > r.DiscoverAll {
			r.DiscoverAll = rt.DiscoveredAt
		}
		if rt.ArrivedAt > r.FetchAll {
			r.FetchAll = rt.ArrivedAt
		}
		if e.Priority == hints.High {
			if rt.DiscoveredAt > r.DiscoverHigh {
				r.DiscoverHigh = rt.DiscoveredAt
			}
			if rt.ArrivedAt > r.FetchHigh {
				r.FetchHigh = rt.ArrivedAt
			}
		}
	}
	r.AFT, r.SpeedIndex = l.visualMetrics()
	return r
}

// visualMetrics computes above-the-fold time and Speed Index from the paint
// event log: AFT is the last visual change; Speed Index integrates
// (1 - completeness) over time, in milliseconds.
func (l *Load) visualMetrics() (time.Duration, float64) {
	if len(l.paints) == 0 {
		return l.finishedAt.Sub(l.start), float64(l.finishedAt.Sub(l.start).Milliseconds())
	}
	paints := make([]paintEvent, len(l.paints))
	copy(paints, l.paints)
	sort.Slice(paints, func(i, j int) bool { return paints[i].at.Before(paints[j].at) })
	var total float64
	for _, p := range paints {
		total += p.weight
	}
	aft := paints[len(paints)-1].at.Sub(l.start)
	// Integrate incompleteness.
	var si float64
	var done float64
	prev := time.Duration(0)
	for _, p := range paints {
		at := p.at.Sub(l.start)
		si += (1 - done/total) * float64((at - prev).Milliseconds())
		done += p.weight
		prev = at
	}
	return aft, si
}
