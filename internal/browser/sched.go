package browser

import (
	"vroom/internal/hints"
	"vroom/internal/urlutil"
)

// Scheduler owns fetch issuance for a load. The browser reports hints,
// requirements (real discoveries), and arrivals; the scheduler decides when
// each fetch goes out by calling Load.FetchNow. This is the seam between
// the baseline browser behaviour and Vroom's staged client scheduler
// (§4.3/§5.2).
type Scheduler interface {
	// Name identifies the policy in results.
	Name() string
	// Start is called once when the load begins.
	Start(l *Load)
	// OnHint is called for each dependency hint as it is parsed from a
	// response.
	OnHint(l *Load, e *Entry, h hints.Hint)
	// OnRequired is called when parsing/execution discovers the page
	// needs e (and no fetch has completed yet).
	OnRequired(l *Load, e *Entry)
	// OnArrived is called when any response finishes arriving.
	OnArrived(l *Load, e *Entry)
}

// FetchASAP is the baseline browser behaviour: fetch every resource the
// moment it is discovered; ignore dependency hints (a non-Vroom client).
type FetchASAP struct {
	// FollowHints makes the client also fetch hinted URLs immediately —
	// the "Push All, Fetch ASAP" strawman of §4.3 when combined with a
	// push-everything server.
	FollowHints bool
	// ThrottleDelayable reproduces the HTTP/1.1-era browser resource
	// scheduler: while any high-priority request is outstanding, at most
	// MaxDelayable low-priority ("delayable") requests are in flight.
	// Chrome applied this to HTTP/1.1 origins; HTTP/2 streams are cheap
	// and exempt.
	ThrottleDelayable bool
	// MaxDelayable bounds in-flight low-priority requests while
	// throttling (default 10, Chrome's historical limit).
	MaxDelayable int

	highInFlight int
	lowInFlight  int
	held         []*Entry
	inFlight     map[string]hints.Priority
}

// Name implements Scheduler.
func (s *FetchASAP) Name() string {
	switch {
	case s.FollowHints:
		return "fetch-asap+hints"
	case s.ThrottleDelayable:
		return "fetch-asap+h1-throttle"
	}
	return "fetch-asap"
}

// Start implements Scheduler.
func (s *FetchASAP) Start(*Load) {
	s.inFlight = make(map[string]hints.Priority)
	if s.MaxDelayable <= 0 {
		s.MaxDelayable = 10
	}
}

// OnHint implements Scheduler.
func (s *FetchASAP) OnHint(l *Load, e *Entry, h hints.Hint) {
	if s.FollowHints {
		s.fetch(l, e)
	}
}

// OnRequired implements Scheduler.
func (s *FetchASAP) OnRequired(l *Load, e *Entry) { s.fetch(l, e) }

func (s *FetchASAP) fetch(l *Load, e *Entry) {
	if e.State != StateKnown {
		return
	}
	// Chrome's HTTP/1.1-era resource scheduler: delayable requests are
	// held entirely while layout-blocking fetches are outstanding, and
	// capped at MaxDelayable in flight for the rest of the load.
	if s.ThrottleDelayable && e.Priority == hints.Low &&
		(s.highInFlight > 0 || s.lowInFlight >= s.MaxDelayable) {
		s.held = append(s.held, e)
		return
	}
	s.track(e)
	l.FetchNow(e)
}

func (s *FetchASAP) track(e *Entry) {
	if s.inFlight == nil {
		s.inFlight = make(map[string]hints.Priority)
	}
	key := e.URL.String()
	if _, dup := s.inFlight[key]; dup {
		return
	}
	s.inFlight[key] = e.Priority
	if e.Priority == hints.Low {
		s.lowInFlight++
	} else {
		s.highInFlight++
	}
}

// OnArrived implements Scheduler.
func (s *FetchASAP) OnArrived(l *Load, e *Entry) {
	key := e.URL.String()
	if p, ok := s.inFlight[key]; ok {
		delete(s.inFlight, key)
		if p == hints.Low {
			s.lowInFlight--
		} else {
			s.highInFlight--
		}
	}
	// Drain held delayable requests as capacity frees up.
	for len(s.held) > 0 && s.highInFlight == 0 && s.lowInFlight < s.MaxDelayable {
		next := s.held[0]
		s.held = s.held[1:]
		if next.State != StateKnown {
			continue
		}
		s.track(next)
		l.FetchNow(next)
	}
}

// ListScheduler fetches a fixed URL list at load start (used for the
// network-bottleneck lower bound: every resource is known upfront and
// fetched without evaluation, §2).
type ListScheduler struct {
	URLs []urlutil.URL
}

// Name implements Scheduler.
func (s *ListScheduler) Name() string { return "list-upfront" }

// Start implements Scheduler.
func (s *ListScheduler) Start(l *Load) {
	for _, u := range s.URLs {
		l.FetchNow(l.Entry(u))
	}
}

// OnHint implements Scheduler.
func (s *ListScheduler) OnHint(*Load, *Entry, hints.Hint) {}

// OnRequired implements Scheduler.
func (s *ListScheduler) OnRequired(l *Load, e *Entry) { l.FetchNow(e) }

// OnArrived implements Scheduler.
func (s *ListScheduler) OnArrived(*Load, *Entry) {}
