// Package clock provides a clock abstraction so that the simulation core can
// run against a deterministic virtual clock while wire-level components use
// the wall clock.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// Wall is the real-time clock backed by time.Now.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Virtual is a manually advanced clock. The zero value starts at the zero
// time and is ready to use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d. Negative durations are ignored.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Set moves the clock to t if t is not before the current time.
// It returns true if the clock was updated.
func (v *Virtual) Set(t time.Time) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		return false
	}
	v.now = t
	return true
}
