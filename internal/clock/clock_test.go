package clock

import (
	"testing"
	"time"
)

func TestWall(t *testing.T) {
	var c Clock = Wall{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatal("wall clock went backwards")
	}
}

func TestVirtualAdvance(t *testing.T) {
	start := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("start at %v", v.Now())
	}
	v.Advance(time.Hour)
	if !v.Now().Equal(start.Add(time.Hour)) {
		t.Fatalf("after advance: %v", v.Now())
	}
	v.Advance(-time.Hour) // ignored
	if !v.Now().Equal(start.Add(time.Hour)) {
		t.Fatal("negative advance moved the clock")
	}
}

func TestVirtualSet(t *testing.T) {
	start := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Set(start.Add(time.Minute)) {
		t.Fatal("forward set rejected")
	}
	if v.Set(start) {
		t.Fatal("backward set accepted")
	}
	if !v.Now().Equal(start.Add(time.Minute)) {
		t.Fatalf("clock at %v", v.Now())
	}
}

func TestVirtualZeroValue(t *testing.T) {
	var v Virtual
	if !v.Now().IsZero() {
		t.Fatal("zero-value clock should start at zero time")
	}
	v.Advance(time.Second)
	if v.Now().IsZero() {
		t.Fatal("advance on zero value failed")
	}
}
