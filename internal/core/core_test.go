package core

import (
	"strings"
	"testing"
	"time"

	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

var trainTime = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

func newsSite(seed int64) *webpage.Site {
	return webpage.NewSite("resolvertest", webpage.News, seed)
}

func hintURLs(hs []hints.Hint) map[string]hints.Priority {
	out := make(map[string]hints.Priority, len(hs))
	for _, h := range hs {
		out[h.URL.String()] = h.Priority
	}
	return out
}

func TestHintsExcludeIframeDescendants(t *testing.T) {
	site := newsSite(5)
	r := NewResolver(DefaultResolverConfig())
	r.Train(site, trainTime, webpage.PhoneSmall)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 9}, 1)
	hs := r.HintsFor(sn.Root, sn.RootResource().Body, webpage.PhoneSmall)
	got := hintURLs(hs)
	for _, res := range sn.Ordered() {
		key := res.URL.String()
		if _, hinted := got[key]; hinted && res.InIframe {
			t.Errorf("iframe descendant hinted by root server: %s", key)
		}
	}
	// The iframe documents themselves are hintable (visible in the root
	// HTML).
	foundIframe := false
	for u, p := range got {
		if res, ok := sn.LookupString(u); ok && res.Type == webpage.HTML {
			foundIframe = true
			if p != hints.Low {
				t.Errorf("iframe %s hinted with priority %v, want low", u, p)
			}
		}
	}
	if !foundIframe {
		t.Error("no iframe URL hinted at all")
	}
}

func TestHintsExcludeVolatile(t *testing.T) {
	site := newsSite(6)
	r := NewResolver(DefaultResolverConfig())
	r.Train(site, trainTime, webpage.PhoneSmall)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 9}, 1)
	got := hintURLs(r.HintsFor(sn.Root, sn.RootResource().Body, webpage.PhoneSmall))
	for _, res := range sn.Ordered() {
		if res.Unpredictable && !res.InIframe {
			if _, hinted := got[res.URL.String()]; hinted {
				// Volatile resources referenced directly in the served
				// HTML are fine (online analysis sees them); deeper
				// volatile ones must not be hinted.
				if res.Parent != sn.Root.String() {
					t.Errorf("deep volatile resource hinted: %s", res.URL)
				}
			}
		}
	}
}

func TestHintPriorities(t *testing.T) {
	site := newsSite(7)
	r := NewResolver(DefaultResolverConfig())
	r.Train(site, trainTime, webpage.PhoneSmall)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 9}, 1)
	got := hintURLs(r.HintsFor(sn.Root, sn.RootResource().Body, webpage.PhoneSmall))
	for u, p := range got {
		res, ok := sn.LookupString(u)
		if !ok {
			continue
		}
		switch res.Type {
		case webpage.CSS:
			if p != hints.High {
				t.Errorf("css %s priority %v", u, p)
			}
		case webpage.JS:
			if res.Async && p != hints.Semi {
				t.Errorf("async js %s priority %v", u, p)
			}
			if !res.Async && !res.InIframe && p == hints.Low {
				t.Errorf("sync js %s priority low", u)
			}
		case webpage.Image, webpage.Font, webpage.JSON:
			if p != hints.Low {
				t.Errorf("%s %s priority %v", res.Type, u, p)
			}
		}
	}
}

func TestHighHintsPrecedeAndKeepProcessingOrder(t *testing.T) {
	site := newsSite(8)
	r := NewResolver(DefaultResolverConfig())
	r.Train(site, trainTime, webpage.PhoneSmall)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 9}, 1)
	hs := r.HintsFor(sn.Root, sn.RootResource().Body, webpage.PhoneSmall)
	lastPriority := hints.High
	for _, h := range hs {
		if h.Priority < lastPriority {
			t.Fatal("hints not sorted by priority")
		}
		lastPriority = h.Priority
	}
}

func TestOfflineOnlyMissesFreshContent(t *testing.T) {
	site := newsSite(9)
	cfg := DefaultResolverConfig()
	cfg.UseOnline = false
	offline := NewResolver(cfg)
	offline.Train(site, trainTime, webpage.PhoneSmall)
	full := NewResolver(DefaultResolverConfig())
	full.Train(site, trainTime, webpage.PhoneSmall)

	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 9}, 1)
	offGot := hintURLs(offline.HintsFor(sn.Root, sn.RootResource().Body, webpage.PhoneSmall))
	fullGot := hintURLs(full.HintsFor(sn.Root, sn.RootResource().Body, webpage.PhoneSmall))

	// Hourly-rotated resources in the root HTML are visible to online
	// analysis but cannot be in the offline stable set.
	freshInHTML := 0
	for _, res := range sn.Ordered() {
		if res.Persist == webpage.Hourly && res.Parent == sn.Root.String() {
			key := res.URL.String()
			if _, ok := fullGot[key]; !ok {
				t.Errorf("online analysis missed fresh resource %s", key)
			}
			if _, ok := offGot[key]; ok {
				t.Errorf("offline-only claims fresh resource %s", key)
			}
			freshInHTML++
		}
	}
	if freshInHTML == 0 {
		t.Fatal("degenerate test: no fresh hourly resources in root HTML")
	}
	if len(offGot) >= len(fullGot) {
		t.Errorf("offline-only (%d) should return fewer hints than vroom (%d)", len(offGot), len(fullGot))
	}
}

func TestSingleLoadIncludesStaleVolatile(t *testing.T) {
	site := newsSite(10)
	cfg := DefaultResolverConfig()
	cfg.SingleLoad = true
	cfg.UseOnline = false
	r := NewResolver(cfg)
	r.Train(site, trainTime, webpage.PhoneSmall)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 9}, 1)
	got := hintURLs(r.HintsFor(sn.Root, "", webpage.PhoneSmall))
	stale := 0
	for u := range got {
		if _, ok := sn.LookupString(u); !ok {
			stale++
		}
	}
	if stale == 0 {
		t.Error("deps-from-previous-load returned no stale URLs; volatile content should leak through")
	}
}

func TestMaxHintAgeBoundsStaleness(t *testing.T) {
	site := newsSite(11)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 9}, 1)
	train := func(maxAge time.Duration) map[string]hints.Priority {
		cfg := DefaultResolverConfig()
		cfg.UseOnline = false
		cfg.MaxHintAge = maxAge
		r := NewResolver(cfg)
		r.Train(site, trainTime, webpage.PhoneSmall)
		return hintURLs(r.HintsFor(sn.Root, "", webpage.PhoneSmall))
	}

	unbounded := train(0)
	if len(unbounded) == 0 {
		t.Fatal("degenerate test: no offline hints at all")
	}
	// A bound tighter than the crawl interval excludes every offline
	// snapshot: the resolver must return no hints rather than stale ones.
	if got := train(30 * time.Minute); len(got) != 0 {
		t.Errorf("bound below the crawl interval still produced %d hints", len(got))
	}
	// A bound that keeps only the freshest snapshot intersects fewer
	// loads, so its hint set can only grow relative to the full window.
	oneLoad := train(90 * time.Minute)
	for u := range unbounded {
		if _, ok := oneLoad[u]; !ok {
			t.Errorf("tightening the age bound dropped stable hint %s", u)
		}
	}
	if len(oneLoad) < len(unbounded) {
		t.Errorf("one-load set (%d) smaller than three-load intersection (%d)", len(oneLoad), len(unbounded))
	}
}

func TestIntersection(t *testing.T) {
	mkDep := func(p string) Dep {
		return Dep{URL: urlutil.MustParse("https://a.com" + p)}
	}
	lists := [][]Dep{
		{mkDep("/1"), mkDep("/2"), mkDep("/3")},
		{mkDep("/2"), mkDep("/3"), mkDep("/4")},
		{mkDep("/3"), mkDep("/2")},
	}
	got := intersect(lists)
	if len(got) != 2 || got[0].URL.Path != "/2" || got[1].URL.Path != "/3" {
		t.Fatalf("intersect = %v", got)
	}
	if out := intersect(nil); out != nil {
		t.Fatalf("intersect(nil) = %v", out)
	}
}

func TestPushSetSameOriginHighOnly(t *testing.T) {
	origin := urlutil.MustParse("https://www.a.com/")
	hs := []hints.Hint{
		{URL: urlutil.MustParse("https://www.a.com/app.js"), Priority: hints.High},
		{URL: urlutil.MustParse("https://www.a.com/img.jpg"), Priority: hints.Low},
		{URL: urlutil.MustParse("https://cdn.b.com/lib.js"), Priority: hints.High},
	}
	got := PushSet(hs, origin, false)
	if len(got) != 1 || got[0].Path != "/app.js" {
		t.Fatalf("PushSet = %v", got)
	}
	all := PushSet(hs, origin, true)
	if len(all) != 2 {
		t.Fatalf("PushSet allLocal = %v", all)
	}
	for _, u := range all {
		if !strings.HasSuffix(u.Host, "a.com") {
			t.Errorf("cross-origin push selected: %s", u)
		}
	}
}

func TestDeviceClassesTrainedSeparately(t *testing.T) {
	site := webpage.NewSite("devices", webpage.Top100, 11)
	r := NewResolver(DefaultResolverConfig())
	r.Train(site, trainTime, webpage.PhoneSmall)
	r.Train(site, trainTime, webpage.Tablet)
	phone := r.Stable(site.RootURL(), webpage.PhoneSmall)
	tablet := r.Stable(site.RootURL(), webpage.Tablet)
	if len(phone) == 0 || len(tablet) == 0 {
		t.Fatal("empty stable sets")
	}
	pset := map[string]bool{}
	for _, d := range phone {
		pset[d.URL.String()] = true
	}
	diff := 0
	for _, d := range tablet {
		if !pset[d.URL.String()] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("tablet stable set identical to phone; device variants lost")
	}
}

func TestDocDepsStopsAtEmbeddedHTML(t *testing.T) {
	site := newsSite(12)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 9}, 1)
	deps := DocDeps(sn, sn.RootResource())
	if len(deps) == 0 {
		t.Fatal("no deps")
	}
	for _, d := range deps {
		res, ok := sn.LookupString(d.URL.String())
		if ok && res.InIframe {
			t.Errorf("DocDeps descended into iframe: %s", d.URL)
		}
	}
}
