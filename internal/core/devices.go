package core

import (
	"time"

	"vroom/internal/webpage"
)

// This file implements §4.1.2's device-equivalence-class discovery: "after
// a few loads of a page, the server can bin all device types into a few
// equivalence classes", so offline resolution runs per class rather than
// per device model.

// EquivalenceClasses groups device classes whose stable resource sets for
// a site overlap at least threshold (intersection-over-union). Each group
// shares one offline-resolution pipeline; the first member is the group's
// emulated representative.
func EquivalenceClasses(site *webpage.Site, now time.Time, devices []webpage.DeviceClass, threshold float64) [][]webpage.DeviceClass {
	r := NewResolver(DefaultResolverConfig())
	sets := make(map[webpage.DeviceClass]map[string]bool, len(devices))
	for _, d := range devices {
		r.Train(site, now, d)
		set := make(map[string]bool)
		for _, dep := range r.Stable(site.RootURL(), d) {
			set[dep.URL.String()] = true
		}
		sets[d] = set
	}
	var groups [][]webpage.DeviceClass
	for _, d := range devices {
		placed := false
		for gi, g := range groups {
			if setIoU(sets[g[0]], sets[d]) >= threshold {
				groups[gi] = append(groups[gi], d)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []webpage.DeviceClass{d})
		}
	}
	return groups
}

// setIoU computes intersection-over-union of two URL sets.
func setIoU(a, b map[string]bool) float64 {
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TrainClasses trains the resolver once per equivalence-class
// representative and aliases the remaining members to it, cutting offline
// emulation cost from one pipeline per device model to one per class.
func (r *Resolver) TrainClasses(site *webpage.Site, now time.Time, classes [][]webpage.DeviceClass) {
	for _, group := range classes {
		if len(group) == 0 {
			continue
		}
		rep := group[0]
		r.Train(site, now, rep)
		for _, member := range group[1:] {
			r.aliasDevice(site, rep, member)
		}
	}
}

// aliasDevice copies every stable set trained for rep to member.
func (r *Resolver) aliasDevice(site *webpage.Site, rep, member webpage.DeviceClass) {
	suffixRep := "|" + rep.String()
	for key, deps := range r.stable {
		if len(key) > len(suffixRep) && key[len(key)-len(suffixRep):] == suffixRep {
			base := key[:len(key)-len(suffixRep)]
			r.stable[base+"|"+member.String()] = deps
		}
	}
}
