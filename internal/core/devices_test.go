package core

import (
	"testing"

	"vroom/internal/webpage"
)

func TestEquivalenceClassesGroupPhones(t *testing.T) {
	site := webpage.NewSite("eqtest", webpage.Top100, 404)
	devices := []webpage.DeviceClass{webpage.PhoneSmall, webpage.PhoneLarge, webpage.Tablet}
	groups := EquivalenceClasses(site, trainTime, devices, 0.9)
	if len(groups) < 2 {
		t.Fatalf("all devices collapsed into %d group(s); tablet should differ", len(groups))
	}
	// The two phone classes should land in the same group (Fig. 9:
	// Nexus 6 vs OnePlus 3).
	find := func(d webpage.DeviceClass) int {
		for gi, g := range groups {
			for _, m := range g {
				if m == d {
					return gi
				}
			}
		}
		return -1
	}
	if find(webpage.PhoneSmall) != find(webpage.PhoneLarge) {
		t.Errorf("phone classes split across groups: %v", groups)
	}
	if find(webpage.PhoneSmall) == find(webpage.Tablet) {
		t.Errorf("tablet grouped with phones: %v", groups)
	}
}

func TestTrainClassesAliasesRepresentative(t *testing.T) {
	site := webpage.NewSite("eqtest", webpage.Top100, 405)
	r := NewResolver(DefaultResolverConfig())
	classes := [][]webpage.DeviceClass{{webpage.PhoneSmall, webpage.PhoneLarge}, {webpage.Tablet}}
	r.TrainClasses(site, trainTime, classes)
	small := r.Stable(site.RootURL(), webpage.PhoneSmall)
	large := r.Stable(site.RootURL(), webpage.PhoneLarge)
	if len(small) == 0 || len(large) != len(small) {
		t.Fatalf("alias broken: %d vs %d deps", len(large), len(small))
	}
	for i := range small {
		if small[i].URL != large[i].URL {
			t.Fatalf("aliased sets differ at %d", i)
		}
	}
	if len(r.Stable(site.RootURL(), webpage.Tablet)) == 0 {
		t.Fatal("tablet class untrained")
	}
}
