// Package core implements the paper's primary contribution: server-side
// dependency resolution (offline + online, §4.1), personalization handling
// (§4.2), dependency-hint generation (Table 1), push-set selection, and the
// client-side staged request scheduler (§4.3, §5.2).
package core

import (
	"fmt"
	"time"

	"vroom/internal/hints"
	"vroom/internal/obs"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// Dep is one dependency a server knows about for a document it serves.
type Dep struct {
	URL      urlutil.URL
	Priority hints.Priority
	// Order is the position in client processing order (§5.1: hints list
	// resources in the order the client will need them).
	Order int
}

// ResolverConfig selects the dependency-resolution strategy.
type ResolverConfig struct {
	// OfflineLoads is how many past periodic loads feed the stable set
	// (the paper uses loads from the past 3 hours).
	OfflineLoads int
	// Interval is the spacing of offline loads (1 hour in the paper).
	Interval time.Duration
	// UseOffline/UseOnline toggle the two halves of §4.1.2; disabling one
	// yields the corresponding strawman.
	UseOffline bool
	UseOnline  bool
	// SingleLoad returns every URL from one prior load instead of the
	// intersection of several (the "Deps from Previous Load" baseline of
	// Fig. 17).
	SingleLoad bool
	// IncludeIframeDescendants disables §4.2's personalization rule and
	// hints resources derived from embedded third-party HTML too — an
	// ablation showing why Vroom excludes them (the server's crawler sees
	// differently personalized iframe content than the client will).
	IncludeIframeDescendants bool
	// MaxHintAge drops offline snapshots older than this bound from the
	// stable-set computation, extending the intersection-of-last-3-loads
	// rule: a snapshot too old to trust contributes no hints, so hint
	// staleness is bounded. Zero keeps every OfflineLoads snapshot.
	MaxHintAge time.Duration
}

// DefaultResolverConfig is the full Vroom configuration.
func DefaultResolverConfig() ResolverConfig {
	return ResolverConfig{OfflineLoads: 3, Interval: time.Hour, UseOffline: true, UseOnline: true}
}

// Resolver is the server-side dependency resolver for one site's serving
// infrastructure. Stable sets are tracked per (document URL, device class)
// — the device equivalence classes of §4.1.2.
type Resolver struct {
	cfg ResolverConfig
	// stable maps docKey -> deps present in every recent offline load.
	stable map[string][]Dep
	// templates maps templateKey -> deps shared across sampled pages of a
	// page type (the §7 scalability extension; see template.go).
	templates    map[string][]Dep
	pendingPages map[string][][]Dep
	// Trace, when set, records each hint resolution (online/offline dep
	// counts) on the server track. Nil disables.
	Trace *obs.Tracer
}

// NewResolver returns a resolver with the given strategy.
func NewResolver(cfg ResolverConfig) *Resolver {
	if cfg.OfflineLoads <= 0 {
		cfg.OfflineLoads = 3
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Hour
	}
	return &Resolver{cfg: cfg, stable: make(map[string][]Dep)}
}

// Clone returns a resolver that shares this resolver's trained state (the
// stable sets and template tables) but carries its own Trace, so one
// training pass can back many concurrent loads: the maps are only read
// after training, and per-load mutable state lives on the clone. The clone
// must not be retrained — Train/TrainTemplates would write into the shared
// maps.
func (r *Resolver) Clone() *Resolver {
	c := *r
	c.Trace = nil
	return &c
}

func docKey(doc urlutil.URL, device webpage.DeviceClass) string {
	return doc.String() + "|" + device.String()
}

// Train performs the periodic offline dependency resolution: it loads the
// site cfg.OfflineLoads times at cfg.Interval spacing ending just before
// now, crawls each load, and records for every HTML document the
// dependencies seen in all loads (or in the single most recent load when
// SingleLoad is set). The crawler is anonymous (no user cookies) and uses a
// device emulator for the given equivalence class (§4.1.2).
func (r *Resolver) Train(site *webpage.Site, now time.Time, device webpage.DeviceClass) {
	if !r.cfg.UseOffline && !r.cfg.SingleLoad {
		return
	}
	profile := webpage.Profile{Device: device, UserID: 0}
	loads := r.cfg.OfflineLoads
	if r.cfg.SingleLoad {
		loads = 1
	}
	// perDoc[docKey] accumulates, per load, the dep list.
	type docLoads struct {
		lists [][]Dep
	}
	perDoc := make(map[string]*docLoads)
	for i := 0; i < loads; i++ {
		age := time.Duration(i+1) * r.cfg.Interval
		if r.cfg.MaxHintAge > 0 && age > r.cfg.MaxHintAge {
			continue // snapshot exceeds the staleness bound
		}
		at := now.Add(-age)
		nonce := uint64(at.UnixNano()) ^ uint64(device+1)<<32
		sn := site.Snapshot(at, profile, nonce)
		for _, res := range sn.Ordered() {
			if res.Type != webpage.HTML {
				continue
			}
			key := docKey(res.URL, device)
			dl, ok := perDoc[key]
			if !ok {
				dl = &docLoads{}
				perDoc[key] = dl
			}
			if r.cfg.IncludeIframeDescendants {
				dl.lists = append(dl.lists, docDepsAll(sn, res))
			} else {
				// A domain knows which of its content it personalizes;
				// deps derived from personalized content in the crawler's
				// own view would be wrong for real users, so the offline
				// stable set excludes them (§4.2). Online analysis of the
				// actually-served body covers them correctly.
				dl.lists = append(dl.lists, dropPersonalized(sn, DocDeps(sn, res)))
			}
		}
	}
	for key, dl := range perDoc {
		if r.cfg.SingleLoad {
			if len(dl.lists) > 0 {
				r.stable[key] = dl.lists[0]
			}
			continue
		}
		if len(dl.lists) < loads {
			// Document not present in every load (e.g. a rotated iframe):
			// keep only what is common to the loads that had it.
		}
		r.stable[key] = intersect(dl.lists)
	}
}

// intersect keeps deps (by URL) present in every list, preserving the order
// of the most recent list (index 0).
func intersect(lists [][]Dep) []Dep {
	if len(lists) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, list := range lists {
		seen := make(map[string]bool, len(list))
		for _, d := range list {
			k := d.URL.String()
			if !seen[k] {
				seen[k] = true
				counts[k]++
			}
		}
	}
	var out []Dep
	for _, d := range lists[0] {
		if counts[d.URL.String()] == len(lists) {
			out = append(out, d)
		}
	}
	return out
}

// DocDeps computes the dependencies a server could learn for one HTML
// document from a full load: the document's subtree in client processing
// order, recursing through CSS/JS but never into embedded HTML documents —
// their content may be personalized by another domain, so Vroom leaves them
// to the domain that serves them (§4.2, Fig. 10). The iframe URL itself is
// included (it is visible in this document's markup).
func DocDeps(sn *webpage.Snapshot, doc *webpage.Resource) []Dep {
	var out []Dep
	seen := map[string]bool{doc.URL.String(): true}
	order := 0
	// Breadth-first: the document's own refs first (parse order), then
	// each processed child's refs — approximating client processing order.
	frontier := []*webpage.Resource{doc}
	for len(frontier) > 0 {
		var next []*webpage.Resource
		for _, parent := range frontier {
			for _, d := range webpage.ExtractRefs(parent) {
				k := d.URL.String()
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, Dep{URL: d.URL, Priority: depPriority(d), Order: order})
				order++
				child, ok := sn.LookupString(k)
				if !ok {
					continue
				}
				if child.Type == webpage.HTML {
					continue // do not descend into embedded documents
				}
				if child.Type.NeedsProcessing() {
					next = append(next, child)
				}
			}
		}
		frontier = next
	}
	return out
}

// dropPersonalized filters deps whose content the serving site knows to be
// user-specific in this crawl.
func dropPersonalized(sn *webpage.Snapshot, deps []Dep) []Dep {
	out := deps[:0]
	for _, d := range deps {
		if res, ok := sn.LookupString(d.URL.String()); ok && res.Personalized {
			continue
		}
		out = append(out, d)
	}
	return out
}

// docDepsAll is the ablation variant of DocDeps that descends into embedded
// HTML documents as well.
func docDepsAll(sn *webpage.Snapshot, doc *webpage.Resource) []Dep {
	var out []Dep
	seen := map[string]bool{doc.URL.String(): true}
	order := 0
	frontier := []*webpage.Resource{doc}
	for len(frontier) > 0 {
		var next []*webpage.Resource
		for _, parent := range frontier {
			for _, d := range webpage.ExtractRefs(parent) {
				k := d.URL.String()
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, Dep{URL: d.URL, Priority: depPriority(d), Order: order})
				order++
				if child, ok := sn.LookupString(k); ok && child.Type.NeedsProcessing() {
					next = append(next, child)
				}
			}
		}
		frontier = next
	}
	return out
}

// depPriority classifies a dependency per Table 1, from information the
// server has (URL type and how the reference was declared).
func depPriority(d webpage.Discovered) hints.Priority {
	switch webpage.TypeFromURL(d.URL) {
	case webpage.HTML:
		return hints.Low // embedded documents and their subtrees
	case webpage.CSS:
		return hints.High
	case webpage.JS:
		if d.Async {
			return hints.Semi
		}
		return hints.High
	default:
		return hints.Low
	}
}

// Stable returns the offline stable set for a document and device class,
// as established by the last Train call.
func (r *Resolver) Stable(doc urlutil.URL, device webpage.DeviceClass) []Dep {
	return r.stable[docKey(doc, device)]
}

// HintsFor produces the dependency hints a Vroom-compliant server returns
// when serving the given HTML document body: the union of the on-the-fly
// parse of the served bytes (online analysis — catches fresh content) and
// the offline stable set (catches deep dependencies), ordered high to low
// priority and in processing order within each class.
func (r *Resolver) HintsFor(doc urlutil.URL, body string, device webpage.DeviceClass) []hints.Hint {
	var deps []Dep
	seen := make(map[string]bool)
	if r.cfg.UseOnline && body != "" {
		tmp := &webpage.Resource{URL: doc, Type: webpage.HTML, Body: body}
		for i, d := range webpage.ExtractRefs(tmp) {
			k := d.URL.String()
			if seen[k] {
				continue
			}
			seen[k] = true
			deps = append(deps, Dep{URL: d.URL, Priority: depPriority(d), Order: i})
		}
	}
	online := len(deps)
	if r.cfg.UseOffline || r.cfg.SingleLoad {
		for _, d := range r.stable[docKey(doc, device)] {
			k := d.URL.String()
			if seen[k] {
				continue
			}
			seen[k] = true
			deps = append(deps, d)
		}
	}
	if r.Trace.Enabled() {
		r.Trace.Instant(obs.TrackServer, "resolve:"+doc.String(),
			obs.Arg{Key: "online", Val: fmt.Sprint(online)},
			obs.Arg{Key: "offline", Val: fmt.Sprint(len(deps) - online)})
	}
	hs := make([]hints.Hint, 0, len(deps))
	for _, d := range deps {
		hs = append(hs, hints.Hint{URL: d.URL, Priority: d.Priority})
	}
	hints.Sort(hs)
	return hs
}

// PushSet selects what the server pushes alongside an HTML response: by
// default the high-priority dependencies it serves itself (same origin —
// a server can only securely push content it owns, §3.1). With allLocal,
// every same-origin dependency is pushed (the strawmen of Figs. 18-19).
func PushSet(hs []hints.Hint, origin urlutil.URL, allLocal bool) []urlutil.URL {
	var out []urlutil.URL
	for _, h := range hs {
		if !urlutil.SameOrigin(h.URL, origin) {
			continue
		}
		if !allLocal && h.Priority != hints.High {
			continue
		}
		out = append(out, h.URL)
	}
	return out
}
