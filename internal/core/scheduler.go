package core

import (
	"vroom/internal/browser"
	"vroom/internal/hints"
	"vroom/internal/obs"
)

// StagedScheduler is Vroom's client-side request scheduler (§4.3, §5.2).
//
// High-priority resources — everything that must be parsed or executed —
// are fetched the moment they are hinted or discovered, in the order the
// hints list them (which is client processing order). Semi-important and
// unimportant resources are held back: the semi stage opens once every
// known high-priority resource has been received, and the low stage once
// the semi stage drains. This keeps the access link clear for the resources
// the CPU is waiting on, so receipt order tracks processing order (Fig. 11).
type StagedScheduler struct {
	stage       hints.Priority // highest priority class currently allowed out
	rootArrived bool
	pending     map[hints.Priority][]*browser.Entry
	outstanding map[hints.Priority]int
	issued      map[string]hints.Priority
	// queued records the priority class each held-back resource currently
	// waits under, so a later hint or requirement at a higher priority can
	// re-file it instead of leaving it behind a slower stage gate.
	queued map[string]hints.Priority
	// held tracks the open "hold:" span of each queued resource so the
	// blame decomposition can see exactly how long the stage gate delayed
	// each fetch.
	held map[string]obs.Span
}

// NewStagedScheduler returns a scheduler at the high stage.
func NewStagedScheduler() *StagedScheduler {
	return &StagedScheduler{
		stage:       hints.High,
		pending:     make(map[hints.Priority][]*browser.Entry),
		outstanding: make(map[hints.Priority]int),
		issued:      make(map[string]hints.Priority),
		queued:      make(map[string]hints.Priority),
		held:        make(map[string]obs.Span),
	}
}

// Name implements browser.Scheduler.
func (s *StagedScheduler) Name() string { return "vroom-staged" }

// Start implements browser.Scheduler.
func (s *StagedScheduler) Start(*browser.Load) {}

// OnHint implements browser.Scheduler: hinted resources are prefetched
// according to their stage.
func (s *StagedScheduler) OnHint(l *browser.Load, e *browser.Entry, h hints.Hint) {
	s.fetchOrQueue(l, e, h.Priority)
}

// OnRequired implements browser.Scheduler: real discoveries follow the same
// stage discipline; high-priority needs always go out immediately.
func (s *StagedScheduler) OnRequired(l *browser.Load, e *browser.Entry) {
	s.fetchOrQueue(l, e, e.Priority)
}

func (s *StagedScheduler) fetchOrQueue(l *browser.Load, e *browser.Entry, p hints.Priority) {
	if e.State != browser.StateKnown {
		return // already in flight or arrived
	}
	if p <= s.stage {
		s.issue(l, e, p)
		return
	}
	key := e.URL.String()
	old, queuedBefore := s.queued[key]
	if queuedBefore && p >= old {
		return // already waiting under this or a more urgent class
	}
	if queuedBefore {
		// Upgrade: a resource hinted at a low priority is now needed at a
		// higher one — re-file it so it goes out when the earlier stage
		// opens rather than sitting behind the old gate.
		s.pending[old] = removeEntry(s.pending[old], e)
	}
	s.queued[key] = p
	s.pending[p] = append(s.pending[p], e)
	if !queuedBefore {
		if tr := l.Tracer(); tr.Enabled() {
			s.held[key] = tr.Begin(obs.TrackSched, "hold:"+key,
				obs.Arg{Key: "prio", Val: p.String()})
		}
	}
}

func removeEntry(list []*browser.Entry, e *browser.Entry) []*browser.Entry {
	for i, x := range list {
		if x == e {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func (s *StagedScheduler) issue(l *browser.Load, e *browser.Entry, p hints.Priority) {
	if e.State != browser.StateKnown {
		return
	}
	key := e.URL.String()
	if sp, ok := s.held[key]; ok {
		sp.End()
		delete(s.held, key)
	}
	if _, dup := s.issued[key]; !dup {
		s.issued[key] = p
		s.outstanding[p]++
	}
	l.FetchNow(e)
}

// OnArrived implements browser.Scheduler: arrivals retire outstanding
// fetches and may open the next stage.
func (s *StagedScheduler) OnArrived(l *browser.Load, e *browser.Entry) {
	if e.URL == l.Root {
		s.rootArrived = true
	}
	key := e.URL.String()
	if p, ok := s.issued[key]; ok {
		delete(s.issued, key)
		s.outstanding[p]--
	}
	s.advance(l)
}

// advance opens the semi stage once all known high-priority fetches have
// been received (and the root's hints are in), then the low stage once the
// semi stage drains.
func (s *StagedScheduler) advance(l *browser.Load) {
	for {
		switch {
		case s.stage == hints.High && s.rootArrived && s.outstanding[hints.High] == 0:
			s.stage = hints.Semi
			if tr := l.Tracer(); tr.Enabled() {
				tr.Instant(obs.TrackSched, "stage:semi")
			}
			s.flush(l, hints.Semi)
		case s.stage == hints.Semi && s.outstanding[hints.High] == 0 && s.outstanding[hints.Semi] == 0:
			s.stage = hints.Low
			if tr := l.Tracer(); tr.Enabled() {
				tr.Instant(obs.TrackSched, "stage:low")
			}
			s.flush(l, hints.Low)
			return
		default:
			return
		}
	}
}

func (s *StagedScheduler) flush(l *browser.Load, p hints.Priority) {
	queue := s.pending[p]
	s.pending[p] = nil
	for _, e := range queue {
		s.issue(l, e, p)
	}
}
