package core

import (
	"testing"
	"time"

	"vroom/internal/browser"
	"vroom/internal/event"
	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// recordingTransport resolves fetches from a snapshot after a fixed delay
// and records issue order.
type recordingTransport struct {
	eng   *event.Engine
	sn    *webpage.Snapshot
	delay time.Duration
	log   []struct {
		url string
		at  time.Time
	}
}

func (rt *recordingTransport) Fetch(u urlutil.URL, done func(*browser.Fetched)) {
	rt.log = append(rt.log, struct {
		url string
		at  time.Time
	}{u.String(), rt.eng.Now()})
	rt.eng.ScheduleAfter(rt.delay, "fetch", func() {
		if res, ok := rt.sn.Lookup(u); ok {
			done(&browser.Fetched{URL: u, Res: res, Size: res.Size})
			return
		}
		done(&browser.Fetched{URL: u, Size: 100})
	})
}

func TestStagedSchedulerHoldsLowUntilHighDone(t *testing.T) {
	site := webpage.NewSite("stagetest", webpage.Top100, 99)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	eng := event.New(trainTime)
	tr := &recordingTransport{eng: eng, sn: sn, delay: 80 * time.Millisecond}
	sched := NewStagedScheduler()
	l := browser.NewLoad(eng, tr, browser.Config{}, sched, sn.Root)
	l.Start()

	// Hint a high and a low resource immediately (as if from headers).
	var high, low urlutil.URL
	for _, r := range sn.Ordered() {
		if high.IsZero() && r.Type == webpage.JS && !r.Async && !r.InIframe {
			high = r.URL
		}
		if low.IsZero() && r.Type == webpage.Image {
			low = r.URL
		}
	}
	l.Hint(hints.Hint{URL: high, Priority: hints.High})
	l.Hint(hints.Hint{URL: low, Priority: hints.Low})

	if _, err := eng.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if !l.Finished() {
		t.Fatalf("unfinished: %s", l)
	}

	at := map[string]time.Time{}
	for _, e := range tr.log {
		if _, dup := at[e.url]; !dup {
			at[e.url] = e.at
		}
	}
	rootAt, highAt, lowAt := at[sn.Root.String()], at[high.String()], at[low.String()]
	if highAt.IsZero() || lowAt.IsZero() {
		t.Fatal("hinted resources never fetched")
	}
	// The high hint goes out immediately at hint time, before the root
	// response; the low hint waits for the high stage to clear, i.e., at
	// least until the root and high fetches complete.
	if highAt.After(rootAt.Add(time.Millisecond)) {
		t.Errorf("high hint not fetched immediately: %v vs root %v", highAt, rootAt)
	}
	if !lowAt.After(highAt.Add(tr.delay - time.Millisecond)) {
		t.Errorf("low hint fetched before high stage drained: low at %v, high at %v (+%v delay)",
			lowAt.Sub(rootAt), highAt.Sub(rootAt), tr.delay)
	}
}

func TestStagedSchedulerFetchesRequiredHighImmediately(t *testing.T) {
	site := webpage.NewSite("stagetest", webpage.Top100, 99)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	eng := event.New(trainTime)
	tr := &recordingTransport{eng: eng, sn: sn, delay: 50 * time.Millisecond}
	l := browser.NewLoad(eng, tr, browser.Config{}, NewStagedScheduler(), sn.Root)
	l.Start()
	if _, err := eng.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if !l.Finished() {
		t.Fatal("load with no hints at all must still finish under the staged scheduler")
	}
}
