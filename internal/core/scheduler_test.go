package core

import (
	"testing"
	"time"

	"vroom/internal/browser"
	"vroom/internal/event"
	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// recordingTransport resolves fetches from a snapshot after a fixed delay
// and records issue order.
type recordingTransport struct {
	eng   *event.Engine
	sn    *webpage.Snapshot
	delay time.Duration
	log   []struct {
		url string
		at  time.Time
	}
}

func (rt *recordingTransport) Fetch(u urlutil.URL, started func(), done func(*browser.Fetched)) func() {
	rt.log = append(rt.log, struct {
		url string
		at  time.Time
	}{u.String(), rt.eng.Now()})
	rt.eng.ScheduleAfter(rt.delay, "fetch", func() {
		if res, ok := rt.sn.Lookup(u); ok {
			done(&browser.Fetched{URL: u, Res: res, Size: res.Size})
			return
		}
		done(&browser.Fetched{URL: u, Size: 100})
	})
	return nil
}

func TestStagedSchedulerHoldsLowUntilHighDone(t *testing.T) {
	site := webpage.NewSite("stagetest", webpage.Top100, 99)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	eng := event.New(trainTime)
	tr := &recordingTransport{eng: eng, sn: sn, delay: 80 * time.Millisecond}
	sched := NewStagedScheduler()
	l := browser.NewLoad(eng, tr, browser.Config{}, sched, sn.Root)
	l.Start()

	// Hint a high and a low resource immediately (as if from headers).
	var high, low urlutil.URL
	for _, r := range sn.Ordered() {
		if high.IsZero() && r.Type == webpage.JS && !r.Async && !r.InIframe {
			high = r.URL
		}
		if low.IsZero() && r.Type == webpage.Image {
			low = r.URL
		}
	}
	l.Hint(hints.Hint{URL: high, Priority: hints.High})
	l.Hint(hints.Hint{URL: low, Priority: hints.Low})

	if _, err := eng.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if !l.Finished() {
		t.Fatalf("unfinished: %s", l)
	}

	at := map[string]time.Time{}
	for _, e := range tr.log {
		if _, dup := at[e.url]; !dup {
			at[e.url] = e.at
		}
	}
	rootAt, highAt, lowAt := at[sn.Root.String()], at[high.String()], at[low.String()]
	if highAt.IsZero() || lowAt.IsZero() {
		t.Fatal("hinted resources never fetched")
	}
	// The high hint goes out immediately at hint time, before the root
	// response; the low hint waits for the high stage to clear, i.e., at
	// least until the root and high fetches complete.
	if highAt.After(rootAt.Add(time.Millisecond)) {
		t.Errorf("high hint not fetched immediately: %v vs root %v", highAt, rootAt)
	}
	if !lowAt.After(highAt.Add(tr.delay - time.Millisecond)) {
		t.Errorf("low hint fetched before high stage drained: low at %v, high at %v (+%v delay)",
			lowAt.Sub(rootAt), highAt.Sub(rootAt), tr.delay)
	}
}

// TestStagedSchedulerHinted404DoesNotBlock is the graceful-degradation
// regression test for stale hints: a hinted URL the server 404s (error body,
// no content) must not deadlock the staged scheduler's stage gates, must not
// count toward the page's required work, and must not move PLT beyond the
// cost of the wasted fetch itself.
func TestStagedSchedulerHinted404DoesNotBlock(t *testing.T) {
	site := webpage.NewSite("stagetest", webpage.Top100, 99)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	const delay = 50 * time.Millisecond
	stale := urlutil.MustParse("https://static.stagetest.com/js/gone-404.js")

	run := func(withStaleHint bool) browser.Result {
		eng := event.New(trainTime)
		tr := &recordingTransport{eng: eng, sn: sn, delay: delay}
		l := browser.NewLoad(eng, tr, browser.Config{}, NewStagedScheduler(), sn.Root)
		l.Start()
		if withStaleHint {
			// High priority on purpose: Semi and Low stages gate on the
			// high stage draining, so a wedged 404 would deadlock here.
			l.Hint(hints.Hint{URL: stale, Priority: hints.High})
		}
		if _, err := eng.Run(3_000_000); err != nil {
			t.Fatal(err)
		}
		if !l.Finished() {
			t.Fatalf("load wedged (withStaleHint=%v): %s", withStaleHint, l)
		}
		if withStaleHint {
			e := l.Entry(stale)
			if e == nil {
				t.Fatal("hinted entry missing")
			}
			if e.Required {
				t.Error("404ed hint marked required")
			}
		}
		return l.Result()
	}

	clean := run(false)
	faulted := run(true)
	if faulted.NumRequired != clean.NumRequired {
		t.Errorf("stale hint changed required count: %d vs %d", faulted.NumRequired, clean.NumRequired)
	}
	if faulted.HintsFailed != 1 {
		t.Errorf("HintsFailed = %d, want 1", faulted.HintsFailed)
	}
	if faulted.WastedBytes == 0 {
		t.Error("404 error body not counted as waste")
	}
	// The 404 occupies the high stage for one round trip at worst; it must
	// not cascade into the load's critical path beyond that.
	if faulted.PLT > clean.PLT+2*delay {
		t.Errorf("stale hint inflated PLT: %v vs %v", faulted.PLT, clean.PLT)
	}
}

// TestStagedSchedulerUpgradesQueuedPriority is the regression test for the
// stage-gate priority upgrade: a resource queued at Low and later hinted at
// a higher priority must be re-filed under the higher class (and issued
// when that stage opens), not left to wait behind the Low gate.
func TestStagedSchedulerUpgradesQueuedPriority(t *testing.T) {
	site := webpage.NewSite("stagetest", webpage.Top100, 99)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	eng := event.New(trainTime)
	tr := &recordingTransport{eng: eng, sn: sn, delay: 80 * time.Millisecond}
	sched := NewStagedScheduler()
	l := browser.NewLoad(eng, tr, browser.Config{}, sched, sn.Root)
	l.Start()

	// Two images (Low by type); upgrade the first to Semi after queueing.
	var imgA, imgB urlutil.URL
	for _, r := range sn.Ordered() {
		if r.Type != webpage.Image {
			continue
		}
		if imgA.IsZero() {
			imgA = r.URL
		} else if imgB.IsZero() {
			imgB = r.URL
			break
		}
	}
	if imgB.IsZero() {
		t.Skip("snapshot has fewer than two images")
	}
	l.Hint(hints.Hint{URL: imgA, Priority: hints.Low})
	l.Hint(hints.Hint{URL: imgB, Priority: hints.Low})
	l.Hint(hints.Hint{URL: imgA, Priority: hints.Semi}) // the upgrade

	keyA := imgA.String()
	if got := sched.queued[keyA]; got != hints.Semi {
		t.Errorf("queued[%s] = %v, want %v", keyA, got, hints.Semi)
	}
	for _, e := range sched.pending[hints.Low] {
		if e.URL == imgA {
			t.Error("upgraded entry still filed under the Low gate")
		}
	}
	found := false
	for _, e := range sched.pending[hints.Semi] {
		if e.URL == imgA {
			found = true
		}
	}
	if !found {
		t.Error("upgraded entry not filed under the Semi gate")
	}
	// A downgrade attempt must not move it back.
	l.Hint(hints.Hint{URL: imgA, Priority: hints.Low})
	if got := sched.queued[keyA]; got != hints.Semi {
		t.Errorf("after downgrade attempt queued[%s] = %v, want %v", keyA, got, hints.Semi)
	}

	if _, err := eng.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if !l.Finished() {
		t.Fatalf("unfinished: %s", l)
	}
	at := map[string]time.Time{}
	for _, e := range tr.log {
		if _, dup := at[e.url]; !dup {
			at[e.url] = e.at
		}
	}
	aAt, bAt := at[imgA.String()], at[imgB.String()]
	if aAt.IsZero() || bAt.IsZero() {
		t.Fatal("hinted images never fetched")
	}
	// The upgraded image goes out when the Semi stage opens; the Low gate
	// (and imgB behind it) cannot open until the Semi fetch has drained.
	if !aAt.Before(bAt) {
		t.Errorf("upgraded image not issued before the Low stage: semi at %v, low at %v",
			aAt.Sub(trainTime), bAt.Sub(trainTime))
	}
}

func TestStagedSchedulerFetchesRequiredHighImmediately(t *testing.T) {
	site := webpage.NewSite("stagetest", webpage.Top100, 99)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	eng := event.New(trainTime)
	tr := &recordingTransport{eng: eng, sn: sn, delay: 50 * time.Millisecond}
	l := browser.NewLoad(eng, tr, browser.Config{}, NewStagedScheduler(), sn.Root)
	l.Start()
	if _, err := eng.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	if !l.Finished() {
		t.Fatal("load with no hints at all must still finish under the staged scheduler")
	}
}
