package core

// This file makes a trained Resolver portable: the hint-store persistence
// layer (internal/hintstore/persist) snapshots trained tables to disk and
// rebuilds them on cold start, so a crash or deploy restart does not throw
// away hours of training. Only the trained state crosses the boundary —
// per-process fields (Trace, mid-training accumulators) never persist.

// ResolverState is the serializable trained state of a Resolver: its
// strategy configuration plus the offline stable sets and template tables
// the last training pass established. The maps are shared with the
// resolver that exported them (they are immutable after training, the same
// contract Clone relies on), so exporting is cheap enough to run on every
// retrain publish.
type ResolverState struct {
	Config    ResolverConfig   `json:"config"`
	Stable    map[string][]Dep `json:"stable,omitempty"`
	Templates map[string][]Dep `json:"templates,omitempty"`
}

// Export captures the resolver's trained state. Calling it mid-Train is
// undefined; the hint store only exports published (immutable) tables.
func (r *Resolver) Export() ResolverState {
	return ResolverState{Config: r.cfg, Stable: r.stable, Templates: r.templates}
}

// NewResolverFromState rebuilds a resolver from exported state. The result
// serves hints exactly as the exporter did (HintsFor/HintsForPage read only
// cfg, stable, and templates) but must not be retrained into — treat it
// like a Clone: train a fresh resolver and swap instead.
func NewResolverFromState(st ResolverState) *Resolver {
	r := NewResolver(st.Config)
	if st.Stable != nil {
		r.stable = st.Stable
	}
	r.templates = st.Templates
	return r
}
