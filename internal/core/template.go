package core

import (
	"strings"
	"time"

	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// This file implements the scalability extension the paper defers to
// future work (§7): "there are typically only a few types of pages on each
// site and the stable set of resources ... are likely to be common across
// pages of the same type." Instead of crawling every page of a site every
// hour, the server crawls a small sample per page type and serves hints
// for *unseen* pages of that type from the shared template set plus online
// analysis of the served HTML.

// PageType classifies a document URL into the site's page types by its
// leading path segment: "/" is the landing page, "/article/..." an
// article, and so on.
func PageType(u urlutil.URL) string {
	path := strings.TrimPrefix(u.Path, "/")
	if path == "" {
		return "landing"
	}
	if i := strings.IndexByte(path, '/'); i > 0 {
		return path[:i]
	}
	return "leaf"
}

func templateKey(host, pageType string, device webpage.DeviceClass) string {
	return host + "|type:" + pageType + "|" + device.String()
}

// TrainTemplates performs offline dependency resolution on a sample of the
// site's pages (by index; 0 is the landing page) and derives, per page
// type, the template set: dependencies common to every sampled page of
// that type across every offline load. The cost is proportional to the
// sample, not to the site's page count.
func (r *Resolver) TrainTemplates(site *webpage.Site, now time.Time, device webpage.DeviceClass, samplePages []int) {
	if r.templates == nil {
		r.templates = make(map[string][]Dep)
	}
	profile := webpage.Profile{Device: device, UserID: 0}
	loads := r.cfg.OfflineLoads
	perType := make(map[string][][]Dep)
	for i := 0; i < loads; i++ {
		at := now.Add(-time.Duration(i+1) * r.cfg.Interval)
		nonce := uint64(at.UnixNano()) ^ uint64(device+1)<<32
		for _, idx := range samplePages {
			if idx < 0 || idx >= site.NumPages() {
				continue
			}
			sn := site.PageSnapshot(idx, at, profile, nonce)
			root := sn.RootResource()
			typ := PageType(sn.Root)
			deps := dropPersonalized(sn, DocDeps(sn, root))
			perType[typ] = append(perType[typ], deps)
			// Also train the page itself as usual, so sampled pages get
			// full per-page hints.
			key := docKey(sn.Root, device)
			r.perPageLists(key, deps)
		}
	}
	for typ, lists := range perType {
		r.templates[templateKey(site.RootURL().Host, typ, device)] = intersect(lists)
	}
	r.flushPerPage(loads)
}

// perPageLists accumulates per-document lists during template training.
func (r *Resolver) perPageLists(key string, deps []Dep) {
	if r.pendingPages == nil {
		r.pendingPages = make(map[string][][]Dep)
	}
	r.pendingPages[key] = append(r.pendingPages[key], deps)
}

// flushPerPage converts accumulated lists into stable sets.
func (r *Resolver) flushPerPage(loads int) {
	for key, lists := range r.pendingPages {
		if len(lists) >= loads {
			r.stable[key] = intersect(lists)
		}
	}
	r.pendingPages = nil
}

// HintsForPage serves hints for any page of a template-trained site: a
// page with its own stable set uses it; an unseen page of a known type
// falls back to the type's template set. Online analysis of the served
// body applies either way, so page-specific fresh content is still
// covered.
func (r *Resolver) HintsForPage(site *webpage.Site, doc urlutil.URL, body string, device webpage.DeviceClass) []hints.Hint {
	if _, trained := r.stable[docKey(doc, device)]; trained || r.templates == nil {
		return r.HintsFor(doc, body, device)
	}
	tmpl, ok := r.templates[templateKey(site.RootURL().Host, PageType(doc), device)]
	if !ok {
		return r.HintsFor(doc, body, device)
	}
	// Merge online analysis of the served body with the template set.
	var deps []Dep
	seen := make(map[string]bool)
	if r.cfg.UseOnline && body != "" {
		tmp := &webpage.Resource{URL: doc, Type: webpage.HTML, Body: body}
		for i, d := range webpage.ExtractRefs(tmp) {
			k := d.URL.String()
			if !seen[k] {
				seen[k] = true
				deps = append(deps, Dep{URL: d.URL, Priority: depPriority(d), Order: i})
			}
		}
	}
	for _, d := range tmpl {
		if k := d.URL.String(); !seen[k] {
			seen[k] = true
			deps = append(deps, d)
		}
	}
	hs := make([]hints.Hint, 0, len(deps))
	for _, d := range deps {
		hs = append(hs, hints.Hint{URL: d.URL, Priority: d.Priority})
	}
	hints.Sort(hs)
	return hs
}
