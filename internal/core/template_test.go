package core

import (
	"testing"

	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

func TestPageType(t *testing.T) {
	cases := map[string]string{
		"https://www.a.com/":                    "landing",
		"https://www.a.com/article/story1.html": "article",
		"https://www.a.com/sports/game2.html":   "sports",
		"https://www.a.com/about.html":          "leaf",
	}
	for raw, want := range cases {
		if got := PageType(urlutil.MustParse(raw)); got != want {
			t.Errorf("PageType(%s) = %q, want %q", raw, got, want)
		}
	}
}

func TestArticlePagesShareTemplate(t *testing.T) {
	site := webpage.NewSite("tmpl", webpage.News, 77)
	if site.NumPages() < 3 {
		t.Fatalf("site has only %d pages", site.NumPages())
	}
	p := webpage.Profile{Device: webpage.PhoneSmall, UserID: 4}
	a := site.PageSnapshot(1, trainTime, p, 1)
	b := site.PageSnapshot(2, trainTime, p, 1)
	aSet, bSet := a.URLSet(), b.URLSet()
	shared := 0
	for u := range aSet {
		if bSet[u] && u != a.Root.String() {
			shared++
		}
	}
	if shared < 5 {
		t.Fatalf("articles share only %d resources; template broken", shared)
	}
	if a.Root == b.Root {
		t.Fatal("article roots identical")
	}
}

// TestTemplateHintsCoverUnseenPage is the extension's headline property:
// training on the landing page and ONE article gives useful hints for an
// article the server never crawled.
func TestTemplateHintsCoverUnseenPage(t *testing.T) {
	site := webpage.NewSite("tmpl", webpage.News, 78)
	if site.NumPages() < 4 {
		t.Skip("need at least 3 articles")
	}
	r := NewResolver(DefaultResolverConfig())
	r.TrainTemplates(site, trainTime, webpage.PhoneSmall, []int{0, 1})

	p := webpage.Profile{Device: webpage.PhoneSmall, UserID: 4}
	unseenIdx := 3
	sn := site.PageSnapshot(unseenIdx, trainTime, p, 1)
	hs := r.HintsForPage(site, sn.Root, sn.RootResource().Body, webpage.PhoneSmall)
	if len(hs) == 0 {
		t.Fatal("no hints for unseen page")
	}
	got := map[string]bool{}
	for _, h := range hs {
		got[h.URL.String()] = true
	}
	// Every stable template resource of the unseen page should be hinted:
	// measure coverage over the page's non-volatile, non-iframe deps.
	coverage := func(hintSet map[string]bool) float64 {
		covered, total := 0, 0
		for _, d := range DocDeps(sn, sn.RootResource()) {
			res, ok := sn.LookupString(d.URL.String())
			if !ok || res.Unpredictable || res.Personalized {
				continue
			}
			total++
			if hintSet[d.URL.String()] {
				covered++
			}
		}
		if total == 0 {
			t.Fatal("degenerate page")
		}
		return float64(covered) / float64(total)
	}
	tmplCov := coverage(got)

	// Reference: a resolver that offline-crawled every page (expensive).
	full := NewResolver(DefaultResolverConfig())
	all := make([]int, site.NumPages())
	for i := range all {
		all[i] = i
	}
	full.TrainTemplates(site, trainTime, webpage.PhoneSmall, all)
	fullSet := map[string]bool{}
	for _, h := range full.HintsForPage(site, sn.Root, sn.RootResource().Body, webpage.PhoneSmall) {
		fullSet[h.URL.String()] = true
	}
	fullCov := coverage(fullSet)
	t.Logf("coverage: template-trained %.0f%%, fully-trained %.0f%%", tmplCov*100, fullCov*100)
	if tmplCov < fullCov-0.05 {
		t.Errorf("template hints cover %.0f%% vs %.0f%% with full per-page training", tmplCov*100, fullCov*100)
	}
	if tmplCov < 0.6 {
		t.Errorf("template coverage %.0f%% too low to be useful", tmplCov*100)
	}
	// And no hinted URL should be junk relative to this load beyond the
	// usual volatile slack.
	stale := 0
	for u := range got {
		if _, ok := sn.LookupString(u); !ok {
			stale++
		}
	}
	if stale > len(got)/4 {
		t.Errorf("%d of %d template hints are stale", stale, len(got))
	}
}

func TestHintsForPageFallsBackWithoutTemplates(t *testing.T) {
	site := webpage.NewSite("tmpl", webpage.News, 79)
	r := NewResolver(DefaultResolverConfig())
	r.Train(site, trainTime, webpage.PhoneSmall)
	sn := site.Snapshot(trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 4}, 1)
	viaPage := r.HintsForPage(site, sn.Root, sn.RootResource().Body, webpage.PhoneSmall)
	direct := r.HintsFor(sn.Root, sn.RootResource().Body, webpage.PhoneSmall)
	if len(viaPage) != len(direct) {
		t.Fatalf("fallback mismatch: %d vs %d hints", len(viaPage), len(direct))
	}
}

// sanity: priorities survive the template path.
func TestTemplateHintPriorities(t *testing.T) {
	site := webpage.NewSite("tmpl", webpage.News, 80)
	if site.NumPages() < 3 {
		t.Skip("need articles")
	}
	r := NewResolver(DefaultResolverConfig())
	r.TrainTemplates(site, trainTime, webpage.PhoneSmall, []int{0, 1})
	sn := site.PageSnapshot(2, trainTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 4}, 1)
	hs := r.HintsForPage(site, sn.Root, sn.RootResource().Body, webpage.PhoneSmall)
	last := hints.High
	for _, h := range hs {
		if h.Priority < last {
			t.Fatal("template hints not priority-sorted")
		}
		last = h.Priority
	}
}
