// Package cssparse implements a small CSS scanner that extracts the resource
// references a browser would fetch from a stylesheet: url(...) tokens
// (background images, fonts inside @font-face) and @import rules.
//
// It is a lexical scanner, not a full CSS parser: it understands comments,
// strings, and the url() functional notation, which is all that resource
// discovery needs.
package cssparse

import (
	"strings"
)

// RefKind classifies a stylesheet reference.
type RefKind int

// Reference kinds.
const (
	RefImport RefKind = iota // @import — another stylesheet, must be processed
	RefURL                   // url(...) — images, fonts; fetched lazily when matched
)

// Reference is one resource reference found in a stylesheet.
type Reference struct {
	Raw  string // unresolved URL text
	Kind RefKind
	// FontFace marks url() references appearing inside an @font-face block;
	// browsers fetch those with higher priority than background images.
	FontFace bool
}

// Extract scans a stylesheet and returns its references in document order.
func Extract(css string) []Reference {
	var (
		refs      []Reference
		i         int
		fontDepth = -1 // brace depth at which an @font-face block opened
		depth     int
	)
	n := len(css)
	for i < n {
		c := css[i]
		switch {
		case c == '/' && i+1 < n && css[i+1] == '*':
			end := strings.Index(css[i+2:], "*/")
			if end < 0 {
				return refs
			}
			i += 2 + end + 2
		case c == '"' || c == '\'':
			_, next := scanString(css, i)
			i = next
		case c == '{':
			depth++
			i++
		case c == '}':
			depth--
			if fontDepth >= 0 && depth < fontDepth {
				fontDepth = -1
			}
			i++
		case c == '@':
			word := ident(css[i+1:])
			switch strings.ToLower(word) {
			case "import":
				raw, next := scanImport(css, i+1+len(word))
				if raw != "" {
					refs = append(refs, Reference{Raw: raw, Kind: RefImport})
				}
				i = next
			case "font-face":
				fontDepth = depth + 1
				i += 1 + len(word)
			default:
				i += 1 + len(word)
				if word == "" {
					i++
				}
			}
		case c == 'u' || c == 'U':
			if raw, next, ok := scanURLFunc(css, i); ok {
				refs = append(refs, Reference{Raw: raw, Kind: RefURL, FontFace: fontDepth >= 0 && depth >= fontDepth})
				i = next
			} else {
				i++
			}
		default:
			i++
		}
	}
	return refs
}

// ExtractURLs returns just the raw URL strings, in order. It adapts Extract
// to the htmlparse.InlineScanner signature.
func ExtractURLs(css string) []string {
	refs := Extract(css)
	out := make([]string, 0, len(refs))
	for _, r := range refs {
		out = append(out, r.Raw)
	}
	return out
}

// ident returns the leading CSS identifier of s.
func ident(s string) string {
	var i int
	for i < len(s) {
		c := s[i]
		if !(c == '-' || c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')) {
			break
		}
		i++
	}
	return s[:i]
}

// scanString scans a quoted string starting at i (css[i] is the quote) and
// returns its content and the index just past the closing quote.
func scanString(css string, i int) (string, int) {
	quote := css[i]
	j := i + 1
	var b strings.Builder
	for j < len(css) {
		c := css[j]
		if c == '\\' && j+1 < len(css) {
			b.WriteByte(css[j+1])
			j += 2
			continue
		}
		if c == quote {
			return b.String(), j + 1
		}
		b.WriteByte(c)
		j++
	}
	return b.String(), j
}

// scanImport scans the URL of an @import rule starting just past "@import".
func scanImport(css string, i int) (string, int) {
	for i < len(css) && isCSSSpace(css[i]) {
		i++
	}
	if i >= len(css) {
		return "", i
	}
	switch css[i] {
	case '"', '\'':
		raw, next := scanString(css, i)
		return strings.TrimSpace(raw), skipToSemicolon(css, next)
	case 'u', 'U':
		if raw, next, ok := scanURLFunc(css, i); ok {
			return raw, skipToSemicolon(css, next)
		}
	}
	return "", skipToSemicolon(css, i)
}

func skipToSemicolon(css string, i int) int {
	for i < len(css) && css[i] != ';' {
		i++
	}
	if i < len(css) {
		i++
	}
	return i
}

// scanURLFunc scans a url(...) token starting at i if present.
func scanURLFunc(css string, i int) (raw string, next int, ok bool) {
	rest := css[i:]
	if len(rest) < 4 || !strings.EqualFold(rest[:4], "url(") {
		return "", i, false
	}
	j := i + 4
	for j < len(css) && isCSSSpace(css[j]) {
		j++
	}
	if j >= len(css) {
		return "", j, false
	}
	if css[j] == '"' || css[j] == '\'' {
		s, after := scanString(css, j)
		for after < len(css) && css[after] != ')' {
			after++
		}
		if after < len(css) {
			after++
		}
		return strings.TrimSpace(s), after, true
	}
	end := strings.IndexByte(css[j:], ')')
	if end < 0 {
		return "", len(css), false
	}
	return strings.TrimSpace(css[j : j+end]), j + end + 1, true
}

func isCSSSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}
