package cssparse

import (
	"reflect"
	"testing"
)

func raws(refs []Reference) []string {
	out := make([]string, 0, len(refs))
	for _, r := range refs {
		out = append(out, r.Raw)
	}
	return out
}

func TestExtractURLForms(t *testing.T) {
	css := `
	.a { background: url(/img/plain.png); }
	.b { background-image: url("quoted.jpg"); }
	.c { background: URL( 'single.gif' ) no-repeat; }
	.d { background: url(  spaced.webp  ); }
	`
	got := raws(Extract(css))
	want := []string{"/img/plain.png", "quoted.jpg", "single.gif", "spaced.webp"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExtractImports(t *testing.T) {
	css := `
	@import "first.css";
	@import url(second.css);
	@import url("third.css") screen;
	body { color: red }
	`
	refs := Extract(css)
	if len(refs) != 3 {
		t.Fatalf("refs: %v", refs)
	}
	for i, want := range []string{"first.css", "second.css", "third.css"} {
		if refs[i].Kind != RefImport || refs[i].Raw != want {
			t.Errorf("ref %d = %+v, want import %q", i, refs[i], want)
		}
	}
}

func TestExtractFontFace(t *testing.T) {
	css := `
	@font-face {
		font-family: "X";
		src: url("/font/x.woff2") format("woff2"), url(/font/x.woff) format("woff");
	}
	.later { background: url(/img/after.png); }
	`
	refs := Extract(css)
	if len(refs) != 3 {
		t.Fatalf("refs: %v", refs)
	}
	if !refs[0].FontFace || !refs[1].FontFace {
		t.Error("font-face urls not flagged")
	}
	if refs[2].FontFace {
		t.Error("url after @font-face block wrongly flagged")
	}
}

func TestExtractSkipsComments(t *testing.T) {
	css := `/* url(/should/not/appear.png) */ .a { background: url(/real.png) } /* @import "no.css"; */`
	got := raws(Extract(css))
	if !reflect.DeepEqual(got, []string{"/real.png"}) {
		t.Fatalf("got %v", got)
	}
}

func TestExtractSkipsStrings(t *testing.T) {
	css := `.a::before { content: "url(/fake.png)"; } .b { background: url(/real.png) }`
	got := raws(Extract(css))
	if !reflect.DeepEqual(got, []string{"/real.png"}) {
		t.Fatalf("got %v", got)
	}
}

func TestExtractMalformed(t *testing.T) {
	for _, css := range []string{
		"", "/* unterminated", `.a { background: url(`, `@import`, `@import ;`,
		`"unterminated string`, "}} {{", "@media screen {",
	} {
		_ = Extract(css) // must not panic
	}
}

func TestExtractURLsAdapter(t *testing.T) {
	got := ExtractURLs(`@import "a.css"; .x{background:url(b.png)}`)
	if !reflect.DeepEqual(got, []string{"a.css", "b.png"}) {
		t.Fatalf("got %v", got)
	}
}

func TestEscapedQuoteInString(t *testing.T) {
	refs := Extract(`.a { background: url("we\"ird.png") }`)
	if len(refs) != 1 || refs[0].Raw != `we"ird.png` {
		t.Fatalf("refs: %v", refs)
	}
}
