package cssparse

import "testing"

// FuzzExtract checks the CSS scanner is total on arbitrary input.
func FuzzExtract(f *testing.F) {
	for _, s := range []string{
		"",
		".a { background: url(/x.png) }",
		`@import "a.css"; @font-face { src: url('f.woff2') }`,
		"/* unterminated",
		`url(`, `url("`, "@", "@media screen { .a { color: red } }",
		"}}}{{{", `.a::before{content:"url(fake)"}`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, css string) {
		refs := Extract(css)
		for _, r := range refs {
			if len(r.Raw) > len(css) {
				t.Fatalf("ref longer than input: %q", r.Raw)
			}
		}
	})
}
