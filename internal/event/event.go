// Package event implements a discrete-event simulation engine.
//
// An Engine owns a virtual clock and a priority queue of scheduled events.
// Running the engine repeatedly pops the earliest event, advances the clock
// to its deadline, and invokes its callback. Callbacks may schedule further
// events. The engine is single-threaded by design: simulations built on it
// are deterministic.
package event

import (
	"container/heap"
	"fmt"
	"time"

	"vroom/internal/clock"
)

// Event is a scheduled callback. It is returned by Engine.Schedule and can be
// cancelled until it fires.
type Event struct {
	at     time.Time
	seq    uint64 // tie-break: FIFO among equal deadlines
	fn     func()
	index  int // heap index, -1 once removed
	cancel bool
	name   string
}

// At returns the time at which the event is scheduled to fire.
func (e *Event) At() time.Time { return e.at }

// Name returns the debug name given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Engine struct {
	clock *clock.Virtual
	queue eventQueue
	seq   uint64
	// Fired counts events that have been executed (not cancelled).
	fired uint64
}

// New returns an engine whose virtual clock starts at start.
func New(start time.Time) *Engine {
	return &Engine{clock: clock.NewVirtual(start)}
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Clock exposes the engine's virtual clock.
func (e *Engine) Clock() *clock.Virtual { return e.clock }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled (including events that
// were cancelled but not yet drained).
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule registers fn to run at absolute time at. Scheduling in the past is
// an error in the simulation logic; the event is clamped to the current time
// so that it fires next, preserving progress.
func (e *Engine) Schedule(at time.Time, name string, fn func()) *Event {
	if now := e.clock.Now(); at.Before(now) {
		at = now
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, name: name}
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAfter registers fn to run d after the current simulation time.
func (e *Engine) ScheduleAfter(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.clock.Now().Add(d), name, fn)
}

// Cancel prevents ev from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	// Lazy deletion: the event stays in the heap and is skipped when popped.
}

// Step executes the earliest pending event. It returns false when no events
// remain.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.clock.Set(ev.at)
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain or limit events have fired.
// A limit of 0 means no limit. It returns the number of events fired during
// this call and an error if the limit was hit (which usually indicates a
// livelock in the simulated system).
func (e *Engine) Run(limit uint64) (uint64, error) {
	var n uint64
	for e.Step() {
		n++
		if limit > 0 && n >= limit {
			if e.queue.Len() > 0 {
				return n, fmt.Errorf("event: run limit %d reached with %d events pending", limit, e.queue.Len())
			}
			return n, nil
		}
	}
	return n, nil
}

// RunUntil executes events with deadlines <= t, then advances the clock to t.
func (e *Engine) RunUntil(t time.Time) {
	for e.queue.Len() > 0 {
		// Peek.
		ev := e.queue[0]
		if ev.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if ev.at.After(t) {
			break
		}
		e.Step()
	}
	e.clock.Set(t)
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
