package event

import (
	"testing"
	"time"
)

var start = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)

func TestOrdering(t *testing.T) {
	eng := New(start)
	var got []int
	eng.ScheduleAfter(3*time.Second, "c", func() { got = append(got, 3) })
	eng.ScheduleAfter(1*time.Second, "a", func() { got = append(got, 1) })
	eng.ScheduleAfter(2*time.Second, "b", func() { got = append(got, 2) })
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order: %v", got)
	}
	if eng.Now() != start.Add(3*time.Second) {
		t.Fatalf("clock at %v", eng.Now())
	}
}

func TestFIFOAmongEqualDeadlines(t *testing.T) {
	eng := New(start)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.ScheduleAfter(time.Second, "tie", func() { got = append(got, i) })
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	eng := New(start)
	fired := false
	ev := eng.ScheduleAfter(time.Second, "x", func() { fired = true })
	eng.Cancel(ev)
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestNestedScheduling(t *testing.T) {
	eng := New(start)
	var at []time.Duration
	eng.ScheduleAfter(time.Second, "outer", func() {
		at = append(at, eng.Now().Sub(start))
		eng.ScheduleAfter(time.Second, "inner", func() {
			at = append(at, eng.Now().Sub(start))
		})
	})
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != time.Second || at[1] != 2*time.Second {
		t.Fatalf("times: %v", at)
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	eng := New(start)
	eng.ScheduleAfter(time.Minute, "advance", func() {
		// Scheduling in the past must fire "now", not move time backward.
		eng.Schedule(start, "past", func() {
			if eng.Now().Before(start.Add(time.Minute)) {
				t.Error("clock moved backwards")
			}
		})
	})
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestRunLimit(t *testing.T) {
	eng := New(start)
	var tick func()
	tick = func() { eng.ScheduleAfter(time.Millisecond, "tick", tick) }
	tick()
	n, err := eng.Run(100)
	if err == nil {
		t.Fatal("runaway loop not detected")
	}
	if n != 100 {
		t.Fatalf("fired %d, want 100", n)
	}
}

func TestRunUntil(t *testing.T) {
	eng := New(start)
	fired := 0
	eng.ScheduleAfter(time.Second, "in", func() { fired++ })
	eng.ScheduleAfter(time.Hour, "out", func() { fired++ })
	eng.RunUntil(start.Add(time.Minute))
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if eng.Now() != start.Add(time.Minute) {
		t.Fatalf("clock at %v", eng.Now())
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending %d", eng.Pending())
	}
}
