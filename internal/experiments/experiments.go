// Package experiments reproduces every table and figure in the paper's
// evaluation (§2, §4, §6). Each FigXX function runs the relevant policies
// over a generated corpus and returns the series the paper plots, plus a
// formatted text rendering. cmd/vroom-bench and the repository benchmarks
// drive these.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vroom/internal/browser"
	"vroom/internal/faults"
	"vroom/internal/metrics"
	"vroom/internal/runner"
	"vroom/internal/webpage"
)

// Options scale and seed an experiment run.
type Options struct {
	Seed int64
	// Per-category site counts. The paper uses the top 50 News + top 50
	// Sports sites and the Alexa top 100.
	NewsSites, SportsSites, Top100Sites int
	// Time is the instant of the measured loads.
	Time time.Time
	// Profile is the client (Nexus-6-class phone by default).
	Profile webpage.Profile
	// LoadsPerSite takes the median over this many back-to-back loads
	// (the paper uses 3).
	LoadsPerSite int
	// FaultRegime subjects every measured load to seeded fault injection
	// (cmd/vroom-bench -faults). The plans derive from Seed, so results
	// stay reproducible. RegimeNone (the zero value) is the perfect world.
	FaultRegime faults.Regime
	// Workers bounds the number of sites loaded concurrently. Results are
	// gathered in corpus order and every load is seeded independently of
	// its worker, so any worker count produces byte-identical tables;
	// <= 1 runs serially.
	Workers int

	// caches shares the deterministic offline work (resolver training,
	// snapshot materialization, Polaris graphs) across the loads of one
	// figure. fill() creates it, so every Options copy derived from one
	// figure invocation shares the same cache set.
	caches *runner.Caches
}

// DefaultOptions reproduces the paper's scale.
func DefaultOptions() Options {
	return Options{
		Seed: 2017, NewsSites: 50, SportsSites: 50, Top100Sites: 100,
		Time:         time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC),
		Profile:      webpage.Profile{Device: webpage.PhoneSmall, UserID: 11},
		LoadsPerSite: 3,
	}
}

// QuickOptions is a scaled-down configuration for tests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.NewsSites, o.SportsSites, o.Top100Sites = 3, 3, 6
	o.LoadsPerSite = 1
	return o
}

// WithCaches supplies the shared offline-work cache set fill() would
// otherwise create, so a driver (cmd/vroom-bench) can read hit/miss
// statistics with runner.Caches.Stats after the figure completes.
func (o Options) WithCaches(c *runner.Caches) Options {
	o.caches = c
	return o
}

func (o Options) fill() Options {
	if o.Time.IsZero() {
		o.Time = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	}
	if o.LoadsPerSite <= 0 {
		o.LoadsPerSite = 1
	}
	if o.caches == nil {
		o.caches = runner.NewCaches()
	}
	return o
}

// newsAndSports generates the paper's main workload.
func (o Options) newsAndSports() []*webpage.Site {
	c := webpage.Generate(webpage.CorpusConfig{Seed: o.Seed, NumNews: o.NewsSites, NumSports: o.SportsSites})
	return c.Sites
}

func (o Options) top100() []*webpage.Site {
	c := webpage.Generate(webpage.CorpusConfig{Seed: o.Seed + 1, NumTop100: o.Top100Sites})
	return c.Sites
}

// Result is one reproduced figure or table.
type Result struct {
	ID    string
	Title string
	// Series holds the figure's labelled distributions in plot order.
	Series []metrics.TableRow
	// Text is the terminal rendering.
	Text string
	// Notes carries scalar findings quoted in the paper's prose.
	Notes []string
	// Hists holds the experiment's per-resource metric distributions
	// (time-to-first-byte, scheduler hold, push lead), when the figure
	// records them.
	Hists *metrics.Registry
}

// observeLoadHists records per-resource metric distributions from a corpus
// run into reg under "<prefix>/..." names:
//
//   - ttfb: request issue to first response byte;
//   - sched-hold: discovery to request issue — how long the scheduler (or
//     stage gate) held the fetch;
//   - push-lead: PUSH_PROMISE arrival to the moment parsing actually
//     required the resource — how far ahead of need the push ran (pushes
//     that were promised after being required record zero lead).
func observeLoadHists(reg *metrics.Registry, prefix string, rs []browser.Result) {
	for _, r := range rs {
		for _, rt := range r.Resources {
			// >= so that zero-TTFB samples (pushed and cache-satisfied
			// resources) are kept; dropping them biased the histogram up.
			if rt.FirstByteAt >= rt.RequestedAt && rt.FirstByteAt > 0 {
				reg.ObserveDuration(prefix+"/ttfb", rt.FirstByteAt-rt.RequestedAt)
			}
			if rt.RequestedAt >= rt.DiscoveredAt && rt.ArrivedAt > 0 {
				reg.ObserveDuration(prefix+"/sched-hold", rt.RequestedAt-rt.DiscoveredAt)
			}
			if rt.Pushed && rt.PushPromisedAt > 0 && rt.RequiredAt > 0 {
				lead := rt.RequiredAt - rt.PushPromisedAt
				if lead < 0 {
					lead = 0
				}
				reg.ObserveDuration(prefix+"/push-lead", lead)
			}
		}
	}
}

// medianLoad runs a policy on a site LoadsPerSite times back-to-back and
// returns the load with the median PLT, as the paper does.
func medianLoad(site *webpage.Site, pol runner.Policy, o Options, cache *browser.Cache) (browser.Result, error) {
	var results []browser.Result
	for i := 0; i < o.LoadsPerSite; i++ {
		var plan *faults.Plan
		if o.FaultRegime != faults.RegimeNone {
			plan = faults.New(faultSeed(o.Seed, site.Name, uint64(i+1)), faults.RegimeConfig(o.FaultRegime))
		}
		r, err := runner.Run(site, pol, runner.Options{
			Time: o.Time, Profile: o.Profile, Nonce: uint64(i + 1), Cache: cache, Faults: plan,
			Caches: o.caches,
		})
		if err != nil {
			return browser.Result{}, err
		}
		results = append(results, r)
	}
	return medianByPLT(results), nil
}

// medianByPLT returns the load with the median PLT: the middle of the
// PLT-sorted loads, or the lower middle for even counts (so the result is
// always an actual load).
func medianByPLT(results []browser.Result) browser.Result {
	sorted := append([]browser.Result(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].PLT < sorted[j].PLT })
	return sorted[(len(sorted)-1)/2]
}

// forEachSite runs fn(i, site) for every site, fanning out across up to
// workers goroutines (<= 1 runs inline). Each invocation is independent and
// writes results into caller slices by index, so the schedule does not
// affect output. When invocations fail, the error for the lowest-indexed
// site wins — the same error a serial sweep would have returned first.
func forEachSite(sites []*webpage.Site, workers int, fn func(i int, s *webpage.Site) error) error {
	if workers > len(sites) {
		workers = len(sites)
	}
	if workers < 1 {
		workers = 1
	}
	sweepStart := time.Now()
	defer func() {
		pool.capacityNs.Add(int64(workers) * int64(time.Since(sweepStart)))
	}()
	timed := func(i int, s *webpage.Site) error {
		t0 := time.Now()
		err := fn(i, s)
		pool.busyNs.Add(int64(time.Since(t0)))
		pool.sites.Add(1)
		return err
	}
	if workers == 1 {
		for i, s := range sites {
			if err := timed(i, s); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
		errs = make([]error, len(sites))
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(sites) {
					return
				}
				errs[i] = timed(i, sites[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCorpus executes a policy across sites, collecting per-site results in
// corpus order (regardless of worker count).
func runCorpus(sites []*webpage.Site, pol runner.Policy, o Options) ([]browser.Result, error) {
	out := make([]browser.Result, len(sites))
	err := forEachSite(sites, o.Workers, func(i int, s *webpage.Site) error {
		r, err := medianLoad(s, pol, o, nil)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", s.Name, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pltDist extracts the PLT distribution in seconds.
func pltDist(rs []browser.Result) *metrics.Dist {
	d := metrics.NewDist()
	for _, r := range rs {
		d.AddDuration(r.PLT)
	}
	return d
}

// lowerBound computes the paper's per-site bound: the max of the
// CPU-bottleneck and network-bottleneck loads (§2).
func lowerBound(sites []*webpage.Site, o Options) (plt, aft, si *metrics.Dist, err error) {
	type bound struct{ cpu, net browser.Result }
	bounds := make([]bound, len(sites))
	err = forEachSite(sites, o.Workers, func(i int, s *webpage.Site) error {
		cpu, err := medianLoad(s, runner.CPUOnly, o, nil)
		if err != nil {
			return err
		}
		net, err := medianLoad(s, runner.NetworkOnly, o, nil)
		if err != nil {
			return err
		}
		bounds[i] = bound{cpu, net}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	plt, aft, si = metrics.NewDist(), metrics.NewDist(), metrics.NewDist()
	for _, b := range bounds {
		plt.AddDuration(maxDur(b.cpu.PLT, b.net.PLT))
		aft.AddDuration(maxDur(b.cpu.AFT, b.net.AFT))
		if b.cpu.SpeedIndex > b.net.SpeedIndex {
			si.Add(b.cpu.SpeedIndex)
		} else {
			si.Add(b.net.SpeedIndex)
		}
	}
	return plt, aft, si, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func renderResult(r *Result) string {
	var b strings.Builder
	b.WriteString(metrics.Table(fmt.Sprintf("%s — %s", r.ID, r.Title), r.Series))
	if len(r.Series) > 1 {
		b.WriteString(metrics.ASCIICDF("  deciles", "p10..p90", r.Series))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
