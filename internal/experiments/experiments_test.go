package experiments

import (
	"strings"
	"testing"
)

func TestAllFiguresRunQuick(t *testing.T) {
	o := QuickOptions()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Registry[id](o)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Errorf("result ID %q != %q", res.ID, id)
			}
			if len(res.Series) == 0 {
				t.Error("no series produced")
			}
			for _, row := range res.Series {
				if row.Dist == nil || row.Dist.N() == 0 {
					t.Errorf("series %q empty", row.Label)
				}
			}
			if !strings.Contains(res.Text, res.ID) {
				t.Errorf("text rendering missing figure id:\n%s", res.Text)
			}
			t.Logf("\n%s", res.Text)
		})
	}
}

func TestShapeOrderings(t *testing.T) {
	// The qualitative relationships the paper's figures establish must
	// hold at moderate scale.
	o := QuickOptions()
	o.NewsSites, o.SportsSites = 8, 8
	o.Top100Sites = 10

	f13, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	med := map[string]float64{}
	for _, row := range f13.Series {
		med[row.Label] = row.Dist.Median()
	}
	bound, vroom, h2, h1 := med["lower bound PLT"], med["vroom PLT"], med["http/2 baseline PLT"], med["http/1.1 PLT"]
	if !(bound < vroom && vroom < h2 && h2 <= h1+0.8) {
		t.Errorf("PLT ordering violated: bound=%.2f vroom=%.2f h2=%.2f h1=%.2f", bound, vroom, h2, h1)
	}
	if (h2-vroom)/h2 < 0.08 {
		t.Errorf("vroom improvement over h2 too small: %.2f vs %.2f", vroom, h2)
	}

	f21, err := Fig21(o)
	if err != nil {
		t.Fatal(err)
	}
	fn := map[string]float64{}
	for _, row := range f21.Series {
		fn[row.Label] = row.Dist.Median()
	}
	if fn["false negatives, vroom"] > 0.15 {
		t.Errorf("vroom FN median %.2f too high", fn["false negatives, vroom"])
	}
	if fn["false negatives, offline only"] < fn["false negatives, vroom"] {
		t.Error("offline-only should miss more than vroom")
	}
	if fn["false negatives, online only"] > 0.02 {
		t.Errorf("online-only FN median %.2f should be ~0", fn["false negatives, online only"])
	}
	if fn["false positives, online only"] < fn["false positives, vroom"] {
		t.Error("online-only should return more extraneous URLs than vroom")
	}
}
