package experiments

import (
	"fmt"
	"time"

	"vroom/internal/browser"
	"vroom/internal/hints"
	"vroom/internal/metrics"
	"vroom/internal/runner"
	"vroom/internal/webpage"
)

// Fig20 — warm browser caches: a first load warms the cache, then the page
// is reloaded back-to-back, one day later, and one week later, under Vroom
// and under the HTTP/2 baseline. Cached resources are neither refetched by
// the client nor pushed by cache-aware servers.
func Fig20(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	gaps := []struct {
		label string
		d     time.Duration
	}{
		{"back-to-back", 0},
		{"1 day later", 24 * time.Hour},
		{"1 week later", 7 * 24 * time.Hour},
	}
	var rows []metrics.TableRow
	var notes []string
	for _, gap := range gaps {
		gap := gap
		type warm struct{ vroom, h2 browser.Result }
		warms := make([]warm, len(sites))
		err := forEachSite(sites, o.Workers, func(i int, s *webpage.Site) error {
			for pi, pol := range []runner.Policy{runner.Vroom, runner.H2} {
				cache := browser.NewCache()
				// Warm-up load at t.
				if _, err := runner.Run(s, pol, runner.Options{
					Time: o.Time, Profile: o.Profile, Nonce: 1, Cache: cache, Caches: o.caches,
				}); err != nil {
					return err
				}
				// Measured load after the gap.
				res, err := runner.Run(s, pol, runner.Options{
					Time: o.Time.Add(gap.d), Profile: o.Profile, Nonce: 2, Cache: cache, Caches: o.caches,
				})
				if err != nil {
					return err
				}
				if pi == 0 {
					warms[i].vroom = res
				} else {
					warms[i].h2 = res
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		vroomD, h2D := metrics.NewDist(), metrics.NewDist()
		for _, w := range warms {
			vroomD.AddDuration(w.vroom.PLT)
			h2D.AddDuration(w.h2.PLT)
		}
		rows = append(rows,
			metrics.TableRow{Label: "vroom, " + gap.label, Dist: vroomD},
			metrics.TableRow{Label: "h2 baseline, " + gap.label, Dist: h2D},
		)
		notes = append(notes, fmt.Sprintf("%s: vroom %.1fs vs h2 %.1fs (Δ %.1fs)",
			gap.label, vroomD.Median(), h2D.Median(), h2D.Median()-vroomD.Median()))
	}
	r := &Result{ID: "fig20", Title: "Warm-cache PLT (s)", Series: rows, Notes: notes}
	r.Notes = append(r.Notes, "paper: vroom improves warm loads by 1.6s (back-to-back), 2.2s (1 day), 2.1s (1 week)")
	r.Text = renderResult(r)
	return r, nil
}

// Fig11 — why scheduling matters, on a single site: the receipt-time change
// (relative to the HTTP/2 baseline) of the first 10 resources that need
// processing, under push-all-fetch-ASAP and under Vroom.
func Fig11(o Options) (*Result, error) {
	o = o.fill()
	site := o.newsAndSports()[0]
	base, err := medianLoad(site, runner.H2, o, nil)
	if err != nil {
		return nil, err
	}
	asap, err := medianLoad(site, runner.PushAllFetchASAP, o, nil)
	if err != nil {
		return nil, err
	}
	vr, err := medianLoad(site, runner.Vroom, o, nil)
	if err != nil {
		return nil, err
	}
	// The first 10 high-priority resources in baseline fetch order.
	type row struct {
		url     string
		baseAt  time.Duration
		asapAt  time.Duration
		vroomAt time.Duration
	}
	arrivals := func(r browser.Result) map[string]time.Duration {
		m := make(map[string]time.Duration, len(r.Resources))
		for _, rt := range r.Resources {
			if rt.ArrivedAt > 0 {
				m[rt.URL] = rt.ArrivedAt
			}
		}
		return m
	}
	asapAt, vroomAt := arrivals(asap), arrivals(vr)
	var rowsData []row
	ordered := append([]browser.ResourceTiming(nil), base.Resources...)
	// base.Resources is in discovery order; filter high-priority processed.
	for _, rt := range ordered {
		if !rt.Required || rt.Priority != hints.High || rt.ArrivedAt == 0 {
			continue
		}
		rowsData = append(rowsData, row{url: rt.URL, baseAt: rt.ArrivedAt, asapAt: asapAt[rt.URL], vroomAt: vroomAt[rt.URL]})
		if len(rowsData) == 10 {
			break
		}
	}
	asapDelta, vroomDelta := metrics.NewDist(), metrics.NewDist()
	var text string
	text = fmt.Sprintf("fig11 — receipt-time change vs HTTP/2 baseline, first %d processed resources on %s\n", len(rowsData), site.Name)
	text += fmt.Sprintf("  %-3s %9s %12s %12s\n", "id", "base(s)", "pushASAP Δs", "vroom Δs")
	for i, rd := range rowsData {
		da := (rd.asapAt - rd.baseAt).Seconds()
		dv := (rd.vroomAt - rd.baseAt).Seconds()
		asapDelta.Add(da)
		vroomDelta.Add(dv)
		text += fmt.Sprintf("  %-3d %9.2f %+12.2f %+12.2f\n", i+1, rd.baseAt.Seconds(), da, dv)
	}
	r := &Result{
		ID:    "fig11",
		Title: "Receipt-time change of first 10 processed resources",
		Series: []metrics.TableRow{
			{Label: "push-all-fetch-asap delta", Dist: asapDelta},
			{Label: "vroom delta", Dist: vroomDelta},
		},
		Text: text,
	}
	r.Notes = append(r.Notes, "paper: fetch-ASAP delays several early resources; vroom speeds them up without delaying any individually")
	r.Text += "  note: " + r.Notes[0] + "\n"
	return r, nil
}
