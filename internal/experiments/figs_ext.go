package experiments

import (
	"fmt"
	"time"

	"vroom/internal/core"
	"vroom/internal/metrics"
	"vroom/internal/netsim"
	"vroom/internal/runner"
	"vroom/internal/webpage"
)

// Ext01 — the §7 scalability extension: offline resolution cost vs hint
// quality when the server crawls only a sample of pages per page type and
// serves template hints for the rest, compared with crawling every page
// and with online-only analysis. Measured on each site's last article page
// (never crawled by the sampled resolver).
func Ext01(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	var (
		covSampled = metrics.NewDist()
		covFull    = metrics.NewDist()
		covOnline  = metrics.NewDist()
		loadsSaved = metrics.NewDist()
	)
	profile := webpage.Profile{Device: o.Profile.Device, UserID: o.Profile.UserID}
	for _, s := range sites {
		if s.NumPages() < 3 {
			continue
		}
		unseen := s.NumPages() - 1
		sn := s.PageSnapshot(unseen, o.Time, profile, 1)
		body := sn.RootResource().Body

		// Stable deps of the unseen page = the coverage denominator.
		denom := map[string]bool{}
		for _, d := range core.DocDeps(sn, sn.RootResource()) {
			res, ok := sn.LookupString(d.URL.String())
			if !ok || res.Unpredictable || res.Personalized {
				continue
			}
			denom[d.URL.String()] = true
		}
		if len(denom) == 0 {
			continue
		}
		coverage := func(hs map[string]bool) float64 {
			n := 0
			for u := range denom {
				if hs[u] {
					n++
				}
			}
			return float64(n) / float64(len(denom))
		}
		set := func(r *core.Resolver) map[string]bool {
			out := map[string]bool{}
			for _, h := range r.HintsForPage(s, sn.Root, body, profile.Device) {
				out[h.URL.String()] = true
			}
			return out
		}

		sampled := core.NewResolver(core.DefaultResolverConfig())
		sampled.TrainTemplates(s, o.Time, profile.Device, []int{0, 1})
		covSampled.Add(coverage(set(sampled)))

		full := core.NewResolver(core.DefaultResolverConfig())
		allPages := make([]int, s.NumPages())
		for i := range allPages {
			allPages[i] = i
		}
		full.TrainTemplates(s, o.Time, profile.Device, allPages)
		covFull.Add(coverage(set(full)))

		onlineCfg := core.DefaultResolverConfig()
		onlineCfg.UseOffline = false
		online := core.NewResolver(onlineCfg)
		covOnline.Add(coverage(set(online)))

		loadsSaved.Add(float64(s.NumPages()-2) / float64(s.NumPages()))
	}
	r := &Result{
		ID:    "ext01",
		Title: "§7 extension: template hints for uncrawled pages (stable-dep coverage)",
		Series: []metrics.TableRow{
			{Label: "sampled (2 pages/site)", Dist: covSampled},
			{Label: "full crawl (every page)", Dist: covFull},
			{Label: "online-only", Dist: covOnline},
			{Label: "offline loads saved (frac)", Dist: loadsSaved},
		},
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"sampling per page type keeps coverage (%.0f%% vs %.0f%% full) while saving %.0f%% of hourly offline loads; online-only reaches %.0f%%",
		covSampled.Median()*100, covFull.Median()*100, loadsSaved.Median()*100, covOnline.Median()*100))
	r.Text = renderResult(r)
	return r, nil
}

// Ext02 — sensitivity to cellular capacity variation: the headline
// comparison repeated on a Mahimahi-style time-varying LTE trace instead
// of a constant-rate link. Vroom's advantage should survive bandwidth
// churn, since it attacks discovery latency rather than throughput.
func Ext02(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	pols := []struct {
		label string
		pol   runner.Policy
	}{
		{"vroom", runner.Vroom},
		{"http/2 baseline", runner.H2},
		{"http/1.1", runner.HTTP1},
	}
	var rows []metrics.TableRow
	for _, pc := range pols {
		pc := pc
		plts := make([]time.Duration, len(sites))
		err := forEachSite(sites, o.Workers, func(si int, s *webpage.Site) error {
			cfg := netsim.LTEDefaults(netsim.HTTP2)
			if pc.pol == runner.HTTP1 {
				cfg = netsim.LTEDefaults(netsim.HTTP1)
			}
			cfg.Trace = netsim.DefaultLTETrace(int64(si + 1))
			res, err := runner.Run(s, pc.pol, runner.Options{
				Time: o.Time, Profile: o.Profile, Nonce: 1, Net: &cfg, Caches: o.caches,
			})
			if err != nil {
				return err
			}
			plts[si] = res.PLT
			return nil
		})
		if err != nil {
			return nil, err
		}
		d := metrics.NewDist()
		for _, plt := range plts {
			d.AddDuration(plt)
		}
		rows = append(rows, metrics.TableRow{Label: pc.label, Dist: d})
	}
	r := &Result{ID: "ext02", Title: "Variable-bandwidth LTE trace: PLT (s)", Series: rows}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"medians under a 4-14 Mbit/s random-walk trace: vroom %.1fs, h2 %.1fs, http/1.1 %.1fs — ordering preserved under capacity churn",
		rows[0].Dist.Median(), rows[1].Dist.Median(), rows[2].Dist.Median()))
	r.Text = renderResult(r)
	return r, nil
}
