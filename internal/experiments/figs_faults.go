package experiments

import (
	"fmt"
	"hash/fnv"

	"vroom/internal/browser"
	"vroom/internal/faults"
	"vroom/internal/metrics"
	"vroom/internal/runner"
	"vroom/internal/telemetry"
	"vroom/internal/webpage"
)

// faultSeed derives the per-(site, load) fault-plan seed from the
// experiment seed, so every policy compared on one site faces the same
// broken world and the whole table replays exactly under one seed.
func faultSeed(base int64, site string, nonce uint64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", base, site, nonce)
	return int64(h.Sum64())
}

// chaosLoad runs a policy on a site LoadsPerSite times, each load under a
// fresh fault plan for the regime, and returns the median-PLT load. Fault
// and degradation counters aggregate into agg.
func chaosLoad(s *webpage.Site, pol runner.Policy, o Options, reg faults.Regime, agg *telemetry.Counters) (browser.Result, error) {
	var results []browser.Result
	for i := 0; i < o.LoadsPerSite; i++ {
		var plan *faults.Plan
		if reg != faults.RegimeNone {
			plan = faults.New(faultSeed(o.Seed, s.Name, uint64(i+1)), faults.RegimeConfig(reg))
		}
		r, err := runner.Run(s, pol, runner.Options{
			Time: o.Time, Profile: o.Profile, Nonce: uint64(i + 1), Faults: plan,
			Caches: o.caches,
		})
		if err != nil {
			return browser.Result{}, err
		}
		agg.Add("retries", int64(r.Retries))
		agg.Add("timeouts", int64(r.Timeouts))
		agg.Add("failed-fetches", int64(r.FailedFetches))
		agg.Add("hints-failed", int64(r.HintsFailed))
		agg.Add("wasted-push-bytes", r.WastedPushBytes)
		for _, st := range plan.Stats() {
			agg.Add("injected/"+st.Name, st.Count)
		}
		results = append(results, r)
	}
	return medianByPLT(results), nil
}

// Ext03 — chaos: PLT for every runner policy under the none/mild/severe
// fault regimes. Vroom's hints are best-effort by design (§4); this
// experiment demonstrates the graceful-degradation invariant end to end —
// under heavy faults (dead origins, 5xx, stalls, a quarter of hints
// stale), Vroom's PLT stays in the same band as the no-hints HTTP/2
// baseline rather than collapsing, and the report carries the
// retry/timeout/wasted-push counters that show the machinery working.
func Ext03(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	regimes := []faults.Regime{faults.RegimeNone, faults.RegimeMild, faults.RegimeSevere}

	type cell struct {
		pol runner.Policy
		reg faults.Regime
	}
	dists := make(map[cell]*metrics.Dist)
	counters := make(map[faults.Regime]*telemetry.Counters)
	hists := metrics.NewRegistry()
	var rows []metrics.TableRow
	for _, reg := range regimes {
		counters[reg] = telemetry.NewCounters()
		for _, name := range []string{"retries", "timeouts", "failed-fetches", "hints-failed", "wasted-push-bytes"} {
			counters[reg].Touch(name)
		}
		for _, pol := range runner.AllPolicies() {
			pol := pol
			// Fault counters aggregate commutatively and each load's fault
			// plan is seeded by (site, load), so the parallel sweep reports
			// exactly what the serial one would.
			loads := make([]browser.Result, len(sites))
			err := forEachSite(sites, o.Workers, func(i int, s *webpage.Site) error {
				res, err := chaosLoad(s, pol, o, reg, counters[reg])
				if err != nil {
					return fmt.Errorf("ext03: %s under %s: %w", pol, reg, err)
				}
				loads[i] = res
				return nil
			})
			if err != nil {
				return nil, err
			}
			d := metrics.NewDist()
			var vroomLoads []browser.Result
			for _, res := range loads {
				d.AddDuration(res.PLT)
				if pol == runner.Vroom {
					vroomLoads = append(vroomLoads, res)
				}
			}
			if pol == runner.Vroom {
				// The per-resource distributions show how the fault regime
				// shifts time-to-first-byte and hold times under Vroom.
				observeLoadHists(hists, fmt.Sprintf("%s/vroom", reg), vroomLoads)
			}
			dists[cell{pol, reg}] = d
			rows = append(rows, metrics.TableRow{Label: fmt.Sprintf("%s/%s", reg, pol), Dist: d})
		}
	}

	r := &Result{
		ID:     "ext03",
		Title:  "Chaos: PLT (s) per policy under none/mild/severe fault regimes",
		Series: rows,
	}
	for _, reg := range regimes {
		if reg == faults.RegimeNone {
			continue
		}
		r.Notes = append(r.Notes, fmt.Sprintf("%s counters: %s", reg, counters[reg]))
	}
	vroomSevere := dists[cell{runner.Vroom, faults.RegimeSevere}].Median()
	h2Severe := dists[cell{runner.H2, faults.RegimeSevere}].Median()
	vroomNone := dists[cell{runner.Vroom, faults.RegimeNone}].Median()
	r.Notes = append(r.Notes, fmt.Sprintf(
		"severe-regime medians: vroom %.2fs vs no-hints h2 %.2fs (%+.1f%%); vroom clean-world %.2fs — bad hints degrade to vanilla discovery, they do not break the load",
		vroomSevere, h2Severe, (vroomSevere/h2Severe-1)*100, vroomNone))
	r.Hists = hists
	r.Text = renderResult(r) + hists.Render("  vroom per-resource distributions by regime")
	return r, nil
}
