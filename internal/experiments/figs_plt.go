package experiments

import (
	"fmt"

	"vroom/internal/browser"
	"vroom/internal/metrics"
	"vroom/internal/runner"
	"vroom/internal/webpage"
)

// Fig01 — page load times on today's mobile web: Alexa top-100 vs the top
// 50 News + top 50 Sports sites, status quo (HTTP/1.1).
func Fig01(o Options) (*Result, error) {
	o = o.fill()
	top, err := runCorpus(o.top100(), runner.HTTP1, o)
	if err != nil {
		return nil, err
	}
	ns, err := runCorpus(o.newsAndSports(), runner.HTTP1, o)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:    "fig01",
		Title: "Status-quo PLT CDFs (s)",
		Series: []metrics.TableRow{
			{Label: "top-100 overall", Dist: pltDist(top)},
			{Label: "top-50 news + top-50 sports", Dist: pltDist(ns)},
		},
	}
	r.Notes = append(r.Notes, fmt.Sprintf("paper: medians ≈5s (top-100) and >10s (news+sports); measured %.1fs and %.1fs",
		r.Series[0].Dist.Median(), r.Series[1].Dist.Median()))
	r.Text = renderResult(r)
	return r, nil
}

// Fig02 — potential gains from fully using the CPU or the network:
// network-bottleneck, CPU-bottleneck, their max, and real loads.
func Fig02(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	netOnly, err := runCorpus(sites, runner.NetworkOnly, o)
	if err != nil {
		return nil, err
	}
	cpuOnly, err := runCorpus(sites, runner.CPUOnly, o)
	if err != nil {
		return nil, err
	}
	web, err := runCorpus(sites, runner.HTTP1, o)
	if err != nil {
		return nil, err
	}
	bound, _, _, err := lowerBound(sites, o)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:    "fig02",
		Title: "Lower-bound PLT CDFs (s)",
		Series: []metrics.TableRow{
			{Label: "network bottleneck", Dist: pltDist(netOnly)},
			{Label: "cpu bottleneck", Dist: pltDist(cpuOnly)},
			{Label: "max(cpu, network)", Dist: bound},
			{Label: "loads from web", Dist: pltDist(web)},
		},
	}
	r.Notes = append(r.Notes, fmt.Sprintf("paper: bound ≈5s vs 10.5s status quo; measured %.1fs vs %.1fs",
		bound.Median(), r.Series[3].Dist.Median()))
	r.Text = renderResult(r)
	return r, nil
}

// Fig03 — estimated impact of global HTTP/2 adoption: HTTP/2 baseline,
// first-party push-all-static, HTTP/1.1.
func Fig03(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	rows := []metrics.TableRow{}
	for _, pc := range []struct {
		label string
		pol   runner.Policy
	}{
		{"http/2 baseline", runner.H2},
		{"push all static", runner.H2PushAllStatic},
		{"http/1.1", runner.HTTP1},
	} {
		rs, err := runCorpus(sites, pc.pol, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, metrics.TableRow{Label: pc.label, Dist: pltDist(rs)})
	}
	r := &Result{ID: "fig03", Title: "HTTP/2 adoption PLT CDFs (s)", Series: rows}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"paper: H2 ≈8s median, push-all-static little extra benefit; measured h2 %.1fs, push-all-static %.1fs",
		rows[0].Dist.Median(), rows[1].Dist.Median()))
	r.Text = renderResult(r)
	return r, nil
}

// Fig04 — fraction of the critical path spent waiting for the network
// under HTTP/2.
func Fig04(o Options) (*Result, error) {
	o = o.fill()
	rs, err := runCorpus(o.newsAndSports(), runner.H2, o)
	if err != nil {
		return nil, err
	}
	d := metrics.NewDist()
	for _, r := range rs {
		d.Add(r.IdleFrac)
	}
	r := &Result{
		ID:     "fig04",
		Title:  "Fraction of critical path waiting on network (HTTP/2)",
		Series: []metrics.TableRow{{Label: "network wait fraction", Dist: d}},
	}
	r.Notes = append(r.Notes, fmt.Sprintf("paper: >30%% on the median page; measured %.0f%%", d.Median()*100))
	r.Text = renderResult(r)
	return r, nil
}

// Fig13 — the headline result: PLT (a), above-the-fold time (b), and Speed
// Index (c) for the lower bound, Vroom, HTTP/2 baseline, and HTTP/1.1.
// The incremental-adoption scenario from §6.1 is reported as a note.
func Fig13(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	boundPLT, boundAFT, boundSI, err := lowerBound(sites, o)
	if err != nil {
		return nil, err
	}
	type series struct {
		label        string
		pol          runner.Policy
		plt, aft, si *metrics.Dist
	}
	pols := []*series{
		{label: "vroom", pol: runner.Vroom},
		{label: "vroom first-party only", pol: runner.VroomFirstParty},
		{label: "http/2 baseline", pol: runner.H2},
		{label: "http/1.1", pol: runner.HTTP1},
	}
	hists := metrics.NewRegistry()
	for _, s := range pols {
		rs, err := runCorpus(sites, s.pol, o)
		if err != nil {
			return nil, err
		}
		s.plt, s.aft, s.si = metrics.NewDist(), metrics.NewDist(), metrics.NewDist()
		for _, r := range rs {
			s.plt.AddDuration(r.PLT)
			s.aft.AddDuration(r.AFT)
			s.si.Add(r.SpeedIndex)
		}
		observeLoadHists(hists, string(s.pol), rs)
	}
	rows := []metrics.TableRow{{Label: "lower bound PLT", Dist: boundPLT}}
	for _, s := range pols {
		rows = append(rows, metrics.TableRow{Label: s.label + " PLT", Dist: s.plt})
	}
	rows = append(rows, metrics.TableRow{Label: "lower bound AFT", Dist: boundAFT})
	for _, s := range pols {
		rows = append(rows, metrics.TableRow{Label: s.label + " AFT", Dist: s.aft})
	}
	rows = append(rows, metrics.TableRow{Label: "lower bound SpeedIndex/1000", Dist: scaleDist(boundSI, 1e-3)})
	for _, s := range pols {
		rows = append(rows, metrics.TableRow{Label: s.label + " SpeedIndex/1000", Dist: scaleDist(s.si, 1e-3)})
	}
	r := &Result{ID: "fig13", Title: "Main result: PLT / AFT / SpeedIndex", Series: rows}
	_, pVal := metrics.MannWhitneyU(pols[0].plt, pols[2].plt)
	delta := metrics.CliffsDelta(pols[0].plt, pols[2].plt)
	r.Notes = append(r.Notes,
		fmt.Sprintf("paper: 10.5s http/1.1 → 7.3s h2 → 5.1s vroom ≈ 5.0s bound; measured %.1f → %.1f → %.1f ≈ %.1f",
			pols[3].plt.Median(), pols[2].plt.Median(), pols[0].plt.Median(), boundPLT.Median()),
		fmt.Sprintf("vroom vs h2 PLT: Mann-Whitney p=%.2g, Cliff's delta=%.2f", pVal, delta),
		fmt.Sprintf("paper: first-party-only adoption 5.6s vs 5.1s full; measured %.1f vs %.1f",
			pols[1].plt.Median(), pols[0].plt.Median()))
	r.Hists = hists
	r.Text = renderResult(r) + hists.Render("  per-resource distributions")
	return r, nil
}

func scaleDist(d *metrics.Dist, k float64) *metrics.Dist {
	out := metrics.NewDist()
	for p := 1.0; p <= 100; p++ {
		out.Add(d.Percentile(p) * k)
	}
	return out
}

// Fig14 — Vroom vs Polaris.
func Fig14(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	vr, err := runCorpus(sites, runner.Vroom, o)
	if err != nil {
		return nil, err
	}
	pl, err := runCorpus(sites, runner.Polaris, o)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:    "fig14",
		Title: "Vroom vs Polaris PLT CDFs (s)",
		Series: []metrics.TableRow{
			{Label: "vroom", Dist: pltDist(vr)},
			{Label: "polaris", Dist: pltDist(pl)},
		},
	}
	r.Notes = append(r.Notes, fmt.Sprintf("paper: medians 5.1s vs 6.4s; measured %.1fs vs %.1fs",
		r.Series[0].Dist.Median(), r.Series[1].Dist.Median()))
	r.Text = renderResult(r)
	return r, nil
}

// Fig16 — reduction in the client's latency to (a) discover and (b) finish
// fetching resources, relative to the HTTP/2 baseline; all resources and
// high-priority only.
func Fig16(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	type pair struct{ base, vr browser.Result }
	pairs := make([]pair, len(sites))
	err := forEachSite(sites, o.Workers, func(i int, s *webpage.Site) error {
		base, err := medianLoad(s, runner.H2, o, nil)
		if err != nil {
			return err
		}
		vr, err := medianLoad(s, runner.Vroom, o, nil)
		if err != nil {
			return err
		}
		pairs[i] = pair{base, vr}
		return nil
	})
	if err != nil {
		return nil, err
	}
	discAll, discHigh := metrics.NewDist(), metrics.NewDist()
	fetchAll, fetchHigh := metrics.NewDist(), metrics.NewDist()
	for _, p := range pairs {
		base, vr := p.base, p.vr
		discAll.Add(improvement(base.DiscoverAll.Seconds(), vr.DiscoverAll.Seconds()))
		discHigh.Add(improvement(base.DiscoverHigh.Seconds(), vr.DiscoverHigh.Seconds()))
		fetchAll.Add(improvement(base.FetchAll.Seconds(), vr.FetchAll.Seconds()))
		fetchHigh.Add(improvement(base.FetchHigh.Seconds(), vr.FetchHigh.Seconds()))
	}
	r := &Result{
		ID:    "fig16",
		Title: "Discovery / fetch-completion improvement over HTTP/2 (fraction)",
		Series: []metrics.TableRow{
			{Label: "discovery, all", Dist: discAll},
			{Label: "discovery, high-priority", Dist: discHigh},
			{Label: "fetch, all", Dist: fetchAll},
			{Label: "fetch, high-priority", Dist: fetchHigh},
		},
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"paper: median improvements 22%% (discover all), 16%% (discover high), 22%% (fetch all), 12%% (fetch high); measured %.0f%%, %.0f%%, %.0f%%, %.0f%%",
		discAll.Median()*100, discHigh.Median()*100, fetchAll.Median()*100, fetchHigh.Median()*100))
	r.Text = renderResult(r)
	return r, nil
}

func improvement(base, vroom float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - vroom) / base
}

// Fig17 — accuracy matters: returning every URL from a single prior load
// (stale extras included) vs Vroom vs baseline.
func Fig17(o Options) (*Result, error) {
	return quartileFigure(o, "fig17", "Deps from a single previous load (PLT s)",
		[]labelled{
			{"vroom", runner.Vroom},
			{"deps from previous load", runner.DepsFromPrevLoad},
			{"http/2 baseline", runner.H2},
		}, "paper: median improves slightly but p75 degrades by >1.5s vs vroom")
}

// Fig18 — push alone is insufficient: high-priority-only and push-all
// without hints.
func Fig18(o Options) (*Result, error) {
	return quartileFigure(o, "fig18", "Push-only strategies (PLT s)",
		[]labelled{
			{"vroom", runner.Vroom},
			{"push high priority, no hints", runner.PushHighNoHints},
			{"push all, no hints", runner.PushAllNoHints},
		}, "paper: push-only medians >2s above vroom (third-party resources need hints)")
}

// Fig19 — scheduling matters: fetch-everything-ASAP vs staged.
func Fig19(o Options) (*Result, error) {
	return quartileFigure(o, "fig19", "Scheduling strategies (PLT s)",
		[]labelled{
			{"vroom", runner.Vroom},
			{"push all, fetch asap", runner.PushAllFetchASAP},
			{"no push, no hints", runner.H2},
		}, "paper: fetch-ASAP yields no improvement over baseline; vroom's staging is key")
}

type labelled struct {
	label string
	pol   runner.Policy
}

func quartileFigure(o Options, id, title string, pols []labelled, note string) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	bound, _, _, err := lowerBound(sites, o)
	if err != nil {
		return nil, err
	}
	rows := []metrics.TableRow{{Label: "lower bound", Dist: bound}}
	for _, pc := range pols {
		rs, err := runCorpus(sites, pc.pol, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, metrics.TableRow{Label: pc.label, Dist: pltDist(rs)})
	}
	r := &Result{ID: id, Title: title, Series: rows, Notes: []string{note}}
	r.Text = renderResult(r)
	return r, nil
}
