package experiments

import (
	"fmt"
	"time"

	"vroom/internal/core"
	"vroom/internal/metrics"
	"vroom/internal/webpage"
)

// Fig07 — fraction of each page's resources that persist over an hour, a
// day, and a week (Alexa top-100 corpus).
func Fig07(o Options) (*Result, error) {
	o = o.fill()
	sites := o.top100()
	hour, day, week := metrics.NewDist(), metrics.NewDist(), metrics.NewDist()
	for _, s := range sites {
		now := s.Snapshot(o.Time, o.Profile, 1).URLSet()
		for i, gap := range []time.Duration{time.Hour, 24 * time.Hour, 7 * 24 * time.Hour} {
			later := s.Snapshot(o.Time.Add(gap), o.Profile, 2).URLSet()
			inter := 0
			for u := range now {
				if later[u] {
					inter++
				}
			}
			frac := float64(inter) / float64(len(now))
			switch i {
			case 0:
				hour.Add(frac)
			case 1:
				day.Add(frac)
			default:
				week.Add(frac)
			}
		}
	}
	r := &Result{
		ID:    "fig07",
		Title: "Fraction of resources persisting over time",
		Series: []metrics.TableRow{
			{Label: "one hour", Dist: hour},
			{Label: "one day", Dist: day},
			{Label: "one week", Dist: week},
		},
	}
	r.Notes = append(r.Notes, fmt.Sprintf("paper: medians ≈0.7 (hour) and ≈0.5 (week); measured %.2f and %.2f",
		hour.Median(), week.Median()))
	r.Text = renderResult(r)
	return r, nil
}

// Fig09 — device equivalence classes: intersection-over-union of each
// page's stable resource set on a PhoneLarge (OnePlus 3) and a Tablet
// (Nexus 10) versus a PhoneSmall (Nexus 6).
func Fig09(o Options) (*Result, error) {
	o = o.fill()
	sites := o.top100()
	phone, tablet := metrics.NewDist(), metrics.NewDist()
	for _, s := range sites {
		res := core.NewResolver(core.DefaultResolverConfig())
		for _, d := range []webpage.DeviceClass{webpage.PhoneSmall, webpage.PhoneLarge, webpage.Tablet} {
			res.Train(s, o.Time, d)
		}
		base := stableSet(res, s, webpage.PhoneSmall)
		phone.Add(iouSets(base, stableSet(res, s, webpage.PhoneLarge)))
		tablet.Add(iouSets(base, stableSet(res, s, webpage.Tablet)))
	}
	r := &Result{
		ID:    "fig09",
		Title: "Stable-set IoU vs a Nexus-6-class phone",
		Series: []metrics.TableRow{
			{Label: "oneplus-3-class phone", Dist: phone},
			{Label: "nexus-10-class tablet", Dist: tablet},
		},
	}
	r.Notes = append(r.Notes, fmt.Sprintf("paper: phone-phone IoU near 1, phone-tablet clearly lower; measured medians %.2f vs %.2f",
		phone.Median(), tablet.Median()))
	r.Text = renderResult(r)
	return r, nil
}

func stableSet(r *core.Resolver, s *webpage.Site, d webpage.DeviceClass) map[string]bool {
	out := make(map[string]bool)
	for _, dep := range r.Stable(s.RootURL(), d) {
		out[dep.URL.String()] = true
	}
	return out
}

func iouSets(a, b map[string]bool) float64 {
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// AccuracyResult carries Fig 21's three panels.
type AccuracyResult struct {
	// PredictableCount/PredictableBytes: the predictable subset's share of
	// the hint-eligible resources (21a).
	PredictableCount, PredictableBytes *metrics.Dist
	// FalseNegatives/FalsePositives per strategy (21b, 21c), as fractions
	// of the predictable subset.
	FalseNegatives map[string]*metrics.Dist
	FalsePositives map[string]*metrics.Dist
}

// Fig21 — accuracy of server-side dependency resolution: Vroom's
// offline+online combination versus offline-only and online-only, measured
// against the predictable subset of each load (URLs common to back-to-back
// loads), across user cookie profiles.
func Fig21(o Options) (*Result, error) {
	o = o.fill()
	sites := o.newsAndSports()
	users := []int64{101, 202, 303, 404} // four seeded cookie profiles
	acc := &AccuracyResult{
		PredictableCount: metrics.NewDist(),
		PredictableBytes: metrics.NewDist(),
		FalseNegatives:   map[string]*metrics.Dist{},
		FalsePositives:   map[string]*metrics.Dist{},
	}
	strategies := []string{"vroom", "offline only", "online only"}
	for _, st := range strategies {
		acc.FalseNegatives[st] = metrics.NewDist()
		acc.FalsePositives[st] = metrics.NewDist()
	}
	for _, s := range sites {
		// Server-side resolvers are shared across users (they crawl
		// anonymously), per device class.
		vroomRes := core.NewResolver(core.DefaultResolverConfig())
		vroomRes.Train(s, o.Time, o.Profile.Device)
		offCfg := core.DefaultResolverConfig()
		offCfg.UseOnline = false
		offRes := core.NewResolver(offCfg)
		offRes.Train(s, o.Time, o.Profile.Device)

		for ui, uid := range users {
			profile := webpage.Profile{Device: o.Profile.Device, UserID: uid}
			a := s.Snapshot(o.Time, profile, uint64(1000+ui))
			b := s.Snapshot(o.Time, profile, uint64(2000+ui))
			eligA, bytesA := eligibleSet(a)
			eligB, _ := eligibleSet(b)
			predictable := make(map[string]bool)
			var predBytes, totBytes int64
			for u := range eligA {
				totBytes += bytesA[u]
				if eligB[u] {
					predictable[u] = true
					predBytes += bytesA[u]
				}
			}
			if len(eligA) == 0 || len(predictable) == 0 {
				continue
			}
			acc.PredictableCount.Add(float64(len(predictable)) / float64(len(eligA)))
			if totBytes > 0 {
				acc.PredictableBytes.Add(float64(predBytes) / float64(totBytes))
			}

			root := a.RootResource()
			returned := map[string]map[string]bool{
				"vroom":        hintSet(vroomRes, a, root.Body),
				"offline only": hintSet(offRes, a, ""),
			}
			// Online-only: a full on-the-fly load at the server, with the
			// server's own cookies and a fresh nonce.
			sSnap := s.Snapshot(o.Time, webpage.Profile{Device: profile.Device, UserID: 0}, uint64(9000+ui))
			onlineSet, _ := eligibleSet(sSnap)
			returned["online only"] = onlineSet

			for _, st := range strategies {
				got := returned[st]
				miss, extra := 0, 0
				for u := range predictable {
					if !got[u] {
						miss++
					}
				}
				for u := range got {
					if !predictable[u] {
						extra++
					}
				}
				acc.FalseNegatives[st].Add(float64(miss) / float64(len(predictable)))
				acc.FalsePositives[st].Add(float64(extra) / float64(len(predictable)))
			}
		}
	}
	rows := []metrics.TableRow{
		{Label: "predictable / eligible (count)", Dist: acc.PredictableCount},
		{Label: "predictable / eligible (bytes)", Dist: acc.PredictableBytes},
	}
	for _, st := range strategies {
		rows = append(rows, metrics.TableRow{Label: "false negatives, " + st, Dist: acc.FalseNegatives[st]})
	}
	for _, st := range strategies {
		rows = append(rows, metrics.TableRow{Label: "false positives, " + st, Dist: acc.FalsePositives[st]})
	}
	r := &Result{ID: "fig21", Title: "Server-side dependency-resolution accuracy", Series: rows}
	r.Notes = append(r.Notes,
		fmt.Sprintf("paper 21a: predictable >80%% of resources, >95%% of bytes; measured %.0f%% / %.0f%%",
			acc.PredictableCount.Median()*100, acc.PredictableBytes.Median()*100),
		fmt.Sprintf("paper 21b (FN medians): vroom <5%%, offline-only up to 40%%, online-only 0; measured %.0f%% / %.0f%% / %.0f%%",
			acc.FalseNegatives["vroom"].Median()*100, acc.FalseNegatives["offline only"].Median()*100, acc.FalseNegatives["online only"].Median()*100),
		fmt.Sprintf("paper 21c (FP): vroom ≈ offline-only ≈ 0, online-only up to 20%%; measured %.0f%% / %.0f%% / %.0f%%",
			acc.FalsePositives["vroom"].Median()*100, acc.FalsePositives["offline only"].Median()*100, acc.FalsePositives["online only"].Median()*100))
	r.Text = renderResult(r)
	return r, nil
}

// eligibleSet returns the hint-eligible resources of a load — everything
// derived from the root HTML except iframe-derived resources — plus their
// sizes.
func eligibleSet(sn *webpage.Snapshot) (map[string]bool, map[string]int64) {
	set := make(map[string]bool)
	sizes := make(map[string]int64)
	for _, dep := range core.DocDeps(sn, sn.RootResource()) {
		k := dep.URL.String()
		set[k] = true
		if res, ok := sn.LookupString(k); ok {
			sizes[k] = int64(res.Size)
		}
	}
	return set, sizes
}

func hintSet(r *core.Resolver, sn *webpage.Snapshot, body string) map[string]bool {
	out := make(map[string]bool)
	for _, h := range r.HintsFor(sn.Root, body, sn.Profile.Device) {
		out[h.URL.String()] = true
	}
	return out
}
