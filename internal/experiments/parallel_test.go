package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"vroom/internal/browser"
	"vroom/internal/webpage"
)

func TestMedianByPLT(t *testing.T) {
	mk := func(plts ...int) []browser.Result {
		out := make([]browser.Result, len(plts))
		for i, p := range plts {
			out[i] = browser.Result{PLT: time.Duration(p) * time.Second}
		}
		return out
	}
	cases := []struct {
		plts []int
		want int
	}{
		{[]int{7}, 7},
		{[]int{4, 2}, 2},          // even count: lower middle, not the first load
		{[]int{5, 1, 3}, 3},       // unsorted three
		{[]int{1, 2, 3}, 2},       // sorted three
		{[]int{3, 2, 1}, 2},       // reversed three
		{[]int{9, 1, 5, 3, 7}, 5}, // five loads: true median, not first-three
		{[]int{9, 1, 5, 3}, 3},    // four loads: lower middle
	}
	for _, c := range cases {
		got := medianByPLT(mk(c.plts...))
		if got.PLT != time.Duration(c.want)*time.Second {
			t.Errorf("medianByPLT(%v) = %v, want %ds", c.plts, got.PLT, c.want)
		}
	}
}

func TestForEachSiteOrderAndErrors(t *testing.T) {
	sites := make([]*webpage.Site, 8)
	for i := range sites {
		sites[i] = webpage.NewSite(fmt.Sprintf("pool%d", i), webpage.Top100, int64(i))
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got := make([]string, len(sites))
		if err := forEachSite(sites, workers, func(i int, s *webpage.Site) error {
			got[i] = s.Name
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, s := range sites {
			if got[i] != s.Name {
				t.Errorf("workers=%d: slot %d holds %q, want %q", workers, i, got[i], s.Name)
			}
		}
	}
	// The lowest-indexed failure wins, matching what a serial sweep
	// reports first.
	errA, errB := errors.New("site 2 broke"), errors.New("site 5 broke")
	err := forEachSite(sites, 4, func(i int, s *webpage.Site) error {
		switch i {
		case 2:
			return errA
		case 5:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("got %v, want the lowest-indexed error %v", err, errA)
	}
}

// TestParallelDeterminism is the tentpole guarantee: the same seed must
// produce byte-identical figure output no matter how many workers run the
// corpus. Fig13 exercises the full surface — lower bounds, four policies,
// shared training caches, metric histograms — and LoadsPerSite=2 also
// covers the even-count median path. Run under -race in CI, this test
// doubles as the data-race check on the parallel load path.
func TestParallelDeterminism(t *testing.T) {
	base := QuickOptions()
	base.LoadsPerSite = 2

	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8

	rs, err := Fig13(serial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Fig13(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Text != rp.Text {
		t.Errorf("rendered output differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", rs.Text, rp.Text)
	}
	if !reflect.DeepEqual(rs.Series, rp.Series) {
		t.Error("series differ across worker counts")
	}
	if !reflect.DeepEqual(rs.Notes, rp.Notes) {
		t.Errorf("notes differ across worker counts:\n%v\nvs\n%v", rs.Notes, rp.Notes)
	}
}

// TestParallelDeterminismUnderFaults covers the chaos path: seeded fault
// plans derive from (site, load), not from the worker schedule, so fault
// experiments replay identically too.
func TestParallelDeterminismUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	base := QuickOptions()
	base.NewsSites, base.SportsSites = 2, 2

	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8

	rs, err := Ext03(serial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Ext03(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Text != rp.Text {
		t.Error("chaos output differs across worker counts")
	}
	if !reflect.DeepEqual(rs.Notes, rp.Notes) {
		t.Errorf("chaos notes differ across worker counts:\n%v\nvs\n%v", rs.Notes, rp.Notes)
	}
}
