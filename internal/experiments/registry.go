package experiments

import "sort"

// Runner is one reproducible figure.
type Runner func(Options) (*Result, error)

// Registry maps figure IDs to their runners.
var Registry = map[string]Runner{
	"fig01": Fig01,
	"fig02": Fig02,
	"fig03": Fig03,
	"fig04": Fig04,
	"fig07": Fig07,
	"fig09": Fig09,
	"fig11": Fig11,
	"fig13": Fig13,
	"fig14": Fig14,
	"fig16": Fig16,
	"fig17": Fig17,
	"fig18": Fig18,
	"fig19": Fig19,
	"fig20": Fig20,
	"fig21": Fig21,
	"ext01": Ext01,
	"ext02": Ext02,
	"ext03": Ext03,
}

// IDs returns the registered figure IDs in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
