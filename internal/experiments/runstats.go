package experiments

import (
	"sync/atomic"
	"time"
)

// Worker-pool accounting for the benchmark pipeline: forEachSite charges
// every site invocation's wall time to busy and each sweep's workers ×
// elapsed to capacity, so utilization = busy/capacity says how much of the
// pool actually worked. The counters are package-level and figures run one
// at a time in cmd/vroom-bench, which resets them around each figure;
// concurrent figure runs would blend their numbers.
var pool struct {
	busyNs, capacityNs atomic.Int64
	sites              atomic.Int64
}

// PoolStats is a snapshot of the worker-pool accounting.
type PoolStats struct {
	// Busy is the summed wall time of site invocations; Capacity is the
	// summed workers × sweep-elapsed across forEachSite calls.
	Busy, Capacity time.Duration
	// Sites counts site invocations.
	Sites int
}

// Utilization returns Busy/Capacity in [0,1], or 0 before any sweep ran.
func (s PoolStats) Utilization() float64 {
	if s.Capacity <= 0 {
		return 0
	}
	u := float64(s.Busy) / float64(s.Capacity)
	if u > 1 {
		u = 1 // rounding at very short sweeps
	}
	return u
}

// ResetPoolStats zeroes the pool accounting; call before running a figure.
func ResetPoolStats() {
	pool.busyNs.Store(0)
	pool.capacityNs.Store(0)
	pool.sites.Store(0)
}

// ReadPoolStats returns the accounting accumulated since the last reset.
func ReadPoolStats() PoolStats {
	return PoolStats{
		Busy:     time.Duration(pool.busyNs.Load()),
		Capacity: time.Duration(pool.capacityNs.Load()),
		Sites:    int(pool.sites.Load()),
	}
}
