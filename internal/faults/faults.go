// Package faults provides deterministic, seeded fault injection for the
// simulated load path. Vroom's dependency hints are explicitly best-effort
// (§4): offline analysis is hourly, third-party origins die, and measurement
// studies show pushes are frequently wasted in the wild. A Plan decides —
// reproducibly, from a seed — which origins suffer outages or brown-outs,
// which responses 5xx, truncate, or stall, and which hinted URLs have gone
// stale (404 or redirect). internal/netsim honors the network-level faults
// when scheduling responses; internal/server honors the server-level ones;
// internal/browser supplies the timeout/retry/degradation machinery the
// faults exercise.
//
// Every decision is a pure function of (seed, fault kind, subject,
// occurrence index), so two runs with the same seed inject exactly the same
// faults regardless of call order, and two policies compared under one seed
// face the same broken world.
//
// The wire path (internal/netem's fault shim and internal/wire's server)
// shares one Plan across concurrent goroutines, so Plan methods serialize
// internally; the single-goroutine event engine pays only an uncontended
// lock.
package faults

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"vroom/internal/urlutil"
)

// Config sets the fault rates of a Plan. All rates are probabilities in
// [0, 1]; the zero value injects nothing.
type Config struct {
	// OriginOutageFrac is the fraction of origins that suffer a hard outage
	// window during the load: connections are refused while it is active.
	OriginOutageFrac float64
	// OutageMaxStart bounds where an origin's outage window begins,
	// relative to the start of the load.
	OutageMaxStart time.Duration
	// OutageDuration is how long each outage window lasts.
	OutageDuration time.Duration

	// BrownoutFrac is the fraction of origins that are degraded: every
	// response from them gains extra first-byte latency.
	BrownoutFrac float64
	// BrownoutMaxDelay bounds the per-origin brown-out delay; the actual
	// delay is seeded per origin in [BrownoutMaxDelay/4, BrownoutMaxDelay].
	BrownoutMaxDelay time.Duration

	// ErrorRate is the per-response probability of a 5xx: the server
	// answers with a small error body instead of content.
	ErrorRate float64
	// TruncateRate is the per-response probability that the connection dies
	// mid-transfer: part of the body arrives, then the request fails.
	TruncateRate float64
	// StallRate is the per-response probability that the first byte never
	// arrives; only a client timeout rescues the request.
	StallRate float64

	// StaleHintRate is the probability that a hinted URL has gone stale
	// since the resolver learned it: the client fetches a URL the server no
	// longer has.
	StaleHintRate float64
	// RedirectFrac is the fraction of stale hints that redirect to the
	// fresh URL (costing a round trip) instead of returning 404.
	RedirectFrac float64

	// CrashRate is the per-boundary probability that a named persistence
	// write boundary kills the process (see Plan.CrashPoint). The hint
	// store's durable layer consults it at every snapshot/WAL write step,
	// so the crash-recovery torture harness can die at any of them.
	CrashRate float64
	// CrashMaxTorn bounds how many bytes of the interrupted write land on
	// disk before a crash — the torn-record case recovery must quarantine.
	// Zero means the whole write is lost.
	CrashMaxTorn int
}

// Regime is a named fault intensity preset.
type Regime int

// Regimes, in increasing severity.
const (
	RegimeNone Regime = iota
	RegimeMild
	RegimeSevere
)

func (r Regime) String() string {
	switch r {
	case RegimeNone:
		return "none"
	case RegimeMild:
		return "mild"
	case RegimeSevere:
		return "severe"
	}
	return "unknown"
}

// ParseRegime parses a regime name as used by the -faults CLI flag.
func ParseRegime(s string) (Regime, error) {
	switch s {
	case "none", "":
		return RegimeNone, nil
	case "mild":
		return RegimeMild, nil
	case "severe":
		return RegimeSevere, nil
	}
	return RegimeNone, fmt.Errorf("faults: unknown regime %q (want none, mild, or severe)", s)
}

// RegimeConfig returns the fault rates for a named regime. Mild models an
// ordinary bad day on the web (a few slow or flaky third parties); severe
// models the worst hour the measurement studies report — dead origins,
// double-digit error rates, a quarter of hints stale.
func RegimeConfig(r Regime) Config {
	switch r {
	case RegimeMild:
		return Config{
			OriginOutageFrac: 0.05,
			OutageMaxStart:   5 * time.Second,
			OutageDuration:   20 * time.Second,
			BrownoutFrac:     0.10,
			BrownoutMaxDelay: 400 * time.Millisecond,
			ErrorRate:        0.02,
			TruncateRate:     0.01,
			StallRate:        0.005,
			StaleHintRate:    0.05,
			RedirectFrac:     0.3,
		}
	case RegimeSevere:
		return Config{
			OriginOutageFrac: 0.20,
			OutageMaxStart:   5 * time.Second,
			OutageDuration:   60 * time.Second,
			BrownoutFrac:     0.30,
			BrownoutMaxDelay: time.Second,
			ErrorRate:        0.10,
			TruncateRate:     0.05,
			StallRate:        0.02,
			StaleHintRate:    0.25,
			RedirectFrac:     0.3,
		}
	}
	return Config{}
}

// ResponseFault classifies what happens to one response.
type ResponseFault int

// Response fault kinds.
const (
	FaultNone ResponseFault = iota
	// FaultError: the server answers 5xx with a small error body.
	FaultError
	// FaultTruncate: part of the body arrives, then the transfer fails.
	FaultTruncate
	// FaultStall: the first byte never arrives.
	FaultStall
	// FaultReset: the connection is torn down mid-transfer (wire path only;
	// the simulator models the equivalent as truncation).
	FaultReset
)

func (f ResponseFault) String() string {
	switch f {
	case FaultError:
		return "5xx"
	case FaultTruncate:
		return "truncated"
	case FaultStall:
		return "stall"
	case FaultReset:
		return "reset"
	}
	return "none"
}

// HintFate classifies what a stale hint turned into.
type HintFate int

// Hint fates.
const (
	HintFresh HintFate = iota
	// HintGone: the hinted URL 404s.
	HintGone
	// HintRedirect: the hinted URL redirects to the fresh URL.
	HintRedirect
)

// Plan is one load's fault schedule plus the health state accumulated while
// it runs. A nil *Plan is valid and injects nothing, so call sites need no
// guards. Plan methods are safe for concurrent use: the wire load path
// consults one plan from many fetch goroutines at once.
type Plan struct {
	cfg  Config
	seed int64

	// mu serializes the mutable decision state (attempts, stats, failing).
	mu sync.Mutex

	// attempts counts per-(kind, subject) decisions so that a retried
	// request can draw a fresh verdict (a 503 on attempt one may succeed on
	// attempt two).
	attempts map[string]int
	// exempt shields specific URLs (the root document) from all faults.
	exempt map[string]bool
	// failing holds origins marked unhealthy by observed failures; the
	// server consults this to suppress pushes.
	failing map[string]bool

	stats map[string]int64
}

// New returns a plan over the given rates. The seed fully determines every
// injected fault.
func New(seed int64, cfg Config) *Plan {
	return &Plan{
		cfg:      cfg,
		seed:     seed,
		attempts: make(map[string]int),
		exempt:   make(map[string]bool),
		failing:  make(map[string]bool),
		stats:    make(map[string]int64),
	}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// ExemptURL shields a URL from response and hint faults. The runner exempts
// the root document so every load has content to degrade around.
func (p *Plan) ExemptURL(u urlutil.URL) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.exempt[u.String()] = true
	p.mu.Unlock()
}

// u01 derives a uniform value in [0, 1) from the seed and a decision key.
func (p *Plan) u01(parts ...string) float64 {
	h := fnv.New64a()
	var b [8]byte
	s := uint64(p.seed)
	for i := range b {
		b[i] = byte(s >> (8 * i))
	}
	h.Write(b[:])
	for _, part := range parts {
		h.Write([]byte{0})
		h.Write([]byte(part))
	}
	// FNV-1a diffuses a trailing-byte difference through only one multiply,
	// so keys differing at the end (e.g. consecutive attempt counters) hash
	// to nearly identical values. Finish with a murmur3-style avalanche so
	// every input bit reaches every output bit.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// count records an injected fault. Caller holds p.mu.
func (p *Plan) count(name string) {
	p.stats[name]++
}

// nth returns the occurrence index for a (kind, subject) pair, starting at
// 0, advancing on each call. The simulation is deterministic, so the
// sequence of calls — and therefore every verdict — replays exactly under
// the same seed. Caller holds p.mu.
func (p *Plan) nth(kind, subject string) int {
	k := kind + "|" + subject
	n := p.attempts[k]
	p.attempts[k] = n + 1
	return n
}

// OriginDown reports whether an origin's outage window covers the given
// offset from load start. internal/netsim consults this when a request
// would open or reuse a connection.
func (p *Plan) OriginDown(origin string, since time.Duration) bool {
	if p == nil || p.cfg.OriginOutageFrac <= 0 {
		return false
	}
	if p.u01("outage", origin) >= p.cfg.OriginOutageFrac {
		return false
	}
	start := time.Duration(p.u01("outage-start", origin) * float64(p.cfg.OutageMaxStart))
	if since < start || since >= start+p.cfg.OutageDuration {
		return false
	}
	p.mu.Lock()
	p.count("outage-refused")
	p.mu.Unlock()
	return true
}

// BrownoutDelay returns the extra first-byte latency for a degraded origin,
// or zero. The delay is fixed per origin: an overloaded origin is
// consistently slow.
func (p *Plan) BrownoutDelay(origin string) time.Duration {
	if p == nil || p.cfg.BrownoutFrac <= 0 {
		return 0
	}
	if p.u01("brownout", origin) >= p.cfg.BrownoutFrac {
		return 0
	}
	frac := 0.25 + 0.75*p.u01("brownout-delay", origin)
	p.mu.Lock()
	p.count("brownout-responses")
	p.mu.Unlock()
	return time.Duration(frac * float64(p.cfg.BrownoutMaxDelay))
}

// ResponseVerdict decides the fate of one response for a URL. Each call for
// the same URL is a fresh draw (keyed by occurrence index), so a failed
// attempt can succeed on retry. internal/netsim consults this when the
// server schedules a response.
func (p *Plan) ResponseVerdict(u urlutil.URL) ResponseFault {
	if p == nil {
		return FaultNone
	}
	c := p.cfg
	if c.ErrorRate <= 0 && c.TruncateRate <= 0 && c.StallRate <= 0 {
		return FaultNone
	}
	key := u.String()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.exempt[key] {
		return FaultNone
	}
	draw := p.u01("response", key, fmt.Sprint(p.nth("response", key)))
	switch {
	case draw < c.ErrorRate:
		p.count("responses-5xx")
		return FaultError
	case draw < c.ErrorRate+c.TruncateRate:
		p.count("responses-truncated")
		return FaultTruncate
	case draw < c.ErrorRate+c.TruncateRate+c.StallRate:
		p.count("responses-stalled")
		return FaultStall
	}
	return FaultNone
}

// WireConnFault decides, at dial time, the fate of one wire connection to an
// origin: it may be reset, stalled, or truncated partway through its
// server-to-client byte stream. The verdict is seeded per (origin, nth
// connection) so retried or re-dialed connections draw fresh fates, and the
// returned index identifies the draw for deterministic fault logs. cutBytes
// is the downlink byte offset at which a mid-transfer fault fires (zero for
// stalls: the first byte never arrives). internal/netem's fault shim
// consults this when the wire client dials through it.
func (p *Plan) WireConnFault(origin string) (fault ResponseFault, cutBytes int, index int) {
	if p == nil {
		return FaultNone, 0, 0
	}
	c := p.cfg
	p.mu.Lock()
	defer p.mu.Unlock()
	index = p.nth("wire-conn", origin)
	if c.ErrorRate <= 0 && c.TruncateRate <= 0 && c.StallRate <= 0 {
		return FaultNone, 0, index
	}
	sub := fmt.Sprint(index)
	draw := p.u01("wire-conn", origin, sub)
	// Mid-transfer faults cut the stream after a seeded budget of delivered
	// bytes; the range keeps the HTTP/2 handshake plausible on most draws
	// while still severing bodies.
	cutBytes = 256 + int(p.u01("wire-cut", origin, sub)*float64(16<<10))
	switch {
	case draw < c.ErrorRate:
		p.count("wire-conns-reset")
		return FaultReset, cutBytes, index
	case draw < c.ErrorRate+c.TruncateRate:
		p.count("wire-conns-truncated")
		return FaultTruncate, cutBytes, index
	case draw < c.ErrorRate+c.TruncateRate+c.StallRate:
		p.count("wire-conns-stalled")
		return FaultStall, 0, index
	}
	return FaultNone, 0, index
}

// CrashPoint decides whether the process dies at a named persistence write
// boundary ("wal-append", "snap-rename", ...), and if so how many bytes of
// the in-progress write survive on disk (a torn record). Each call for the
// same point is a fresh seeded draw keyed by occurrence index, so one plan
// crashes at a reproducible sequence of boundaries across a torture run.
// The persist layer honors the verdict by truncating the write and failing
// every later operation, simulating kill -9 at exactly that boundary.
func (p *Plan) CrashPoint(point string) (crash bool, tornBytes int) {
	if p == nil || p.cfg.CrashRate <= 0 {
		return false, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sub := fmt.Sprint(p.nth("crash", point))
	if p.u01("crash", point, sub) >= p.cfg.CrashRate {
		return false, 0
	}
	p.count("crashes-injected")
	if p.cfg.CrashMaxTorn > 0 {
		tornBytes = int(p.u01("crash-torn", point, sub) * float64(p.cfg.CrashMaxTorn+1))
	}
	return true, tornBytes
}

// TruncateFrac returns the fraction of the body delivered before a
// truncated transfer fails, seeded per URL, in [0.1, 0.9].
func (p *Plan) TruncateFrac(u urlutil.URL) float64 {
	if p == nil {
		return 1
	}
	return 0.1 + 0.8*p.u01("truncate-frac", u.String())
}

// StaleHint decides whether a hinted URL has gone stale and, if so, what
// the client finds there: a 404 (HintGone) or a redirect to the fresh URL
// (HintRedirect). The mangled URL the hint now carries is returned; it is
// same-origin with the original, so push and connection semantics are
// preserved. The decision is fixed per URL: a stale hint is stale for the
// whole load.
func (p *Plan) StaleHint(u urlutil.URL) (urlutil.URL, HintFate) {
	if p == nil || p.cfg.StaleHintRate <= 0 {
		return u, HintFresh
	}
	key := u.String()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.exempt[key] {
		return u, HintFresh
	}
	if p.u01("stale-hint", key) >= p.cfg.StaleHintRate {
		return u, HintFresh
	}
	mangled := u
	mangled.Path = u.Path + ".stale"
	if p.u01("stale-kind", key) < p.cfg.RedirectFrac {
		p.count("hints-redirected")
		return mangled, HintRedirect
	}
	p.count("hints-gone")
	return mangled, HintGone
}

// MarkFailing records a client-observed failure against an origin. The
// server's push policy consults Failing to stop pushing to origins that are
// burning the client's bandwidth.
func (p *Plan) MarkFailing(origin string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if !p.failing[origin] {
		p.failing[origin] = true
		p.count("origins-marked-failing")
	}
	p.mu.Unlock()
}

// Failing reports whether an origin should be treated as unhealthy at the
// given offset from load start: it was marked by observed failures, is
// inside an outage window, or is browning out.
func (p *Plan) Failing(origin string, since time.Duration) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	marked := p.failing[origin]
	p.mu.Unlock()
	if marked {
		return true
	}
	if p.cfg.OriginOutageFrac > 0 && p.u01("outage", origin) < p.cfg.OriginOutageFrac {
		start := time.Duration(p.u01("outage-start", origin) * float64(p.cfg.OutageMaxStart))
		if since >= start && since < start+p.cfg.OutageDuration {
			return true
		}
	}
	if p.cfg.BrownoutFrac > 0 && p.u01("brownout", origin) < p.cfg.BrownoutFrac {
		return true
	}
	return false
}

// Stats returns the counts of injected faults, sorted by name, for the
// metrics report.
func (p *Plan) Stats() []Stat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Stat, 0, len(p.stats))
	for name, v := range p.stats {
		out = append(out, Stat{Name: name, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stat is one named injected-fault count.
type Stat struct {
	Name  string
	Count int64
}
