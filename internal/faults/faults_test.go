package faults

import (
	"fmt"
	"testing"
	"time"

	"vroom/internal/urlutil"
)

func mkURL(s string) urlutil.URL { return urlutil.MustParse(s) }

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	u := mkURL("https://a.com/x.js")
	if p.OriginDown("https://a.com", time.Second) {
		t.Error("nil plan reported outage")
	}
	if p.BrownoutDelay("https://a.com") != 0 {
		t.Error("nil plan reported brownout")
	}
	if p.ResponseVerdict(u) != FaultNone {
		t.Error("nil plan faulted a response")
	}
	if _, fate := p.StaleHint(u); fate != HintFresh {
		t.Error("nil plan staled a hint")
	}
	if p.Failing("https://a.com", 0) {
		t.Error("nil plan marked origin failing")
	}
	p.MarkFailing("https://a.com") // must not panic
	if got := p.Stats(); got != nil {
		t.Errorf("nil plan stats: %v", got)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	p := New(7, Config{})
	for i := 0; i < 200; i++ {
		u := mkURL(fmt.Sprintf("https://o%d.com/r%d.js", i%13, i))
		if p.ResponseVerdict(u) != FaultNone {
			t.Fatalf("zero config faulted %s", u)
		}
		if p.OriginDown(u.Origin(), time.Duration(i)*time.Second) {
			t.Fatalf("zero config outage for %s", u.Origin())
		}
		if _, fate := p.StaleHint(u); fate != HintFresh {
			t.Fatalf("zero config staled %s", u)
		}
	}
}

func TestDecisionsAreSeedDeterministic(t *testing.T) {
	cfg := RegimeConfig(RegimeSevere)
	a, b := New(42, cfg), New(42, cfg)
	for i := 0; i < 500; i++ {
		u := mkURL(fmt.Sprintf("https://o%d.com/r%d.js", i%17, i))
		if a.ResponseVerdict(u) != b.ResponseVerdict(u) {
			t.Fatalf("verdicts diverged at %d", i)
		}
		if a.OriginDown(u.Origin(), 3*time.Second) != b.OriginDown(u.Origin(), 3*time.Second) {
			t.Fatalf("outages diverged at %d", i)
		}
		if a.BrownoutDelay(u.Origin()) != b.BrownoutDelay(u.Origin()) {
			t.Fatalf("brownouts diverged at %d", i)
		}
		au, af := a.StaleHint(u)
		bu, bf := b.StaleHint(u)
		if au != bu || af != bf {
			t.Fatalf("stale hints diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := RegimeConfig(RegimeSevere)
	a, b := New(1, cfg), New(2, cfg)
	same := 0
	const n = 400
	for i := 0; i < n; i++ {
		u := mkURL(fmt.Sprintf("https://o%d.com/r%d.js", i%29, i))
		if a.ResponseVerdict(u) == b.ResponseVerdict(u) {
			same++
		}
	}
	if same == n {
		t.Error("two seeds produced identical fault schedules")
	}
}

func TestRetriesDrawFreshVerdicts(t *testing.T) {
	// With a high error rate, repeated attempts at one URL must not all
	// share one verdict: the occurrence index has to enter the draw.
	p := New(3, Config{ErrorRate: 0.5})
	u := mkURL("https://a.com/app.js")
	verdicts := map[ResponseFault]int{}
	for i := 0; i < 64; i++ {
		verdicts[p.ResponseVerdict(u)]++
	}
	if len(verdicts) < 2 {
		t.Fatalf("64 attempts produced a single verdict: %v", verdicts)
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	p := New(11, Config{ErrorRate: 0.2})
	errors := 0
	const n = 2000
	for i := 0; i < n; i++ {
		u := mkURL(fmt.Sprintf("https://h.com/r%d.js", i))
		if p.ResponseVerdict(u) == FaultError {
			errors++
		}
	}
	frac := float64(errors) / n
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("error rate 0.2 produced %.3f", frac)
	}
}

func TestOutageWindows(t *testing.T) {
	cfg := Config{OriginOutageFrac: 1, OutageMaxStart: 0, OutageDuration: 10 * time.Second}
	p := New(5, cfg)
	if !p.OriginDown("https://a.com", time.Second) {
		t.Error("origin up inside its outage window")
	}
	if p.OriginDown("https://a.com", time.Minute) {
		t.Error("origin down after its outage window")
	}
}

func TestExemptURLShieldedFromFaults(t *testing.T) {
	cfg := Config{ErrorRate: 1, StaleHintRate: 1}
	p := New(9, cfg)
	root := mkURL("https://www.site.com/")
	p.ExemptURL(root)
	if p.ResponseVerdict(root) != FaultNone {
		t.Error("exempt URL drew a response fault")
	}
	if _, fate := p.StaleHint(root); fate != HintFresh {
		t.Error("exempt URL drew a stale hint")
	}
	other := mkURL("https://www.site.com/x.js")
	if p.ResponseVerdict(other) == FaultNone {
		t.Error("non-exempt URL escaped a certain fault")
	}
}

func TestStaleHintManglingSameOrigin(t *testing.T) {
	p := New(13, Config{StaleHintRate: 1, RedirectFrac: 0.5})
	gone, redir := 0, 0
	for i := 0; i < 100; i++ {
		u := mkURL(fmt.Sprintf("https://cdn.site.com/a%d.css", i))
		m, fate := p.StaleHint(u)
		switch fate {
		case HintFresh:
			t.Fatalf("rate 1 left %s fresh", u)
		case HintGone:
			gone++
		case HintRedirect:
			redir++
		}
		if m.Origin() != u.Origin() {
			t.Fatalf("mangled hint changed origin: %s -> %s", u, m)
		}
		if m == u {
			t.Fatalf("stale hint not mangled: %s", u)
		}
	}
	if gone == 0 || redir == 0 {
		t.Errorf("fates not mixed: gone=%d redirect=%d", gone, redir)
	}
}

func TestHealthMarking(t *testing.T) {
	p := New(1, Config{})
	if p.Failing("https://a.com", 0) {
		t.Error("fresh origin failing")
	}
	p.MarkFailing("https://a.com")
	if !p.Failing("https://a.com", 0) {
		t.Error("marked origin not failing")
	}
	if p.Failing("https://b.com", 0) {
		t.Error("unrelated origin failing")
	}
}

func TestRegimesOrdered(t *testing.T) {
	mild, severe := RegimeConfig(RegimeMild), RegimeConfig(RegimeSevere)
	if mild.ErrorRate >= severe.ErrorRate || mild.StaleHintRate >= severe.StaleHintRate ||
		mild.OriginOutageFrac >= severe.OriginOutageFrac {
		t.Errorf("mild not strictly milder than severe: %+v vs %+v", mild, severe)
	}
	if none := RegimeConfig(RegimeNone); none != (Config{}) {
		t.Errorf("none regime has rates: %+v", none)
	}
}

func TestParseRegime(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Regime
	}{{"none", RegimeNone}, {"", RegimeNone}, {"mild", RegimeMild}, {"severe", RegimeSevere}} {
		got, err := ParseRegime(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRegime(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseRegime("apocalyptic"); err == nil {
		t.Error("unknown regime accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := New(21, Config{ErrorRate: 1})
	for i := 0; i < 5; i++ {
		p.ResponseVerdict(mkURL(fmt.Sprintf("https://h.com/%d", i)))
	}
	stats := p.Stats()
	if len(stats) != 1 || stats[0].Name != "responses-5xx" || stats[0].Count != 5 {
		t.Errorf("stats = %v", stats)
	}
}

func TestWireConnFaultDeterministicPerIndex(t *testing.T) {
	cfg := Config{ErrorRate: 0.2, TruncateRate: 0.2, StallRate: 0.2}
	draw := func() []string {
		p := New(99, cfg)
		var out []string
		for _, origin := range []string{"https://a.com", "https://b.com"} {
			for i := 0; i < 8; i++ {
				f, cut, idx := p.WireConnFault(origin)
				out = append(out, fmt.Sprintf("%s#%d:%s@%d", origin, idx, f, cut))
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically seeded plans: %s vs %s", i, a[i], b[i])
		}
	}
	// The sequence must not be constant: with 60% fault probability over 16
	// draws, both at least one fault and at least one clean conn are
	// overwhelmingly likely.
	var faulted, clean int
	p := New(99, cfg)
	for i := 0; i < 16; i++ {
		f, _, _ := p.WireConnFault("https://a.com")
		if f == FaultNone {
			clean++
		} else {
			faulted++
		}
	}
	if faulted == 0 || clean == 0 {
		t.Fatalf("degenerate draw distribution: %d faulted, %d clean", faulted, clean)
	}
	// Stalls never deliver a first byte.
	ps := New(7, Config{StallRate: 1})
	f, cut, _ := ps.WireConnFault("https://a.com")
	if f != FaultStall || cut != 0 {
		t.Fatalf("all-stall config drew %s@%d, want stall@0", f, cut)
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	p := New(3, RegimeConfig(RegimeSevere))
	u := mkURL("https://a.com/x.js")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				p.ResponseVerdict(u)
				p.WireConnFault("https://a.com")
				p.OriginDown("https://a.com", time.Second)
				p.BrownoutDelay("https://b.com")
				p.StaleHint(u)
				p.MarkFailing("https://c.com")
				p.Failing("https://c.com", time.Second)
				p.Stats()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
