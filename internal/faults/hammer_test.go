package faults_test

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"vroom/internal/faults"
	"vroom/internal/netem"
	"vroom/internal/urlutil"
)

// hammerConfig enables every fault class. OutageMaxStart zero with a long
// duration makes outage verdicts time-independent, so decision sets are a
// pure function of the seed no matter when a goroutine happens to ask.
func hammerConfig() faults.Config {
	return faults.Config{
		OriginOutageFrac: 0.2,
		OutageMaxStart:   0,
		OutageDuration:   10 * time.Minute,
		BrownoutFrac:     0.3,
		BrownoutMaxDelay: 5 * time.Millisecond,
		ErrorRate:        0.1,
		TruncateRate:     0.1,
		StallRate:        0.05,
		StaleHintRate:    0.25,
		RedirectFrac:     0.5,
	}
}

func hammerURL(t testing.TB, s string) urlutil.URL {
	t.Helper()
	u, err := urlutil.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestPlanConcurrentVerdictHammer pounds one Plan from many goroutines the
// way a loaded server and fault shim do — the server drawing response and
// hint verdicts while the shim draws dial-time wire verdicts and health
// marks — and relies on -race to catch unsynchronized decision state.
func TestPlanConcurrentVerdictHammer(t *testing.T) {
	plan := faults.New(99, hammerConfig())
	root := hammerURL(t, "https://www.origin0.com/")
	plan.ExemptURL(root)

	origins := make([]string, 5)
	urls := make([]urlutil.URL, 5)
	for i := range origins {
		origins[i] = fmt.Sprintf("www.origin%d.com", i)
		urls[i] = hammerURL(t, fmt.Sprintf("https://www.origin%d.com/r/%d.js", i, i))
	}

	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				origin := origins[(g+i)%len(origins)]
				u := urls[(g+i)%len(urls)]
				plan.OriginDown(origin, time.Duration(i)*time.Millisecond)
				plan.BrownoutDelay(origin)
				plan.ResponseVerdict(u)
				plan.WireConnFault(origin)
				plan.TruncateFrac(u)
				plan.StaleHint(u)
				if i%17 == 0 {
					plan.MarkFailing(origin)
				}
				plan.Failing(origin, time.Duration(i)*time.Millisecond)
				if i%29 == 0 {
					plan.Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	if len(plan.Stats()) == 0 {
		t.Fatal("hammer drew no fault decisions at all")
	}
	// The exempt root must have stayed shielded through the storm.
	if v := plan.ResponseVerdict(root); v != faults.FaultNone {
		t.Fatalf("exempt root drew verdict %v", v)
	}
}

// TestFaultShimDecisionDeterminism runs the same concurrent dial workload
// twice against same-seed plans and asserts byte-identical decision sets:
// verdicts are keyed by (origin, nth connection), so goroutine scheduling
// can reorder draws but never change them.
func TestFaultShimDecisionDeterminism(t *testing.T) {
	origins := []string{"www.siteA.com", "www.siteB.com", "www.siteC.com"}

	run := func(seed int64) []string {
		shim := netem.NewFaultShim(faults.New(seed, hammerConfig()))
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					for _, origin := range origins {
						c, err := shim.Dial(origin, func() (net.Conn, error) {
							a, b := net.Pipe()
							b.Close()
							return a, nil
						})
						if err == nil {
							c.Close()
						}
					}
				}
			}()
		}
		wg.Wait()
		return shim.Decisions()
	}

	d1, d2 := run(2017), run(2017)
	if len(d1) == 0 {
		t.Fatal("no fault decisions drawn; the determinism assertion is vacuous")
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("same seed, different decision sets:\n  run1=%v\n  run2=%v", d1, d2)
	}
	if d3 := run(2018); reflect.DeepEqual(d1, d3) {
		t.Fatal("different seeds drew identical decision sets")
	}
}
