// Package h1 implements the HTTP/1.1 wire protocol subset the reproduction
// needs as its status-quo baseline: a keep-alive text-protocol server and a
// client pool with the classic six-connections-per-origin limit and no
// multiplexing — each connection carries one outstanding request at a time.
//
// Request/Response types are shared with package h2 so the wire-level page
// loader can drive either protocol through one interface.
package h1

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"vroom/internal/h2"
)

// Handler serves HTTP/1.1 requests (same shape as h2.Handler's requests).
type Handler interface {
	ServeH1(r *h2.Request) *h2.Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(*h2.Request) *h2.Response

// ServeH1 implements Handler.
func (f HandlerFunc) ServeH1(r *h2.Request) *h2.Response { return f(r) }

// Server is a minimal keep-alive HTTP/1.1 server.
type Server struct {
	Handler Handler

	// Overloaded, when set, is consulted per exchange before the handler
	// runs; returning true answers 503 immediately (with retry-after) so a
	// saturated server sheds the request without doing its work. Set
	// before Serve.
	Overloaded func() bool

	mu       sync.Mutex
	closed   bool
	draining bool
	// active counts exchanges between request parse and response flush;
	// Drain waits for it to reach zero.
	active int
	conns  map[net.Conn]struct{}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

// Close shuts down every connection.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
}

// Drain shuts the server down gracefully: in-flight exchanges finish (their
// responses carry "connection: close"), idle keep-alive connections are cut,
// and anything still running after timeout is closed hard. The caller closes
// its listener; Drain marks the server done so Serve returns nil.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	s.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		active := s.active
		s.mu.Unlock()
		if active == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
}

func (s *Server) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	for {
		req, keepAlive, err := ReadRequest(br)
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.draining {
			// Finish this exchange, then let the connection go.
			keepAlive = false
		}
		s.active++
		s.mu.Unlock()
		var resp *h2.Response
		if s.Overloaded != nil && s.Overloaded() {
			resp = &h2.Response{Status: 503,
				Header: map[string][]string{"retry-after": {"1"}},
				Body:   []byte("server overloaded")}
		} else if s.Handler != nil {
			resp = s.Handler.ServeH1(req)
		}
		if resp == nil {
			resp = &h2.Response{Status: 500}
		}
		werr := WriteResponse(bw, resp, keepAlive)
		ferr := bw.Flush()
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
		if werr != nil || ferr != nil || !keepAlive {
			return
		}
	}
}

// ReadRequest parses one HTTP/1.1 request from the stream, reporting
// whether the connection should stay open.
func ReadRequest(br *bufio.Reader) (*h2.Request, bool, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, false, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, false, fmt.Errorf("h1: malformed request line %q", line)
	}
	req := &h2.Request{Method: parts[0], Path: parts[1], Scheme: "https", Header: map[string][]string{}}
	keepAlive := parts[2] == "HTTP/1.1"
	cl := 0
	for {
		h, err := readLine(br)
		if err != nil {
			return nil, false, err
		}
		if h == "" {
			break
		}
		name, value, ok := cutHeader(h)
		if !ok {
			return nil, false, fmt.Errorf("h1: malformed header %q", h)
		}
		switch name {
		case "host":
			req.Authority = value
		case "content-length":
			cl, _ = strconv.Atoi(value)
		case "connection":
			switch strings.ToLower(value) {
			case "close":
				keepAlive = false
			case "keep-alive":
				keepAlive = true
			}
		default:
			req.Header[name] = append(req.Header[name], value)
		}
	}
	if cl > 0 {
		req.Body = make([]byte, cl)
		if _, err := io.ReadFull(br, req.Body); err != nil {
			return nil, false, err
		}
	}
	return req, keepAlive, nil
}

// exchangeBufPool recycles the scratch buffers requests and responses are
// serialized into — the h1 exchange hot path allocates nothing once the
// pool is warm. Pooled as pointers so Get/Put don't allocate slice headers.
var exchangeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledExchangeBuf caps what returns to the pool so one huge header
// set can't pin memory forever.
const maxPooledExchangeBuf = 1 << 20

func getExchangeBuf() *[]byte { return exchangeBufPool.Get().(*[]byte) }

func putExchangeBuf(b *[]byte) {
	if cap(*b) <= maxPooledExchangeBuf {
		*b = (*b)[:0]
		exchangeBufPool.Put(b)
	}
}

// appendLower appends s lowercased without allocating.
func appendLower(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	return b
}

// appendHeaderLine appends "name: value\r\n" with the name lowercased.
func appendHeaderLine(b []byte, name, value string) []byte {
	b = appendLower(b, name)
	b = append(b, ':', ' ')
	b = append(b, value...)
	return append(b, '\r', '\n')
}

// WriteRequest serializes a request. The header section is assembled in a
// pooled buffer that is flushed to w before the call returns, so nothing
// the caller sees aliases pooled memory.
func WriteRequest(w io.Writer, req *h2.Request) error {
	bp := getExchangeBuf()
	defer putExchangeBuf(bp)
	b := (*bp)[:0]
	method := req.Method
	if method == "" {
		method = "GET"
	}
	b = append(b, method...)
	b = append(b, ' ')
	b = append(b, req.Path...)
	b = append(b, " HTTP/1.1\r\n"...)
	b = appendHeaderLine(b, "host", req.Authority)
	for name, vals := range req.Header {
		for _, v := range vals {
			b = appendHeaderLine(b, name, v)
		}
	}
	if len(req.Body) > 0 {
		b = append(b, "content-length: "...)
		b = strconv.AppendInt(b, int64(len(req.Body)), 10)
		b = append(b, '\r', '\n')
	}
	b = append(b, '\r', '\n')
	*bp = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	if len(req.Body) > 0 {
		if _, err := w.Write(req.Body); err != nil {
			return err
		}
	}
	return nil
}

// WriteResponse serializes a response with an explicit content length. The
// header section uses a pooled scratch buffer; the body is written from the
// caller's slice directly, so large bodies never transit pooled memory.
func WriteResponse(w io.Writer, resp *h2.Response, keepAlive bool) error {
	bp := getExchangeBuf()
	defer putExchangeBuf(bp)
	b := (*bp)[:0]
	b = append(b, "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(resp.Status), 10)
	b = append(b, ' ')
	b = append(b, statusText(resp.Status)...)
	b = append(b, '\r', '\n')
	for name, vals := range resp.Header {
		for _, v := range vals {
			b = appendHeaderLine(b, name, v)
		}
	}
	b = append(b, "content-length: "...)
	b = strconv.AppendInt(b, int64(len(resp.Body)), 10)
	b = append(b, '\r', '\n')
	if !keepAlive {
		b = append(b, "connection: close\r\n"...)
	}
	b = append(b, '\r', '\n')
	*bp = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.Write(resp.Body)
	return err
}

// ReadResponse parses one response.
func ReadResponse(br *bufio.Reader) (*h2.Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("h1: malformed status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("h1: bad status in %q", line)
	}
	resp := &h2.Response{Status: status, Header: map[string][]string{}}
	cl := -1
	for {
		h, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if h == "" {
			break
		}
		name, value, ok := cutHeader(h)
		if !ok {
			return nil, fmt.Errorf("h1: malformed header %q", h)
		}
		if name == "content-length" {
			cl, _ = strconv.Atoi(value)
			continue
		}
		resp.Header[name] = append(resp.Header[name], value)
	}
	if cl < 0 {
		return nil, fmt.Errorf("h1: missing content-length")
	}
	resp.Body = make([]byte, cl)
	if _, err := io.ReadFull(br, resp.Body); err != nil {
		return nil, err
	}
	return resp, nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func cutHeader(h string) (name, value string, ok bool) {
	i := strings.IndexByte(h, ':')
	if i <= 0 {
		return "", "", false
	}
	return strings.ToLower(strings.TrimSpace(h[:i])), strings.TrimSpace(h[i+1:]), true
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 304:
		return "Not Modified"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}
