package h1

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vroom/internal/h2"
)

func startServer(t *testing.T, h Handler) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: h}
	go srv.Serve(l)
	return l.Addr().String(), func() { srv.Close(); l.Close() }
}

func echo() Handler {
	return HandlerFunc(func(r *h2.Request) *h2.Response {
		return &h2.Response{
			Status: 200,
			Header: map[string][]string{"x-path": {r.Path}},
			Body:   append([]byte("echo:"), r.Body...),
		}
	})
}

func TestRoundTrip(t *testing.T) {
	addr, stop := startServer(t, echo())
	defer stop()
	p := &Pool{Authority: "a.test", Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) }}
	defer p.Close()
	resp, err := p.RoundTrip(&h2.Request{Method: "POST", Path: "/x", Body: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "echo:hi" {
		t.Fatalf("resp %d %q", resp.Status, resp.Body)
	}
	if got := resp.Header["x-path"]; len(got) != 1 || got[0] != "/x" {
		t.Fatalf("headers %v", resp.Header)
	}
}

func TestKeepAliveReusesConnection(t *testing.T) {
	var dials int32
	addr, stop := startServer(t, echo())
	defer stop()
	p := &Pool{Authority: "a.test", Dial: func() (net.Conn, error) {
		atomic.AddInt32(&dials, 1)
		return net.Dial("tcp", addr)
	}}
	defer p.Close()
	for i := 0; i < 5; i++ {
		if _, err := p.RoundTrip(&h2.Request{Method: "GET", Path: fmt.Sprintf("/%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := atomic.LoadInt32(&dials); n != 1 {
		t.Fatalf("sequential requests used %d connections", n)
	}
}

func TestSixConnectionLimit(t *testing.T) {
	var inFlight, peak int32
	block := make(chan struct{})
	addr, stop := startServer(t, HandlerFunc(func(r *h2.Request) *h2.Response {
		n := atomic.AddInt32(&inFlight, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
				break
			}
		}
		<-block
		atomic.AddInt32(&inFlight, -1)
		return &h2.Response{Status: 200}
	}))
	defer stop()
	p := &Pool{Authority: "a.test", Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) }}
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.RoundTrip(&h2.Request{Method: "GET", Path: fmt.Sprintf("/%d", i)})
		}(i)
	}
	time.Sleep(200 * time.Millisecond)
	close(block)
	wg.Wait()
	if got := atomic.LoadInt32(&peak); got > MaxConnsPerOrigin {
		t.Fatalf("peak concurrency %d exceeds limit %d", got, MaxConnsPerOrigin)
	}
}

func TestRequestWireFormat(t *testing.T) {
	var buf bytes.Buffer
	req := &h2.Request{Method: "GET", Path: "/a%20b", Authority: "h.test",
		Header: map[string][]string{"Cookie": {"k=v"}}}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	back, keepAlive, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !keepAlive {
		t.Error("HTTP/1.1 request not keep-alive")
	}
	if back.Path != "/a%20b" || back.Authority != "h.test" || back.Header["cookie"][0] != "k=v" {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestResponseWireFormat(t *testing.T) {
	var buf bytes.Buffer
	resp := &h2.Response{Status: 404, Header: map[string][]string{"x-a": {"1", "2"}}, Body: []byte("nope")}
	if err := WriteResponse(&buf, resp, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if back.Status != 404 || string(back.Body) != "nope" || len(back.Header["x-a"]) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestMalformedInputs(t *testing.T) {
	for _, in := range []string{
		"", "GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET / HTTP/1.1\r\nbadheader\r\n\r\n",
	} {
		if _, _, err := ReadRequest(bufio.NewReader(bytes.NewBufferString(in))); err == nil {
			t.Errorf("malformed request accepted: %q", in)
		}
	}
	for _, in := range []string{
		"", "HTTP/1.1\r\n\r\n", "HTTP/1.1 abc OK\r\n\r\n", "HTTP/1.1 200 OK\r\n\r\n", // missing content-length
	} {
		if _, err := ReadResponse(bufio.NewReader(bytes.NewBufferString(in))); err == nil {
			t.Errorf("malformed response accepted: %q", in)
		}
	}
}
