package h1

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vroom/internal/h2"
	"vroom/internal/obs"
	"vroom/internal/telemetry"
)

// MaxConnsPerOrigin is the classic browser HTTP/1.1 connection limit.
const MaxConnsPerOrigin = 6

// Pool is an HTTP/1.1 client for one origin: up to MaxConnsPerOrigin
// keep-alive connections, one outstanding request each; excess requests
// queue for a free connection.
type Pool struct {
	Authority string
	Dial      func() (net.Conn, error)

	// Trace, when non-nil, records exchange spans on Track (defaults to
	// obs.TrackNet). Metrics, when non-nil, feeds exchange latency into
	// the shared fetch-phase histogram and a per-origin connection gauge.
	// Set both before the first round trip.
	Trace   *obs.Tracer
	Track   string
	Metrics *telemetry.Registry

	mu      sync.Mutex
	idle    []*poolConn
	all     map[*poolConn]struct{}
	total   int
	waiters []chan *poolConn
	closed  bool

	exchMs  *telemetry.Histogram
	gConns  *telemetry.Gauge
	instrOK bool
}

// instruments resolves telemetry handles once. Caller holds p.mu.
func (p *Pool) instruments() {
	if p.instrOK {
		return
	}
	p.instrOK = true
	if p.Metrics == nil {
		return
	}
	p.exchMs = p.Metrics.Histogram("vroom_wire_fetch_phase_ms", telemetry.L("phase", "exchange"))
	p.gConns = p.Metrics.Gauge("vroom_wire_active_conns",
		telemetry.L("origin", "https://"+p.Authority), telemetry.L("proto", "h1"))
}

// traceTrack returns the tracer track exchanges are recorded on.
func (p *Pool) traceTrack() string {
	if p.Track != "" {
		return p.Track
	}
	return obs.TrackNet
}

type poolConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// bufio readers/writers carry 4 KiB buffers each; recycling them across
// redials keeps connection churn (fault-heavy runs discard constantly)
// from allocating fresh ones per conn.
var (
	brPool = sync.Pool{New: func() any { return bufio.NewReader(nil) }}
	bwPool = sync.Pool{New: func() any { return bufio.NewWriter(nil) }}
)

func newPoolConn(nc net.Conn) *poolConn {
	br := brPool.Get().(*bufio.Reader)
	br.Reset(nc)
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(nc)
	return &poolConn{nc: nc, br: br, bw: bw}
}

// recycleBufs returns a discarded conn's buffers to the pools. Call only
// when the caller exclusively owns pc (the discard path does).
func (pc *poolConn) recycleBufs() {
	pc.br.Reset(nil)
	brPool.Put(pc.br)
	pc.br = nil
	pc.bw.Reset(nil)
	bwPool.Put(pc.bw)
	pc.bw = nil
}

// RoundTrip performs one request/response exchange, reusing or opening a
// connection within the limit.
func (p *Pool) RoundTrip(req *h2.Request) (*h2.Response, error) {
	return p.RoundTripTimeout(req, 0, 0)
}

// RoundTripTimeout is RoundTrip with one whole-exchange watchdog spanning
// header+stall: HTTP/1.1 has no frame-level progress to observe, and netem
// conns ignore read deadlines, so on expiry the connection is closed and the
// error surfaces as a *h2.TimeoutError. Zero disables the watchdog.
func (p *Pool) RoundTripTimeout(req *h2.Request, header, stall time.Duration) (*h2.Response, error) {
	pc, err := p.acquire()
	if err != nil {
		return nil, err
	}
	traced := p.Trace.Enabled() || p.exchMs != nil
	var start time.Time
	var sp obs.Span
	if traced {
		start = time.Now()
		if p.Trace.Enabled() {
			args := []obs.Arg{{Key: "path", Val: req.Path}}
			if vals := req.Header[obs.TraceHeader]; len(vals) > 0 {
				// Propagated trace context: stitch the exchange into the
				// cross-process timeline by its fetch's flow ID.
				args = append(args, obs.Arg{Key: obs.ArgFlow, Val: vals[0]})
			}
			sp = p.Trace.Begin(p.traceTrack(), "exchange", args...)
		}
	}
	var timedOut atomic.Bool
	if total := header + stall; total > 0 {
		watchdog := time.AfterFunc(total, func() {
			timedOut.Store(true)
			pc.nc.Close()
		})
		defer watchdog.Stop()
	}
	resp, err := p.exchange(pc, req)
	if err != nil && timedOut.Load() {
		sp.End(obs.Arg{Key: "error", Val: "timeout"})
		return nil, &h2.TimeoutError{Phase: "exchange"}
	}
	if traced {
		if err == nil {
			p.exchMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		}
		if sp.Active() {
			if err != nil {
				sp.End(obs.Arg{Key: "error", Val: err.Error()})
			} else {
				sp.End(obs.Arg{Key: "status", Val: strconv.Itoa(resp.Status)})
			}
		}
	}
	return resp, err
}

// exchange runs one request/response on pc, returning it to the pool or
// discarding it as the outcome dictates.
func (p *Pool) exchange(pc *poolConn, req *h2.Request) (*h2.Response, error) {
	if req.Authority == "" {
		req.Authority = p.Authority
	}
	if err := WriteRequest(pc.bw, req); err != nil {
		p.discard(pc)
		return nil, err
	}
	if err := pc.bw.Flush(); err != nil {
		p.discard(pc)
		return nil, err
	}
	resp, err := ReadResponse(pc.br)
	if err != nil {
		p.discard(pc)
		return nil, err
	}
	if vals := resp.Header["connection"]; len(vals) > 0 && vals[0] == "close" {
		p.discard(pc)
	} else {
		p.release(pc)
	}
	resp.Request = req
	return resp, nil
}

// SelfHealing reports that the pool replaces broken connections on its own
// (discard frees a slot, the next acquire redials); the wire client uses it
// to skip the evict-and-redial bookkeeping h2 conns need.
func (p *Pool) SelfHealing() bool { return true }

// Promised implements the wire origin-connection interface: HTTP/1.1 has
// no server push.
func (p *Pool) Promised(string) (*h2.Request, bool) { return nil, false }

// Close tears down every connection, in-flight ones included, so an aborted
// page load cannot leak sockets or park goroutines on dead reads.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	for pc := range p.all {
		pc.nc.Close()
	}
	p.all = nil
	p.idle = nil
	for _, ch := range p.waiters {
		close(ch)
	}
	p.waiters = nil
	p.gConns.Set(0)
	p.mu.Unlock()
	return nil
}

func (p *Pool) acquire() (*poolConn, error) {
	p.mu.Lock()
	p.instruments()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("h1: pool closed")
	}
	if n := len(p.idle); n > 0 {
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, nil
	}
	if p.total < MaxConnsPerOrigin {
		p.total++
		p.gConns.Set(int64(p.total))
		p.mu.Unlock()
		nc, err := p.Dial()
		if err != nil {
			p.mu.Lock()
			p.total--
			p.gConns.Set(int64(p.total))
			p.mu.Unlock()
			return nil, err
		}
		pc := newPoolConn(nc)
		p.track(pc)
		return pc, nil
	}
	// Saturated: wait for a release.
	ch := make(chan *poolConn, 1)
	p.waiters = append(p.waiters, ch)
	p.mu.Unlock()
	pc, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("h1: pool closed while waiting")
	}
	return pc, nil
}

func (p *Pool) release(pc *poolConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.nc.Close()
		return
	}
	if len(p.waiters) > 0 {
		ch := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.mu.Unlock()
		ch <- pc
		return
	}
	p.idle = append(p.idle, pc)
	p.mu.Unlock()
}

// discard drops a broken connection, freeing a slot.
func (p *Pool) discard(pc *poolConn) {
	pc.nc.Close()
	pc.recycleBufs()
	p.mu.Lock()
	delete(p.all, pc)
	p.total--
	var next chan *poolConn
	if len(p.waiters) > 0 && p.total < MaxConnsPerOrigin {
		next = p.waiters[0]
		p.waiters = p.waiters[1:]
		p.total++
	}
	p.gConns.Set(int64(p.total))
	p.mu.Unlock()
	if p.Trace.Enabled() {
		p.Trace.Instant(p.traceTrack(), "conn-discarded", obs.Arg{Key: "origin", Val: p.Authority})
	}
	if next != nil {
		// Open a replacement for the waiter.
		nc, err := p.Dial()
		if err != nil {
			p.mu.Lock()
			p.total--
			p.gConns.Set(int64(p.total))
			p.mu.Unlock()
			close(next)
			return
		}
		npc := newPoolConn(nc)
		p.track(npc)
		next <- npc
	}
}

// track registers a freshly dialed conn so Close can reach it even while a
// round trip holds it. A pool closed mid-dial closes the conn immediately.
func (p *Pool) track(pc *poolConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.nc.Close()
		return
	}
	if p.all == nil {
		p.all = make(map[*poolConn]struct{})
	}
	p.all[pc] = struct{}{}
	p.mu.Unlock()
}
