package h1

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"vroom/internal/h2"
)

// MaxConnsPerOrigin is the classic browser HTTP/1.1 connection limit.
const MaxConnsPerOrigin = 6

// Pool is an HTTP/1.1 client for one origin: up to MaxConnsPerOrigin
// keep-alive connections, one outstanding request each; excess requests
// queue for a free connection.
type Pool struct {
	Authority string
	Dial      func() (net.Conn, error)

	mu      sync.Mutex
	idle    []*poolConn
	total   int
	waiters []chan *poolConn
	closed  bool
}

type poolConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// RoundTrip performs one request/response exchange, reusing or opening a
// connection within the limit.
func (p *Pool) RoundTrip(req *h2.Request) (*h2.Response, error) {
	pc, err := p.acquire()
	if err != nil {
		return nil, err
	}
	if req.Authority == "" {
		req.Authority = p.Authority
	}
	if err := WriteRequest(pc.bw, req); err != nil {
		p.discard(pc)
		return nil, err
	}
	if err := pc.bw.Flush(); err != nil {
		p.discard(pc)
		return nil, err
	}
	resp, err := ReadResponse(pc.br)
	if err != nil {
		p.discard(pc)
		return nil, err
	}
	if vals := resp.Header["connection"]; len(vals) > 0 && vals[0] == "close" {
		p.discard(pc)
	} else {
		p.release(pc)
	}
	resp.Request = req
	return resp, nil
}

// Promised implements the wire origin-connection interface: HTTP/1.1 has
// no server push.
func (p *Pool) Promised(string) (*h2.Request, bool) { return nil, false }

// Close tears down all idle connections; in-flight ones close on release.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	for _, pc := range p.idle {
		pc.nc.Close()
	}
	p.idle = nil
	for _, ch := range p.waiters {
		close(ch)
	}
	p.waiters = nil
	p.mu.Unlock()
	return nil
}

func (p *Pool) acquire() (*poolConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("h1: pool closed")
	}
	if n := len(p.idle); n > 0 {
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, nil
	}
	if p.total < MaxConnsPerOrigin {
		p.total++
		p.mu.Unlock()
		nc, err := p.Dial()
		if err != nil {
			p.mu.Lock()
			p.total--
			p.mu.Unlock()
			return nil, err
		}
		return &poolConn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}, nil
	}
	// Saturated: wait for a release.
	ch := make(chan *poolConn, 1)
	p.waiters = append(p.waiters, ch)
	p.mu.Unlock()
	pc, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("h1: pool closed while waiting")
	}
	return pc, nil
}

func (p *Pool) release(pc *poolConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.nc.Close()
		return
	}
	if len(p.waiters) > 0 {
		ch := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.mu.Unlock()
		ch <- pc
		return
	}
	p.idle = append(p.idle, pc)
	p.mu.Unlock()
}

// discard drops a broken connection, freeing a slot.
func (p *Pool) discard(pc *poolConn) {
	pc.nc.Close()
	p.mu.Lock()
	p.total--
	var next chan *poolConn
	if len(p.waiters) > 0 && p.total < MaxConnsPerOrigin {
		next = p.waiters[0]
		p.waiters = p.waiters[1:]
		p.total++
	}
	p.mu.Unlock()
	if next != nil {
		// Open a replacement for the waiter.
		nc, err := p.Dial()
		if err != nil {
			p.mu.Lock()
			p.total--
			p.mu.Unlock()
			close(next)
			return
		}
		next <- &poolConn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	}
}
