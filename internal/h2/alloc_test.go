package h2

import (
	"bytes"
	"io"
	"testing"
)

// rewindReader replays the same encoded bytes forever; rewind() between
// reads keeps the framer fed without per-iteration reader allocations.
type rewindReader struct {
	data []byte
	off  int
}

func (r *rewindReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *rewindReader) rewind() { r.off = 0 }

// encodeFrames serializes frames for replay through a reader.
func encodeFrames(t testing.TB, frames ...*Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := &Framer{w: &buf}
	for _, f := range frames {
		if err := fw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// benchFrames is a read-loop-shaped mix: a HEADERS frame and DATA frames of
// uneven sizes, so the reusable payload buffer shrinks and regrows.
func benchFrames(t testing.TB) []byte {
	return encodeFrames(t,
		&Frame{Type: FrameHeaders, Flags: FlagEndHeaders, StreamID: 1, Payload: bytes.Repeat([]byte("h"), 200)},
		&Frame{Type: FrameData, StreamID: 1, Payload: bytes.Repeat([]byte("d"), 8192)},
		&Frame{Type: FrameData, Flags: FlagEndStream, StreamID: 1, Payload: bytes.Repeat([]byte("e"), 64)},
	)
}

// TestFrameReadWriteZeroAlloc pins the tentpole property: once the reusable
// payload buffer has grown to the largest frame seen, the frame hot path —
// reuse-mode reads and writes — allocates nothing.
func TestFrameReadWriteZeroAlloc(t *testing.T) {
	wire := benchFrames(t)
	src := &rewindReader{data: wire}
	fr := &Framer{r: src, w: io.Discard}
	// Warm up: grows fr.payload to the largest frame in the mix.
	if _, err := fr.ReadFrameReuse(); err != nil {
		t.Fatal(err)
	}
	src.rewind()

	out := &Frame{Type: FrameData, StreamID: 1, Payload: bytes.Repeat([]byte("w"), 4096)}
	if n := testing.AllocsPerRun(200, func() {
		src.rewind()
		for i := 0; i < 3; i++ {
			f, err := fr.ReadFrameReuse()
			if err != nil {
				t.Fatal(err)
			}
			if err := fr.WriteFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		if err := fr.WriteFrame(out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("frame read/write hot path allocates %.1f times per iteration, want 0", n)
	}
}

// TestHPACKEncodeZeroAlloc pins the encoder's steady state: re-encoding a
// header set already resident in the dynamic table emits only indexed
// fields into a caller-reused buffer, with zero allocations.
func TestHPACKEncodeZeroAlloc(t *testing.T) {
	enc := NewHPACKEncoder()
	fields := []HeaderField{
		{":method", "GET"},
		{":path", "/index.html"},
		{":scheme", "https"},
		{":authority", "www.example.com"},
		{"link", "<https://cdn.example.com/a.js>; rel=preload"},
		{"cache-control", "max-age=600"},
	}
	// First encode populates the dynamic table and sizes the buffer.
	buf := enc.Encode(nil, fields)
	if n := testing.AllocsPerRun(200, func() {
		buf = enc.Encode(buf[:0], fields)
	}); n != 0 {
		t.Fatalf("steady-state HPACK encode allocates %.1f times per run, want 0", n)
	}
}

// TestControlFrameWritesZeroAlloc covers the conn-level bookkeeping frames
// sent per received DATA frame: WINDOW_UPDATE and RST_STREAM from the
// conn's control scratch.
func TestControlFrameWritesZeroAlloc(t *testing.T) {
	c := &conn{fr: &Framer{w: io.Discard}}
	if n := testing.AllocsPerRun(200, func() {
		if err := c.writeWindowUpdate(0, 4096); err != nil {
			t.Fatal(err)
		}
		if err := c.writeWindowUpdate(1, 4096); err != nil {
			t.Fatal(err)
		}
		if err := c.writeRst(3, ErrCancel); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("control frame writes allocate %.1f times per run, want 0", n)
	}
}

// BenchmarkFrameReadWrite measures the frame hot path: reuse-mode reads of
// a mixed frame stream plus a write per frame. Tracked in BENCH_8.json;
// the alloc figure is the one the zero-alloc tests pin.
func BenchmarkFrameReadWrite(b *testing.B) {
	wire := benchFrames(b)
	src := &rewindReader{data: wire}
	fr := &Framer{r: src, w: io.Discard}
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.rewind()
		for {
			f, err := fr.ReadFrameReuse()
			if err != nil {
				break
			}
			if err := fr.WriteFrame(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHPACKEncode measures steady-state header-block encoding of a
// repeated header set (all dynamic-table hits after the first pass).
func BenchmarkHPACKEncode(b *testing.B) {
	enc := NewHPACKEncoder()
	fields := []HeaderField{
		{":method", "GET"},
		{":path", "/index.html"},
		{":scheme", "https"},
		{":authority", "www.example.com"},
		{"link", "<https://cdn.example.com/a.js>; rel=preload"},
		{"cache-control", "max-age=600"},
	}
	buf := enc.Encode(nil, fields)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = enc.Encode(buf[:0], fields)
	}
}

// BenchmarkHPACKDecode measures the decoder on a block of indexed fields —
// the read-loop counterpart of BenchmarkHPACKEncode.
func BenchmarkHPACKDecode(b *testing.B) {
	enc := NewHPACKEncoder()
	dec := NewHPACKDecoder()
	fields := []HeaderField{
		{":method", "GET"},
		{":path", "/index.html"},
		{":status", "200"},
		{"content-type", "text/html"},
	}
	// Encode twice so the benchmark block is all dynamic-table hits.
	block := enc.Encode(nil, fields)
	if _, err := dec.Decode(block); err != nil {
		b.Fatal(err)
	}
	block = enc.Encode(nil, fields)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(block); err != nil {
			b.Fatal(err)
		}
	}
}
