package h2

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"
)

// ClientConn is the client end of an HTTP/2 connection.
type ClientConn struct {
	conn *conn

	// OnPush, when set, receives every pushed response as it completes.
	// It is invoked from the read loop goroutine; handlers must not block.
	OnPush func(*Response)

	mu      sync.Mutex
	pending map[uint32]*clientStream
	// promises maps pushed stream IDs to their synthetic requests.
	promises map[uint32]*Request
	// goneAway records a graceful (NO_ERROR) GOAWAY: the conn keeps
	// delivering responses for streams at or below LastStreamID, but new
	// round trips fail fast with this error.
	goneAway *GoAwayError
	readErr  error
	readDone chan struct{}
}

type clientStream struct {
	s    *stream
	resp *Response
	err  error
	done chan struct{}
	// hdr closes when response headers arrive (before the body completes),
	// so callers can enforce a separate time-to-headers deadline.
	hdr chan struct{}
	// progress receives a token per DATA frame; body-stall deadlines reset
	// on it.
	progress chan struct{}
}

// NewClientConn performs the client preface on nc and starts the read
// loop.
func NewClientConn(nc net.Conn) (*ClientConn, error) {
	cc := &ClientConn{
		conn:     newConn(nc, roleClient),
		pending:  make(map[uint32]*clientStream),
		promises: make(map[uint32]*Request),
		readDone: make(chan struct{}),
	}
	if _, err := nc.Write([]byte(ClientPreface)); err != nil {
		return nil, fmt.Errorf("h2: preface: %w", err)
	}
	if err := cc.conn.writeFrame(&Frame{Type: FrameSettings, Payload: encodeSettings(nil)}); err != nil {
		return nil, err
	}
	go cc.readLoop()
	return cc, nil
}

// Close tears the connection down.
func (cc *ClientConn) Close() error {
	cc.conn.closeWithError(fmt.Errorf("h2: client closed"))
	return nil
}

// Err returns the terminal read-loop error, or nil while the connection is
// alive. The wire client consults it to skip round trips on dead conns.
func (cc *ClientConn) Err() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.readErr
}

// RoundTrip issues a request and waits for the complete response.
func (cc *ClientConn) RoundTrip(req *Request) (*Response, error) {
	return cc.RoundTripTimeout(req, 0, 0)
}

// RoundTripTimeout issues a request with per-attempt deadlines: header
// bounds the time to response headers, stall bounds any gap in body
// progress after headers. Zero disables a deadline. On timeout the stream
// is reset (RST_STREAM CANCEL) and a *TimeoutError returned; the
// connection survives.
func (cc *ClientConn) RoundTripTimeout(req *Request, header, stall time.Duration) (*Response, error) {
	cc.mu.Lock()
	if ga := cc.goneAway; ga != nil {
		cc.mu.Unlock()
		return nil, *ga
	}
	cc.mu.Unlock()
	s := cc.conn.newStream()
	cs := &clientStream{
		s:        s,
		done:     make(chan struct{}),
		hdr:      make(chan struct{}),
		progress: make(chan struct{}, 1),
	}
	cc.mu.Lock()
	cc.pending[s.id] = cs
	cc.mu.Unlock()

	fields := []HeaderField{
		{Name: ":method", Value: orGET(req.Method)},
		{Name: ":scheme", Value: req.Scheme},
		{Name: ":authority", Value: req.Authority},
		{Name: ":path", Value: req.Path},
	}
	fields = append(fields, sortedFields(req.Header)...)
	endStream := len(req.Body) == 0
	if err := cc.conn.writeHeaderBlock(s.id, fields, endStream, 0); err != nil {
		cc.abortStream(s, nil)
		return nil, err
	}
	if !endStream {
		if err := cc.conn.writeData(s, req.Body, true); err != nil {
			cc.abortStream(s, nil)
			return nil, err
		}
	}

	if header > 0 {
		t := time.NewTimer(header)
		select {
		case <-cs.done:
			t.Stop()
		case <-cs.hdr:
			t.Stop()
		case <-t.C:
			err := &TimeoutError{Phase: "headers"}
			cc.abortStream(s, err)
			return nil, err
		}
	}
	if stall > 0 {
		t := time.NewTimer(stall)
	body:
		for {
			select {
			case <-cs.done:
				t.Stop()
				break body
			case <-cs.progress:
				// Bytes are flowing; the transfer is alive however slow.
				if !t.Stop() {
					<-t.C
				}
				t.Reset(stall)
			case <-t.C:
				err := &TimeoutError{Phase: "body"}
				cc.abortStream(s, err)
				return nil, err
			}
		}
	}
	<-cs.done
	if cs.err != nil {
		return nil, cs.err
	}
	cs.resp.Request = req
	return cs.resp, nil
}

// abortStream cancels a locally initiated stream: the peer sees RST_STREAM
// CANCEL, the local waiter (if err != nil) completes with err.
func (cc *ClientConn) abortStream(s *stream, err error) {
	cc.mu.Lock()
	cs, ok := cc.pending[s.id]
	if ok {
		delete(cc.pending, s.id)
		cs.err = err
	}
	cc.mu.Unlock()
	if ok && err != nil {
		close(cs.done)
	}
	_ = cc.conn.writeFrame(&Frame{Type: FrameRSTStream, StreamID: s.id, Payload: rstPayload(ErrCancel)})
	cc.conn.finishStream(s)
}

func (cc *ClientConn) readLoop() {
	var err error
	defer func() {
		cc.mu.Lock()
		if cc.goneAway != nil {
			// The peer announced a graceful shutdown before the read error;
			// that is the real story for anything still pending.
			err = *cc.goneAway
		}
		ga, gotGoAway := err.(GoAwayError)
		cc.readErr = err
		for id, cs := range cc.pending {
			if cs.err == nil && cs.resp == nil {
				if gotGoAway && id > ga.LastStreamID {
					// The peer guarantees it never processed this stream;
					// replaying it on a fresh connection is always safe.
					cs.err = StreamError{StreamID: id, Code: ErrRefusedStream,
						Reason: "unprocessed at GOAWAY"}
				} else {
					cs.err = err
				}
			}
			delete(cc.pending, id)
			close(cs.done)
		}
		// Promises whose pushed response never completed are orphans now —
		// no response can arrive on a dead connection. Dropping them keeps
		// Promised from parking fetches on pushes that will never land.
		for id := range cc.promises {
			delete(cc.promises, id)
		}
		cc.mu.Unlock()
		cc.conn.closeWithError(err)
		close(cc.readDone)
	}()
	for {
		var f *Frame
		f, err = cc.conn.fr.ReadFrame()
		if err != nil {
			return
		}
		if err = cc.dispatch(f); err != nil {
			if ce, ok := err.(ConnError); ok {
				cc.conn.goAway(ce.Code, ce.Reason)
			}
			return
		}
	}
}

func (cc *ClientConn) dispatch(f *Frame) error {
	c := cc.conn
	switch f.Type {
	case FrameSettings:
		return c.handleSettings(f)
	case FrameWindowUpdate:
		return c.handleWindowUpdate(f)
	case FramePing:
		if f.Flags&FlagAck == 0 {
			return c.writeFrame(&Frame{Type: FramePing, Flags: FlagAck, Payload: f.Payload})
		}
		return nil
	case FrameHeaders:
		complete, err := c.beginHeaderBlock(f, 0, f.Payload)
		if err != nil || !complete {
			return err
		}
		return cc.applyHeaders(f.StreamID, f.Payload, f.EndStream())
	case FrameContinuation:
		done, err := c.continueHeaderBlock(f)
		if err != nil || done == nil {
			return err
		}
		if done.promisedID != 0 {
			return cc.applyPushPromise(done.promisedID, done.block)
		}
		return cc.applyHeaders(done.streamID, done.block, done.endStream)
	case FrameData:
		s := c.stream(f.StreamID)
		if s == nil {
			return ConnError{Code: ErrProtocol, Reason: "DATA on unknown stream"}
		}
		s.body = append(s.body, f.Payload...)
		cc.noteProgress(f.StreamID)
		if err := c.consumeData(f.StreamID, len(f.Payload)); err != nil {
			return err
		}
		if f.EndStream() {
			cc.completeStream(f.StreamID, s)
		}
		return nil
	case FramePushPromise:
		if len(f.Payload) < 4 {
			return ConnError{Code: ErrFrameSize, Reason: "short PUSH_PROMISE"}
		}
		promisedID := uint32(f.Payload[0]&0x7f)<<24 | uint32(f.Payload[1])<<16 | uint32(f.Payload[2])<<8 | uint32(f.Payload[3])
		complete, err := c.beginHeaderBlock(f, promisedID, f.Payload[4:])
		if err != nil || !complete {
			return err
		}
		return cc.applyPushPromise(promisedID, f.Payload[4:])
	case FrameRSTStream:
		s := c.stream(f.StreamID)
		if s != nil {
			code, err := parseRst(f.Payload)
			if err != nil {
				return err
			}
			c.mu.Lock()
			s.rst = true
			s.rstCode = code
			c.mu.Unlock()
			c.sendCond.Broadcast()
			cc.failStream(f.StreamID, StreamError{StreamID: f.StreamID, Code: code, Reason: "reset by server"})
		}
		return nil
	case FrameGoAway:
		last, code, debug, err := parseGoAway(f.Payload)
		if err != nil {
			return err
		}
		ga := GoAwayError{LastStreamID: last, Code: code, Reason: debug}
		if code != ErrNone {
			return ga
		}
		// Graceful shutdown: streams above last were never processed — fail
		// them retryable right away — while streams at or below may still
		// complete, so keep reading until the peer closes the connection.
		cc.mu.Lock()
		if cc.goneAway == nil {
			cc.goneAway = &ga
		}
		var refused []*clientStream
		for id, cs := range cc.pending {
			if id > last {
				delete(cc.pending, id)
				cs.err = StreamError{StreamID: id, Code: ErrRefusedStream,
					Reason: "unprocessed at GOAWAY"}
				refused = append(refused, cs)
			}
		}
		cc.mu.Unlock()
		for _, cs := range refused {
			close(cs.done)
		}
		return nil
	default:
		return nil
	}
}

// noteProgress signals body progress to a deadline-bound RoundTrip.
func (cc *ClientConn) noteProgress(id uint32) {
	cc.mu.Lock()
	cs := cc.pending[id]
	cc.mu.Unlock()
	if cs == nil || cs.progress == nil {
		return
	}
	select {
	case cs.progress <- struct{}{}:
	default:
	}
}

// applyHeaders installs a complete response header block.
func (cc *ClientConn) applyHeaders(streamID uint32, block []byte, endStream bool) error {
	fields, err := cc.conn.dec.Decode(block)
	if err != nil {
		return err
	}
	s := cc.conn.stream(streamID)
	if s == nil {
		return ConnError{Code: ErrProtocol, Reason: "HEADERS on unknown stream"}
	}
	s.headers = fields
	cc.mu.Lock()
	cs := cc.pending[streamID]
	cc.mu.Unlock()
	if cs != nil && cs.hdr != nil {
		select {
		case <-cs.hdr:
		default:
			close(cs.hdr)
		}
	}
	if endStream {
		cc.completeStream(streamID, s)
	}
	return nil
}

// applyPushPromise registers a complete push promise.
func (cc *ClientConn) applyPushPromise(promisedID uint32, block []byte) error {
	fields, err := cc.conn.dec.Decode(block)
	if err != nil {
		return err
	}
	req, err := requestFromFields(fields)
	if err != nil {
		return ConnError{Code: ErrProtocol, Reason: err.Error()}
	}
	cc.conn.remoteStream(promisedID)
	cc.mu.Lock()
	cc.promises[promisedID] = req
	cc.mu.Unlock()
	return nil
}

// completeStream turns a finished stream into a Response and routes it.
func (cc *ClientConn) completeStream(id uint32, s *stream) {
	resp := &Response{Header: make(map[string][]string), Body: s.body}
	for _, f := range s.headers {
		if f.Name == ":status" {
			resp.Status, _ = strconv.Atoi(f.Value)
			continue
		}
		resp.Header[f.Name] = append(resp.Header[f.Name], f.Value)
	}
	cc.conn.finishStream(s)
	cc.mu.Lock()
	if cs, ok := cc.pending[id]; ok {
		delete(cc.pending, id)
		cs.resp = resp
		cc.mu.Unlock()
		close(cs.done)
		return
	}
	req, promised := cc.promises[id]
	delete(cc.promises, id)
	onPush := cc.OnPush
	cc.mu.Unlock()
	if promised {
		resp.Pushed = true
		resp.Request = req
		if onPush != nil {
			onPush(resp)
		}
	}
}

func (cc *ClientConn) failStream(id uint32, err error) {
	cc.mu.Lock()
	cs, ok := cc.pending[id]
	if ok {
		delete(cc.pending, id)
		cs.err = err
	}
	cc.mu.Unlock()
	if ok {
		close(cs.done)
	}
}

// Promised returns the synthetic request of an outstanding push promise,
// if the server has announced one for the given path.
func (cc *ClientConn) Promised(path string) (*Request, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for _, req := range cc.promises {
		if req.Path == path {
			return req, true
		}
	}
	return nil, false
}
