package h2

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"vroom/internal/obs"
	"vroom/internal/telemetry"
)

// Metric families this package feeds. The phase histogram shares its family
// with the wire client (dial) and h1 pool (exchange), so one scrape shows
// every fetch phase side by side.
const (
	metricPhaseMs     = "vroom_wire_fetch_phase_ms"
	metricPushPromise = "vroom_h2_push_promises_total"
	metricGoAway      = "vroom_h2_goaway_total"
)

// ClientConn is the client end of an HTTP/2 connection.
type ClientConn struct {
	conn *conn

	// OnPush, when set, receives every pushed response as it completes.
	// It is invoked from the read loop goroutine; handlers must not block.
	OnPush func(*Response)

	mu      sync.Mutex
	instr   ccInstruments
	pending map[uint32]*clientStream
	// promises maps pushed stream IDs to their synthetic requests.
	promises map[uint32]*Request
	// goneAway records a graceful (NO_ERROR) GOAWAY: the conn keeps
	// delivering responses for streams at or below LastStreamID, but new
	// round trips fail fast with this error.
	goneAway *GoAwayError
	readErr  error
	readDone chan struct{}
}

type clientStream struct {
	s    *stream
	resp *Response
	err  error
	done chan struct{}
	// hdr closes when response headers arrive (before the body completes),
	// so callers can enforce a separate time-to-headers deadline.
	hdr chan struct{}
	// progress receives a token per DATA frame; body-stall deadlines reset
	// on it.
	progress chan struct{}
	// traced asks the read loop to stamp hdrAt when headers land. hdrAt is
	// written before hdr closes and read only after done closes, so the
	// channel edges order the accesses.
	traced bool
	hdrAt  time.Time
}

// csPool recycles clientStream state across round trips. done and hdr are
// closed channels by the time a stream is recycled, so they are remade per
// acquisition; the buffered progress channel is drained and reused.
var csPool = sync.Pool{
	New: func() any {
		return &clientStream{progress: make(chan struct{}, 1)}
	},
}

func getClientStream(s *stream, traced bool) *clientStream {
	cs := csPool.Get().(*clientStream)
	cs.s = s
	cs.resp = nil
	cs.err = nil
	cs.done = make(chan struct{})
	cs.hdr = make(chan struct{})
	select {
	case <-cs.progress: // drop a token left over from the previous use
	default:
	}
	cs.traced = traced
	cs.hdrAt = time.Time{}
	return cs
}

// putClientStream returns a stream's round-trip state to the pool. Safe
// only once the stream is out of cc.pending (the read loop reaches
// clientStreams exclusively through that map) and the round trip that owns
// it has read resp/err — i.e. at the return points of RoundTripTimeout.
func putClientStream(cs *clientStream) {
	cs.s = nil
	cs.resp = nil
	cs.err = nil
	csPool.Put(cs)
}

// ccInstruments is the connection's tracing and metrics attachment. The
// zero value is the disabled fast path.
type ccInstruments struct {
	trace *obs.Tracer
	track string

	hdrMs, bodyMs                           *telemetry.Histogram
	pushPromised, pushDelivered, pushOrphan *telemetry.Counter
	goaways                                 *telemetry.Counter
}

// Instrument attaches tracing and metrics to the connection: round-trip
// header/body phase spans and latency observations, push promise lifecycle
// (promised, delivered, orphaned), and GOAWAY receipt. Call it before the
// first round trip; like OnPush, the read loop reads the attachment under
// the connection mutex. A nil tracer and nil registry cost nothing.
func (cc *ClientConn) Instrument(tr *obs.Tracer, track string, reg *telemetry.Registry) {
	if track == "" {
		track = obs.TrackNet
	}
	in := ccInstruments{trace: tr, track: track}
	if reg != nil {
		in.hdrMs = reg.Histogram(metricPhaseMs, telemetry.L("phase", "headers"))
		in.bodyMs = reg.Histogram(metricPhaseMs, telemetry.L("phase", "body"))
		in.pushPromised = reg.Counter(metricPushPromise, telemetry.L("state", "promised"))
		in.pushDelivered = reg.Counter(metricPushPromise, telemetry.L("state", "delivered"))
		in.pushOrphan = reg.Counter(metricPushPromise, telemetry.L("state", "orphaned"))
		in.goaways = reg.Counter(metricGoAway)
		reg.Describe(metricPushPromise, "Push promises by fate: promised, delivered, orphaned on a dead connection.")
		reg.Describe(metricGoAway, "GOAWAY frames received from servers.")
	}
	cc.mu.Lock()
	cc.instr = in
	cc.mu.Unlock()
}

// active reports whether any instrumentation is attached.
func (in *ccInstruments) active() bool { return in.trace.Enabled() || in.hdrMs != nil }

// NewClientConn performs the client preface on nc and starts the read
// loop.
func NewClientConn(nc net.Conn) (*ClientConn, error) {
	cc := &ClientConn{
		conn:     newConn(nc, roleClient),
		pending:  make(map[uint32]*clientStream),
		promises: make(map[uint32]*Request),
		readDone: make(chan struct{}),
	}
	if _, err := nc.Write([]byte(ClientPreface)); err != nil {
		return nil, fmt.Errorf("h2: preface: %w", err)
	}
	if err := cc.conn.writeFrame(&Frame{Type: FrameSettings, Payload: encodeSettings(nil)}); err != nil {
		return nil, err
	}
	go cc.readLoop()
	return cc, nil
}

// Close tears the connection down.
func (cc *ClientConn) Close() error {
	cc.conn.closeWithError(fmt.Errorf("h2: client closed"))
	return nil
}

// Err returns the terminal read-loop error, or nil while the connection is
// alive. The wire client consults it to skip round trips on dead conns.
func (cc *ClientConn) Err() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.readErr
}

// RoundTrip issues a request and waits for the complete response.
func (cc *ClientConn) RoundTrip(req *Request) (*Response, error) {
	return cc.RoundTripTimeout(req, 0, 0)
}

// RoundTripTimeout issues a request with per-attempt deadlines: header
// bounds the time to response headers, stall bounds any gap in body
// progress after headers. Zero disables a deadline. On timeout the stream
// is reset (RST_STREAM CANCEL) and a *TimeoutError returned; the
// connection survives.
func (cc *ClientConn) RoundTripTimeout(req *Request, header, stall time.Duration) (*Response, error) {
	cc.mu.Lock()
	if ga := cc.goneAway; ga != nil {
		cc.mu.Unlock()
		return nil, *ga
	}
	in := cc.instr
	cc.mu.Unlock()
	traced := in.active()
	var start time.Time
	if traced {
		start = time.Now()
	}
	s := cc.conn.newStream()
	cs := getClientStream(s, traced)
	cc.mu.Lock()
	cc.pending[s.id] = cs
	cc.mu.Unlock()

	fields := []HeaderField{
		{Name: ":method", Value: orGET(req.Method)},
		{Name: ":scheme", Value: req.Scheme},
		{Name: ":authority", Value: req.Authority},
		{Name: ":path", Value: req.Path},
	}
	fields = append(fields, sortedFields(req.Header)...)
	endStream := len(req.Body) == 0
	if err := cc.conn.writeHeaderBlock(s.id, fields, endStream, 0); err != nil {
		cc.abortStream(s, nil)
		return nil, err
	}
	if !endStream {
		if err := cc.conn.writeData(s, req.Body, true); err != nil {
			cc.abortStream(s, nil)
			return nil, err
		}
	}

	if header > 0 {
		t := time.NewTimer(header)
		select {
		case <-cs.done:
			t.Stop()
		case <-cs.hdr:
			t.Stop()
		case <-t.C:
			err := &TimeoutError{Phase: "headers"}
			cc.abortStream(s, err)
			if in.trace.Enabled() {
				in.trace.Instant(in.track, "rt-timeout",
					obs.Arg{Key: "phase", Val: "headers"}, obs.Arg{Key: "path", Val: req.Path})
			}
			return nil, err
		}
	}
	if stall > 0 {
		t := time.NewTimer(stall)
	body:
		for {
			select {
			case <-cs.done:
				t.Stop()
				break body
			case <-cs.progress:
				// Bytes are flowing; the transfer is alive however slow.
				if !t.Stop() {
					<-t.C
				}
				t.Reset(stall)
			case <-t.C:
				err := &TimeoutError{Phase: "body"}
				cc.abortStream(s, err)
				if in.trace.Enabled() {
					in.trace.Instant(in.track, "rt-timeout",
						obs.Arg{Key: "phase", Val: "body"}, obs.Arg{Key: "path", Val: req.Path})
				}
				return nil, err
			}
		}
	}
	<-cs.done
	// done was closed by the read loop (not an abort), so the read loop is
	// finished with cs and it can go back to the pool once resp/err/hdrAt
	// are captured. The abort/timeout paths above leave cs unpooled: a
	// racing dispatch may still hold a pointer it fetched from pending
	// before the abort deleted it.
	resp, rtErr, hdrAt := cs.resp, cs.err, cs.hdrAt
	putClientStream(cs)
	if rtErr != nil {
		return nil, rtErr
	}
	if traced {
		end := time.Now()
		if hdrAt.IsZero() {
			hdrAt = end
		}
		if in.hdrMs != nil {
			in.hdrMs.Observe(float64(hdrAt.Sub(start)) / float64(time.Millisecond))
			in.bodyMs.Observe(float64(end.Sub(hdrAt)) / float64(time.Millisecond))
		}
		if in.trace.Enabled() {
			rtArgs := []obs.Arg{{Key: "path", Val: req.Path}}
			if vals := req.Header[obs.TraceHeader]; len(vals) > 0 {
				// Propagated trace context: tag the round trip with the
				// fetch's flow ID so transport spans stitch into the
				// cross-process timeline.
				rtArgs = append(rtArgs, obs.Arg{Key: obs.ArgFlow, Val: vals[0]})
			}
			rt := in.trace.BeginAt(start, in.track, "rt", rtArgs...)
			hs := in.trace.BeginAt(start, in.track, "headers")
			hs.EndAt(hdrAt)
			bs := in.trace.BeginAt(hdrAt, in.track, "body")
			bs.EndAt(end)
			rt.EndAt(end, obs.Arg{Key: "status", Val: strconv.Itoa(resp.Status)})
		}
	}
	resp.Request = req
	return resp, nil
}

// abortStream cancels a locally initiated stream: the peer sees RST_STREAM
// CANCEL, the local waiter (if err != nil) completes with err.
func (cc *ClientConn) abortStream(s *stream, err error) {
	cc.mu.Lock()
	cs, ok := cc.pending[s.id]
	if ok {
		delete(cc.pending, s.id)
		cs.err = err
	}
	cc.mu.Unlock()
	if ok && err != nil {
		close(cs.done)
	}
	_ = cc.conn.writeRst(s.id, ErrCancel)
	cc.conn.finishStream(s)
}

func (cc *ClientConn) readLoop() {
	var err error
	defer func() {
		cc.mu.Lock()
		if cc.goneAway != nil {
			// The peer announced a graceful shutdown before the read error;
			// that is the real story for anything still pending.
			err = *cc.goneAway
		}
		ga, gotGoAway := err.(GoAwayError)
		cc.readErr = err
		for id, cs := range cc.pending {
			if cs.err == nil && cs.resp == nil {
				if gotGoAway && id > ga.LastStreamID {
					// The peer guarantees it never processed this stream;
					// replaying it on a fresh connection is always safe.
					cs.err = StreamError{StreamID: id, Code: ErrRefusedStream,
						Reason: "unprocessed at GOAWAY"}
				} else {
					cs.err = err
				}
			}
			delete(cc.pending, id)
			close(cs.done)
		}
		// Promises whose pushed response never completed are orphans now —
		// no response can arrive on a dead connection. Dropping them keeps
		// Promised from parking fetches on pushes that will never land.
		in := cc.instr
		for id, req := range cc.promises {
			delete(cc.promises, id)
			in.pushOrphan.Inc()
			if in.trace.Enabled() {
				in.trace.Instant(in.track, "push-orphaned", obs.Arg{Key: "path", Val: req.Path})
			}
		}
		cc.mu.Unlock()
		if in.trace.Enabled() && err != nil {
			in.trace.Instant(in.track, "conn-close", obs.Arg{Key: "reason", Val: err.Error()})
		}
		cc.conn.closeWithError(err)
		close(cc.readDone)
	}()
	for {
		// Reuse-mode reads: f and f.Payload are invalidated by the next
		// ReadFrameReuse, so every dispatch path that keeps payload bytes
		// past this iteration copies them first (stream bodies and partial
		// header blocks append-copy; header blocks decode into strings
		// before the loop comes back around).
		var f *Frame
		f, err = cc.conn.fr.ReadFrameReuse()
		if err != nil {
			return
		}
		if err = cc.dispatch(f); err != nil {
			if ce, ok := err.(ConnError); ok {
				cc.conn.goAway(ce.Code, ce.Reason)
			}
			return
		}
	}
}

func (cc *ClientConn) dispatch(f *Frame) error {
	c := cc.conn
	switch f.Type {
	case FrameSettings:
		return c.handleSettings(f)
	case FrameWindowUpdate:
		return c.handleWindowUpdate(f)
	case FramePing:
		if f.Flags&FlagAck == 0 {
			return c.writeFrame(&Frame{Type: FramePing, Flags: FlagAck, Payload: f.Payload})
		}
		return nil
	case FrameHeaders:
		complete, err := c.beginHeaderBlock(f, 0, f.Payload)
		if err != nil || !complete {
			return err
		}
		return cc.applyHeaders(f.StreamID, f.Payload, f.EndStream())
	case FrameContinuation:
		done, err := c.continueHeaderBlock(f)
		if err != nil || done == nil {
			return err
		}
		if done.promisedID != 0 {
			return cc.applyPushPromise(done.promisedID, done.block)
		}
		return cc.applyHeaders(done.streamID, done.block, done.endStream)
	case FrameData:
		s := c.stream(f.StreamID)
		if s == nil {
			return ConnError{Code: ErrProtocol, Reason: "DATA on unknown stream"}
		}
		s.body = append(s.body, f.Payload...)
		cc.noteProgress(f.StreamID)
		if err := c.consumeData(f.StreamID, len(f.Payload)); err != nil {
			return err
		}
		if f.EndStream() {
			cc.completeStream(f.StreamID, s)
		}
		return nil
	case FramePushPromise:
		if len(f.Payload) < 4 {
			return ConnError{Code: ErrFrameSize, Reason: "short PUSH_PROMISE"}
		}
		promisedID := uint32(f.Payload[0]&0x7f)<<24 | uint32(f.Payload[1])<<16 | uint32(f.Payload[2])<<8 | uint32(f.Payload[3])
		complete, err := c.beginHeaderBlock(f, promisedID, f.Payload[4:])
		if err != nil || !complete {
			return err
		}
		return cc.applyPushPromise(promisedID, f.Payload[4:])
	case FrameRSTStream:
		s := c.stream(f.StreamID)
		if s != nil {
			code, err := parseRst(f.Payload)
			if err != nil {
				return err
			}
			c.mu.Lock()
			s.rst = true
			s.rstCode = code
			c.mu.Unlock()
			c.sendCond.Broadcast()
			cc.failStream(f.StreamID, StreamError{StreamID: f.StreamID, Code: code, Reason: "reset by server"})
		}
		return nil
	case FrameGoAway:
		last, code, debug, err := parseGoAway(f.Payload)
		if err != nil {
			return err
		}
		ga := GoAwayError{LastStreamID: last, Code: code, Reason: debug}
		cc.mu.Lock()
		in := cc.instr
		cc.mu.Unlock()
		in.goaways.Inc()
		if in.trace.Enabled() {
			in.trace.Instant(in.track, "goaway",
				obs.Arg{Key: "code", Val: code.String()},
				obs.Arg{Key: "last", Val: strconv.FormatUint(uint64(last), 10)})
		}
		if code != ErrNone {
			return ga
		}
		// Graceful shutdown: streams above last were never processed — fail
		// them retryable right away — while streams at or below may still
		// complete, so keep reading until the peer closes the connection.
		cc.mu.Lock()
		if cc.goneAway == nil {
			cc.goneAway = &ga
		}
		var refused []*clientStream
		for id, cs := range cc.pending {
			if id > last {
				delete(cc.pending, id)
				cs.err = StreamError{StreamID: id, Code: ErrRefusedStream,
					Reason: "unprocessed at GOAWAY"}
				refused = append(refused, cs)
			}
		}
		cc.mu.Unlock()
		for _, cs := range refused {
			close(cs.done)
		}
		return nil
	default:
		return nil
	}
}

// noteProgress signals body progress to a deadline-bound RoundTrip.
func (cc *ClientConn) noteProgress(id uint32) {
	cc.mu.Lock()
	cs := cc.pending[id]
	cc.mu.Unlock()
	if cs == nil || cs.progress == nil {
		return
	}
	select {
	case cs.progress <- struct{}{}:
	default:
	}
}

// applyHeaders installs a complete response header block.
func (cc *ClientConn) applyHeaders(streamID uint32, block []byte, endStream bool) error {
	fields, err := cc.conn.dec.Decode(block)
	if err != nil {
		return err
	}
	s := cc.conn.stream(streamID)
	if s == nil {
		return ConnError{Code: ErrProtocol, Reason: "HEADERS on unknown stream"}
	}
	s.headers = fields
	cc.mu.Lock()
	cs := cc.pending[streamID]
	cc.mu.Unlock()
	if cs != nil && cs.hdr != nil {
		select {
		case <-cs.hdr:
		default:
			if cs.traced && cs.hdrAt.IsZero() {
				cs.hdrAt = time.Now()
			}
			close(cs.hdr)
		}
	}
	if endStream {
		cc.completeStream(streamID, s)
	}
	return nil
}

// applyPushPromise registers a complete push promise.
func (cc *ClientConn) applyPushPromise(promisedID uint32, block []byte) error {
	fields, err := cc.conn.dec.Decode(block)
	if err != nil {
		return err
	}
	req, err := requestFromFields(fields)
	if err != nil {
		return ConnError{Code: ErrProtocol, Reason: err.Error()}
	}
	cc.conn.remoteStream(promisedID)
	cc.mu.Lock()
	cc.promises[promisedID] = req
	in := cc.instr
	cc.mu.Unlock()
	in.pushPromised.Inc()
	if in.trace.Enabled() {
		in.trace.Instant(in.track, "push-promise", obs.Arg{Key: "path", Val: req.Path})
	}
	return nil
}

// completeStream turns a finished stream into a Response and routes it.
func (cc *ClientConn) completeStream(id uint32, s *stream) {
	resp := &Response{Header: make(map[string][]string), Body: s.body}
	for _, f := range s.headers {
		if f.Name == ":status" {
			resp.Status, _ = strconv.Atoi(f.Value)
			continue
		}
		resp.Header[f.Name] = append(resp.Header[f.Name], f.Value)
	}
	cc.conn.finishStream(s)
	cc.mu.Lock()
	if cs, ok := cc.pending[id]; ok {
		delete(cc.pending, id)
		cs.resp = resp
		cc.mu.Unlock()
		close(cs.done)
		return
	}
	req, promised := cc.promises[id]
	delete(cc.promises, id)
	onPush := cc.OnPush
	in := cc.instr
	cc.mu.Unlock()
	if promised {
		resp.Pushed = true
		resp.Request = req
		in.pushDelivered.Inc()
		if in.trace.Enabled() {
			in.trace.Instant(in.track, "push-delivered", obs.Arg{Key: "path", Val: req.Path})
		}
		if onPush != nil {
			onPush(resp)
		}
	}
}

func (cc *ClientConn) failStream(id uint32, err error) {
	cc.mu.Lock()
	cs, ok := cc.pending[id]
	if ok {
		delete(cc.pending, id)
		cs.err = err
	}
	cc.mu.Unlock()
	if ok {
		close(cs.done)
	}
}

// Promised returns the synthetic request of an outstanding push promise,
// if the server has announced one for the given path.
func (cc *ClientConn) Promised(path string) (*Request, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for _, req := range cc.promises {
		if req.Path == path {
			return req, true
		}
	}
	return nil, false
}
