package h2

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
)

// defaultWindow is the initial flow-control window (RFC 7540 §6.9.2).
const defaultWindow = 65535

// role distinguishes the two connection endpoints.
type role int

const (
	roleClient role = iota
	roleServer
)

// conn is the shared connection core: framing, HPACK state, flow control,
// and the stream table. Server and client wrap it with role-specific
// stream handling.
type conn struct {
	nc net.Conn
	fr *Framer

	role role

	// wmu serializes frame writes; the HPACK encoder state is part of the
	// write stream so it lives under the same lock.
	wmu sync.Mutex
	enc *HPACKEncoder
	// ctrl is reusable scratch for fixed-size control payloads
	// (WINDOW_UPDATE, RST_STREAM), guarded by wmu, so the per-frame
	// bookkeeping writes allocate nothing.
	ctrl [8]byte

	// dec is only touched by the read loop goroutine.
	dec *HPACKDecoder

	// mu guards the stream table and send windows; sendCond wakes writers
	// blocked on flow control.
	mu         sync.Mutex
	sendCond   *sync.Cond
	sendWindow int64
	streams    map[uint32]*stream
	nextID     uint32
	goingAway  bool
	closed     bool
	closeErr   error

	// peerInitialWindow is the peer's SETTINGS_INITIAL_WINDOW_SIZE for
	// new streams we send on.
	peerInitialWindow int64

	// pushEnabled mirrors the peer's SETTINGS_ENABLE_PUSH.
	pushEnabled bool

	// partial is the in-progress cross-frame header block (read side; only
	// touched by the read loop). The struct and its block buffer are
	// reused across header blocks — only one may be open at a time (§6.10)
	// — so CONTINUATION accumulation stops allocating once the buffer has
	// grown to the largest block seen.
	partial     partialHeaders
	partialOpen bool
}

// stream is one HTTP/2 stream's state.
type stream struct {
	id uint32

	// send-side flow control.
	sendWindow int64

	// receive accumulation.
	headers   []HeaderField
	body      []byte
	endStream bool
	rstCode   ErrCode
	rst       bool

	// done closes when the peer half-closes or resets the stream.
	done chan struct{}
}

func newConn(nc net.Conn, r role) *conn {
	c := &conn{
		nc:                nc,
		fr:                NewFramer(nc),
		role:              r,
		enc:               NewHPACKEncoder(),
		dec:               NewHPACKDecoder(),
		sendWindow:        defaultWindow,
		streams:           make(map[uint32]*stream),
		peerInitialWindow: defaultWindow,
		pushEnabled:       true,
	}
	c.sendCond = sync.NewCond(&c.mu)
	if r == roleClient {
		c.nextID = 1
	} else {
		c.nextID = 2
	}
	return c
}

// newStream registers a locally initiated stream.
func (c *conn) newStream() *stream {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID += 2
	s := &stream{id: id, sendWindow: c.peerInitialWindow, done: make(chan struct{})}
	c.streams[id] = s
	return s
}

// remoteStream registers a peer-initiated stream.
func (c *conn) remoteStream(id uint32) *stream {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.streams[id]; ok {
		return s
	}
	s := &stream{id: id, sendWindow: c.peerInitialWindow, done: make(chan struct{})}
	c.streams[id] = s
	return s
}

func (c *conn) stream(id uint32) *stream {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.streams[id]
}

// writeFrame writes one frame under the write lock.
func (c *conn) writeFrame(f *Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.fr.WriteFrame(f)
}

// writeWindowUpdate sends WINDOW_UPDATE from the conn's control scratch —
// it runs twice per received DATA frame, so it must not allocate.
func (c *conn) writeWindowUpdate(streamID, increment uint32) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	binary.BigEndian.PutUint32(c.ctrl[:4], increment&^(1<<31))
	f := Frame{Type: FrameWindowUpdate, StreamID: streamID, Payload: c.ctrl[:4]}
	return c.fr.WriteFrame(&f)
}

// writeRst sends RST_STREAM from the conn's control scratch.
func (c *conn) writeRst(streamID uint32, code ErrCode) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	binary.BigEndian.PutUint32(c.ctrl[:4], uint32(code))
	f := Frame{Type: FrameRSTStream, StreamID: streamID, Payload: c.ctrl[:4]}
	return c.fr.WriteFrame(&f)
}

// writeHeaderBlock writes HEADERS (or PUSH_PROMISE when promisedID != 0),
// splitting oversized header blocks across CONTINUATION frames (§6.10) —
// Vroom's hint headers for complex pages can exceed one frame. The block
// is assembled in a pooled buffer (prefix + HPACK encode in one pass) that
// every frame write slices out of; the frames hit the wire before the
// buffer returns to the pool, so nothing aliases it afterwards.
func (c *conn) writeHeaderBlock(streamID uint32, fields []HeaderField, endStream bool, promisedID uint32) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	maxFrame := c.fr.MaxWriteFrameSize()
	bp := getPayloadBuf()
	defer putPayloadBuf(bp)
	buf := (*bp)[:0]
	typ := FrameHeaders
	var firstFlags uint8
	prefixLen := 0
	if promisedID != 0 {
		typ = FramePushPromise
		buf = append(buf, byte(promisedID>>24)&0x7f, byte(promisedID>>16), byte(promisedID>>8), byte(promisedID))
		prefixLen = 4
	} else if endStream {
		firstFlags |= FlagEndStream
	}
	buf = c.enc.Encode(buf, fields)
	*bp = buf // keep the grown capacity when the buffer goes back
	block := buf[prefixLen:]

	// First frame carries the prefix plus as much of the block as fits.
	first := maxFrame - prefixLen
	if first > len(block) {
		first = len(block)
	}
	rest := block[first:]
	if len(rest) == 0 {
		firstFlags |= FlagEndHeaders
	}
	if err := c.fr.WriteFrame(&Frame{Type: typ, Flags: firstFlags, StreamID: streamID, Payload: buf[:prefixLen+first]}); err != nil {
		return err
	}
	for len(rest) > 0 {
		n := len(rest)
		if n > maxFrame {
			n = maxFrame
		}
		var flags uint8
		if n == len(rest) {
			flags = FlagEndHeaders
		}
		if err := c.fr.WriteFrame(&Frame{Type: FrameContinuation, Flags: flags, StreamID: streamID, Payload: rest[:n]}); err != nil {
			return err
		}
		rest = rest[n:]
	}
	return nil
}

// partialHeaders buffers a header block that spans CONTINUATION frames.
// Only one header block may be open on a connection at a time (§6.10).
type partialHeaders struct {
	streamID   uint32
	promisedID uint32
	endStream  bool
	block      []byte
}

// beginHeaderBlock starts (or completes, if END_HEADERS is already set)
// accumulation of a header block. It returns (complete, payload) where
// complete reports whether the block is ready to decode. body is copied
// into the conn's reusable accumulation buffer, so callers may pass a
// reuse-mode frame payload.
func (c *conn) beginHeaderBlock(f *Frame, promisedID uint32, body []byte) (bool, error) {
	if c.partialOpen {
		return false, ConnError{Code: ErrProtocol, Reason: "HEADERS while another header block is open"}
	}
	if f.Flags&FlagEndHeaders != 0 {
		return true, nil
	}
	c.partialOpen = true
	c.partial.streamID = f.StreamID
	c.partial.promisedID = promisedID
	c.partial.endStream = f.EndStream()
	c.partial.block = append(c.partial.block[:0], body...)
	return false, nil
}

// continueHeaderBlock appends a CONTINUATION frame; when END_HEADERS
// arrives it returns the finished block. The returned struct and its
// block are the conn's reusable accumulation state: they stay valid until
// the next header block opens, which is after the caller (the read loop)
// has decoded them.
func (c *conn) continueHeaderBlock(f *Frame) (*partialHeaders, error) {
	if !c.partialOpen || c.partial.streamID != f.StreamID {
		return nil, ConnError{Code: ErrProtocol, Reason: "CONTINUATION without open header block"}
	}
	c.partial.block = append(c.partial.block, f.Payload...)
	if f.Flags&FlagEndHeaders == 0 {
		return nil, nil
	}
	c.partialOpen = false
	return &c.partial, nil
}

// writeData sends a body with flow control, chunking at the frame size and
// blocking while either window is empty.
func (c *conn) writeData(s *stream, data []byte, endStream bool) error {
	for {
		c.mu.Lock()
		for !c.closed && !s.rst && (c.sendWindow <= 0 || s.sendWindow <= 0) {
			c.sendCond.Wait()
		}
		if c.closed {
			err := c.closeErr
			c.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("h2: connection closed")
			}
			return err
		}
		if s.rst {
			c.mu.Unlock()
			return StreamError{StreamID: s.id, Code: s.rstCode, Reason: "stream reset by peer"}
		}
		n := len(data)
		if max := c.fr.MaxWriteFrameSize(); n > max {
			n = max
		}
		if int64(n) > c.sendWindow {
			n = int(c.sendWindow)
		}
		if int64(n) > s.sendWindow {
			n = int(s.sendWindow)
		}
		c.sendWindow -= int64(n)
		s.sendWindow -= int64(n)
		c.mu.Unlock()

		chunk := data[:n]
		data = data[n:]
		last := len(data) == 0
		var flags uint8
		if last && endStream {
			flags = FlagEndStream
		}
		if err := c.writeFrame(&Frame{Type: FrameData, Flags: flags, StreamID: s.id, Payload: chunk}); err != nil {
			return err
		}
		if last {
			return nil
		}
	}
}

// handleWindowUpdate credits windows and wakes blocked writers.
func (c *conn) handleWindowUpdate(f *Frame) error {
	inc, err := parseWindowUpdate(f.Payload)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.StreamID == 0 {
		c.sendWindow += int64(inc)
	} else if s, ok := c.streams[f.StreamID]; ok {
		s.sendWindow += int64(inc)
	}
	c.sendCond.Broadcast()
	return nil
}

// handleSettings applies peer settings and acks.
func (c *conn) handleSettings(f *Frame) error {
	if f.Flags&FlagAck != 0 {
		return nil
	}
	ss, err := decodeSettings(f.Payload)
	if err != nil {
		return err
	}
	c.mu.Lock()
	for _, s := range ss {
		switch s.ID {
		case SettingInitialWindowSize:
			delta := int64(s.Value) - c.peerInitialWindow
			c.peerInitialWindow = int64(s.Value)
			for _, st := range c.streams {
				st.sendWindow += delta
			}
		case SettingEnablePush:
			c.pushEnabled = s.Value == 1
		case SettingMaxFrameSize:
			// The peer-advertised max governs every frame we send from now
			// on; out-of-range values are a connection error (§6.5.2).
			if err := c.fr.SetMaxWriteFrameSize(s.Value); err != nil {
				c.mu.Unlock()
				return err
			}
		}
	}
	c.sendCond.Broadcast()
	c.mu.Unlock()
	return c.writeFrame(&Frame{Type: FrameSettings, Flags: FlagAck})
}

// consumeData accounts received DATA and replenishes both windows so the
// peer never stalls (the reproduction reads bodies eagerly).
func (c *conn) consumeData(streamID uint32, n int) error {
	if n == 0 {
		return nil
	}
	if err := c.writeWindowUpdate(0, uint32(n)); err != nil {
		return err
	}
	return c.writeWindowUpdate(streamID, uint32(n))
}

// closeWithError tears the connection down and unblocks writers.
func (c *conn) closeWithError(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.closeErr = err
	for _, s := range c.streams {
		select {
		case <-s.done:
		default:
			close(s.done)
		}
	}
	c.sendCond.Broadcast()
	c.mu.Unlock()
	c.nc.Close()
}

// finishStream marks a stream complete and signals waiters.
func (c *conn) finishStream(s *stream) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-s.done:
	default:
		close(s.done)
	}
}

// goAway sends GOAWAY and closes.
func (c *conn) goAway(code ErrCode, reason string) {
	c.mu.Lock()
	last := c.nextID
	c.goingAway = true
	c.mu.Unlock()
	_ = c.writeFrame(&Frame{Type: FrameGoAway, Payload: goAwayPayload(last, code, reason)})
	c.closeWithError(ConnError{Code: code, Reason: reason})
}
