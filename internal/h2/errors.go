package h2

import (
	"errors"
	"fmt"
)

// ErrCode is an HTTP/2 error code (RFC 7540 §7).
type ErrCode uint32

// Error codes.
const (
	ErrNone            ErrCode = 0x0
	ErrProtocol        ErrCode = 0x1
	ErrInternal        ErrCode = 0x2
	ErrFlowControl     ErrCode = 0x3
	ErrSettingsTimeout ErrCode = 0x4
	ErrStreamClosed    ErrCode = 0x5
	ErrFrameSize       ErrCode = 0x6
	ErrRefusedStream   ErrCode = 0x7
	ErrCancel          ErrCode = 0x8
	ErrCompression     ErrCode = 0x9
)

func (c ErrCode) String() string {
	switch c {
	case ErrNone:
		return "NO_ERROR"
	case ErrProtocol:
		return "PROTOCOL_ERROR"
	case ErrInternal:
		return "INTERNAL_ERROR"
	case ErrFlowControl:
		return "FLOW_CONTROL_ERROR"
	case ErrSettingsTimeout:
		return "SETTINGS_TIMEOUT"
	case ErrStreamClosed:
		return "STREAM_CLOSED"
	case ErrFrameSize:
		return "FRAME_SIZE_ERROR"
	case ErrRefusedStream:
		return "REFUSED_STREAM"
	case ErrCancel:
		return "CANCEL"
	case ErrCompression:
		return "COMPRESSION_ERROR"
	}
	return fmt.Sprintf("ERR(0x%x)", uint32(c))
}

// ConnError is a connection-level error: the connection must be torn down
// with GOAWAY.
type ConnError struct {
	Code   ErrCode
	Reason string
}

func (e ConnError) Error() string {
	return fmt.Sprintf("h2: connection error %s: %s", e.Code, e.Reason)
}

// StreamError is a stream-level error: the stream is reset, the connection
// survives.
type StreamError struct {
	StreamID uint32
	Code     ErrCode
	Reason   string
}

func (e StreamError) Error() string {
	return fmt.Sprintf("h2: stream %d error %s: %s", e.StreamID, e.Code, e.Reason)
}

// GoAwayError reports that the peer sent GOAWAY: the connection is done.
// Streams above LastStreamID were never processed and are safe to replay on
// a fresh connection (RFC 7540 §6.8); the client read loop converts those
// to retryable REFUSED_STREAM errors and hands this error to the rest.
type GoAwayError struct {
	LastStreamID uint32
	Code         ErrCode
	Reason       string
}

func (e GoAwayError) Error() string {
	return fmt.Sprintf("h2: GOAWAY %s last-stream %d: %s", e.Code, e.LastStreamID, e.Reason)
}

// TimeoutError reports a client-imposed per-attempt deadline hit. Phase is
// "headers" (no response headers in time) or "body" (transfer stalled after
// headers); the h1 client uses "exchange" for its single whole-response
// deadline.
type TimeoutError struct {
	Phase string
}

func (e *TimeoutError) Error() string { return "h2: attempt timed out awaiting " + e.Phase }

// Timeout implements net.Error's convention.
func (e *TimeoutError) Timeout() bool { return true }

// Retryable classifies whether an idempotent request that failed with err
// is safe to replay. RST_STREAM(REFUSED_STREAM) and streams orphaned above
// a GOAWAY's last-stream-id are guaranteed unprocessed; CANCEL resets and
// whole-connection GOAWAYs are replayable for idempotent methods. Protocol
// integrity failures (ConnError, protocol-class stream resets) are not: a
// replay would hit the same bug.
func Retryable(err error) bool {
	var se StreamError
	if errors.As(err, &se) {
		return se.Code == ErrRefusedStream || se.Code == ErrCancel
	}
	var ga GoAwayError
	if errors.As(err, &ga) {
		return ga.Code == ErrNone || ga.Code == ErrRefusedStream
	}
	return false
}
