package h2

import "fmt"

// ErrCode is an HTTP/2 error code (RFC 7540 §7).
type ErrCode uint32

// Error codes.
const (
	ErrNone            ErrCode = 0x0
	ErrProtocol        ErrCode = 0x1
	ErrInternal        ErrCode = 0x2
	ErrFlowControl     ErrCode = 0x3
	ErrSettingsTimeout ErrCode = 0x4
	ErrStreamClosed    ErrCode = 0x5
	ErrFrameSize       ErrCode = 0x6
	ErrRefusedStream   ErrCode = 0x7
	ErrCancel          ErrCode = 0x8
	ErrCompression     ErrCode = 0x9
)

func (c ErrCode) String() string {
	switch c {
	case ErrNone:
		return "NO_ERROR"
	case ErrProtocol:
		return "PROTOCOL_ERROR"
	case ErrInternal:
		return "INTERNAL_ERROR"
	case ErrFlowControl:
		return "FLOW_CONTROL_ERROR"
	case ErrSettingsTimeout:
		return "SETTINGS_TIMEOUT"
	case ErrStreamClosed:
		return "STREAM_CLOSED"
	case ErrFrameSize:
		return "FRAME_SIZE_ERROR"
	case ErrRefusedStream:
		return "REFUSED_STREAM"
	case ErrCancel:
		return "CANCEL"
	case ErrCompression:
		return "COMPRESSION_ERROR"
	}
	return fmt.Sprintf("ERR(0x%x)", uint32(c))
}

// ConnError is a connection-level error: the connection must be torn down
// with GOAWAY.
type ConnError struct {
	Code   ErrCode
	Reason string
}

func (e ConnError) Error() string {
	return fmt.Sprintf("h2: connection error %s: %s", e.Code, e.Reason)
}

// StreamError is a stream-level error: the stream is reset, the connection
// survives.
type StreamError struct {
	StreamID uint32
	Code     ErrCode
	Reason   string
}

func (e StreamError) Error() string {
	return fmt.Sprintf("h2: stream %d error %s: %s", e.StreamID, e.Code, e.Reason)
}
