// Package h2 implements the subset of HTTP/2 (RFC 7540) and HPACK (RFC
// 7541) that Vroom's wire-level components need: framing, header
// compression with static and dynamic tables, stream multiplexing,
// connection- and stream-level flow control, and — centrally — server push
// via PUSH_PROMISE. It runs over any net.Conn (h2c style; TLS is modeled at
// the netem layer in this reproduction).
//
// Deliberate omissions, documented in DESIGN.md: HPACK Huffman coding
// (literals are always sent uncompressed; a Huffman-coded peer is rejected
// with a clear error), stream priorities (Vroom schedules at the request
// layer instead), and CONTINUATION frames (header blocks are bounded by the
// max frame size).
package h2

import (
	"encoding/binary"
	"fmt"
	"io"
)

// FrameType identifies an HTTP/2 frame type (RFC 7540 §6).
type FrameType uint8

// Frame types.
const (
	FrameData         FrameType = 0x0
	FrameHeaders      FrameType = 0x1
	FramePriority     FrameType = 0x2
	FrameRSTStream    FrameType = 0x3
	FrameSettings     FrameType = 0x4
	FramePushPromise  FrameType = 0x5
	FramePing         FrameType = 0x6
	FrameGoAway       FrameType = 0x7
	FrameWindowUpdate FrameType = 0x8
	FrameContinuation FrameType = 0x9
)

func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "DATA"
	case FrameHeaders:
		return "HEADERS"
	case FramePriority:
		return "PRIORITY"
	case FrameRSTStream:
		return "RST_STREAM"
	case FrameSettings:
		return "SETTINGS"
	case FramePushPromise:
		return "PUSH_PROMISE"
	case FramePing:
		return "PING"
	case FrameGoAway:
		return "GOAWAY"
	case FrameWindowUpdate:
		return "WINDOW_UPDATE"
	case FrameContinuation:
		return "CONTINUATION"
	}
	return fmt.Sprintf("UNKNOWN(0x%x)", uint8(t))
}

// Frame flags (RFC 7540 §6).
const (
	FlagEndStream  = 0x1
	FlagEndHeaders = 0x4
	FlagAck        = 0x1 // SETTINGS and PING
	FlagPadded     = 0x8
)

// maxFrameSize is the fixed SETTINGS_MAX_FRAME_SIZE both ends use.
const maxFrameSize = 16384

// Frame is one HTTP/2 frame.
type Frame struct {
	Type     FrameType
	Flags    uint8
	StreamID uint32
	Payload  []byte
}

// EndStream reports the END_STREAM flag on DATA/HEADERS frames.
func (f *Frame) EndStream() bool { return f.Flags&FlagEndStream != 0 }

// Framer reads and writes frames on a connection. Reads and writes may be
// used concurrently with each other but each direction is single-caller.
type Framer struct {
	r io.Reader
	w io.Writer

	readBuf [9]byte
}

// NewFramer wraps a transport.
func NewFramer(rw io.ReadWriter) *Framer { return &Framer{r: rw, w: rw} }

// ReadFrame reads the next frame, enforcing the max frame size.
func (fr *Framer) ReadFrame() (*Frame, error) {
	if _, err := io.ReadFull(fr.r, fr.readBuf[:]); err != nil {
		return nil, err
	}
	length := uint32(fr.readBuf[0])<<16 | uint32(fr.readBuf[1])<<8 | uint32(fr.readBuf[2])
	if length > maxFrameSize {
		return nil, ConnError{Code: ErrFrameSize, Reason: fmt.Sprintf("frame of %d bytes exceeds max %d", length, maxFrameSize)}
	}
	f := &Frame{
		Type:     FrameType(fr.readBuf[3]),
		Flags:    fr.readBuf[4],
		StreamID: binary.BigEndian.Uint32(fr.readBuf[5:9]) &^ (1 << 31),
	}
	if length > 0 {
		f.Payload = make([]byte, length)
		if _, err := io.ReadFull(fr.r, f.Payload); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// WriteFrame writes one frame.
func (fr *Framer) WriteFrame(f *Frame) error {
	if len(f.Payload) > maxFrameSize {
		return ConnError{Code: ErrFrameSize, Reason: "oversized frame write"}
	}
	var hdr [9]byte
	hdr[0] = byte(len(f.Payload) >> 16)
	hdr[1] = byte(len(f.Payload) >> 8)
	hdr[2] = byte(len(f.Payload))
	hdr[3] = byte(f.Type)
	hdr[4] = f.Flags
	binary.BigEndian.PutUint32(hdr[5:9], f.StreamID&^(1<<31))
	if _, err := fr.w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := fr.w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ClientPreface is the fixed connection preface (RFC 7540 §3.5).
const ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// Settings identifiers (RFC 7540 §6.5.2).
const (
	SettingHeaderTableSize   = 0x1
	SettingEnablePush        = 0x2
	SettingMaxConcurrent     = 0x3
	SettingInitialWindowSize = 0x4
	SettingMaxFrameSize      = 0x5
)

// Setting is one settings parameter.
type Setting struct {
	ID    uint16
	Value uint32
}

// encodeSettings serializes settings into a SETTINGS payload.
func encodeSettings(ss []Setting) []byte {
	buf := make([]byte, 0, len(ss)*6)
	for _, s := range ss {
		var b [6]byte
		binary.BigEndian.PutUint16(b[0:2], s.ID)
		binary.BigEndian.PutUint32(b[2:6], s.Value)
		buf = append(buf, b[:]...)
	}
	return buf
}

// decodeSettings parses a SETTINGS payload.
func decodeSettings(p []byte) ([]Setting, error) {
	if len(p)%6 != 0 {
		return nil, ConnError{Code: ErrFrameSize, Reason: "SETTINGS payload not a multiple of 6"}
	}
	out := make([]Setting, 0, len(p)/6)
	for i := 0; i < len(p); i += 6 {
		out = append(out, Setting{
			ID:    binary.BigEndian.Uint16(p[i : i+2]),
			Value: binary.BigEndian.Uint32(p[i+2 : i+6]),
		})
	}
	return out, nil
}

// windowUpdatePayload builds a WINDOW_UPDATE payload.
func windowUpdatePayload(increment uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], increment&^(1<<31))
	return b[:]
}

// parseWindowUpdate extracts the increment.
func parseWindowUpdate(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, ConnError{Code: ErrFrameSize, Reason: "WINDOW_UPDATE payload must be 4 bytes"}
	}
	return binary.BigEndian.Uint32(p) &^ (1 << 31), nil
}

// goAwayPayload builds a GOAWAY payload.
func goAwayPayload(lastStream uint32, code ErrCode, debug string) []byte {
	b := make([]byte, 8, 8+len(debug))
	binary.BigEndian.PutUint32(b[0:4], lastStream&^(1<<31))
	binary.BigEndian.PutUint32(b[4:8], uint32(code))
	return append(b, debug...)
}

// parseGoAway extracts the last-stream-id, error code, and debug data.
func parseGoAway(p []byte) (lastStream uint32, code ErrCode, debug string, err error) {
	if len(p) < 8 {
		return 0, 0, "", ConnError{Code: ErrFrameSize, Reason: "short GOAWAY"}
	}
	lastStream = binary.BigEndian.Uint32(p[0:4]) &^ (1 << 31)
	code = ErrCode(binary.BigEndian.Uint32(p[4:8]))
	return lastStream, code, string(p[8:]), nil
}

// rstPayload builds a RST_STREAM payload.
func rstPayload(code ErrCode) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(code))
	return b[:]
}

// parseRst extracts the error code from a RST_STREAM payload.
func parseRst(p []byte) (ErrCode, error) {
	if len(p) != 4 {
		return 0, ConnError{Code: ErrFrameSize, Reason: "RST_STREAM payload must be 4 bytes"}
	}
	return ErrCode(binary.BigEndian.Uint32(p)), nil
}
