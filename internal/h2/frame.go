// Package h2 implements the subset of HTTP/2 (RFC 7540) and HPACK (RFC
// 7541) that Vroom's wire-level components need: framing, header
// compression with static and dynamic tables, stream multiplexing,
// connection- and stream-level flow control, and — centrally — server push
// via PUSH_PROMISE. It runs over any net.Conn (h2c style; TLS is modeled at
// the netem layer in this reproduction).
//
// Deliberate omissions, documented in DESIGN.md: HPACK Huffman coding
// (literals are always sent uncompressed; a Huffman-coded peer is rejected
// with a clear error), stream priorities (Vroom schedules at the request
// layer instead), and CONTINUATION frames (header blocks are bounded by the
// max frame size).
package h2

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// FrameType identifies an HTTP/2 frame type (RFC 7540 §6).
type FrameType uint8

// Frame types.
const (
	FrameData         FrameType = 0x0
	FrameHeaders      FrameType = 0x1
	FramePriority     FrameType = 0x2
	FrameRSTStream    FrameType = 0x3
	FrameSettings     FrameType = 0x4
	FramePushPromise  FrameType = 0x5
	FramePing         FrameType = 0x6
	FrameGoAway       FrameType = 0x7
	FrameWindowUpdate FrameType = 0x8
	FrameContinuation FrameType = 0x9
)

func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "DATA"
	case FrameHeaders:
		return "HEADERS"
	case FramePriority:
		return "PRIORITY"
	case FrameRSTStream:
		return "RST_STREAM"
	case FrameSettings:
		return "SETTINGS"
	case FramePushPromise:
		return "PUSH_PROMISE"
	case FramePing:
		return "PING"
	case FrameGoAway:
		return "GOAWAY"
	case FrameWindowUpdate:
		return "WINDOW_UPDATE"
	case FrameContinuation:
		return "CONTINUATION"
	}
	return fmt.Sprintf("UNKNOWN(0x%x)", uint8(t))
}

// Frame flags (RFC 7540 §6).
const (
	FlagEndStream  = 0x1
	FlagEndHeaders = 0x4
	FlagAck        = 0x1 // SETTINGS and PING
	FlagPadded     = 0x8
)

// maxFrameSize is the protocol's initial SETTINGS_MAX_FRAME_SIZE (RFC 7540
// §6.5.2): the value both directions start at until a SETTINGS frame moves
// it, and the floor a peer may never advertise below.
const maxFrameSize = 16384

// absMaxFrameSize is the protocol ceiling for SETTINGS_MAX_FRAME_SIZE
// (2^24-1); values outside [maxFrameSize, absMaxFrameSize] are a
// connection error.
const absMaxFrameSize = 1<<24 - 1

// Frame is one HTTP/2 frame.
type Frame struct {
	Type     FrameType
	Flags    uint8
	StreamID uint32
	Payload  []byte
}

// EndStream reports the END_STREAM flag on DATA/HEADERS frames.
func (f *Frame) EndStream() bool { return f.Flags&FlagEndStream != 0 }

// Framer reads and writes frames on a connection. Reads and writes may be
// used concurrently with each other but each direction is single-caller.
type Framer struct {
	r io.Reader
	w io.Writer

	readBuf  [9]byte
	writeBuf [9]byte

	// frame and payload back ReadFrameReuse: the payload buffer grows to
	// the largest frame seen and is then reused, so steady-state reads
	// allocate nothing.
	frame   Frame
	payload []byte

	// maxRead is the size we advertised to the peer (what it may send us);
	// maxWrite is what the peer advertised (what we may send it). Atomics
	// because SETTINGS arrive on the read loop while writers are active;
	// zero means the protocol initial value so a zero Framer works.
	maxRead  atomic.Uint32
	maxWrite atomic.Uint32
}

// NewFramer wraps a transport.
func NewFramer(rw io.ReadWriter) *Framer { return &Framer{r: rw, w: rw} }

// orDefault maps the unset limit to the protocol initial value.
func orDefault(n uint32) uint32 {
	if n == 0 {
		return maxFrameSize
	}
	return n
}

// SetMaxReadFrameSize raises (or restores) the incoming-frame limit this
// end advertised via SETTINGS_MAX_FRAME_SIZE.
func (fr *Framer) SetMaxReadFrameSize(n uint32) error {
	if n < maxFrameSize || n > absMaxFrameSize {
		return ConnError{Code: ErrProtocol, Reason: fmt.Sprintf("SETTINGS_MAX_FRAME_SIZE %d outside [%d, %d]", n, maxFrameSize, absMaxFrameSize)}
	}
	fr.maxRead.Store(n)
	return nil
}

// SetMaxWriteFrameSize installs the peer-advertised SETTINGS_MAX_FRAME_SIZE
// as the outgoing-frame limit. A peer that lowers its max mid-connection
// immediately shrinks what WriteFrame accepts.
func (fr *Framer) SetMaxWriteFrameSize(n uint32) error {
	if n < maxFrameSize || n > absMaxFrameSize {
		return ConnError{Code: ErrProtocol, Reason: fmt.Sprintf("SETTINGS_MAX_FRAME_SIZE %d outside [%d, %d]", n, maxFrameSize, absMaxFrameSize)}
	}
	fr.maxWrite.Store(n)
	return nil
}

// MaxWriteFrameSize returns the current peer-advertised outgoing limit;
// writers chunk DATA and header blocks at this size.
func (fr *Framer) MaxWriteFrameSize() int { return int(orDefault(fr.maxWrite.Load())) }

// ReadFrame reads the next frame into a fresh Frame whose payload the
// caller owns indefinitely. Prefer ReadFrameReuse on hot read loops.
func (fr *Framer) ReadFrame() (*Frame, error) {
	f := &Frame{}
	if err := fr.readInto(f, false); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFrameReuse reads the next frame into the Framer's reusable Frame.
// The returned Frame and its Payload are valid only until the next
// ReadFrameReuse call: the payload buffer is reused across reads (grown
// only when capacity is insufficient), so any consumer that retains
// payload bytes past the next read must copy them first (copy-on-escape —
// see DESIGN.md "Zero-allocation wire path").
func (fr *Framer) ReadFrameReuse() (*Frame, error) {
	if err := fr.readInto(&fr.frame, true); err != nil {
		return nil, err
	}
	return &fr.frame, nil
}

// readInto decodes one frame. With reuse set the payload lands in fr's
// capacity-grown scratch buffer; otherwise it is freshly allocated.
func (fr *Framer) readInto(f *Frame, reuse bool) error {
	if _, err := io.ReadFull(fr.r, fr.readBuf[:]); err != nil {
		return err
	}
	length := uint32(fr.readBuf[0])<<16 | uint32(fr.readBuf[1])<<8 | uint32(fr.readBuf[2])
	if max := orDefault(fr.maxRead.Load()); length > max {
		return ConnError{Code: ErrFrameSize, Reason: fmt.Sprintf("frame of %d bytes exceeds max %d", length, max)}
	}
	f.Type = FrameType(fr.readBuf[3])
	f.Flags = fr.readBuf[4]
	f.StreamID = binary.BigEndian.Uint32(fr.readBuf[5:9]) &^ (1 << 31)
	f.Payload = nil
	if length > 0 {
		if reuse {
			if cap(fr.payload) < int(length) {
				fr.payload = make([]byte, length)
			}
			f.Payload = fr.payload[:length]
		} else {
			f.Payload = make([]byte, length)
		}
		if _, err := io.ReadFull(fr.r, f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// WriteFrame writes one frame, enforcing the peer-advertised max frame
// size.
func (fr *Framer) WriteFrame(f *Frame) error {
	if max := orDefault(fr.maxWrite.Load()); len(f.Payload) > int(max) {
		return ConnError{Code: ErrFrameSize, Reason: fmt.Sprintf("oversized frame write: %d bytes exceeds peer max %d", len(f.Payload), max)}
	}
	hdr := &fr.writeBuf
	hdr[0] = byte(len(f.Payload) >> 16)
	hdr[1] = byte(len(f.Payload) >> 8)
	hdr[2] = byte(len(f.Payload))
	hdr[3] = byte(f.Type)
	hdr[4] = f.Flags
	binary.BigEndian.PutUint32(hdr[5:9], f.StreamID&^(1<<31))
	if _, err := fr.w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := fr.w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// payloadPool recycles header-block scratch buffers: PUSH_PROMISE/HEADERS
// assembly on the write side and CONTINUATION accumulation on the read
// side. Buffers are pooled as pointers so Get/Put don't allocate slice
// headers.
var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, maxFrameSize)
		return &b
	},
}

// maxPooledPayload caps what goes back into payloadPool so one giant
// header block can't pin memory forever.
const maxPooledPayload = 1 << 20

func getPayloadBuf() *[]byte { return payloadPool.Get().(*[]byte) }

func putPayloadBuf(b *[]byte) {
	if cap(*b) <= maxPooledPayload {
		*b = (*b)[:0]
		payloadPool.Put(b)
	}
}

// ClientPreface is the fixed connection preface (RFC 7540 §3.5).
const ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// Settings identifiers (RFC 7540 §6.5.2).
const (
	SettingHeaderTableSize   = 0x1
	SettingEnablePush        = 0x2
	SettingMaxConcurrent     = 0x3
	SettingInitialWindowSize = 0x4
	SettingMaxFrameSize      = 0x5
)

// Setting is one settings parameter.
type Setting struct {
	ID    uint16
	Value uint32
}

// encodeSettings serializes settings into a SETTINGS payload.
func encodeSettings(ss []Setting) []byte {
	buf := make([]byte, 0, len(ss)*6)
	for _, s := range ss {
		var b [6]byte
		binary.BigEndian.PutUint16(b[0:2], s.ID)
		binary.BigEndian.PutUint32(b[2:6], s.Value)
		buf = append(buf, b[:]...)
	}
	return buf
}

// decodeSettings parses a SETTINGS payload.
func decodeSettings(p []byte) ([]Setting, error) {
	if len(p)%6 != 0 {
		return nil, ConnError{Code: ErrFrameSize, Reason: "SETTINGS payload not a multiple of 6"}
	}
	out := make([]Setting, 0, len(p)/6)
	for i := 0; i < len(p); i += 6 {
		out = append(out, Setting{
			ID:    binary.BigEndian.Uint16(p[i : i+2]),
			Value: binary.BigEndian.Uint32(p[i+2 : i+6]),
		})
	}
	return out, nil
}

// parseWindowUpdate extracts the increment.
func parseWindowUpdate(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, ConnError{Code: ErrFrameSize, Reason: "WINDOW_UPDATE payload must be 4 bytes"}
	}
	return binary.BigEndian.Uint32(p) &^ (1 << 31), nil
}

// goAwayPayload builds a GOAWAY payload.
func goAwayPayload(lastStream uint32, code ErrCode, debug string) []byte {
	b := make([]byte, 8, 8+len(debug))
	binary.BigEndian.PutUint32(b[0:4], lastStream&^(1<<31))
	binary.BigEndian.PutUint32(b[4:8], uint32(code))
	return append(b, debug...)
}

// parseGoAway extracts the last-stream-id, error code, and debug data.
func parseGoAway(p []byte) (lastStream uint32, code ErrCode, debug string, err error) {
	if len(p) < 8 {
		return 0, 0, "", ConnError{Code: ErrFrameSize, Reason: "short GOAWAY"}
	}
	lastStream = binary.BigEndian.Uint32(p[0:4]) &^ (1 << 31)
	code = ErrCode(binary.BigEndian.Uint32(p[4:8]))
	return lastStream, code, string(p[8:]), nil
}

// rstPayload builds a RST_STREAM payload.
func rstPayload(code ErrCode) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(code))
	return b[:]
}

// parseRst extracts the error code from a RST_STREAM payload.
func parseRst(p []byte) (ErrCode, error) {
	if len(p) != 4 {
		return 0, ConnError{Code: ErrFrameSize, Reason: "RST_STREAM payload must be 4 bytes"}
	}
	return ErrCode(binary.BigEndian.Uint32(p)), nil
}
