package h2

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

func TestMaxFrameSizeValidation(t *testing.T) {
	fr := &Framer{}
	for _, bad := range []uint32{0, 1, maxFrameSize - 1, absMaxFrameSize + 1, 1 << 30} {
		var ce ConnError
		if err := fr.SetMaxReadFrameSize(bad); !errors.As(err, &ce) || ce.Code != ErrProtocol {
			t.Errorf("SetMaxReadFrameSize(%d) = %v, want PROTOCOL_ERROR", bad, err)
		}
		if err := fr.SetMaxWriteFrameSize(bad); !errors.As(err, &ce) || ce.Code != ErrProtocol {
			t.Errorf("SetMaxWriteFrameSize(%d) = %v, want PROTOCOL_ERROR", bad, err)
		}
	}
	for _, ok := range []uint32{maxFrameSize, maxFrameSize + 1, absMaxFrameSize} {
		if err := fr.SetMaxReadFrameSize(ok); err != nil {
			t.Errorf("SetMaxReadFrameSize(%d) = %v, want nil", ok, err)
		}
		if err := fr.SetMaxWriteFrameSize(ok); err != nil {
			t.Errorf("SetMaxWriteFrameSize(%d) = %v, want nil", ok, err)
		}
	}
	// A rejected value must not change the effective limit.
	fr2 := &Framer{w: io.Discard}
	_ = fr2.SetMaxWriteFrameSize(1 << 30)
	if got := fr2.MaxWriteFrameSize(); got != maxFrameSize {
		t.Errorf("limit moved to %d after rejected setting", got)
	}
}

// TestWriteFrameRespectsPeerMax covers the negotiation direction the old
// compile-time constant got wrong: a peer that advertises a larger
// SETTINGS_MAX_FRAME_SIZE unlocks bigger writes, and one that lowers it
// again immediately shrinks what WriteFrame accepts.
func TestWriteFrameRespectsPeerMax(t *testing.T) {
	fr := &Framer{w: io.Discard}
	big := &Frame{Type: FrameData, StreamID: 1, Payload: make([]byte, 20000)}

	// Default limit: 20000 bytes is oversized.
	var ce ConnError
	if err := fr.WriteFrame(big); !errors.As(err, &ce) || ce.Code != ErrFrameSize {
		t.Fatalf("oversized write under default limit: %v, want FRAME_SIZE_ERROR", err)
	}
	// Peer raises its max: the same frame now fits.
	if err := fr.SetMaxWriteFrameSize(32768); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteFrame(big); err != nil {
		t.Fatalf("write within raised limit failed: %v", err)
	}
	// Peer lowers its max back down: the write must fail again.
	if err := fr.SetMaxWriteFrameSize(maxFrameSize); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteFrame(big); !errors.As(err, &ce) || ce.Code != ErrFrameSize {
		t.Fatalf("oversized write after peer lowered max: %v, want FRAME_SIZE_ERROR", err)
	}
}

func TestReadFrameEnforcesAdvertisedMax(t *testing.T) {
	encode := func(payloadLen int) []byte {
		var buf bytes.Buffer
		fw := &Framer{w: &buf}
		fw.SetMaxWriteFrameSize(absMaxFrameSize)
		if err := fw.WriteFrame(&Frame{Type: FrameData, StreamID: 1, Payload: make([]byte, payloadLen)}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	wire := encode(20000)

	// Default advertised max: the incoming frame is a FRAME_SIZE_ERROR.
	fr := &Framer{r: bytes.NewReader(wire)}
	var ce ConnError
	if _, err := fr.ReadFrame(); !errors.As(err, &ce) || ce.Code != ErrFrameSize {
		t.Fatalf("oversized read = %v, want FRAME_SIZE_ERROR", err)
	}
	// After advertising a bigger max, the same frame reads fine.
	fr = &Framer{r: bytes.NewReader(wire)}
	if err := fr.SetMaxReadFrameSize(32768); err != nil {
		t.Fatal(err)
	}
	f, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Payload) != 20000 {
		t.Fatalf("payload %d bytes, want 20000", len(f.Payload))
	}
}

// connPair builds two conn cores over a pipe; the remote end is drained so
// acks written by handleSettings never block the test.
func connPair(t *testing.T) (*conn, net.Conn) {
	t.Helper()
	local, remote := net.Pipe()
	c := newConn(local, roleClient)
	t.Cleanup(func() { local.Close(); remote.Close() })
	return c, remote
}

func TestConnAppliesPeerMaxFrameSize(t *testing.T) {
	c, remote := connPair(t)
	go io.Copy(io.Discard, remote) // drain the SETTINGS ack
	f := &Frame{Type: FrameSettings, Payload: encodeSettings([]Setting{{SettingMaxFrameSize, 32768}})}
	if err := c.handleSettings(f); err != nil {
		t.Fatal(err)
	}
	if got := c.fr.MaxWriteFrameSize(); got != 32768 {
		t.Fatalf("write limit %d after peer advertised 32768", got)
	}
}

func TestConnRejectsInvalidMaxFrameSizeSetting(t *testing.T) {
	c, _ := connPair(t)
	f := &Frame{Type: FrameSettings, Payload: encodeSettings([]Setting{{SettingMaxFrameSize, 1024}})}
	var ce ConnError
	if err := c.handleSettings(f); !errors.As(err, &ce) || ce.Code != ErrProtocol {
		t.Fatalf("invalid SETTINGS_MAX_FRAME_SIZE = %v, want PROTOCOL_ERROR", err)
	}
	// The bogus value must not have moved the limit.
	if got := c.fr.MaxWriteFrameSize(); got != maxFrameSize {
		t.Fatalf("write limit %d after rejected setting", got)
	}
}
