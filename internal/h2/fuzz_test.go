package h2

import (
	"bytes"
	"testing"
)

// FuzzHPACKDecode checks the decoder is total: arbitrary header blocks
// either decode or fail cleanly, never panic.
func FuzzHPACKDecode(f *testing.F) {
	enc := NewHPACKEncoder()
	f.Add(enc.Encode(nil, []HeaderField{{":method", "GET"}, {":path", "/"}}))
	f.Add([]byte{0x82, 0x84})       // indexed static fields
	f.Add([]byte{0x40, 0x01, 0x61}) // truncated literal
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x20}) // table size update
	f.Fuzz(func(t *testing.T, block []byte) {
		dec := NewHPACKDecoder()
		fields, err := dec.Decode(block)
		if err == nil {
			for _, hf := range fields {
				_ = hf.Name
			}
		}
	})
}

// FuzzFrameRead checks frame parsing is total on arbitrary bytes.
func FuzzFrameRead(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 5, 1, 4, 0, 0, 0, 1, 'h', 'e', 'l', 'l', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFramer(&rwBuf{data: data})
		for i := 0; i < 100; i++ {
			if _, err := fr.ReadFrame(); err != nil {
				return
			}
		}
	})
}

// FuzzFrameReuse drives the same byte stream through an allocating Framer
// and a reuse-mode Framer side by side. Each reused frame must match the
// allocated one exactly, and mutating the reused payload must never reach
// the allocated copy — if ReadFrame ever handed out a slice aliasing the
// shared scratch buffer, the mutation check catches it. This is the fuzz
// form of the copy-on-escape contract (DESIGN.md "Zero-allocation wire
// path").
func FuzzFrameReuse(f *testing.F) {
	seed := func(frames ...*Frame) []byte {
		var buf bytes.Buffer
		fw := &Framer{w: &buf}
		fw.SetMaxWriteFrameSize(absMaxFrameSize)
		for _, fr := range frames {
			if err := fw.WriteFrame(fr); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	// Sizes shrink and regrow so the reusable buffer is exercised both ways.
	f.Add(seed(
		&Frame{Type: FrameData, StreamID: 1, Payload: []byte("hello world")},
		&Frame{Type: FrameData, StreamID: 1, Payload: []byte("x")},
		&Frame{Type: FramePing, Payload: []byte("12345678")},
		&Frame{Type: FrameData, StreamID: 3, Payload: bytes.Repeat([]byte("z"), 4096)},
	))
	f.Add(seed(&Frame{Type: FrameSettings}))
	// An oversized frame: both framers must reject it identically.
	f.Add(seed(&Frame{Type: FrameData, StreamID: 1, Payload: make([]byte, maxFrameSize+1)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		alloc := NewFramer(&rwBuf{data: data})
		reuse := NewFramer(&rwBuf{data: append([]byte(nil), data...)})
		for i := 0; i < 100; i++ {
			fa, errA := alloc.ReadFrame()
			fb, errB := reuse.ReadFrameReuse()
			if (errA == nil) != (errB == nil) {
				t.Fatalf("read %d diverged: alloc err=%v, reuse err=%v", i, errA, errB)
			}
			if errA != nil {
				return
			}
			if fa.Type != fb.Type || fa.Flags != fb.Flags || fa.StreamID != fb.StreamID ||
				!bytes.Equal(fa.Payload, fb.Payload) {
				t.Fatalf("read %d mismatch:\nalloc %+v\nreuse %+v", i, fa, fb)
			}
			if len(fb.Payload) > 0 {
				// Clobber the reused payload the way the next read would;
				// the allocated frame must be unaffected.
				orig := fa.Payload[0]
				fb.Payload[0] ^= 0xff
				if fa.Payload[0] != orig {
					t.Fatalf("read %d: allocating ReadFrame payload aliases the reuse buffer", i)
				}
			}
		}
	})
}

type rwBuf struct{ data []byte }

func (b *rwBuf) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, errEOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

func (b *rwBuf) Write(p []byte) (int, error) { return len(p), nil }

var errEOF = ConnError{Code: ErrInternal, Reason: "eof"}
