package h2

import "testing"

// FuzzHPACKDecode checks the decoder is total: arbitrary header blocks
// either decode or fail cleanly, never panic.
func FuzzHPACKDecode(f *testing.F) {
	enc := NewHPACKEncoder()
	f.Add(enc.Encode(nil, []HeaderField{{":method", "GET"}, {":path", "/"}}))
	f.Add([]byte{0x82, 0x84})       // indexed static fields
	f.Add([]byte{0x40, 0x01, 0x61}) // truncated literal
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x20}) // table size update
	f.Fuzz(func(t *testing.T, block []byte) {
		dec := NewHPACKDecoder()
		fields, err := dec.Decode(block)
		if err == nil {
			for _, hf := range fields {
				_ = hf.Name
			}
		}
	})
}

// FuzzFrameRead checks frame parsing is total on arbitrary bytes.
func FuzzFrameRead(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 5, 1, 4, 0, 0, 0, 1, 'h', 'e', 'l', 'l', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFramer(&rwBuf{data: data})
		for i := 0; i < 100; i++ {
			if _, err := fr.ReadFrame(); err != nil {
				return
			}
		}
	})
}

type rwBuf struct{ data []byte }

func (b *rwBuf) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, errEOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

func (b *rwBuf) Write(p []byte) (int, error) { return len(p), nil }

var errEOF = ConnError{Code: ErrInternal, Reason: "eof"}
