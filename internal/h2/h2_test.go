package h2

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fr := &Framer{r: &buf, w: &buf}
	in := &Frame{Type: FrameHeaders, Flags: FlagEndHeaders | FlagEndStream, StreamID: 7, Payload: []byte("hello")}
	if err := fr.WriteFrame(in); err != nil {
		t.Fatal(err)
	}
	out, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Flags != in.Flags || out.StreamID != in.StreamID || string(out.Payload) != "hello" {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ uint8, flags uint8, streamID uint32, payload []byte) bool {
		if len(payload) > maxFrameSize {
			payload = payload[:maxFrameSize]
		}
		var buf bytes.Buffer
		fr := &Framer{r: &buf, w: &buf}
		in := &Frame{Type: FrameType(typ), Flags: flags, StreamID: streamID &^ (1 << 31), Payload: payload}
		if err := fr.WriteFrame(in); err != nil {
			return false
		}
		out, err := fr.ReadFrame()
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.Flags == in.Flags &&
			out.StreamID == in.StreamID && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	fr := &Framer{r: &buf, w: &buf}
	if err := fr.WriteFrame(&Frame{Type: FrameData, Payload: make([]byte, maxFrameSize+1)}); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestHPACKRoundTrip(t *testing.T) {
	enc := NewHPACKEncoder()
	dec := NewHPACKDecoder()
	in := []HeaderField{
		{":method", "GET"},
		{":path", "/index.html"},
		{":scheme", "https"},
		{":authority", "www.example.com"},
		{"link", "<https://cdn.example.com/a.js>; rel=preload"},
		{"x-semi-important", "https://t.example.com/tag.js"},
		{"cookie", "session=abc123"},
		{"authorization", "Bearer secret"}, // never-indexed path
	}
	block := enc.Encode(nil, in)
	out, err := dec.Decode(block)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch:\n in=%v\nout=%v", in, out)
	}
	// Second encode should be smaller: dynamic table hits.
	block2 := enc.Encode(nil, in)
	if len(block2) >= len(block) {
		t.Errorf("no dynamic-table compression: first %dB, second %dB", len(block), len(block2))
	}
	out2, err := dec.Decode(block2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out2) {
		t.Fatalf("second decode mismatch: %v", out2)
	}
}

func TestHPACKRoundTripProperty(t *testing.T) {
	enc := NewHPACKEncoder()
	dec := NewHPACKDecoder()
	r := rand.New(rand.NewSource(42))
	names := []string{"x-a", "x-b", "content-type", "link", "etag", "cache-control"}
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(8)
		in := make([]HeaderField, 0, n)
		for j := 0; j < n; j++ {
			in = append(in, HeaderField{
				Name:  names[r.Intn(len(names))],
				Value: fmt.Sprintf("v%d-%d", r.Intn(5), r.Intn(1000)),
			})
		}
		block := enc.Encode(nil, in)
		out, err := dec.Decode(block)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("iteration %d mismatch:\n in=%v\nout=%v", i, in, out)
		}
	}
}

func TestHPACKVarintProperty(t *testing.T) {
	f := func(n uint32, prefix3 uint8) bool {
		prefix := int(prefix3%8) + 1 // 1..8
		pattern := byte(0)
		buf := appendVarint(nil, prefix, pattern, uint64(n))
		got, rest, err := readVarint(buf, prefix)
		return err == nil && len(rest) == 0 && got == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHPACKEviction(t *testing.T) {
	tbl := newDynamicTable()
	tbl.setMaxSize(100)
	tbl.add(HeaderField{"aaaa", strings.Repeat("x", 30)}) // 66 bytes
	tbl.add(HeaderField{"bbbb", strings.Repeat("y", 30)}) // 66 bytes, evicts first
	if tbl.n != 1 || tbl.at(0).Name != "bbbb" {
		t.Fatalf("eviction failed: n=%d", tbl.n)
	}
}

func TestHuffmanRejected(t *testing.T) {
	dec := NewHPACKDecoder()
	// Literal with incremental indexing, new name, huffman bit set.
	block := []byte{0x40, 0x81, 0xff, 0x00}
	if _, err := dec.Decode(block); err == nil {
		t.Fatal("huffman-coded literal accepted")
	}
}

// startServer runs an h2 server on a loopback listener.
func startServer(t *testing.T, h Handler) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: h}
	go srv.Serve(l)
	return l.Addr().String(), func() { srv.Close(); l.Close() }
}

func dialClient(t *testing.T, addr string) *ClientConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewClientConn(nc)
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

func TestRequestResponse(t *testing.T) {
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		if r.Path != "/hello" {
			w.WriteHeader(404)
			return
		}
		w.Header()["content-type"] = []string{"text/plain"}
		w.Write([]byte("hi " + r.Authority))
	}))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	resp, err := cc.RoundTrip(&Request{Method: "GET", Scheme: "http", Authority: "test.local", Path: "/hello"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status %d", resp.Status)
	}
	if string(resp.Body) != "hi test.local" {
		t.Fatalf("body %q", resp.Body)
	}
	if got := resp.Header["content-type"]; len(got) != 1 || got[0] != "text/plain" {
		t.Fatalf("headers %v", resp.Header)
	}
}

func TestConcurrentRequests(t *testing.T) {
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.Write([]byte("resp:" + r.Path))
	}))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/r/%d", i)
			resp, err := cc.RoundTrip(&Request{Method: "GET", Scheme: "http", Authority: "a", Path: path})
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Body) != "resp:"+path {
				errs <- fmt.Errorf("wrong body for %s: %q", path, resp.Body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLargeBodyFlowControl(t *testing.T) {
	// 1 MiB body: forces many DATA frames and WINDOW_UPDATE exchanges
	// (initial window is 64 KiB).
	body := bytes.Repeat([]byte("abcdefgh"), 128*1024)
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.Write(body)
	}))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	resp, err := cc.RoundTrip(&Request{Method: "GET", Scheme: "http", Authority: "a", Path: "/big"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Fatalf("body corrupted: got %d bytes want %d", len(resp.Body), len(body))
	}
}

func TestServerPush(t *testing.T) {
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		pw, err := w.Push(&Request{Scheme: "http", Authority: r.Authority, Path: "/style.css"})
		if err == nil {
			pw.Header()["content-type"] = []string{"text/css"}
			pw.Write([]byte("body{margin:0}"))
			pw.Close()
		}
		w.Write([]byte("<html>"))
	}))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	pushed := make(chan *Response, 1)
	cc.OnPush = func(resp *Response) { pushed <- resp }
	resp, err := cc.RoundTrip(&Request{Method: "GET", Scheme: "http", Authority: "a", Path: "/"})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "<html>" {
		t.Fatalf("main body %q", resp.Body)
	}
	select {
	case p := <-pushed:
		if !p.Pushed {
			t.Error("push not marked")
		}
		if p.Request == nil || p.Request.Path != "/style.css" {
			t.Errorf("push request %+v", p.Request)
		}
		if string(p.Body) != "body{margin:0}" {
			t.Errorf("push body %q", p.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push never delivered")
	}
}

func TestRequestWithBody(t *testing.T) {
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.Write(append([]byte("echo:"), r.Body...))
	}))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	resp, err := cc.RoundTrip(&Request{Method: "POST", Scheme: "http", Authority: "a", Path: "/post", Body: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "echo:payload" {
		t.Fatalf("body %q", resp.Body)
	}
}

func TestPing(t *testing.T) {
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) { w.Close() }))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	// A request after manual PING still works (server echoes the ack).
	if err := cc.conn.writeFrame(&Frame{Type: FramePing, Payload: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.RoundTrip(&Request{Method: "GET", Scheme: "http", Authority: "a", Path: "/"}); err != nil {
		t.Fatal(err)
	}
}

func TestSettingsRoundTrip(t *testing.T) {
	in := []Setting{{SettingEnablePush, 1}, {SettingInitialWindowSize, 1 << 20}}
	out, err := decodeSettings(encodeSettings(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("settings mismatch: %v vs %v", out, in)
	}
	if _, err := decodeSettings([]byte{1, 2, 3}); err == nil {
		t.Fatal("malformed settings accepted")
	}
}

func TestLargeHeaderBlockContinuation(t *testing.T) {
	// >16 KiB of response headers forces CONTINUATION frames — Vroom's
	// dependency hints on complex pages can reach this size.
	var hintValues []string
	for i := 0; i < 400; i++ {
		hintValues = append(hintValues,
			fmt.Sprintf("<https://static.example.com/js/very/long/path/segment/app-%04d-abcdef0123456789.js>; rel=preload", i))
	}
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.Header()["link"] = hintValues
		w.Write([]byte("ok"))
	}))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	resp, err := cc.RoundTrip(&Request{Method: "GET", Scheme: "http", Authority: "a", Path: "/"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Header["link"]) != 400 {
		t.Fatalf("got %d link headers", len(resp.Header["link"]))
	}
	for i, v := range resp.Header["link"] {
		if v != hintValues[i] {
			t.Fatalf("header %d corrupted: %q", i, v)
		}
	}
	if string(resp.Body) != "ok" {
		t.Fatalf("body %q", resp.Body)
	}
}

func TestLargeRequestHeadersContinuation(t *testing.T) {
	big := strings.Repeat("c=1; ", 8000) // ~40 KB cookie
	var gotCookie string
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		if v := r.Header["cookie"]; len(v) > 0 {
			gotCookie = v[0]
		}
		w.Write([]byte("ok"))
	}))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	_, err := cc.RoundTrip(&Request{Method: "GET", Scheme: "http", Authority: "a", Path: "/",
		Header: map[string][]string{"cookie": {big}}})
	if err != nil {
		t.Fatal(err)
	}
	if gotCookie != big {
		t.Fatalf("cookie corrupted: %d vs %d bytes", len(gotCookie), len(big))
	}
}

func TestGoAwayUnblocksPendingRequests(t *testing.T) {
	block := make(chan struct{})
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		<-block // hold the response until the connection dies
	}))
	defer stop()
	defer close(block)
	cc := dialClient(t, addr)
	errCh := make(chan error, 1)
	go func() {
		_, err := cc.RoundTrip(&Request{Method: "GET", Scheme: "http", Authority: "a", Path: "/hang"})
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cc.Close() // tears the connection down; RoundTrip must not hang
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("hung request returned success after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RoundTrip hung after connection close")
	}
}

func TestResponseWriterAfterClientGone(t *testing.T) {
	started := make(chan *ResponseWriter, 1)
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		started <- w
		time.Sleep(100 * time.Millisecond)
		// The client is gone by now; writes must fail, not hang.
		_, _ = w.Write(bytes.Repeat([]byte("x"), 256*1024))
	}))
	defer stop()
	cc := dialClient(t, addr)
	go cc.RoundTrip(&Request{Method: "GET", Scheme: "http", Authority: "a", Path: "/"})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never started")
	}
	cc.Close()
	// Give the server a moment; the test passes if nothing deadlocks and
	// the handler goroutine can finish (verified by the server shutting
	// down cleanly in stop()).
	time.Sleep(300 * time.Millisecond)
}
