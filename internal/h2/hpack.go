package h2

import (
	"fmt"
	"strings"
)

// HeaderField is one HPACK name/value pair. Names are lowercase per HTTP/2.
type HeaderField struct {
	Name  string
	Value string
}

func (f HeaderField) size() int { return len(f.Name) + len(f.Value) + 32 } // RFC 7541 §4.1

// hpackStaticTable is the fixed table of RFC 7541 Appendix A.
var hpackStaticTable = []HeaderField{
	{":authority", ""},
	{":method", "GET"},
	{":method", "POST"},
	{":path", "/"},
	{":path", "/index.html"},
	{":scheme", "http"},
	{":scheme", "https"},
	{":status", "200"},
	{":status", "204"},
	{":status", "206"},
	{":status", "304"},
	{":status", "400"},
	{":status", "404"},
	{":status", "500"},
	{"accept-charset", ""},
	{"accept-encoding", "gzip, deflate"},
	{"accept-language", ""},
	{"accept-ranges", ""},
	{"accept", ""},
	{"access-control-allow-origin", ""},
	{"age", ""},
	{"allow", ""},
	{"authorization", ""},
	{"cache-control", ""},
	{"content-disposition", ""},
	{"content-encoding", ""},
	{"content-language", ""},
	{"content-length", ""},
	{"content-location", ""},
	{"content-range", ""},
	{"content-type", ""},
	{"cookie", ""},
	{"date", ""},
	{"etag", ""},
	{"expect", ""},
	{"expires", ""},
	{"from", ""},
	{"host", ""},
	{"if-match", ""},
	{"if-modified-since", ""},
	{"if-none-match", ""},
	{"if-range", ""},
	{"if-unmodified-since", ""},
	{"last-modified", ""},
	{"link", ""},
	{"location", ""},
	{"max-forwards", ""},
	{"proxy-authenticate", ""},
	{"proxy-authorization", ""},
	{"range", ""},
	{"referer", ""},
	{"refresh", ""},
	{"retry-after", ""},
	{"server", ""},
	{"set-cookie", ""},
	{"strict-transport-security", ""},
	{"transfer-encoding", ""},
	{"user-agent", ""},
	{"vary", ""},
	{"via", ""},
	{"www-authenticate", ""},
}

// defaultHeaderTableSize is SETTINGS_HEADER_TABLE_SIZE's default.
const defaultHeaderTableSize = 4096

// dynamicTable is the HPACK dynamic table. Entries live in a ring buffer
// so inserting at HPACK index 0 (the newest slot) and evicting from the
// tail are both O(1) — the previous slice representation reallocated and
// copied the whole table on every insert. buf[head] is the newest entry;
// the entry at HPACK dynamic offset i (0 = newest) lives at
// buf[(head+i)%len(buf)].
type dynamicTable struct {
	buf     []HeaderField
	head    int
	n       int
	size    int
	maxSize int
}

func newDynamicTable() *dynamicTable {
	return &dynamicTable{maxSize: defaultHeaderTableSize}
}

// at returns the entry at dynamic offset i (0 = newest); caller checks
// i < t.n.
func (t *dynamicTable) at(i int) HeaderField {
	return t.buf[(t.head+i)%len(t.buf)]
}

func (t *dynamicTable) add(f HeaderField) {
	if t.n == len(t.buf) {
		t.grow()
	}
	t.head--
	if t.head < 0 {
		t.head = len(t.buf) - 1
	}
	t.buf[t.head] = f
	t.n++
	t.size += f.size()
	t.evict()
}

// grow doubles the ring, laying entries back out newest-first from slot 0.
func (t *dynamicTable) grow() {
	next := make([]HeaderField, max(8, 2*len(t.buf)))
	for i := 0; i < t.n; i++ {
		next[i] = t.at(i)
	}
	t.buf = next
	t.head = 0
}

func (t *dynamicTable) setMaxSize(n int) {
	t.maxSize = n
	t.evict()
}

func (t *dynamicTable) evict() {
	for t.size > t.maxSize && t.n > 0 {
		oldest := (t.head + t.n - 1) % len(t.buf)
		t.size -= t.buf[oldest].size()
		t.buf[oldest] = HeaderField{} // release the strings
		t.n--
	}
}

// lookup resolves a 1-based HPACK index across static + dynamic tables.
func (t *dynamicTable) lookup(idx int) (HeaderField, error) {
	if idx <= 0 {
		return HeaderField{}, ConnError{Code: ErrCompression, Reason: "hpack index 0"}
	}
	if idx <= len(hpackStaticTable) {
		return hpackStaticTable[idx-1], nil
	}
	d := idx - len(hpackStaticTable) - 1
	if d >= t.n {
		return HeaderField{}, ConnError{Code: ErrCompression, Reason: fmt.Sprintf("hpack index %d out of range", idx)}
	}
	return t.at(d), nil
}

// find returns the best index for a field: exact match (name+value) or
// name-only match, 1-based; 0 if none.
func (t *dynamicTable) find(f HeaderField) (exact int, nameOnly int) {
	for i, s := range hpackStaticTable {
		if s.Name == f.Name {
			if s.Value == f.Value {
				return i + 1, 0
			}
			if nameOnly == 0 {
				nameOnly = i + 1
			}
		}
	}
	for i := 0; i < t.n; i++ {
		s := t.at(i)
		if s.Name == f.Name {
			idx := len(hpackStaticTable) + 1 + i
			if s.Value == f.Value {
				return idx, 0
			}
			if nameOnly == 0 {
				nameOnly = idx
			}
		}
	}
	return 0, nameOnly
}

// HPACKEncoder compresses header lists. It is stateful: the dynamic table
// must stay synchronized with the peer's decoder, so use one encoder per
// connection direction.
type HPACKEncoder struct {
	table *dynamicTable
}

// NewHPACKEncoder returns an encoder with an empty dynamic table.
func NewHPACKEncoder() *HPACKEncoder { return &HPACKEncoder{table: newDynamicTable()} }

// Encode appends the header block for fields to buf.
func (e *HPACKEncoder) Encode(buf []byte, fields []HeaderField) []byte {
	for _, f := range fields {
		f.Name = strings.ToLower(f.Name)
		exact, nameIdx := e.table.find(f)
		switch {
		case exact > 0:
			// Indexed header field (§6.1): 1xxxxxxx.
			buf = appendVarint(buf, 7, 0x80, uint64(exact))
		case sensitive(f.Name):
			// Literal never indexed (§6.2.3): 0001xxxx.
			buf = appendVarint(buf, 4, 0x10, uint64(nameIdx))
			if nameIdx == 0 {
				buf = appendString(buf, f.Name)
			}
			buf = appendString(buf, f.Value)
		default:
			// Literal with incremental indexing (§6.2.1): 01xxxxxx.
			buf = appendVarint(buf, 6, 0x40, uint64(nameIdx))
			if nameIdx == 0 {
				buf = appendString(buf, f.Name)
			}
			buf = appendString(buf, f.Value)
			e.table.add(f)
		}
	}
	return buf
}

// sensitive reports header names that must never enter dynamic tables.
func sensitive(name string) bool {
	return name == "authorization" || name == "set-cookie"
}

// HPACKDecoder decompresses header blocks; one per connection direction.
type HPACKDecoder struct {
	table *dynamicTable
}

// NewHPACKDecoder returns a decoder with an empty dynamic table.
func NewHPACKDecoder() *HPACKDecoder { return &HPACKDecoder{table: newDynamicTable()} }

// Decode parses a complete header block.
func (d *HPACKDecoder) Decode(block []byte) ([]HeaderField, error) {
	var out []HeaderField
	for len(block) > 0 {
		b := block[0]
		switch {
		case b&0x80 != 0: // indexed
			idx, rest, err := readVarint(block, 7)
			if err != nil {
				return nil, err
			}
			f, err := d.table.lookup(int(idx))
			if err != nil {
				return nil, err
			}
			out = append(out, f)
			block = rest
		case b&0xc0 == 0x40: // literal with incremental indexing
			f, rest, err := d.readLiteral(block, 6)
			if err != nil {
				return nil, err
			}
			d.table.add(f)
			out = append(out, f)
			block = rest
		case b&0xe0 == 0x20: // dynamic table size update
			size, rest, err := readVarint(block, 5)
			if err != nil {
				return nil, err
			}
			d.table.setMaxSize(int(size))
			block = rest
		case b&0xf0 == 0x10: // literal never indexed
			f, rest, err := d.readLiteral(block, 4)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
			block = rest
		default: // 0000xxxx: literal without indexing
			f, rest, err := d.readLiteral(block, 4)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
			block = rest
		}
	}
	return out, nil
}

func (d *HPACKDecoder) readLiteral(block []byte, prefix int) (HeaderField, []byte, error) {
	idx, rest, err := readVarint(block, prefix)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var f HeaderField
	if idx > 0 {
		named, err := d.table.lookup(int(idx))
		if err != nil {
			return HeaderField{}, nil, err
		}
		f.Name = named.Name
	} else {
		f.Name, rest, err = readString(rest)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	f.Value, rest, err = readString(rest)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return f, rest, nil
}

// appendVarint encodes n with an N-bit prefix and pattern bits (§5.1).
func appendVarint(buf []byte, prefixBits int, pattern byte, n uint64) []byte {
	limit := uint64(1)<<prefixBits - 1
	if n < limit {
		return append(buf, pattern|byte(n))
	}
	buf = append(buf, pattern|byte(limit))
	n -= limit
	for n >= 128 {
		buf = append(buf, byte(n)|0x80)
		n >>= 7
	}
	return append(buf, byte(n))
}

// readVarint decodes an N-bit-prefix integer.
func readVarint(buf []byte, prefixBits int) (uint64, []byte, error) {
	if len(buf) == 0 {
		return 0, nil, ConnError{Code: ErrCompression, Reason: "truncated integer"}
	}
	limit := uint64(1)<<prefixBits - 1
	n := uint64(buf[0]) & limit
	buf = buf[1:]
	if n < limit {
		return n, buf, nil
	}
	var shift uint
	for {
		if len(buf) == 0 {
			return 0, nil, ConnError{Code: ErrCompression, Reason: "truncated varint continuation"}
		}
		b := buf[0]
		buf = buf[1:]
		n += uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return n, buf, nil
		}
		shift += 7
		if shift > 56 {
			return 0, nil, ConnError{Code: ErrCompression, Reason: "varint overflow"}
		}
	}
}

// appendString encodes a string literal without Huffman coding (§5.2).
func appendString(buf []byte, s string) []byte {
	buf = appendVarint(buf, 7, 0x00, uint64(len(s)))
	return append(buf, s...)
}

// readString decodes a string literal; Huffman-coded strings are rejected
// (this implementation never emits them).
func readString(buf []byte) (string, []byte, error) {
	if len(buf) == 0 {
		return "", nil, ConnError{Code: ErrCompression, Reason: "truncated string"}
	}
	huffman := buf[0]&0x80 != 0
	n, rest, err := readVarint(buf, 7)
	if err != nil {
		return "", nil, err
	}
	if huffman {
		return "", nil, ConnError{Code: ErrCompression, Reason: "huffman-coded literals not supported"}
	}
	if uint64(len(rest)) < n {
		return "", nil, ConnError{Code: ErrCompression, Reason: "string extends past block"}
	}
	return string(rest[:n]), rest[n:], nil
}
