package h2

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// naiveDynamicTable is the obvious slice implementation the ring buffer
// replaced: prepend on add, truncate on evict. It is the executable spec
// for HPACK index semantics — offset 0 is always the newest entry, eviction
// always drops the oldest.
type naiveDynamicTable struct {
	entries []HeaderField
	size    int
	maxSize int
}

func (t *naiveDynamicTable) add(f HeaderField) {
	t.entries = append([]HeaderField{f}, t.entries...)
	t.size += f.size()
	t.evict()
}

func (t *naiveDynamicTable) setMaxSize(n int) {
	t.maxSize = n
	t.evict()
}

func (t *naiveDynamicTable) evict() {
	for t.size > t.maxSize && len(t.entries) > 0 {
		last := t.entries[len(t.entries)-1]
		t.size -= last.size()
		t.entries = t.entries[:len(t.entries)-1]
	}
}

// TestHPACKRingMatchesNaiveTable drives the ring-buffer table and the naive
// reference through the same randomized add/resize sequence and requires
// identical contents, sizes, and lookup/find results after every step — the
// regression proof that the O(1) ring changed nothing observable.
func TestHPACKRingMatchesNaiveTable(t *testing.T) {
	r := rand.New(rand.NewSource(7540))
	ring := newDynamicTable()
	naive := &naiveDynamicTable{maxSize: defaultHeaderTableSize}

	check := func(step int) {
		t.Helper()
		if ring.n != len(naive.entries) || ring.size != naive.size {
			t.Fatalf("step %d: ring n=%d size=%d, naive n=%d size=%d",
				step, ring.n, ring.size, len(naive.entries), naive.size)
		}
		for i := 0; i < ring.n; i++ {
			if ring.at(i) != naive.entries[i] {
				t.Fatalf("step %d: offset %d: ring %v, naive %v", step, i, ring.at(i), naive.entries[i])
			}
		}
		// 1-based lookup across static + dynamic, including out-of-range.
		for _, idx := range []int{0, 1, len(hpackStaticTable), len(hpackStaticTable) + 1,
			len(hpackStaticTable) + ring.n, len(hpackStaticTable) + ring.n + 1} {
			got, gotErr := ring.lookup(idx)
			var want HeaderField
			var wantErr bool
			switch {
			case idx <= 0:
				wantErr = true
			case idx <= len(hpackStaticTable):
				want = hpackStaticTable[idx-1]
			case idx-len(hpackStaticTable)-1 < len(naive.entries):
				want = naive.entries[idx-len(hpackStaticTable)-1]
			default:
				wantErr = true
			}
			if (gotErr != nil) != wantErr || got != want {
				t.Fatalf("step %d: lookup(%d) = %v, %v; want %v, err=%v", step, idx, got, gotErr, want, wantErr)
			}
		}
	}

	names := []string{"x-a", "x-b", "link", "etag", "content-type"}
	for step := 0; step < 2000; step++ {
		switch r.Intn(10) {
		case 0:
			// Resize, shrinking sometimes to force bulk eviction.
			sz := r.Intn(600)
			ring.setMaxSize(sz)
			naive.setMaxSize(sz)
		default:
			f := HeaderField{
				Name:  names[r.Intn(len(names))],
				Value: strings.Repeat("v", r.Intn(120)) + fmt.Sprint(r.Intn(50)),
			}
			ring.add(f)
			naive.add(f)
			// find must agree with a scan of the reference layout.
			exact, nameOnly := ring.find(f)
			wantExact, wantName := naive.find(f)
			if exact != wantExact || nameOnly != wantName {
				t.Fatalf("step %d: find(%v) = (%d, %d), want (%d, %d)", step, f, exact, nameOnly, wantExact, wantName)
			}
		}
		check(step)
	}
}

// find mirrors dynamicTable.find against the naive layout.
func (t *naiveDynamicTable) find(f HeaderField) (exact, nameOnly int) {
	for i, s := range hpackStaticTable {
		if s.Name == f.Name {
			if s.Value == f.Value {
				return i + 1, 0
			}
			if nameOnly == 0 {
				nameOnly = i + 1
			}
		}
	}
	for i, s := range t.entries {
		if s.Name == f.Name {
			idx := len(hpackStaticTable) + 1 + i
			if s.Value == f.Value {
				return idx, 0
			}
			if nameOnly == 0 {
				nameOnly = idx
			}
		}
	}
	return 0, nameOnly
}

// TestHPACKRingEvictionOrder pins the eviction order concretely: entries
// leave oldest-first while indices of the survivors shift down, exactly as
// RFC 7541 §4.4 demands.
func TestHPACKRingEvictionOrder(t *testing.T) {
	tbl := newDynamicTable()
	tbl.setMaxSize(3 * (36 + 4)) // room for exactly three 4+4-byte entries
	for _, v := range []string{"v1", "v2", "v3"} {
		tbl.add(HeaderField{"name", v + "xx"})
	}
	wantOrder := func(want ...string) {
		t.Helper()
		if tbl.n != len(want) {
			t.Fatalf("n=%d, want %d", tbl.n, len(want))
		}
		for i, w := range want {
			if got := tbl.at(i).Value; got != w {
				t.Fatalf("offset %d = %q, want %q", i, got, w)
			}
		}
	}
	wantOrder("v3xx", "v2xx", "v1xx")
	// A fourth entry evicts the oldest (v1), not the newest.
	tbl.add(HeaderField{"name", "v4xx"})
	wantOrder("v4xx", "v3xx", "v2xx")
	// Shrinking evicts from the tail until the budget fits.
	tbl.setMaxSize(36 + 4)
	wantOrder("v4xx")
	// An entry bigger than the whole table empties it (§4.4).
	tbl.add(HeaderField{"name", strings.Repeat("x", 200)})
	wantOrder()
}
