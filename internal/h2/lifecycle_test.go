package h2

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// rawServe runs a scripted fake server: it accepts one connection, performs
// the server half of the h2 handshake, and hands the framer to script. Tests
// use it to inject exact frame sequences (RST codes, GOAWAY boundaries) that
// the real Server never emits on demand.
func rawServe(t *testing.T, script func(nc net.Conn, fr *Framer)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		nc, err := l.Accept()
		if err != nil {
			return
		}
		defer l.Close()
		buf := make([]byte, len(ClientPreface))
		if _, err := io.ReadFull(nc, buf); err != nil {
			return
		}
		fr := NewFramer(nc)
		_ = fr.WriteFrame(&Frame{Type: FrameSettings})
		script(nc, fr)
	}()
	return l.Addr().String()
}

func get(path string) *Request {
	return &Request{Method: "GET", Scheme: "http", Authority: "a", Path: path}
}

func TestRSTStreamRetryability(t *testing.T) {
	cases := []struct {
		code      ErrCode
		retryable bool
	}{
		{ErrRefusedStream, true}, // server guarantees it never processed the stream
		{ErrCancel, true},        // idempotent GETs replay safely
		{ErrProtocol, false},     // a replay would hit the same bug
		{ErrInternal, false},
	}
	for _, tc := range cases {
		t.Run(tc.code.String(), func(t *testing.T) {
			addr := rawServe(t, func(nc net.Conn, fr *Framer) {
				defer nc.Close()
				for {
					f, err := fr.ReadFrame()
					if err != nil {
						return
					}
					if f.Type == FrameHeaders {
						_ = fr.WriteFrame(&Frame{Type: FrameRSTStream, StreamID: f.StreamID, Payload: rstPayload(tc.code)})
					}
				}
			})
			cc := dialClient(t, addr)
			defer cc.Close()
			_, err := cc.RoundTrip(get("/r"))
			var se StreamError
			if !errors.As(err, &se) || se.Code != tc.code {
				t.Fatalf("RoundTrip error = %v, want StreamError %s", err, tc.code)
			}
			if got := Retryable(err); got != tc.retryable {
				t.Fatalf("Retryable(%v) = %v, want %v", err, got, tc.retryable)
			}
		})
	}
}

func TestGoAwayMidLoadClassifiesPending(t *testing.T) {
	headersCh := make(chan uint32, 2)
	goCh := make(chan struct{})
	addr := rawServe(t, func(nc net.Conn, fr *Framer) {
		defer nc.Close()
		for n := 0; n < 2; {
			f, err := fr.ReadFrame()
			if err != nil {
				return
			}
			if f.Type == FrameHeaders {
				headersCh <- f.StreamID
				n++
			}
		}
		<-goCh
		// Stream 1 is covered, stream 3 is declared unprocessed.
		_ = fr.WriteFrame(&Frame{Type: FrameGoAway, Payload: goAwayPayload(1, ErrNone, "shedding")})
		time.Sleep(50 * time.Millisecond)
	})
	cc := dialClient(t, addr)
	defer cc.Close()
	err1Ch := make(chan error, 1)
	err3Ch := make(chan error, 1)
	go func() {
		_, err := cc.RoundTrip(get("/a"))
		err1Ch <- err
	}()
	<-headersCh // stream 1 reached the server; the next request gets id 3
	go func() {
		_, err := cc.RoundTrip(get("/b"))
		err3Ch <- err
	}()
	<-headersCh
	close(goCh)

	err3 := <-err3Ch
	var se StreamError
	if !errors.As(err3, &se) || se.Code != ErrRefusedStream {
		t.Fatalf("stream above GOAWAY boundary: %v, want REFUSED_STREAM", err3)
	}
	if !Retryable(err3) {
		t.Fatal("unprocessed stream after GOAWAY must be retryable")
	}
	err1 := <-err1Ch
	var ga GoAwayError
	if !errors.As(err1, &ga) || ga.LastStreamID != 1 {
		t.Fatalf("stream below GOAWAY boundary: %v, want GoAwayError last=1", err1)
	}
	if !Retryable(err1) {
		t.Fatal("graceful GOAWAY must be retryable for idempotent requests")
	}
	// The gone-away connection fails new round trips fast.
	if _, err := cc.RoundTrip(get("/c")); !errors.As(err, &ga) {
		t.Fatalf("round trip on gone-away conn: %v, want GoAwayError", err)
	}
}

func TestGoAwayOrphansPushPromises(t *testing.T) {
	headersSeen := make(chan struct{}, 1)
	sendGoAway := make(chan struct{})
	addr := rawServe(t, func(nc net.Conn, fr *Framer) {
		defer nc.Close()
		enc := NewHPACKEncoder()
		for {
			f, err := fr.ReadFrame()
			if err != nil {
				return
			}
			if f.Type != FrameHeaders {
				continue
			}
			block := enc.Encode(nil, []HeaderField{
				{":method", "GET"}, {":scheme", "http"},
				{":authority", "a"}, {":path", "/push.css"},
			})
			payload := append([]byte{0, 0, 0, 2}, block...)
			_ = fr.WriteFrame(&Frame{Type: FramePushPromise, Flags: FlagEndHeaders, StreamID: f.StreamID, Payload: payload})
			headersSeen <- struct{}{}
			<-sendGoAway
			// The promise never completes: GOAWAY, then the conn dies.
			_ = fr.WriteFrame(&Frame{Type: FrameGoAway, Payload: goAwayPayload(f.StreamID, ErrNone, "bye")})
			return
		}
	})
	cc := dialClient(t, addr)
	defer cc.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := cc.RoundTrip(get("/"))
		errCh <- err
	}()
	<-headersSeen
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := cc.Promised("/push.css"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("push promise never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(sendGoAway)
	<-cc.readDone
	if _, ok := cc.Promised("/push.css"); ok {
		t.Fatal("orphaned push promise survived connection teardown")
	}
	var ga GoAwayError
	if err := <-errCh; !errors.As(err, &ga) || ga.LastStreamID != 1 {
		t.Fatalf("pending stream error = %v, want GoAwayError last=1", err)
	}
}

func TestRoundTripTimeoutHeaders(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		if r.Path == "/slow" {
			<-release
		}
		w.Write([]byte("ok"))
	}))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	_, err := cc.RoundTripTimeout(get("/slow"), 50*time.Millisecond, 0)
	var te *TimeoutError
	if !errors.As(err, &te) || te.Phase != "headers" {
		t.Fatalf("slow headers: %v, want TimeoutError(headers)", err)
	}
	if !te.Timeout() {
		t.Fatal("TimeoutError must report Timeout() = true")
	}
	// The timeout reset only the stream; the connection still works.
	resp, err := cc.RoundTrip(get("/fast"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("conn did not survive a stream timeout: %v (%+v)", err, resp)
	}
}

func TestRoundTripTimeoutBodyStall(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	addr, stop := startServer(t, HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.Write([]byte("partial"))
		<-release
		w.Write([]byte("rest"))
	}))
	defer stop()
	cc := dialClient(t, addr)
	defer cc.Close()
	_, err := cc.RoundTripTimeout(get("/stall"), time.Second, 100*time.Millisecond)
	var te *TimeoutError
	if !errors.As(err, &te) || te.Phase != "body" {
		t.Fatalf("stalled body: %v, want TimeoutError(body)", err)
	}
}

func TestServerDrainFinishesInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		started <- struct{}{}
		<-release
		w.Write([]byte("done"))
	})}
	go srv.Serve(l)
	cc := dialClient(t, l.Addr().String())
	defer cc.Close()
	type result struct {
		resp *Response
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := cc.RoundTrip(get("/hang"))
		resCh <- result{resp, err}
	}()
	<-started
	drained := make(chan struct{})
	go func() {
		srv.Drain(2 * time.Second)
		close(drained)
	}()
	time.Sleep(50 * time.Millisecond) // let the GOAWAY land client-side
	close(release)
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request failed across drain: %v", res.err)
	}
	if string(res.resp.Body) != "done" {
		t.Fatalf("in-flight body %q", res.resp.Body)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed")
	}
	<-cc.readDone
	_, err = cc.RoundTrip(get("/new"))
	var ga GoAwayError
	if !errors.As(err, &ga) || ga.Code != ErrNone {
		t.Fatalf("round trip after drain: %v, want graceful GoAwayError", err)
	}
	if !Retryable(err) {
		t.Fatal("drained-conn error must be retryable")
	}
}

func TestServerDrainRefusesNewStreams(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := &Server{Handler: HandlerFunc(func(w *ResponseWriter, r *Request) {
		started <- struct{}{}
		<-release
		w.Write([]byte("late"))
	})}
	go srv.Serve(l)

	// Raw client: the real one fails fast after GOAWAY, so drive frames by
	// hand to observe the server's refusal of post-drain streams.
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Write([]byte(ClientPreface)); err != nil {
		t.Fatal(err)
	}
	fr := NewFramer(nc)
	if err := fr.WriteFrame(&Frame{Type: FrameSettings}); err != nil {
		t.Fatal(err)
	}
	enc := NewHPACKEncoder()
	reqBlock := func(path string) []byte {
		return enc.Encode(nil, []HeaderField{
			{":method", "GET"}, {":scheme", "http"},
			{":authority", "a"}, {":path", path},
		})
	}
	if err := fr.WriteFrame(&Frame{Type: FrameHeaders, Flags: FlagEndHeaders | FlagEndStream,
		StreamID: 1, Payload: reqBlock("/hang")}); err != nil {
		t.Fatal(err)
	}
	<-started
	go srv.Drain(2 * time.Second)
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("conn died before GOAWAY: %v", err)
		}
		if f.Type != FrameGoAway {
			continue
		}
		last, code, _, err := parseGoAway(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if code != ErrNone || last != 1 {
			t.Fatalf("drain GOAWAY code=%s last=%d, want NO_ERROR last=1", code, last)
		}
		break
	}
	// A stream opened after the drain GOAWAY must be refused, not served.
	if err := fr.WriteFrame(&Frame{Type: FrameHeaders, Flags: FlagEndHeaders | FlagEndStream,
		StreamID: 3, Payload: reqBlock("/new")}); err != nil {
		t.Fatal(err)
	}
	close(release)
	var gotRefused, gotInFlight bool
	for !gotRefused || !gotInFlight {
		f, err := fr.ReadFrame()
		if err != nil {
			break
		}
		switch f.Type {
		case FrameRSTStream:
			if f.StreamID != 3 {
				continue
			}
			code, err := parseRst(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if code != ErrRefusedStream {
				t.Fatalf("post-drain stream reset with %s, want REFUSED_STREAM", code)
			}
			gotRefused = true
		case FrameData:
			if f.StreamID == 1 && f.EndStream() {
				gotInFlight = true
			}
		}
	}
	if !gotRefused {
		t.Fatal("stream opened after drain was not refused")
	}
	if !gotInFlight {
		t.Fatal("in-flight stream did not finish during drain")
	}
}
