package h2

import (
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"vroom/internal/obs"
	"vroom/internal/telemetry"
)

// Server-side metric families.
const (
	metricServerConns   = "vroom_h2_server_conns"
	metricServerStreams = "vroom_h2_server_streams"
	metricServerDrain   = "vroom_h2_server_draining"
	metricServerRefused = "vroom_h2_server_refused_total"
)

// Request is an HTTP/2 request (or the synthetic request of a push
// promise).
type Request struct {
	Method    string
	Scheme    string
	Authority string
	Path      string
	Header    map[string][]string
	Body      []byte
}

// URL reconstructs the request target.
func (r *Request) URL() string { return r.Scheme + "://" + r.Authority + r.Path }

// Response is a complete HTTP/2 response.
type Response struct {
	Status int
	Header map[string][]string
	Body   []byte
	// Pushed marks responses delivered via server push.
	Pushed bool
	// Request echoes what this response answers.
	Request *Request
}

// Handler serves HTTP/2 requests.
type Handler interface {
	ServeH2(w *ResponseWriter, r *Request)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(w *ResponseWriter, r *Request)

// ServeH2 implements Handler.
func (f HandlerFunc) ServeH2(w *ResponseWriter, r *Request) { f(w, r) }

// Server is a minimal HTTP/2 (h2c) server with push support.
type Server struct {
	Handler Handler

	// Overloaded, when set, is consulted before a handler goroutine is
	// started for a new stream; returning true refuses the stream with
	// RST_STREAM(REFUSED_STREAM) — the same retryable refusal draining
	// uses — so a saturated server sheds load before spending a goroutine
	// on it. Set before Serve.
	Overloaded func() bool

	// Trace, when non-nil, records the connection and drain lifecycle on
	// obs.TrackServer (accepts, refused streams, GOAWAY emission). Use
	// obs.NewWall; connections emit concurrently. Set before Serve.
	Trace *obs.Tracer
	// Metrics, when non-nil, exposes live gauges (open connections, active
	// handler streams, draining) and a refused-stream counter. Set before
	// Serve.
	Metrics *telemetry.Registry

	mu    sync.Mutex
	conns map[*serverConn]struct{}
	done  bool

	gConns   *telemetry.Gauge
	gStreams *telemetry.Gauge
	gDrain   *telemetry.Gauge
	cRefused *telemetry.Counter
	instrOK  bool
}

// instruments resolves the server's telemetry handles once, under s.mu.
func (s *Server) instruments() {
	if s.instrOK {
		return
	}
	s.instrOK = true
	if s.Metrics == nil {
		return
	}
	s.Metrics.Describe(metricServerConns, "Open HTTP/2 server connections.")
	s.Metrics.Describe(metricServerStreams, "HTTP/2 handler streams currently running.")
	s.Metrics.Describe(metricServerDrain, "Whether the server is draining (GOAWAY sent).")
	s.Metrics.Describe(metricServerRefused, "Streams refused with REFUSED_STREAM during drain.")
	s.gConns = s.Metrics.Gauge(metricServerConns)
	s.gStreams = s.Metrics.Gauge(metricServerStreams)
	s.gDrain = s.Metrics.Gauge(metricServerDrain)
	s.cRefused = s.Metrics.Counter(metricServerRefused)
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				return nil
			}
			return err
		}
		sc := &serverConn{conn: newConn(nc, roleServer), srv: s}
		s.mu.Lock()
		s.instruments()
		if s.conns == nil {
			s.conns = make(map[*serverConn]struct{})
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.gConns.Inc()
		if s.Trace.Enabled() {
			sc.span = s.Trace.Begin(obs.TrackServer, "conn",
				obs.Arg{Key: "remote", Val: nc.RemoteAddr().String()})
		}
		go sc.serve()
	}
}

// Close shuts down all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.conn.closeWithError(fmt.Errorf("h2: server closed"))
	}
}

// Drain shuts the server down gracefully: every connection gets a GOAWAY
// (NO_ERROR) advertising the last stream its handler actually started, new
// streams are refused with RST_STREAM(REFUSED_STREAM) — which clients
// classify as safely retryable elsewhere — and in-flight handlers get up to
// timeout to finish before the connections close. The caller closes its
// listener; Drain marks the server done so Serve returns nil when it does.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	s.done = true
	s.instruments()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	s.gDrain.Set(1)
	var span obs.Span
	if s.Trace.Enabled() {
		span = s.Trace.Begin(obs.TrackServer, "drain",
			obs.Arg{Key: "conns", Val: strconv.Itoa(len(conns))})
	}
	defer span.End()
	for _, sc := range conns {
		sc.mu.Lock()
		sc.draining = true
		last := sc.lastStarted
		sc.mu.Unlock()
		_ = sc.conn.writeFrame(&Frame{Type: FrameGoAway,
			Payload: goAwayPayload(last, ErrNone, "draining")})
	}
	deadline := time.Now().Add(timeout)
	for _, sc := range conns {
		for {
			sc.mu.Lock()
			active := sc.active
			sc.mu.Unlock()
			if active == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		sc.conn.closeWithError(fmt.Errorf("h2: server drained"))
	}
}

// serverConn handles one accepted connection.
type serverConn struct {
	conn *conn
	srv  *Server

	mu sync.Mutex
	// active counts running handlers; drain waits for it to reach zero.
	active int
	// lastStarted is the highest client stream a handler was started for,
	// advertised in the drain GOAWAY.
	lastStarted uint32
	draining    bool
	// span covers accept to connection close when tracing is on.
	span obs.Span
}

func (sc *serverConn) serve() {
	defer sc.conn.closeWithError(io.EOF)
	defer func() {
		sc.srv.mu.Lock()
		delete(sc.srv.conns, sc)
		sc.srv.mu.Unlock()
		sc.srv.gConns.Dec()
		sc.span.End()
	}()
	// Connection preface: client magic, then SETTINGS both ways.
	buf := make([]byte, len(ClientPreface))
	if _, err := io.ReadFull(sc.conn.nc, buf); err != nil || string(buf) != ClientPreface {
		return
	}
	if err := sc.conn.writeFrame(&Frame{Type: FrameSettings, Payload: encodeSettings(nil)}); err != nil {
		return
	}
	for {
		// Reuse-mode reads: the frame payload is only valid until the next
		// iteration. dispatch copies anything it keeps (request bodies and
		// partial header blocks append-copy; header blocks decode into
		// strings synchronously).
		f, err := sc.conn.fr.ReadFrameReuse()
		if err != nil {
			if ce, ok := err.(ConnError); ok {
				sc.conn.goAway(ce.Code, ce.Reason)
			}
			return
		}
		if err := sc.dispatch(f); err != nil {
			if ce, ok := err.(ConnError); ok {
				sc.conn.goAway(ce.Code, ce.Reason)
			}
			return
		}
	}
}

func (sc *serverConn) dispatch(f *Frame) error {
	c := sc.conn
	switch f.Type {
	case FrameSettings:
		return c.handleSettings(f)
	case FrameWindowUpdate:
		return c.handleWindowUpdate(f)
	case FramePing:
		if f.Flags&FlagAck == 0 {
			return c.writeFrame(&Frame{Type: FramePing, Flags: FlagAck, Payload: f.Payload})
		}
		return nil
	case FrameHeaders:
		if f.StreamID == 0 || f.StreamID%2 == 0 {
			return ConnError{Code: ErrProtocol, Reason: "HEADERS on invalid stream id"}
		}
		complete, err := c.beginHeaderBlock(f, 0, f.Payload)
		if err != nil || !complete {
			return err
		}
		return sc.applyHeaders(f.StreamID, f.Payload, f.EndStream())
	case FrameContinuation:
		done, err := c.continueHeaderBlock(f)
		if err != nil || done == nil {
			return err
		}
		return sc.applyHeaders(done.streamID, done.block, done.endStream)
	case FrameData:
		s := c.stream(f.StreamID)
		if s == nil {
			return ConnError{Code: ErrProtocol, Reason: "DATA on unknown stream"}
		}
		s.body = append(s.body, f.Payload...)
		if err := c.consumeData(f.StreamID, len(f.Payload)); err != nil {
			return err
		}
		if f.EndStream() {
			sc.startHandler(s)
		}
		return nil
	case FrameRSTStream:
		if s := c.stream(f.StreamID); s != nil {
			c.mu.Lock()
			s.rst = true
			c.mu.Unlock()
			c.finishStream(s)
			c.sendCond.Broadcast()
		}
		return nil
	case FrameGoAway:
		return io.EOF
	default:
		return nil // ignore PRIORITY and unknown extension frames
	}
}

// applyHeaders installs a complete, decoded header block on a stream.
func (sc *serverConn) applyHeaders(streamID uint32, block []byte, endStream bool) error {
	fields, err := sc.conn.dec.Decode(block)
	if err != nil {
		return err
	}
	s := sc.conn.remoteStream(streamID)
	s.headers = fields
	if endStream {
		sc.startHandler(s)
	}
	return nil
}

func (sc *serverConn) startHandler(s *stream) {
	sc.mu.Lock()
	if sc.draining || (sc.srv.Overloaded != nil && sc.srv.Overloaded()) {
		// Past the drain GOAWAY or over the admission ceiling: this stream
		// was never processed, so a REFUSED_STREAM reset lets the client
		// replay it safely elsewhere (or later).
		sc.mu.Unlock()
		sc.srv.cRefused.Inc()
		if sc.srv.Trace.Enabled() {
			sc.srv.Trace.Instant(obs.TrackServer, "stream-refused",
				obs.Arg{Key: "stream", Val: strconv.FormatUint(uint64(s.id), 10)})
		}
		_ = sc.conn.writeRst(s.id, ErrRefusedStream)
		return
	}
	if s.id > sc.lastStarted {
		sc.lastStarted = s.id
	}
	sc.mu.Unlock()
	req, err := requestFromFields(s.headers)
	if err != nil {
		_ = sc.conn.writeRst(s.id, ErrProtocol)
		return
	}
	req.Body = s.body
	w := &ResponseWriter{sc: sc, streamID: s.id, header: make(map[string][]string), status: 200}
	handler := sc.srv.Handler
	sc.mu.Lock()
	sc.active++
	sc.mu.Unlock()
	sc.srv.gStreams.Inc()
	go func() {
		defer func() {
			sc.mu.Lock()
			sc.active--
			sc.mu.Unlock()
			sc.srv.gStreams.Dec()
		}()
		if handler != nil {
			handler.ServeH2(w, req)
		}
		_ = w.Close()
	}()
}

// requestFromFields converts decoded HPACK fields into a Request.
func requestFromFields(fields []HeaderField) (*Request, error) {
	req := &Request{Header: make(map[string][]string)}
	for _, f := range fields {
		switch f.Name {
		case ":method":
			req.Method = f.Value
		case ":scheme":
			req.Scheme = f.Value
		case ":authority":
			req.Authority = f.Value
		case ":path":
			req.Path = f.Value
		default:
			if strings.HasPrefix(f.Name, ":") {
				return nil, fmt.Errorf("h2: unknown pseudo-header %q", f.Name)
			}
			req.Header[f.Name] = append(req.Header[f.Name], f.Value)
		}
	}
	if req.Method == "" || req.Path == "" {
		return nil, fmt.Errorf("h2: missing required pseudo-headers")
	}
	return req, nil
}

// ResponseWriter lets a handler reply on its stream and push related
// resources.
type ResponseWriter struct {
	sc       *serverConn
	streamID uint32

	mu          sync.Mutex
	header      map[string][]string
	status      int
	wroteHeader bool
	closed      bool
}

// Header returns the response headers; mutate before the first Write.
func (w *ResponseWriter) Header() map[string][]string { return w.header }

// WriteHeader sets the status and flushes the header block.
func (w *ResponseWriter) WriteHeader(status int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeHeaderLocked(status, false)
}

func (w *ResponseWriter) writeHeaderLocked(status int, endStream bool) error {
	if w.wroteHeader {
		return nil
	}
	w.wroteHeader = true
	w.status = status
	fields := []HeaderField{{Name: ":status", Value: strconv.Itoa(status)}}
	fields = append(fields, sortedFields(w.header)...)
	return w.sc.conn.writeHeaderBlock(w.streamID, fields, endStream, 0)
}

// Write sends body bytes (flushing headers first if needed).
func (w *ResponseWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	if !w.wroteHeader {
		if err := w.writeHeaderLocked(w.status, false); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	w.mu.Unlock()
	s := w.sc.conn.stream(w.streamID)
	if s == nil {
		return 0, fmt.Errorf("h2: write on closed stream %d", w.streamID)
	}
	if err := w.sc.conn.writeData(s, p, false); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close ends the response stream.
func (w *ResponseWriter) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	if !w.wroteHeader {
		err := w.writeHeaderLocked(w.status, true)
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	s := w.sc.conn.stream(w.streamID)
	if s == nil {
		return nil
	}
	return w.sc.conn.writeData(s, nil, true)
}

// Push emits a PUSH_PROMISE for the given request on this response's
// stream and returns a writer for the pushed response. It fails if the
// client disabled push.
func (w *ResponseWriter) Push(req *Request) (*ResponseWriter, error) {
	c := w.sc.conn
	c.mu.Lock()
	enabled := c.pushEnabled
	c.mu.Unlock()
	if !enabled {
		return nil, fmt.Errorf("h2: peer disabled push")
	}
	promised := c.newStream()
	fields := []HeaderField{
		{Name: ":method", Value: orGET(req.Method)},
		{Name: ":scheme", Value: req.Scheme},
		{Name: ":authority", Value: req.Authority},
		{Name: ":path", Value: req.Path},
	}
	fields = append(fields, sortedFields(req.Header)...)
	if err := c.writeHeaderBlock(w.streamID, fields, false, promised.id); err != nil {
		return nil, err
	}
	return &ResponseWriter{sc: w.sc, streamID: promised.id, header: make(map[string][]string), status: 200}, nil
}

func orGET(m string) string {
	if m == "" {
		return "GET"
	}
	return m
}

// sortedFields flattens a header map deterministically.
func sortedFields(h map[string][]string) []HeaderField {
	names := make([]string, 0, len(h))
	for n := range h {
		names = append(names, n)
	}
	// Insertion sort keeps this tiny and allocation-light.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	var out []HeaderField
	for _, n := range names {
		for _, v := range h[n] {
			out = append(out, HeaderField{Name: strings.ToLower(n), Value: v})
		}
	}
	return out
}
