// Package har exports simulated page loads in the HTTP Archive (HAR) 1.2
// format, so waterfalls can be inspected with standard tooling (Chrome
// DevTools' HAR viewer, har-analyzer, etc.).
package har

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"vroom/internal/browser"
)

// Log is the top-level HAR object.
type Log struct {
	Log Body `json:"log"`
}

// Body is the HAR log body.
type Body struct {
	Version string  `json:"version"`
	Creator Creator `json:"creator"`
	Pages   []Page  `json:"pages"`
	Entries []Entry `json:"entries"`
}

// Creator identifies the producing tool.
type Creator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// Page is one page load.
type Page struct {
	StartedDateTime string      `json:"startedDateTime"`
	ID              string      `json:"id"`
	Title           string      `json:"title"`
	PageTimings     PageTimings `json:"pageTimings"`
}

// PageTimings carries onContentLoad/onLoad in milliseconds.
type PageTimings struct {
	OnContentLoad float64 `json:"onContentLoad"`
	OnLoad        float64 `json:"onLoad"`
}

// Entry is one request/response pair.
type Entry struct {
	PageRef         string   `json:"pageref"`
	StartedDateTime string   `json:"startedDateTime"`
	Time            float64  `json:"time"` // total ms
	Request         Request  `json:"request"`
	Response        Response `json:"response"`
	Timings         Timings  `json:"timings"`
}

// Request is the HAR request record.
type Request struct {
	Method      string `json:"method"`
	URL         string `json:"url"`
	HTTPVersion string `json:"httpVersion"`
}

// Response is the HAR response record.
type Response struct {
	Status      int    `json:"status"`
	StatusText  string `json:"statusText"`
	HTTPVersion string `json:"httpVersion"`
	BodySize    int    `json:"bodySize"`
	// Comment marks pushes and cache hits.
	Comment string `json:"comment,omitempty"`
}

// Timings decomposes an entry: we map the scheduler hold to "blocked" and
// the fetch to "wait"/"receive".
type Timings struct {
	Blocked float64 `json:"blocked"`
	DNS     float64 `json:"dns"`
	Connect float64 `json:"connect"`
	Send    float64 `json:"send"`
	Wait    float64 `json:"wait"`
	Receive float64 `json:"receive"`
}

// FromResult converts a finished load into a HAR log. start anchors
// simulated offsets to absolute timestamps.
func FromResult(res browser.Result, pageURL string, start time.Time) *Log {
	page := Page{
		StartedDateTime: start.Format(time.RFC3339Nano),
		ID:              "page_1",
		Title:           pageURL,
		PageTimings: PageTimings{
			OnContentLoad: ms(res.AFT),
			OnLoad:        ms(res.PLT),
		},
	}
	log := &Log{Log: Body{
		Version: "1.2",
		Creator: Creator{Name: "vroom-sim", Version: "1.0"},
		Pages:   []Page{page},
	}}
	for _, rt := range res.Resources {
		if rt.ArrivedAt == 0 {
			continue
		}
		req := rt.RequestedAt
		if req == 0 && rt.PushPromisedAt > 0 {
			req = rt.PushPromisedAt // server-initiated: no client request
		}
		if req == 0 {
			req = rt.DiscoveredAt
		}
		blocked := dur(req - rt.DiscoveredAt)
		// With first-byte recorded, wait is request→headers and receive is
		// headers→last byte; without a response start (failed fetch, cache
		// hit) the whole interval is wait.
		wait := dur(rt.ArrivedAt - req)
		receive := time.Duration(0)
		if rt.FirstByteAt > req && rt.FirstByteAt <= rt.ArrivedAt {
			wait = dur(rt.FirstByteAt - req)
			receive = dur(rt.ArrivedAt - rt.FirstByteAt)
		}
		status, statusText := 200, "OK"
		comment := ""
		if rt.Pushed {
			comment = "pushed"
		}
		if rt.Failed {
			// Terminal transport failure degraded to an error body: HAR
			// uses status 0 for responses that never completed.
			status, statusText = 0, rt.FailReason
			if comment != "" {
				comment += "; "
			}
			comment += "failed: " + rt.FailReason
		}
		entry := Entry{
			PageRef:         "page_1",
			StartedDateTime: start.Add(rt.DiscoveredAt).Format(time.RFC3339Nano),
			Time:            ms(rt.ArrivedAt - rt.DiscoveredAt),
			Request:         Request{Method: "GET", URL: rt.URL, HTTPVersion: "HTTP/2.0"},
			Response: Response{
				Status: status, StatusText: statusText, HTTPVersion: "HTTP/2.0",
				BodySize: rt.Size, Comment: comment,
			},
			Timings: Timings{
				Blocked: ms(blocked),
				DNS:     -1,
				Connect: -1,
				Send:    0,
				Wait:    ms(wait),
				Receive: ms(receive),
			},
		}
		log.Log.Entries = append(log.Log.Entries, entry)
	}
	return log
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func dur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// Write serializes the log as indented JSON.
func (l *Log) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(l); err != nil {
		return fmt.Errorf("har: %w", err)
	}
	return nil
}
