package har

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"vroom/internal/faults"
	"vroom/internal/runner"
	"vroom/internal/webpage"
)

// TestFaultedLoadRoundTrip runs a load under the severe fault regime —
// error bodies, retried fetches, stalled streams — and checks the export
// still round-trips as schema-valid HAR 1.2 with sane timings.
func TestFaultedLoadRoundTrip(t *testing.T) {
	start := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	prof := webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}

	// Scan a few fixed seeds for a load that actually degraded (failed
	// fetches and retries) so the test exercises the faulted entries; the
	// scan is deterministic, so the chosen seed is stable.
	var log *Log
	for seed := int64(1); seed <= 20; seed++ {
		site := webpage.NewSite("harfault", webpage.Top100, 9)
		plan := faults.New(seed, faults.RegimeConfig(faults.RegimeSevere))
		res, err := runner.Run(site, runner.Vroom, runner.Options{
			Time: start, Profile: prof, Nonce: 1, Faults: plan,
		})
		if err != nil {
			continue // a load that never finishes is not exportable
		}
		if res.FailedFetches == 0 || res.Retries == 0 {
			continue
		}
		log = FromResult(res, site.RootURL().String(), start)
		break
	}
	if log == nil {
		t.Fatal("no seed in 1..20 produced a finished load with failures and retries")
	}

	var buf bytes.Buffer
	if err := log.Write(&buf); err != nil {
		t.Fatal(err)
	}

	// Round-trip: the emitted JSON must decode back into the same shape.
	var back Log
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if back.Log.Version != "1.2" {
		t.Fatalf("version %q, want 1.2", back.Log.Version)
	}
	if len(back.Log.Entries) != len(log.Log.Entries) {
		t.Fatalf("round-trip lost entries: %d != %d", len(back.Log.Entries), len(log.Log.Entries))
	}

	// Schema-level checks on the raw JSON: required HAR 1.2 fields present
	// on every entry.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	lg := raw["log"].(map[string]any)
	for _, key := range []string{"version", "creator", "pages", "entries"} {
		if _, ok := lg[key]; !ok {
			t.Fatalf("missing log.%s", key)
		}
	}
	for i, e := range lg["entries"].([]any) {
		entry := e.(map[string]any)
		for _, key := range []string{"startedDateTime", "time", "request", "response", "timings"} {
			if _, ok := entry[key]; !ok {
				t.Fatalf("entry %d missing %q", i, key)
			}
		}
		tm := entry["timings"].(map[string]any)
		for _, key := range []string{"blocked", "wait", "receive"} {
			if v, ok := tm[key].(float64); !ok || v < -1 {
				t.Fatalf("entry %d timings.%s = %v", i, key, tm[key])
			}
		}
	}

	// The degraded fetches must surface: status 0 + a failure comment.
	failed := 0
	for _, e := range back.Log.Entries {
		if e.Response.Status == 0 {
			failed++
			if !strings.Contains(e.Response.Comment, "failed:") {
				t.Errorf("failed entry without failure comment: %+v", e.Response)
			}
		}
	}
	if failed == 0 {
		t.Error("no failed entries exported despite FailedFetches > 0")
	}

	// And the span-derived receive phase must be populated somewhere: a
	// successful transfer has headers before last byte.
	gotReceive := false
	for _, e := range back.Log.Entries {
		if e.Timings.Receive > 0 {
			gotReceive = true
			break
		}
	}
	if !gotReceive {
		t.Error("no entry has timings.receive > 0; first-byte data not flowing into the export")
	}
}
