package har

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"vroom/internal/runner"
	"vroom/internal/webpage"
)

func TestFromResultAndWrite(t *testing.T) {
	site := webpage.NewSite("hartest", webpage.Top100, 9)
	start := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	res, err := runner.Run(site, runner.Vroom, runner.Options{
		Time: start, Profile: webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, Nonce: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := FromResult(res, site.RootURL().String(), start)
	if len(log.Log.Entries) == 0 {
		t.Fatal("no entries")
	}
	if log.Log.Pages[0].PageTimings.OnLoad <= 0 {
		t.Fatal("no onLoad timing")
	}
	var buf bytes.Buffer
	if err := log.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must be valid JSON with the HAR skeleton.
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	lg, ok := parsed["log"].(map[string]any)
	if !ok || lg["version"] != "1.2" {
		t.Fatalf("bad HAR skeleton: %v", parsed)
	}
	// Entry times must be non-negative and bounded by PLT.
	for _, e := range log.Log.Entries {
		if e.Time < 0 || e.Timings.Blocked < 0 || e.Timings.Wait < 0 {
			t.Fatalf("negative timing: %+v", e)
		}
		if e.Time > log.Log.Pages[0].PageTimings.OnLoad+1 {
			t.Fatalf("entry longer than the page load: %+v", e)
		}
	}
	// Pushes are annotated.
	pushed := 0
	for _, e := range log.Log.Entries {
		if e.Response.Comment == "pushed" {
			pushed++
		}
	}
	if pushed == 0 {
		t.Error("no pushed entries annotated under the vroom policy")
	}
}
