package hints

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary header values at Parse. Hint headers arrive
// off the wire, so Parse must never panic, never exceed its caps, and never
// return a hint whose URL would not itself parse.
func FuzzParse(f *testing.F) {
	f.Add("<https://a.com/x.js>; rel=preload", "https://a.com/tag.js", "https://a.com/i.jpg")
	f.Add("<https://a.com/x.js>; rel=\"preload prefetch\"; as=script", "", "")
	f.Add("garbage", "not a url", "data:text/plain,hi")
	f.Add("<no-close; rel=preload", "https://a.com/a\nhttps://a.com/b", "//scheme-relative/x")
	f.Add("<>; rel=preload", "http://"+strings.Repeat("h", 5000)+".com/", "https://a.com/?q=1")
	f.Fuzz(func(t *testing.T, link, semi, low string) {
		headers := map[string][]string{
			HeaderLink: strings.Split(link, "\n"),
			HeaderSemi: strings.Split(semi, "\n"),
			HeaderLow:  strings.Split(low, "\n"),
		}
		out := Parse(headers)
		if len(out) > MaxHints {
			t.Fatalf("cap exceeded: %d hints", len(out))
		}
		seen := make(map[string]bool, len(out))
		for _, h := range out {
			if h.URL.IsZero() {
				t.Fatalf("zero URL in output: %+v", h)
			}
			if h.Priority != High && h.Priority != Semi && h.Priority != Low {
				t.Fatalf("invalid priority: %+v", h)
			}
			s := h.URL.String()
			if seen[s] {
				t.Fatalf("duplicate hint survived: %s", s)
			}
			seen[s] = true
		}
		// Round-trip stability: formatting the parsed hints and parsing
		// again must be a fixed point.
		again := Parse(Format(out))
		if len(again) != len(out) {
			t.Fatalf("re-parse changed hint count: %d -> %d", len(out), len(again))
		}
	})
}
