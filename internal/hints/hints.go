// Package hints defines Vroom's dependency-hint vocabulary (Table 1 of the
// paper): the three priority classes and the HTTP headers that carry them,
// shared by the simulation and by the real-wire HTTP/2 server and client.
package hints

import (
	"fmt"
	"sort"
	"strings"

	"vroom/internal/urlutil"
)

// Priority is the fetch-priority class of a hinted dependency.
type Priority int

// Priorities, in decreasing order of importance (Table 1).
const (
	// High covers resources that must be parsed or executed (HTML, CSS,
	// synchronous JS). Carried in "Link: <url>; rel=preload".
	High Priority = iota
	// Semi covers resources that are processed but lazily fetched (async
	// or deferred scripts, lazily applied CSS). Carried in
	// "x-semi-important".
	Semi
	// Low covers resources that need no processing (images, fonts, media,
	// data). Carried in "x-unimportant".
	Low
)

func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Semi:
		return "semi"
	case Low:
		return "low"
	}
	return "unknown"
}

// Header names used on the wire. Servers must also expose the custom
// headers via Access-Control-Expose-Headers for cross-origin reads (§5.2).
const (
	HeaderLink   = "link"
	HeaderSemi   = "x-semi-important"
	HeaderLow    = "x-unimportant"
	HeaderExpose = "access-control-expose-headers"
)

// ExposeValue is the Access-Control-Expose-Headers value Vroom responses
// carry.
const ExposeValue = "Link, x-semi-important, x-unimportant"

// Hint is one dependency hint: a URL the client should fetch, with its
// priority. Hints within a priority class are ordered by the order the
// client will process the resources (§5.1).
type Hint struct {
	URL      urlutil.URL
	Priority Priority
}

// Sort orders hints by (priority, original order), stably.
func Sort(hs []Hint) {
	sort.SliceStable(hs, func(i, j int) bool { return hs[i].Priority < hs[j].Priority })
}

// Format renders hints as HTTP header fields, one entry per hinted URL,
// preserving order within each header.
func Format(hs []Hint) map[string][]string {
	out := make(map[string][]string, 3)
	for _, h := range hs {
		switch h.Priority {
		case High:
			out[HeaderLink] = append(out[HeaderLink], fmt.Sprintf("<%s>; rel=preload", h.URL))
		case Semi:
			out[HeaderSemi] = append(out[HeaderSemi], h.URL.String())
		default:
			out[HeaderLow] = append(out[HeaderLow], h.URL.String())
		}
	}
	if len(out) > 0 {
		out[HeaderExpose] = []string{ExposeValue}
	}
	return out
}

// Parse reconstructs hints from HTTP headers produced by Format. Unparsable
// entries are skipped; order within each priority class is preserved.
func Parse(headers map[string][]string) []Hint {
	var hs []Hint
	for _, v := range headers[HeaderLink] {
		if u, ok := parseLinkPreload(v); ok {
			hs = append(hs, Hint{URL: u, Priority: High})
		}
	}
	for _, v := range headers[HeaderSemi] {
		if u, err := urlutil.Parse(v); err == nil {
			hs = append(hs, Hint{URL: u, Priority: Semi})
		}
	}
	for _, v := range headers[HeaderLow] {
		if u, err := urlutil.Parse(v); err == nil {
			hs = append(hs, Hint{URL: u, Priority: Low})
		}
	}
	return hs
}

// parseLinkPreload parses a single `<url>; rel=preload` Link value.
func parseLinkPreload(v string) (urlutil.URL, bool) {
	v = strings.TrimSpace(v)
	if !strings.HasPrefix(v, "<") {
		return urlutil.URL{}, false
	}
	end := strings.IndexByte(v, '>')
	if end < 0 {
		return urlutil.URL{}, false
	}
	rest := strings.ToLower(v[end+1:])
	if !strings.Contains(rest, "rel=preload") && !strings.Contains(rest, `rel="preload"`) {
		return urlutil.URL{}, false
	}
	u, err := urlutil.Parse(v[1:end])
	if err != nil {
		return urlutil.URL{}, false
	}
	return u, true
}
