// Package hints defines Vroom's dependency-hint vocabulary (Table 1 of the
// paper): the three priority classes and the HTTP headers that carry them,
// shared by the simulation and by the real-wire HTTP/2 server and client.
package hints

import (
	"fmt"
	"sort"
	"strings"

	"vroom/internal/urlutil"
)

// Priority is the fetch-priority class of a hinted dependency.
type Priority int

// Priorities, in decreasing order of importance (Table 1).
const (
	// High covers resources that must be parsed or executed (HTML, CSS,
	// synchronous JS). Carried in "Link: <url>; rel=preload".
	High Priority = iota
	// Semi covers resources that are processed but lazily fetched (async
	// or deferred scripts, lazily applied CSS). Carried in
	// "x-semi-important".
	Semi
	// Low covers resources that need no processing (images, fonts, media,
	// data). Carried in "x-unimportant".
	Low
)

func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Semi:
		return "semi"
	case Low:
		return "low"
	}
	return "unknown"
}

// Header names used on the wire. Servers must also expose the custom
// headers via Access-Control-Expose-Headers for cross-origin reads (§5.2).
const (
	HeaderLink   = "link"
	HeaderSemi   = "x-semi-important"
	HeaderLow    = "x-unimportant"
	HeaderExpose = "access-control-expose-headers"
)

// ExposeValue is the Access-Control-Expose-Headers value Vroom responses
// carry.
const ExposeValue = "Link, x-semi-important, x-unimportant"

// Hint is one dependency hint: a URL the client should fetch, with its
// priority. Hints within a priority class are ordered by the order the
// client will process the resources (§5.1).
type Hint struct {
	URL      urlutil.URL
	Priority Priority
}

// Sort orders hints by (priority, original order), stably.
func Sort(hs []Hint) {
	sort.SliceStable(hs, func(i, j int) bool { return hs[i].Priority < hs[j].Priority })
}

// Format renders hints as HTTP header fields, one entry per hinted URL,
// preserving order within each header.
func Format(hs []Hint) map[string][]string {
	out := make(map[string][]string, 3)
	for _, h := range hs {
		switch h.Priority {
		case High:
			out[HeaderLink] = append(out[HeaderLink], fmt.Sprintf("<%s>; rel=preload", h.URL))
		case Semi:
			out[HeaderSemi] = append(out[HeaderSemi], h.URL.String())
		default:
			out[HeaderLow] = append(out[HeaderLow], h.URL.String())
		}
	}
	if len(out) > 0 {
		out[HeaderExpose] = []string{ExposeValue}
	}
	return out
}

// Limits applied while parsing untrusted headers. Hints are advisory, so a
// hostile or corrupted response must not be able to balloon the client's
// bookkeeping: entries past MaxHints and URLs longer than MaxURLLen are
// dropped rather than rejected wholesale.
const (
	// MaxHints bounds the total number of hints Parse returns. Real pages
	// top out in the low hundreds of resources; anything past this is junk.
	MaxHints = 512
	// MaxURLLen bounds a single hinted URL, matching common server-side
	// request-line limits.
	MaxURLLen = 4096
)

// Parse reconstructs hints from HTTP headers produced by Format. Parsing is
// defensive — hint headers cross the network and may be truncated, duplicated
// or hostile. Unparsable and oversized entries are skipped, duplicate URLs
// keep only their first (highest-priority) occurrence, and the result is
// capped at MaxHints. Order within each priority class is preserved.
func Parse(headers map[string][]string) []Hint {
	var hs []Hint
	seen := make(map[urlutil.URL]bool)
	add := func(u urlutil.URL, p Priority) {
		if len(hs) >= MaxHints || seen[u] {
			return
		}
		seen[u] = true
		hs = append(hs, Hint{URL: u, Priority: p})
	}
	for _, v := range headers[HeaderLink] {
		if u, ok := parseLinkPreload(v); ok {
			add(u, High)
		}
	}
	for _, v := range headers[HeaderSemi] {
		if u, ok := parsePlainURL(v); ok {
			add(u, Semi)
		}
	}
	for _, v := range headers[HeaderLow] {
		if u, ok := parsePlainURL(v); ok {
			add(u, Low)
		}
	}
	return hs
}

// parsePlainURL parses a bare-URL header value with the size cap applied.
func parsePlainURL(v string) (urlutil.URL, bool) {
	v = strings.TrimSpace(v)
	if v == "" || len(v) > MaxURLLen {
		return urlutil.URL{}, false
	}
	u, err := urlutil.Parse(v)
	if err != nil {
		return urlutil.URL{}, false
	}
	return u, true
}

// parseLinkPreload parses a single `<url>; rel=preload` Link value. The rel
// parameter is matched as a whole token — `rel=preloader` or a `rel=` list
// that merely contains the substring does not qualify.
func parseLinkPreload(v string) (urlutil.URL, bool) {
	v = strings.TrimSpace(v)
	if !strings.HasPrefix(v, "<") {
		return urlutil.URL{}, false
	}
	end := strings.IndexByte(v, '>')
	if end < 0 || end-1 > MaxURLLen {
		return urlutil.URL{}, false
	}
	if !relIsPreload(v[end+1:]) {
		return urlutil.URL{}, false
	}
	u, err := urlutil.Parse(v[1:end])
	if err != nil {
		return urlutil.URL{}, false
	}
	return u, true
}

// relIsPreload reports whether the parameter list after the <url> part
// carries rel=preload. RFC 8288 rel values are space-separated lists and may
// be quoted; empty rel values never match.
func relIsPreload(params string) bool {
	for _, param := range strings.Split(params, ";") {
		param = strings.TrimSpace(param)
		k, val, ok := strings.Cut(param, "=")
		if !ok || !strings.EqualFold(strings.TrimSpace(k), "rel") {
			continue
		}
		val = strings.TrimSpace(val)
		val = strings.Trim(val, `"`)
		for _, rel := range strings.Fields(val) {
			if strings.EqualFold(rel, "preload") {
				return true
			}
		}
	}
	return false
}
