package hints

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"vroom/internal/urlutil"
)

func mk(u string, p Priority) Hint {
	return Hint{URL: urlutil.MustParse(u), Priority: p}
}

func TestFormatParseRoundTrip(t *testing.T) {
	in := []Hint{
		mk("https://static.a.com/app.js", High),
		mk("https://cdn.b.com/lib.js", High),
		mk("https://t.c.com/tag.js", Semi),
		mk("https://img.a.com/hero.jpg", Low),
		mk("https://ads.d.com/slot.html", Low),
	}
	headers := Format(in)
	if len(headers[HeaderLink]) != 2 || len(headers[HeaderSemi]) != 1 || len(headers[HeaderLow]) != 2 {
		t.Fatalf("headers: %v", headers)
	}
	if headers[HeaderExpose][0] != ExposeValue {
		t.Fatalf("expose header: %v", headers[HeaderExpose])
	}
	out := Parse(headers)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in=%v\nout=%v", in, out)
	}
}

func TestFormatParsePropertyPreservesOrder(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%20) + 1
		var in []Hint
		for i := 0; i < count; i++ {
			u := urlutil.URL{Scheme: "https", Host: "h.com", Path: "/r" + string(rune('a'+i%26))}
			in = append(in, Hint{URL: u, Priority: Priority(i % 3)})
		}
		Sort(in)
		out := Parse(Format(in))
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortStable(t *testing.T) {
	in := []Hint{
		mk("https://a.com/1.jpg", Low),
		mk("https://a.com/1.js", High),
		mk("https://a.com/2.js", High),
		mk("https://a.com/2.jpg", Low),
	}
	Sort(in)
	if in[0].URL.Path != "/1.js" || in[1].URL.Path != "/2.js" {
		t.Fatalf("high hints reordered: %v", in)
	}
	if in[2].URL.Path != "/1.jpg" || in[3].URL.Path != "/2.jpg" {
		t.Fatalf("low hints reordered: %v", in)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	headers := map[string][]string{
		HeaderLink: {
			"<https://a.com/x.js>; rel=preload",
			"garbage",
			"<no-close; rel=preload",
			"<https://a.com/y.css>; rel=stylesheet", // not preload
		},
		HeaderSemi: {"not a url", "https://a.com/tag.js"},
		HeaderLow:  {"", "https://a.com/i.jpg"},
	}
	out := Parse(headers)
	if len(out) != 3 {
		t.Fatalf("parsed %d hints: %v", len(out), out)
	}
}

func TestEmptyFormat(t *testing.T) {
	if h := Format(nil); len(h) != 0 {
		t.Fatalf("empty hints produced headers: %v", h)
	}
}

func TestParseRelTokenMatching(t *testing.T) {
	cases := []struct {
		value string
		want  bool
	}{
		{"<https://a.com/x.js>; rel=preload", true},
		{`<https://a.com/x.js>; rel="preload"`, true},
		{`<https://a.com/x.js>; rel="preload prefetch"`, true},
		{`<https://a.com/x.js>; rel="prefetch preload"; as=script`, true},
		{"<https://a.com/x.js>; REL=Preload", true},
		{"<https://a.com/x.js>; rel=preloader", false},
		{`<https://a.com/x.js>; rel="preloader"`, false},
		{"<https://a.com/x.js>; rel=", false},
		{`<https://a.com/x.js>; rel=""`, false},
		{"<https://a.com/x.js>; as=preload", false},
		{"<https://a.com/x.js>", false},
	}
	for _, c := range cases {
		out := Parse(map[string][]string{HeaderLink: {c.value}})
		if got := len(out) == 1; got != c.want {
			t.Errorf("Parse(%q) accepted=%v, want %v", c.value, got, c.want)
		}
	}
}

func TestParseDeduplicates(t *testing.T) {
	headers := map[string][]string{
		HeaderLink: {
			"<https://a.com/x.js>; rel=preload",
			"<https://a.com/x.js>; rel=preload", // exact duplicate
		},
		HeaderSemi: {"https://a.com/x.js"}, // same URL, lower priority
		HeaderLow:  {"https://a.com/x.js", "https://a.com/i.jpg"},
	}
	out := Parse(headers)
	if len(out) != 2 {
		t.Fatalf("parsed %d hints, want 2: %v", len(out), out)
	}
	if out[0].Priority != High {
		t.Errorf("duplicate kept lower priority: %v", out[0])
	}
}

func TestParseCapsHintCount(t *testing.T) {
	var low []string
	for i := 0; i < MaxHints+100; i++ {
		low = append(low, (&urlutil.URL{Scheme: "https", Host: "a.com", Path: "/r", Query: "i=" + string(rune('0'+i%10)) + string(rune('a'+i/10%26)) + string(rune('a'+i/260))}).String())
	}
	out := Parse(map[string][]string{HeaderLow: low})
	if len(out) > MaxHints {
		t.Fatalf("parsed %d hints, cap is %d", len(out), MaxHints)
	}
}

func TestParseCapsURLLength(t *testing.T) {
	long := "https://a.com/" + strings.Repeat("x", MaxURLLen)
	headers := map[string][]string{
		HeaderLink: {"<" + long + ">; rel=preload"},
		HeaderSemi: {long},
		HeaderLow:  {long, "https://a.com/ok.jpg"},
	}
	out := Parse(headers)
	if len(out) != 1 || out[0].URL.Path != "/ok.jpg" {
		t.Fatalf("oversized URLs not dropped: %v", out)
	}
}
