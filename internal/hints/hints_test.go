package hints

import (
	"reflect"
	"testing"
	"testing/quick"

	"vroom/internal/urlutil"
)

func mk(u string, p Priority) Hint {
	return Hint{URL: urlutil.MustParse(u), Priority: p}
}

func TestFormatParseRoundTrip(t *testing.T) {
	in := []Hint{
		mk("https://static.a.com/app.js", High),
		mk("https://cdn.b.com/lib.js", High),
		mk("https://t.c.com/tag.js", Semi),
		mk("https://img.a.com/hero.jpg", Low),
		mk("https://ads.d.com/slot.html", Low),
	}
	headers := Format(in)
	if len(headers[HeaderLink]) != 2 || len(headers[HeaderSemi]) != 1 || len(headers[HeaderLow]) != 2 {
		t.Fatalf("headers: %v", headers)
	}
	if headers[HeaderExpose][0] != ExposeValue {
		t.Fatalf("expose header: %v", headers[HeaderExpose])
	}
	out := Parse(headers)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in=%v\nout=%v", in, out)
	}
}

func TestFormatParsePropertyPreservesOrder(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%20) + 1
		var in []Hint
		for i := 0; i < count; i++ {
			u := urlutil.URL{Scheme: "https", Host: "h.com", Path: "/r" + string(rune('a'+i%26))}
			in = append(in, Hint{URL: u, Priority: Priority(i % 3)})
		}
		Sort(in)
		out := Parse(Format(in))
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortStable(t *testing.T) {
	in := []Hint{
		mk("https://a.com/1.jpg", Low),
		mk("https://a.com/1.js", High),
		mk("https://a.com/2.js", High),
		mk("https://a.com/2.jpg", Low),
	}
	Sort(in)
	if in[0].URL.Path != "/1.js" || in[1].URL.Path != "/2.js" {
		t.Fatalf("high hints reordered: %v", in)
	}
	if in[2].URL.Path != "/1.jpg" || in[3].URL.Path != "/2.jpg" {
		t.Fatalf("low hints reordered: %v", in)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	headers := map[string][]string{
		HeaderLink: {
			"<https://a.com/x.js>; rel=preload",
			"garbage",
			"<no-close; rel=preload",
			"<https://a.com/y.css>; rel=stylesheet", // not preload
		},
		HeaderSemi: {"not a url", "https://a.com/tag.js"},
		HeaderLow:  {"", "https://a.com/i.jpg"},
	}
	out := Parse(headers)
	if len(out) != 3 {
		t.Fatalf("parsed %d hints: %v", len(out), out)
	}
}

func TestEmptyFormat(t *testing.T) {
	if h := Format(nil); len(h) != 0 {
		t.Fatalf("empty hints produced headers: %v", h)
	}
}
