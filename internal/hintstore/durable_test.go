package hintstore

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vroom/internal/core"
	"vroom/internal/hintstore/persist"
	"vroom/internal/webpage"
)

// TestDurableRestartRoundTrip is the store-level cold-start path end to end:
// train, serve, drain (final flush), then a second store over the same state
// directory serves the restored tables immediately — tagged Restored, with
// the lookup and retrain counters carried across the restart — and flips
// back to fresh once the tenant re-registers and retrains.
func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	site := webpage.NewSite("durable00", webpage.News, 2017)
	root := site.RootURL()
	clock := newFakeClock()
	r := trainedResolver(t, site)
	sn := site.Snapshot(testEpoch, webpage.Profile{Device: webpage.PhoneSmall}, 1)
	body := sn.RootResource().Body

	cfg := Config{
		TTL: time.Hour, Clock: clock.Now,
		Persist: persist.Options{Dir: dir},
	}
	st, rec, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tables) != 0 {
		t.Fatalf("fresh dir recovered %d tables", len(rec.Tables))
	}
	if err := st.Register(root.Host, webpage.PhoneSmall, StaticTrainer(r)); err != nil {
		t.Fatal(err)
	}
	wantHints, res := st.Lookup(root, body)
	if res.Source != Fresh || res.Restored {
		t.Fatalf("first-life lookup: %+v", res)
	}
	st.Lookup(root, body) // a second lookup, so the persisted counter is 2

	cps := st.Drain(time.Second)
	if len(cps) != 1 {
		t.Fatalf("got %d checkpoints", len(cps))
	}
	cp := cps[0]
	if cp.FlushErr != "" || cp.SnapshotPath == "" || cp.SnapshotBytes == 0 {
		t.Fatalf("drain flush checkpoint: %+v", cp)
	}
	if cp.Lookups != 2 {
		t.Fatalf("checkpointed %d lookups, want 2", cp.Lookups)
	}

	// --- second life ---
	st2, rec2, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Drain(time.Second)
	if len(rec2.Tables) != 1 {
		t.Fatalf("recovered %d tables, want 1", len(rec2.Tables))
	}
	if got := rec2.Tables[0].Lookups; got != 2 {
		t.Fatalf("recovered lookup counter %d, want 2 (persisted across restart)", got)
	}
	if !st2.Ready() {
		t.Fatal("restored store not ready — cold start should serve immediately")
	}
	if !st2.Recovering() {
		t.Fatal("store with only restored tables should report recovering")
	}

	// Lookups serve the restored table, tagged, before any re-registration.
	hs, res := st2.Lookup(root, body)
	if !res.Restored || res.Source != Fresh {
		t.Fatalf("restored lookup: %+v", res)
	}
	if len(hs) != len(wantHints) {
		t.Fatalf("restored table served %d hints, first life served %d", len(hs), len(wantHints))
	}

	// Re-registering a fresh restored origin returns immediately (no
	// synchronous retrain) and keeps serving the restored table.
	calls := 0
	if err := st2.Register(root.Host, webpage.PhoneSmall, func(v uint64, c <-chan struct{}) (*core.Resolver, error) {
		calls++
		return r, nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("re-register on a fresh restored table retrained synchronously")
	}
	if _, res := st2.Lookup(root, body); !res.Restored {
		t.Fatalf("still-fresh restored table lost its tag: %+v", res)
	}

	// Age it past TTL: served stale+restored (never shed), background
	// retrain replaces it and clears both flags.
	clock.Advance(10 * time.Hour) // far past MaxStale = 4h
	if _, res := st2.Lookup(root, body); res.Source != Stale || !res.Restored {
		t.Fatalf("aged restored lookup must serve stale, never shed: %+v", res)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st2.Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("background retrain never refreshed the restored table")
		}
		time.Sleep(time.Millisecond)
		st2.Lookup(root, body)
	}
	if calls == 0 {
		t.Fatal("no background retrain ran")
	}
	if _, res := st2.Lookup(root, body); res.Restored || res.Source != Fresh {
		t.Fatalf("post-retrain lookup: %+v", res)
	}

	// Checkpoints from the second life carry the accumulated counters.
	cps = st2.Drain(time.Second)
	if len(cps) != 1 || cps[0].Retrains == 0 {
		t.Fatalf("second-life checkpoints: %+v", cps)
	}
	if cps[0].Restored {
		t.Fatal("checkpoint still flagged restored after a retrain")
	}
}

// TestDurableDrainFlushFailure injects a crash at the drain flush and checks
// the failure is carried per-checkpoint instead of being swallowed — the
// signal vroom-server uses to exit nonzero.
func TestDurableDrainFlushFailure(t *testing.T) {
	site := webpage.NewSite("durable01", webpage.News, 2017)
	root := site.RootURL()
	clock := newFakeClock()
	var armed atomic.Bool
	st, _, err := NewDurable(Config{
		Clock: clock.Now,
		Persist: persist.Options{
			Dir: t.TempDir(),
			Crash: func(point string) (bool, int) {
				return armed.Load() && point == "snap-temp", 5
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Register(root.Host, webpage.PhoneSmall, StaticTrainer(trainedResolver(t, site))); err != nil {
		t.Fatal(err)
	}
	armed.Store(true)
	cps := st.Drain(time.Second)
	if len(cps) != 1 {
		t.Fatalf("got %d checkpoints", len(cps))
	}
	if cps[0].FlushErr == "" || !strings.Contains(cps[0].FlushErr, "crash") {
		t.Fatalf("flush failure not surfaced: %+v", cps[0])
	}
}

// TestDurableRestoredShardWithoutTrainer: a staleness-triggered retrain on a
// restored shard whose tenant never re-registered must be a no-op, not a
// panic — the shard keeps serving its disk table.
func TestDurableRestoredShardWithoutTrainer(t *testing.T) {
	dir := t.TempDir()
	site := webpage.NewSite("durable02", webpage.News, 2017)
	root := site.RootURL()
	clock := newFakeClock()

	cfg := Config{TTL: time.Hour, Clock: clock.Now, Persist: persist.Options{Dir: dir}}
	st, _, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Register(root.Host, webpage.PhoneSmall, StaticTrainer(trainedResolver(t, site))); err != nil {
		t.Fatal(err)
	}
	st.Drain(time.Second)

	st2, _, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Drain(time.Second)
	clock.Advance(10 * time.Hour)
	for i := 0; i < 10; i++ {
		if _, res := st2.Lookup(root, "body"); res.Source != Stale || !res.Restored {
			t.Fatalf("lookup %d: %+v", i, res)
		}
		time.Sleep(time.Millisecond) // let the queued no-op retrain run
	}
	if !st2.Recovering() {
		t.Fatal("trainerless restored shard should still be recovering")
	}
}
