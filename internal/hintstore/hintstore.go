// Package hintstore promotes Vroom's dependency resolver from a
// train-once-at-startup object to a long-running, multi-tenant service
// component (§4): a sharded, versioned hint store whose per-origin shards
// each hold an immutable, atomically-swapped hint table, refreshed off the
// request path by a bounded background training pool as pages churn (the
// paper retrains hourly).
//
// Concurrency model (RCU): a shard's current table lives behind an
// atomic.Pointer. Lookups load the pointer once and read only that
// immutable table — they never block on retraining and can never observe a
// torn (half-swapped) table. Retraining builds a complete replacement table
// aside and publishes it with one atomic store; the old table stays valid
// for readers that already hold it.
//
// Staleness model (stale-while-revalidate): a lookup whose table has aged
// past the TTL is served from the old version, tagged Stale, and schedules
// a background retrain; only past MaxStale does the store stop serving
// hints (Shed) — an outdated hint is advisory and cheap, a blocked lookup
// stalls a response. Tenants beyond the LRU capacity are evicted coldest
// first, mirroring a hint cache in front of per-site crawlers.
package hintstore

import (
	"errors"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vroom/internal/core"
	"vroom/internal/hints"
	"vroom/internal/hintstore/persist"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// Store metric families.
const (
	metricLookups   = "vroom_store_lookups_total"
	metricLookupMs  = "vroom_store_hint_lookup_ms"
	metricRetrains  = "vroom_store_retrains_total"
	metricSwaps     = "vroom_store_swaps_total"
	metricTenants   = "vroom_store_tenants"
	metricEvictions = "vroom_store_evictions_total"
	metricQueueFull = "vroom_store_retrain_queue_full_total"
)

// Trainer builds one tenant's resolver. It runs on a background worker, off
// the request path; version is the table version the result will publish
// as. Implementations should return promptly after cancel closes — the
// result is discarded during drain either way.
type Trainer func(version uint64, cancel <-chan struct{}) (*core.Resolver, error)

// Source classifies where a lookup's hints came from.
type Source int

// Lookup sources.
const (
	// Fresh: the serving table is within its TTL.
	Fresh Source = iota
	// Stale: the table aged past the TTL; the previous version was served
	// and a background retrain is (or was already) scheduled.
	Stale
	// Shed: the table aged past MaxStale; no hints were served.
	Shed
	// Miss: no tenant is registered for the origin.
	Miss
)

func (s Source) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	case Shed:
		return "shed"
	}
	return "miss"
}

// Result describes one lookup: its source, the table version that answered
// it, and the table's age at lookup time.
type Result struct {
	Source  Source
	Version uint64
	Age     time.Duration
	// Restored marks an answer served from a table loaded off disk at cold
	// start that background retraining has not refreshed yet. The serving
	// path tags such responses vroom-degraded: stale-restore — correct at
	// the time it was persisted, possibly behind the site's churn since.
	Restored bool
}

// Config sizes a Store. Zero fields select defaults.
type Config struct {
	// TTL is how long one trained table serves fresh before a background
	// retrain is scheduled (default one hour — the paper's churn period).
	TTL time.Duration
	// MaxStale is the age past which hints are shed instead of served
	// stale (default 4*TTL). Stale serving between TTL and MaxStale is the
	// stale-while-revalidate window.
	MaxStale time.Duration
	// MaxTenants caps resident origins; registering past it evicts the
	// least-recently-looked-up tenant (default 256).
	MaxTenants int
	// Workers bounds concurrent background retrains (default 2).
	Workers int
	// QueueDepth bounds retrain jobs waiting for a worker (default
	// 4*Workers). A full queue drops the retrain request — the next stale
	// lookup re-requests it.
	QueueDepth int
	// Clock supplies time for tests; nil means time.Now.
	Clock func() time.Time
	// Log, when non-nil, receives structured store events: retrain swaps
	// and dropped retrains at Debug, evictions and drain at Info.
	Log *slog.Logger
	// Persist configures the durable snapshot+WAL layer: snapshot interval,
	// WAL rotation size, fsync policy (see persist.Options). Only NewDurable
	// honors it; New ignores it and keeps every table in memory only.
	Persist persist.Options
}

func (c Config) ttl() time.Duration {
	if c.TTL > 0 {
		return c.TTL
	}
	return time.Hour
}

func (c Config) maxStale() time.Duration {
	if c.MaxStale > 0 {
		return c.MaxStale
	}
	return 4 * c.ttl()
}

func (c Config) maxTenants() int {
	if c.MaxTenants > 0 {
		return c.MaxTenants
	}
	return 256
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 2
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 4 * c.workers()
}

// table is one immutable published hint table. Readers hold it only via
// shard.cur.Load(); nothing in it is mutated after publication.
type table struct {
	version   uint64
	trainedAt time.Time
	resolver  *core.Resolver
	device    webpage.DeviceClass
	// restored marks a table loaded from disk at cold start; the first
	// retrain swap clears it (the replacement table has restored=false).
	restored bool
}

// shard is one tenant's serving state.
type shard struct {
	origin  string
	trainer Trainer
	device  webpage.DeviceClass

	// cur is the RCU-published current table.
	cur atomic.Pointer[table]
	// version is the last version number handed to a trainer.
	version atomic.Uint64
	// retraining is the per-shard singleflight guard: one queued or
	// running retrain at a time.
	retraining atomic.Bool
	// lastUsed is the UnixNano of the newest lookup, for LRU eviction.
	lastUsed atomic.Int64
	// lookups counts lookups served by this shard. It seeds from the
	// persisted count at restore time so LRU eviction decisions and
	// capacity planning survive a restart instead of resetting to zero.
	lookups atomic.Int64
	// retrains counts retrain publishes, likewise persisted.
	retrains atomic.Int64
	// quality is the tenant's hint-efficacy ledger (see quality.go),
	// persisted alongside lookups/retrains.
	quality Quality
}

// Checkpoint is one shard's state at drain time.
type Checkpoint struct {
	Origin    string
	Version   uint64
	TrainedAt time.Time
	Lookups   int64
	Retrains  int64
	// Restored reports a table still serving from a disk restore (no
	// retrain refreshed it before the drain).
	Restored bool
	// SnapshotPath and SnapshotBytes describe this shard's final drain
	// flush when the store is durable ("" / 0 otherwise). FlushErr carries
	// the flush failure, empty on success — a failed final flush must be
	// distinguishable from a clean one, so the server can exit nonzero.
	SnapshotPath  string
	SnapshotBytes int64
	FlushErr      string
}

// Store is the multi-tenant hint store. Create with New; a Store must be
// Drained (or Closed) to stop its background workers.
type Store struct {
	cfg   Config
	clock func() time.Time

	mu      sync.RWMutex
	tenants map[string]*shard
	closed  bool

	trainq chan *shard
	cancel chan struct{}
	wg     sync.WaitGroup

	// pers is the durable layer (nil for memory-only stores); recovery is
	// the cold-start pass that seeded it, kept for Instrument.
	pers     *persist.Persister
	recovery *persist.Recovery

	// Telemetry handles; nil-safe when Instrument was never called.
	mLookups  map[Source]*telemetry.Counter
	mLookupMs *telemetry.Histogram
	mRetrains *telemetry.Counter
	mSwaps    *telemetry.Counter
	mTenants  *telemetry.Gauge
	mEvict    *telemetry.Counter
	mQFull    *telemetry.Counter
	// qual is the per-origin efficacy family bundle (quality.go); zero
	// value no-ops when Instrument was never called.
	qual qualityVecs
}

// New returns a running store: its background training workers are started
// and idle.
func New(cfg Config) *Store {
	st := &Store{
		cfg:     cfg,
		clock:   cfg.Clock,
		tenants: make(map[string]*shard),
		trainq:  make(chan *shard, cfg.queueDepth()),
		cancel:  make(chan struct{}),
	}
	if st.clock == nil {
		st.clock = time.Now
	}
	for i := 0; i < cfg.workers(); i++ {
		st.wg.Add(1)
		go st.worker()
	}
	return st
}

// NewDurable returns a running store whose trained tables persist under
// cfg.Persist.Dir. It recovers whatever a previous process left behind
// (newest valid snapshot per origin plus WAL replay, quarantining corrupt
// or torn records), installs the recovered tables so lookups serve from
// disk state immediately, re-snapshots them (the recovery checkpoint that
// lets WALs be truncated safely), and starts the periodic snapshot loop.
// The returned Recovery reports what was restored and quarantined.
func NewDurable(cfg Config) (*Store, *persist.Recovery, error) {
	rec, err := persist.Recover(cfg.Persist.Dir, cfg.Log)
	if err != nil {
		return nil, nil, err
	}
	cfg.Persist.Log = cfg.Log
	pers, err := persist.Open(cfg.Persist)
	if err != nil {
		return nil, nil, err
	}
	st := New(cfg)
	st.pers, st.recovery = pers, rec
	st.Restore(rec.Tables)
	if len(rec.Tables) > 0 {
		if _, err := pers.SnapshotAll(st.tableStates()); err != nil {
			// An injected crash or full disk here is survivable: the WALs
			// still hold what the snapshot would have; log and serve.
			if cfg.Log != nil {
				cfg.Log.Warn("recovery checkpoint failed", "err", err)
			}
		}
	}
	st.wg.Add(1)
	go st.snapshotLoop(cfg.Persist.SnapshotInterval())
	return st, rec, nil
}

// Restore installs recovered tables as served state: each becomes a shard
// whose published table is tagged restored, so the serving path can mark
// responses stale-restore until background retraining refreshes them.
// Restored shards have no trainer until Register supplies one; staleness-
// triggered retrains are no-ops until then. Call before Register.
func (st *Store) Restore(tables []persist.TableState) {
	for _, t := range tables {
		sh := &shard{origin: t.Origin, device: t.Device}
		sh.version.Store(t.Version)
		sh.lookups.Store(t.Lookups)
		sh.retrains.Store(t.Retrains)
		sh.quality.restore(t.Quality)
		sh.lastUsed.Store(st.clock().UnixNano())
		sh.cur.Store(&table{version: t.Version, trainedAt: t.TrainedAt,
			resolver: core.NewResolverFromState(t.Resolver), device: t.Device,
			restored: true})
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			return
		}
		if _, ok := st.tenants[t.Origin]; !ok {
			st.evictColdestLocked()
		}
		st.tenants[t.Origin] = sh
		st.mTenants.Set(int64(len(st.tenants)))
		st.mu.Unlock()
		if st.cfg.Log != nil {
			st.cfg.Log.Info("restored", "origin", t.Origin, "version", t.Version,
				"trained", t.TrainedAt.Format(time.RFC3339), "lookups", t.Lookups)
		}
	}
}

// Instrument attaches the store's metric families to reg. Call before
// serving; nil costs nothing.
func (st *Store) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Describe(metricLookups, "Hint lookups by source (fresh, stale, shed, miss).")
	reg.Describe(metricLookupMs, "Hint lookup latency in milliseconds.")
	reg.Describe(metricRetrains, "Background retrains completed.")
	reg.Describe(metricSwaps, "RCU table swaps published.")
	reg.Describe(metricTenants, "Resident hint-store tenants.")
	reg.Describe(metricEvictions, "Tenants evicted by the LRU cap.")
	reg.Describe(metricQueueFull, "Retrain requests dropped on a full queue.")
	st.mLookups = map[Source]*telemetry.Counter{
		Fresh: reg.Counter(metricLookups, telemetry.L("source", "fresh")),
		Stale: reg.Counter(metricLookups, telemetry.L("source", "stale")),
		Shed:  reg.Counter(metricLookups, telemetry.L("source", "shed")),
		Miss:  reg.Counter(metricLookups, telemetry.L("source", "miss")),
	}
	st.mLookupMs = reg.Histogram(metricLookupMs)
	st.mRetrains = reg.Counter(metricRetrains)
	st.mSwaps = reg.Counter(metricSwaps)
	st.mTenants = reg.Gauge(metricTenants)
	st.mEvict = reg.Counter(metricEvictions)
	st.mQFull = reg.Counter(metricQueueFull)
	st.instrumentQuality(reg)
	st.pers.Instrument(reg, st.recovery)
}

// ErrClosed reports registration on a drained store.
var ErrClosed = errors.New("hintstore: store drained")

// Register installs a tenant for origin and trains its first table
// synchronously (startup warmup — the caller decides whether to serve
// before this returns). Registering past MaxTenants evicts the coldest
// tenant. Re-registering an origin replaces its trainer and retrains.
func (st *Store) Register(origin string, device webpage.DeviceClass, tr Trainer) error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	sh, ok := st.tenants[origin]
	if !ok {
		sh = &shard{origin: origin, trainer: tr, device: device}
		sh.lastUsed.Store(st.clock().UnixNano())
		st.evictColdestLocked()
		st.tenants[origin] = sh
		st.mTenants.Set(int64(len(st.tenants)))
	} else {
		sh.trainer = tr
		sh.device = device
	}
	st.mu.Unlock()

	// Cold start: a restored table serves immediately instead of blocking
	// startup on a synchronous retrain (the retrain storm persistence
	// exists to avoid). A stale restored table refreshes in the background
	// right away; a fresh one at its TTL like any other.
	if tbl := sh.cur.Load(); tbl != nil && tbl.restored {
		if st.clock().Sub(tbl.trainedAt) > st.cfg.ttl() {
			st.requestRetrain(sh)
		}
		return nil
	}

	version := sh.version.Add(1)
	r, err := tr(version, st.cancel)
	if err != nil {
		return err
	}
	tbl := &table{version: version, trainedAt: st.clock(), resolver: r, device: device}
	sh.cur.Store(tbl)
	st.mSwaps.Inc()
	st.persistSwap(sh, tbl)
	return nil
}

// evictColdestLocked makes room for one tenant. Caller holds st.mu.
func (st *Store) evictColdestLocked() {
	for len(st.tenants) >= st.cfg.maxTenants() {
		var coldest *shard
		for _, sh := range st.tenants {
			if coldest == nil || sh.lastUsed.Load() < coldest.lastUsed.Load() {
				coldest = sh
			}
		}
		if coldest == nil {
			return
		}
		delete(st.tenants, coldest.origin)
		st.mEvict.Inc()
		if st.cfg.Log != nil {
			st.cfg.Log.Info("tenant evicted", "origin", coldest.origin,
				"lookups", coldest.lookups.Load())
		}
	}
}

// Lookup returns the dependency hints for serving doc with the given body.
// It never blocks on training: the answer comes from whatever table the
// doc's origin shard currently publishes, tagged by freshness. A lookup on
// a stale table schedules a background retrain (at most one in flight per
// shard) and still returns immediately.
func (st *Store) Lookup(doc urlutil.URL, body string) ([]hints.Hint, Result) {
	start := st.clock()
	hs, res := st.lookup(doc, body, start)
	st.mLookups[res.Source].Inc()
	st.mLookupMs.Observe(float64(st.clock().Sub(start)) / float64(time.Millisecond))
	return hs, res
}

func (st *Store) lookup(doc urlutil.URL, body string, now time.Time) ([]hints.Hint, Result) {
	st.mu.RLock()
	sh := st.tenants[doc.Host]
	st.mu.RUnlock()
	if sh == nil {
		return nil, Result{Source: Miss}
	}
	sh.lastUsed.Store(now.UnixNano())
	sh.lookups.Add(1)
	tbl := sh.cur.Load()
	if tbl == nil {
		// Registered but first training has not published yet.
		return nil, Result{Source: Miss}
	}
	age := now.Sub(tbl.trainedAt)
	res := Result{Source: Fresh, Version: tbl.version, Age: age, Restored: tbl.restored}
	if age > st.cfg.ttl() {
		st.requestRetrain(sh)
		// A restored table is never shed on age: serving yesterday's hints
		// tagged stale-restore beats serving none — shedding here would
		// reintroduce the cold-start outage persistence exists to remove.
		if age > st.cfg.maxStale() && !tbl.restored {
			res.Source = Shed
			return nil, res
		}
		res.Source = Stale
	}
	return tbl.resolver.HintsFor(doc, body, tbl.device), res
}

// requestRetrain schedules a background retrain for sh unless one is
// already queued or running. A full queue drops the request: the next
// stale lookup retries.
func (st *Store) requestRetrain(sh *shard) {
	if !sh.retraining.CompareAndSwap(false, true) {
		return
	}
	select {
	case st.trainq <- sh:
	case <-st.cancel:
		sh.retraining.Store(false)
	default:
		sh.retraining.Store(false)
		st.mQFull.Inc()
		if st.cfg.Log != nil {
			st.cfg.Log.Debug("retrain dropped", "origin", sh.origin, "reason", "queue-full")
		}
	}
}

// worker drains the retrain queue until the store cancels.
func (st *Store) worker() {
	defer st.wg.Done()
	for {
		select {
		case <-st.cancel:
			return
		case sh := <-st.trainq:
			st.retrain(sh)
		}
	}
}

// retrain builds a replacement table aside and publishes it with one
// atomic swap. Lookups racing the swap serve either the old or the new
// table — both are complete and internally consistent.
func (st *Store) retrain(sh *shard) {
	defer sh.retraining.Store(false)
	select {
	case <-st.cancel:
		return // drained while queued
	default:
	}
	// The trainer is written under st.mu by Register; read it the same way
	// (a restored shard has none until its tenant re-registers).
	st.mu.RLock()
	tr, device := sh.trainer, sh.device
	st.mu.RUnlock()
	if tr == nil {
		return // restored, not yet re-registered: keep serving disk state
	}
	version := sh.version.Add(1)
	r, err := tr(version, st.cancel)
	if err != nil {
		return // the old table keeps serving; the next stale lookup retries
	}
	select {
	case <-st.cancel:
		return // drained mid-build: discard, checkpoint the old table
	default:
	}
	tbl := &table{version: version, trainedAt: st.clock(), resolver: r, device: device}
	sh.cur.Store(tbl)
	sh.retrains.Add(1)
	st.mRetrains.Inc()
	st.mSwaps.Inc()
	st.persistSwap(sh, tbl)
	if st.cfg.Log != nil {
		st.cfg.Log.Debug("table swapped", "origin", sh.origin, "version", version)
	}
}

// persistSwap appends a table publish to the durable WAL; memory-only
// stores skip it. Append failures are logged, never fatal — the serving
// path must not depend on the disk.
func (st *Store) persistSwap(sh *shard, tbl *table) {
	if st.pers == nil {
		return
	}
	if err := st.pers.Append(st.stateOf(sh, tbl)); err != nil && st.cfg.Log != nil {
		st.cfg.Log.Warn("wal append failed", "origin", sh.origin, "err", err)
	}
}

// stateOf renders one shard's durable state around a published table.
func (st *Store) stateOf(sh *shard, tbl *table) persist.TableState {
	return persist.TableState{
		Origin:    sh.origin,
		Version:   tbl.version,
		TrainedAt: tbl.trainedAt,
		Device:    tbl.device,
		Lookups:   sh.lookups.Load(),
		Retrains:  sh.retrains.Load(),
		Resolver:  tbl.resolver.Export(),
		Quality:   sh.quality.state(),
	}
}

// tableStates collects every published table's durable state, sorted by
// origin for deterministic snapshot order.
func (st *Store) tableStates() []persist.TableState {
	st.mu.RLock()
	shards := make([]*shard, 0, len(st.tenants))
	for _, sh := range st.tenants {
		shards = append(shards, sh)
	}
	st.mu.RUnlock()
	states := make([]persist.TableState, 0, len(shards))
	for _, sh := range shards {
		if tbl := sh.cur.Load(); tbl != nil {
			states = append(states, st.stateOf(sh, tbl))
		}
	}
	sort.Slice(states, func(i, j int) bool { return states[i].Origin < states[j].Origin })
	return states
}

// snapshotLoop periodically flushes a full snapshot so lookup counters and
// slow-churning tables reach disk between retrains. Only durable stores
// run it.
func (st *Store) snapshotLoop(every time.Duration) {
	defer st.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-st.cancel:
			return
		case <-t.C:
			if _, err := st.pers.SnapshotAll(st.tableStates()); err != nil && st.cfg.Log != nil {
				st.cfg.Log.Warn("periodic snapshot failed", "err", err)
			}
		}
	}
}

// Ready reports whether every registered tenant has a published table and
// the store is accepting lookups — the readiness-endpoint predicate.
func (st *Store) Ready() bool {
	if st == nil {
		return false
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed || len(st.tenants) == 0 {
		return false
	}
	for _, sh := range st.tenants {
		if sh.cur.Load() == nil {
			return false
		}
	}
	return true
}

// Recovering reports whether any tenant is still serving a table restored
// from disk that background retraining has not refreshed yet — the
// readiness endpoint's "recovering" state: answering (possibly stale)
// hints, not yet back to trained freshness.
func (st *Store) Recovering() bool {
	if st == nil {
		return false
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, sh := range st.tenants {
		if tbl := sh.cur.Load(); tbl != nil && tbl.restored {
			return true
		}
	}
	return false
}

// Tenants returns the number of resident tenants.
func (st *Store) Tenants() int {
	if st == nil {
		return 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.tenants)
}

// Drain stops the store: queued and in-flight retrains are cancelled (their
// results discarded), workers exit, and every shard's published table is
// checkpointed. Lookups after Drain still serve (read-only) from the last
// published tables, so a draining server can answer its in-flight requests.
// Drain returns once the workers have stopped or timeout passed; the
// checkpoints reflect the tables at that instant, sorted by origin.
func (st *Store) Drain(timeout time.Duration) []Checkpoint {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		close(st.cancel)
	}
	st.mu.Unlock()

	done := make(chan struct{})
	go func() {
		st.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
	}

	// Durable stores flush one final snapshot per origin so the drained
	// tables (with their final lookup counters) are what the next process
	// recovers. Per-origin outcomes ride the checkpoints: the server logs
	// each snapshot path and size and exits nonzero on any FlushErr.
	var flush map[string]persist.SnapInfo
	if st.pers != nil {
		infos, err := st.pers.SnapshotAll(st.tableStates())
		flush = make(map[string]persist.SnapInfo, len(infos))
		for _, in := range infos {
			flush[in.Origin] = in
		}
		if err != nil && st.cfg.Log != nil {
			st.cfg.Log.Error("final flush failed", "err", err)
		}
		st.pers.Close()
	}

	st.mu.RLock()
	defer st.mu.RUnlock()
	cps := make([]Checkpoint, 0, len(st.tenants))
	for _, sh := range st.tenants {
		cp := Checkpoint{Origin: sh.origin, Lookups: sh.lookups.Load(),
			Retrains: sh.retrains.Load()}
		if tbl := sh.cur.Load(); tbl != nil {
			cp.Version = tbl.version
			cp.TrainedAt = tbl.trainedAt
			cp.Restored = tbl.restored
			if st.pers != nil {
				if in, ok := flush[sh.origin]; ok {
					cp.SnapshotPath, cp.SnapshotBytes, cp.FlushErr = in.Path, in.Bytes, in.Err
				} else {
					cp.FlushErr = "final flush did not reach this origin"
				}
			}
		}
		cps = append(cps, cp)
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].Origin < cps[j].Origin })
	if st.cfg.Log != nil {
		st.cfg.Log.Info("store drained", "tenants", len(cps))
	}
	return cps
}

// SiteTrainer returns a Trainer that retrains a generated site's resolver
// the way a Vroom deployment's periodic crawler would: each retrain
// advances the training instant by the elapsed wall time since the store
// came up, so hints track the site's hourly content churn.
func SiteTrainer(site *webpage.Site, baseAt time.Time, device webpage.DeviceClass, cfg core.ResolverConfig) Trainer {
	start := time.Now()
	return func(version uint64, cancel <-chan struct{}) (*core.Resolver, error) {
		select {
		case <-cancel:
			return nil, ErrClosed
		default:
		}
		r := core.NewResolver(cfg)
		r.Train(site, baseAt.Add(time.Since(start)), device)
		return r, nil
	}
}

// StaticTrainer returns a Trainer that always serves the given pre-built
// resolver — for archive-only tenants whose hints come from online analysis
// of the served bytes.
func StaticTrainer(r *core.Resolver) Trainer {
	return func(version uint64, cancel <-chan struct{}) (*core.Resolver, error) {
		return r, nil
	}
}
