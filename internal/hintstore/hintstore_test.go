package hintstore

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vroom/internal/core"
	"vroom/internal/hints"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

var testEpoch = time.Date(2017, 3, 1, 12, 0, 0, 0, time.UTC)

// fakeClock is a manually-advanced clock shared by a store under test.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: testEpoch} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// trainedResolver builds one real resolver over a generated site.
func trainedResolver(t testing.TB, site *webpage.Site) *core.Resolver {
	t.Helper()
	r := core.NewResolver(core.DefaultResolverConfig())
	r.Train(site, testEpoch, webpage.PhoneSmall)
	return r
}

func TestRegisterAndLookupFresh(t *testing.T) {
	site := webpage.NewSite("storefresh", webpage.News, 2017)
	clock := newFakeClock()
	st := New(Config{Clock: clock.Now})
	defer st.Drain(time.Second)

	r := trainedResolver(t, site)
	root := site.RootURL()
	if err := st.Register(root.Host, webpage.PhoneSmall, StaticTrainer(r)); err != nil {
		t.Fatal(err)
	}
	if !st.Ready() {
		t.Fatal("store not ready after synchronous register")
	}

	sn := site.Snapshot(testEpoch, webpage.Profile{Device: webpage.PhoneSmall}, 1)
	body := sn.RootResource().Body
	hs, res := st.Lookup(root, body)
	if res.Source != Fresh {
		t.Fatalf("source = %v, want fresh", res.Source)
	}
	if res.Version != 1 {
		t.Fatalf("version = %d, want 1", res.Version)
	}
	if len(hs) == 0 {
		t.Fatal("no hints from a trained tenant")
	}
	want := r.HintsFor(root, body, webpage.PhoneSmall)
	if len(hs) != len(want) {
		t.Fatalf("store hints = %d, direct hints = %d", len(hs), len(want))
	}
}

func TestLookupMissForUnknownOrigin(t *testing.T) {
	st := New(Config{})
	defer st.Drain(time.Second)
	u, _ := parseURL(t, "https://nobody.example/")
	hs, res := st.Lookup(u, "")
	if res.Source != Miss || hs != nil {
		t.Fatalf("unknown origin: hints=%v source=%v, want nil/miss", hs, res.Source)
	}
}

func TestStaleWhileRevalidateThenShed(t *testing.T) {
	site := webpage.NewSite("storestale", webpage.News, 2017)
	clock := newFakeClock()
	// No workers pulling the queue fast: use a trainer gate so the retrain
	// publishes only when the test allows it.
	release := make(chan struct{})
	var retrains atomic.Int64
	r := trainedResolver(t, site)
	tr := func(version uint64, cancel <-chan struct{}) (*core.Resolver, error) {
		retrains.Add(1)
		select {
		case <-release:
		case <-cancel:
			return nil, ErrClosed
		}
		return r, nil
	}
	st := New(Config{TTL: time.Hour, MaxStale: 3 * time.Hour, Clock: clock.Now})
	defer st.Drain(time.Second)

	root := site.RootURL()
	// First training happens synchronously and must not need the gate.
	regDone := make(chan error, 1)
	go func() { regDone <- st.Register(root.Host, webpage.PhoneSmall, tr) }()
	release <- struct{}{}
	if err := <-regDone; err != nil {
		t.Fatal(err)
	}

	sn := site.Snapshot(testEpoch, webpage.Profile{Device: webpage.PhoneSmall}, 1)
	body := sn.RootResource().Body

	// Inside TTL: fresh.
	if _, res := st.Lookup(root, body); res.Source != Fresh {
		t.Fatalf("source = %v, want fresh", res.Source)
	}

	// Past TTL, inside MaxStale: stale-but-served, retrain scheduled.
	clock.Advance(2 * time.Hour)
	hs, res := st.Lookup(root, body)
	if res.Source != Stale {
		t.Fatalf("source = %v, want stale", res.Source)
	}
	if len(hs) == 0 {
		t.Fatal("stale lookup served no hints")
	}
	if res.Age < 2*time.Hour {
		t.Fatalf("age = %v, want >= 2h", res.Age)
	}

	// The scheduled retrain is blocked on the gate; further stale lookups
	// must not pile up more retrains (singleflight per shard).
	for i := 0; i < 5; i++ {
		st.Lookup(root, body)
	}

	// Past MaxStale: hints are shed, response-side unaffected.
	clock.Advance(2 * time.Hour)
	hs, res = st.Lookup(root, body)
	if res.Source != Shed || hs != nil {
		t.Fatalf("past max-stale: hints=%d source=%v, want nil/shed", len(hs), res.Source)
	}

	// Let the background retrain finish and publish; lookups turn fresh.
	release <- struct{}{}
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, res = st.Lookup(root, body)
		if res.Source == Fresh {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retrain never published: source=%v", res.Source)
		}
		time.Sleep(time.Millisecond)
	}
	if res.Version != 2 {
		t.Fatalf("retrained version = %d, want 2", res.Version)
	}
	if got := retrains.Load(); got != 2 { // initial + one background
		t.Fatalf("trainer ran %d times, want 2", got)
	}
}

func TestLRUEvictionPastMaxTenants(t *testing.T) {
	clock := newFakeClock()
	st := New(Config{MaxTenants: 2, Clock: clock.Now})
	defer st.Drain(time.Second)

	siteA := webpage.NewSite("storelrua", webpage.News, 1)
	siteB := webpage.NewSite("storelrub", webpage.Sports, 2)
	siteC := webpage.NewSite("storelruc", webpage.Shopping, 3)
	for _, s := range []*webpage.Site{siteA, siteB} {
		if err := st.Register(s.RootURL().Host, webpage.PhoneSmall, StaticTrainer(trainedResolver(t, s))); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Minute)
	}
	// Touch A so B becomes the coldest.
	st.Lookup(siteA.RootURL(), "")
	clock.Advance(time.Minute)

	if err := st.Register(siteC.RootURL().Host, webpage.PhoneSmall, StaticTrainer(trainedResolver(t, siteC))); err != nil {
		t.Fatal(err)
	}
	if n := st.Tenants(); n != 2 {
		t.Fatalf("tenants = %d, want 2", n)
	}
	if _, res := st.Lookup(siteB.RootURL(), ""); res.Source != Miss {
		t.Fatalf("coldest tenant not evicted: source = %v", res.Source)
	}
	if _, res := st.Lookup(siteA.RootURL(), ""); res.Source != Fresh {
		t.Fatalf("warm tenant evicted: source = %v", res.Source)
	}
}

func TestDrainCancelsRetrainAndCheckpoints(t *testing.T) {
	site := webpage.NewSite("storedrain", webpage.News, 2017)
	clock := newFakeClock()
	r := trainedResolver(t, site)
	started := make(chan struct{}, 1)
	var calls atomic.Int64
	tr := func(version uint64, cancel <-chan struct{}) (*core.Resolver, error) {
		if calls.Add(1) == 1 {
			return r, nil // synchronous warmup
		}
		started <- struct{}{}
		<-cancel // a slow retrain that only ends when drained
		return nil, ErrClosed
	}
	st := New(Config{TTL: time.Hour, Clock: clock.Now})
	root := site.RootURL()
	if err := st.Register(root.Host, webpage.PhoneSmall, tr); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Hour)
	st.Lookup(root, "") // schedules the blocking retrain
	<-started

	done := make(chan []Checkpoint, 1)
	go func() { done <- st.Drain(5 * time.Second) }()
	select {
	case cps := <-done:
		if len(cps) != 1 {
			t.Fatalf("checkpoints = %d, want 1", len(cps))
		}
		cp := cps[0]
		if cp.Origin != root.Host || cp.Version != 1 {
			t.Fatalf("checkpoint = %+v, want origin %s version 1", cp, root.Host)
		}
		if cp.Lookups == 0 {
			t.Fatal("checkpoint lost the lookup count")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain hung on an in-flight retrain")
	}

	if err := st.Register("late.example", webpage.PhoneSmall, StaticTrainer(r)); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after drain: err = %v, want ErrClosed", err)
	}
	// Lookups still serve read-only from the last table during connection
	// drain.
	if _, res := st.Lookup(root, ""); res.Version != 1 {
		t.Fatalf("post-drain lookup version = %d, want 1", res.Version)
	}
}

func TestTrainerErrorKeepsOldTable(t *testing.T) {
	site := webpage.NewSite("storeerr", webpage.News, 2017)
	clock := newFakeClock()
	r := trainedResolver(t, site)
	var calls atomic.Int64
	tr := func(version uint64, cancel <-chan struct{}) (*core.Resolver, error) {
		if calls.Add(1) == 1 {
			return r, nil
		}
		return nil, errors.New("crawler exploded")
	}
	st := New(Config{TTL: time.Hour, Clock: clock.Now})
	defer st.Drain(time.Second)
	root := site.RootURL()
	if err := st.Register(root.Host, webpage.PhoneSmall, tr); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Hour)
	st.Lookup(root, "")
	// Wait for the failing retrain to run and clear the singleflight flag.
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("retrain never ran")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if _, res := st.Lookup(root, ""); res.Version != 1 || res.Source != Stale {
		t.Fatalf("after failed retrain: version=%d source=%v, want 1/stale", res.Version, res.Source)
	}
}

// TestRCUSwapNeverTornUnderRace is the tentpole invariant: lookups racing
// repeated table swaps must always see a version-consistent hint set —
// exactly the hints the published resolver of that version produces, never
// a mix — and must never block on a swap.
func TestRCUSwapNeverTornUnderRace(t *testing.T) {
	site := webpage.NewSite("storercu", webpage.News, 2017)
	clock := newFakeClock()
	root := site.RootURL()
	sn := site.Snapshot(testEpoch, webpage.Profile{Device: webpage.PhoneSmall}, 1)
	body := sn.RootResource().Body

	// Two distinct resolvers: trained at epochs far apart so their hint
	// sets differ; the trainer alternates between them every publish.
	rA := core.NewResolver(core.DefaultResolverConfig())
	rA.Train(site, testEpoch, webpage.PhoneSmall)
	rB := core.NewResolver(core.DefaultResolverConfig())
	rB.Train(site, testEpoch.Add(400*time.Hour), webpage.PhoneSmall)
	wantA := hintKeys(rA.HintsFor(root, body, webpage.PhoneSmall))
	wantB := hintKeys(rB.HintsFor(root, body, webpage.PhoneSmall))

	tr := func(version uint64, cancel <-chan struct{}) (*core.Resolver, error) {
		if version%2 == 1 {
			return rA, nil
		}
		return rB, nil
	}
	// TTL zero-ish: every lookup schedules a retrain, maximizing swap
	// pressure. MaxStale large so hints always serve.
	st := New(Config{TTL: time.Nanosecond, MaxStale: 1000 * time.Hour, Workers: 4, Clock: clock.Now})
	defer st.Drain(5 * time.Second)
	if err := st.Register(root.Host, webpage.PhoneSmall, tr); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	go func() { // keep ages advancing so retrains keep firing
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(time.Second)
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	var torn atomic.Int64
	var lookups atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				hs, res := st.Lookup(root, body)
				lookups.Add(1)
				if res.Source == Miss {
					t.Error("registered tenant produced a miss")
					return
				}
				got := hintKeys(hs)
				want := wantA
				if res.Version%2 == 0 {
					want = wantB
				}
				if !sameKeys(got, want) {
					torn.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d of %d lookups saw a hint set inconsistent with their version", n, lookups.Load())
	}
}

func TestInstrumentCountsLookups(t *testing.T) {
	site := webpage.NewSite("storemetrics", webpage.News, 2017)
	clock := newFakeClock()
	reg := telemetry.NewRegistry()
	st := New(Config{TTL: time.Hour, Clock: clock.Now})
	st.Instrument(reg)
	defer st.Drain(time.Second)
	root := site.RootURL()
	if err := st.Register(root.Host, webpage.PhoneSmall, StaticTrainer(trainedResolver(t, site))); err != nil {
		t.Fatal(err)
	}
	st.Lookup(root, "")
	u, _ := parseURL(t, "https://nobody.example/")
	st.Lookup(u, "")
	if v := reg.Counter(metricLookups, telemetry.L("source", "fresh")).Value(); v != 1 {
		t.Fatalf("fresh counter = %d, want 1", v)
	}
	if v := reg.Counter(metricLookups, telemetry.L("source", "miss")).Value(); v != 1 {
		t.Fatalf("miss counter = %d, want 1", v)
	}
	if v := reg.Gauge(metricTenants).Value(); v != 1 {
		t.Fatalf("tenants gauge = %d, want 1", v)
	}
}

func hintKeys(hs []hints.Hint) []string {
	keys := make([]string, len(hs))
	for i, h := range hs {
		keys[i] = h.URL.String()
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parseURL(t testing.TB, raw string) (urlutil.URL, error) {
	t.Helper()
	u, err := urlutil.Parse(raw)
	if err != nil {
		t.Fatalf("parse %q: %v", raw, err)
	}
	return u, nil
}
