package hintstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// TestLRUEvictionRacesRegisterAndDrain hammers the eviction path from many
// goroutines under the race detector: registrations far past MaxTenants
// (every one evicting a coldest shard), lookups touching shards as they are
// evicted underneath them, staleness-triggered background retrains, and a
// Drain racing all of it. The invariants: no lookup ever observes a torn
// table (it answers from whatever shard it loaded, or misses), the tenant
// count never exceeds the cap, and Register after Drain fails ErrClosed.
func TestLRUEvictionRacesRegisterAndDrain(t *testing.T) {
	const (
		maxTenants = 8
		writers    = 4
		readers    = 4
		origins    = 64
	)
	site := webpage.NewSite("lrurace", webpage.News, 2017)
	r := trainedResolver(t, site)
	clock := newFakeClock()
	st := New(Config{
		TTL:        time.Nanosecond, // every lookup schedules a retrain
		MaxStale:   time.Hour,
		MaxTenants: maxTenants,
		Workers:    2,
		Clock:      clock.Now,
	})
	clock.Advance(time.Millisecond) // all tables born an instant ago, already past TTL

	urls := make([]urlutil.URL, origins)
	for i := range urls {
		urls[i] = urlutil.MustParse(fmt.Sprintf("https://tenant-%02d.example/", i))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[(w*17+i)%origins]
				if err := st.Register(u.Host, webpage.PhoneSmall, StaticTrainer(r)); err != nil {
					if errors.Is(err, ErrClosed) {
						return // drain won the race, as designed
					}
					t.Errorf("register %s: %v", u.Host, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[(w*31+i)%origins]
				_, res := st.Lookup(u, "")
				switch res.Source {
				case Fresh, Stale, Shed, Miss:
				default:
					t.Errorf("lookup returned impossible source %v", res.Source)
					return
				}
				if n := st.Tenants(); n > maxTenants {
					t.Errorf("tenant count %d exceeds cap %d", n, maxTenants)
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	cps := st.Drain(5 * time.Second) // races the registers and lookups above
	close(stop)
	wg.Wait()

	if len(cps) > maxTenants {
		t.Fatalf("drain checkpointed %d tenants, cap is %d", len(cps), maxTenants)
	}
	if err := st.Register("late.example", webpage.PhoneSmall, StaticTrainer(r)); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after drain: %v, want ErrClosed", err)
	}
	// Post-drain lookups still answer read-only from surviving tables.
	for _, cp := range cps {
		u := urlutil.MustParse("https://" + cp.Origin + "/")
		if _, res := st.Lookup(u, ""); res.Source == Miss {
			t.Fatalf("checkpointed tenant %s missing after drain", cp.Origin)
		}
	}
}
