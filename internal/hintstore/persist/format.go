// Package persist makes the hint store's trained state durable. Vroom's
// whole win depends on the server holding trained per-origin dependency
// hints; keeping them only in memory means a crash or deploy restart throws
// away hours of training and forces a synchronous retrain storm before the
// server is useful again. This package gives every origin a snapshot +
// write-ahead-log pair on disk and a recovery path that rebuilds the newest
// consistent table from whatever a crash left behind.
//
// On-disk layout, one directory per origin under the state dir:
//
//	<state-dir>/<origin>/snap-<version>.vsnap   versioned full snapshots
//	<state-dir>/<origin>/wal.log                retrain deltas since the last snapshot
//	<state-dir>/<origin>/quarantine/            corrupt or torn bytes, kept for forensics
//
// A snapshot is a versioned, length-prefixed, CRC32C-checksummed envelope
// around one JSON-encoded TableState, written via temp file + fsync +
// atomic rename + directory fsync, so a reader never observes a partially
// written snapshot under POSIX rename semantics. The WAL is an append-only
// sequence of length-prefixed, checksummed records (each a complete
// TableState — a retrain publishes a whole table, so the "delta" is
// self-contained); a torn tail is expected after a crash and is quarantined,
// never fatal. Recovery loads the newest snapshot that validates, then
// replays WAL records with higher versions.
//
// Every write boundary consults an optional CrashFn hook, so a torture test
// can kill the layer at each of them (see internal/faults.Plan.CrashPoint)
// and assert recovery never loads a corrupt table.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"vroom/internal/core"
	"vroom/internal/webpage"
)

// TableState is one origin's complete durable state: the published table's
// identity plus the shard counters that should survive a restart (lookup
// and retrain counts feed LRU eviction and capacity planning; the quality
// ledger feeds efficacy reporting).
type TableState struct {
	Origin    string              `json:"origin"`
	Version   uint64              `json:"version"`
	TrainedAt time.Time           `json:"trained_at"`
	Device    webpage.DeviceClass `json:"device"`
	Lookups   int64               `json:"lookups"`
	Retrains  int64               `json:"retrains"`
	Resolver  core.ResolverState  `json:"resolver"`
	// Quality is the tenant's hint-efficacy ledger. Added after format
	// version 1 shipped: JSON decoding leaves it zero for old snapshots and
	// old readers ignore the key, so no format bump is needed.
	Quality QualityState `json:"quality"`
}

// QualityState is the durable form of one tenant's hint-efficacy counters
// (see hintstore.Quality for the accounting rules).
type QualityState struct {
	HintsEmitted    int64 `json:"hints_emitted"`
	HintsUsed       int64 `json:"hints_used"`
	HintsUnused     int64 `json:"hints_unused"`
	HintsMissed     int64 `json:"hints_missed"`
	PushedCount     int64 `json:"pushed_count"`
	PushedBytes     int64 `json:"pushed_bytes"`
	WastedPushBytes int64 `json:"wasted_push_bytes"`
	PushLeadMsSum   int64 `json:"push_lead_ms_sum"`
	PushLeads       int64 `json:"push_leads"`
	StaleServeMsSum int64 `json:"stale_serve_ms_sum"`
	StaleServes     int64 `json:"stale_serves"`
}

// Format constants. Bump formatVersion on incompatible change — recovery
// quarantines files from a different generation instead of guessing.
const (
	snapMagic     = "VSNP"
	walMagic      = "VWAL"
	formatVersion = 1

	// maxRecordBytes bounds one payload; a length prefix past it is treated
	// as corruption, so a flipped length byte cannot balloon an allocation.
	maxRecordBytes = 64 << 20
)

// Envelope framing sizes.
const (
	snapHeaderLen = 4 + 2 + 4 // magic + format version + payload length
	walHeaderLen  = 4 + 2     // magic + format version (file header)
	recHeaderLen  = 4 + 4     // payload length + CRC32C (per record)
	crcLen        = 4
)

// castagnoli is the CRC32C table (the polynomial with hardware support on
// both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports bytes that do not decode as a valid snapshot or WAL
// record: bad magic, wrong format version, implausible length, checksum
// mismatch, or truncation.
var ErrCorrupt = errors.New("persist: corrupt record")

// EncodeTable renders the canonical payload encoding of one table state.
// JSON with sorted map keys is deterministic, so two stores holding the
// same trained table encode byte-identical payloads — the property the
// crash-torture harness pins recovery against.
func EncodeTable(t TableState) ([]byte, error) {
	return json.Marshal(t)
}

// DecodeTable parses a payload produced by EncodeTable.
func DecodeTable(b []byte) (TableState, error) {
	var t TableState
	if err := json.Unmarshal(b, &t); err != nil {
		return TableState{}, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	return t, nil
}

// EncodeSnapshot renders the full snapshot file for one table:
//
//	[4]"VSNP" [2]format [4]len [len]payload [4]crc32c(payload)
func EncodeSnapshot(t TableState) ([]byte, error) {
	payload, err := EncodeTable(t)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, snapHeaderLen+len(payload)+crcLen)
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint16(out, formatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return out, nil
}

// DecodeSnapshot parses and validates a snapshot file. Any framing or
// checksum violation returns ErrCorrupt — callers quarantine, never trust.
func DecodeSnapshot(b []byte) (TableState, error) {
	if len(b) < snapHeaderLen+crcLen {
		return TableState{}, fmt.Errorf("%w: short snapshot (%d bytes)", ErrCorrupt, len(b))
	}
	if string(b[:4]) != snapMagic {
		return TableState{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != formatVersion {
		return TableState{}, fmt.Errorf("%w: format version %d (want %d)", ErrCorrupt, v, formatVersion)
	}
	n := binary.LittleEndian.Uint32(b[6:10])
	if n > maxRecordBytes || int(n) != len(b)-snapHeaderLen-crcLen {
		return TableState{}, fmt.Errorf("%w: length %d vs %d file bytes", ErrCorrupt, n, len(b))
	}
	payload := b[snapHeaderLen : snapHeaderLen+int(n)]
	want := binary.LittleEndian.Uint32(b[len(b)-crcLen:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return TableState{}, fmt.Errorf("%w: crc %08x, want %08x", ErrCorrupt, got, want)
	}
	return DecodeTable(payload)
}

// walFileHeader is the fixed header a fresh WAL file begins with.
func walFileHeader() []byte {
	out := make([]byte, 0, walHeaderLen)
	out = append(out, walMagic...)
	return binary.LittleEndian.AppendUint16(out, formatVersion)
}

// EncodeWALRecord renders one appended record:
//
//	[4]len [4]crc32c(payload) [len]payload
func EncodeWALRecord(t TableState) ([]byte, error) {
	payload, err := EncodeTable(t)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, recHeaderLen+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...), nil
}

// ScanWAL parses a WAL file's contents. It returns every valid record in
// order, the byte offset scanning stopped at, and whether the remainder was
// a torn or corrupt suffix (tail=false means the file ended cleanly at a
// record boundary). Scanning is strictly sequential: the first bad record
// invalidates everything after it, because an append-only log has no way to
// resynchronize past a record whose very length field may be garbage.
func ScanWAL(b []byte) (recs []TableState, off int, torn bool) {
	if len(b) < walHeaderLen {
		return nil, 0, len(b) > 0
	}
	if string(b[:4]) != walMagic ||
		binary.LittleEndian.Uint16(b[4:6]) != formatVersion {
		return nil, 0, true
	}
	off = walHeaderLen
	for off < len(b) {
		rest := b[off:]
		if len(rest) < recHeaderLen {
			return recs, off, true
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if n > maxRecordBytes || int(n) > len(rest)-recHeaderLen {
			return recs, off, true
		}
		payload := rest[recHeaderLen : recHeaderLen+int(n)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return recs, off, true
		}
		t, err := DecodeTable(payload)
		if err != nil {
			return recs, off, true
		}
		recs = append(recs, t)
		off += recHeaderLen + int(n)
	}
	return recs, off, false
}
