package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"vroom/internal/core"
	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// testState builds a deterministic table state: the same (origin, version)
// always yields byte-identical canonical encodings, which is what both the
// round-trip tests and the crash-torture control rely on.
func testState(origin string, version uint64) TableState {
	base := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	deps := make([]core.Dep, 0, 3)
	for i := 0; i < 3; i++ {
		deps = append(deps, core.Dep{
			URL:      urlutil.MustParse(fmt.Sprintf("https://%s/asset-%d-%d.js", origin, version, i)),
			Priority: hints.High,
			Order:    i,
		})
	}
	return TableState{
		Origin:    origin,
		Version:   version,
		TrainedAt: base.Add(time.Duration(version) * time.Hour),
		Device:    webpage.PhoneSmall,
		Lookups:   int64(version * 10),
		Retrains:  int64(version),
		Resolver: core.ResolverState{
			Config: core.ResolverConfig{UseOffline: true, OfflineLoads: 3, Interval: time.Hour},
			Stable: map[string][]core.Dep{
				"https://" + origin + "/": deps,
			},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testState("news.example", 7)
	b, err := EncodeSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := EncodeTable(want)
	gb, _ := EncodeTable(got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("round trip changed the table:\n want %s\n got  %s", wb, gb)
	}
}

func TestEncodeTableDeterministic(t *testing.T) {
	a, err := EncodeTable(testState("news.example", 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeTable(testState("news.example", 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same logical state encoded to different bytes")
	}
}

// TestDecodeSnapshotRejectsCorruption flips, truncates, and rewrites a valid
// snapshot every which way; every mutation must surface as ErrCorrupt, never
// as a quietly wrong table.
func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	valid, err := EncodeSnapshot(testState("news.example", 7))
	if err != nil {
		t.Fatal(err)
	}

	// Every single-byte flip must be caught.
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x41
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(valid))
		}
	}
	// Every truncation must be caught.
	for n := 0; n < len(valid); n++ {
		if _, err := DecodeSnapshot(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	// A huge claimed length must not allocate or pass.
	mut := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(mut[6:10], maxRecordBytes+1)
	if _, err := DecodeSnapshot(mut); err == nil {
		t.Fatal("oversized length prefix went undetected")
	}
}

func TestScanWALRoundTripAndTornTail(t *testing.T) {
	var wal []byte
	wal = append(wal, walFileHeader()...)
	for v := uint64(1); v <= 5; v++ {
		rec, err := EncodeWALRecord(testState("news.example", v))
		if err != nil {
			t.Fatal(err)
		}
		wal = append(wal, rec...)
	}

	recs, off, torn := ScanWAL(wal)
	if torn || len(recs) != 5 || off != len(wal) {
		t.Fatalf("clean WAL scan: %d recs, off %d/%d, torn=%v", len(recs), off, len(wal), torn)
	}
	for i, r := range recs {
		if r.Version != uint64(i+1) {
			t.Fatalf("record %d has version %d", i, r.Version)
		}
	}

	// Any truncation yields exactly the records before the cut. A cut that
	// lands on a record boundary is a clean (shorter) WAL; anywhere else is
	// a torn tail.
	boundaries := map[int]bool{}
	for o := walHeaderLen; o < len(wal); {
		boundaries[o] = true
		n := binary.LittleEndian.Uint32(wal[o : o+4])
		o += recHeaderLen + int(n)
	}
	for cut := len(wal) - 1; cut > walHeaderLen; cut-- {
		recs, off, torn := ScanWAL(wal[:cut])
		if torn == boundaries[cut] {
			t.Fatalf("cut at %d: torn=%v, boundary=%v", cut, torn, boundaries[cut])
		}
		if off > cut {
			t.Fatalf("cut at %d reported offset %d past the data", cut, off)
		}
		for i, r := range recs {
			if r.Version != uint64(i+1) {
				t.Fatalf("cut at %d: surviving record %d has version %d", cut, i, r.Version)
			}
		}
	}

	// A flipped payload byte invalidates that record and everything after.
	mut := append([]byte(nil), wal...)
	mut[walHeaderLen+recHeaderLen] ^= 0x41 // first record's first payload byte
	recs, _, torn = ScanWAL(mut)
	if !torn || len(recs) != 0 {
		t.Fatalf("corrupt first record: %d recs, torn=%v", len(recs), torn)
	}

	// Garbage magic and an empty file.
	if _, _, torn := ScanWAL([]byte("garbage!")); !torn {
		t.Fatal("bad magic not reported torn")
	}
	if recs, _, torn := ScanWAL(nil); torn || len(recs) != 0 {
		t.Fatal("empty WAL should scan clean and empty")
	}
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder: it must
// never panic or allocate absurdly, and whatever it accepts must re-encode
// into a snapshot it accepts again.
func FuzzSnapshotDecode(f *testing.F) {
	valid, err := EncodeSnapshot(testState("news.example", 7))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	f.Add(valid[:len(valid)-1])
	f.Fuzz(func(t *testing.T, b []byte) {
		ts, err := DecodeSnapshot(b)
		if err != nil {
			return
		}
		re, err := EncodeSnapshot(ts)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if _, err := DecodeSnapshot(re); err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
	})
}

// FuzzWALDecode feeds arbitrary bytes to the WAL scanner: no panics, the
// reported offset must stay in bounds, and every returned record must be one
// the encoder accepts back.
func FuzzWALDecode(f *testing.F) {
	var wal []byte
	wal = append(wal, walFileHeader()...)
	for v := uint64(1); v <= 3; v++ {
		rec, err := EncodeWALRecord(testState("news.example", v))
		if err != nil {
			f.Fatal(err)
		}
		wal = append(wal, rec...)
	}
	f.Add(wal)
	f.Add([]byte{})
	f.Add(walFileHeader())
	f.Add(wal[:len(wal)-3])
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, off, _ := ScanWAL(b)
		if off < 0 || off > len(b) {
			t.Fatalf("offset %d out of bounds for %d bytes", off, len(b))
		}
		for _, r := range recs {
			if _, err := EncodeWALRecord(r); err != nil {
				t.Fatalf("scanned record failed to re-encode: %v", err)
			}
		}
	})
}
