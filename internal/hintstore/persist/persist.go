package persist

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vroom/internal/telemetry"
)

// Persist metric families.
const (
	metricWALAppends  = "vroom_persist_wal_appends_total"
	metricWALFsyncMs  = "vroom_persist_wal_fsync_ms"
	metricRotations   = "vroom_persist_wal_rotations_total"
	metricSnapshots   = "vroom_persist_snapshots_total"
	metricSnapBytes   = "vroom_persist_snapshot_bytes"
	metricRecoveryMs  = "vroom_persist_recovery_ms"
	metricRecovered   = "vroom_persist_recovered_tables"
	metricQuarantined = "vroom_persist_quarantined_total"
)

// FsyncPolicy selects how hard the layer pushes bytes to stable storage.
type FsyncPolicy int

// Fsync policies.
const (
	// FsyncAlways syncs the WAL after every append and every snapshot step
	// (temp file and directory) — the durability default: an acknowledged
	// retrain survives kill -9.
	FsyncAlways FsyncPolicy = iota
	// FsyncNone leaves flushing to the OS page cache. Appends are cheap but
	// the newest records may be lost on a machine crash; recovery still
	// never loads a corrupt table, it just recovers an older version.
	FsyncNone
)

func (f FsyncPolicy) String() string {
	if f == FsyncNone {
		return "none"
	}
	return "always"
}

// ParseFsync parses the -fsync CLI value.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	}
	return FsyncAlways, fmt.Errorf("persist: unknown fsync policy %q (want always or none)", s)
}

// CrashFn is the injection hook the torture harness installs: it is
// consulted at every named write boundary, and a true verdict simulates
// kill -9 right there — the in-progress write is cut to torn bytes and the
// persister refuses all further work with ErrCrashed. Production leaves it
// nil. faults.Plan.CrashPoint satisfies this signature.
type CrashFn func(point string) (crash bool, tornBytes int)

// ErrCrashed reports an operation refused because an injected crashpoint
// already "killed" this persister. Everything after it fails the same way,
// exactly as writes after a real SIGKILL would never happen.
var ErrCrashed = errors.New("persist: injected crash")

// Options sizes the durable layer. The zero value of any field selects its
// default; a zero Dir disables persistence entirely at the store layer.
type Options struct {
	// Dir is the state directory; one subdirectory per origin is created
	// under it.
	Dir string
	// SnapshotEvery is the interval between periodic full snapshots of all
	// tables (default 30s). The hint store's snapshot loop reads it.
	SnapshotEvery time.Duration
	// WALRotateBytes rotates an origin's WAL into a fresh snapshot once it
	// grows past this size (default 1 MiB), bounding replay work.
	WALRotateBytes int64
	// Fsync selects the durability/throughput trade (default FsyncAlways).
	Fsync FsyncPolicy
	// KeepSnapshots retains this many newest snapshots per origin (default
	// 2): the newest may be the one a crash tore, so recovery wants a
	// predecessor to fall back to.
	KeepSnapshots int
	// Crash, when non-nil, is the torture harness's kill switch.
	Crash CrashFn
	// Log, when non-nil, receives structured persistence events.
	Log *slog.Logger
}

func (o Options) snapshotEvery() time.Duration {
	if o.SnapshotEvery > 0 {
		return o.SnapshotEvery
	}
	return 30 * time.Second
}

// SnapshotInterval exposes the resolved periodic-snapshot interval.
func (o Options) SnapshotInterval() time.Duration { return o.snapshotEvery() }

func (o Options) rotateBytes() int64 {
	if o.WALRotateBytes > 0 {
		return o.WALRotateBytes
	}
	return 1 << 20
}

func (o Options) keepSnapshots() int {
	if o.KeepSnapshots > 0 {
		return o.KeepSnapshots
	}
	return 2
}

// SnapInfo describes one origin's outcome in a full snapshot flush.
type SnapInfo struct {
	Origin string
	// Path and Bytes describe the snapshot file written ("" / 0 on error).
	Path  string
	Bytes int64
	// Err carries the per-origin failure, empty on success. A string, not
	// an error, so it rides checkpoint structs and logs verbatim.
	Err string
}

// originLog is one origin's open WAL handle.
type originLog struct {
	dir      string
	wal      *os.File
	walBytes int64
}

// Persister owns the write side of the durable layer. All methods are safe
// for concurrent use; writes serialize on one mutex (persistence is off the
// lookup path — only retrain publishes and snapshot ticks land here). A nil
// *Persister is valid and persists nothing, so the store needs no guards.
type Persister struct {
	opts Options

	mu      sync.Mutex
	dead    bool
	origins map[string]*originLog

	mAppends   *telemetry.Counter
	mRotations *telemetry.Counter
	mSnaps     *telemetry.Counter
	mSnapBytes *telemetry.Gauge
	mFsyncMs   *telemetry.Histogram
}

// Open readies the state directory and returns a running persister.
func Open(opts Options) (*Persister, error) {
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Persister{opts: opts, origins: make(map[string]*originLog)}, nil
}

// Options returns the persister's resolved options.
func (p *Persister) Options() Options {
	if p == nil {
		return Options{}
	}
	return p.opts
}

// Instrument attaches the persist metric families to reg, stamping the
// one-shot recovery figures from rec (nil rec means a cold start with no
// prior state). Nil reg costs nothing.
func (p *Persister) Instrument(reg *telemetry.Registry, rec *Recovery) {
	if p == nil || reg == nil {
		return
	}
	reg.Describe(metricWALAppends, "WAL records appended (retrain publishes).")
	reg.Describe(metricWALFsyncMs, "WAL fsync latency in milliseconds.")
	reg.Describe(metricRotations, "WAL rotations into a fresh snapshot.")
	reg.Describe(metricSnapshots, "Snapshot files written.")
	reg.Describe(metricSnapBytes, "Bytes written by the most recent full snapshot flush.")
	reg.Describe(metricRecoveryMs, "Cold-start recovery time in milliseconds (snapshot load + WAL replay).")
	reg.Describe(metricRecovered, "Tables restored from disk at cold start.")
	reg.Describe(metricQuarantined, "Corrupt or torn artifacts quarantined by recovery.")
	p.mu.Lock()
	p.mAppends = reg.Counter(metricWALAppends)
	p.mRotations = reg.Counter(metricRotations)
	p.mSnaps = reg.Counter(metricSnapshots)
	p.mSnapBytes = reg.Gauge(metricSnapBytes)
	p.mFsyncMs = reg.Histogram(metricWALFsyncMs)
	p.mu.Unlock()
	if rec != nil {
		reg.Gauge(metricRecoveryMs).Set(rec.Elapsed.Milliseconds())
		reg.Gauge(metricRecovered).Set(int64(len(rec.Tables)))
		reg.Counter(metricQuarantined).Add(int64(len(rec.Quarantined)))
	} else {
		reg.Gauge(metricRecoveryMs).Set(0)
		reg.Gauge(metricRecovered).Set(0)
	}
}

// originDir maps an origin name onto a filesystem-safe directory.
func originDir(origin string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-':
			return r
		}
		return '_'
	}, origin)
	if safe == "" {
		safe = "_"
	}
	return safe
}

// crash consults the injection hook at a named boundary. On a crash verdict
// the persister is dead from here on.
func (p *Persister) crash(point string) (tornBytes int, crashed bool) {
	if p.opts.Crash == nil {
		return 0, false
	}
	crash, torn := p.opts.Crash(point)
	if !crash {
		return 0, false
	}
	p.dead = true
	if p.opts.Log != nil {
		p.opts.Log.Info("crashpoint", "point", point, "torn", torn)
	}
	return torn, true
}

// maybeSync fsyncs f under FsyncAlways, recording the latency.
func (p *Persister) maybeSync(f *os.File) error {
	if p.opts.Fsync == FsyncNone {
		return nil
	}
	start := time.Now()
	err := f.Sync()
	if p.mFsyncMs != nil {
		p.mFsyncMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
	return err
}

// openOrigin returns the origin's WAL handle, creating the directory and a
// fresh WAL on first use. The WAL is always truncated at first open in this
// process: everything worth keeping was either recovered and immediately
// re-snapshotted (NewDurable's recovery checkpoint) or never existed, so a
// stale or torn tail from the previous process must not be appended after.
func (p *Persister) openOrigin(origin string) (*originLog, error) {
	if ol := p.origins[origin]; ol != nil {
		return ol, nil
	}
	dir := filepath.Join(p.opts.Dir, originDir(origin))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, "wal.log"),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := walFileHeader()
	if _, err := wal.Write(hdr); err != nil {
		wal.Close()
		return nil, err
	}
	ol := &originLog{dir: dir, wal: wal, walBytes: int64(len(hdr))}
	p.origins[origin] = ol
	return ol, nil
}

// Append writes one retrain publish to the origin's WAL, rotating into a
// fresh snapshot when the WAL outgrows its budget. The record is a complete
// table state, so rotation needs nothing but the bytes just appended.
func (p *Persister) Append(t TableState) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return ErrCrashed
	}
	ol, err := p.openOrigin(t.Origin)
	if err != nil {
		return err
	}
	rec, err := EncodeWALRecord(t)
	if err != nil {
		return err
	}
	if torn, crashed := p.crash("wal-append"); crashed {
		if torn > len(rec) {
			torn = len(rec)
		}
		ol.wal.Write(rec[:torn])
		ol.wal.Sync()
		return ErrCrashed
	}
	if _, err := ol.wal.Write(rec); err != nil {
		return err
	}
	ol.walBytes += int64(len(rec))
	if _, crashed := p.crash("wal-sync"); crashed {
		// Died between write and fsync: the record may or may not reach the
		// platter. Our simulation keeps it (recovery handles both — a whole
		// record is valid, a missing one just recovers the prior version).
		return ErrCrashed
	}
	if err := p.maybeSync(ol.wal); err != nil {
		return err
	}
	if p.mAppends != nil {
		p.mAppends.Inc()
	}
	if ol.walBytes > p.opts.rotateBytes() {
		if p.mRotations != nil {
			p.mRotations.Inc()
		}
		if _, err := p.snapshotLocked(ol.dir, t); err != nil {
			return err
		}
		if _, crashed := p.crash("wal-rotate"); crashed {
			// Snapshot written, WAL not yet reset: recovery takes the max
			// version across both, so this window is merely redundant bytes.
			return ErrCrashed
		}
		if err := p.resetWALLocked(t.Origin, ol); err != nil {
			return err
		}
	}
	return nil
}

// resetWALLocked truncates an origin's WAL back to its header after a
// snapshot made its records redundant.
func (p *Persister) resetWALLocked(origin string, ol *originLog) error {
	ol.wal.Close()
	wal, err := os.OpenFile(filepath.Join(ol.dir, "wal.log"),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		delete(p.origins, origin)
		return err
	}
	hdr := walFileHeader()
	if _, err := wal.Write(hdr); err != nil {
		wal.Close()
		delete(p.origins, origin)
		return err
	}
	ol.wal, ol.walBytes = wal, int64(len(hdr))
	if _, crashed := p.crash("wal-reset"); crashed {
		return ErrCrashed
	}
	return p.maybeSync(wal)
}

// snapshotLocked writes one origin's snapshot file via temp + fsync +
// atomic rename + dir fsync, then prunes snapshots beyond the retention
// budget. It returns the final path. It takes the directory, not an open
// WAL handle, so a snapshot can be written before the origin's WAL is
// first opened (first open truncates — the snapshot must be durable
// before any WAL bytes are discarded).
func (p *Persister) snapshotLocked(dir string, t TableState) (SnapInfo, error) {
	info := SnapInfo{Origin: t.Origin}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return info, err
	}
	b, err := EncodeSnapshot(t)
	if err != nil {
		return info, err
	}
	final := filepath.Join(dir, fmt.Sprintf("snap-%016x.vsnap", t.Version))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return info, err
	}
	if torn, crashed := p.crash("snap-temp"); crashed {
		if torn > len(b) {
			torn = len(b)
		}
		f.Write(b[:torn])
		f.Close()
		return info, ErrCrashed
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return info, err
	}
	if _, crashed := p.crash("snap-sync"); crashed {
		f.Close()
		return info, ErrCrashed
	}
	if err := p.maybeSync(f); err != nil {
		f.Close()
		return info, err
	}
	if err := f.Close(); err != nil {
		return info, err
	}
	if _, crashed := p.crash("snap-rename"); crashed {
		// Temp file left behind; recovery quarantines it and keeps serving
		// the previous snapshot.
		return info, ErrCrashed
	}
	if err := os.Rename(tmp, final); err != nil {
		return info, err
	}
	if _, crashed := p.crash("snap-dirsync"); crashed {
		return info, ErrCrashed
	}
	if p.opts.Fsync == FsyncAlways {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	if p.mSnaps != nil {
		p.mSnaps.Inc()
	}
	info.Path, info.Bytes = final, int64(len(b))
	if _, crashed := p.crash("snap-gc"); crashed {
		return info, ErrCrashed
	}
	p.pruneSnapshotsLocked(dir)
	if p.opts.Log != nil {
		p.opts.Log.Debug("snapshot", "origin", t.Origin, "version", t.Version,
			"bytes", len(b), "path", final)
	}
	return info, nil
}

// pruneSnapshotsLocked deletes all but the newest KeepSnapshots snapshot
// files. Deletion failures are ignored: stale snapshots cost bytes, not
// correctness (recovery prefers higher versions).
func (p *Persister) pruneSnapshotsLocked(dir string) {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.vsnap"))
	if err != nil || len(names) <= p.opts.keepSnapshots() {
		return
	}
	sort.Strings(names) // version is zero-padded hex: lexicographic == numeric
	for _, name := range names[:len(names)-p.opts.keepSnapshots()] {
		os.Remove(name)
	}
}

// SnapshotAll flushes a full snapshot of every given table and resets each
// origin's WAL (the snapshot supersedes its records). Per-origin failures
// land in the returned infos; the error is the first failure, so a caller
// that only cares whether the flush was clean can test err alone. An
// injected crash aborts the flush mid-way — exactly the torture case.
func (p *Persister) SnapshotAll(tables []TableState) ([]SnapInfo, error) {
	if p == nil {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return nil, ErrCrashed
	}
	var (
		infos      []SnapInfo
		firstErr   error
		totalBytes int64
	)
	for _, t := range tables {
		// Snapshot first, WAL second: the first openOrigin in a process
		// truncates the WAL, so the snapshot superseding its records must be
		// durable (renamed into place) before that truncation can happen. A
		// crash between the two costs only redundant bytes, never a version.
		info, err := p.snapshotLocked(filepath.Join(p.opts.Dir, originDir(t.Origin)), t)
		if err == nil {
			var ol *originLog
			if ol, err = p.openOrigin(t.Origin); err == nil {
				err = p.resetWALLocked(t.Origin, ol)
			}
		}
		info.Origin = t.Origin
		if err != nil {
			info.Err = err.Error()
			if firstErr == nil {
				firstErr = err
			}
		}
		totalBytes += info.Bytes
		infos = append(infos, info)
		if errors.Is(err, ErrCrashed) {
			break // the process is "dead": nothing later would have run
		}
	}
	if p.mSnapBytes != nil {
		p.mSnapBytes.Set(totalBytes)
	}
	return infos, firstErr
}

// Close releases the WAL handles. The persister is unusable afterwards.
func (p *Persister) Close() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for origin, ol := range p.origins {
		if err := ol.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(p.origins, origin)
	}
	p.dead = true
	return firstErr
}
