package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mustOpen opens a persister over a fresh temp dir.
func mustOpen(t *testing.T, opts Options) (*Persister, string) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	p, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, opts.Dir
}

// sameTable asserts two states encode to identical canonical bytes.
func sameTable(t *testing.T, want, got TableState) {
	t.Helper()
	wb, _ := EncodeTable(want)
	gb, _ := EncodeTable(got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("tables differ:\n want %s\n got  %s", wb, gb)
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	p, dir := mustOpen(t, Options{})
	for v := uint64(1); v <= 4; v++ {
		if err := p.Append(testState("news.example", v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Append(testState("shop.example", 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tables) != 2 {
		t.Fatalf("recovered %d tables, want 2", len(rec.Tables))
	}
	if len(rec.Quarantined) != 0 {
		t.Fatalf("clean shutdown quarantined %v", rec.Quarantined)
	}
	// Tables come back sorted by origin; each is the newest version.
	sameTable(t, testState("news.example", 4), rec.Tables[0])
	sameTable(t, testState("shop.example", 1), rec.Tables[1])
}

func TestRecoverMissingAndEmptyDir(t *testing.T) {
	rec, err := Recover(filepath.Join(t.TempDir(), "never-created"), nil)
	if err != nil || len(rec.Tables) != 0 {
		t.Fatalf("missing dir: rec=%+v err=%v", rec, err)
	}
	rec, err = Recover(t.TempDir(), nil)
	if err != nil || len(rec.Tables) != 0 {
		t.Fatalf("empty dir: rec=%+v err=%v", rec, err)
	}
	rec, err = Recover("", nil)
	if err != nil || len(rec.Tables) != 0 {
		t.Fatalf("blank dir: rec=%+v err=%v", rec, err)
	}
}

// TestWALRotation drives appends past the rotation budget and checks the
// rotation cut a snapshot and reset the WAL to just its header.
func TestWALRotation(t *testing.T) {
	p, dir := mustOpen(t, Options{WALRotateBytes: 1}) // rotate after every append
	for v := uint64(1); v <= 3; v++ {
		if err := p.Append(testState("news.example", v)); err != nil {
			t.Fatal(err)
		}
	}
	odir := filepath.Join(dir, "news.example")
	snaps, _ := filepath.Glob(filepath.Join(odir, "snap-*.vsnap"))
	if len(snaps) == 0 {
		t.Fatal("rotation cut no snapshot")
	}
	b, err := os.ReadFile(filepath.Join(odir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != walHeaderLen {
		t.Fatalf("rotated WAL holds %d bytes, want bare %d-byte header", len(b), walHeaderLen)
	}
	p.Close()

	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tables) != 1 {
		t.Fatalf("recovered %d tables", len(rec.Tables))
	}
	sameTable(t, testState("news.example", 3), rec.Tables[0])
}

func TestSnapshotPruneRetention(t *testing.T) {
	p, dir := mustOpen(t, Options{WALRotateBytes: 1, KeepSnapshots: 2})
	for v := uint64(1); v <= 6; v++ {
		if err := p.Append(testState("news.example", v)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "news.example", "snap-*.vsnap"))
	if len(snaps) != 2 {
		t.Fatalf("retention kept %d snapshots, want 2: %v", len(snaps), snaps)
	}
	// The survivors are the two newest versions.
	for _, s := range snaps {
		if !strings.HasSuffix(s, "0005.vsnap") && !strings.HasSuffix(s, "0006.vsnap") {
			t.Fatalf("retention kept the wrong snapshot %s", s)
		}
	}
}

func TestSnapshotAllFlushesAndResetsWAL(t *testing.T) {
	p, dir := mustOpen(t, Options{})
	states := []TableState{testState("a.example", 2), testState("b.example", 5)}
	for _, s := range states {
		if err := p.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := p.SnapshotAll(states)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("got %d infos", len(infos))
	}
	for _, in := range infos {
		if in.Err != "" || in.Path == "" || in.Bytes == 0 {
			t.Fatalf("bad flush info %+v", in)
		}
		if fi, err := os.Stat(in.Path); err != nil || fi.Size() != in.Bytes {
			t.Fatalf("info %+v does not match disk (%v)", in, err)
		}
		wal, err := os.ReadFile(filepath.Join(filepath.Dir(in.Path), "wal.log"))
		if err != nil || len(wal) != walHeaderLen {
			t.Fatalf("WAL not reset after flush: %d bytes, err %v", len(wal), err)
		}
	}
	p.Close()

	rec, err := Recover(dir, nil)
	if err != nil || len(rec.Tables) != 2 {
		t.Fatalf("recover after flush: %d tables, err %v", len(rec.Tables), err)
	}
	sameTable(t, states[0], rec.Tables[0])
	sameTable(t, states[1], rec.Tables[1])
}

// TestRecoverQuarantinesCorruptSnapshot corrupts the newest snapshot and
// checks recovery falls back to its predecessor and moves the bad file to
// quarantine.
func TestRecoverQuarantinesCorruptSnapshot(t *testing.T) {
	p, dir := mustOpen(t, Options{WALRotateBytes: 1, KeepSnapshots: 3})
	for v := uint64(1); v <= 2; v++ {
		if err := p.Append(testState("news.example", v)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	odir := filepath.Join(dir, "news.example")
	snaps, _ := filepath.Glob(filepath.Join(odir, "snap-*.vsnap"))
	if len(snaps) != 2 {
		t.Fatalf("setup wrote %d snapshots", len(snaps))
	}
	newest := snaps[len(snaps)-1]
	b, _ := os.ReadFile(newest)
	b[len(b)/2] ^= 0x41
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// And an orphaned temp file from a hypothetical interrupted snapshot.
	orphan := filepath.Join(odir, "snap-ffff.vsnap.tmp")
	os.WriteFile(orphan, []byte("partial"), 0o644)

	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tables) != 1 {
		t.Fatalf("recovered %d tables", len(rec.Tables))
	}
	sameTable(t, testState("news.example", 1), rec.Tables[0])
	if len(rec.Quarantined) != 2 {
		t.Fatalf("quarantined %v, want the corrupt snapshot and the orphan", rec.Quarantined)
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot still in place")
	}
	if got := QuarantineList(dir); len(got) != 2 {
		t.Fatalf("QuarantineList found %v", got)
	}
}

// TestRecoverTornWALTail truncates a WAL mid-record and checks recovery
// keeps the whole records, quarantines the tail bytes, and counts it.
func TestRecoverTornWALTail(t *testing.T) {
	p, dir := mustOpen(t, Options{})
	for v := uint64(1); v <= 3; v++ {
		if err := p.Append(testState("news.example", v)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	walPath := filepath.Join(dir, "news.example", "wal.log")
	b, _ := os.ReadFile(walPath)
	if err := os.WriteFile(walPath, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTails != 1 || len(rec.Tables) != 1 {
		t.Fatalf("rec=%+v", rec)
	}
	sameTable(t, testState("news.example", 2), rec.Tables[0])
	if len(rec.Quarantined) != 1 || !strings.Contains(rec.Quarantined[0], "wal-tail-") {
		t.Fatalf("torn tail not quarantined: %v", rec.Quarantined)
	}
}

// TestCrashedPersisterRefusesWork injects a crash at the first append and
// checks every later operation fails with ErrCrashed — the kill -9 analog.
func TestCrashedPersisterRefusesWork(t *testing.T) {
	p, _ := mustOpen(t, Options{
		Crash: func(point string) (bool, int) { return point == "wal-append", 3 },
	})
	if err := p.Append(testState("news.example", 1)); err != ErrCrashed {
		t.Fatalf("crashed append returned %v", err)
	}
	if err := p.Append(testState("news.example", 2)); err != ErrCrashed {
		t.Fatalf("post-crash append returned %v", err)
	}
	if _, err := p.SnapshotAll([]TableState{testState("news.example", 2)}); err != ErrCrashed {
		t.Fatalf("post-crash snapshot returned %v", err)
	}
}

// TestNilPersisterIsSafe: the memory-only store passes a nil persister
// everywhere; every method must be a cheap no-op.
func TestNilPersisterIsSafe(t *testing.T) {
	var p *Persister
	if err := p.Append(testState("x", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SnapshotAll(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p.Instrument(nil, nil)
}
