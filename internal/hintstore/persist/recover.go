package persist

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Recovery is the outcome of one cold-start pass over a state directory.
type Recovery struct {
	// Tables are the recovered table states, one per origin with any valid
	// state, sorted by origin.
	Tables []TableState
	// Quarantined lists the artifacts moved to quarantine: corrupt
	// snapshots, orphaned temp files, torn WAL tails. Kept, never deleted —
	// the forensics a crash leaves behind.
	Quarantined []string
	// Snapshots counts snapshot files that validated; WALRecords counts WAL
	// records replayed; TornTails counts WALs whose suffix was quarantined
	// (the expected artifact of a crash mid-append).
	Snapshots  int
	WALRecords int
	TornTails  int
	// Elapsed is the wall time recovery took — the cold-start cost the
	// telemetry plane reports.
	Elapsed time.Duration
}

// Recover rebuilds every origin's newest consistent table from a state
// directory: per origin, the newest snapshot that validates, then any WAL
// records with higher versions on top. Corrupt or torn artifacts are
// quarantined (moved aside, recorded), never fatal — recovery's contract is
// that it always returns the best valid state and never loads a corrupt
// table. A missing or empty directory recovers nothing and is not an error.
func Recover(dir string, log *slog.Logger) (*Recovery, error) {
	start := time.Now()
	rec := &Recovery{}
	if dir == "" {
		return rec, nil
	}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if t, ok := recoverOrigin(filepath.Join(dir, e.Name()), rec, log); ok {
			rec.Tables = append(rec.Tables, t)
		}
	}
	sort.Slice(rec.Tables, func(i, j int) bool {
		return rec.Tables[i].Origin < rec.Tables[j].Origin
	})
	rec.Elapsed = time.Since(start)
	if log != nil {
		log.Info("recovered", "tables", len(rec.Tables),
			"snapshots", rec.Snapshots, "wal_records", rec.WALRecords,
			"quarantined", len(rec.Quarantined),
			"ms", rec.Elapsed.Milliseconds())
	}
	return rec, nil
}

// recoverOrigin rebuilds one origin directory.
func recoverOrigin(dir string, rec *Recovery, log *slog.Logger) (TableState, bool) {
	var (
		cur   TableState
		found bool
	)

	// Orphaned temp files are snapshots a crash interrupted before rename;
	// they were never visible, quarantine them unread.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, tmp := range tmps {
			quarantine(dir, tmp, "orphan", rec, log)
		}
	}

	// Newest snapshot that validates wins; corrupt ones are quarantined and
	// the scan falls back to the predecessor.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.vsnap"))
	sort.Sort(sort.Reverse(sort.StringSlice(snaps))) // zero-padded hex: newest first
	for _, name := range snaps {
		b, err := os.ReadFile(name)
		if err != nil {
			quarantine(dir, name, "unreadable", rec, log)
			continue
		}
		t, err := DecodeSnapshot(b)
		if err != nil {
			quarantine(dir, name, "corrupt", rec, log)
			continue
		}
		cur, found = t, true
		rec.Snapshots++
		break
	}

	// Replay the WAL on top: every valid record with a higher version
	// advances the table; the suffix past the first bad record is
	// quarantined (a torn tail is the normal signature of a crash
	// mid-append, not an emergency).
	walPath := filepath.Join(dir, "wal.log")
	if b, err := os.ReadFile(walPath); err == nil && len(b) > 0 {
		recs, off, torn := ScanWAL(b)
		for _, t := range recs {
			rec.WALRecords++
			if !found || t.Version > cur.Version {
				cur, found = t, true
			}
		}
		if torn {
			rec.TornTails++
			saveQuarantine(dir, fmt.Sprintf("wal-tail-%d.bin", off), b[off:], rec, log)
		}
	}
	return cur, found
}

// quarantine moves a bad artifact into the origin's quarantine directory.
func quarantine(dir, path, reason string, rec *Recovery, log *slog.Logger) {
	qdir := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	dst := filepath.Join(qdir, reason+"-"+filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		return
	}
	rec.Quarantined = append(rec.Quarantined, dst)
	if log != nil {
		log.Warn("quarantined", "artifact", dst, "reason", reason)
	}
}

// saveQuarantine writes raw bytes (a torn WAL tail) into quarantine.
func saveQuarantine(dir, name string, b []byte, rec *Recovery, log *slog.Logger) {
	qdir := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	dst := filepath.Join(qdir, name)
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		return
	}
	rec.Quarantined = append(rec.Quarantined, dst)
	if log != nil {
		log.Warn("quarantined", "artifact", dst, "reason", "torn-tail",
			"bytes", len(b))
	}
}

// QuarantineList returns every quarantined artifact currently on disk under
// a state directory, for CI artifact upload and operator inspection.
func QuarantineList(dir string) []string {
	var out []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(path, string(filepath.Separator)+"quarantine"+string(filepath.Separator)) {
			out = append(out, path)
		}
		return nil
	})
	sort.Strings(out)
	return out
}
