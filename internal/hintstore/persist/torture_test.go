package persist

import (
	"errors"
	"testing"

	"vroom/internal/faults"
)

// TestCrashTorture is the headline durability harness: hundreds of seeded
// crashes injected at randomized persist boundaries (wal-append, wal-sync,
// wal-rotate, wal-reset, snap-temp, snap-sync, snap-rename, snap-dirsync,
// snap-gc — including torn partial writes), each followed by a full
// recovery. The invariants, checked after every single crash:
//
//   - zero corrupt loads: every recovered table is byte-identical to the
//     never-crashed control's state at the same version (the control is the
//     deterministic testState generator — what a process that never died
//     would have persisted for that version);
//   - monotone versions: recovery never goes backwards — once version v of
//     an origin was recovered, no later recovery may yield an older one;
//   - no lost origins: an origin seen once is seen by every later recovery.
//
// One iteration = one process lifetime: recover, write the recovery
// checkpoint (exactly as hintstore.NewDurable does), then append retrain
// publishes until the injected crash kills it. The state directory persists
// across iterations, so recovery is always over real crash wreckage,
// including wreckage from recovering previous wreckage.
func TestCrashTorture(t *testing.T) {
	const wantCrashes = 300
	dir := t.TempDir()
	origins := []string{"alpha.example", "beta.example", "gamma.example"}
	next := map[string]uint64{}          // next version each origin publishes
	lastRecovered := map[string]uint64{} // monotonicity watermark
	crashes, cleanRuns := 0, 0

	for iter := 0; crashes < wantCrashes; iter++ {
		if iter > 50*wantCrashes {
			t.Fatalf("only %d crashes after %d iterations; raise CrashRate", crashes, iter)
		}

		// --- recovery: the part under test ---
		rec, err := Recover(dir, nil)
		if err != nil {
			t.Fatalf("iter %d: recovery must never fail, got %v", iter, err)
		}
		if len(rec.Tables) < len(lastRecovered) {
			t.Fatalf("iter %d: recovery lost origins: got %d, had %d",
				iter, len(rec.Tables), len(lastRecovered))
		}
		for _, ts := range rec.Tables {
			sameTable(t, testState(ts.Origin, ts.Version), ts) // zero corrupt loads
			if ts.Version < lastRecovered[ts.Origin] {
				t.Fatalf("iter %d: %s recovered at version %d after already reaching %d",
					iter, ts.Origin, ts.Version, lastRecovered[ts.Origin])
			}
			lastRecovered[ts.Origin] = ts.Version
		}

		// --- one crash-doomed process lifetime ---
		plan := faults.New(int64(10_000+iter), faults.Config{
			CrashRate:    0.06, // a few percent per boundary: crashes land all over
			CrashMaxTorn: 600,  // torn partial writes up to most of a record
		})
		p, err := Open(Options{
			Dir:            dir,
			WALRotateBytes: 2500, // a few records per WAL: rotations happen often
			KeepSnapshots:  2,
			Crash:          plan.CrashPoint,
		})
		if err != nil {
			t.Fatal(err)
		}
		crashed := false
		// Recovery checkpoint, exactly as NewDurable issues it.
		if _, err := p.SnapshotAll(rec.Tables); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("iter %d: checkpoint failed for a real reason: %v", iter, err)
			}
			crashed = true
		}
		for i := 0; i < 12 && !crashed; i++ {
			origin := origins[i%len(origins)]
			if next[origin] == 0 {
				next[origin] = 1
			}
			v := next[origin]
			switch err := p.Append(testState(origin, v)); {
			case errors.Is(err, ErrCrashed):
				crashed = true
			case err != nil:
				t.Fatalf("iter %d: append %s v%d: %v", iter, origin, v, err)
			default:
				next[origin] = v + 1
			}
		}
		if crashed {
			crashes++
			// The dead persister must refuse everything, like a dead process.
			if err := p.Append(testState(origins[0], 1)); !errors.Is(err, ErrCrashed) {
				t.Fatalf("iter %d: post-crash append returned %v", iter, err)
			}
		} else {
			cleanRuns++
			if err := p.Close(); err != nil {
				t.Fatalf("iter %d: clean close: %v", iter, err)
			}
		}
	}

	// Final clean recovery: every origin is present at its highest durable
	// version with control-identical bytes, and no corruption survived the
	// whole campaign unquarantined.
	rec, err := Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tables) != len(origins) {
		t.Fatalf("final recovery found %d origins, want %d", len(rec.Tables), len(origins))
	}
	for _, ts := range rec.Tables {
		sameTable(t, testState(ts.Origin, ts.Version), ts)
		// next[origin] itself may be durable: an append that "crashed" at the
		// wal-sync boundary still wrote its record whole (it just wasn't
		// acknowledged), so the bound is the last attempted version.
		if ts.Version > next[ts.Origin] {
			t.Fatalf("%s recovered version %d beyond anything attempted (%d)", ts.Origin, ts.Version, next[ts.Origin])
		}
	}
	t.Logf("torture: %d crashes over %d clean runs; final versions %v; %d quarantined artifacts on disk",
		crashes, cleanRuns, lastRecovered, len(QuarantineList(dir)))
}
