package hintstore

import (
	"sync/atomic"
	"time"

	"vroom/internal/hintstore/persist"
	"vroom/internal/telemetry"
)

// Hint-quality metric families: the per-tenant efficacy surface. All are
// bounded-cardinality Vec families labeled by origin (capped at the store's
// MaxTenants, overflow folded into "other") so a tenant storm cannot grow
// the exposition. Precision and recall are computed at scrape/audit time
// from the counters, never stored.
const (
	MetricHintsEmitted = "vroom_hint_quality_hints_emitted_total"
	MetricHintsUsed    = "vroom_hint_quality_hints_used_total"
	MetricHintsUnused  = "vroom_hint_quality_hints_unused_total"
	MetricHintsMissed  = "vroom_hint_quality_hints_missed_total"
	MetricPushedBytes  = "vroom_hint_quality_pushed_bytes_total"
	MetricWastedPush   = "vroom_hint_quality_wasted_push_bytes_total"
	MetricPushLeadMs   = "vroom_hint_quality_push_lead_ms"
	MetricStalenessMs  = "vroom_hint_quality_staleness_ms"
)

// Quality is one tenant's hint-efficacy ledger, accumulated alongside the
// shard's lookup/retrain counters and persisted with them, so efficacy
// history survives a restart the same way trained tables do.
//
// The accounting rules (DESIGN.md §13): a hint is "emitted" when it is
// served to a client on a page response; "used" when that client requests
// the hinted URL within the accounting window; "unused" when the window
// expires first. A "missed" request is a subresource fetch the table never
// hinted — the recall denominator's other half. Push-byte usage is settled
// client-side (a claimed push never re-crosses the wire), so
// WastedPushBytes here is fed by whichever reconciler can see it: the wire
// accountant's expired pushed-hint windows, or the simulator's browser.
type Quality struct {
	HintsEmitted atomic.Int64
	HintsUsed    atomic.Int64
	HintsUnused  atomic.Int64
	HintsMissed  atomic.Int64

	PushedCount     atomic.Int64
	PushedBytes     atomic.Int64
	WastedPushBytes atomic.Int64

	// PushLeadMsSum/PushLeads accumulate push lead time — how far ahead of
	// the client's need a pushed resource arrived.
	PushLeadMsSum atomic.Int64
	PushLeads     atomic.Int64
	// StaleServeMsSum/StaleServes accumulate the served table's staleness
	// age (now - trainedAt) at hint-serving time.
	StaleServeMsSum atomic.Int64
	StaleServes     atomic.Int64
}

// QualityDelta is one batch of efficacy observations applied to a tenant's
// ledger. The wire accountant and the simulator settle events one at a
// time, so a delta usually carries a single nonzero field.
type QualityDelta struct {
	HintsEmitted, HintsUsed, HintsUnused, HintsMissed int64
	PushedCount, PushedBytes, WastedPushBytes         int64
	// PushLeadMs / StaleServeMs are duration observations (ms); counted
	// when the matching count field is nonzero.
	PushLeadMs float64
	PushLeads  int64
	StaleMs    float64
	StaleObs   int64
}

// apply folds the delta into the ledger.
func (q *Quality) apply(d QualityDelta) {
	if q == nil {
		return
	}
	addPos(&q.HintsEmitted, d.HintsEmitted)
	addPos(&q.HintsUsed, d.HintsUsed)
	addPos(&q.HintsUnused, d.HintsUnused)
	addPos(&q.HintsMissed, d.HintsMissed)
	addPos(&q.PushedCount, d.PushedCount)
	addPos(&q.PushedBytes, d.PushedBytes)
	addPos(&q.WastedPushBytes, d.WastedPushBytes)
	if d.PushLeads > 0 {
		q.PushLeadMsSum.Add(int64(d.PushLeadMs))
		q.PushLeads.Add(d.PushLeads)
	}
	if d.StaleObs > 0 {
		q.StaleServeMsSum.Add(int64(d.StaleMs))
		q.StaleServes.Add(d.StaleObs)
	}
}

func addPos(c *atomic.Int64, n int64) {
	if n > 0 {
		c.Add(n)
	}
}

// QualitySnapshot is a point-in-time copy of a tenant's ledger with derived
// precision/recall.
type QualitySnapshot struct {
	Origin string

	HintsEmitted int64
	HintsUsed    int64
	HintsUnused  int64
	HintsMissed  int64

	PushedCount     int64
	PushedBytes     int64
	WastedPushBytes int64

	PushLeadMsSum   int64
	PushLeads       int64
	StaleServeMsSum int64
	StaleServes     int64
}

// Precision is used / (used + unused): of the hints whose windows settled,
// the fraction the client actually requested. NaN-free: zero denominator
// reports 0.
func (s QualitySnapshot) Precision() float64 {
	den := s.HintsUsed + s.HintsUnused
	if den == 0 {
		return 0
	}
	return float64(s.HintsUsed) / float64(den)
}

// Recall is used / (used + missed): of the subresources the client needed,
// the fraction the table predicted.
func (s QualitySnapshot) Recall() float64 {
	den := s.HintsUsed + s.HintsMissed
	if den == 0 {
		return 0
	}
	return float64(s.HintsUsed) / float64(den)
}

// MeanPushLeadMs is the average push lead time (0 when no leads settled).
func (s QualitySnapshot) MeanPushLeadMs() float64 {
	if s.PushLeads == 0 {
		return 0
	}
	return float64(s.PushLeadMsSum) / float64(s.PushLeads)
}

// MeanStalenessMs is the average served-table staleness age.
func (s QualitySnapshot) MeanStalenessMs() float64 {
	if s.StaleServes == 0 {
		return 0
	}
	return float64(s.StaleServeMsSum) / float64(s.StaleServes)
}

func (q *Quality) snapshot(origin string) QualitySnapshot {
	if q == nil {
		return QualitySnapshot{Origin: origin}
	}
	return QualitySnapshot{
		Origin:          origin,
		HintsEmitted:    q.HintsEmitted.Load(),
		HintsUsed:       q.HintsUsed.Load(),
		HintsUnused:     q.HintsUnused.Load(),
		HintsMissed:     q.HintsMissed.Load(),
		PushedCount:     q.PushedCount.Load(),
		PushedBytes:     q.PushedBytes.Load(),
		WastedPushBytes: q.WastedPushBytes.Load(),
		PushLeadMsSum:   q.PushLeadMsSum.Load(),
		PushLeads:       q.PushLeads.Load(),
		StaleServeMsSum: q.StaleServeMsSum.Load(),
		StaleServes:     q.StaleServes.Load(),
	}
}

// state renders the ledger's durable form for a snapshot or WAL record.
func (q *Quality) state() persist.QualityState {
	return persist.QualityState{
		HintsEmitted:    q.HintsEmitted.Load(),
		HintsUsed:       q.HintsUsed.Load(),
		HintsUnused:     q.HintsUnused.Load(),
		HintsMissed:     q.HintsMissed.Load(),
		PushedCount:     q.PushedCount.Load(),
		PushedBytes:     q.PushedBytes.Load(),
		WastedPushBytes: q.WastedPushBytes.Load(),
		PushLeadMsSum:   q.PushLeadMsSum.Load(),
		PushLeads:       q.PushLeads.Load(),
		StaleServeMsSum: q.StaleServeMsSum.Load(),
		StaleServes:     q.StaleServes.Load(),
	}
}

// restore seeds the ledger from a recovered snapshot.
func (q *Quality) restore(s persist.QualityState) {
	q.HintsEmitted.Store(s.HintsEmitted)
	q.HintsUsed.Store(s.HintsUsed)
	q.HintsUnused.Store(s.HintsUnused)
	q.HintsMissed.Store(s.HintsMissed)
	q.PushedCount.Store(s.PushedCount)
	q.PushedBytes.Store(s.PushedBytes)
	q.WastedPushBytes.Store(s.WastedPushBytes)
	q.PushLeadMsSum.Store(s.PushLeadMsSum)
	q.PushLeads.Store(s.PushLeads)
	q.StaleServeMsSum.Store(s.StaleServeMsSum)
	q.StaleServes.Store(s.StaleServes)
}

// qualityVecs is the store's bundle of per-origin efficacy metric handles;
// the zero value (Instrument never called) no-ops on every path.
type qualityVecs struct {
	emitted *telemetry.CounterVec
	used    *telemetry.CounterVec
	unused  *telemetry.CounterVec
	missed  *telemetry.CounterVec
	pushedB *telemetry.CounterVec
	wastedB *telemetry.CounterVec
	leadMs  *telemetry.HistogramVec
	staleMs *telemetry.HistogramVec
}

func (st *Store) instrumentQuality(reg *telemetry.Registry) {
	reg.Describe(MetricHintsEmitted, "Hints served to clients, by origin.")
	reg.Describe(MetricHintsUsed, "Hints the client requested within the accounting window.")
	reg.Describe(MetricHintsUnused, "Hints whose accounting window expired unrequested.")
	reg.Describe(MetricHintsMissed, "Subresource requests the hint table failed to predict.")
	reg.Describe(MetricPushedBytes, "Bytes pushed ahead of request, by origin.")
	reg.Describe(MetricWastedPush, "Pushed bytes never used by the client.")
	reg.Describe(MetricPushLeadMs, "Push lead time: how far ahead of need a push arrived (ms).")
	reg.Describe(MetricStalenessMs, "Served hint-table staleness age at lookup (ms).")
	cap := st.cfg.maxTenants()
	st.qual = qualityVecs{
		emitted: reg.CounterVec(MetricHintsEmitted, "origin", cap),
		used:    reg.CounterVec(MetricHintsUsed, "origin", cap),
		unused:  reg.CounterVec(MetricHintsUnused, "origin", cap),
		missed:  reg.CounterVec(MetricHintsMissed, "origin", cap),
		pushedB: reg.CounterVec(MetricPushedBytes, "origin", cap),
		wastedB: reg.CounterVec(MetricWastedPush, "origin", cap),
		leadMs:  reg.HistogramVec(MetricPushLeadMs, "origin", cap),
		staleMs: reg.HistogramVec(MetricStalenessMs, "origin", cap),
	}
}

// NoteQuality folds one batch of efficacy observations into origin's ledger
// and the per-origin metric families. Unknown origins (evicted tenants,
// misses) still reach the metrics so the scrape surface is complete, but
// have no shard ledger to persist. Safe on a nil store.
func (st *Store) NoteQuality(origin string, d QualityDelta) {
	if st == nil {
		return
	}
	st.mu.RLock()
	sh := st.tenants[origin]
	st.mu.RUnlock()
	if sh != nil {
		sh.quality.apply(d)
	}
	q := &st.qual
	addVec(q.emitted, origin, d.HintsEmitted)
	addVec(q.used, origin, d.HintsUsed)
	addVec(q.unused, origin, d.HintsUnused)
	addVec(q.missed, origin, d.HintsMissed)
	addVec(q.pushedB, origin, d.PushedBytes)
	addVec(q.wastedB, origin, d.WastedPushBytes)
	if d.PushLeads > 0 {
		q.leadMs.With(origin).Observe(d.PushLeadMs)
	}
	if d.StaleObs > 0 {
		q.staleMs.With(origin).Observe(d.StaleMs)
	}
}

func addVec(cv *telemetry.CounterVec, origin string, n int64) {
	if cv == nil || n <= 0 {
		return
	}
	cv.With(origin).Add(n)
}

// QualityOf returns a point-in-time snapshot of one tenant's efficacy
// ledger (zero snapshot for unknown origins or a nil store).
func (st *Store) QualityOf(origin string) QualitySnapshot {
	if st == nil {
		return QualitySnapshot{Origin: origin}
	}
	st.mu.RLock()
	sh := st.tenants[origin]
	st.mu.RUnlock()
	if sh == nil {
		return QualitySnapshot{Origin: origin}
	}
	return sh.quality.snapshot(origin)
}

// QualityAll snapshots every resident tenant's ledger, sorted by origin via
// the caller if needed (map iteration order here).
func (st *Store) QualityAll() []QualitySnapshot {
	if st == nil {
		return nil
	}
	st.mu.RLock()
	out := make([]QualitySnapshot, 0, len(st.tenants))
	for origin, sh := range st.tenants {
		out = append(out, sh.quality.snapshot(origin))
	}
	st.mu.RUnlock()
	return out
}

// NoteStaleServe records the served-table staleness age for origin —
// called by the serving path with Result.Age on every hint serve.
func (st *Store) NoteStaleServe(origin string, age time.Duration) {
	st.NoteQuality(origin, QualityDelta{StaleMs: float64(age.Milliseconds()), StaleObs: 1})
}
