package hintstore

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"vroom/internal/hintstore/persist"
	"vroom/internal/telemetry"
	"vroom/internal/webpage"
)

// TestQualityLedgerAndMetrics drives NoteQuality and checks the per-shard
// ledger, the derived precision/recall, and the bounded per-origin metric
// families all agree.
func TestQualityLedgerAndMetrics(t *testing.T) {
	site := webpage.NewSite("quality00", webpage.News, 2017)
	origin := site.RootURL().Host
	r := trainedResolver(t, site)

	reg := telemetry.NewRegistry()
	st := New(Config{TTL: time.Hour, MaxTenants: 4})
	st.Instrument(reg)
	defer st.Drain(time.Second)
	if err := st.Register(origin, webpage.PhoneSmall, StaticTrainer(r)); err != nil {
		t.Fatal(err)
	}

	st.NoteQuality(origin, QualityDelta{HintsEmitted: 10})
	st.NoteQuality(origin, QualityDelta{HintsUsed: 7, PushedCount: 3, PushedBytes: 3000})
	st.NoteQuality(origin, QualityDelta{HintsUnused: 3, WastedPushBytes: 1000})
	st.NoteQuality(origin, QualityDelta{HintsMissed: 1})
	st.NoteQuality(origin, QualityDelta{PushLeadMs: 40, PushLeads: 1})
	st.NoteStaleServe(origin, 1500*time.Millisecond)

	q := st.QualityOf(origin)
	if q.HintsEmitted != 10 || q.HintsUsed != 7 || q.HintsUnused != 3 || q.HintsMissed != 1 {
		t.Fatalf("ledger counts: %+v", q)
	}
	if got := q.Precision(); got != 0.7 {
		t.Errorf("precision = %v, want 0.7", got)
	}
	if got := q.Recall(); got != 0.875 {
		t.Errorf("recall = %v, want 0.875", got)
	}
	if q.PushedBytes != 3000 || q.WastedPushBytes != 1000 {
		t.Errorf("push bytes: %+v", q)
	}
	if got := q.MeanPushLeadMs(); got != 40 {
		t.Errorf("mean push lead = %v, want 40", got)
	}
	if got := q.MeanStalenessMs(); got != 1500 {
		t.Errorf("mean staleness = %v, want 1500", got)
	}

	// Unknown origins reach metrics but have no ledger.
	st.NoteQuality("nobody.example", QualityDelta{HintsEmitted: 5})
	if got := st.QualityOf("nobody.example"); got.HintsEmitted != 0 {
		t.Errorf("unknown origin grew a ledger: %+v", got)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, want := range []string{
		MetricHintsEmitted + `{origin="` + origin + `"} 10`,
		MetricHintsUsed + `{origin="` + origin + `"} 7`,
		MetricWastedPush + `{origin="` + origin + `"} 1000`,
		MetricHintsEmitted + `{origin="nobody.example"} 5`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if all := st.QualityAll(); len(all) != 1 || all[0].Origin != origin {
		t.Errorf("QualityAll = %+v", all)
	}

	// Nil-store safety.
	var nst *Store
	nst.NoteQuality(origin, QualityDelta{HintsEmitted: 1})
	_ = nst.QualityOf(origin)
	_ = nst.QualityAll()
}

// TestQualityPersistsAcrossRestart proves the efficacy ledger rides the
// snapshot path: accumulate, drain, recover in a second store, and the
// counters carry over exactly — then keep accumulating on top.
func TestQualityPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	site := webpage.NewSite("quality01", webpage.News, 2017)
	origin := site.RootURL().Host
	r := trainedResolver(t, site)
	cfg := Config{TTL: time.Hour, Persist: persist.Options{Dir: dir}}

	st, _, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Register(origin, webpage.PhoneSmall, StaticTrainer(r)); err != nil {
		t.Fatal(err)
	}
	st.NoteQuality(origin, QualityDelta{
		HintsEmitted: 20, HintsUsed: 15, HintsUnused: 5, HintsMissed: 2,
		PushedCount: 4, PushedBytes: 4096, WastedPushBytes: 512,
		PushLeadMs: 80, PushLeads: 2, StaleMs: 3000, StaleObs: 2,
	})
	st.Drain(time.Second)

	st2, rec, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Drain(time.Second)
	if len(rec.Tables) != 1 {
		t.Fatalf("recovered %d tables, want 1", len(rec.Tables))
	}
	if got := rec.Tables[0].Quality.HintsUsed; got != 15 {
		t.Fatalf("recovered quality.hints_used = %d, want 15", got)
	}
	q := st2.QualityOf(origin)
	if q.HintsEmitted != 20 || q.HintsUsed != 15 || q.HintsUnused != 5 ||
		q.HintsMissed != 2 || q.PushedBytes != 4096 || q.WastedPushBytes != 512 ||
		q.PushLeadMsSum != 80 || q.PushLeads != 2 || q.StaleServeMsSum != 3000 || q.StaleServes != 2 {
		t.Fatalf("restored ledger: %+v", q)
	}
	// Accumulation continues from the restored base.
	st2.NoteQuality(origin, QualityDelta{HintsUsed: 1})
	if got := st2.QualityOf(origin).HintsUsed; got != 16 {
		t.Errorf("post-restore accumulation: used = %d, want 16", got)
	}
}
