package htmlparse

import (
	"strings"

	"vroom/internal/urlutil"
)

// RefKind classifies how a resource reference was declared in markup.
type RefKind int

// Reference kinds.
const (
	RefScript     RefKind = iota // <script src>
	RefStylesheet                // <link rel=stylesheet>
	RefImage                     // <img>, <source>, <video poster>
	RefIframe                    // <iframe src> (embedded HTML)
	RefFont                      // <link rel=preload as=font>
	RefMedia                     // <video src>, <audio src>
	RefPreload                   // <link rel=preload> (other)
	RefInlineCSS                 // url(...) found inside an inline <style>
	RefInlineJS                  // URL literal found inside an inline <script>
	RefOther                     // favicons, manifests, prefetch, ...
)

func (k RefKind) String() string {
	switch k {
	case RefScript:
		return "script"
	case RefStylesheet:
		return "stylesheet"
	case RefImage:
		return "image"
	case RefIframe:
		return "iframe"
	case RefFont:
		return "font"
	case RefMedia:
		return "media"
	case RefPreload:
		return "preload"
	case RefInlineCSS:
		return "inline-css"
	case RefInlineJS:
		return "inline-js"
	case RefOther:
		return "other"
	}
	return "unknown"
}

// Reference is one resource reference discovered in an HTML document.
type Reference struct {
	URL   urlutil.URL
	Kind  RefKind
	Async bool // script with async or defer
	// Order is the document-order index of the reference; Vroom hints list
	// resources in the order the client will process them.
	Order int
	// Offset is the byte offset of the owning token, used to model
	// incremental discovery during simulated parsing.
	Offset int
}

// InlineScanner extracts URL references from inline script or style bodies.
// It decouples htmlparse from the css/js scanners so each can be tested
// alone; Extract callers wire in cssparse.ExtractURLs / jsparse.ExtractURLs.
type InlineScanner func(body string) []string

// ExtractOptions configures Extract.
type ExtractOptions struct {
	// Base is the document URL used to resolve relative references.
	Base urlutil.URL
	// CSSScanner and JSScanner, when non-nil, extract URLs from inline
	// <style> and <script> bodies.
	CSSScanner InlineScanner
	JSScanner  InlineScanner
}

// Extract tokenizes an HTML document and returns every resource reference in
// document order. Duplicate URLs are preserved (the caller deduplicates if
// needed) because discovery order matters for scheduling.
func Extract(doc string, opts ExtractOptions) []Reference {
	var (
		refs     []Reference
		z        = NewTokenizer(doc)
		order    int
		rawOwner string // "script" or "style" when inside one with no src
	)
	add := func(raw string, kind RefKind, async bool, offset int) {
		u, ok := urlutil.Resolve(opts.Base, raw)
		if !ok {
			return
		}
		refs = append(refs, Reference{URL: u, Kind: kind, Async: async, Order: order, Offset: offset})
		order++
	}
	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case TextToken:
			switch rawOwner {
			case "style":
				if opts.CSSScanner != nil {
					for _, raw := range opts.CSSScanner(tok.Data) {
						add(raw, RefInlineCSS, false, tok.Offset)
					}
				}
			case "script":
				if opts.JSScanner != nil {
					for _, raw := range opts.JSScanner(tok.Data) {
						add(raw, RefInlineJS, false, tok.Offset)
					}
				}
			}
		case EndTagToken:
			if tok.Data == rawOwner {
				rawOwner = ""
			}
		case StartTagToken, SelfClosingTagToken:
			switch tok.Data {
			case "script":
				if src, ok := tok.Attr("src"); ok && src != "" {
					async := tok.HasAttr("async") || tok.HasAttr("defer")
					add(src, RefScript, async, tok.Offset)
				} else if tok.Type == StartTagToken {
					rawOwner = "script"
				}
			case "style":
				if tok.Type == StartTagToken {
					rawOwner = "style"
				}
			case "link":
				refs, order = extractLink(tok, opts, refs, order)
			case "img":
				if src, ok := tok.Attr("src"); ok {
					add(src, RefImage, false, tok.Offset)
				}
				if srcset, ok := tok.Attr("srcset"); ok {
					for _, raw := range splitSrcset(srcset) {
						add(raw, RefImage, false, tok.Offset)
					}
				}
			case "iframe":
				if src, ok := tok.Attr("src"); ok {
					add(src, RefIframe, false, tok.Offset)
				}
			case "source":
				if src, ok := tok.Attr("src"); ok {
					add(src, RefMedia, false, tok.Offset)
				}
				if srcset, ok := tok.Attr("srcset"); ok {
					for _, raw := range splitSrcset(srcset) {
						add(raw, RefImage, false, tok.Offset)
					}
				}
			case "video", "audio":
				if src, ok := tok.Attr("src"); ok {
					add(src, RefMedia, false, tok.Offset)
				}
				if poster, ok := tok.Attr("poster"); ok {
					add(poster, RefImage, false, tok.Offset)
				}
			}
		}
	}
	return refs
}

func extractLink(tok Token, opts ExtractOptions, refs []Reference, order int) ([]Reference, int) {
	href, ok := tok.Attr("href")
	if !ok || href == "" {
		return refs, order
	}
	rel, _ := tok.Attr("rel")
	relTokens := strings.Fields(strings.ToLower(rel))
	hasRel := func(want string) bool {
		for _, tok := range relTokens {
			if tok == want {
				return true
			}
		}
		return false
	}
	u, resolved := urlutil.Resolve(opts.Base, href)
	if !resolved {
		return refs, order
	}
	var kind RefKind
	switch {
	case hasRel("stylesheet"):
		kind = RefStylesheet
	case hasRel("preload"):
		as, _ := tok.Attr("as")
		switch strings.ToLower(as) {
		case "font":
			kind = RefFont
		case "style":
			kind = RefStylesheet
		case "script":
			kind = RefScript
		case "image":
			kind = RefImage
		default:
			kind = RefPreload
		}
	case hasRel("icon"), hasRel("shortcut"), hasRel("apple-touch-icon"),
		hasRel("manifest"), hasRel("prefetch"):
		kind = RefOther
	default:
		return refs, order // dns-prefetch, preconnect, canonical, alternate...
	}
	refs = append(refs, Reference{URL: u, Kind: kind, Order: order, Offset: tok.Offset})
	return refs, order + 1
}

// splitSrcset splits a srcset attribute value into its candidate URLs,
// dropping the width/density descriptors.
func splitSrcset(v string) []string {
	var out []string
	for _, part := range strings.Split(v, ",") {
		fields := strings.Fields(part)
		if len(fields) > 0 {
			out = append(out, fields[0])
		}
	}
	return out
}
