package htmlparse

import (
	"testing"

	"vroom/internal/urlutil"
)

// FuzzTokenizer checks the tokenizer never panics or loops on arbitrary
// input and always terminates having consumed everything.
func FuzzTokenizer(f *testing.F) {
	seeds := []string{
		"",
		"<html><head><script src=a.js></script></head></html>",
		"<img src='x.png' srcset='a 1x, b 2x'>",
		"<!-- comment --><p>text</p>",
		"<script>var x = '<img src=evil>';</script>",
		"<<<>>><a href=",
		"<style>.a{background:url(x)}</style>",
		"<!DOCTYPE html><iframe src=//ads.example/frame.html>",
		"<link rel=preload as=font href=/f.woff2>",
		"\x00\xff<tag \x80attr=\x81>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		z := NewTokenizer(src)
		count := 0
		for {
			_, ok := z.Next()
			if !ok {
				break
			}
			count++
			if count > len(src)+16 {
				t.Fatalf("tokenizer emitted more tokens (%d) than plausible for %d bytes", count, len(src))
			}
		}
	})
}

// FuzzExtract checks reference extraction is total and resolves only valid
// URLs.
func FuzzExtract(f *testing.F) {
	f.Add(`<script src="/a.js"></script><img src="b.png">`)
	f.Add(`<iframe src="https://x.test/f.html">`)
	f.Add(`<link rel="stylesheet" href="//cdn.test/s.css">`)
	base := urlutil.MustParse("https://www.fuzz.test/")
	f.Fuzz(func(t *testing.T, src string) {
		refs := Extract(src, ExtractOptions{Base: base})
		for _, r := range refs {
			if r.URL.Host == "" || r.URL.Scheme == "" {
				t.Fatalf("unresolved ref extracted: %+v", r)
			}
		}
	})
}
