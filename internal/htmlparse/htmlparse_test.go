package htmlparse

import (
	"strings"
	"testing"

	"vroom/internal/urlutil"
)

func tokens(src string) []Token {
	z := NewTokenizer(src)
	var out []Token
	for {
		tok, ok := z.Next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

func TestTokenizerBasics(t *testing.T) {
	toks := tokens(`<!DOCTYPE html><html><head><title>T</title></head><body>hi<br/></body></html>`)
	var kinds []TokenType
	for _, tk := range toks {
		kinds = append(kinds, tk.Type)
	}
	want := []TokenType{DoctypeToken, StartTagToken, StartTagToken, StartTagToken, TextToken,
		EndTagToken, EndTagToken, StartTagToken, TextToken, SelfClosingTagToken, EndTagToken, EndTagToken}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestTokenizerAttributes(t *testing.T) {
	toks := tokens(`<img src="a.jpg" alt='x y' width=300 loading>`)
	if len(toks) != 1 || toks[0].Data != "img" {
		t.Fatalf("tokens: %v", toks)
	}
	for _, c := range []struct{ name, want string }{
		{"src", "a.jpg"}, {"alt", "x y"}, {"width", "300"}, {"loading", ""},
	} {
		got, ok := toks[0].Attr(c.name)
		if !ok || got != c.want {
			t.Errorf("attr %s = %q (ok=%v), want %q", c.name, got, ok, c.want)
		}
	}
}

func TestTokenizerRawText(t *testing.T) {
	src := `<script>if (a < b) { x("<img src=fake.jpg>"); }</script><p>after</p>`
	toks := tokens(src)
	if toks[0].Type != StartTagToken || toks[0].Data != "script" {
		t.Fatalf("first token %v", toks[0])
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, "a < b") {
		t.Fatalf("script body not raw text: %v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("missing </script>: %v", toks[2])
	}
}

func TestTokenizerComments(t *testing.T) {
	toks := tokens(`<!-- a <img src=x.jpg> b --><p>ok</p>`)
	if toks[0].Type != CommentToken || !strings.Contains(toks[0].Data, "img") {
		t.Fatalf("comment token %v", toks[0])
	}
	if toks[1].Data != "p" {
		t.Fatalf("tag after comment: %v", toks[1])
	}
}

func TestTokenizerMalformed(t *testing.T) {
	// Must not panic or loop on junk.
	for _, src := range []string{
		"<", "<>", "< notatag", "<img src=", `<a href="unterminated`,
		"<!--unterminated", "<script>never closed", "a<b>c<", "<<<<",
	} {
		toks := tokens(src)
		_ = toks
	}
}

func base() urlutil.URL { return urlutil.MustParse("https://www.site.com/") }

func TestExtractKinds(t *testing.T) {
	doc := `<html><head>
	<link rel="stylesheet" href="/css/a.css">
	<link rel="preload" as="font" href="https://fonts.x.com/f.woff2">
	<link rel="icon" href="/favicon.ico">
	<script src="/js/app.js"></script>
	<script async src="https://t.com/tag.js"></script>
	</head><body>
	<img src="/img/1.jpg">
	<img srcset="/img/2-small.jpg 1x, /img/2-big.jpg 2x">
	<iframe src="https://ads.com/slot.html"></iframe>
	<video src="/v.mp4" poster="/img/poster.jpg"></video>
	</body></html>`
	refs := Extract(doc, ExtractOptions{Base: base()})
	byKind := map[RefKind]int{}
	async := 0
	for _, r := range refs {
		byKind[r.Kind]++
		if r.Async {
			async++
		}
	}
	want := map[RefKind]int{
		RefStylesheet: 1, RefFont: 1, RefOther: 1, RefScript: 2,
		RefImage: 4, RefIframe: 1, RefMedia: 1,
	}
	for k, n := range want {
		if byKind[k] != n {
			t.Errorf("kind %v: got %d want %d (refs: %v)", k, byKind[k], n, refs)
		}
	}
	if async != 1 {
		t.Errorf("async scripts = %d, want 1", async)
	}
}

func TestExtractOrderAndOffsets(t *testing.T) {
	doc := `<script src="/1.js"></script><script src="/2.js"></script><img src="/3.jpg">`
	refs := Extract(doc, ExtractOptions{Base: base()})
	if len(refs) != 3 {
		t.Fatalf("refs: %v", refs)
	}
	for i := 1; i < len(refs); i++ {
		if refs[i].Order <= refs[i-1].Order {
			t.Error("orders not increasing")
		}
		if refs[i].Offset <= refs[i-1].Offset {
			t.Error("offsets not increasing")
		}
	}
	if !strings.HasSuffix(refs[0].URL.Path, "/1.js") {
		t.Errorf("first ref %v", refs[0])
	}
}

func TestExtractInlineScanners(t *testing.T) {
	doc := `<style>.a{background:url(/bg.png)}</style>
	<script>var i = new Image(); i.src = "https://x.com/px.gif";</script>`
	refs := Extract(doc, ExtractOptions{
		Base:       base(),
		CSSScanner: func(css string) []string { return []string{"/bg.png"} },
		JSScanner:  func(js string) []string { return []string{"https://x.com/px.gif"} },
	})
	if len(refs) != 2 {
		t.Fatalf("refs: %v", refs)
	}
	if refs[0].Kind != RefInlineCSS || refs[1].Kind != RefInlineJS {
		t.Fatalf("kinds: %v %v", refs[0].Kind, refs[1].Kind)
	}
}

func TestExtractSkipsNonFetchable(t *testing.T) {
	doc := `<img src="data:image/png;base64,xx"><a href="/page">x</a>
	<script src="javascript:void(0)"></script>
	<link rel="preconnect" href="https://cdn.com">
	<link rel="dns-prefetch" href="https://cdn.com">`
	refs := Extract(doc, ExtractOptions{Base: base()})
	if len(refs) != 0 {
		t.Fatalf("unexpected refs: %v", refs)
	}
}

func TestIndexFold(t *testing.T) {
	if i := indexFold("abc</SCRIPT>def", "</script"); i != 3 {
		t.Errorf("indexFold = %d", i)
	}
	if i := indexFold("nothing here", "</script"); i != -1 {
		t.Errorf("indexFold = %d", i)
	}
}
