// Package htmlparse implements a from-scratch HTML tokenizer and the
// resource-reference extraction Vroom's server-side online analysis and the
// simulated browser both rely on.
//
// The tokenizer is intentionally forgiving, mirroring how browsers treat
// real-world markup: unquoted attributes, missing closing tags, and stray
// '<' characters in text are all tolerated. Script and style elements are
// treated as raw text (their content is not tokenized as markup), matching
// the HTML parsing specification's RAWTEXT/script-data states.
package htmlparse

import (
	"strings"
)

// TokenType identifies the kind of a token.
type TokenType int

// Token types.
const (
	TextToken TokenType = iota
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	}
	return "Unknown"
}

// Attr is a single name="value" attribute. Names are lowercased.
type Attr struct {
	Name  string
	Value string
}

// Token is a single lexical token. For tag tokens, Data is the lowercased
// tag name; for text/comment tokens it is the raw content.
type Token struct {
	Type  TokenType
	Data  string
	Attrs []Attr
	// Offset is the byte offset of the token start in the input.
	Offset int
}

// Attr returns the value of the named attribute and whether it was present.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// HasAttr reports whether the named attribute is present (even if empty,
// e.g. <script async>).
func (t *Token) HasAttr(name string) bool {
	_, ok := t.Attr(name)
	return ok
}

// Tokenizer walks HTML input producing tokens. The zero value is not usable;
// create one with NewTokenizer.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when non-empty, means we are inside a raw-text element
	// (script/style/textarea/title) and must scan for its end tag only.
	rawTag string
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token. ok is false at end of input.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.rawTag != "" {
		return z.rawText(), true
	}
	if z.src[z.pos] == '<' {
		if tok, ok := z.tag(); ok {
			return tok, true
		}
		// A lone '<' in text: emit it as text.
	}
	return z.text(), true
}

func (z *Tokenizer) text() Token {
	start := z.pos
	i := strings.IndexByte(z.src[z.pos+1:], '<')
	if i < 0 {
		z.pos = len(z.src)
	} else {
		z.pos += 1 + i
	}
	return Token{Type: TextToken, Data: z.src[start:z.pos], Offset: start}
}

// rawText scans until the matching </rawTag and emits the raw content.
func (z *Tokenizer) rawText() Token {
	start := z.pos
	closer := "</" + z.rawTag
	rest := z.src[z.pos:]
	i := indexFold(rest, closer)
	if i < 0 {
		z.pos = len(z.src)
		z.rawTag = ""
		return Token{Type: TextToken, Data: z.src[start:], Offset: start}
	}
	if i == 0 {
		// Immediately at the end tag: emit it.
		z.rawTag = ""
		tok, _ := z.tag()
		return tok
	}
	z.pos += i
	z.rawTag = "" // the end tag is next; plain tag scanning will find it
	return Token{Type: TextToken, Data: z.src[start : start+i], Offset: start}
}

func (z *Tokenizer) tag() (Token, bool) {
	start := z.pos
	// z.src[z.pos] == '<'
	if z.pos+1 >= len(z.src) {
		return Token{}, false
	}
	c := z.src[z.pos+1]
	switch {
	case c == '!':
		return z.markupDecl(), true
	case c == '/':
		return z.endTag(), true
	case isLetter(c):
		return z.startTag(), true
	default:
		_ = start
		return Token{}, false
	}
}

func (z *Tokenizer) markupDecl() Token {
	start := z.pos
	if strings.HasPrefix(z.src[z.pos:], "<!--") {
		end := strings.Index(z.src[z.pos+4:], "-->")
		if end < 0 {
			z.pos = len(z.src)
			return Token{Type: CommentToken, Data: z.src[start+4:], Offset: start}
		}
		data := z.src[z.pos+4 : z.pos+4+end]
		z.pos += 4 + end + 3
		return Token{Type: CommentToken, Data: data, Offset: start}
	}
	// DOCTYPE or other declaration: skip to '>'.
	end := strings.IndexByte(z.src[z.pos:], '>')
	if end < 0 {
		z.pos = len(z.src)
		return Token{Type: DoctypeToken, Data: z.src[start+2:], Offset: start}
	}
	data := z.src[start+2 : start+end]
	z.pos += end + 1
	return Token{Type: DoctypeToken, Data: data, Offset: start}
}

func (z *Tokenizer) endTag() Token {
	start := z.pos
	z.pos += 2
	name := z.tagName()
	// Skip to '>'.
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++
	}
	return Token{Type: EndTagToken, Data: name, Offset: start}
}

func (z *Tokenizer) startTag() Token {
	start := z.pos
	z.pos++
	name := z.tagName()
	var attrs []Attr
	selfClosing := false
	for z.pos < len(z.src) {
		z.skipSpace()
		if z.pos >= len(z.src) {
			break
		}
		c := z.src[z.pos]
		if c == '>' {
			z.pos++
			break
		}
		if c == '/' {
			z.pos++
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				selfClosing = true
			}
			break
		}
		a, ok := z.attr()
		if !ok {
			z.pos++ // skip stray byte
			continue
		}
		attrs = append(attrs, a)
	}
	typ := StartTagToken
	if selfClosing {
		typ = SelfClosingTagToken
	}
	if !selfClosing && isRawTextTag(name) {
		z.rawTag = name
	}
	return Token{Type: typ, Data: name, Attrs: attrs, Offset: start}
}

func (z *Tokenizer) tagName() string {
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if isSpace(c) || c == '>' || c == '/' {
			break
		}
		z.pos++
	}
	return strings.ToLower(z.src[start:z.pos])
}

func (z *Tokenizer) attr() (Attr, bool) {
	nameStart := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if isSpace(c) || c == '=' || c == '>' || c == '/' {
			break
		}
		z.pos++
	}
	if z.pos == nameStart {
		return Attr{}, false
	}
	name := strings.ToLower(z.src[nameStart:z.pos])
	z.skipSpace()
	if z.pos >= len(z.src) || z.src[z.pos] != '=' {
		return Attr{Name: name}, true // boolean attribute
	}
	z.pos++ // consume '='
	z.skipSpace()
	if z.pos >= len(z.src) {
		return Attr{Name: name}, true
	}
	switch q := z.src[z.pos]; q {
	case '"', '\'':
		z.pos++
		valStart := z.pos
		i := strings.IndexByte(z.src[z.pos:], q)
		if i < 0 {
			z.pos = len(z.src)
			return Attr{Name: name, Value: z.src[valStart:]}, true
		}
		val := z.src[valStart : valStart+i]
		z.pos += i + 1
		return Attr{Name: name, Value: val}, true
	default:
		valStart := z.pos
		for z.pos < len(z.src) {
			c := z.src[z.pos]
			if isSpace(c) || c == '>' {
				break
			}
			z.pos++
		}
		return Attr{Name: name, Value: z.src[valStart:z.pos]}, true
	}
}

func (z *Tokenizer) skipSpace() {
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isLetter(c byte) bool {
	return ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isRawTextTag(name string) bool {
	switch name {
	case "script", "style", "textarea", "title":
		return true
	}
	return false
}

// indexFold finds the first case-insensitive occurrence of needle in s, or
// -1. needle must be ASCII.
func indexFold(s, needle string) int {
	if needle == "" {
		return 0
	}
	n := len(needle)
	first := lowerByte(needle[0])
	for i := 0; i+n <= len(s); i++ {
		if lowerByte(s[i]) != first {
			continue
		}
		j := 1
		for ; j < n; j++ {
			if lowerByte(s[i+j]) != lowerByte(needle[j]) {
				break
			}
		}
		if j == n {
			return i
		}
	}
	return -1
}

func lowerByte(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}
