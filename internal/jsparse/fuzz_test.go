package jsparse

import "testing"

// FuzzAnalyze checks the JS scanner is total on arbitrary input.
func FuzzAnalyze(f *testing.F) {
	for _, s := range []string{
		"",
		`i.src = "https://a.test/x.jpg";`,
		"fetch(`https://a.test/${id}`)",
		"// comment only",
		"/* unterminated",
		`"unterminated string`,
		"`unterminated template",
		`document.write('<script src=x.js></scr'+'ipt>')`,
		"var x = Date.now();",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, js string) {
		a := Analyze(js)
		for _, r := range a.Refs {
			if r.Raw == "" {
				t.Fatal("empty ref extracted")
			}
		}
	})
}
