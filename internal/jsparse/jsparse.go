// Package jsparse implements the lightweight JavaScript analysis Vroom's
// server-side dependency resolution applies to scripts: extracting statically
// apparent resource URLs and detecting user-specific state that makes a
// script's fetches unpredictable (§4.2 of the paper).
//
// It is a lexical scanner: it tokenizes string literals (skipping comments
// and regex-free contexts conservatively) and reports those that look like
// fetchable URLs, together with the fetch idiom they appear in when one is
// recognizable (img.src = "...", fetch("..."), xhr.open("GET", "..."),
// document.write('<script src=...>')).
package jsparse

import (
	"strings"
)

// Idiom describes the syntactic context a URL literal was found in.
type Idiom int

// Idioms.
const (
	IdiomUnknown Idiom = iota
	IdiomImageSrc
	IdiomFetch
	IdiomXHR
	IdiomDocumentWrite
	IdiomImportScripts
)

func (i Idiom) String() string {
	switch i {
	case IdiomImageSrc:
		return "img.src"
	case IdiomFetch:
		return "fetch"
	case IdiomXHR:
		return "xhr"
	case IdiomDocumentWrite:
		return "document.write"
	case IdiomImportScripts:
		return "importScripts"
	}
	return "unknown"
}

// Reference is a statically apparent URL in a script.
type Reference struct {
	Raw   string
	Idiom Idiom
}

// Analysis is the result of scanning a script.
type Analysis struct {
	Refs []Reference
	// UsesUserState reports whether the script consults user-specific state
	// (Date.now, Math.random, document.cookie, localStorage, geolocation).
	// Vroom leaves resources fetched by such scripts for the client to
	// discover because they vary across loads (§4.2).
	UsesUserState bool
}

var userStateMarkers = []string{
	"Math.random", "Date.now", "new Date", "document.cookie",
	"localStorage", "sessionStorage", "navigator.geolocation",
	"crypto.getRandomValues",
}

// Analyze scans a script body.
func Analyze(js string) Analysis {
	var a Analysis
	for _, m := range userStateMarkers {
		if strings.Contains(js, m) {
			a.UsesUserState = true
			break
		}
	}
	var i int
	n := len(js)
	for i < n {
		c := js[i]
		switch {
		case c == '/' && i+1 < n && js[i+1] == '/':
			end := strings.IndexByte(js[i:], '\n')
			if end < 0 {
				return a
			}
			i += end + 1
		case c == '/' && i+1 < n && js[i+1] == '*':
			end := strings.Index(js[i+2:], "*/")
			if end < 0 {
				return a
			}
			i += 2 + end + 2
		case c == '"' || c == '\'' || c == '`':
			lit, next := scanJSString(js, i)
			if looksLikeURL(lit) {
				a.Refs = append(a.Refs, Reference{Raw: lit, Idiom: classify(js, i)})
			} else if strings.Contains(lit, "<script") || strings.Contains(lit, "<img") {
				// document.write of markup: extract src attributes.
				for _, src := range srcAttrs(lit) {
					if looksLikeURL(src) {
						a.Refs = append(a.Refs, Reference{Raw: src, Idiom: IdiomDocumentWrite})
					}
				}
			}
			i = next
		default:
			i++
		}
	}
	return a
}

// ExtractURLs adapts Analyze to the htmlparse.InlineScanner signature.
func ExtractURLs(js string) []string {
	an := Analyze(js)
	out := make([]string, 0, len(an.Refs))
	for _, r := range an.Refs {
		out = append(out, r.Raw)
	}
	return out
}

func scanJSString(js string, i int) (string, int) {
	quote := js[i]
	j := i + 1
	var b strings.Builder
	for j < len(js) {
		c := js[j]
		if c == '\\' && j+1 < len(js) {
			b.WriteByte(js[j+1])
			j += 2
			continue
		}
		if c == quote {
			return b.String(), j + 1
		}
		if quote != '`' && (c == '\n' || c == '\r') {
			return b.String(), j // unterminated
		}
		b.WriteByte(c)
		j++
	}
	return b.String(), j
}

// looksLikeURL reports whether lit is plausibly a fetchable resource URL.
// Template-literal placeholders make a URL dynamic, not static.
func looksLikeURL(lit string) bool {
	if strings.Contains(lit, "${") {
		return false
	}
	if strings.HasPrefix(lit, "http://") || strings.HasPrefix(lit, "https://") || strings.HasPrefix(lit, "//") {
		return true
	}
	if strings.HasPrefix(lit, "/") && len(lit) > 1 && !strings.HasPrefix(lit, "//") {
		// Root-relative path with a file-ish tail.
		return strings.ContainsAny(lit, ".?") || strings.Count(lit, "/") >= 2
	}
	return false
}

// classify inspects the ~48 bytes before offset i for a known fetch idiom,
// picking the marker closest to the literal.
func classify(js string, i int) Idiom {
	start := i - 48
	if start < 0 {
		start = 0
	}
	window := js[start:i]
	best := IdiomUnknown
	bestPos := -1
	consider := func(marker string, idiom Idiom) {
		if pos := strings.LastIndex(window, marker); pos > bestPos {
			bestPos = pos
			best = idiom
		}
	}
	consider(".src", IdiomImageSrc)
	consider("fetch(", IdiomFetch)
	consider("fetch (", IdiomFetch)
	consider(".open(", IdiomXHR)
	consider("document.write", IdiomDocumentWrite)
	consider("importScripts", IdiomImportScripts)
	return best
}

// srcAttrs pulls src="..." values out of a markup fragment.
func srcAttrs(fragment string) []string {
	var out []string
	rest := fragment
	for {
		idx := strings.Index(rest, "src=")
		if idx < 0 {
			return out
		}
		rest = rest[idx+4:]
		if rest == "" {
			return out
		}
		switch rest[0] {
		case '"', '\'':
			q := rest[0]
			end := strings.IndexByte(rest[1:], q)
			if end < 0 {
				return out
			}
			out = append(out, rest[1:1+end])
			rest = rest[1+end+1:]
		default:
			end := strings.IndexAny(rest, " >\t\n")
			if end < 0 {
				out = append(out, rest)
				return out
			}
			out = append(out, rest[:end])
			rest = rest[end:]
		}
	}
}
