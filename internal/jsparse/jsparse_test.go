package jsparse

import (
	"reflect"
	"testing"
)

func rawRefs(js string) []string {
	a := Analyze(js)
	out := make([]string, 0, len(a.Refs))
	for _, r := range a.Refs {
		out = append(out, r.Raw)
	}
	return out
}

func TestAnalyzeIdioms(t *testing.T) {
	js := `
	var img = new Image();
	img.src = "https://img.site.com/lazy.jpg";
	fetch("https://api.site.com/feed.json").then(function(r){ return r.json(); });
	var xhr = new XMLHttpRequest();
	xhr.open("GET", "https://api.site.com/data.json");
	document.write('<script src="https://t.com/tag.js"></scr' + 'ipt>');
	`
	a := Analyze(js)
	if len(a.Refs) != 4 {
		t.Fatalf("refs: %+v", a.Refs)
	}
	wantIdioms := []Idiom{IdiomImageSrc, IdiomFetch, IdiomXHR, IdiomDocumentWrite}
	for i, w := range wantIdioms {
		if a.Refs[i].Idiom != w {
			t.Errorf("ref %d idiom = %v, want %v", i, a.Refs[i].Idiom, w)
		}
	}
}

func TestAnalyzeUserState(t *testing.T) {
	cases := map[string]bool{
		`var x = Date.now(); i.src = "https://a.com/px.gif";`:   true,
		`var r = Math.random();`:                                true,
		`var c = document.cookie;`:                              true,
		`localStorage.getItem("k")`:                             true,
		`var i = new Image(); i.src = "https://a.com/img.jpg";`: false,
		`fetch("https://a.com/static.json")`:                    false,
	}
	for js, want := range cases {
		if got := Analyze(js).UsesUserState; got != want {
			t.Errorf("UsesUserState(%q) = %v, want %v", js, got, want)
		}
	}
}

func TestAnalyzeSkipsComments(t *testing.T) {
	js := `
	// i.src = "https://a.com/line-comment.jpg";
	/* i.src = "https://a.com/block-comment.jpg"; */
	i.src = "https://a.com/real.jpg";
	`
	got := rawRefs(js)
	if !reflect.DeepEqual(got, []string{"https://a.com/real.jpg"}) {
		t.Fatalf("got %v", got)
	}
}

func TestAnalyzeRelativeAndProtocolURLs(t *testing.T) {
	js := `
	a.src = "/img/root-relative.jpg";
	b.src = "//cdn.com/protocol-relative.js";
	c.src = "not a url";
	d.src = "/x";
	`
	got := rawRefs(js)
	want := []string{"/img/root-relative.jpg", "//cdn.com/protocol-relative.js"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestAnalyzeTemplateLiteralsNotStatic(t *testing.T) {
	js := "fetch(`https://a.com/item/${id}.json`); fetch(`https://a.com/static.json`);"
	got := rawRefs(js)
	if !reflect.DeepEqual(got, []string{"https://a.com/static.json"}) {
		t.Fatalf("got %v", got)
	}
}

func TestAnalyzeDocumentWriteMarkup(t *testing.T) {
	js := `document.write('<img src="https://a.com/banner.jpg"><script src=https://b.com/x.js></scr'+'ipt>');`
	got := rawRefs(js)
	want := []string{"https://a.com/banner.jpg", "https://b.com/x.js"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestAnalyzeMalformed(t *testing.T) {
	for _, js := range []string{
		"", `"unterminated`, "`unterminated template", "/* unterminated",
		"// only comment", `x = "\"escaped";`,
	} {
		_ = Analyze(js) // must not panic
	}
}

func TestExtractURLsAdapter(t *testing.T) {
	got := ExtractURLs(`i.src = "https://a.com/1.jpg"; fetch("https://a.com/2.json");`)
	want := []string{"https://a.com/1.jpg", "https://a.com/2.json"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}
