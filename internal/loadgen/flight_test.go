package loadgen

import (
	"os"
	"testing"
	"time"

	"vroom/internal/obs"
)

// TestStormFlightDumps arms the per-load flight recorder over a faulted,
// gate-squeezed storm and pins the dump contract: bad-ending loads leave a
// parseable vroom-events artifact on disk, clean loads leave nothing, and
// the shared storm recording still receives every event (Fork tees, it
// does not steal).
func TestStormFlightDumps(t *testing.T) {
	w := newStormWorld(t, 40*time.Millisecond, 4)
	dir := t.TempDir()

	storm := &obs.LiveRecording{Start: time.Now()}
	cfg := w.config(60, 16)
	cfg.Trace = obs.NewWall(storm)
	cfg.Propagate = true
	cfg.FlightDir = dir
	cfg.FlightEvents = 128

	res := Run(cfg)
	if res.Hung != 0 {
		t.Fatalf("%d load(s) hung", res.Hung)
	}

	bad := 0
	for _, s := range res.Samples {
		if s.Failed > 0 || s.Degraded > 0 || s.DeadlineHit {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("faulted storm produced no bad endings; the dump path went unexercised")
	}
	if len(res.FlightDumps) == 0 {
		t.Fatalf("%d bad endings but no flight dump written", bad)
	}

	// Result and samples must agree, dumps must sit in FlightDir, and only
	// bad endings may dump.
	fromSamples := 0
	for _, s := range res.Samples {
		if s.FlightDump == "" {
			continue
		}
		fromSamples++
		if s.Failed == 0 && s.Degraded == 0 && !s.DeadlineHit && !s.Hung {
			t.Errorf("clean %s load dumped %s", s.Class, s.FlightDump)
		}
	}
	if fromSamples != len(res.FlightDumps) {
		t.Errorf("samples carry %d dump paths, result lists %d", fromSamples, len(res.FlightDumps))
	}

	// Every artifact parses as vroom-events and holds real span traffic.
	for _, path := range res.FlightDumps {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("dump missing: %v", err)
		}
		rec, err := obs.ReadEvents(f)
		f.Close()
		if err != nil {
			t.Fatalf("dump %s is not vroom-events: %v", path, err)
		}
		if len(rec.Events) == 0 {
			t.Errorf("dump %s is empty", path)
		}
	}

	// The tee'd storm recording saw the same loads the recorders did.
	if snap := storm.Snapshot(); len(snap.Events) == 0 {
		t.Error("shared storm recording is empty; Fork stole instead of teeing")
	}
}
