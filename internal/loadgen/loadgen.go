// Package loadgen drives a vroom replay server with many concurrent
// simulated clients — the storm the overload plane exists for. A run fans
// cfg.Loads page loads over a bounded worker pool; each load is one
// wire.Client drawn deterministically (by seed) from a weighted set of
// heterogeneous client classes: device class, staged vs greedy scheduling,
// protocol, and patience (timeouts) all vary, the way a real mobile
// population's do.
//
// The generator's job is to measure robustness, not just throughput, so
// every load runs under a hang watchdog: a LoadPage call that fails to
// return within its own deadline plus a grace period is counted as hung —
// the invariant the acceptance test pins to zero — rather than blocking the
// run.
package loadgen

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"vroom/internal/h1"
	"vroom/internal/obs"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
	"vroom/internal/wire"
)

// ClientClass is one stratum of the simulated client population.
type ClientClass struct {
	Name   string
	Device webpage.DeviceClass
	// Weight is the class's relative share of loads.
	Weight int
	// Staged selects Vroom's staged scheduler; false is greedy baseline.
	Staged bool
	// Proto is "h2" or "h1".
	Proto string
	// Patience: per-request header/stall budgets and the whole-load
	// deadline. Small phones on bad networks give up sooner.
	HeaderTimeout time.Duration
	StallTimeout  time.Duration
	LoadDeadline  time.Duration
}

// DefaultClasses is a mobile-web-shaped population: mostly small phones on
// h2 with staged scheduling, a slice of larger devices, a greedy cohort,
// and an h1 long tail.
func DefaultClasses() []ClientClass {
	return []ClientClass{
		{Name: "phone-small-staged", Device: webpage.PhoneSmall, Weight: 5, Staged: true, Proto: "h2",
			HeaderTimeout: 500 * time.Millisecond, StallTimeout: 500 * time.Millisecond, LoadDeadline: 20 * time.Second},
		{Name: "phone-large-staged", Device: webpage.PhoneLarge, Weight: 3, Staged: true, Proto: "h2",
			HeaderTimeout: time.Second, StallTimeout: time.Second, LoadDeadline: 30 * time.Second},
		{Name: "phone-small-greedy", Device: webpage.PhoneSmall, Weight: 2, Staged: false, Proto: "h2",
			HeaderTimeout: 500 * time.Millisecond, StallTimeout: 500 * time.Millisecond, LoadDeadline: 20 * time.Second},
		{Name: "tablet-h1", Device: webpage.Tablet, Weight: 1, Staged: false, Proto: "h1",
			HeaderTimeout: time.Second, StallTimeout: time.Second, LoadDeadline: 30 * time.Second},
	}
}

// Config shapes one storm.
type Config struct {
	// Root is the page every client loads.
	Root urlutil.URL
	// Roots, when non-empty, overrides Root: each load draws one of these
	// pages (uniformly, by seed) — a multi-tenant population.
	Roots []urlutil.URL
	// Loads is the total number of page loads (default 100).
	Loads int
	// Concurrency bounds loads in flight at once (default 32).
	Concurrency int
	// Seed makes the class draw (and nothing else — the server and wire
	// own their fates) deterministic.
	Seed int64
	// Classes is the population (default DefaultClasses).
	Classes []ClientClass
	// Dial opens a transport to an origin; every client shares it.
	Dial func(origin string) (net.Conn, error)
	// Metrics, when set, aggregates client-side wire metrics across all
	// loads.
	Metrics *telemetry.Registry
	// HangGrace pads each class's LoadDeadline for the hang watchdog
	// (default 30s). LoadPage guarantees return by its deadline; the grace
	// absorbs scheduler noise, so any firing is a real hang.
	HangGrace time.Duration
	// Retry tunes per-fetch retries (default: 3 attempts, fast backoff).
	Retry wire.RetryPolicy
	// Trace, when set, records every load's spans into one shared storm
	// recording (it must come from obs.NewWall — loads emit concurrently).
	Trace *obs.Tracer
	// Propagate mints a per-load trace ID on each client and sends it in
	// the request header, so server-side spans stitch to the client's.
	Propagate bool
	// FlightDir, when set, arms a per-load flight recorder: each load keeps
	// a bounded ring of its most recent events, dumped to this directory as
	// a vroom-events artifact only when the load ends degraded, failed,
	// past deadline, or hung.
	FlightDir string
	// FlightEvents sizes each flight ring per track (default
	// obs.DefaultFlightEvents).
	FlightEvents int
	// RestartAfter and Restart arm the kill-and-restart storm mode: once
	// RestartAfter loads have completed, Restart runs exactly once while the
	// remaining workers keep storming through the outage. The hook plays
	// kill -9 plus cold restart — it must leave the dial target serving
	// again before it returns — and loads in flight ride their per-fetch
	// retry policy across the gap. Zero or nil disables the mode.
	RestartAfter int
	Restart      func() error
}

func (c Config) loads() int {
	if c.Loads > 0 {
		return c.Loads
	}
	return 100
}

func (c Config) concurrency() int {
	if c.Concurrency > 0 {
		return c.Concurrency
	}
	return 32
}

func (c Config) classes() []ClientClass {
	if len(c.Classes) > 0 {
		return c.Classes
	}
	return DefaultClasses()
}

func (c Config) hangGrace() time.Duration {
	if c.HangGrace > 0 {
		return c.HangGrace
	}
	return 30 * time.Second
}

func (c Config) retry() wire.RetryPolicy {
	if c.Retry.MaxAttempts > 0 {
		return c.Retry
	}
	return wire.RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

// Sample is one completed (or hung) load.
type Sample struct {
	Class       string
	Ms          float64
	Fetches     int
	Failed      int
	Degraded    int
	Pushed      int
	DeadlineHit bool
	Hung        bool
	// FlightDump is the path of the flight-recorder artifact this load
	// dumped, empty when the load ended clean (or FlightDir was unset).
	FlightDump string

	// modes and retries ride unexported so Run can fold them into the
	// aggregate without a second report walk.
	modes   map[string]int
	retries int
}

// Result aggregates a storm.
type Result struct {
	Loads int
	// Hung counts loads that failed to return by deadline+grace — the
	// zero-invariant.
	Hung int
	// DeadlineHit counts loads that returned partial reports at their own
	// deadline (a degraded outcome, not a hang).
	DeadlineHit   int
	Fetches       int
	FailedFetches int
	Retries       int
	Pushed        int
	DegradedResps int
	// DegradedModes counts server degradation tokens seen across all
	// responses (stale-hints, shed-hints, shed-push, shed-request).
	DegradedModes map[string]int
	// ByClass holds per-class load wall times in milliseconds.
	ByClass map[string][]float64
	// FlightDumps lists the flight-recorder artifacts written by loads that
	// ended degraded, failed, past deadline, or hung.
	FlightDumps []string
	// Restarts counts Restart-hook firings (0 or 1); RestartMs is the
	// wall-clock outage the hook took; RestartErr carries its failure.
	Restarts   int
	RestartMs  float64
	RestartErr string
	Samples    []Sample
	Elapsed    time.Duration
}

// Run executes the storm and blocks until every load returns or trips the
// hang watchdog.
func Run(cfg Config) *Result {
	classes := cfg.classes()
	totalWeight := 0
	for _, cl := range classes {
		totalWeight += cl.Weight
	}
	if totalWeight == 0 {
		totalWeight = 1
	}
	roots := cfg.Roots
	if len(roots) == 0 {
		roots = []urlutil.URL{cfg.Root}
	}
	pick := func(i int) (ClientClass, urlutil.URL) {
		r := rand.New(rand.NewSource(cfg.Seed ^ int64(i)*0x5851f42d4c957f2d))
		root := roots[r.Intn(len(roots))]
		n := r.Intn(totalWeight)
		for _, cl := range classes {
			if n < cl.Weight {
				return cl, root
			}
			n -= cl.Weight
		}
		return classes[0], root
	}

	res := &Result{
		Loads:         cfg.loads(),
		DegradedModes: make(map[string]int),
		ByClass:       make(map[string][]float64),
		Samples:       make([]Sample, cfg.loads()),
	}
	start := time.Now()
	jobs := make(chan int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var completed int
	var restartFired bool
	for w := 0; w < cfg.concurrency(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cl, root := pick(i)
				s := runOne(cfg, i, cl, root)
				mu.Lock()
				res.Samples[i] = s
				if s.Hung {
					res.Hung++
				} else {
					res.ByClass[s.Class] = append(res.ByClass[s.Class], s.Ms)
				}
				if s.DeadlineHit {
					res.DeadlineHit++
				}
				if s.FlightDump != "" {
					res.FlightDumps = append(res.FlightDumps, s.FlightDump)
				}
				res.Fetches += s.Fetches
				res.FailedFetches += s.Failed
				res.Pushed += s.Pushed
				res.DegradedResps += s.Degraded
				completed++
				fire := cfg.Restart != nil && cfg.RestartAfter > 0 &&
					!restartFired && completed >= cfg.RestartAfter
				if fire {
					restartFired = true // claimed; the hook runs unlocked below
				}
				mu.Unlock()
				if fire {
					t0 := time.Now()
					err := cfg.Restart()
					mu.Lock()
					res.Restarts++
					res.RestartMs = float64(time.Since(t0)) / float64(time.Millisecond)
					if err != nil {
						res.RestartErr = err.Error()
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < cfg.loads(); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Fold per-load mode counts after the fact (runOne stashes them on the
	// sample via the report walk below to keep the hot path lock-free).
	mu.Lock()
	for i := range res.Samples {
		for mode, n := range res.Samples[i].modes {
			res.DegradedModes[mode] += n
		}
		res.Retries += res.Samples[i].retries
	}
	res.Elapsed = time.Since(start)
	mu.Unlock()
	return res
}

// runOne performs a single page load for one class under the hang watchdog.
func runOne(cfg Config, idx int, cl ClientClass, root urlutil.URL) Sample {
	c := &wire.Client{
		Staged:        cl.Staged,
		DialTimeout:   2 * time.Second,
		HeaderTimeout: cl.HeaderTimeout,
		StallTimeout:  cl.StallTimeout,
		LoadDeadline:  cl.LoadDeadline,
		Retry:         cfg.retry(),
		Metrics:       cfg.Metrics,
		Trace:         cfg.Trace,
		Propagate:     cfg.Propagate,
	}
	// Arm the flight recorder: a bounded black box that rides along and is
	// dumped only when the load ends badly. Forking keeps the shared storm
	// recording (when any) and the ring fed by one tracer with one span-ID
	// space; without a storm tracer the ring is the only sink.
	var flight *obs.FlightRecorder
	if cfg.FlightDir != "" {
		flight = obs.NewFlightRecorder(cfg.FlightEvents)
		if cfg.Trace != nil {
			c.Trace = cfg.Trace.Fork(flight)
		} else {
			c.Trace = obs.NewWall(flight)
		}
	}
	if cl.Proto == "h1" {
		c.DialOrigin = func(origin string) (wire.OriginConn, error) {
			u, err := urlutil.Parse(origin + "/")
			if err != nil {
				return nil, err
			}
			return &h1.Pool{Authority: u.Host, Metrics: cfg.Metrics,
				Dial: func() (net.Conn, error) { return cfg.Dial(origin) }}, nil
		}
	} else {
		c.Dial = cfg.Dial
	}

	type outcome struct{ rep *wire.Report }
	done := make(chan outcome, 1)
	started := time.Now()
	go func() {
		rep, err := c.LoadPage(root)
		if err != nil {
			rep = &wire.Report{Started: started, Finished: time.Now()}
		}
		done <- outcome{rep}
	}()

	watchdog := time.NewTimer(cl.LoadDeadline + cfg.hangGrace())
	defer watchdog.Stop()
	select {
	case o := <-done:
		s := Sample{
			Class:       cl.Name,
			Ms:          float64(o.rep.Total()) / float64(time.Millisecond),
			Fetches:     len(o.rep.Fetches),
			Failed:      o.rep.Failed,
			Degraded:    o.rep.Degraded,
			Pushed:      o.rep.Pushed,
			DeadlineHit: o.rep.DeadlineHit,
		}
		s.modes = make(map[string]int)
		for _, f := range o.rep.Fetches {
			seen := false
			if f.Degraded != "" {
				for _, mode := range strings.Split(f.Degraded, ",") {
					mode = strings.TrimSpace(mode)
					s.modes[mode]++
					seen = seen || mode == wire.DegradedShedRequest
				}
			}
			// Admission 503s whose response lost the degraded header (an
			// injected fault, a mid-write cut) still mean shed-request
			// pressure; count them unless the record already carries the
			// token — Degraded now unions all attempts, so a tagged retry
			// must not be counted twice.
			if f.Status == 503 && f.Failed() && !seen {
				s.modes[wire.DegradedShedRequest]++
			}
		}
		s.retries = o.rep.Retries
		if flight != nil && (s.Failed > 0 || s.Degraded > 0 || s.DeadlineHit) {
			s.FlightDump = dumpFlight(cfg, flight, idx, cl.Name, started)
		}
		return s
	case <-watchdog.C:
		// The load goroutine leaked past its own deadline: the exact bug
		// this generator exists to catch. Leave it behind and report.
		s := Sample{Class: cl.Name, Hung: true,
			Ms: float64(time.Since(started)) / float64(time.Millisecond)}
		if flight != nil {
			// The leaked goroutine may still be emitting; Snapshot is safe
			// against live writers, and a hung load's black box is exactly
			// the artifact worth keeping.
			s.FlightDump = dumpFlight(cfg, flight, idx, cl.Name, started)
		}
		return s
	}
}

// dumpFlight writes one load's flight-ring snapshot as a vroom-events
// artifact and returns its path ("" when there is nothing to dump or the
// write fails — a dump must never fail the storm).
func dumpFlight(cfg Config, flight *obs.FlightRecorder, idx int, class string, started time.Time) string {
	events, dropped := flight.Snapshot()
	if len(events) == 0 {
		return ""
	}
	if dropped > 0 {
		// Make ring eviction visible in the artifact itself.
		events = append(events, obs.Event{Kind: obs.KindInstant, Track: "flight",
			Name: "events-dropped", At: events[len(events)-1].At,
			Args: []obs.Arg{{Key: "count", Val: strconv.FormatUint(dropped, 10)}}})
	}
	path := filepath.Join(cfg.FlightDir, fmt.Sprintf("flight-%04d-%s.json", idx, class))
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	if err := obs.WriteEvents(f, &obs.Recording{Start: started, Events: events}); err != nil {
		return ""
	}
	return path
}
