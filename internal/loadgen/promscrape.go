package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Scrape is a parsed Prometheus text exposition (version 0.0.4) — just
// enough of the format to let the load generator read the server's counters
// and histogram buckets back out of /metrics.
type Scrape struct {
	samples map[string][]promSample
	raw     string
}

// Raw returns the exposition text the scrape was parsed from, when known
// (ScrapeURL keeps it; ParseProm from an arbitrary reader does not). The
// scrape-series writer persists it so an audit can re-parse offline.
func (s *Scrape) Raw() string { return s.raw }

type promSample struct {
	labels map[string]string
	value  float64
}

// ScrapeURL fetches and parses a /metrics endpoint.
func ScrapeURL(url string) (*Scrape, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("loadgen: scrape %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	sc, err := ParseProm(strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	sc.raw = string(body)
	return sc, nil
}

// ParseProm parses a Prometheus text exposition. Comment and malformed
// lines are skipped; histogram buckets appear under "<family>_bucket" with
// their le label intact.
func ParseProm(r io.Reader) (*Scrape, error) {
	s := &Scrape{samples: make(map[string][]promSample)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, val, ok := parsePromLine(line)
		if !ok {
			continue
		}
		s.samples[name] = append(s.samples[name], promSample{labels: labels, value: val})
	}
	return s, sc.Err()
}

func parsePromLine(line string) (string, map[string]string, float64, bool) {
	var name, labelPart, valPart string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, false
		}
		name, labelPart, valPart = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", nil, 0, false
		}
		name, valPart = fields[0], fields[1]
	}
	val, err := strconv.ParseFloat(strings.Fields(valPart)[0], 64)
	if err != nil {
		return "", nil, 0, false
	}
	labels := make(map[string]string)
	for _, kv := range splitLabels(labelPart) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			continue
		}
		v := strings.Trim(kv[eq+1:], `"`)
		labels[kv[:eq]] = v
	}
	return name, labels, val, true
}

// splitLabels splits `a="x",b="y,z"` on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// Has reports whether the scrape contains any sample of the family.
func (s *Scrape) Has(family string) bool { return len(s.samples[family]) > 0 }

// MetricSample is one exported sample of a scraped family. (Named
// MetricSample, not Sample — loadgen.Sample is the per-load result row.)
type MetricSample struct {
	Labels map[string]string
	Value  float64
}

// Samples returns every sample of family in exposition order.
func (s *Scrape) Samples(family string) []MetricSample {
	raw := s.samples[family]
	if len(raw) == 0 {
		return nil
	}
	out := make([]MetricSample, len(raw))
	for i, smp := range raw {
		out[i] = MetricSample{Labels: smp.labels, Value: smp.value}
	}
	return out
}

// SumBy sums a family's samples grouped by one label's value. Samples
// missing the label are folded under "". This is how the audit tool turns
// a flat exposition back into per-origin breakdowns.
func (s *Scrape) SumBy(family, labelKey string) map[string]float64 {
	raw := s.samples[family]
	if len(raw) == 0 {
		return nil
	}
	out := make(map[string]float64)
	for _, smp := range raw {
		out[smp.labels[labelKey]] += smp.value
	}
	return out
}

// Sum adds every sample of family whose labels include match (nil matches
// all).
func (s *Scrape) Sum(family string, match map[string]string) float64 {
	var total float64
	for _, smp := range s.samples[family] {
		ok := true
		for k, v := range match {
			if smp.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += smp.value
		}
	}
	return total
}

// HistogramQuantile estimates the p-th percentile (0 < p <= 100) of a
// scraped histogram family by linear interpolation over its cumulative
// le-buckets (all label sets of the family summed together). Returns 0 when
// the family is empty; the estimate is always finite and clamped into its
// bucket, so sparse (0- or 1-sample) histograms can never yield NaN or a
// value outside the observed bucket range.
func (s *Scrape) HistogramQuantile(family string, p float64) float64 {
	cum := make(map[float64]float64)
	var inf float64
	for _, smp := range s.samples[family+"_bucket"] {
		if math.IsNaN(smp.value) {
			continue
		}
		le := smp.labels["le"]
		if le == "+Inf" {
			inf += smp.value
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		cum[b] += smp.value
	}
	if inf <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	if p < 0 {
		p = 0
	}
	bounds := make([]float64, 0, len(cum))
	for b := range cum {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	target := p / 100 * inf
	prevBound, prevCum := 0.0, 0.0
	for _, b := range bounds {
		c := cum[b]
		// A scrape racing updates (or a malformed exposition) can yield a
		// non-monotone cumulative series; clamp it so the interpolation
		// denominator stays non-negative.
		if c < prevCum {
			c = prevCum
		}
		if c >= target {
			if c == prevCum {
				return b
			}
			v := prevBound + (b-prevBound)*(target-prevCum)/(c-prevCum)
			// Clamp into the bucket: with one sample (or degenerate
			// counts) the raw interpolation can land outside [prev, b].
			if v < prevBound || math.IsNaN(v) {
				v = prevBound
			}
			if v > b {
				v = b
			}
			return v
		}
		prevBound, prevCum = b, c
	}
	// Target sits in the +Inf bucket: the best point estimate is the last
	// finite bound.
	return prevBound
}
