package loadgen

import (
	"math"
	"strings"
	"testing"

	"vroom/internal/telemetry"
)

const exampleScrape = `# HELP vroom_server_requests_total Requests served, by protocol.
# TYPE vroom_server_requests_total counter
vroom_server_requests_total{proto="h1"} 10
vroom_server_requests_total{proto="h2"} 90
vroom_server_shed_total 7
vroom_store_hint_lookup_ms_bucket{le="1"} 50
vroom_store_hint_lookup_ms_bucket{le="2.5"} 80
vroom_store_hint_lookup_ms_bucket{le="5"} 99
vroom_store_hint_lookup_ms_bucket{le="+Inf"} 100
vroom_store_hint_lookup_ms_sum 190
vroom_store_hint_lookup_ms_count 100
`

func TestParsePromSumAndFilter(t *testing.T) {
	sc, err := ParseProm(strings.NewReader(exampleScrape))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Sum("vroom_server_requests_total", nil); got != 100 {
		t.Errorf("total requests = %v, want 100", got)
	}
	if got := sc.Sum("vroom_server_requests_total", map[string]string{"proto": "h2"}); got != 90 {
		t.Errorf("h2 requests = %v, want 90", got)
	}
	if got := sc.Sum("vroom_server_shed_total", nil); got != 7 {
		t.Errorf("shed = %v, want 7", got)
	}
	if !sc.Has("vroom_server_shed_total") || sc.Has("nope") {
		t.Error("Has misreported families")
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	sc, err := ParseProm(strings.NewReader(exampleScrape))
	if err != nil {
		t.Fatal(err)
	}
	// p50: target 50 of 100 lands exactly on the le=1 bucket boundary.
	if got := sc.HistogramQuantile("vroom_store_hint_lookup_ms", 50); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	// p80: target 80 lands on le=2.5.
	if got := sc.HistogramQuantile("vroom_store_hint_lookup_ms", 80); got != 2.5 {
		t.Errorf("p80 = %v, want 2.5", got)
	}
	// p90: target 90 interpolates between 2.5 (cum 80) and 5 (cum 99):
	// 2.5 + 2.5*(90-80)/(99-80).
	want := 2.5 + 2.5*10/19
	if got := sc.HistogramQuantile("vroom_store_hint_lookup_ms", 90); math.Abs(got-want) > 1e-9 {
		t.Errorf("p90 = %v, want %v", got, want)
	}
	if got := sc.HistogramQuantile("missing_family", 50); got != 0 {
		t.Errorf("missing family quantile = %v, want 0", got)
	}
}

// TestHistogramQuantileSparse pins the sparse-histogram contract: 0- and
// 1-sample expositions (and degenerate ones) must yield finite, clamped
// estimates, never NaN.
func TestHistogramQuantileSparse(t *testing.T) {
	quantile := func(t *testing.T, exposition string, fam string, p float64) float64 {
		t.Helper()
		sc, err := ParseProm(strings.NewReader(exposition))
		if err != nil {
			t.Fatal(err)
		}
		got := sc.HistogramQuantile(fam, p)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("quantile(%s, p%v) = %v, want finite", fam, p, got)
		}
		return got
	}

	// Empty: every bucket zero (a registered histogram before any Observe).
	empty := `m_bucket{le="1"} 0
m_bucket{le="5"} 0
m_bucket{le="+Inf"} 0
m_count 0
`
	for _, p := range []float64{0, 50, 99, 100} {
		if got := quantile(t, empty, "m", p); got != 0 {
			t.Errorf("empty histogram p%v = %v, want 0", p, got)
		}
	}

	// One sample in one finite bucket: every percentile must land inside
	// that bucket.
	one := `m_bucket{le="1"} 0
m_bucket{le="5"} 1
m_bucket{le="+Inf"} 1
m_count 1
`
	for _, p := range []float64{1, 50, 99, 100} {
		got := quantile(t, one, "m", p)
		if got < 1 || got > 5 {
			t.Errorf("1-sample p%v = %v, want within [1, 5]", p, got)
		}
	}

	// One sample past every finite bound: best estimate is the last bound.
	tail := `m_bucket{le="1"} 0
m_bucket{le="5"} 0
m_bucket{le="+Inf"} 1
m_count 1
`
	if got := quantile(t, tail, "m", 50); got != 5 {
		t.Errorf("+Inf-only sample p50 = %v, want 5", got)
	}

	// Out-of-range p is clamped, not propagated into the interpolation.
	if got := quantile(t, one, "m", 250); got < 1 || got > 5 {
		t.Errorf("p250 = %v, want clamped within [1, 5]", got)
	}
	if got := quantile(t, one, "m", -10); got < 0 || got > 5 {
		t.Errorf("p-10 = %v, want clamped within [0, 5]", got)
	}

	// A non-monotone cumulative series (scrape racing updates) must not
	// produce a negative interpolation denominator.
	skew := `m_bucket{le="1"} 3
m_bucket{le="5"} 2
m_bucket{le="+Inf"} 4
m_count 4
`
	if got := quantile(t, skew, "m", 90); got < 0 || got > 5 {
		t.Errorf("non-monotone p90 = %v, want within [0, 5]", got)
	}

	// NaN bucket values are skipped rather than poisoning the estimate.
	nan := `m_bucket{le="1"} NaN
m_bucket{le="5"} 1
m_bucket{le="+Inf"} 1
m_count 1
`
	if got := quantile(t, nan, "m", 50); got < 0 || got > 5 {
		t.Errorf("NaN-bucket p50 = %v, want within [0, 5]", got)
	}
}

// TestScrapeRoundTrip feeds a real telemetry registry exposition through the
// parser, pinning the scraper to the format the server actually emits.
func TestScrapeRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("vroom_server_shed_total").Add(3)
	reg.Counter("vroom_server_degraded_total", telemetry.L("mode", "stale-hints")).Add(5)
	reg.Counter("vroom_server_degraded_total", telemetry.L("mode", "shed-push")).Add(2)
	h := reg.Histogram("vroom_store_hint_lookup_ms")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%10) + 0.5)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Sum("vroom_server_shed_total", nil); got != 3 {
		t.Errorf("shed = %v, want 3", got)
	}
	if got := sc.Sum("vroom_server_degraded_total", nil); got != 7 {
		t.Errorf("degraded all modes = %v, want 7", got)
	}
	if got := sc.Sum("vroom_server_degraded_total", map[string]string{"mode": "stale-hints"}); got != 5 {
		t.Errorf("degraded stale-hints = %v, want 5", got)
	}
	p99 := sc.HistogramQuantile("vroom_store_hint_lookup_ms", 99)
	if p99 <= 0 || p99 > 25 {
		t.Errorf("p99 = %v, want within (0, 25]", p99)
	}
}
