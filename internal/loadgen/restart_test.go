package loadgen

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"vroom/internal/core"
	"vroom/internal/hintstore"
	"vroom/internal/hintstore/persist"
	"vroom/internal/netem"
	"vroom/internal/replay"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
	"vroom/internal/wire"
)

// TestStormKillAndRestart is the kill-and-restart storm: mid-storm, the
// serving process is killed without any drain (no final flush — only the
// WAL and periodic snapshots are on disk) and a new one cold-starts over
// the same state directory while loads keep arriving. The invariants: zero
// hung loads across the outage, the restarted server serves restored
// tables immediately (responses tagged stale-restore), and the store
// reports itself recovering until a tenant re-registers.
func TestStormKillAndRestart(t *testing.T) {
	stateDir := t.TempDir()
	device := webpage.PhoneSmall
	var (
		archives []*replay.Archive
		sites    []*webpage.Site
		roots    []urlutil.URL
	)
	for i, name := range []string{"killnews", "killsports"} {
		site := webpage.NewSite(name, webpage.Top100, int64(200+i))
		a := replay.FromSnapshot(site.Snapshot(stormEpoch, webpage.Profile{Device: device, UserID: 5}, 1))
		u, err := urlutil.Parse(a.RootURL)
		if err != nil {
			t.Fatal(err)
		}
		archives = append(archives, a)
		sites = append(sites, site)
		roots = append(roots, u)
	}
	merged := replay.Merge(archives...)

	// start boots one server "process" over the shared state directory. The
	// first life registers and trains its tenants; the restarted life
	// registers nothing, so everything it serves comes off disk.
	var curLink atomic.Pointer[netem.Listener]
	start := func(register bool) (*wire.Server, *hintstore.Store, *telemetry.Registry) {
		store, rec, err := hintstore.NewDurable(hintstore.Config{
			TTL:      40 * time.Millisecond, // restored tables are instantly stale
			MaxStale: time.Hour,
			Workers:  2,
			Persist:  persist.Options{Dir: stateDir, SnapshotEvery: 50 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		if register {
			for i, site := range sites {
				if err := store.Register(roots[i].Host, device,
					hintstore.SiteTrainer(site, stormEpoch, device, core.DefaultResolverConfig())); err != nil {
					t.Fatal(err)
				}
			}
		} else if len(rec.Tables) != len(sites) {
			t.Errorf("restart recovered %d tables, want %d", len(rec.Tables), len(sites))
		}
		srv := wire.NewServer(merged, nil, device, wire.ServerConfig{SendHints: true, Push: true})
		srv.Store = store
		reg := telemetry.NewRegistry()
		srv.Instrument(nil, reg)
		link := netem.Listen(netem.LinkConfig{
			Delay:               time.Millisecond,
			DownlinkBytesPerSec: 50e6,
			UplinkBytesPerSec:   50e6,
		})
		go srv.H2().Serve(link)
		curLink.Store(link)
		return srv, store, reg
	}

	srv, store, _ := start(true)
	var srv2 *wire.Server
	var store2 *hintstore.Store
	t.Cleanup(func() {
		if srv2 != nil {
			srv2.H2().Close()
			store2.Drain(time.Second)
		}
		curLink.Load().Close()
	})

	loads := 200
	if testing.Short() {
		loads = 80
	}
	cfg := Config{
		Roots:       roots,
		Loads:       loads,
		Concurrency: 32,
		Seed:        42,
		Dial: func(string) (net.Conn, error) {
			return curLink.Load().Dial()
		},
		HangGrace:    20 * time.Second,
		RestartAfter: loads / 4,
		Restart: func() error {
			// kill -9: no drain, no flush — the old process just stops.
			old := curLink.Load()
			srv.H2().Close()
			old.Close()
			store.Drain(0) // release the dead process's workers (test hygiene; a real kill needs nothing)
			srv2, store2, _ = start(false)
			return nil
		},
	}
	res := Run(cfg)

	if res.Hung != 0 {
		t.Fatalf("%d load(s) hung across the kill and restart", res.Hung)
	}
	if res.Restarts != 1 || res.RestartErr != "" {
		t.Fatalf("restarts=%d err=%q", res.Restarts, res.RestartErr)
	}
	if res.DegradedModes[wire.DegradedStaleRestore] == 0 {
		t.Fatalf("no response was tagged stale-restore after the restart; modes=%v", res.DegradedModes)
	}
	if store2 == nil || !store2.Recovering() {
		t.Fatal("restarted store (no tenant re-registered) must report recovering")
	}
	if n := store2.Tenants(); n != len(sites) {
		t.Fatalf("restarted store serves %d tenants, want %d", n, len(sites))
	}

	// The restarted life's drain flushes its own final snapshots, restored
	// flag intact.
	cps := store2.Drain(time.Second)
	srv2.H2().Close()
	srv2, store2 = nil, nil
	if len(cps) != len(sites) {
		t.Fatalf("drain checkpointed %d shards, want %d", len(cps), len(sites))
	}
	for _, cp := range cps {
		if !cp.Restored {
			t.Errorf("shard %s lost its restored flag without any retrain", cp.Origin)
		}
		if cp.SnapshotPath == "" || cp.FlushErr != "" {
			t.Errorf("shard %s final flush: %+v", cp.Origin, cp)
		}
		if cp.Lookups == 0 {
			t.Errorf("restored shard %s served no lookups", cp.Origin)
		}
	}
}
