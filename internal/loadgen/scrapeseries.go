package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"
)

// ScrapePoint is one timed scrape in a series. Either Scrape is set (the
// parsed exposition) or Gap is — a point where the scrape attempt and its
// single retry both failed, typically because the server was mid-restart
// or shedding so hard the metrics endpoint itself went unanswered. Gaps
// are first-class data: an efficacy report built over a gappy series must
// say so instead of silently interpolating.
type ScrapePoint struct {
	At  time.Time `json:"at"`
	Gap bool      `json:"gap,omitempty"`
	Err string    `json:"err,omitempty"`
	// Raw is the exposition text of a successful scrape, persisted so a
	// series written to disk can be re-parsed by vroom-audit offline.
	Raw    string  `json:"raw,omitempty"`
	Scrape *Scrape `json:"-"`
}

// ScrapeSeries scrapes one /metrics endpoint on a fixed cadence for the
// life of a storm. Start it before loadgen.Run, Stop it after: Stop takes
// one final scrape (the one the artifact's Server block is built from)
// and returns every point in order.
type ScrapeSeries struct {
	url   string
	every time.Duration

	mu     sync.Mutex
	points []ScrapePoint

	stop chan struct{}
	done chan struct{}
}

// StartScrapes begins scraping url every interval (minimum 100ms,
// default 1s when non-positive) until Stop.
func StartScrapes(url string, every time.Duration) *ScrapeSeries {
	if every <= 0 {
		every = time.Second
	}
	if every < 100*time.Millisecond {
		every = 100 * time.Millisecond
	}
	ss := &ScrapeSeries{url: url, every: every,
		stop: make(chan struct{}), done: make(chan struct{})}
	go ss.run()
	return ss
}

func (ss *ScrapeSeries) run() {
	defer close(ss.done)
	t := time.NewTicker(ss.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			ss.scrapeOnce()
		case <-ss.stop:
			return
		}
	}
}

// scrapeOnce takes one scrape, retrying once before recording a gap: a
// single refused connection mid-storm (admission pressure, a restart in
// progress) should not punch a hole in the series, but two in a row is a
// real outage worth marking.
func (ss *ScrapeSeries) scrapeOnce() {
	p := ScrapePoint{At: time.Now()}
	sc, err := ScrapeURL(ss.url)
	if err != nil {
		time.Sleep(ss.every / 4)
		sc, err = ScrapeURL(ss.url)
	}
	if err != nil {
		p.Gap = true
		p.Err = err.Error()
	} else {
		p.Scrape = sc
		p.Raw = sc.Raw()
	}
	ss.mu.Lock()
	ss.points = append(ss.points, p)
	ss.mu.Unlock()
}

// Stop ends the series, takes one final scrape, and returns every point
// in order. Safe to call once.
func (ss *ScrapeSeries) Stop() []ScrapePoint {
	close(ss.stop)
	<-ss.done
	ss.scrapeOnce()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return append([]ScrapePoint(nil), ss.points...)
}

// Gaps counts the gap points in a series.
func Gaps(points []ScrapePoint) int {
	n := 0
	for _, p := range points {
		if p.Gap {
			n++
		}
	}
	return n
}

// Last returns the newest non-gap point's scrape, or nil when every point
// gapped (or the series is empty).
func Last(points []ScrapePoint) *Scrape {
	for i := len(points) - 1; i >= 0; i-- {
		if !points[i].Gap {
			return points[i].Scrape
		}
	}
	return nil
}

// seriesFile is the on-disk shape of a scrape series (-scrape-out).
type seriesFile struct {
	Schema string        `json:"schema"`
	URL    string        `json:"url,omitempty"`
	Points []ScrapePoint `json:"points"`
}

// SeriesSchema versions the scrape-series file vroom-load writes and
// vroom-audit reads.
const SeriesSchema = "vroom-scrapes/v1"

// SaveSeries writes a scrape series to path, raw expositions included.
func SaveSeries(path, url string, points []ScrapePoint) error {
	b, err := json.MarshalIndent(seriesFile{Schema: SeriesSchema, URL: url, Points: points}, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadSeries reads a scrape series back, re-parsing each point's raw
// exposition. A point whose raw text fails to parse becomes a gap rather
// than failing the whole load.
func LoadSeries(path string) ([]ScrapePoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f seriesFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if f.Schema != SeriesSchema {
		return nil, fmt.Errorf("loadgen: %s: schema %q, want %q", path, f.Schema, SeriesSchema)
	}
	for i := range f.Points {
		p := &f.Points[i]
		if p.Gap || p.Raw == "" {
			continue
		}
		sc, err := ParseProm(strings.NewReader(p.Raw))
		if err != nil {
			p.Gap = true
			p.Err = "reparse: " + err.Error()
			continue
		}
		sc.raw = p.Raw
		p.Scrape = sc
	}
	return f.Points, nil
}
