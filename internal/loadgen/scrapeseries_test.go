package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// A metrics endpoint that fails its first N requests, then recovers.
func flakyMetrics(failFirst int64) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= failFirst {
			http.Error(w, "mid-restart", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `vroom_server_requests_total{proto="h2"} 42`)
		fmt.Fprintln(w, `vroom_hint_quality_hints_emitted_total{origin="news.example"} 7`)
	})
	return httptest.NewServer(h), &hits
}

func TestScrapeSeriesRetryMasksSingleFailure(t *testing.T) {
	// One failure followed by a good response: the retry inside scrapeOnce
	// should absorb it, so no point in the series gaps.
	srv, _ := flakyMetrics(1)
	defer srv.Close()

	ss := StartScrapes(srv.URL, 100*time.Millisecond)
	time.Sleep(250 * time.Millisecond)
	points := ss.Stop()

	if len(points) == 0 {
		t.Fatal("no scrape points recorded")
	}
	if g := Gaps(points); g != 0 {
		t.Fatalf("want 0 gaps (retry should mask a single failure), got %d: %+v", g, points)
	}
	last := Last(points)
	if last == nil {
		t.Fatal("no usable scrape in series")
	}
	if got := last.Sum("vroom_server_requests_total", nil); got != 42 {
		t.Fatalf("final scrape requests = %v, want 42", got)
	}
}

func TestScrapeSeriesMarksGapThenRecovers(t *testing.T) {
	// Enough consecutive failures to exhaust the retry: the early points
	// must be marked as gaps (with the error preserved), and once the
	// endpoint recovers the series resumes with real scrapes.
	srv, _ := flakyMetrics(4)
	defer srv.Close()

	ss := StartScrapes(srv.URL, 100*time.Millisecond)
	time.Sleep(450 * time.Millisecond)
	points := ss.Stop()

	if g := Gaps(points); g == 0 {
		t.Fatalf("want at least one gap, got none over %d points", len(points))
	}
	for _, p := range points {
		if p.Gap && p.Err == "" {
			t.Fatal("gap point recorded without its error")
		}
		if p.Gap && p.Scrape != nil {
			t.Fatal("gap point carries a scrape")
		}
	}
	last := Last(points)
	if last == nil {
		t.Fatal("series never recovered to a usable scrape")
	}
	if got := last.SumBy("vroom_hint_quality_hints_emitted_total", "origin")["news.example"]; got != 7 {
		t.Fatalf("per-origin SumBy = %v, want 7", got)
	}
}

func TestScrapeSeriesAllGaps(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	ss := StartScrapes(srv.URL, 100*time.Millisecond)
	time.Sleep(150 * time.Millisecond)
	points := ss.Stop()

	if g := Gaps(points); g != len(points) || g == 0 {
		t.Fatalf("want every point gapped, got %d/%d", g, len(points))
	}
	if Last(points) != nil {
		t.Fatal("Last should be nil for an all-gap series")
	}
}
