package loadgen

import (
	"net"
	"runtime"
	"testing"
	"time"

	"vroom/internal/core"
	"vroom/internal/faults"
	"vroom/internal/hintstore"
	"vroom/internal/netem"
	"vroom/internal/overload"
	"vroom/internal/replay"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
	"vroom/internal/wire"
)

var stormEpoch = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

// stormWorld is an in-process resolver-as-a-service deployment: two tenant
// sites behind one wire server with a multi-tenant hint store, admission
// gate, seeded server faults, and a netem link.
type stormWorld struct {
	srv   *wire.Server
	store *hintstore.Store
	gate  *overload.Gate
	reg   *telemetry.Registry
	roots []urlutil.URL
	link  *netem.Listener
	shim  *netem.FaultShim
}

func newStormWorld(t *testing.T, ttl time.Duration, maxConcurrent int) *stormWorld {
	t.Helper()
	device := webpage.PhoneSmall
	var (
		archives []*replay.Archive
		tenants  []*webpage.Site
	)
	for i, name := range []string{"stormnews", "stormsports"} {
		site := webpage.NewSite(name, webpage.Top100, int64(100+i))
		archives = append(archives, replay.FromSnapshot(
			site.Snapshot(stormEpoch, webpage.Profile{Device: device, UserID: 5}, 1)))
		tenants = append(tenants, site)
	}
	merged := replay.Merge(archives...)

	store := hintstore.New(hintstore.Config{
		// A tiny TTL with a huge stale window forces the
		// stale-while-revalidate path (and its background retrains) to fire
		// continuously during the storm without ever shedding hints at the
		// store layer — the gate ladder owns shed-hints in this world.
		TTL:      ttl,
		MaxStale: time.Hour,
		Workers:  2,
	})
	for i, site := range tenants {
		u, err := urlutil.Parse(archives[i].RootURL)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Register(u.Host, device, hintstore.SiteTrainer(site, stormEpoch, device, core.DefaultResolverConfig())); err != nil {
			t.Fatal(err)
		}
	}
	if !store.Ready() {
		t.Fatal("store not ready after registering every tenant")
	}

	gate := overload.NewGate(overload.Config{
		MaxConcurrent: maxConcurrent,
		MaxQueue:      maxConcurrent,
		MaxWait:       250 * time.Millisecond,
	})

	srv := wire.NewServer(merged, nil, device, wire.ServerConfig{SendHints: true, Push: true})
	srv.Store = store
	srv.Gate = gate
	// Hint-quality accounting runs through the whole storm so the -race run
	// exercises the accountant's settlement path at full concurrency.
	srv.Acct = wire.NewAccountant(wire.AccountingConfig{Store: store, Window: 2 * time.Second})
	reg := telemetry.NewRegistry()
	srv.Instrument(nil, reg)

	var roots []urlutil.URL
	for _, a := range archives {
		u, err := urlutil.Parse(a.RootURL)
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, u)
	}
	serverPlan := faults.New(7, faults.Config{
		BrownoutFrac:     0.2,
		BrownoutMaxDelay: 20 * time.Millisecond,
		ErrorRate:        0.05,
		StaleHintRate:    0.15,
		RedirectFrac:     0.5,
	})
	for _, u := range roots {
		serverPlan.ExemptURL(u)
	}
	srv.Faults = serverPlan

	clientPlan := faults.New(13, faults.Config{
		ErrorRate:    0.04,
		TruncateRate: 0.04,
	})
	for _, u := range roots {
		clientPlan.ExemptURL(u)
	}

	link := netem.Listen(netem.LinkConfig{
		Delay:               time.Millisecond,
		DownlinkBytesPerSec: 50e6,
		UplinkBytesPerSec:   50e6,
	})
	go srv.H2().Serve(link)
	t.Cleanup(func() {
		srv.H2().Close()
		link.Close()
		store.Drain(time.Second)
	})

	return &stormWorld{srv: srv, store: store, gate: gate, reg: reg,
		roots: roots, link: link, shim: netem.NewFaultShim(clientPlan)}
}

func (w *stormWorld) config(loads, concurrency int) Config {
	return Config{
		Roots:       w.roots,
		Loads:       loads,
		Concurrency: concurrency,
		Seed:        42,
		Dial:        func(origin string) (net.Conn, error) { return w.shim.Dial(origin, w.link.Dial) },
		HangGrace:   20 * time.Second,
	}
}

// TestStormChaosAcceptance is the acceptance storm: ≥1000 concurrent loads
// (200 under -short) against a faulted two-tenant server with a small
// admission gate and a hint store whose tables go stale mid-storm. It pins
// the robustness invariants: zero hung loads, every degradation tagged,
// stale-while-revalidate actually retraining and swapping tables, and a
// post-storm drain checkpointing every shard.
func TestStormChaosAcceptance(t *testing.T) {
	loads := 1000
	if testing.Short() {
		loads = 200
	}
	w := newStormWorld(t, 40*time.Millisecond, 16)

	// A stall watchdog guards the whole storm: if no load finishes for the
	// timeout it dumps every goroutine stack before the test deadline would
	// kill the run with no evidence. The baseline feeds the post-storm
	// goroutine-leak check.
	baseline := runtime.NumGoroutine()
	wd := telemetry.NewWatchdog("storm-acceptance", 3*time.Minute, nil, func() {
		t.Error("storm stalled: no progress within the watchdog timeout (stacks dumped above)")
	})
	defer wd.Stop()

	res := Run(w.config(loads, 64))

	if wd.Stop() {
		t.Fatal("stall watchdog fired during the storm")
	}
	// Every load goroutine, per-load watchdog, and client connection the
	// generator spawned must be gone; only the world's own long-lived
	// goroutines (store workers, accept loop, draining server conns) remain.
	if err := telemetry.CheckGoroutineLeak(baseline, 32, 10*time.Second); err != nil {
		t.Errorf("storm leaked goroutines: %v", err)
	}

	if res.Hung != 0 {
		t.Fatalf("%d load(s) hung past deadline+grace", res.Hung)
	}
	if res.Loads != loads || len(res.Samples) != loads {
		t.Fatalf("ran %d/%d loads", len(res.Samples), loads)
	}
	if res.Fetches == 0 {
		t.Fatal("storm fetched nothing")
	}

	// Degradation must be visible, and tagged per mode: the short TTL
	// guarantees stale-hints, the small gate guarantees load-shedding of
	// optional work.
	if res.DegradedModes[wire.DegradedStaleHints] == 0 {
		t.Errorf("no stale-hints responses observed; modes=%v", res.DegradedModes)
	}
	if res.DegradedModes[wire.DegradedShedPush] == 0 && res.DegradedModes[wire.DegradedShedHints] == 0 {
		t.Errorf("gate never shed push or hints; modes=%v", res.DegradedModes)
	}
	if res.DegradedResps == 0 {
		t.Error("no response carried a degradation tag")
	}

	// Stale lookups must have driven real background retrains and RCU swaps
	// (the -race run vouches the swaps were never torn).
	if n := w.reg.Counter("vroom_store_retrains_total").Value(); n == 0 {
		t.Error("no background retrain completed during the storm")
	}
	if n := w.reg.Counter("vroom_store_lookups_total", telemetry.L("source", "stale")).Value(); n == 0 {
		t.Error("no lookup was served stale")
	}

	// The hint-quality accountant ran through the whole storm: its aggregate
	// books must be non-empty and balanced (settlements never outrun
	// emissions; windows still open at storm end are simply unsettled).
	var emitted, used, unused int64
	for _, q := range w.store.QualityAll() {
		emitted += q.HintsEmitted
		used += q.HintsUsed
		unused += q.HintsUnused
	}
	if emitted == 0 || used == 0 {
		t.Errorf("accounting ledgers empty after storm: emitted=%d used=%d", emitted, used)
	}
	if used+unused > emitted {
		t.Errorf("accounting books unbalanced: used %d + unused %d > emitted %d", used, unused, emitted)
	}

	// The server's books must balance: everything admitted was counted, and
	// shedding showed up either as 503s or transport refusals that the
	// clients retried.
	st := w.srv.Stats()
	if st.Requests == 0 {
		t.Fatal("server served nothing")
	}
	if st.Degraded[wire.DegradedStaleHints] == 0 {
		t.Errorf("server books missing stale-hints: %+v", st.Degraded)
	}

	// Post-storm drain: bounded, and every shard checkpointed with a version
	// history proving retrains published.
	start := time.Now()
	cps := w.store.Drain(5 * time.Second)
	if el := time.Since(start); el > 6*time.Second {
		t.Fatalf("drain took %v, want under 6s", el)
	}
	if len(cps) != 2 {
		t.Fatalf("drain checkpointed %d shards, want 2", len(cps))
	}
	for _, cp := range cps {
		if cp.Version < 2 {
			t.Errorf("shard %s still at version %d; retrains never published", cp.Origin, cp.Version)
		}
		if cp.Lookups == 0 {
			t.Errorf("shard %s served no lookups", cp.Origin)
		}
	}
}

// TestStormDrainMidStorm SIGTERM-shapes the server while a storm is in
// flight: Drain must return within its budget, checkpoint every shard, and
// the storm must still complete with zero hung loads — requests after the
// drain fail fast and retryably rather than stalling.
func TestStormDrainMidStorm(t *testing.T) {
	loads := 300
	if testing.Short() {
		loads = 100
	}
	w := newStormWorld(t, 40*time.Millisecond, 16)

	done := make(chan *Result, 1)
	go func() { done <- Run(w.config(loads, 48)) }()

	time.Sleep(400 * time.Millisecond)
	start := time.Now()
	cps := w.srv.Drain(3 * time.Second)
	drainTime := time.Since(start)
	if drainTime > 5*time.Second {
		t.Fatalf("mid-storm drain took %v, want under 5s", drainTime)
	}
	if len(cps) != 2 {
		t.Fatalf("mid-storm drain checkpointed %d shards, want 2", len(cps))
	}

	var res *Result
	select {
	case res = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("storm did not finish after mid-storm drain")
	}
	if res.Hung != 0 {
		t.Fatalf("%d load(s) hung across the drain", res.Hung)
	}
	if res.Loads != loads {
		t.Fatalf("ran %d/%d loads", res.Loads, loads)
	}
}
