// Package logutil builds the structured loggers the vroom commands share:
// log/slog with a selectable handler (human-readable text or line-oriented
// JSON) and level. Commands log one-word message values ("checkpoint",
// "drained") so shell pipelines can grep structurally (msg=checkpoint)
// regardless of the attribute set.
package logutil

import (
	"fmt"
	"io"
	"log/slog"
)

// New builds a logger writing to w. format is "text" or "json"; level is
// "debug", "info", "warn", or "error". Empty strings select text and info.
func New(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("logutil: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("logutil: unknown log format %q (want text or json)", format)
	}
}
