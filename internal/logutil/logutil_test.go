package logutil

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewFormatsAndLevels(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("checkpoint", "origin", "www.example.com", "version", 3)
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("expected exactly one emitted line, got %q", buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("JSON handler emitted invalid JSON: %v (%q)", err, line)
	}
	if rec["msg"] != "checkpoint" || rec["origin"] != "www.example.com" {
		t.Errorf("unexpected record %v", rec)
	}

	buf.Reset()
	log, err = New(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("shed", "reason", "queue-overflow")
	if !strings.Contains(buf.String(), "msg=shed") {
		t.Errorf("text handler output %q lacks msg=shed", buf.String())
	}

	// Empty selectors default to text/info.
	if _, err := New(&buf, "", ""); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if _, err := New(&buf, "yaml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := New(&buf, "text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}
