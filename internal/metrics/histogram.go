package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// histMin is the lower bound of the first histogram bucket, in the caller's
// unit (milliseconds for the duration histograms the experiments record):
// 10µs, far below anything the simulation resolves.
const histMin = 0.01

// histGrowth is the per-bucket growth factor: 2^(1/8), ≈9% relative
// resolution — tight enough that p50/p90/p99 readings are not artifacts of
// bucketing, small enough that a histogram spanning 10µs..100s needs only
// ~190 buckets.
var histGrowth = math.Pow(2, 1.0/8)

// Histogram is a log-bucketed sample distribution with quantile
// estimation. Unlike Dist it never stores individual samples, so an
// experiment can feed it millions of observations at constant memory.
// It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets []uint64 // bucket i covers [histMin*g^i, histMin*g^(i+1))
	zero    uint64   // samples <= 0 (and below histMin)
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: math.Inf(1), max: math.Inf(-1)} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if v < histMin {
		h.zero++
		return
	}
	idx := int(math.Log(v/histMin) / math.Log(histGrowth))
	if idx < 0 {
		idx = 0
	}
	for len(h.buckets) <= idx {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[idx]++
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// N returns the sample count.
func (h *Histogram) N() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the p-th percentile (0 < p <= 100) by locating the
// bucket holding the target rank and interpolating linearly inside it. The
// exact observed min and max anchor the extremes. Returns NaN when empty.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	if h.count == 1 {
		// One sample: every quantile is that sample. Deriving it through the
		// bucket walk risks returning a bucket bound instead when the sample
		// sits exactly on a bucket boundary and the log-index rounds up.
		return h.max
	}
	target := p / 100 * float64(h.count)
	cum := float64(h.zero)
	if target <= cum {
		// Inside the sub-resolution bucket: interpolate min..histMin.
		lo, hi := h.min, math.Min(histMin, h.max)
		return lo + (hi-lo)*target/cum
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if target <= next {
			lo := histMin * math.Pow(histGrowth, float64(i))
			hi := lo * histGrowth
			// Clamp both bounds into the observed range from both sides: on
			// an exact bucket boundary the computed bound can drift past the
			// observed extreme (float log/pow round-off), and an unclamped
			// bound would report a value no sample ever took.
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			if hi > h.max {
				hi = h.max
			}
			if hi < h.min {
				hi = h.min
			}
			if hi < lo {
				hi = lo
			}
			return lo + (hi-lo)*(target-cum)/float64(n)
		}
		cum = next
	}
	return h.max
}

// Snapshot is an exporter-facing copy of a histogram's state, taken under
// one lock acquisition so exposition sees a consistent count/sum/bucket set.
type Snapshot struct {
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
	// Cumulative holds, per requested bound, how many samples fell at or
	// below it. Membership is decided by bucket upper edge, so boundary
	// error stays within one log bucket's ~9% relative width.
	Cumulative []uint64
}

// Snapshot exports the histogram against the given ascending upper bounds
// (the caller's exposition buckets; samples above the last bound are only in
// the implicit +Inf bucket, i.e. Count).
func (h *Histogram) Snapshot(bounds []float64) Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Cumulative: make([]uint64, len(bounds))}
	for bi, b := range bounds {
		if b < 0 {
			continue
		}
		c := h.zero
		for i, n := range h.buckets {
			if histMin*math.Pow(histGrowth, float64(i+1)) > b {
				break
			}
			c += n
		}
		s.Cumulative[bi] = c
	}
	return s
}

// Summary formats the distribution's headline quantiles.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("p50=%.2f p90=%.2f p99=%.2f mean=%.2f n=%d",
		h.Quantile(50), h.Quantile(90), h.Quantile(99), h.Mean(), h.N())
}

// Registry is a named set of histograms for one experiment, so figure code
// can record distributions (time-to-first-byte, scheduler hold time, push
// lead time) without threading individual histograms around. Safe for
// concurrent use.
type Registry struct {
	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{hists: make(map[string]*Histogram)} }

// Histogram returns (creating) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Observe records a sample in the named histogram.
func (r *Registry) Observe(name string, v float64) { r.Histogram(name).Observe(v) }

// ObserveDuration records a duration sample (milliseconds) in the named
// histogram.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Histogram(name).ObserveDuration(d)
}

// Names returns the histogram names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hists))
	for name := range r.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Render formats every non-empty histogram, one line each, sorted by name.
// Values are in the unit observed (milliseconds for ObserveDuration).
func (r *Registry) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (ms)\n", title)
	for _, name := range r.Names() {
		h := r.Histogram(name)
		if h.N() == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-28s %s\n", name, h.Summary())
	}
	return b.String()
}
