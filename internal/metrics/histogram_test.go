package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.N() != 0 {
		t.Fatalf("N = %d", h.N())
	}
	if !math.IsNaN(h.Quantile(50)) || !math.IsNaN(h.Mean()) {
		t.Error("empty histogram quantile/mean should be NaN")
	}
}

// TestHistogramQuantiles checks the log-bucketed estimates stay within the
// bucket resolution (~9%) of the exact sample quantiles across several
// orders of magnitude.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	exact := NewDist()
	for i := 0; i < 50_000; i++ {
		// Log-uniform over 0.1ms .. 10s — the range load metrics live in.
		v := math.Pow(10, -1+5*rng.Float64())
		h.Observe(v)
		exact.Add(v)
	}
	for _, p := range []float64{50, 90, 99} {
		got := h.Quantile(p)
		want := exact.Percentile(p)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("p%.0f: histogram %.4g vs exact %.4g (%.1f%% off)", p, got, want, rel*100)
		}
	}
	if got, want := h.Quantile(0), exact.Min(); got != want {
		t.Errorf("min: %g != %g", got, want)
	}
	if got, want := h.Quantile(100), exact.Max(); got != want {
		t.Errorf("max: %g != %g", got, want)
	}
}

func TestHistogramZeroAndTiny(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(0)
	h.ObserveDuration(500 * time.Millisecond)
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(99); math.Abs(q-500) > 500*0.1 {
		t.Errorf("p99 = %g, want ≈500 (ms)", q)
	}
	if q := h.Quantile(10); q < 0 || q > histMin {
		t.Errorf("p10 = %g, want within the sub-resolution bucket [0, %g]", q, histMin)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.ObserveDuration("a/ttfb", time.Duration(i)*time.Millisecond)
				r.Observe("b/hold", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Names(); len(got) != 2 || got[0] != "a/ttfb" || got[1] != "b/hold" {
		t.Fatalf("Names = %v", got)
	}
	if n := r.Histogram("a/ttfb").N(); n != 4000 {
		t.Errorf("a/ttfb N = %d, want 4000", n)
	}
	out := r.Render("dists")
	for _, want := range []string{"dists", "a/ttfb", "b/hold", "p50=", "p99="} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
