// Package metrics provides the distribution statistics the evaluation
// reports: CDFs, percentiles, significance tests, and formatted comparison
// tables, plus the constant-memory log-bucketed Histogram that
// internal/telemetry wraps.
//
// Scope note: this package is pure statistics — sample containers rendered
// into experiment reports (the Registry here is a per-report set of named
// histograms, not a live scrape surface). Runtime observability — counters,
// gauges, labeled families, Prometheus/JSON exposition, and the experiment
// Counters set — lives in internal/telemetry, which is the one runtime
// registry.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Dist is a sample distribution.
type Dist struct {
	values []float64
	sorted bool
}

// NewDist returns an empty distribution.
func NewDist() *Dist { return &Dist{} }

// FromDurations builds a distribution of seconds from durations.
func FromDurations(ds []time.Duration) *Dist {
	d := NewDist()
	for _, v := range ds {
		d.Add(v.Seconds())
	}
	return d
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.values = append(d.values, v)
	d.sorted = false
}

// AddDuration appends a duration sample in seconds.
func (d *Dist) AddDuration(v time.Duration) { d.Add(v.Seconds()) }

// N returns the sample count.
func (d *Dist) N() int { return len(d.values) }

func (d *Dist) sort() {
	if !d.sorted {
		sort.Float64s(d.values)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) by linear
// interpolation. It returns NaN for an empty distribution.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.values) == 0 {
		return math.NaN()
	}
	d.sort()
	if p <= 0 {
		return d.values[0]
	}
	if p >= 100 {
		return d.values[len(d.values)-1]
	}
	rank := p / 100 * float64(len(d.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.values[lo]
	}
	frac := rank - float64(lo)
	return d.values[lo]*(1-frac) + d.values[hi]*frac
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Percentile(50) }

// Mean returns the arithmetic mean.
func (d *Dist) Mean() float64 {
	if len(d.values) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range d.values {
		s += v
	}
	return s / float64(len(d.values))
}

// Min and Max return the extremes.
func (d *Dist) Min() float64 { return d.Percentile(0) }

// Max returns the largest sample.
func (d *Dist) Max() float64 { return d.Percentile(100) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical CDF at up to points evenly spaced quantiles.
func (d *Dist) CDF(points int) []CDFPoint {
	if len(d.values) == 0 || points <= 0 {
		return nil
	}
	d.sort()
	if points > len(d.values) {
		points = len(d.values)
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*len(d.values)/points - 1
		out = append(out, CDFPoint{Value: d.values[idx], Frac: float64(i) / float64(points)})
	}
	return out
}

// Summary formats the quartiles.
func (d *Dist) Summary() string {
	return fmt.Sprintf("p25=%.2f p50=%.2f p75=%.2f p95=%.2f n=%d",
		d.Percentile(25), d.Median(), d.Percentile(75), d.Percentile(95), d.N())
}

// Table renders a fixed-width comparison table: one row per labelled
// distribution, quartile columns. Rows appear in the given order.
func Table(title string, rows []TableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-26s %8s %8s %8s %8s %6s\n", "policy", "p25", "p50", "p75", "p95", "n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %8.2f %8.2f %8.2f %8.2f %6d\n",
			r.Label, r.Dist.Percentile(25), r.Dist.Median(), r.Dist.Percentile(75), r.Dist.Percentile(95), r.Dist.N())
	}
	return b.String()
}

// TableRow is one labelled distribution in a Table.
type TableRow struct {
	Label string
	Dist  *Dist
}

// ASCIICDF renders a rough CDF plot for terminal output: one line per
// labelled distribution sampled at deciles.
func ASCIICDF(title, unit string, rows []TableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s at p10..p90)\n", title, unit)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s", r.Label)
		for p := 10.0; p <= 90; p += 10 {
			fmt.Fprintf(&b, " %6.2f", r.Dist.Percentile(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
