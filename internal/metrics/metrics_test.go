package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentiles(t *testing.T) {
	d := NewDist()
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 50: 50.5, 100: 100, 25: 25.75, 75: 75.25}
	for p, want := range cases {
		if got := d.Percentile(p); math.Abs(got-want) > 0.01 {
			t.Errorf("P%.0f = %v, want %v", p, got, want)
		}
	}
	if d.Median() != d.Percentile(50) {
		t.Error("median != P50")
	}
}

func TestEmptyDist(t *testing.T) {
	d := NewDist()
	if !math.IsNaN(d.Percentile(50)) || !math.IsNaN(d.Mean()) {
		t.Error("empty distribution should produce NaN")
	}
	if d.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestMeanMinMax(t *testing.T) {
	d := NewDist()
	for _, v := range []float64{4, 1, 9, 2} {
		d.Add(v)
	}
	if d.Mean() != 4 {
		t.Errorf("mean %v", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 9 {
		t.Errorf("min/max %v/%v", d.Min(), d.Max())
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		d := NewDist()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Add(v)
		}
		if d.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := d.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	d := NewDist()
	for i := 1; i <= 10; i++ {
		d.Add(float64(i))
	}
	pts := d.CDF(5)
	if len(pts) != 5 {
		t.Fatalf("points: %v", pts)
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value }) {
		t.Error("CDF values not sorted")
	}
	if pts[len(pts)-1].Frac != 1 {
		t.Errorf("last frac %v", pts[len(pts)-1].Frac)
	}
}

func TestFromDurations(t *testing.T) {
	d := FromDurations([]time.Duration{time.Second, 3 * time.Second})
	if d.Mean() != 2 {
		t.Errorf("mean %v", d.Mean())
	}
}

func TestTableRendering(t *testing.T) {
	d := NewDist()
	d.Add(1)
	d.Add(2)
	out := Table("demo", []TableRow{{Label: "row", Dist: d}})
	if len(out) == 0 || out[0] != 'd' {
		t.Fatalf("table output %q", out)
	}
	cdf := ASCIICDF("demo", "s", []TableRow{{Label: "row", Dist: d}})
	if len(cdf) == 0 {
		t.Fatal("empty ascii cdf")
	}
}

func TestMannWhitneyDistinguishes(t *testing.T) {
	a, b := NewDist(), NewDist()
	for i := 0; i < 60; i++ {
		a.Add(5 + float64(i%10)*0.1) // around 5.45
		b.Add(7 + float64(i%10)*0.1) // around 7.45
	}
	_, p := MannWhitneyU(a, b)
	if p > 1e-6 {
		t.Fatalf("clearly different samples: p=%v", p)
	}
	if d := CliffsDelta(a, b); d > -0.99 {
		t.Fatalf("effect size %v, want ≈ -1 (a below b)", d)
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	a, b := NewDist(), NewDist()
	for i := 0; i < 80; i++ {
		v := float64(i % 13)
		a.Add(v)
		b.Add(v)
	}
	_, p := MannWhitneyU(a, b)
	if p < 0.5 {
		t.Fatalf("identical samples flagged different: p=%v", p)
	}
	if d := CliffsDelta(a, b); math.Abs(d) > 0.01 {
		t.Fatalf("effect size %v for identical samples", d)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if _, p := MannWhitneyU(NewDist(), NewDist()); !math.IsNaN(p) {
		t.Fatal("empty samples should give NaN")
	}
}
