package metrics

import (
	"math"
	"testing"
)

// TestQuantileTinyHistograms pins the bucket-boundary contract for the
// smallest sample counts: an empty histogram has no quantiles, a one-sample
// histogram's every quantile is that sample (never a bucket bound), and a
// two-sample histogram's quantiles stay inside the observed range with the
// extremes exact.
func TestQuantileTinyHistograms(t *testing.T) {
	ps := []float64{0.1, 1, 25, 50, 75, 90, 99, 99.9}

	t.Run("0-sample", func(t *testing.T) {
		h := NewHistogram()
		for _, p := range ps {
			if got := h.Quantile(p); !math.IsNaN(got) {
				t.Errorf("empty histogram: p%v = %v, want NaN", p, got)
			}
		}
	})

	t.Run("1-sample", func(t *testing.T) {
		samples := []float64{0, 0.004, histMin, 0.7, 1, 42.5, 1e4}
		// Exact bucket boundaries, where a drifting log-index could land the
		// sample one bucket off and an unclamped walk would answer with the
		// bucket's upper bound instead of the sample.
		for k := 0; k <= 160; k += 8 {
			samples = append(samples, histMin*math.Pow(histGrowth, float64(k)))
		}
		for _, v := range samples {
			h := NewHistogram()
			h.Observe(v)
			for _, p := range ps {
				if got := h.Quantile(p); got != v {
					t.Errorf("single sample %v: p%v = %v, want the sample", v, p, got)
				}
			}
		}
	})

	t.Run("2-sample", func(t *testing.T) {
		cases := []struct{ a, b float64 }{
			{1, 1},                          // identical
			{1, 1.05},                       // same bucket
			{1, 100},                        // far-apart buckets
			{0, 5},                          // zero bucket + regular bucket
			{histMin, histMin * histGrowth}, // adjacent boundary values
		}
		for _, c := range cases {
			h := NewHistogram()
			h.Observe(c.a)
			h.Observe(c.b)
			lo, hi := math.Min(c.a, c.b), math.Max(c.a, c.b)
			if got := h.Quantile(0); got != lo {
				t.Errorf("{%v,%v}: p0 = %v, want min %v", c.a, c.b, got, lo)
			}
			if got := h.Quantile(100); got != hi {
				t.Errorf("{%v,%v}: p100 = %v, want max %v", c.a, c.b, got, hi)
			}
			prev := math.Inf(-1)
			for _, p := range ps {
				got := h.Quantile(p)
				if got < lo || got > hi {
					t.Errorf("{%v,%v}: p%v = %v outside [%v,%v]", c.a, c.b, p, got, lo, hi)
				}
				if got < prev {
					t.Errorf("{%v,%v}: p%v = %v < previous quantile %v (not monotone)", c.a, c.b, p, got, prev)
				}
				prev = got
			}
		}
	})
}

// TestSnapshotCumulative checks the exporter snapshot: consistent count/sum
// and non-decreasing cumulative buckets that cover every sample at +Inf.
func TestSnapshotCumulative(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0.5, 2, 2, 40, 900, 0.001} {
		h.Observe(v)
	}
	bounds := []float64{1, 5, 100, 1000}
	s := h.Snapshot(bounds)
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if want := 0.5 + 2 + 2 + 40 + 900 + 0.001; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
	prev := uint64(0)
	for i, c := range s.Cumulative {
		if c < prev {
			t.Errorf("bucket le=%v count %d below previous %d", bounds[i], c, prev)
		}
		prev = c
	}
	if s.Cumulative[len(bounds)-1] != s.Count {
		t.Errorf("last bucket (le=%v) holds %d of %d samples", bounds[len(bounds)-1],
			s.Cumulative[len(bounds)-1], s.Count)
	}
}
