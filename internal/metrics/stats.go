package metrics

import (
	"math"
	"sort"
)

// MannWhitneyU runs the two-sided Mann-Whitney U test (Wilcoxon rank-sum)
// on two sample distributions and returns the U statistic and approximate
// p-value (normal approximation with tie correction, appropriate for the
// corpus sizes used here). It answers whether one policy's PLT
// distribution is stochastically different from another's.
func MannWhitneyU(a, b *Dist) (u, p float64) {
	n1, n2 := len(a.values), len(b.values)
	if n1 == 0 || n2 == 0 {
		return math.NaN(), math.NaN()
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a.values {
		all = append(all, obs{v, 0})
	}
	for _, v := range b.values {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, tracking ties for the variance correction.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	u2 := float64(n1)*float64(n2) - u1
	u = math.Min(u1, u2)

	// Normal approximation.
	nn1, nn2 := float64(n1), float64(n2)
	mean := nn1 * nn2 / 2
	n := nn1 + nn2
	variance := nn1 * nn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		if u1 == u2 {
			return u, 1
		}
		return u, 0
	}
	z := (u - mean) / math.Sqrt(variance)
	p = 2 * normalCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	return u, p
}

// normalCDF is the standard normal CDF via the complementary error
// function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// CliffsDelta measures effect size between two samples: the probability a
// value from a exceeds one from b, minus the reverse. Range [-1, 1]; |d| >
// 0.474 is conventionally a large effect.
func CliffsDelta(a, b *Dist) float64 {
	if len(a.values) == 0 || len(b.values) == 0 {
		return math.NaN()
	}
	bs := append([]float64(nil), b.values...)
	sort.Float64s(bs)
	var gt, lt int
	for _, va := range a.values {
		// Count b-values below and above va.
		lo := sort.SearchFloat64s(bs, va)
		hi := lo
		for hi < len(bs) && bs[hi] == va {
			hi++
		}
		gt += lo
		lt += len(bs) - hi
	}
	n := float64(len(a.values) * len(b.values))
	return (float64(gt) - float64(lt)) / n
}
