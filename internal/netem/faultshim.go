package netem

import (
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"vroom/internal/faults"
	"vroom/internal/obs"
)

// FaultShim injects a seeded faults.Plan into emulated (or real) wire
// connections, the live-wire counterpart of netsim's fault handling: dials
// to an origin inside its outage window are refused, browned-out origins
// delay every connection's first downlink byte, and individual connections'
// server-to-client byte streams are reset, stalled, or truncated
// mid-transfer per the plan's seeded per-connection verdicts.
//
// All decisions are drawn through the Plan, so two loads with the same seed
// face byte-identical fault decisions; Decisions() exposes the drawn log
// for determinism tests. A nil *FaultShim (or one with a nil plan) passes
// connections through untouched.
type FaultShim struct {
	plan  *faults.Plan
	start time.Time

	// Trace, when non-nil, records every drawn fault decision as an
	// instant on obs.TrackNet (outage refusals, wire verdicts with their
	// byte budgets, brownout delays), so a load trace shows injected
	// faults next to the dials they hit. Set before the first Dial.
	Trace *obs.Tracer

	mu  sync.Mutex
	log map[string]bool
}

// NewFaultShim wraps a fault plan for wire use. Outage windows are measured
// from the shim's creation, which callers should align with load start.
func NewFaultShim(plan *faults.Plan) *FaultShim {
	return &FaultShim{plan: plan, start: time.Now(), log: make(map[string]bool)}
}

// OutageError reports a dial refused because the origin's outage window is
// active.
type OutageError struct{ Origin string }

func (e *OutageError) Error() string {
	return fmt.Sprintf("netem: %s refused connection (origin outage)", e.Origin)
}

// ResetError reports a connection torn down mid-transfer by the shim.
type ResetError struct{ Origin string }

func (e *ResetError) Error() string {
	return fmt.Sprintf("netem: connection to %s reset by peer", e.Origin)
}

// Dial opens a connection to origin through dial, applying the plan's
// wire-level faults. It is safe for concurrent use.
func (fs *FaultShim) Dial(origin string, dial func() (net.Conn, error)) (net.Conn, error) {
	if fs == nil || fs.plan == nil {
		return dial()
	}
	if fs.plan.OriginDown(origin, time.Since(fs.start)) {
		fs.note("outage:" + origin)
		if fs.Trace.Enabled() {
			fs.Trace.Instant(obs.TrackNet, "fault-outage", obs.Arg{Key: "origin", Val: origin})
		}
		return nil, &OutageError{Origin: origin}
	}
	verdict, cut, idx := fs.plan.WireConnFault(origin)
	delay := fs.plan.BrownoutDelay(origin)
	if verdict != faults.FaultNone {
		fs.note(fmt.Sprintf("%s#%d:%s@%d", origin, idx, verdict, cut))
		if fs.Trace.Enabled() {
			fs.Trace.Instant(obs.TrackNet, "fault-wire",
				obs.Arg{Key: "origin", Val: origin},
				obs.Arg{Key: "verdict", Val: verdict.String()},
				obs.Arg{Key: "cut", Val: strconv.Itoa(cut)})
		}
	}
	if delay > 0 {
		fs.note(fmt.Sprintf("brownout:%s:%s", origin, delay))
		if fs.Trace.Enabled() {
			fs.Trace.Instant(obs.TrackNet, "fault-brownout",
				obs.Arg{Key: "origin", Val: origin},
				obs.Arg{Key: "delay", Val: delay.String()})
		}
	}
	nc, err := dial()
	if err != nil {
		return nil, err
	}
	if verdict == faults.FaultNone && delay == 0 {
		return nc, nil
	}
	return &faultConn{
		Conn:    nc,
		origin:  origin,
		verdict: verdict,
		cut:     cut,
		delay:   delay,
		closed:  make(chan struct{}),
	}, nil
}

// note records one drawn fault decision, once.
func (fs *FaultShim) note(d string) {
	fs.mu.Lock()
	fs.log[d] = true
	fs.mu.Unlock()
}

// Decisions returns the sorted set of fault decisions drawn so far. Two
// loads under the same seed that dial the same connections produce
// identical decision sets regardless of goroutine scheduling.
func (fs *FaultShim) Decisions() []string {
	if fs == nil {
		return nil
	}
	fs.mu.Lock()
	out := make([]string, 0, len(fs.log))
	for d := range fs.log {
		out = append(out, d)
	}
	fs.mu.Unlock()
	sort.Strings(out)
	return out
}

// faultConn applies one connection's fault verdict to its downlink (Read)
// direction. Reads are single-caller (the h2 read loop / h1 response
// reader), but Close may race with Read, so shared state is locked.
type faultConn struct {
	net.Conn
	origin  string
	verdict faults.ResponseFault
	cut     int
	delay   time.Duration

	mu        sync.Mutex
	delivered int
	delayed   bool
	closeOnce sync.Once
	closed    chan struct{}
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if !c.delayed {
		// Brownout: the origin is overloaded; its first byte is late.
		c.delayed = true
		d := c.delay
		c.mu.Unlock()
		if d > 0 {
			select {
			case <-time.After(d):
			case <-c.closed:
				return 0, io.EOF
			}
		}
		c.mu.Lock()
	}
	rem := len(p)
	switch c.verdict {
	case faults.FaultStall, faults.FaultTruncate, faults.FaultReset:
		rem = c.cut - c.delivered
		if rem <= 0 {
			c.mu.Unlock()
			return 0, c.fire()
		}
	}
	c.mu.Unlock()
	if rem > len(p) {
		rem = len(p)
	}
	n, err := c.Conn.Read(p[:rem])
	c.mu.Lock()
	c.delivered += n
	c.mu.Unlock()
	return n, err
}

// fire delivers the verdict once the byte budget is spent: a stalled
// connection blocks until closed (only a client timeout rescues it), a
// truncated one ends cleanly short, a reset one errors and dies.
func (c *faultConn) fire() error {
	switch c.verdict {
	case faults.FaultStall:
		<-c.closed
		return io.EOF
	case faults.FaultTruncate:
		c.Close()
		return io.ErrUnexpectedEOF
	default: // FaultReset
		c.Close()
		return &ResetError{Origin: c.origin}
	}
}

// Close implements net.Conn, unblocking a stalled Read.
func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
