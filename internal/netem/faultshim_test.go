package netem

import (
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"vroom/internal/faults"
)

// echoListener serves each accepted conn by writing a fixed payload.
func echoListener(t *testing.T, payload []byte) *Listener {
	t.Helper()
	l := Listen(LinkConfig{})
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				nc.Write(payload)
			}(nc)
		}
	}()
	return l
}

func TestFaultShimNilPassthrough(t *testing.T) {
	l := echoListener(t, []byte("hello"))
	defer l.Close()
	var fs *FaultShim
	nc, err := fs.Dial("https://a.com", l.Dial)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(nc, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("passthrough read: %q, %v", buf, err)
	}
	if got := fs.Decisions(); got != nil {
		t.Fatalf("nil shim logged decisions: %v", got)
	}
}

func TestFaultShimOutageRefusesDials(t *testing.T) {
	l := echoListener(t, []byte("x"))
	defer l.Close()
	plan := faults.New(5, faults.Config{
		OriginOutageFrac: 1, OutageMaxStart: 0, OutageDuration: time.Hour,
	})
	fs := NewFaultShim(plan)
	_, err := fs.Dial("https://a.com", l.Dial)
	var oe *OutageError
	if !errors.As(err, &oe) || oe.Origin != "https://a.com" {
		t.Fatalf("dial during outage: %v", err)
	}
}

func TestFaultShimTruncatesAtSeededCut(t *testing.T) {
	payload := make([]byte, 64<<10)
	l := echoListener(t, payload)
	defer l.Close()
	plan := faults.New(5, faults.Config{TruncateRate: 1})
	fs := NewFaultShim(plan)
	nc, err := fs.Dial("https://a.com", l.Dial)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	got, err := io.ReadAll(nc)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read error = %v, want unexpected EOF", err)
	}
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("delivered %d of %d bytes, want a strict mid-transfer cut", len(got), len(payload))
	}
}

func TestFaultShimResetErrors(t *testing.T) {
	payload := make([]byte, 64<<10)
	l := echoListener(t, payload)
	defer l.Close()
	plan := faults.New(5, faults.Config{ErrorRate: 1})
	fs := NewFaultShim(plan)
	nc, err := fs.Dial("https://a.com", l.Dial)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_, err = io.ReadAll(nc)
	var re *ResetError
	if !errors.As(err, &re) {
		t.Fatalf("reset conn error = %v, want ResetError", err)
	}
}

func TestFaultShimStallBlocksUntilClose(t *testing.T) {
	l := echoListener(t, []byte("never seen"))
	defer l.Close()
	plan := faults.New(5, faults.Config{StallRate: 1})
	fs := NewFaultShim(plan)
	nc, err := fs.Dial("https://a.com", l.Dial)
	if err != nil {
		t.Fatal(err)
	}
	read := make(chan error, 1)
	go func() {
		_, err := nc.Read(make([]byte, 1))
		read <- err
	}()
	select {
	case err := <-read:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	nc.Close()
	select {
	case err := <-read:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("stalled read after close: %v, want EOF", err)
		}
	case <-time.After(time.Second):
		t.Fatal("stalled read did not unblock on close")
	}
}

func TestFaultShimBrownoutDelaysFirstByte(t *testing.T) {
	l := echoListener(t, []byte("slow"))
	defer l.Close()
	plan := faults.New(5, faults.Config{BrownoutFrac: 1, BrownoutMaxDelay: 200 * time.Millisecond})
	fs := NewFaultShim(plan)
	nc, err := fs.Dial("https://a.com", l.Dial)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	start := time.Now()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	// The seeded delay is in [max/4, max]; first byte must be at least
	// max/4 late.
	if got := time.Since(start); got < 50*time.Millisecond {
		t.Fatalf("browned-out first byte arrived after %v, want >= 50ms", got)
	}
}

func TestFaultShimDecisionsDeterministic(t *testing.T) {
	payload := make([]byte, 8<<10)
	cfg := faults.Config{
		ErrorRate: 0.25, TruncateRate: 0.25, StallRate: 0.1,
		BrownoutFrac: 0.3, BrownoutMaxDelay: time.Millisecond,
	}
	run := func(seed int64) []string {
		l := echoListener(t, payload)
		defer l.Close()
		fs := NewFaultShim(faults.New(seed, cfg))
		for _, origin := range []string{"https://a.com", "https://b.com", "https://c.com"} {
			for i := 0; i < 4; i++ {
				nc, err := fs.Dial(origin, l.Dial)
				if err != nil {
					continue
				}
				nc.Close()
			}
		}
		return fs.Decisions()
	}
	a, b := run(17), run(17)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different decisions:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no fault decisions drawn under 60% combined rates")
	}
	if c := run(18); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds drew identical decisions: %v", a)
	}
}
