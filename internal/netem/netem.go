// Package netem provides Mahimahi-style network emulation for real
// connections: in-memory duplex links with one-way propagation delay and a
// serialization-rate (bandwidth) limit per direction, usable anywhere a
// net.Conn is. The wire-level Vroom demos run the h2 stack over these links
// to reproduce cellular conditions without a testbed.
package netem

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// LinkConfig shapes one emulated link.
type LinkConfig struct {
	// Delay is the one-way propagation delay applied to each direction.
	Delay time.Duration
	// DownlinkBytesPerSec shapes server->client; UplinkBytesPerSec shapes
	// client->server. Zero means unlimited.
	DownlinkBytesPerSec float64
	UplinkBytesPerSec   float64
}

// LTE returns a Verizon-LTE-like link matching the simulation defaults.
func LTE() LinkConfig {
	return LinkConfig{
		Delay:               30 * time.Millisecond, // one-way; 60ms RTT
		DownlinkBytesPerSec: 9e6 / 8,
		UplinkBytesPerSec:   3e6 / 8,
	}
}

// Pipe returns the two ends of an emulated link: client and server.
// Closing either end closes both directions.
func Pipe(cfg LinkConfig) (client, server net.Conn) {
	c2s := newShapedBuf(cfg.Delay, cfg.UplinkBytesPerSec)
	s2c := newShapedBuf(cfg.Delay, cfg.DownlinkBytesPerSec)
	client = &conn{name: "client", r: s2c, w: c2s}
	server = &conn{name: "server", r: c2s, w: s2c}
	return client, server
}

// shapedBuf is a one-direction byte queue with delayed, rate-limited
// release.
type shapedBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cells  []cell
	closed bool

	delay time.Duration
	rate  float64 // bytes/sec, 0 = unlimited
	// lastDeparture is when the previous write finished serializing onto
	// the link.
	lastDeparture time.Time
}

type cell struct {
	data      []byte
	releaseAt time.Time
}

func newShapedBuf(delay time.Duration, rate float64) *shapedBuf {
	b := &shapedBuf{delay: delay, rate: rate}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// write enqueues data with its computed delivery time.
func (b *shapedBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	now := time.Now()
	depart := now
	if b.lastDeparture.After(depart) {
		depart = b.lastDeparture
	}
	if b.rate > 0 {
		depart = depart.Add(time.Duration(float64(len(p)) / b.rate * float64(time.Second)))
	}
	b.lastDeparture = depart
	data := make([]byte, len(p))
	copy(data, p)
	b.cells = append(b.cells, cell{data: data, releaseAt: depart.Add(b.delay)})
	b.cond.Broadcast()
	return len(p), nil
}

// read blocks until released data is available.
func (b *shapedBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(b.cells) > 0 {
			now := time.Now()
			head := &b.cells[0]
			if wait := head.releaseAt.Sub(now); wait > 0 {
				// Sleep outside the lock, then re-check.
				b.mu.Unlock()
				time.Sleep(wait)
				b.mu.Lock()
				continue
			}
			n := copy(p, head.data)
			if n == len(head.data) {
				b.cells = b.cells[1:]
			} else {
				head.data = head.data[n:]
			}
			return n, nil
		}
		if b.closed {
			return 0, io.EOF
		}
		b.cond.Wait()
	}
}

func (b *shapedBuf) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// conn is one end of an emulated link.
type conn struct {
	name string
	r    *shapedBuf
	w    *shapedBuf
}

// Read implements net.Conn.
func (c *conn) Read(p []byte) (int, error) { return c.r.read(p) }

// Write implements net.Conn.
func (c *conn) Write(p []byte) (int, error) { return c.w.write(p) }

// Close implements net.Conn.
func (c *conn) Close() error {
	c.r.close()
	c.w.close()
	return nil
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return addr(c.name) }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return addr("peer-of-" + c.name) }

// SetDeadline implements net.Conn (unsupported; emulated links are used in
// controlled tests and demos).
func (c *conn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn.
func (c *conn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn.
func (c *conn) SetWriteDeadline(time.Time) error { return nil }

type addr string

func (a addr) Network() string { return "netem" }
func (a addr) String() string  { return string(a) }

// Listener is an in-memory listener whose accepted connections are shaped
// links; Dial returns the client end.
type Listener struct {
	cfg    LinkConfig
	ch     chan net.Conn
	mu     sync.Mutex
	closed bool
}

// Listen creates an in-memory shaped listener.
func Listen(cfg LinkConfig) *Listener {
	return &Listener{cfg: cfg, ch: make(chan net.Conn, 1024)}
}

// Dial opens a new shaped connection to the listener.
func (l *Listener) Dial() (net.Conn, error) {
	client, server := Pipe(l.cfg)
	// The send must happen under the same lock as the closed check: Close
	// closes l.ch, and a send racing that close panics. The send never
	// blocks (buffered channel, default arm), so holding the mutex is safe.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		client.Close()
		return nil, fmt.Errorf("netem: listener closed")
	}
	select {
	case l.ch <- server:
		return client, nil
	default:
		client.Close()
		return nil, fmt.Errorf("netem: accept backlog full")
	}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, ok := <-l.ch
	if !ok {
		return nil, fmt.Errorf("netem: listener closed")
	}
	return c, nil
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.ch)
	}
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return addr("netem-listener") }
