package netem

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestPipeDelivers(t *testing.T) {
	c, s := Pipe(LinkConfig{})
	defer c.Close()
	go func() {
		s.Write([]byte("hello"))
		s.Close()
	}()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestPipeDelay(t *testing.T) {
	c, s := Pipe(LinkConfig{Delay: 50 * time.Millisecond})
	defer c.Close()
	defer s.Close()
	start := time.Now()
	go s.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("delivered after %v, want >=50ms", d)
	}
}

func TestPipeBandwidth(t *testing.T) {
	// 100 KB at 1 MB/s should take ~100 ms.
	c, s := Pipe(LinkConfig{DownlinkBytesPerSec: 1e6})
	defer c.Close()
	payload := bytes.Repeat([]byte("a"), 100_000)
	start := time.Now()
	go func() {
		s.Write(payload)
		s.Close()
	}()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("got %d bytes", len(got))
	}
	d := time.Since(start)
	if d < 80*time.Millisecond || d > 400*time.Millisecond {
		t.Fatalf("transfer took %v, want ~100ms", d)
	}
}

func TestPipeOrderingUnderChunkedWrites(t *testing.T) {
	c, s := Pipe(LinkConfig{Delay: time.Millisecond, UplinkBytesPerSec: 5e6})
	defer s.Close()
	var want bytes.Buffer
	go func() {
		for i := 0; i < 50; i++ {
			chunk := bytes.Repeat([]byte{byte('a' + i%26)}, 100)
			c.Write(chunk)
		}
		c.Close()
	}()
	for i := 0; i < 50; i++ {
		want.Write(bytes.Repeat([]byte{byte('a' + i%26)}, 100))
	}
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("bytes reordered or corrupted")
	}
}

func TestListenerDialAccept(t *testing.T) {
	l := Listen(LinkConfig{})
	defer l.Close()
	go func() {
		c, err := l.Dial()
		if err != nil {
			t.Error(err)
			return
		}
		c.Write([]byte("ping"))
		c.Close()
	}()
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(srv)
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
}

func TestClosedListenerDialFails(t *testing.T) {
	l := Listen(LinkConfig{})
	l.Close()
	if _, err := l.Dial(); err == nil {
		t.Fatal("dial on closed listener succeeded")
	}
	if _, err := l.Accept(); err == nil {
		t.Fatal("accept on closed listener succeeded")
	}
}
