package netsim

import (
	"testing"
	"time"

	"vroom/internal/event"
	"vroom/internal/faults"
	"vroom/internal/urlutil"
)

// faultConfig returns a test network wired to a plan with the given rates.
func faultNet(t *testing.T, cfg faults.Config) (*event.Engine, *Net, *faults.Plan) {
	t.Helper()
	eng := event.New(start)
	c := testConfig(HTTP2)
	plan := faults.New(1, cfg)
	c.Faults = plan
	return eng, New(eng, c), plan
}

func TestOutageRefusesConnection(t *testing.T) {
	eng, n, _ := faultNet(t, faults.Config{
		OriginOutageFrac: 1, OutageMaxStart: 0, OutageDuration: time.Minute,
	})
	var reason string
	var doneAt time.Time
	req := n.Do(urlutil.MustParse("https://dead.com/x.js"), func(rt *RoundTrip) {
		t.Fatal("request reached a dead origin")
	})
	req.OnFail = func(r string) { reason = r; doneAt = eng.Now() }
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if reason != "connect-refused" {
		t.Fatalf("reason = %q", reason)
	}
	// The refusal costs one RTT (SYN out, RST back), not a timeout.
	if d := doneAt.Sub(start); d != 100*time.Millisecond {
		t.Fatalf("refused after %v, want 100ms", d)
	}
	if !n.Idle() {
		t.Fatal("network not idle after refusal")
	}
}

func TestErrorResponseFailsAfterSmallBody(t *testing.T) {
	eng, n, _ := faultNet(t, faults.Config{ErrorRate: 1})
	var reason string
	req := n.Do(urlutil.MustParse("https://a.com/x.js"), func(rt *RoundTrip) {
		rt.Respond(1e6, 0, func() { t.Fatal("done fired for a 5xx") })
	})
	req.OnFail = func(r string) { reason = r }
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if reason != "http-error" {
		t.Fatalf("reason = %q", reason)
	}
	// Only the short error body crossed the link, not the 1 MB payload.
	if n.BytesDelivered >= 1e6 {
		t.Fatalf("5xx delivered full body: %d bytes", n.BytesDelivered)
	}
}

func TestTruncatedTransferDeliversPartialBytes(t *testing.T) {
	eng, n, _ := faultNet(t, faults.Config{TruncateRate: 1})
	var reason string
	req := n.Do(urlutil.MustParse("https://a.com/big.js"), func(rt *RoundTrip) {
		rt.Respond(1e6, 0, func() { t.Fatal("done fired for a truncated transfer") })
	})
	req.OnFail = func(r string) { reason = r }
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if reason != "truncated" {
		t.Fatalf("reason = %q", reason)
	}
	if n.BytesDelivered == 0 || n.BytesDelivered >= 1e6 {
		t.Fatalf("truncated transfer delivered %d bytes, want partial", n.BytesDelivered)
	}
}

func TestStalledResponseNeverCompletesUntilAborted(t *testing.T) {
	cfg := faults.Config{StallRate: 1}
	eng := event.New(start)
	c := testConfig(HTTP2)
	c.SerializeResponses = true
	c.Faults = faults.New(1, cfg)
	n := New(eng, c)

	var stalledDone, victimDone bool
	stalled := n.Do(urlutil.MustParse("https://a.com/stall.js"), func(rt *RoundTrip) {
		rt.Respond(1000, 0, func() { stalledDone = true })
	})
	// Exempt the second URL so only the first stalls; it queues behind the
	// stalled head on the serialized connection.
	victim := urlutil.MustParse("https://a.com/after.css")
	c.Faults.ExemptURL(victim)
	n.Do(victim, func(rt *RoundTrip) {
		rt.Respond(1000, 0, func() { victimDone = true })
	})

	// Without an abort the stalled head wedges the whole connection.
	eng.RunUntil(start.Add(5 * time.Second))
	if stalledDone || victimDone {
		t.Fatal("stalled or blocked response completed without an abort")
	}
	// The abort (client timeout's stream reset) frees the line.
	stalled.Abort()
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if stalledDone {
		t.Fatal("aborted response completed")
	}
	if !victimDone {
		t.Fatal("abort did not unwedge the serialized connection")
	}
	if !n.Idle() {
		t.Fatal("network not idle after abort")
	}
}

func TestStalledPushDiesInsteadOfWedging(t *testing.T) {
	eng, n, plan := faultNet(t, faults.Config{StallRate: 1})
	u := urlutil.MustParse("https://a.com/index.html")
	plan.ExemptURL(u)
	var pushFailReason string
	var mainDone bool
	n.Do(u, func(rt *RoundTrip) {
		rt.Push(urlutil.MustParse("https://a.com/style.css"), 2000, 0,
			func() { t.Fatal("stalled push completed") },
			func(r string) { pushFailReason = r })
		rt.Respond(2000, 0, func() { mainDone = true })
	})
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if pushFailReason != "stalled" {
		t.Fatalf("push fail reason = %q", pushFailReason)
	}
	if !mainDone {
		t.Fatal("main response blocked by a dead push stream")
	}
}

func TestBrownoutDelaysFirstByte(t *testing.T) {
	run := func(cfg faults.Config) time.Duration {
		eng := event.New(start)
		c := testConfig(HTTP2)
		c.Faults = faults.New(1, cfg)
		n := New(eng, c)
		var doneAt time.Time
		n.Do(urlutil.MustParse("https://slow.com/x.js"), echoServer(1000, 0, func(at time.Time) { doneAt = at }, eng))
		if _, err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		if doneAt.IsZero() {
			t.Fatal("transfer never completed")
		}
		return doneAt.Sub(start)
	}
	clean := run(faults.Config{})
	browned := run(faults.Config{BrownoutFrac: 1, BrownoutMaxDelay: 800 * time.Millisecond})
	if browned <= clean+100*time.Millisecond {
		t.Fatalf("brownout had no effect: %v vs %v", browned, clean)
	}
}

func TestAbortBeforeDispatchDropsRequest(t *testing.T) {
	eng := event.New(start)
	n := New(eng, testConfig(HTTP2))
	served := false
	req := n.Do(urlutil.MustParse("https://a.com/x.js"), func(rt *RoundTrip) {
		served = true
		rt.Respond(100, 0, nil)
	})
	req.Abort()
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if served {
		t.Fatal("aborted request reached the server")
	}
	if !n.Idle() {
		t.Fatal("network not idle after early abort")
	}
}

func TestAbortFreesHTTP1Connection(t *testing.T) {
	cfg := testConfig(HTTP1)
	cfg.MaxConnsPerOrigin = 1
	cfg.Faults = faults.New(1, faults.Config{StallRate: 1})
	eng := event.New(start)
	n := New(eng, cfg)
	stall := n.Do(urlutil.MustParse("https://a.com/stall"), func(rt *RoundTrip) {
		rt.Respond(1000, 0, func() { t.Fatal("stalled flow completed") })
	})
	next := urlutil.MustParse("https://a.com/next")
	cfg.Faults.ExemptURL(next)
	var nextDone bool
	n.Do(next, func(rt *RoundTrip) {
		rt.Respond(1000, 0, func() { nextDone = true })
	})
	eng.RunUntil(start.Add(2 * time.Second))
	if nextDone {
		t.Fatal("second request completed while the connection was wedged")
	}
	stall.Abort()
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if !nextDone {
		t.Fatal("abort did not free the HTTP/1.1 connection")
	}
}
