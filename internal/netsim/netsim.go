// Package netsim simulates the client's network path during a page load: a
// shared cellular access link plus per-origin connections, in the style of
// the paper's Mahimahi-based replay setup (Fig. 12).
//
// The model is a fluid one. The downlink capacity is divided max-min fairly
// across connections with in-flight response data (mirroring per-TCP-flow
// fairness), and within an HTTP/2 connection either interleaved across
// streams or serialized in request-arrival order — the behaviour Vroom's
// modified servers enforce (§5.1). HTTP/1.1 connections carry one response
// at a time with up to MaxConnsPerOrigin parallel connections per origin.
//
// Request latency is modelled as propagation (half the origin RTT each way)
// plus connection setup (DNS once per host, one RTT for TCP, TLSRoundTrips
// for TLS) plus a server think time supplied per response.
package netsim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"vroom/internal/event"
	"vroom/internal/faults"
	"vroom/internal/obs"
	"vroom/internal/urlutil"
)

// Protocol selects HTTP/1.1 or HTTP/2 connection semantics.
type Protocol int

// Protocols.
const (
	HTTP1 Protocol = iota
	HTTP2
)

func (p Protocol) String() string {
	if p == HTTP1 {
		return "http/1.1"
	}
	return "h2"
}

// Config parameterizes the simulated network.
type Config struct {
	// DownlinkBytesPerSec is the access-link capacity. The default models
	// an LTE connection with good signal (~9 Mbit/s effective).
	DownlinkBytesPerSec float64
	// BaseRTT is the cellular last-mile round-trip time.
	BaseRTT time.Duration
	// ExtraRTT returns the origin-dependent wide-area RTT added on top of
	// BaseRTT. If nil, a deterministic per-host value in [10ms, 80ms] is
	// derived from the host name.
	ExtraRTT func(host string) time.Duration
	// DNSDelay is the cost of resolving a host the first time.
	DNSDelay time.Duration
	// TLSRoundTrips is the number of RTTs spent in the TLS handshake
	// after TCP's one (2 for TLS 1.2, the paper's era).
	TLSRoundTrips int
	// Protocol selects HTTP/1.1 or HTTP/2 semantics.
	Protocol Protocol
	// MaxConnsPerOrigin bounds parallel HTTP/1.1 connections (default 6).
	// HTTP/2 always uses one connection per origin.
	MaxConnsPerOrigin int
	// SerializeResponses makes each connection deliver responses in the
	// order the server started them instead of interleaving (§5.1).
	SerializeResponses bool
	// QueueWeight and MaxQueueDelay model cellular bufferbloat: while
	// response data is backlogged on the downlink, new first bytes and
	// handshake round trips queue behind it. The extra delay is
	// min(MaxQueueDelay, backlogSeconds * QueueWeight). Zero QueueWeight
	// disables queuing delay.
	QueueWeight   float64
	MaxQueueDelay time.Duration
	// InitCwndBytes is TCP's initial congestion window (default 10 MSS).
	// Each connection's throughput is capped at cwnd/RTT, doubling every
	// RTT while the connection is sending — so fresh connections start
	// slow and a single warm HTTP/2 connection outperforms many cold
	// HTTP/1.1 ones.
	InitCwndBytes float64
	// DisableSlowStart removes the cwnd cap (used by degenerate
	// configurations like the zero-latency CPU bound).
	DisableSlowStart bool
	// Trace, when set, makes the downlink capacity time-varying
	// (Mahimahi-style); DownlinkBytesPerSec is ignored while a trace
	// sample is in effect.
	Trace *RateTrace
	// Faults, when set, injects the plan's network-level failures: origin
	// outages refuse new requests, brown-outs delay first bytes, and
	// responses may stall or truncate. Nil injects nothing.
	Faults *faults.Plan
	// Tracer records connection and stream lifecycle spans (DNS, handshake,
	// request, first byte, body, stall/reset). Nil disables tracing.
	Tracer *obs.Tracer
}

// LTEDefaults returns the configuration used throughout the evaluation: a
// Verizon-LTE-like access link and 2017-era handshake costs.
func LTEDefaults(p Protocol) Config {
	return Config{
		DownlinkBytesPerSec: 9e6 / 8,
		BaseRTT:             60 * time.Millisecond,
		DNSDelay:            40 * time.Millisecond,
		TLSRoundTrips:       2,
		Protocol:            p,
		MaxConnsPerOrigin:   6,
		QueueWeight:         0.6,
		MaxQueueDelay:       500 * time.Millisecond,
	}
}

// Net is one client's simulated network. It must be driven from a single
// goroutine together with its event engine.
type Net struct {
	eng *event.Engine
	cfg Config

	origins map[string]*origin
	dns     map[string]time.Time // host -> resolution completion

	activeConns map[*conn]struct{}
	connSeq     uint64
	lastUpdate  time.Time

	completion *event.Event
	traceTick  *event.Event
	traceStart time.Time
	start      time.Time

	// BytesDelivered counts response payload bytes fully delivered.
	BytesDelivered int64
}

// New creates a network attached to an event engine.
func New(eng *event.Engine, cfg Config) *Net {
	if cfg.DownlinkBytesPerSec <= 0 {
		cfg.DownlinkBytesPerSec = 9e6 / 8
	}
	if cfg.MaxConnsPerOrigin <= 0 {
		cfg.MaxConnsPerOrigin = 6
	}
	if cfg.ExtraRTT == nil {
		cfg.ExtraRTT = DefaultExtraRTT
	}
	if cfg.InitCwndBytes <= 0 {
		cfg.InitCwndBytes = 10 * 1460
	}
	return &Net{
		eng:         eng,
		cfg:         cfg,
		origins:     make(map[string]*origin),
		dns:         make(map[string]time.Time),
		activeConns: make(map[*conn]struct{}),
		lastUpdate:  eng.Now(),
		traceStart:  eng.Now(),
		start:       eng.Now(),
	}
}

// capacity returns the downlink capacity in effect right now.
func (n *Net) capacity() float64 {
	if n.cfg.Trace != nil {
		if r := n.cfg.Trace.RateAt(n.eng.Now().Sub(n.traceStart)); r > 0 {
			return r
		}
	}
	return n.cfg.DownlinkBytesPerSec
}

// DefaultExtraRTT derives a stable wide-area RTT in [10ms, 80ms] from the
// host name.
func DefaultExtraRTT(host string) time.Duration {
	h := fnv.New32a()
	h.Write([]byte(host))
	return 10*time.Millisecond + time.Duration(h.Sum32()%71)*time.Millisecond
}

// RTT returns the full round-trip time to an origin host.
func (n *Net) RTT(host string) time.Duration {
	return n.cfg.BaseRTT + n.cfg.ExtraRTT(host)
}

// queueDelay returns the current bufferbloat penalty: the seconds of
// response data already backlogged on the downlink, damped by QueueWeight
// and capped at MaxQueueDelay.
func (n *Net) queueDelay() time.Duration {
	if n.cfg.QueueWeight <= 0 {
		return 0
	}
	var backlog float64
	for _, c := range n.activeSorted() {
		for _, f := range c.transferring() {
			backlog += f.remaining
		}
	}
	d := time.Duration(backlog / n.capacity() * n.cfg.QueueWeight * float64(time.Second))
	if d > n.cfg.MaxQueueDelay {
		d = n.cfg.MaxQueueDelay
	}
	return d
}

// RoundTrip represents one request that has reached the server. The server
// side responds through it.
type RoundTrip struct {
	URL urlutil.URL
	// RequestedAt is when the client issued the request.
	RequestedAt time.Time
	// ServerAt is when the request arrived at the server.
	ServerAt time.Time

	net  *Net
	conn *conn
	req  *Request
}

// Request is the client's handle on an issued request. It exposes the
// failure path that fault injection opens up: OnFail fires at most once if
// the request dies (connection refused, 5xx, truncated transfer), and
// Abort cancels it from the client side — the stream-reset analog that
// rescues a serialized connection wedged behind a stalled response.
type Request struct {
	url urlutil.URL
	net *Net

	// OnFail, if set, is invoked (at most once, in simulated time) when the
	// request fails terminally. It is not invoked for Abort: the caller
	// already knows.
	OnFail func(reason string)

	// OnStart, if set, is invoked when the response headers reach the
	// client — the transfer is live even if the body is still queued
	// behind other responses. Clients use it to disarm their timeouts.
	OnStart func()

	aborted bool
	failed  bool
	flow    *flow
	span    obs.Span
}

// fail marks the request terminally failed and notifies the client.
func (r *Request) fail(reason string) {
	if r == nil || r.failed || r.aborted {
		return
	}
	r.failed = true
	r.span.End(obs.Arg{Key: "outcome", Val: reason})
	r.span = obs.Span{}
	if r.OnFail != nil {
		r.OnFail(reason)
	}
}

// Abort cancels the request from the client side. Any queued or in-flight
// response flow is dropped — freeing a serialized connection blocked behind
// it — and no further callbacks fire. Safe to call at any point, including
// after completion or failure (then a no-op).
func (r *Request) Abort() {
	if r == nil || r.aborted || r.failed {
		return
	}
	r.aborted = true
	if r.flow != nil {
		r.flow.conn.abortFlow(r.flow)
		r.flow = nil
	} else {
		r.span.End(obs.Arg{Key: "outcome", Val: "aborted"})
	}
	r.span = obs.Span{}
}

// Do issues a request for u. onServer is invoked (in simulated time) when
// the request reaches the origin server; the handler must eventually call
// Respond or Push on the RoundTrip. Pushed responses created by the handler
// share the same connection. The returned Request carries the failure and
// abort path; callers that predate fault injection may ignore it.
func (n *Net) Do(u urlutil.URL, onServer func(*RoundTrip)) *Request {
	r := &Request{url: u, net: n}
	if n.cfg.Faults.OriginDown(u.Origin(), n.eng.Now().Sub(n.start)) {
		// Connection refused: the SYN's RST comes back after one RTT.
		if n.cfg.Tracer.Enabled() {
			n.cfg.Tracer.InstantAt(n.eng.Now().Add(n.RTT(u.Host)), obs.TrackNet,
				"refused:"+u.String(), obs.Arg{Key: "origin", Val: u.Origin()})
		}
		n.eng.ScheduleAfter(n.RTT(u.Host), "refused@"+u.String(), func() {
			r.fail("connect-refused")
		})
		return r
	}
	o := n.origin(u)
	req := &pendingReq{url: u, issued: n.eng.Now(), onServer: onServer, req: r}
	o.pending = append(o.pending, req)
	n.dispatch(o)
	return r
}

// Respond queues size bytes of response after thinkTime of server-side
// processing. done fires when the client has received the last byte.
func (rt *RoundTrip) Respond(size int, thinkTime time.Duration, done func()) {
	rt.net.respond(rt.conn, rt.URL, size, thinkTime, done, rt.req, nil)
}

// Push queues a server-initiated response for u on the same connection
// (HTTP/2 PUSH). It is subject to the same ordering and bandwidth sharing
// as regular responses. fail, if non-nil, fires when the pushed stream dies
// instead of completing (injected fault); done then never fires.
func (rt *RoundTrip) Push(u urlutil.URL, size int, thinkTime time.Duration, done func(), fail func(reason string)) {
	rt.net.respond(rt.conn, u, size, thinkTime, done, nil, fail)
}

type pendingReq struct {
	url      urlutil.URL
	issued   time.Time
	onServer func(*RoundTrip)
	req      *Request
}

type origin struct {
	key     string
	host    string
	conns   []*conn
	pending []*pendingReq
}

type conn struct {
	origin  *origin
	net     *Net
	seq     uint64    // creation order, for deterministic iteration
	track   string    // trace track name ("" when tracing is disabled)
	readyAt time.Time // handshake completion
	// busy marks an HTTP/1.1 connection with an outstanding request.
	busy bool
	// flows holds queued and transferring responses in server order.
	flows []*flow
	// cwnd is the congestion window in bytes; throughput on this
	// connection is capped at cwnd/RTT. It doubles each RTT while the
	// connection is sending.
	cwnd    float64
	growing bool
}

// rateCap returns the slow-start throughput ceiling for this connection.
func (c *conn) rateCap() float64 {
	if c.net.cfg.DisableSlowStart {
		return c.net.cfg.DownlinkBytesPerSec
	}
	rtt := c.net.RTT(c.origin.host).Seconds()
	if rtt <= 0 {
		return c.net.cfg.DownlinkBytesPerSec
	}
	cap := c.cwnd / rtt
	if cap > c.net.cfg.DownlinkBytesPerSec {
		return c.net.cfg.DownlinkBytesPerSec
	}
	return cap
}

// grow schedules the periodic cwnd doubling while the connection is active.
func (c *conn) grow() {
	if c.growing || c.net.cfg.DisableSlowStart {
		return
	}
	c.growing = true
	rtt := c.net.RTT(c.origin.host)
	if rtt <= 0 {
		return
	}
	c.net.eng.ScheduleAfter(rtt, "cwnd-grow", func() {
		c.growing = false
		if len(c.transferring()) == 0 {
			return // idle: keep the current window (no decay)
		}
		maxCwnd := c.net.cfg.DownlinkBytesPerSec * c.net.RTT(c.origin.host).Seconds() * 2
		c.cwnd *= 2
		if c.cwnd > maxCwnd {
			c.cwnd = maxCwnd
		}
		c.grow()
		c.net.recompute()
	})
}

type flow struct {
	conn *conn
	url  urlutil.URL
	span obs.Span
	// availableAt is when the first byte could reach the client
	// (server start + think + half RTT).
	availableAt time.Time
	started     bool // availableAt reached, eligible to transfer
	size        int
	remaining   float64
	rate        float64
	done        func()
}

func (n *Net) origin(u urlutil.URL) *origin {
	key := u.Origin()
	o, ok := n.origins[key]
	if !ok {
		o = &origin{key: key, host: u.Host}
		n.origins[key] = o
	}
	return o
}

// connLimit returns how many connections this origin may open.
func (n *Net) connLimit() int {
	if n.cfg.Protocol == HTTP2 {
		return 1
	}
	return n.cfg.MaxConnsPerOrigin
}

// dispatch assigns pending requests to connections.
func (n *Net) dispatch(o *origin) {
	for len(o.pending) > 0 {
		if r := o.pending[0].req; r != nil && (r.aborted || r.failed) {
			o.pending = o.pending[1:]
			continue
		}
		c := n.pickConn(o)
		if c == nil {
			return // all connections busy (HTTP/1.1)
		}
		req := o.pending[0]
		o.pending = o.pending[1:]
		if n.cfg.Protocol == HTTP1 {
			c.busy = true
		}
		n.sendRequest(c, req)
	}
}

// pickConn returns a connection able to carry a new request, opening one if
// allowed, or nil if the origin is saturated.
func (n *Net) pickConn(o *origin) *conn {
	for _, c := range o.conns {
		if n.cfg.Protocol == HTTP2 || !c.busy {
			return c
		}
	}
	if len(o.conns) < n.connLimit() {
		return n.openConn(o)
	}
	return nil
}

// openConn models DNS + TCP + TLS setup.
func (n *Net) openConn(o *origin) *conn {
	now := n.eng.Now()
	dnsReady, resolved := n.dns[o.host]
	if !resolved {
		dnsReady = now.Add(n.cfg.DNSDelay)
		n.dns[o.host] = dnsReady
	}
	if dnsReady.Before(now) {
		dnsReady = now
	}
	rtt := n.RTT(o.host)
	// Each handshake round trip's downlink leg queues behind backlogged
	// response data.
	handshakes := time.Duration(1+n.cfg.TLSRoundTrips) * (rtt + n.queueDelay())
	n.connSeq++
	c := &conn{origin: o, net: n, seq: n.connSeq, readyAt: dnsReady.Add(handshakes), cwnd: n.cfg.InitCwndBytes}
	if tr := n.cfg.Tracer; tr.Enabled() {
		c.track = fmt.Sprintf("conn:%s#%d", o.key, c.seq)
		if !resolved && dnsReady.After(now) {
			tr.BeginAt(now, c.track, "dns", obs.Arg{Key: "host", Val: o.host}).EndAt(dnsReady)
		}
		tr.BeginAt(dnsReady, c.track, "handshake",
			obs.Arg{Key: "rtts", Val: fmt.Sprint(1 + n.cfg.TLSRoundTrips)}).EndAt(c.readyAt)
	}
	o.conns = append(o.conns, c)
	return c
}

// sendRequest delivers the request to the server at readyAt + RTT/2, plus
// the current queuing delay: under bufferbloat the request's ACK path
// shares the loaded radio link.
func (n *Net) sendRequest(c *conn, req *pendingReq) {
	start := n.eng.Now()
	if c.readyAt.After(start) {
		start = c.readyAt
	}
	if tr := n.cfg.Tracer; tr.Enabled() && req.req != nil {
		req.req.span = tr.BeginAt(start, c.track, "stream:"+req.url.String())
	}
	arrive := start.Add(n.RTT(c.origin.host)/2 + n.queueDelay())
	n.eng.Schedule(arrive, "req@"+req.url.String(), func() {
		if r := req.req; r != nil && (r.aborted || r.failed) {
			n.freeH1(c)
			return
		}
		req.onServer(&RoundTrip{URL: req.url, RequestedAt: req.issued, ServerAt: n.eng.Now(), net: n, conn: c, req: req.req})
	})
}

// respond enqueues a response flow on a connection. req is the client's
// handle for request/response pairs (nil for pushes); pushFail is the
// failure callback for pushes (nil for request/response pairs). When a
// fault plan is configured the response may instead 5xx, truncate, or
// stall.
func (n *Net) respond(c *conn, u urlutil.URL, size int, thinkTime time.Duration, done func(), req *Request, pushFail func(string)) {
	if req != nil && (req.aborted || req.failed) {
		// The client gave up while the request was in flight to the server.
		n.freeH1(c)
		return
	}
	if size <= 0 {
		size = 1
	}
	deliver := done
	failTo := func(reason string) func() {
		if req != nil {
			return func() { req.fail(reason) }
		}
		return func() {
			if pushFail != nil {
				pushFail(reason)
			}
		}
	}
	if p := n.cfg.Faults; p != nil {
		switch p.ResponseVerdict(u) {
		case faults.FaultError:
			// 5xx: a short error body arrives in place of the content.
			size = errorBodyBytes
			deliver = failTo("http-error")
			if n.cfg.Tracer.Enabled() {
				n.cfg.Tracer.Instant(c.track, "fault:"+u.String(), obs.Arg{Key: "kind", Val: "http-error"})
			}
		case faults.FaultTruncate:
			// The connection dies mid-transfer: part of the body arrives,
			// then the request fails.
			size = int(float64(size) * p.TruncateFrac(u))
			if size < 1 {
				size = 1
			}
			deliver = failTo("truncated")
			if n.cfg.Tracer.Enabled() {
				n.cfg.Tracer.Instant(c.track, "fault:"+u.String(), obs.Arg{Key: "kind", Val: "truncated"})
			}
		case faults.FaultStall:
			if req == nil {
				// A stalled push is a dead server stream; drop it so an
				// un-abortable push can never wedge the connection. The
				// reset reaches the client half an RTT out — after the
				// PUSH_PROMISE, which travels the same path, so the client
				// has the promised entry to recover.
				if pushFail != nil {
					rstAt := thinkTime + n.RTT(c.origin.host)/2
					if n.cfg.Tracer.Enabled() {
						n.cfg.Tracer.InstantAt(n.eng.Now().Add(rstAt), c.track,
							"push-rst:"+u.String(), obs.Arg{Key: "kind", Val: "stalled"})
					}
					n.eng.ScheduleAfter(rstAt, "push-rst@"+u.String(), func() {
						pushFail("stalled")
					})
				}
				return
			}
			// The first byte never arrives. The flow sits unstarted on the
			// connection — on a serialized connection everything queued
			// behind it blocks too (head-of-line) — until the client's
			// timeout aborts it.
			if n.cfg.Tracer.Enabled() {
				n.cfg.Tracer.Instant(c.track, "fault:"+u.String(), obs.Arg{Key: "kind", Val: "stalled"})
			}
			f := &flow{conn: c, url: u, size: size, remaining: float64(size), done: done, span: req.span}
			req.span = obs.Span{}
			req.flow = f
			c.flows = append(c.flows, f)
			return
		}
	}
	extraDelay := n.cfg.Faults.BrownoutDelay(u.Origin())
	f := &flow{
		conn:        c,
		url:         u,
		availableAt: n.eng.Now().Add(thinkTime).Add(extraDelay).Add(n.RTT(c.origin.host)/2 + n.queueDelay()),
		size:        size,
		remaining:   float64(size),
		done:        deliver,
	}
	if req != nil {
		req.flow = f
		f.span = req.span
		req.span = obs.Span{}
	} else if tr := n.cfg.Tracer; tr.Enabled() {
		// Server-initiated: the push stream opens when the server starts it.
		f.span = tr.Begin(c.track, "push:"+u.String())
	}
	c.flows = append(c.flows, f)
	if req != nil && req.OnStart != nil {
		// Response headers are a handful of bytes and reach the client
		// ~RTT/2 after the server starts sending; only the body queues
		// behind the bufferbloated bulk backlog. OnStart marks the
		// headers' arrival, so client timeouts distinguish a response that
		// is merely queued from one that will never come.
		headersAt := n.eng.Now().Add(thinkTime).Add(extraDelay).Add(n.RTT(c.origin.host) / 2)
		n.eng.Schedule(headersAt, "resp-headers@"+u.String(), func() {
			if !req.aborted && !req.failed {
				req.OnStart()
			}
		})
	}
	n.eng.Schedule(f.availableAt, "resp-start@"+u.String(), func() {
		f.started = true
		if tr := n.cfg.Tracer; tr.Enabled() {
			tr.Instant(c.track, "first-byte:"+u.String())
		}
		n.recompute()
	})
}

// errorBodyBytes is the size of a synthetic 5xx error body.
const errorBodyBytes = 512

// freeH1 releases an HTTP/1.1 connection whose in-flight request died
// before a response flow existed, and re-dispatches queued requests.
func (n *Net) freeH1(c *conn) {
	if n.cfg.Protocol == HTTP1 && c.busy {
		c.busy = false
		n.eng.ScheduleAfter(0, "h1-next", func() { n.dispatch(c.origin) })
	}
}

// abortFlow drops an aborted request's response flow, if it is still queued
// or transferring, and reassigns rates.
func (c *conn) abortFlow(f *flow) {
	for _, g := range c.flows {
		if g == f {
			if f.span.Active() {
				f.span.End(obs.Arg{Key: "outcome", Val: "aborted"})
			}
			c.removeFlow(f)
			c.net.recompute()
			return
		}
	}
}

// transferring returns the flows currently consuming bandwidth on c.
func (c *conn) transferring() []*flow {
	if len(c.flows) == 0 {
		return nil
	}
	if c.net.cfg.SerializeResponses || c.net.cfg.Protocol == HTTP1 {
		// FIFO: only the head flow moves; a not-yet-started head blocks
		// the rest (in-order delivery on the connection).
		if c.flows[0].started {
			return c.flows[:1]
		}
		return nil
	}
	var out []*flow
	for _, f := range c.flows {
		if f.started {
			out = append(out, f)
		}
	}
	return out
}

// activeSorted returns the active connections in creation order. Iterating
// the activeConns map directly would randomize completion-callback order and
// float accumulation order, breaking run-to-run determinism.
func (n *Net) activeSorted() []*conn {
	out := make([]*conn, 0, len(n.activeConns))
	for c := range n.activeConns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// recompute advances all in-flight transfers to the current instant,
// completes finished flows, reassigns rates, and schedules the next
// completion event. It is the heart of the fluid model.
func (n *Net) recompute() {
	now := n.eng.Now()
	elapsed := now.Sub(n.lastUpdate).Seconds()
	n.lastUpdate = now
	active := n.activeSorted()

	// Drain progress at the previously computed rates.
	if elapsed > 0 {
		for _, c := range active {
			for _, f := range c.transferring() {
				f.remaining -= f.rate * elapsed
			}
		}
	}

	// Complete flows that have fully drained.
	const eps = 1e-6
	var completed []*flow
	for _, c := range active {
		for {
			tr := c.transferring()
			finished := false
			for _, f := range tr {
				if f.remaining <= eps {
					c.removeFlow(f)
					completed = append(completed, f)
					finished = true
					break
				}
			}
			if !finished {
				break
			}
		}
	}

	// Rebuild the active set and assign rates, in stable connection order —
	// waterFill's arithmetic must see the same sequence every run.
	n.activeConns = make(map[*conn]struct{})
	var activeList []*conn
	for _, o := range n.origins {
		for _, c := range o.conns {
			if len(c.transferring()) > 0 {
				n.activeConns[c] = struct{}{}
				activeList = append(activeList, c)
			}
		}
	}
	sort.Slice(activeList, func(i, j int) bool { return activeList[i].seq < activeList[j].seq })
	next := time.Duration(math.MaxInt64)
	if len(activeList) > 0 {
		rates := waterFill(n.capacity(), activeList)
		for i, c := range activeList {
			c.grow()
			tr := c.transferring()
			rate := rates[i] / float64(len(tr))
			if rate <= 0 {
				rate = 1 // degenerate guard: never stall a flow entirely
			}
			for _, f := range tr {
				f.rate = rate
				if d := time.Duration(f.remaining / rate * float64(time.Second)); d < next {
					next = d
				}
			}
		}
	}

	// Re-arm the single completion event.
	if n.completion != nil {
		n.eng.Cancel(n.completion)
		n.completion = nil
	}
	if next != time.Duration(math.MaxInt64) {
		n.completion = n.eng.ScheduleAfter(next+time.Nanosecond, "xfer-complete", n.recompute)
	}
	// With a rate trace, re-evaluate rates at the next capacity change
	// while anything is in flight.
	if n.traceTick != nil {
		n.eng.Cancel(n.traceTick)
		n.traceTick = nil
	}
	if n.cfg.Trace != nil && len(activeList) > 0 {
		since := n.eng.Now().Sub(n.traceStart)
		at := n.traceStart.Add(n.cfg.Trace.NextBoundary(since))
		n.traceTick = n.eng.Schedule(at, "rate-change", n.recompute)
	}

	// Fire completion callbacks last: they may issue new requests, which
	// re-enter recompute.
	for _, f := range completed {
		n.BytesDelivered += int64(f.size)
		if f.span.Active() {
			f.span.End(obs.Arg{Key: "outcome", Val: "ok"}, obs.Arg{Key: "bytes", Val: fmt.Sprint(f.size)})
		}
		if f.done != nil {
			f.done()
		}
	}
}

// waterFill allocates link capacity max-min fairly across connections,
// honouring each connection's slow-start rate cap: capped connections get
// their ceiling and the surplus is redistributed to the rest.
func waterFill(capacity float64, conns []*conn) []float64 {
	n := len(conns)
	rates := make([]float64, n)
	caps := make([]float64, n)
	unassigned := make([]int, 0, n)
	for i, c := range conns {
		caps[i] = c.rateCap()
		unassigned = append(unassigned, i)
	}
	remaining := capacity
	for len(unassigned) > 0 {
		share := remaining / float64(len(unassigned))
		// Grant every connection whose cap is below the fair share its
		// cap, then recompute the share for the rest.
		progressed := false
		keep := unassigned[:0]
		for _, i := range unassigned {
			if caps[i] <= share {
				rates[i] = caps[i]
				remaining -= caps[i]
				progressed = true
			} else {
				keep = append(keep, i)
			}
		}
		unassigned = keep
		if !progressed {
			share = remaining / float64(len(unassigned))
			for _, i := range unassigned {
				rates[i] = share
			}
			break
		}
	}
	return rates
}

// removeFlow detaches a finished flow and, for HTTP/1.1, frees the
// connection for the next pending request.
func (c *conn) removeFlow(f *flow) {
	for i, g := range c.flows {
		if g == f {
			c.flows = append(c.flows[:i], c.flows[i+1:]...)
			break
		}
	}
	if c.net.cfg.Protocol == HTTP1 {
		c.busy = false
		// Dispatch after the current cascade settles.
		c.net.eng.ScheduleAfter(0, "h1-next", func() { c.net.dispatch(c.origin) })
	}
}

// Idle reports whether no transfers or pending requests remain.
func (n *Net) Idle() bool {
	for _, o := range n.origins {
		if len(o.pending) > 0 {
			return false
		}
		for _, c := range o.conns {
			if len(c.flows) > 0 {
				return false
			}
		}
	}
	return true
}
