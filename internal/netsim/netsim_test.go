package netsim

import (
	"math/rand"
	"testing"
	"time"

	"vroom/internal/event"
	"vroom/internal/urlutil"
)

var start = time.Date(2017, 8, 21, 0, 0, 0, 0, time.UTC)

func fixedRTT(time.Duration) func(string) time.Duration {
	return func(string) time.Duration { return 0 }
}

func testConfig(p Protocol) Config {
	return Config{
		DownlinkBytesPerSec: 1e6,
		BaseRTT:             100 * time.Millisecond,
		ExtraRTT:            func(string) time.Duration { return 0 },
		DNSDelay:            50 * time.Millisecond,
		TLSRoundTrips:       2,
		Protocol:            p,
		MaxConnsPerOrigin:   6,
		DisableSlowStart:    true, // timing tests assume full rate at once
	}
}

// echoServer responds with the given size after zero think time.
func echoServer(size int, think time.Duration, done func(t time.Time), eng *event.Engine) func(*RoundTrip) {
	return func(rt *RoundTrip) {
		rt.Respond(size, think, func() { done(eng.Now()) })
	}
}

func TestSingleFetchTiming(t *testing.T) {
	eng := event.New(start)
	n := New(eng, testConfig(HTTP2))
	var doneAt time.Time
	u := urlutil.MustParse("https://a.example.com/x.js")
	n.Do(u, echoServer(1e6, 0, func(at time.Time) { doneAt = at }, eng))
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// DNS 50ms + handshake 3*RTT (TCP 1 + TLS 2) = 300ms + req 50ms +
	// resp first byte 50ms + 1e6B at 1e6B/s = 1s. Total 1.45s.
	want := start.Add(1450 * time.Millisecond)
	if d := doneAt.Sub(want); d < -2*time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("completion at %v, want ~%v", doneAt.Sub(start), want.Sub(start))
	}
	if n.BytesDelivered != 1e6 {
		t.Fatalf("BytesDelivered = %d, want 1e6", n.BytesDelivered)
	}
	if !n.Idle() {
		t.Fatal("network not idle after completion")
	}
}

func TestFairSharingAcrossOrigins(t *testing.T) {
	eng := event.New(start)
	n := New(eng, testConfig(HTTP2))
	var aAt, bAt time.Time
	// Two equal transfers from different origins with identical setup
	// must finish together, each at half rate.
	n.Do(urlutil.MustParse("https://a.com/1"), echoServer(5e5, 0, func(at time.Time) { aAt = at }, eng))
	n.Do(urlutil.MustParse("https://b.com/2"), echoServer(5e5, 0, func(at time.Time) { bAt = at }, eng))
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if aAt.IsZero() || bAt.IsZero() {
		t.Fatal("transfers did not complete")
	}
	if d := aAt.Sub(bAt); d < -2*time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("equal transfers finished %v apart", d)
	}
	// Each got ~half the link: transfer time ~1s for 5e5 bytes.
	xfer := aAt.Sub(start) - 450*time.Millisecond // setup+latency
	if xfer < 950*time.Millisecond || xfer > 1100*time.Millisecond {
		t.Fatalf("transfer phase took %v, want ~1s (half rate each)", xfer)
	}
}

func TestHTTP1SixConnectionLimit(t *testing.T) {
	eng := event.New(start)
	n := New(eng, testConfig(HTTP1))
	doneTimes := make([]time.Time, 0, 8)
	u := func(i int) urlutil.URL {
		return urlutil.URL{Scheme: "https", Host: "a.com", Path: "/r" + string(rune('0'+i))}
	}
	for i := 0; i < 8; i++ {
		n.Do(u(i), echoServer(1000, 0, func(at time.Time) { doneTimes = append(doneTimes, at) }, eng))
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(doneTimes) != 8 {
		t.Fatalf("completed %d of 8", len(doneTimes))
	}
	// The 7th and 8th requests must have waited for a free connection:
	// strictly later than the first six.
	sixth := doneTimes[5]
	if !doneTimes[6].After(sixth) || !doneTimes[7].After(sixth) {
		t.Fatalf("overflow requests not delayed: %v then %v, %v", sixth.Sub(start), doneTimes[6].Sub(start), doneTimes[7].Sub(start))
	}
}

func TestHTTP2SingleConnectionMultiplexes(t *testing.T) {
	eng := event.New(start)
	n := New(eng, testConfig(HTTP2))
	var serverArrivals []time.Time
	for i := 0; i < 4; i++ {
		u := urlutil.URL{Scheme: "https", Host: "a.com", Path: "/m" + string(rune('0'+i))}
		n.Do(u, func(rt *RoundTrip) {
			serverArrivals = append(serverArrivals, rt.ServerAt)
			rt.Respond(1000, 0, nil)
		})
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(serverArrivals) != 4 {
		t.Fatalf("server saw %d requests", len(serverArrivals))
	}
	// All four requests ride the single connection and arrive together
	// right after setup (no per-request queueing).
	for _, at := range serverArrivals[1:] {
		if !at.Equal(serverArrivals[0]) {
			t.Fatalf("multiplexed requests arrived at different times: %v vs %v", at.Sub(start), serverArrivals[0].Sub(start))
		}
	}
}

func TestSerializedResponsesArriveInOrder(t *testing.T) {
	cfg := testConfig(HTTP2)
	cfg.SerializeResponses = true
	eng := event.New(start)
	n := New(eng, cfg)
	var order []string
	mk := func(name string, size int) {
		u := urlutil.URL{Scheme: "https", Host: "a.com", Path: "/" + name}
		n.Do(u, func(rt *RoundTrip) {
			rt.Respond(size, 0, func() { order = append(order, name) })
		})
	}
	// A huge first response must still finish before a tiny second one.
	mk("big", 500000)
	mk("small", 100)
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("serialized order = %v, want [big small]", order)
	}
}

func TestInterleavedSmallResponseFinishesFirst(t *testing.T) {
	eng := event.New(start)
	n := New(eng, testConfig(HTTP2))
	var order []string
	mk := func(name string, size int) {
		u := urlutil.URL{Scheme: "https", Host: "a.com", Path: "/" + name}
		n.Do(u, func(rt *RoundTrip) {
			rt.Respond(size, 0, func() { order = append(order, name) })
		})
	}
	mk("big", 500000)
	mk("small", 100)
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "small" {
		t.Fatalf("interleaved order = %v, want small first", order)
	}
}

func TestPushSharesConnection(t *testing.T) {
	eng := event.New(start)
	n := New(eng, testConfig(HTTP2))
	var pushedAt, mainAt time.Time
	u := urlutil.MustParse("https://a.com/index.html")
	pu := urlutil.MustParse("https://a.com/style.css")
	n.Do(u, func(rt *RoundTrip) {
		rt.Push(pu, 2000, 0, func() { pushedAt = eng.Now() }, nil)
		rt.Respond(2000, 0, func() { mainAt = eng.Now() })
	})
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if pushedAt.IsZero() || mainAt.IsZero() {
		t.Fatal("push or main response missing")
	}
	if n.BytesDelivered != 4000 {
		t.Fatalf("BytesDelivered = %d, want 4000", n.BytesDelivered)
	}
}

func TestDNSCachedAcrossConnections(t *testing.T) {
	eng := event.New(start)
	n := New(eng, testConfig(HTTP1))
	var first, second time.Time
	n.Do(urlutil.MustParse("https://a.com/1"), echoServer(100, 0, func(at time.Time) { first = at }, eng))
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// Second request opens a fresh origin struct? No — same origin, conn
	// idle, so no DNS and no handshake: should be much faster.
	n.Do(urlutil.MustParse("https://a.com/2"), echoServer(100, 0, func(at time.Time) { second = at }, eng))
	base := eng.Now()
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	d2 := second.Sub(base)
	d1 := first.Sub(start)
	if d2 >= d1 {
		t.Fatalf("reused connection not faster: first %v, second %v", d1, d2)
	}
}

func TestZeroRTTInfiniteBandwidthDegenerate(t *testing.T) {
	cfg := Config{
		DownlinkBytesPerSec: 1e15,
		BaseRTT:             0,
		ExtraRTT:            fixedRTT(0),
		DNSDelay:            0,
		TLSRoundTrips:       0,
		Protocol:            HTTP2,
	}
	eng := event.New(start)
	n := New(eng, cfg)
	var doneAt time.Time
	n.Do(urlutil.MustParse("https://a.com/x"), echoServer(1e9, 0, func(at time.Time) { doneAt = at }, eng))
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if doneAt.Sub(start) > time.Millisecond {
		t.Fatalf("degenerate network took %v", doneAt.Sub(start))
	}
}

func TestSlowStartRampsThroughput(t *testing.T) {
	cfg := testConfig(HTTP2)
	cfg.DisableSlowStart = false
	cfg.InitCwndBytes = 14600
	// A large transfer must take longer with slow start than without.
	run := func(c Config) time.Duration {
		eng := event.New(start)
		n := New(eng, c)
		var doneAt time.Time
		n.Do(urlutil.MustParse("https://a.com/big"), echoServer(2e6, 0, func(at time.Time) { doneAt = at }, eng))
		if _, err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		return doneAt.Sub(start)
	}
	withSS := run(cfg)
	cfg.DisableSlowStart = true
	without := run(cfg)
	if withSS <= without {
		t.Fatalf("slow start had no effect: %v vs %v", withSS, without)
	}
	// The ramp doubles per RTT; after ~7 RTTs the window covers the link,
	// so the penalty is bounded (well under a second here).
	if withSS > without+2*time.Second {
		t.Fatalf("slow-start penalty implausible: %v vs %v", withSS, without)
	}
}

func TestQueueDelayGrowsWithBacklog(t *testing.T) {
	cfg := testConfig(HTTP2)
	cfg.QueueWeight = 0.5
	cfg.MaxQueueDelay = 400 * time.Millisecond
	eng := event.New(start)
	n := New(eng, cfg)
	if d := n.queueDelay(); d != 0 {
		t.Fatalf("idle link has queue delay %v", d)
	}
	// Start a big transfer, then check the delay mid-flight.
	n.Do(urlutil.MustParse("https://a.com/big"), echoServer(5e6, 0, func(time.Time) {}, eng))
	eng.RunUntil(start.Add(600 * time.Millisecond))
	if d := n.queueDelay(); d == 0 {
		t.Fatal("loaded link has no queue delay")
	} else if d > cfg.MaxQueueDelay {
		t.Fatalf("queue delay %v exceeds cap", d)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if d := n.queueDelay(); d != 0 {
		t.Fatalf("drained link still has queue delay %v", d)
	}
}

func TestWaterFillRespectsCaps(t *testing.T) {
	eng := event.New(start)
	cfg := testConfig(HTTP2)
	cfg.DisableSlowStart = false
	cfg.InitCwndBytes = 1460 // tiny: cap = 14.6 KB/s per fresh conn at 100ms RTT
	n := New(eng, cfg)
	// Two origins: both capped well below the fair share; aggregate use
	// is far below capacity, and each flow advances.
	var done int
	for _, h := range []string{"a.com", "b.com"} {
		u := urlutil.URL{Scheme: "https", Host: h, Path: "/x"}
		n.Do(u, echoServer(2000, 0, func(time.Time) { done++ }, eng))
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("capped flows did not complete: %d", done)
	}
}

func TestRateTraceLookup(t *testing.T) {
	tr := &RateTrace{Interval: 100 * time.Millisecond, Rates: []float64{1e6, 2e6, 3e6}}
	cases := map[time.Duration]float64{
		0:                      1e6,
		99 * time.Millisecond:  1e6,
		100 * time.Millisecond: 2e6,
		250 * time.Millisecond: 3e6,
		300 * time.Millisecond: 1e6, // cycles
	}
	for at, want := range cases {
		if got := tr.RateAt(at); got != want {
			t.Errorf("RateAt(%v) = %v, want %v", at, got, want)
		}
	}
	if b := tr.NextBoundary(150 * time.Millisecond); b != 200*time.Millisecond {
		t.Errorf("NextBoundary = %v", b)
	}
}

func TestSyntheticTraceBounds(t *testing.T) {
	tr := SyntheticLTETrace(rand.New(rand.NewSource(7)), 500, 100*time.Millisecond, 5e5, 2e6)
	if len(tr.Rates) != 500 {
		t.Fatalf("%d samples", len(tr.Rates))
	}
	for i, r := range tr.Rates {
		if r < 5e5 || r > 2e6 {
			t.Fatalf("sample %d = %v outside bounds", i, r)
		}
	}
	m := tr.Mean()
	if m < 5e5 || m > 2e6 {
		t.Fatalf("mean %v outside bounds", m)
	}
}

func TestTraceDrivenTransfer(t *testing.T) {
	cfg := testConfig(HTTP2)
	run := func(trace *RateTrace) time.Duration {
		c := cfg
		c.Trace = trace
		eng := event.New(start)
		n := New(eng, c)
		var doneAt time.Time
		n.Do(urlutil.MustParse("https://a.com/big"), echoServer(1e6, 0, func(at time.Time) { doneAt = at }, eng))
		if _, err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		if doneAt.IsZero() {
			t.Fatal("transfer never completed")
		}
		return doneAt.Sub(start)
	}
	fast := run(&RateTrace{Interval: 100 * time.Millisecond, Rates: []float64{2e6}})
	slow := run(&RateTrace{Interval: 100 * time.Millisecond, Rates: []float64{2e5}})
	varying := run(&RateTrace{Interval: 100 * time.Millisecond, Rates: []float64{2e6, 2e5}})
	if !(fast < varying && varying < slow) {
		t.Fatalf("ordering violated: fast=%v varying=%v slow=%v", fast, varying, slow)
	}
}
