package netsim

import (
	"math/rand"
	"time"
)

// RateTrace is a Mahimahi-style time-varying link capacity: a sequence of
// piecewise-constant rates at a fixed interval, cycled when the load
// outlasts the trace. Real cellular links vary on sub-second timescales;
// replaying a trace makes the simulated LTE link do the same.
type RateTrace struct {
	// Interval is each sample's duration.
	Interval time.Duration
	// Rates are capacities in bytes/second, one per interval.
	Rates []float64
}

// RateAt returns the capacity at the given offset from the trace start.
func (t *RateTrace) RateAt(since time.Duration) float64 {
	if t == nil || len(t.Rates) == 0 || t.Interval <= 0 {
		return 0
	}
	idx := int(since/t.Interval) % len(t.Rates)
	if idx < 0 {
		idx = 0
	}
	return t.Rates[idx]
}

// NextBoundary returns the offset of the next rate change after since.
func (t *RateTrace) NextBoundary(since time.Duration) time.Duration {
	n := since/t.Interval + 1
	return n * t.Interval
}

// Mean returns the average capacity.
func (t *RateTrace) Mean() float64 {
	if len(t.Rates) == 0 {
		return 0
	}
	var s float64
	for _, r := range t.Rates {
		s += r
	}
	return s / float64(len(t.Rates))
}

// SyntheticLTETrace synthesizes a cellular capacity trace as a bounded
// random walk between floor and ceil bytes/second, the shape of the
// Verizon LTE traces shipped with Mahimahi. The caller supplies the random
// source so traces and fault plans can share one reproducible seed.
func SyntheticLTETrace(r *rand.Rand, samples int, interval time.Duration, floor, ceil float64) *RateTrace {
	if samples <= 0 {
		samples = 600
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	rates := make([]float64, samples)
	cur := (floor + ceil) / 2
	span := ceil - floor
	for i := range rates {
		cur += r.NormFloat64() * span * 0.08
		if cur < floor {
			cur = floor
		}
		if cur > ceil {
			cur = ceil
		}
		rates[i] = cur
	}
	return &RateTrace{Interval: interval, Rates: rates}
}

// DefaultLTETrace matches the steady-state defaults: a 9 Mbit/s-average
// link wobbling between roughly 4 and 14 Mbit/s.
func DefaultLTETrace(seed int64) *RateTrace {
	return SyntheticLTETrace(rand.New(rand.NewSource(seed)), 600, 100*time.Millisecond, 4e6/8, 14e6/8)
}
