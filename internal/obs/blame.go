package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Blame segment names. Every instant of [0, PLT] is attributed to exactly
// one segment, so the segments always sum to PLT exactly.
const (
	// SegCPUBusy: the main thread was executing a task (parse, eval,
	// layout, finalize).
	SegCPUBusy = "cpu-busy"
	// SegFaultStall: a fetch attempt that ultimately failed or timed out
	// was in flight — time burned by an injected fault.
	SegFaultStall = "fault-stall"
	// SegRetryBackoff: the browser was deliberately waiting out a retry
	// backoff.
	SegRetryBackoff = "retry-backoff"
	// SegNetworkWait: a client-initiated fetch that eventually succeeded
	// was in flight while the CPU was idle — the paper's critical-path
	// network wait (Fig. 4).
	SegNetworkWait = "network-wait"
	// SegPushSaved: only server-initiated push streams were active — idle
	// time the network spent productively delivering content the client
	// had not yet asked for.
	SegPushSaved = "push-saved"
	// SegSchedHold: the scheduler was holding at least one queued fetch at
	// a stage gate and nothing higher-priority explains the time.
	SegSchedHold = "scheduler-hold"
	// SegOtherIdle: nothing above covers the instant (e.g. the gap between
	// onload being earned and the finalize task running, cache-hit
	// delivery delays, push-promise propagation).
	SegOtherIdle = "other-idle"
)

// blameOrder is the attribution priority, highest first: when categories
// overlap in time, the earlier one claims the interval. CPU work beats all
// waiting; among waits, fault damage and deliberate backoff are blamed
// before generic network wait, so "network-wait" means productive transfer
// time; scheduler holds only surface when nothing else explains the time
// (a hold concurrent with a critical fetch is really network wait).
var blameOrder = []string{
	SegCPUBusy, SegFaultStall, SegRetryBackoff,
	SegNetworkWait, SegPushSaved, SegSchedHold,
}

// Segment is one named share of the PLT.
type Segment struct {
	Name string
	Dur  time.Duration
}

// PathNode is one resource on the critical path.
type PathNode struct {
	URL          string
	DiscoveredAt time.Duration // relative to load start
	ArrivedAt    time.Duration
	ProcessedAt  time.Duration
}

// Report is a blame decomposition of one load's PLT.
type Report struct {
	PLT time.Duration
	// Segments lists every blame segment in attribution-priority order
	// (other-idle last); they sum to PLT exactly.
	Segments []Segment
	// CriticalPath is the dependency chain ending at the last-processed
	// resource, root first.
	CriticalPath []PathNode
}

// Sum returns the total of all segments (== PLT by construction).
func (r Report) Sum() time.Duration {
	var s time.Duration
	for _, seg := range r.Segments {
		s += seg.Dur
	}
	return s
}

// interval is a half-open [from, to) time range.
type interval struct{ from, to time.Time }

// Blame decomposes a recorded load into named PLT segments plus the
// dependency chain that ended the load. plt bounds the attribution window;
// pass the load's reported PLT so the decomposition matches the headline
// number. A zero plt derives the window from the trace (the end of the
// final main-thread task).
func Blame(rec *Recording, plt time.Duration) Report {
	start := rec.Start
	if plt <= 0 {
		plt = deriveEnd(rec).Sub(start)
	}
	if plt < 0 {
		plt = 0
	}
	end := start.Add(plt)

	byCat := make(map[string][]interval)
	for _, iv := range spanIntervals(rec, end) {
		cat := classify(iv.track, iv.name, iv.outcome)
		if cat == "" {
			continue
		}
		from, to := iv.from, iv.to
		if from.Before(start) {
			from = start
		}
		if to.After(end) {
			to = end
		}
		if !to.After(from) {
			continue
		}
		byCat[cat] = append(byCat[cat], interval{from, to})
	}
	for cat, ivs := range byCat {
		byCat[cat] = mergeIntervals(ivs)
	}

	// Sweep the window: every elementary slice between consecutive
	// boundaries goes to the highest-priority category covering it.
	points := []time.Time{start, end}
	for _, ivs := range byCat {
		for _, iv := range ivs {
			points = append(points, iv.from, iv.to)
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Before(points[j]) })
	sums := make(map[string]time.Duration)
	cursor := make(map[string]int)
	for i := 0; i+1 < len(points); i++ {
		from, to := points[i], points[i+1]
		if !to.After(from) || from.Before(start) || to.After(end) {
			continue
		}
		cat := SegOtherIdle
		for _, c := range blameOrder {
			if covers(byCat[c], from, cursor, c) {
				cat = c
				break
			}
		}
		sums[cat] += to.Sub(from)
	}

	rep := Report{PLT: plt}
	for _, c := range append(append([]string{}, blameOrder...), SegOtherIdle) {
		rep.Segments = append(rep.Segments, Segment{Name: c, Dur: sums[c]})
	}
	rep.CriticalPath = criticalPath(rec, end)
	return rep
}

// covers reports whether any interval of the (merged, sorted) list contains
// t, advancing the per-category cursor monotonically.
func covers(ivs []interval, t time.Time, cursor map[string]int, cat string) bool {
	i := cursor[cat]
	for i < len(ivs) && !ivs[i].to.After(t) {
		i++
	}
	cursor[cat] = i
	return i < len(ivs) && !ivs[i].from.After(t)
}

// spanInterval is a matched B/E pair with its classification inputs.
type spanInterval struct {
	track, name, outcome string
	from, to             time.Time
}

// spanIntervals pairs Begin/End events by ID. A Begin with no matching End
// (a hold still open when the trace stopped, a stalled stream) closes at
// the window end.
func spanIntervals(rec *Recording, end time.Time) []spanInterval {
	open := make(map[uint64]Event)
	var out []spanInterval
	for _, ev := range rec.Events {
		switch ev.Kind {
		case KindBegin:
			open[ev.ID] = ev
		case KindEnd:
			b, ok := open[ev.ID]
			if !ok {
				continue
			}
			delete(open, ev.ID)
			out = append(out, spanInterval{
				track: b.Track, name: b.Name, outcome: ev.Arg("outcome"),
				from: b.At, to: ev.At,
			})
		}
	}
	for _, b := range open {
		out = append(out, spanInterval{track: b.Track, name: b.Name, from: b.At, to: end})
	}
	return out
}

// classify maps a span to its blame category ("" = not attributable).
func classify(track, name, outcome string) string {
	if track == TrackMain {
		return SegCPUBusy
	}
	switch prefix(name) {
	case "fetch":
		if outcome == "ok" {
			return SegNetworkWait
		}
		return SegFaultStall
	case "backoff":
		return SegRetryBackoff
	case "push":
		return SegPushSaved
	case "hold":
		return SegSchedHold
	case "dns", "handshake":
		return SegNetworkWait
	}
	return ""
}

func prefix(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i]
	}
	return name
}

// deriveEnd finds the load's finish time in the trace: the end of the last
// main-thread task (onload fires when the finalize task completes). Falls
// back to the last event of any kind.
func deriveEnd(rec *Recording) time.Time {
	end := rec.Start
	for _, ev := range rec.Events {
		if ev.Kind == KindEnd && ev.Track == TrackMain && ev.At.After(end) {
			end = ev.At
		}
	}
	if end.Equal(rec.Start) {
		for _, ev := range rec.Events {
			if ev.At.After(end) {
				end = ev.At
			}
		}
	}
	return end
}

// criticalPath walks discovery edges backward from the last resource
// processed inside the window, using the "by" args that discover/require
// instants carry, and returns the chain root-first.
func criticalPath(rec *Recording, end time.Time) []PathNode {
	type times struct {
		discovered, arrived, processed time.Time
		by                             string
	}
	res := make(map[string]*times)
	get := func(url string) *times {
		t, ok := res[url]
		if !ok {
			t = &times{}
			res[url] = t
		}
		return t
	}
	var lastURL string
	var lastAt time.Time
	for _, ev := range rec.Events {
		if ev.Kind != KindInstant || ev.Track != TrackLoad {
			continue
		}
		p := prefix(ev.Name)
		url := strings.TrimPrefix(ev.Name, p+":")
		switch p {
		case "discover":
			t := get(url)
			t.discovered = ev.At
			t.by = ev.Arg("by")
		case "require":
			t := get(url)
			if t.discovered.IsZero() {
				t.discovered = ev.At
			}
			if t.by == "" {
				t.by = ev.Arg("by")
			}
		case "arrived":
			get(url).arrived = ev.At
		case "processed":
			get(url).processed = ev.At
			if !ev.At.After(end) && ev.At.After(lastAt) {
				lastAt = ev.At
				lastURL = url
			}
		}
	}
	if lastURL == "" {
		return nil
	}
	var chain []PathNode
	seen := make(map[string]bool)
	for url := lastURL; url != "" && !seen[url]; {
		seen[url] = true
		t := res[url]
		if t == nil {
			break
		}
		n := PathNode{URL: url}
		if !t.discovered.IsZero() {
			n.DiscoveredAt = t.discovered.Sub(rec.Start)
		}
		if !t.arrived.IsZero() {
			n.ArrivedAt = t.arrived.Sub(rec.Start)
		}
		if !t.processed.IsZero() {
			n.ProcessedAt = t.processed.Sub(rec.Start)
		}
		chain = append(chain, n)
		url = t.by
	}
	// Reverse: root first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// Format renders the report as the text block vroom-trace -blame prints.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PLT %s\n", fmtDur(r.PLT))
	for _, s := range r.Segments {
		pct := 0.0
		if r.PLT > 0 {
			pct = 100 * float64(s.Dur) / float64(r.PLT)
		}
		fmt.Fprintf(&b, "  %-15s %10s  %5.1f%%\n", s.Name, fmtDur(s.Dur), pct)
	}
	fmt.Fprintf(&b, "  %-15s %10s\n", "sum", fmtDur(r.Sum()))
	if len(r.CriticalPath) > 0 {
		b.WriteString("critical path:\n")
		for _, n := range r.CriticalPath {
			fmt.Fprintf(&b, "  %-40s discovered %8s  arrived %8s  processed %8s\n",
				n.URL, fmtDur(n.DiscoveredAt), fmtDur(n.ArrivedAt), fmtDur(n.ProcessedAt))
		}
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// mergeIntervals sorts and coalesces overlapping/touching intervals.
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].from.Before(ivs[j].from) })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if !iv.from.After(last.to) {
			if iv.to.After(last.to) {
				last.to = iv.to
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
