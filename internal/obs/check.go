package obs

import (
	"encoding/json"
	"fmt"
)

// CheckPerfetto validates rendered Chrome trace-event JSON against the
// invariants a trace viewer depends on: the file parses, at least one event
// exists, timestamps are non-negative and non-decreasing, every B has a
// matching E on the same tid (proper nesting), async b/e events pair up
// per id, and flow events are well-formed (every "f" finish follows an "s"
// start with the same id, and no start dangles without a finish). Tests
// and the CI telemetry/load-smoke jobs run it over simulated, live-wire,
// and cross-process merged traces.
func CheckPerfetto(data []byte) error {
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}

	// Timestamps non-decreasing (metadata events carry ts 0 and sort first,
	// which is fine).
	lastTs := -1.0
	for i, ev := range tf.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Ts < 0 {
			return fmt.Errorf("obs: event %d %q has negative ts %v", i, ev.Name, ev.Ts)
		}
		if ev.Ts < lastTs {
			return fmt.Errorf("obs: event %d %q ts %v decreases below %v", i, ev.Name, ev.Ts, lastTs)
		}
		lastTs = ev.Ts
	}

	// Duration events nest per tid; async events pair per id; flow
	// finishes follow their start.
	stacks := map[int][]string{}
	async := map[string]int{}
	flowStarts := map[string]bool{}
	flowFinishes := map[string]int{}
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "B":
			stacks[ev.Tid] = append(stacks[ev.Tid], ev.Name)
		case "E":
			st := stacks[ev.Tid]
			if len(st) == 0 {
				return fmt.Errorf("obs: event %d: E %q on tid %d with empty stack", i, ev.Name, ev.Tid)
			}
			stacks[ev.Tid] = st[:len(st)-1]
		case "b":
			async[ev.ID]++
		case "e":
			async[ev.ID]--
			if async[ev.ID] < 0 {
				return fmt.Errorf("obs: event %d: async end %q id %s before its begin", i, ev.Name, ev.ID)
			}
		case "s":
			if flowStarts[ev.ID] {
				return fmt.Errorf("obs: event %d: duplicate flow start id %s", i, ev.ID)
			}
			flowStarts[ev.ID] = true
		case "f":
			if !flowStarts[ev.ID] {
				return fmt.Errorf("obs: event %d: flow finish id %s before its start", i, ev.ID)
			}
			flowFinishes[ev.ID]++
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			return fmt.Errorf("obs: tid %d: %d unclosed B events (%v)", tid, len(st), st)
		}
	}
	for id, n := range async {
		if n != 0 {
			return fmt.Errorf("obs: async id %s: %d unmatched begins", id, n)
		}
	}
	for id := range flowStarts {
		if flowFinishes[id] == 0 {
			return fmt.Errorf("obs: flow id %s: start with no finish", id)
		}
	}
	return nil
}
