package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Event-level JSON serialization: the /trace scrape format. Where
// WritePerfetto renders a finished, viewer-ready timeline, WriteEvents
// round-trips the raw recording so another process can merge it with its
// own (Merge) before rendering — vroom-load scrapes the server's events
// and stitches them under the client's, joined by propagated flow IDs.

// eventsFile is the on-wire shape: version-stamped, absolute nanosecond
// timestamps so recordings from different processes land on one clock.
type eventsFile struct {
	Version string      `json:"version"`
	StartNs int64       `json:"start_ns"`
	Events  []eventJSON `json:"events"`
}

type eventJSON struct {
	Kind  string    `json:"kind"` // "B", "E", "I"
	Track string    `json:"track"`
	Name  string    `json:"name"`
	AtNs  int64     `json:"at_ns"`
	ID    uint64    `json:"id,omitempty"`
	Args  []argJSON `json:"args,omitempty"`
}

type argJSON struct {
	K string `json:"k"`
	V string `json:"v"`
}

const eventsVersion = "vroom-events/v1"

// WriteEvents serializes a recording as vroom-events/v1 JSON.
func WriteEvents(w io.Writer, rec *Recording) error {
	out := eventsFile{Version: eventsVersion, Events: make([]eventJSON, 0, len(rec.Events))}
	if !rec.Start.IsZero() {
		out.StartNs = rec.Start.UnixNano()
	}
	for _, ev := range rec.Events {
		ej := eventJSON{Kind: ev.Kind.String(), Track: ev.Track, Name: ev.Name,
			AtNs: ev.At.UnixNano(), ID: ev.ID}
		for _, a := range ev.Args {
			ej.Args = append(ej.Args, argJSON{K: a.Key, V: a.Val})
		}
		out.Events = append(out.Events, ej)
	}
	return json.NewEncoder(w).Encode(out)
}

// ReadEvents parses vroom-events/v1 JSON back into a Recording.
func ReadEvents(r io.Reader) (*Recording, error) {
	var in eventsFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("obs: events: %w", err)
	}
	if in.Version != eventsVersion {
		return nil, fmt.Errorf("obs: events: unknown version %q", in.Version)
	}
	rec := &Recording{Events: make([]Event, 0, len(in.Events))}
	if in.StartNs != 0 {
		rec.Start = time.Unix(0, in.StartNs)
	}
	for i, ej := range in.Events {
		ev := Event{Track: ej.Track, Name: ej.Name, At: time.Unix(0, ej.AtNs), ID: ej.ID}
		switch ej.Kind {
		case "B":
			ev.Kind = KindBegin
		case "E":
			ev.Kind = KindEnd
		case "I":
			ev.Kind = KindInstant
		default:
			return nil, fmt.Errorf("obs: events: event %d has unknown kind %q", i, ej.Kind)
		}
		for _, a := range ej.Args {
			ev.Args = append(ev.Args, Arg{Key: a.K, Val: a.V})
		}
		rec.Events = append(rec.Events, ev)
	}
	return rec, nil
}

// Merge combines recordings from different tracers (typically different
// processes) into one. Span IDs are remapped into disjoint ranges — every
// tracer numbers from 1, so concatenating raw events would cross-pair one
// side's Begin with the other's End — and events are stably sorted by
// time. Flow stitching is unaffected: ArgFlow values are matched by
// string, not by event ID. Nil recordings are skipped; Start is the
// earliest nonzero Start.
func Merge(recs ...*Recording) *Recording {
	out := &Recording{}
	var offset uint64
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		if !rec.Start.IsZero() && (out.Start.IsZero() || rec.Start.Before(out.Start)) {
			out.Start = rec.Start
		}
		var maxID uint64
		for _, ev := range rec.Events {
			if ev.ID > maxID {
				maxID = ev.ID
			}
			if ev.ID != 0 {
				ev.ID += offset
			}
			out.Events = append(out.Events, ev)
		}
		offset += maxID
	}
	sort.SliceStable(out.Events, func(i, j int) bool {
		return out.Events[i].At.Before(out.Events[j].At)
	})
	return out
}

// PrefixTracks returns a copy of rec with every track name prefixed —
// applied to the server recording before Merge so its tracks ("server",
// conn tracks) group visibly apart from the client's in the merged view
// and can never collide with a same-named client track.
func PrefixTracks(rec *Recording, prefix string) *Recording {
	out := &Recording{Start: rec.Start, Events: make([]Event, len(rec.Events))}
	copy(out.Events, rec.Events)
	for i := range out.Events {
		out.Events[i].Track = prefix + out.Events[i].Track
	}
	return out
}

// FlowJoinCount reports how many distinct ArgFlow values appear on Begin
// events of two or more different tracks — i.e. how many propagated fetch
// contexts were actually stitched across a process (or track) boundary.
// The load-storm acceptance gate requires at least one.
func FlowJoinCount(rec *Recording) int {
	tracks := make(map[string]map[string]bool)
	for _, ev := range rec.Events {
		if ev.Kind != KindBegin {
			continue
		}
		flow := ev.Arg(ArgFlow)
		if flow == "" {
			continue
		}
		if tracks[flow] == nil {
			tracks[flow] = make(map[string]bool)
		}
		tracks[flow][ev.Track] = true
	}
	n := 0
	for _, ts := range tracks {
		if len(ts) >= 2 {
			n++
		}
	}
	return n
}
