package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// FlightRecorder is a bounded, lock-free Sink holding the most recent
// events per track — the black box a load carries so that when it ends
// degraded, faulted, or past deadline, the last moments of every track
// (the load timeline, each connection, the scheduler) can be dumped
// without having recorded the whole flight.
//
// One ring per track, so a chatty connection cannot evict the load
// track's sparse-but-critical events. Emit is wait-free after a track's
// first event: claim a slot with one atomic add, publish with one atomic
// pointer store. Snapshot may run concurrently with emitters — a slot
// mid-overwrite yields either the old or the new event, never a torn one.
type FlightRecorder struct {
	perTrack int
	tracks   sync.Map // track name -> *flightRing
}

// DefaultFlightEvents is the per-track ring capacity when none is given:
// enough for a whole small load, and the tail of a pathological one.
const DefaultFlightEvents = 256

// NewFlightRecorder builds a recorder keeping the last perTrack events of
// each track (rounded up to a power of two; <= 0 means
// DefaultFlightEvents).
func NewFlightRecorder(perTrack int) *FlightRecorder {
	if perTrack <= 0 {
		perTrack = DefaultFlightEvents
	}
	size := 1
	for size < perTrack {
		size <<= 1
	}
	return &FlightRecorder{perTrack: size}
}

// flightRing is one track's bounded event ring.
type flightRing struct {
	n     atomic.Uint64 // total events ever claimed on this track
	slots []atomic.Pointer[Event]
}

// Emit implements Sink.
func (f *FlightRecorder) Emit(ev Event) {
	v, ok := f.tracks.Load(ev.Track)
	if !ok {
		v, _ = f.tracks.LoadOrStore(ev.Track,
			&flightRing{slots: make([]atomic.Pointer[Event], f.perTrack)})
	}
	ring := v.(*flightRing)
	idx := ring.n.Add(1) - 1
	e := ev
	ring.slots[idx&uint64(len(ring.slots)-1)].Store(&e)
}

// Snapshot returns every retained event, sorted by time (ties keep slot
// order), plus the count of events that were evicted from their rings. It
// is safe to call while emitters are still running; events published after
// the walk starts may or may not appear.
func (f *FlightRecorder) Snapshot() (events []Event, dropped uint64) {
	f.tracks.Range(func(_, v any) bool {
		ring := v.(*flightRing)
		n := ring.n.Load()
		if n > uint64(len(ring.slots)) {
			dropped += n - uint64(len(ring.slots))
		}
		for i := range ring.slots {
			if p := ring.slots[i].Load(); p != nil {
				events = append(events, *p)
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].At.Before(events[j].At) })
	return events, dropped
}
