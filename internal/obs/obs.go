// Package obs is the structured tracing layer threaded through the whole
// simulated load path: netsim connection and stream lifecycle, browser
// main-thread tasks, scheduler stage gates and holds, server push decisions
// and hint emission, and resolver hint resolution.
//
// The design constraint is zero overhead when disabled. A nil *Tracer is the
// disabled fast path — every method on it no-ops without allocating — so the
// instrumented packages hold a possibly-nil *Tracer and call it
// unconditionally. Call sites that would build a name string or argument
// list guard with Enabled() first.
//
// Recorded events feed three consumers: the blame decomposition
// (Blame, blame.go), the Chrome trace-event export (WritePerfetto,
// perfetto.go), and ad-hoc tests that assert on load structure.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind distinguishes the three event shapes.
type Kind uint8

// Event kinds.
const (
	// KindBegin opens a span; a matching KindEnd with the same ID closes
	// it.
	KindBegin Kind = iota
	KindEnd
	// KindInstant is a point event.
	KindInstant
)

func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "B"
	case KindEnd:
		return "E"
	default:
		return "I"
	}
}

// Well-known track names. Connection tracks are derived per connection as
// "conn:<origin>#<seq>" by netsim.
const (
	// TrackMain is the browser main thread: parse/eval/layout task slices.
	TrackMain = "main"
	// TrackLoad carries per-resource fetch lifecycle events (requires,
	// fetch attempts, backoffs, arrivals).
	TrackLoad = "load"
	// TrackSched carries scheduler stage gates and per-resource holds.
	TrackSched = "sched"
	// TrackServer carries server-side decisions: hint resolution and
	// emission, push decisions.
	TrackServer = "server"
	// TrackNet carries network events not attributable to one connection
	// (e.g. a refused connect).
	TrackNet = "net"
)

// Arg is one key/value annotation on an event.
type Arg struct {
	Key string
	Val string
}

// Event is one recorded trace event.
type Event struct {
	Kind  Kind
	Track string
	Name  string
	At    time.Time
	// ID links a KindBegin to its KindEnd. Zero for instants.
	ID   uint64
	Args []Arg
}

// Arg returns the value of a named argument ("" if absent).
func (e Event) Arg(key string) string {
	for _, a := range e.Args {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Sink receives events as they are emitted. Implementations must not retain
// the Args slice beyond the call unless they own it (the Tracer hands over
// ownership, so retaining is fine for recording sinks).
type Sink interface {
	Emit(Event)
}

// Recording is the in-memory Sink: it stores every event, in emission
// order. Events carry absolute simulated timestamps; Start anchors them for
// consumers that want offsets from load start.
type Recording struct {
	Start  time.Time
	Events []Event
}

// Emit implements Sink.
func (r *Recording) Emit(ev Event) { r.Events = append(r.Events, ev) }

// Len returns the number of recorded events.
func (r *Recording) Len() int { return len(r.Events) }

// LiveRecording is the Sink for wall-clock tracers whose consumer reads
// while emitters may still be running: a live wire load's transport
// goroutines (read loops, server handlers) drain asynchronously after the
// load returns, so a plain Recording read at that point races with their
// final events. Emit and Snapshot serialize on one lock; Snapshot returns a
// point-in-time copy, like a metrics scrape — events emitted after it are
// simply not in that snapshot.
type LiveRecording struct {
	// Start anchors event offsets, as in Recording. Set before tracing.
	Start time.Time

	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (r *LiveRecording) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Len returns the number of events emitted so far.
func (r *LiveRecording) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Snapshot returns a race-free copy of everything emitted so far, ready for
// WritePerfetto.
func (r *LiveRecording) Snapshot() *Recording {
	r.mu.Lock()
	events := make([]Event, len(r.events))
	copy(events, r.events)
	r.mu.Unlock()
	return &Recording{Start: r.Start, Events: events}
}

// Tracer emits spans and instants against a clock source. A nil *Tracer is
// the disabled fast path: every method no-ops.
//
// Two clock sources exist. New takes a virtual clock (the event engine's
// Now) and assumes a single emitting goroutine, like the simulation that
// drives it. NewWall uses the monotonic wall clock and is safe for
// concurrent use — the live wire stack emits from fetch goroutines, read
// loops, and handler goroutines at once.
type Tracer struct {
	now  func() time.Time
	sink Sink
	// ids is shared between a tracer and its Forks so span IDs stay unique
	// across every recording they feed.
	ids *atomic.Uint64
}

// New builds a tracer over a virtual clock source and a sink. now is
// typically the event engine's Now; emission is single-goroutine.
func New(now func() time.Time, sink Sink) *Tracer {
	return &Tracer{now: now, sink: sink, ids: new(atomic.Uint64)}
}

// NewWall builds a tracer over the monotonic wall clock for live wire
// loads. It is safe for concurrent use: span IDs are allocated atomically
// and the sink is serialized behind a lock, so a plain Recording can
// collect events from many goroutines.
func NewWall(sink Sink) *Tracer {
	return &Tracer{now: time.Now, sink: &lockedSink{sink: sink}, ids: new(atomic.Uint64)}
}

// Fork derives a tracer that emits every event both to the receiver's sink
// and to extra, sharing the receiver's clock and span-ID allocator — so
// recordings collected from a tracer and any of its forks can be merged
// without ID collisions. The per-load flight recorder is the intended
// extra sink. extra must be safe for the same concurrency as the parent's
// sink (it is NOT wrapped in a lock; the lock-free FlightRecorder
// qualifies). Forking a nil tracer returns nil.
func (t *Tracer) Fork(extra Sink) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{now: t.now, sink: teeSink{a: t.sink, b: extra}, ids: t.ids}
}

// teeSink fans one emission out to two sinks.
type teeSink struct{ a, b Sink }

func (s teeSink) Emit(ev Event) {
	s.a.Emit(ev)
	s.b.Emit(ev)
}

// lockedSink serializes Emit for tracers shared across goroutines.
type lockedSink struct {
	mu   sync.Mutex
	sink Sink
}

func (s *lockedSink) Emit(ev Event) {
	s.mu.Lock()
	s.sink.Emit(ev)
	s.mu.Unlock()
}

// Enabled reports whether the tracer records anything. Call sites use it to
// skip building event names and args on the disabled path.
func (t *Tracer) Enabled() bool { return t != nil }

// Begin opens a span at the current time.
func (t *Tracer) Begin(track, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	return t.BeginAt(t.now(), track, name, args...)
}

// BeginAt opens a span at an explicit time. Simulated components often know
// a span's boundaries ahead of the clock (a handshake completes at a
// computed instant); emitting with explicit timestamps avoids polluting the
// event queue with trace-only events. Consumers sort by time.
func (t *Tracer) BeginAt(at time.Time, track, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	id := t.ids.Add(1)
	t.sink.Emit(Event{Kind: KindBegin, Track: track, Name: name, At: at, ID: id, Args: args})
	return Span{t: t, id: id, track: track, name: name}
}

// Instant emits a point event at the current time.
func (t *Tracer) Instant(track, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.InstantAt(t.now(), track, name, args...)
}

// InstantAt emits a point event at an explicit time.
func (t *Tracer) InstantAt(at time.Time, track, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.sink.Emit(Event{Kind: KindInstant, Track: track, Name: name, At: at, Args: args})
}

// Span is an open interval. The zero Span (from a nil tracer) no-ops on
// End.
type Span struct {
	t     *Tracer
	id    uint64
	track string
	name  string
}

// Active reports whether the span will record its End (i.e. tracing was
// enabled when it began).
func (s Span) Active() bool { return s.t != nil }

// ID returns the span's event ID — the value that links its Begin to its
// End, and the per-fetch component of a propagated trace context. Zero for
// the inactive span.
func (s Span) ID() uint64 { return s.id }

// End closes the span at the current time.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	s.EndAt(s.t.now(), args...)
}

// EndAt closes the span at an explicit time.
func (s Span) EndAt(at time.Time, args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.sink.Emit(Event{Kind: KindEnd, Track: s.track, Name: s.name, At: at, ID: s.id, Args: args})
}
