package obs_test

import (
	"bytes"
	"testing"
	"time"

	"vroom/internal/obs"
	"vroom/internal/runner"
	"vroom/internal/webpage"
)

func traceLoad(t *testing.T, pol runner.Policy) (*obs.Recording, time.Duration) {
	t.Helper()
	site := webpage.NewSite("obssite", webpage.Top100, 11)
	rec := &obs.Recording{}
	res, err := runner.Run(site, pol, runner.Options{
		Time:    time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC),
		Profile: webpage.Profile{Device: webpage.PhoneSmall, UserID: 1},
		Nonce:   1,
		Trace:   rec,
	})
	if err != nil {
		t.Fatalf("%s: %v", pol, err)
	}
	if rec.Len() == 0 {
		t.Fatalf("%s: tracing enabled but no events recorded", pol)
	}
	return rec, res.PLT
}

// TestBlameSumsToPLT is the acceptance gate for the blame decomposition:
// for every policy on a fixed-seed site, the segments must add back up to
// the reported PLT within 1ms.
func TestBlameSumsToPLT(t *testing.T) {
	for _, pol := range runner.AllPolicies() {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			rec, plt := traceLoad(t, pol)
			rep := obs.Blame(rec, plt)
			diff := rep.Sum() - plt
			if diff < 0 {
				diff = -diff
			}
			if diff > time.Millisecond {
				t.Errorf("blame sum %v vs PLT %v (off by %v)\n%s",
					rep.Sum(), plt, diff, rep.Format())
			}
			if plt > 0 && len(rep.Segments) == 0 {
				t.Error("nonzero PLT but no blame segments")
			}
		})
	}
}

// TestCriticalPathRooted checks the blame report's critical path starts at
// the root document and is causally ordered.
func TestCriticalPathRooted(t *testing.T) {
	rec, plt := traceLoad(t, runner.Vroom)
	rep := obs.Blame(rec, plt)
	if len(rep.CriticalPath) == 0 {
		t.Fatal("empty critical path")
	}
	for i := 1; i < len(rep.CriticalPath); i++ {
		prev, cur := rep.CriticalPath[i-1], rep.CriticalPath[i]
		if cur.DiscoveredAt < prev.DiscoveredAt {
			t.Errorf("path not causally ordered: %s@%v before %s@%v",
				cur.URL, cur.DiscoveredAt, prev.URL, prev.DiscoveredAt)
		}
	}
	last := rep.CriticalPath[len(rep.CriticalPath)-1]
	if last.ProcessedAt <= 0 {
		t.Errorf("terminal path node %s has no processed time", last.URL)
	}
}

// TestPerfettoValid renders a real trace and checks the Chrome trace-event
// invariants a viewer depends on — valid JSON, non-decreasing timestamps,
// every B matched by an E on the same tid (and b/e per async id) — via the
// exported checker the live-wire tests and CI reuse.
func TestPerfettoValid(t *testing.T) {
	for _, pol := range []runner.Policy{runner.Vroom, runner.H2, runner.HTTP1} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			rec, _ := traceLoad(t, pol)
			var buf bytes.Buffer
			if err := obs.WritePerfetto(&buf, rec); err != nil {
				t.Fatal(err)
			}
			if err := obs.CheckPerfetto(buf.Bytes()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
