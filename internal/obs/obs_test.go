package obs

import (
	"testing"
	"time"
)

func clockAt(t *time.Time) func() time.Time { return func() time.Time { return *t } }

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin(TrackMain, "x")
	if sp.Active() {
		t.Fatal("nil tracer returned an active span")
	}
	sp.End() // must not panic
	tr.Instant(TrackLoad, "y")
	tr.InstantAt(time.Time{}, TrackLoad, "z")
}

func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(TrackMain, "task")
		sp.End()
		tr.Instant(TrackLoad, "i")
	}); allocs != 0 {
		t.Errorf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func TestTracerRecords(t *testing.T) {
	now := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	rec := &Recording{Start: now}
	tr := New(clockAt(&now), rec)

	sp := tr.Begin(TrackMain, "parse", Arg{Key: "doc", Val: "root"})
	now = now.Add(10 * time.Millisecond)
	tr.Instant(TrackLoad, "discover:x", Arg{Key: "by", Val: "root"})
	now = now.Add(5 * time.Millisecond)
	sp.End(Arg{Key: "outcome", Val: "ok"})

	if rec.Len() != 3 {
		t.Fatalf("recorded %d events, want 3", rec.Len())
	}
	b, i, e := rec.Events[0], rec.Events[1], rec.Events[2]
	if b.Kind != KindBegin || b.Track != TrackMain || b.Name != "parse" || b.Arg("doc") != "root" {
		t.Errorf("begin event: %+v", b)
	}
	if i.Kind != KindInstant || i.Arg("by") != "root" {
		t.Errorf("instant event: %+v", i)
	}
	if e.Kind != KindEnd || e.ID != b.ID || e.Arg("outcome") != "ok" {
		t.Errorf("end event: %+v", e)
	}
	if !e.At.Equal(b.At.Add(15 * time.Millisecond)) {
		t.Errorf("end at %v, want begin+15ms", e.At)
	}
}

func TestBlameSumsExactly(t *testing.T) {
	start := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	rec := &Recording{Start: start}
	now := start
	tr := New(clockAt(&now), rec)

	// A tiny synthetic load: 20ms CPU, overlapping fetches (one failing),
	// a backoff, a hold, a push, and idle gaps.
	tr.BeginAt(start, TrackMain, "parse-html").EndAt(start.Add(20 * time.Millisecond))
	tr.BeginAt(start.Add(5*time.Millisecond), TrackLoad, "fetch:a").
		EndAt(start.Add(60*time.Millisecond), Arg{Key: "outcome", Val: "ok"})
	tr.BeginAt(start.Add(10*time.Millisecond), TrackLoad, "fetch:b").
		EndAt(start.Add(40*time.Millisecond), Arg{Key: "outcome", Val: "timeout"})
	tr.BeginAt(start.Add(40*time.Millisecond), TrackLoad, "backoff:b").
		EndAt(start.Add(90 * time.Millisecond))
	tr.BeginAt(start.Add(30*time.Millisecond), TrackSched, "hold:c").
		EndAt(start.Add(120 * time.Millisecond))
	tr.BeginAt(start.Add(95*time.Millisecond), "conn:o#1", "push:d").
		EndAt(start.Add(110*time.Millisecond), Arg{Key: "outcome", Val: "ok"})
	tr.BeginAt(start.Add(130*time.Millisecond), TrackMain, "finalize").
		EndAt(start.Add(150 * time.Millisecond))

	plt := 150 * time.Millisecond
	rep := Blame(rec, plt)
	if rep.Sum() != plt {
		t.Fatalf("segments sum to %v, want exactly %v\n%s", rep.Sum(), plt, rep.Format())
	}
	seg := make(map[string]time.Duration)
	for _, s := range rep.Segments {
		seg[s.Name] = s.Dur
	}
	// Priority sweep over [0,150), highest class winning each slice:
	//   [0,20) cpu   [20,40) fault   [40,90) backoff   [90,95) hold
	//   [95,110) push   [110,120) hold   [120,130) idle   [130,150) cpu
	// fetch:a [5,60) is entirely shadowed by cpu/fault/backoff → net 0.
	want := map[string]time.Duration{
		SegCPUBusy:      40 * time.Millisecond,
		SegFaultStall:   20 * time.Millisecond,
		SegRetryBackoff: 50 * time.Millisecond,
		SegNetworkWait:  0,
		SegPushSaved:    15 * time.Millisecond,
		SegSchedHold:    15 * time.Millisecond,
		SegOtherIdle:    10 * time.Millisecond,
	}
	for name, w := range want {
		if seg[name] != w {
			t.Errorf("%s = %v, want %v\n%s", name, seg[name], w, rep.Format())
		}
	}
}

func TestBlameUnfinishedWindow(t *testing.T) {
	start := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	rec := &Recording{Start: start}
	tr := New(func() time.Time { return start }, rec)
	// A span left open (stalled stream) must be clamped to the window and
	// still produce an exact sum.
	tr.BeginAt(start.Add(10*time.Millisecond), TrackLoad, "fetch:x")
	rep := Blame(rec, 100*time.Millisecond)
	if rep.Sum() != 100*time.Millisecond {
		t.Fatalf("sum %v != 100ms", rep.Sum())
	}
	// Zero-PLT trace.
	rep = Blame(&Recording{Start: start}, 0)
	if rep.Sum() != 0 || rep.PLT != 0 {
		t.Fatalf("empty trace: %+v", rep)
	}
}

func TestCriticalPathWalk(t *testing.T) {
	start := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	rec := &Recording{Start: start}
	at := func(ms int) time.Time { return start.Add(time.Duration(ms) * time.Millisecond) }
	emit := func(name string, ms int, by string) {
		var args []Arg
		if by != "" {
			args = append(args, Arg{Key: "by", Val: by})
		}
		rec.Emit(Event{Kind: KindInstant, Track: TrackLoad, Name: name, At: at(ms), Args: args})
	}
	emit("discover:root", 0, "")
	emit("arrived:root", 50, "")
	emit("discover:app.js", 55, "root")
	emit("arrived:app.js", 120, "")
	emit("processed:root", 130, "")
	emit("discover:late.png", 125, "app.js")
	emit("arrived:late.png", 200, "")
	emit("processed:app.js", 140, "")
	emit("processed:late.png", 230, "")

	rep := Report{CriticalPath: criticalPath(rec, at(300))}
	want := []string{"root", "app.js", "late.png"}
	if len(rep.CriticalPath) != len(want) {
		t.Fatalf("path %v, want %v", rep.CriticalPath, want)
	}
	for i, n := range rep.CriticalPath {
		if n.URL != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, n.URL, want[i])
		}
	}
	if rep.CriticalPath[2].ProcessedAt != 230*time.Millisecond {
		t.Errorf("late.png processed at %v", rep.CriticalPath[2].ProcessedAt)
	}
}
