package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// traceEvent is one entry of the Chrome trace-event JSON format, the
// denominator understood by Perfetto and chrome://tracing.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Cat  string            `json:"cat,omitempty"`
	ID   string            `json:"id,omitempty"`
	S    string            `json:"s,omitempty"`
	Bp   string            `json:"bp,omitempty"`
	Args map[string]string `json:"args,omitempty"`
	// seq is the generation order (outer spans before inner), used only to
	// break ts ties so same-tid B/E sequences stay properly nested.
	seq int `json:"-"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePid = 1

// WritePerfetto renders a recording as Chrome trace-event JSON: one thread
// per track (main thread, load, sched, server, and one per simulated
// connection). Spans that nest cleanly within their track become B/E
// duration events; overlapping spans (concurrent h2 streams on one
// connection, parallel fetches on the load track) become async b/e pairs,
// which the trace viewers render on parallel sub-tracks. Events are written
// in non-decreasing ts order and every B has a matching E.
func WritePerfetto(w io.Writer, rec *Recording) error {
	start := rec.Start
	us := func(t time.Time) int64 { return t.Sub(start).Microseconds() }

	// Stable tid per track, in first-seen order; main first if present.
	tids := make(map[string]int)
	var trackOrder []string
	tid := func(track string) int {
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		trackOrder = append(trackOrder, track)
		return id
	}
	tid(TrackMain)

	end := deriveEnd(rec)
	spans := spanIntervalsWithArgs(rec, end)

	// Decide per span whether it nests cleanly in its track: process spans
	// sorted by (start asc, end desc) with a stack of open end-times.
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].from.Equal(spans[j].from) {
			return spans[i].from.Before(spans[j].from)
		}
		return spans[i].to.After(spans[j].to)
	})
	stacks := make(map[string][]time.Time)
	for i := range spans {
		sp := &spans[i]
		st := stacks[sp.track]
		for len(st) > 0 && !st[len(st)-1].After(sp.from) {
			st = st[:len(st)-1]
		}
		if len(st) == 0 || !sp.to.After(st[len(st)-1]) {
			sp.nested = true
			st = append(st, sp.to)
		}
		stacks[sp.track] = st
	}

	var evs []traceEvent
	for seq, sp := range spans {
		args := argMap(sp.beginArgs)
		endArgs := argMap(sp.endArgs)
		if sp.to.Equal(sp.from) {
			// Zero-duration span: an instant keeps B/E ordering trivial.
			for k, v := range endArgs {
				if args == nil {
					args = make(map[string]string)
				}
				args[k] = v
			}
			evs = append(evs, traceEvent{Name: sp.name, Ph: "i", Ts: us(sp.from),
				Pid: tracePid, Tid: tid(sp.track), S: "t", Args: args, seq: seq})
			continue
		}
		if sp.nested {
			evs = append(evs, traceEvent{Name: sp.name, Ph: "B", Ts: us(sp.from),
				Pid: tracePid, Tid: tid(sp.track), Args: args, seq: seq})
			evs = append(evs, traceEvent{Name: sp.name, Ph: "E", Ts: us(sp.to),
				Pid: tracePid, Tid: tid(sp.track), Args: endArgs, seq: seq})
			continue
		}
		id := fmt.Sprintf("0x%x", sp.id)
		evs = append(evs, traceEvent{Name: sp.name, Ph: "b", Ts: us(sp.from),
			Pid: tracePid, Tid: tid(sp.track), Cat: "vroom", ID: id, Args: args, seq: seq})
		evs = append(evs, traceEvent{Name: sp.name, Ph: "e", Ts: us(sp.to),
			Pid: tracePid, Tid: tid(sp.track), Cat: "vroom", ID: id, Args: endArgs, seq: seq})
	}
	for _, ev := range rec.Events {
		if ev.Kind != KindInstant {
			continue
		}
		evs = append(evs, traceEvent{Name: ev.Name, Ph: "i", Ts: us(ev.At),
			Pid: tracePid, Tid: tid(ev.Track), S: "t", Args: argMap(ev.Args)})
	}

	// Flow events stitch spans sharing a propagated ArgFlow value (one
	// client fetch and the server work it caused, see tracecontext.go): the
	// earliest span anchors an "s" start, every later one an "f" finish
	// bound to its enclosing slice (bp "e"). Flow IDs seen on only one span
	// — the other side wasn't traced or wasn't merged in — emit nothing, so
	// the file never carries a dangling flow start.
	flows := make(map[string][]int)
	var flowOrder []string
	for i := range spans {
		f := ""
		for _, a := range spans[i].beginArgs {
			if a.Key == ArgFlow {
				f = a.Val
				break
			}
		}
		if f == "" {
			continue
		}
		if len(flows[f]) == 0 {
			flowOrder = append(flowOrder, f)
		}
		flows[f] = append(flows[f], i)
	}
	for _, f := range flowOrder {
		idxs := flows[f]
		if len(idxs) < 2 {
			continue
		}
		for k, i := range idxs {
			sp := spans[i]
			ev := traceEvent{Name: "flow", Ts: us(sp.from), Pid: tracePid,
				Tid: tid(sp.track), Cat: "vroom-flow", ID: f, seq: i}
			if k == 0 {
				ev.Ph = "s"
			} else {
				ev.Ph = "f"
				ev.Bp = "e"
			}
			evs = append(evs, ev)
		}
	}

	// Global ts order. Ties: closes before opens; among closes the
	// inner span (later seq) first, among opens the outer span (earlier
	// seq) first — keeping same-tid B/E sequences properly nested.
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		ra, rb := phRank(a.Ph), phRank(b.Ph)
		if ra != rb {
			return ra < rb
		}
		if ra == 0 { // both closes: inner first
			return a.seq > b.seq
		}
		return a.seq < b.seq // both opens (or instants): outer first
	})

	out := traceFile{DisplayTimeUnit: "ms"}
	for _, track := range trackOrder {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tids[track],
			Args: map[string]string{"name": track},
		})
	}
	out.TraceEvents = append(out.TraceEvents, evs...)
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func phRank(ph string) int {
	switch ph {
	case "E", "e":
		return 0
	case "i":
		return 1
	case "s":
		return 3 // flow start: after the B it anchors to
	case "f":
		return 4 // flow finish: after its own B, and after any same-ts "s"
	default: // B, b
		return 2
	}
}

func argMap(args []Arg) map[string]string {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]string, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// argSpan extends spanInterval with the raw args of both endpoints.
type argSpan struct {
	track, name string
	id          uint64
	from, to    time.Time
	beginArgs   []Arg
	endArgs     []Arg
	nested      bool
}

// spanIntervalsWithArgs pairs Begin/End events keeping their args.
// Unmatched begins close at the trace end.
func spanIntervalsWithArgs(rec *Recording, end time.Time) []argSpan {
	open := make(map[uint64]Event)
	var out []argSpan
	for _, ev := range rec.Events {
		switch ev.Kind {
		case KindBegin:
			open[ev.ID] = ev
		case KindEnd:
			b, ok := open[ev.ID]
			if !ok {
				continue
			}
			delete(open, ev.ID)
			out = append(out, argSpan{track: b.Track, name: b.Name, id: b.ID,
				from: b.At, to: ev.At, beginArgs: b.Args, endArgs: ev.Args})
		}
	}
	for _, b := range open {
		to := end
		if to.Before(b.At) {
			to = b.At
		}
		out = append(out, argSpan{track: b.Track, name: b.Name, id: b.ID,
			from: b.At, to: to, beginArgs: b.Args})
	}
	return out
}
