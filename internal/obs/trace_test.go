package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{Trace: 0xdeadbeefcafef00d, Span: 42}
	s := tc.String()
	if len(s) != 33 || s[16] != '-' {
		t.Fatalf("wire form %q not 16-hex '-' 16-hex", s)
	}
	got, ok := ParseTraceHeader(s)
	if !ok || got != tc {
		t.Fatalf("ParseTraceHeader(%q) = %+v, %v; want %+v", s, got, ok, tc)
	}
	if tc.TraceID() != fmt.Sprintf("%016x", uint64(0xdeadbeefcafef00d)) {
		t.Errorf("TraceID() = %q", tc.TraceID())
	}
	if !tc.Valid() || (TraceContext{}).Valid() {
		t.Error("Valid() misreports")
	}
}

func TestParseTraceHeaderRejectsMalformed(t *testing.T) {
	good := TraceContext{Trace: 0xabc1, Span: 2}.String()
	bad := []string{
		"",
		"nonsense",
		good[:32],                             // too short
		good + "0",                            // too long
		strings.Replace(good, "-", "_", 1),    // wrong separator
		strings.ToUpper(good),                 // uppercase hex is rejected (strict form)
		"000000000000000g-0000000000000002",   // non-hex digit
		"0000000000000000-0000000000000002",   // zero trace ID
		good[:10] + " " + good[11:],           // embedded space
	}
	for _, v := range bad {
		if _, ok := ParseTraceHeader(v); ok {
			t.Errorf("ParseTraceHeader(%q) accepted, want reject", v)
		}
	}
}

func TestNewTraceIDDistinctAndNonzero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned 0")
		}
		if seen[id] {
			t.Fatalf("NewTraceID repeated %016x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestForkSharesIDsAndTees(t *testing.T) {
	main := &Recording{}
	extra := &Recording{}
	tr := NewWall(main)
	forked := tr.Fork(extra)

	a := tr.Begin(TrackLoad, "a")
	b := forked.Begin(TrackLoad, "b")
	b.End()
	a.End()

	if a.ID() == b.ID() || a.ID() == 0 || b.ID() == 0 {
		t.Fatalf("span IDs not unique across fork: a=%d b=%d", a.ID(), b.ID())
	}
	// The fork tees: its events land in both recordings; the parent's only
	// in the main one.
	if main.Len() != 4 {
		t.Errorf("main recording has %d events, want 4", main.Len())
	}
	if extra.Len() != 2 {
		t.Errorf("extra recording has %d events, want 2", extra.Len())
	}
	var nilTr *Tracer
	if nilTr.Fork(extra) != nil {
		t.Error("forking a nil tracer must stay nil")
	}
}

func TestFlightRecorderWrapAndDropCount(t *testing.T) {
	fr := NewFlightRecorder(4)
	base := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		fr.Emit(Event{Kind: KindInstant, Track: "load", Name: fmt.Sprintf("e%d", i),
			At: base.Add(time.Duration(i) * time.Millisecond)})
	}
	events, dropped := fr.Snapshot()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want ring size 4", len(events))
	}
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	// The ring keeps the newest events, sorted by time.
	for i, ev := range events {
		want := fmt.Sprintf("e%d", 6+i)
		if ev.Name != want {
			t.Errorf("event %d = %s, want %s", i, ev.Name, want)
		}
	}

	// Per-track isolation: a chatty track must not evict a sparse one.
	fr2 := NewFlightRecorder(4)
	fr2.Emit(Event{Kind: KindInstant, Track: "load", Name: "precious", At: base})
	for i := 0; i < 100; i++ {
		fr2.Emit(Event{Kind: KindInstant, Track: "conn:x", Name: "chatter",
			At: base.Add(time.Duration(i+1) * time.Millisecond)})
	}
	events, _ = fr2.Snapshot()
	found := false
	for _, ev := range events {
		found = found || ev.Name == "precious"
	}
	if !found {
		t.Error("sparse track's event evicted by another track's chatter")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(64)
	base := time.Now()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			track := fmt.Sprintf("t%d", g%4)
			for i := 0; i < 2000; i++ {
				fr.Emit(Event{Kind: KindInstant, Track: track, Name: "e",
					At: base.Add(time.Duration(i))})
			}
		}(g)
	}
	// Snapshot while emitters run: must not race or tear.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				fr.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	events, dropped := fr.Snapshot()
	if len(events) != 4*64 {
		t.Errorf("retained %d events, want 256 (4 full rings)", len(events))
	}
	// 16000 emitted, 256 retained.
	if dropped != 16000-256 {
		t.Errorf("dropped = %d, want %d", dropped, 16000-256)
	}
}

func TestEventsRoundTrip(t *testing.T) {
	start := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	rec := &Recording{Start: start}
	now := start
	tr := New(clockAt(&now), rec)
	sp := tr.Begin(TrackLoad, "fetch", Arg{Key: ArgFlow, Val: "abc-def"})
	now = now.Add(3 * time.Millisecond)
	tr.Instant(TrackServer, "request-shed")
	sp.End(Arg{Key: "status", Val: "200"})

	var buf bytes.Buffer
	if err := WriteEvents(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(rec.Start) {
		t.Errorf("start %v, want %v", got.Start, rec.Start)
	}
	if len(got.Events) != len(rec.Events) {
		t.Fatalf("%d events, want %d", len(got.Events), len(rec.Events))
	}
	for i := range rec.Events {
		w, g := rec.Events[i], got.Events[i]
		if g.Kind != w.Kind || g.Track != w.Track || g.Name != w.Name ||
			g.ID != w.ID || !g.At.Equal(w.At) || g.Arg(ArgFlow) != w.Arg(ArgFlow) {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, g, w)
		}
	}

	// Unknown version and unknown kind must error, not mis-parse.
	if _, err := ReadEvents(strings.NewReader(`{"version":"vroom-events/v9","events":[]}`)); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := ReadEvents(strings.NewReader(
		`{"version":"vroom-events/v1","events":[{"kind":"X","track":"t","name":"n","at_ns":1}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMergeRemapsSpanIDs(t *testing.T) {
	start := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	mk := func(track string, offset time.Duration) *Recording {
		rec := &Recording{Start: start}
		now := start.Add(offset)
		tr := New(clockAt(&now), rec)
		sp := tr.Begin(track, "work")
		now = now.Add(time.Millisecond)
		sp.End()
		return rec
	}
	a := mk("client", 0)
	b := mk("server", 500*time.Microsecond)
	// Both tracers number spans from 1; merging raw would cross-pair.
	if a.Events[0].ID != b.Events[0].ID {
		t.Fatal("test premise broken: IDs should collide before merge")
	}
	m := Merge(a, b, nil)
	if len(m.Events) != 4 {
		t.Fatalf("merged %d events, want 4", len(m.Events))
	}
	ids := make(map[uint64]int)
	for _, ev := range m.Events {
		ids[ev.ID]++
	}
	if len(ids) != 2 {
		t.Fatalf("merged IDs %v, want 2 distinct spans", ids)
	}
	for id, n := range ids {
		if n != 2 {
			t.Errorf("span %d has %d events, want B+E", id, n)
		}
	}
	// Stable time sort: the server's begin lands between the client's B/E.
	if m.Events[1].Track != "server" {
		t.Errorf("event order by time broken: %+v", m.Events)
	}
	if !m.Start.Equal(start) {
		t.Errorf("merged start %v, want earliest %v", m.Start, start)
	}
}

func TestPrefixTracksAndFlowJoinCount(t *testing.T) {
	start := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	client := &Recording{Start: start}
	now := start
	ctr := New(clockAt(&now), client)
	flow := TraceContext{Trace: 7, Span: 1}.String()
	csp := ctr.Begin(TrackLoad, "fetch", Arg{Key: ArgFlow, Val: flow})

	server := &Recording{Start: start}
	now2 := start.Add(time.Millisecond)
	strr := New(clockAt(&now2), server)
	ssp := strr.Begin(TrackServer, "serve", Arg{Key: ArgFlow, Val: flow})
	ssp.End()
	now = now.Add(3 * time.Millisecond)
	csp.End()

	pref := PrefixTracks(server, "srv:")
	if pref.Events[0].Track != "srv:"+TrackServer {
		t.Fatalf("prefixed track %q", pref.Events[0].Track)
	}
	if server.Events[0].Track != TrackServer {
		t.Fatal("PrefixTracks mutated its input")
	}
	m := Merge(client, pref)
	if n := FlowJoinCount(m); n != 1 {
		t.Errorf("FlowJoinCount = %d, want 1", n)
	}
	// A flow confined to one track does not count as a join.
	if n := FlowJoinCount(client); n != 0 {
		t.Errorf("single-track FlowJoinCount = %d, want 0", n)
	}
}

// TestPerfettoFlowEvents pins the flow-event emission contract: spans
// sharing an ArgFlow across tracks are linked s->f, a flow on a single
// span emits nothing (no dangling starts), and the output passes
// CheckPerfetto's flow validation.
func TestPerfettoFlowEvents(t *testing.T) {
	start := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	rec := &Recording{Start: start}
	now := start
	tr := New(clockAt(&now), rec)
	flow := TraceContext{Trace: 9, Span: 3}.String()

	a := tr.Begin("load", "fetch", Arg{Key: ArgFlow, Val: flow})
	now = now.Add(time.Millisecond)
	b := tr.Begin("srv:server", "serve", Arg{Key: ArgFlow, Val: flow})
	now = now.Add(time.Millisecond)
	b.End()
	now = now.Add(time.Millisecond)
	a.End()
	// A second flow with only one span: must emit no flow events at all.
	lone := tr.Begin("load", "fetch", Arg{Key: ArgFlow, Val: TraceContext{Trace: 9, Span: 4}.String()})
	lone.End()

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, rec); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, `"ph":"s"`); got != 1 {
		t.Errorf("%d flow starts, want 1\n%s", got, out)
	}
	if got := strings.Count(out, `"ph":"f"`); got != 1 {
		t.Errorf("%d flow finishes, want 1", got)
	}
	if !strings.Contains(out, `"bp":"e"`) {
		t.Error("flow finish lacks bp:e binding")
	}
	if err := CheckPerfetto(buf.Bytes()); err != nil {
		t.Fatalf("flow-bearing trace fails validation: %v", err)
	}
}

// TestCheckPerfettoFlowValidation pins the new checks: a finish without a
// start, a dangling start, and a duplicate start must all be rejected.
func TestCheckPerfettoFlowValidation(t *testing.T) {
	head := `{"traceEvents":[`
	tail := `],"displayTimeUnit":"ms"}`
	cases := map[string]string{
		"finish-without-start": `{"name":"flow","ph":"f","bp":"e","ts":1,"pid":1,"tid":1,"cat":"vroom-flow","id":"x"}`,
		"dangling-start":       `{"name":"flow","ph":"s","ts":1,"pid":1,"tid":1,"cat":"vroom-flow","id":"x"}`,
		"duplicate-start": `{"name":"flow","ph":"s","ts":1,"pid":1,"tid":1,"cat":"vroom-flow","id":"x"},` +
			`{"name":"flow","ph":"s","ts":2,"pid":1,"tid":1,"cat":"vroom-flow","id":"x"},` +
			`{"name":"flow","ph":"f","bp":"e","ts":3,"pid":1,"tid":1,"cat":"vroom-flow","id":"x"}`,
	}
	for name, body := range cases {
		if err := CheckPerfetto([]byte(head + body + tail)); err == nil {
			t.Errorf("%s accepted, want reject", name)
		}
	}
}
