package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Cross-process trace propagation. A loading client mints one trace ID per
// page load and one span ID per fetch (the fetch span's own event ID), and
// sends both to the server in the TraceHeader request header. The server
// adopts the pair: every span and instant it emits for that request carries
// the caller's context in ArgFlow/ArgTrace args, so a client recording and
// a server recording merged by Merge can be stitched back into one causal
// timeline by WritePerfetto's flow events.

// TraceHeader is the request header that carries the trace context, on h1
// and h2 alike. The value is TraceContext.String():
// "<trace-16hex>-<span-16hex>".
const TraceHeader = "vroom-trace"

// Event arg keys used to stitch recordings together.
const (
	// ArgFlow holds a TraceContext string identifying one client fetch.
	// WritePerfetto links every span sharing a flow value with Chrome
	// flow events (ph "s"/"f").
	ArgFlow = "flow"
	// ArgTrace holds the 16-hex per-load trace ID shared by every fetch
	// of one page load.
	ArgTrace = "trace"
)

// TraceContext is a propagated (trace ID, span ID) pair. The zero value —
// Trace == 0 — means "no context".
type TraceContext struct {
	Trace uint64 // per-load trace ID
	Span  uint64 // per-fetch span ID (the client fetch span's event ID)
}

// Valid reports whether the context carries a real trace ID.
func (tc TraceContext) Valid() bool { return tc.Trace != 0 }

// String renders the wire form, "<trace-16hex>-<span-16hex>" — also used
// verbatim as the ArgFlow value.
func (tc TraceContext) String() string {
	return fmt.Sprintf("%016x-%016x", tc.Trace, tc.Span)
}

// TraceID renders just the trace half for ArgTrace args and log lines.
func (tc TraceContext) TraceID() string { return fmt.Sprintf("%016x", tc.Trace) }

// ParseTraceHeader parses a TraceHeader value. ok is false for anything
// but two dash-separated 16-digit lowercase-hex halves with a nonzero
// trace ID — malformed headers are ignored, never an error, because trace
// context is advisory.
func ParseTraceHeader(v string) (tc TraceContext, ok bool) {
	if len(v) != 33 || v[16] != '-' {
		return TraceContext{}, false
	}
	trace, ok1 := parseHex16(v[:16])
	span, ok2 := parseHex16(v[17:])
	if !ok1 || !ok2 || trace == 0 {
		return TraceContext{}, false
	}
	return TraceContext{Trace: trace, Span: span}, true
}

func parseHex16(s string) (uint64, bool) {
	var x uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			x = x<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			x = x<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return x, true
}

// traceIDState seeds trace IDs with the process start time so concurrent
// processes (a storm of vroom-load workers against one server) almost
// never collide, then strides per mint.
var traceIDState atomic.Uint64

func init() { traceIDState.Store(uint64(time.Now().UnixNano())) }

// NewTraceID mints a process-unique, never-zero trace ID: a splitmix64
// finalizer over a strided counter, so IDs from one process are distinct
// and IDs across processes are spread over the full 64-bit space.
func NewTraceID() uint64 {
	x := traceIDState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}
