// Package overload implements the admission-control plane a hint-serving
// replay server needs to degrade gracefully instead of stalling clients
// when request pressure exceeds capacity: a bounded-concurrency gate with a
// LIFO load-shedding wait queue, and a degradation ladder derived from the
// gate's occupancy that sheds optional work (push first, then hints) long
// before the response itself is at risk.
//
// LIFO queueing is deliberate: under sustained overload a FIFO queue serves
// exactly the requests whose clients have already timed out, turning every
// slot into wasted work. Serving the newest waiter first keeps tail latency
// flat for the requests that still have a live client, and the oldest
// waiter — the one most likely to be abandoned — is the one shed when the
// queue overflows.
package overload

import (
	"errors"
	"log/slog"
	"sync"
	"time"
)

// Level is a rung on the degradation ladder. Higher levels shed more
// optional work; the response body itself is never shed by the ladder (a
// request is only rejected outright by admission when the wait queue
// overflows or the client's deadline cannot be met).
type Level int

// Ladder rungs, in increasing severity.
const (
	// LevelNormal serves full service: hints and push.
	LevelNormal Level = iota
	// LevelShedPush drops server push (speculative bytes first).
	LevelShedPush
	// LevelShedHints drops dependency hints too; only the response remains.
	LevelShedHints
)

func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelShedPush:
		return "shed-push"
	case LevelShedHints:
		return "shed-hints"
	}
	return "unknown"
}

// ErrShed reports a request rejected by admission control: either the LIFO
// queue overflowed onto it or its deadline expired while it waited. Callers
// answer with a fast retryable error (503), never by hanging.
var ErrShed = errors.New("overload: request shed")

// ErrDraining reports a gate that is no longer admitting work.
var ErrDraining = errors.New("overload: gate draining")

// Config sizes a Gate. The zero value of any field selects its default.
type Config struct {
	// MaxConcurrent bounds requests inside the gate at once (default 64).
	MaxConcurrent int
	// MaxQueue bounds waiting requests; an arrival beyond it sheds the
	// oldest waiter (default 2*MaxConcurrent).
	MaxQueue int
	// MaxWait bounds one request's time in the queue when it carries no
	// deadline of its own (default 1s).
	MaxWait time.Duration
	// Log, when non-nil, receives structured gate events: individual sheds
	// at Debug, drain at Info.
	Log *slog.Logger
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return 64
}

func (c Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 2 * c.maxConcurrent()
}

func (c Config) maxWait() time.Duration {
	if c.MaxWait > 0 {
		return c.MaxWait
	}
	return time.Second
}

// waiter is one queued request. The slot channel hands it admission; shed
// hands it rejection. Both are buffered so the granter never blocks.
type waiter struct {
	slot chan struct{}
	shed chan struct{}
}

// Gate is the admission controller. A nil *Gate admits everything at
// LevelNormal, so call sites need no guards.
type Gate struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	queue    []*waiter // stack: newest at the tail
	draining bool

	shedTotal  int64
	admitTotal int64
	peakQueue  int
}

// NewGate returns a gate sized by cfg.
func NewGate(cfg Config) *Gate { return &Gate{cfg: cfg} }

// Acquire admits the caller, queueing LIFO when the gate is full. deadline
// zero means "no client deadline": the configured MaxWait applies. It
// returns ErrShed when the queue overflowed onto this request or the wait
// exceeded the deadline, and ErrDraining after Drain. On nil error the
// caller must Release exactly once.
func (g *Gate) Acquire(deadline time.Time) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return ErrDraining
	}
	if g.inflight < g.cfg.maxConcurrent() {
		g.inflight++
		g.admitTotal++
		g.mu.Unlock()
		return nil
	}
	// Full: queue LIFO. Overflow sheds the oldest waiter (queue head), the
	// request most likely to have lost its client already.
	var victim *waiter
	if len(g.queue) >= g.cfg.maxQueue() {
		victim = g.queue[0]
		copy(g.queue, g.queue[1:])
		g.queue = g.queue[:len(g.queue)-1]
	}
	w := &waiter{slot: make(chan struct{}, 1), shed: make(chan struct{}, 1)}
	g.queue = append(g.queue, w)
	if len(g.queue) > g.peakQueue {
		g.peakQueue = len(g.queue)
	}
	g.mu.Unlock()
	if victim != nil {
		victim.shed <- struct{}{}
	}

	wait := g.cfg.maxWait()
	if !deadline.IsZero() {
		if d := time.Until(deadline); d < wait {
			wait = d
		}
	}
	if wait <= 0 {
		g.abandon(w)
		return ErrShed
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-w.slot:
		return nil
	case <-w.shed:
		g.noteShed()
		return ErrShed
	case <-t.C:
		g.abandon(w)
		return ErrShed
	}
}

// abandon removes w from the queue after a timeout, unless a grant or shed
// raced the timer (then it honors the grant by re-releasing the slot).
func (g *Gate) abandon(w *waiter) {
	g.mu.Lock()
	for i := len(g.queue) - 1; i >= 0; i-- {
		if g.queue[i] == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			g.shedTotal++
			g.mu.Unlock()
			if g.cfg.Log != nil {
				g.cfg.Log.Debug("request shed", "reason", "wait-expired")
			}
			return
		}
	}
	g.mu.Unlock()
	// Not queued anymore: a grant or shed already landed in a buffered
	// channel. A granted slot must go back or it leaks.
	select {
	case <-w.slot:
		g.Release()
	default:
		g.noteShed()
	}
}

func (g *Gate) noteShed() {
	g.mu.Lock()
	g.shedTotal++
	g.mu.Unlock()
	if g.cfg.Log != nil {
		g.cfg.Log.Debug("request shed", "reason", "queue-overflow")
	}
}

// Release returns an admitted request's slot, handing it to the newest
// waiter if any.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if n := len(g.queue); n > 0 {
		w := g.queue[n-1]
		g.queue = g.queue[:n-1]
		g.admitTotal++
		g.mu.Unlock()
		w.slot <- struct{}{}
		return
	}
	g.inflight--
	g.mu.Unlock()
}

// Level maps the gate's occupancy onto the degradation ladder: any queueing
// sheds push; a queue at half capacity sheds hints too. A nil gate is
// always LevelNormal.
func (g *Gate) Level() Level {
	if g == nil {
		return LevelNormal
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case len(g.queue)*2 >= g.cfg.maxQueue():
		return LevelShedHints
	case len(g.queue) > 0 || g.inflight >= g.cfg.maxConcurrent():
		return LevelShedPush
	default:
		return LevelNormal
	}
}

// Saturated reports whether the gate would queue or shed a new arrival —
// the transport layer uses it to refuse streams cheaply before a handler
// goroutine exists.
func (g *Gate) Saturated() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining || len(g.queue) >= g.cfg.maxQueue()
}

// Drain stops admission: queued waiters are shed immediately, future
// Acquire calls fail with ErrDraining, and in-flight requests finish
// normally (their Release still runs).
func (g *Gate) Drain() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.draining = true
	queued := g.queue
	g.queue = nil
	g.shedTotal += int64(len(queued))
	g.mu.Unlock()
	for _, w := range queued {
		w.shed <- struct{}{}
	}
	if g.cfg.Log != nil {
		g.cfg.Log.Info("gate draining", "shed_waiters", len(queued))
	}
}

// Snapshot is a point-in-time view of the gate for health endpoints and
// tests.
type Snapshot struct {
	Inflight  int
	Queued    int
	PeakQueue int
	Admitted  int64
	Shed      int64
	Draining  bool
	Level     Level
}

// Stats returns the gate's current snapshot.
func (g *Gate) Stats() Snapshot {
	if g == nil {
		return Snapshot{}
	}
	level := g.Level()
	g.mu.Lock()
	defer g.mu.Unlock()
	return Snapshot{
		Inflight:  g.inflight,
		Queued:    len(g.queue),
		PeakQueue: g.peakQueue,
		Admitted:  g.admitTotal,
		Shed:      g.shedTotal,
		Draining:  g.draining,
		Level:     level,
	}
}
