package overload

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGateExpiredDeadlineAtEnqueue pins the path where the caller's deadline
// has already passed when Acquire runs on a full gate: the request must shed
// immediately (no MaxWait sleep), be counted, and leave no residue in the
// queue.
func TestGateExpiredDeadlineAtEnqueue(t *testing.T) {
	g := NewGate(Config{MaxConcurrent: 1, MaxQueue: 4, MaxWait: time.Minute})
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := g.Acquire(time.Now().Add(-time.Millisecond)); !errors.Is(err, ErrShed) {
			t.Fatalf("expired acquire %d: %v, want ErrShed", i, err)
		}
		if el := time.Since(start); el > time.Second {
			t.Fatalf("expired acquire %d waited %v; must not sleep toward MaxWait", i, el)
		}
	}
	st := g.Stats()
	if st.Queued != 0 {
		t.Fatalf("expired waiters left %d queue entries behind", st.Queued)
	}
	if st.Shed != 3 {
		t.Fatalf("shed count = %d, want 3", st.Shed)
	}

	// The slot still works: release it and the next acquire admits.
	g.Release()
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	g.Release()
}

// TestGateExpiredDeadlineDoesNotLeakGrantedSlot races expired-at-enqueue
// acquires against Release: a grant can land in the waiter's buffered slot
// channel in the window between enqueue and abandon, and abandon must hand
// it back rather than leak it. After the storm, the gate must still admit a
// full MaxConcurrent set.
func TestGateExpiredDeadlineDoesNotLeakGrantedSlot(t *testing.T) {
	const limit = 4
	g := NewGate(Config{MaxConcurrent: limit, MaxQueue: 8, MaxWait: time.Minute})

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := g.Acquire(time.Now().Add(-time.Nanosecond)); err == nil {
					// An expired deadline may still be admitted when the gate
					// has a free slot (no queueing, no wait): release it.
					g.Release()
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := g.Acquire(time.Time{}); err == nil {
					g.Release()
				}
			}
		}()
	}
	wg.Wait()

	st := g.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("storm left inflight=%d queued=%d", st.Inflight, st.Queued)
	}
	// Every slot must still exist: a leak would block the limit-th acquire.
	done := make(chan struct{})
	go func() {
		for i := 0; i < limit; i++ {
			if err := g.Acquire(time.Time{}); err != nil {
				t.Errorf("post-storm acquire %d: %v", i, err)
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-storm acquires blocked: a slot leaked")
	}
}

// TestGateExpiredDeadlineStillShedsOverflowVictim: an expired arrival on a
// full queue still displaces the oldest waiter before abandoning itself —
// both must observe ErrShed, and the queue must stay bounded.
func TestGateExpiredDeadlineStillShedsOverflowVictim(t *testing.T) {
	g := NewGate(Config{MaxConcurrent: 1, MaxQueue: 1, MaxWait: time.Minute})
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	victim := make(chan error, 1)
	go func() { victim <- g.Acquire(time.Time{}) }()
	for g.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}

	if err := g.Acquire(time.Now().Add(-time.Second)); !errors.Is(err, ErrShed) {
		t.Fatalf("expired overflow arrival: %v, want ErrShed", err)
	}
	select {
	case err := <-victim:
		if !errors.Is(err, ErrShed) {
			t.Fatalf("displaced oldest waiter got %v, want ErrShed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("displaced waiter never shed")
	}
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("queue holds %d entries after both sheds", st.Queued)
	}
	g.Release()
}
