package overload

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatalf("nil gate refused admission: %v", err)
	}
	g.Release()
	if l := g.Level(); l != LevelNormal {
		t.Fatalf("nil gate level = %v", l)
	}
	if g.Saturated() {
		t.Fatal("nil gate reports saturated")
	}
}

func TestGateAdmitsUpToLimit(t *testing.T) {
	g := NewGate(Config{MaxConcurrent: 3, MaxQueue: 2, MaxWait: 10 * time.Millisecond})
	for i := 0; i < 3; i++ {
		if err := g.Acquire(time.Time{}); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if l := g.Level(); l != LevelShedPush {
		t.Fatalf("full gate level = %v, want shed-push", l)
	}
	// A fourth acquire must wait and then time out.
	start := time.Now()
	err := g.Acquire(time.Time{})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("over-limit acquire: err = %v, want ErrShed", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("over-limit acquire returned without waiting")
	}
	for i := 0; i < 3; i++ {
		g.Release()
	}
	st := g.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("after release: %+v", st)
	}
	if st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
}

func TestGateHandsSlotToNewestWaiter(t *testing.T) {
	g := NewGate(Config{MaxConcurrent: 1, MaxQueue: 4, MaxWait: time.Second})
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	type res struct {
		id  int
		err error
	}
	results := make(chan res, 2)
	admitted := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		id := i
		go func() {
			defer wg.Done()
			err := g.Acquire(time.Time{})
			if err == nil {
				admitted <- id
			}
			results <- res{id, err}
		}()
		time.Sleep(20 * time.Millisecond) // order the waiters: 0 queues first
	}
	g.Release() // should admit waiter 1 (newest), not waiter 0
	first := <-admitted
	if first != 1 {
		t.Errorf("LIFO violated: waiter %d admitted first", first)
	}
	g.Release() // admits waiter 0
	g.Release()
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Errorf("waiter %d: %v", r.id, r.err)
		}
	}
}

func TestGateOverflowShedsOldestWaiter(t *testing.T) {
	g := NewGate(Config{MaxConcurrent: 1, MaxQueue: 1, MaxWait: time.Second})
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	oldest := make(chan error, 1)
	go func() { oldest <- g.Acquire(time.Time{}) }()
	for {
		if g.Stats().Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Queue is full: the next arrival sheds the oldest waiter and takes its
	// place.
	newest := make(chan error, 1)
	go func() { newest <- g.Acquire(time.Time{}) }()
	if err := <-oldest; !errors.Is(err, ErrShed) {
		t.Fatalf("oldest waiter: err = %v, want ErrShed", err)
	}
	if !g.Saturated() {
		t.Error("full queue not reported saturated")
	}
	g.Release()
	if err := <-newest; err != nil {
		t.Fatalf("newest waiter: %v", err)
	}
	g.Release()
}

func TestGateHonorsDeadline(t *testing.T) {
	g := NewGate(Config{MaxConcurrent: 1, MaxQueue: 2, MaxWait: time.Minute})
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.Acquire(time.Now().Add(15 * time.Millisecond))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("deadline wait took %v", el)
	}
	// An already-expired deadline sheds immediately.
	if err := g.Acquire(time.Now().Add(-time.Second)); !errors.Is(err, ErrShed) {
		t.Fatalf("expired deadline: err = %v, want ErrShed", err)
	}
	g.Release()
}

func TestGateDrainShedsQueueAndRefuses(t *testing.T) {
	g := NewGate(Config{MaxConcurrent: 1, MaxQueue: 4, MaxWait: time.Minute})
	if err := g.Acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- g.Acquire(time.Time{}) }()
	for g.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	g.Drain()
	if err := <-queued; !errors.Is(err, ErrShed) {
		t.Fatalf("queued waiter after drain: %v, want ErrShed", err)
	}
	if err := g.Acquire(time.Time{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire after drain: %v, want ErrDraining", err)
	}
	g.Release() // the in-flight request still releases cleanly
	if st := g.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight after release = %d", st.Inflight)
	}
}

// TestGateHammer drives the gate from many goroutines under the race
// detector: the concurrency bound must hold at every instant and every
// admitted request must release.
func TestGateHammer(t *testing.T) {
	const workers = 64
	const limit = 8
	g := NewGate(Config{MaxConcurrent: limit, MaxQueue: 16, MaxWait: 50 * time.Millisecond})
	var inside atomic.Int64
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := g.Acquire(time.Time{}); err != nil {
					shed.Add(1)
					continue
				}
				if n := inside.Add(1); n > limit {
					t.Errorf("concurrency bound violated: %d inside", n)
				}
				admitted.Add(1)
				time.Sleep(time.Microsecond)
				inside.Add(-1)
				g.Release()
			}
		}()
	}
	wg.Wait()
	st := g.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("gate not empty after hammer: %+v", st)
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	t.Logf("admitted=%d shed=%d peak-queue=%d", admitted.Load(), shed.Load(), st.PeakQueue)
}
