// Package polaris implements the client-side baseline the paper compares
// against (§6.1, Fig. 14): a Polaris-style scheduler that receives a
// fine-grained dependency graph of the page — computed offline from a prior
// load — at the start of the load, and uses it to fetch known descendants of
// a resource as soon as that resource arrives, without waiting to evaluate
// it, prioritizing the longest dependency chains.
//
// It is an end-to-end, client-only design: no server push, no dependency
// hints, and the graph is necessarily stale — resources that changed since
// the graph was captured are discovered the normal way (fetch, evaluate,
// fetch), and stale graph entries waste bandwidth.
package polaris

import (
	"sort"
	"time"

	"vroom/internal/browser"
	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// Graph is a page dependency graph: parent URL -> children in processing
// order, plus each node's chain depth (longest path to a leaf).
type Graph struct {
	Children map[string][]urlutil.URL
	Depth    map[string]int
}

// BuildGraph captures the dependency graph from a snapshot the way
// Polaris's offline measurement phase would: by loading the page and
// recording which resource's evaluation triggered which fetch.
func BuildGraph(sn *webpage.Snapshot) *Graph {
	g := &Graph{Children: make(map[string][]urlutil.URL), Depth: make(map[string]int)}
	var walk func(res *webpage.Resource) int
	visited := make(map[string]bool)
	walk = func(res *webpage.Resource) int {
		key := res.URL.String()
		if visited[key] {
			return g.Depth[key]
		}
		visited[key] = true
		depth := 0
		for _, d := range webpage.ExtractRefs(res) {
			g.Children[key] = append(g.Children[key], d.URL)
			child, ok := sn.LookupString(d.URL.String())
			if !ok {
				continue
			}
			cd := 0
			if child.Type.NeedsProcessing() {
				cd = walk(child)
			}
			if cd+1 > depth {
				depth = cd + 1
			}
		}
		g.Depth[key] = depth
		return depth
	}
	if root := sn.RootResource(); root != nil {
		walk(root)
	}
	return g
}

// TrainGraph builds the graph from a load one interval before now, matching
// how the paper trains Vroom's offline state (prior loads of the page).
func TrainGraph(site *webpage.Site, now time.Time, profile webpage.Profile, interval time.Duration) *Graph {
	at := now.Add(-interval)
	sn := site.Snapshot(at, profile, uint64(at.UnixNano()))
	return BuildGraph(sn)
}

// Scheduler is the Polaris client scheduler. It implements
// browser.Scheduler.
type Scheduler struct {
	G *Graph
	// prefetched remembers graph-driven fetches already issued.
	prefetched map[string]bool
}

// New returns a Polaris scheduler over a trained graph.
func New(g *Graph) *Scheduler {
	return &Scheduler{G: g, prefetched: make(map[string]bool)}
}

// Name implements browser.Scheduler.
func (s *Scheduler) Name() string { return "polaris" }

// Start implements browser.Scheduler.
func (s *Scheduler) Start(*browser.Load) {}

// OnHint implements browser.Scheduler: Polaris predates dependency hints
// and ignores them.
func (s *Scheduler) OnHint(*browser.Load, *browser.Entry, hints.Hint) {}

// OnRequired implements browser.Scheduler: real needs are fetched at once.
func (s *Scheduler) OnRequired(l *browser.Load, e *browser.Entry) { l.FetchNow(e) }

// OnArrived implements browser.Scheduler: when a resource arrives, its
// graph-known children are fetched immediately — evaluation is not on the
// fetch path for resources the graph covers. Children are issued deepest
// chain first, Polaris's prioritization.
func (s *Scheduler) OnArrived(l *browser.Load, e *browser.Entry) {
	children := s.G.Children[e.URL.String()]
	if len(children) == 0 {
		return
	}
	ordered := make([]urlutil.URL, len(children))
	copy(ordered, children)
	sort.SliceStable(ordered, func(i, j int) bool {
		return s.G.Depth[ordered[i].String()] > s.G.Depth[ordered[j].String()]
	})
	for _, u := range ordered {
		key := u.String()
		if s.prefetched[key] {
			continue
		}
		s.prefetched[key] = true
		l.FetchNow(l.Entry(u))
	}
}
