package polaris

import (
	"testing"
	"time"

	"vroom/internal/webpage"
)

var t0 = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

func TestBuildGraphCoversCrawl(t *testing.T) {
	site := webpage.NewSite("polaristest", webpage.News, 55)
	sn := site.Snapshot(t0, webpage.Profile{Device: webpage.PhoneSmall, UserID: 2}, 1)
	g := BuildGraph(sn)
	crawl := webpage.Crawl(sn)
	inGraph := map[string]bool{}
	for parent, children := range g.Children {
		inGraph[parent] = true
		for _, c := range children {
			inGraph[c.String()] = true
		}
	}
	missing := 0
	for u := range crawl {
		if !inGraph[u] {
			missing++
			t.Errorf("crawlable resource missing from graph: %s", u)
		}
	}
	_ = missing
}

func TestGraphDepths(t *testing.T) {
	site := webpage.NewSite("polaristest", webpage.News, 55)
	sn := site.Snapshot(t0, webpage.Profile{Device: webpage.PhoneSmall, UserID: 2}, 1)
	g := BuildGraph(sn)
	root := sn.Root.String()
	if g.Depth[root] < 2 {
		t.Fatalf("root depth %d; chains missing", g.Depth[root])
	}
	// Every parent must be strictly deeper than each of its children.
	for parent, children := range g.Children {
		for _, c := range children {
			if g.Depth[parent] <= g.Depth[c.String()] {
				t.Fatalf("depth(%s)=%d <= depth(%s)=%d", parent, g.Depth[parent], c, g.Depth[c.String()])
			}
		}
	}
}

func TestTrainGraphIsStale(t *testing.T) {
	site := webpage.NewSite("polaristest", webpage.News, 55)
	profile := webpage.Profile{Device: webpage.PhoneSmall, UserID: 2}
	g := TrainGraph(site, t0, profile, time.Hour)
	now := site.Snapshot(t0, profile, 99).URLSet()
	stale, total := 0, 0
	for parent, children := range g.Children {
		_ = parent
		for _, c := range children {
			total++
			if !now[c.String()] {
				stale++
			}
		}
	}
	if total == 0 {
		t.Fatal("empty graph")
	}
	if stale == 0 {
		t.Error("hour-old graph has no stale URLs; churn model broken")
	}
	if float64(stale)/float64(total) > 0.7 {
		t.Errorf("graph almost entirely stale: %d/%d", stale, total)
	}
}
