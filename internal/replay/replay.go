// Package replay implements a Mahimahi-style record-and-replay store: a
// page's full resource set serialized to JSON, loadable by the wire-level
// server to replay the page over real connections. Recording from the live
// web is out of scope offline; archives are produced from generated
// snapshots (webpage.Snapshot), which play the role of recorded sites.
package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// Record is one stored resource.
type Record struct {
	URL        string `json:"url"`
	Type       string `json:"type"`
	Size       int    `json:"size"`
	Body       string `json:"body,omitempty"`
	Async      bool   `json:"async,omitempty"`
	InIframe   bool   `json:"in_iframe,omitempty"`
	Cacheable  bool   `json:"cacheable,omitempty"`
	TTLSeconds int64  `json:"ttl_seconds,omitempty"`
	Parent     string `json:"parent,omitempty"`
}

// Archive is one recorded page load.
type Archive struct {
	RootURL    string    `json:"root_url"`
	Site       string    `json:"site"`
	RecordedAt time.Time `json:"recorded_at"`
	Records    []Record  `json:"records"`

	index map[string]*Record
}

// FromSnapshot records a materialized page.
func FromSnapshot(sn *webpage.Snapshot) *Archive {
	a := &Archive{
		RootURL:    sn.Root.String(),
		Site:       sn.Site.Name,
		RecordedAt: sn.Time,
	}
	for _, r := range sn.Ordered() {
		a.Records = append(a.Records, Record{
			URL:        r.URL.String(),
			Type:       r.Type.String(),
			Size:       r.Size,
			Body:       r.Body,
			Async:      r.Async,
			InIframe:   r.InIframe,
			Cacheable:  r.Cacheable,
			TTLSeconds: int64(r.TTL / time.Second),
			Parent:     r.Parent,
		})
	}
	a.buildIndex()
	return a
}

// Merge combines archives into one multi-origin archive — how one replay
// server serves several tenant sites at once (clients still open one
// connection per origin; every origin resolves to the same listener). The
// first archive provides the root page and site name; on duplicate URLs the
// first record wins.
func Merge(archives ...*Archive) *Archive {
	if len(archives) == 0 {
		return &Archive{}
	}
	m := &Archive{
		RootURL:    archives[0].RootURL,
		Site:       archives[0].Site,
		RecordedAt: archives[0].RecordedAt,
	}
	seen := make(map[string]bool)
	for _, a := range archives {
		for _, r := range a.Records {
			if seen[r.URL] {
				continue
			}
			seen[r.URL] = true
			m.Records = append(m.Records, r)
		}
	}
	m.buildIndex()
	return m
}

func (a *Archive) buildIndex() {
	a.index = make(map[string]*Record, len(a.Records))
	for i := range a.Records {
		a.index[a.Records[i].URL] = &a.Records[i]
	}
}

// Lookup finds a record by URL string.
func (a *Archive) Lookup(url string) (*Record, bool) {
	if a.index == nil {
		a.buildIndex()
	}
	r, ok := a.index[url]
	return r, ok
}

// Len returns the number of records.
func (a *Archive) Len() int { return len(a.Records) }

// Save writes the archive as JSON.
func (a *Archive) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(a)
}

// SaveFile writes the archive to a file.
func (a *Archive) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	return a.Save(f)
}

// Load reads an archive from JSON.
func Load(r io.Reader) (*Archive, error) {
	var a Archive
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("replay: decode: %w", err)
	}
	a.buildIndex()
	return &a, nil
}

// LoadFile reads an archive from a file.
func LoadFile(path string) (*Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// ResourceType converts the stored type string back.
func (r *Record) ResourceType() webpage.ResourceType {
	switch r.Type {
	case "html":
		return webpage.HTML
	case "css":
		return webpage.CSS
	case "js":
		return webpage.JS
	case "image":
		return webpage.Image
	case "font":
		return webpage.Font
	case "media":
		return webpage.Media
	case "json":
		return webpage.JSON
	default:
		return webpage.Other
	}
}

// ParsedURL returns the record's URL.
func (r *Record) ParsedURL() (urlutil.URL, error) { return urlutil.Parse(r.URL) }
