package replay

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"vroom/internal/webpage"
)

var t0 = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

func testArchive(t *testing.T) *Archive {
	t.Helper()
	site := webpage.NewSite("replaytest", webpage.Top100, 66)
	sn := site.Snapshot(t0, webpage.Profile{Device: webpage.PhoneSmall, UserID: 1}, 1)
	return FromSnapshot(sn)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := testArchive(t)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.RootURL != a.RootURL || b.Len() != a.Len() || b.Site != a.Site {
		t.Fatalf("metadata mismatch: %+v vs %+v", b, a)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	a := testArchive(t)
	path := filepath.Join(t.TempDir(), "page.json")
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != a.Len() {
		t.Fatalf("lost records: %d vs %d", b.Len(), a.Len())
	}
}

func TestLookup(t *testing.T) {
	a := testArchive(t)
	rec, ok := a.Lookup(a.RootURL)
	if !ok || rec.Type != "html" {
		t.Fatalf("root lookup: %v %v", rec, ok)
	}
	if _, ok := a.Lookup("https://nonexistent.example/x"); ok {
		t.Fatal("lookup of unknown URL succeeded")
	}
}

func TestResourceTypeRoundTrip(t *testing.T) {
	for _, typ := range []webpage.ResourceType{
		webpage.HTML, webpage.CSS, webpage.JS, webpage.Image,
		webpage.Font, webpage.Media, webpage.JSON, webpage.Other,
	} {
		rec := Record{Type: typ.String()}
		if rec.ResourceType() != typ {
			t.Errorf("type %v round-tripped to %v", typ, rec.ResourceType())
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
