package runner

// Shared training caches: one offline analysis pass backs every load that
// needs it, instead of Run rebuilding the resolver, the archive snapshots,
// and the Polaris graph on each of the 3 back-to-back loads × N policies a
// figure runs per site.

import (
	"sync"
	"sync/atomic"
	"time"

	"vroom/internal/core"
	"vroom/internal/polaris"
	"vroom/internal/webpage"
)

// memo is a concurrency-safe memoization table with in-flight
// deduplication: concurrent gets of the same key build the value once, the
// losers blocking on the winner's sync.Once.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	v    V
}

// get returns the memoized value for k, building it on first use. The
// second result reports whether the entry already existed (an in-flight
// build still counts: the work is deduplicated either way).
func (c *memo[K, V]) get(k K, build func() V) (V, bool) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e, ok := c.m[k]
	if !ok {
		e = &memoEntry[V]{}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.v = build() })
	return e.v, ok
}

// trainKey identifies one offline training pass: the resolver's stable sets
// depend on exactly the site, the training instant, the device class, and
// the resolver configuration (which is comparable by construction — all
// scalar fields).
type trainKey struct {
	site   *webpage.Site
	at     int64 // UnixNano
	device webpage.DeviceClass
	cfg    core.ResolverConfig
}

// polarisKey identifies one Polaris offline graph capture.
type polarisKey struct {
	site     *webpage.Site
	at       int64
	profile  webpage.Profile
	interval time.Duration
}

// Caches memoizes the deterministic offline work Run repeats across loads:
// resolver training, site snapshots (measured and archive), and Polaris
// dependency graphs. All cached values are pure functions of their keys, so
// cached and uncached runs produce identical results; sharing only removes
// redundant recomputation. A Caches value is safe for concurrent use by
// many loads.
//
// Entries are keyed by *webpage.Site: scope a Caches to the corpus it
// serves (in practice, one figure) and drop it with the corpus.
type Caches struct {
	training memo[trainKey, *core.Resolver]
	polaris  memo[polarisKey, *polaris.Graph]
	snaps    *webpage.SnapshotCache

	trainHits, trainMisses atomic.Int64
	polHits, polMisses     atomic.Int64
}

// CacheStats is a point-in-time snapshot of cache effectiveness, one
// hit/miss pair per cached artifact kind. cmd/vroom-bench records it into
// the benchmark JSON so CI can watch redundant-recomputation creep.
type CacheStats struct {
	TrainingHits, TrainingMisses int64
	PolarisHits, PolarisMisses   int64
	SnapshotHits, SnapshotMisses int64
}

// Stats returns the cache's hit/miss counts so far.
func (c *Caches) Stats() CacheStats {
	s := CacheStats{
		TrainingHits:   c.trainHits.Load(),
		TrainingMisses: c.trainMisses.Load(),
		PolarisHits:    c.polHits.Load(),
		PolarisMisses:  c.polMisses.Load(),
	}
	s.SnapshotHits, s.SnapshotMisses = c.snaps.Stats()
	return s
}

// NewCaches returns an empty cache set.
func NewCaches() *Caches {
	return &Caches{snaps: webpage.NewSnapshotCache()}
}

// TrainedResolver returns a resolver with the given configuration trained
// on site at the given instant and device class, training it on first use.
// The returned resolver is shared: callers that set per-load state (Trace)
// must Clone it first.
func (c *Caches) TrainedResolver(site *webpage.Site, at time.Time, device webpage.DeviceClass, cfg core.ResolverConfig) *core.Resolver {
	r, hit := c.training.get(trainKey{site: site, at: at.UnixNano(), device: device, cfg: cfg}, func() *core.Resolver {
		r := core.NewResolver(cfg)
		r.Train(site, at, device)
		return r
	})
	if hit {
		c.trainHits.Add(1)
	} else {
		c.trainMisses.Add(1)
	}
	return r
}

// PolarisGraph returns the memoized Polaris dependency graph for a site.
// The graph is read-only during loads (the scheduler keeps its own issued
// set), so one graph backs any number of concurrent loads.
func (c *Caches) PolarisGraph(site *webpage.Site, at time.Time, p webpage.Profile, interval time.Duration) *polaris.Graph {
	g, hit := c.polaris.get(polarisKey{site: site, at: at.UnixNano(), profile: p, interval: interval}, func() *polaris.Graph {
		return polaris.TrainGraph(site, at, p, interval)
	})
	if hit {
		c.polHits.Add(1)
	} else {
		c.polMisses.Add(1)
	}
	return g
}

// Snapshot returns the memoized site materialization for the key, shared
// read-only across loads.
func (c *Caches) Snapshot(site *webpage.Site, at time.Time, p webpage.Profile, nonce uint64) *webpage.Snapshot {
	return c.snaps.Snapshot(site, at, p, nonce)
}

// snapshot resolves a materialization through opts.Caches when present.
func (o *Options) snapshot(site *webpage.Site, at time.Time, p webpage.Profile, nonce uint64) *webpage.Snapshot {
	if o.Caches != nil {
		return o.Caches.Snapshot(site, at, p, nonce)
	}
	return site.Snapshot(at, p, nonce)
}

// trainedResolver builds (or fetches) a trained resolver for serverSide.
// Cached resolvers are cloned so the per-load Trace never lands on the
// shared instance.
func trainedResolver(site *webpage.Site, cfg core.ResolverConfig, opts Options) *core.Resolver {
	if opts.Caches != nil {
		return opts.Caches.TrainedResolver(site, opts.Time, opts.Profile.Device, cfg).Clone()
	}
	r := core.NewResolver(cfg)
	r.Train(site, opts.Time, opts.Profile.Device)
	return r
}
