package runner

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"vroom/internal/core"
	"vroom/internal/webpage"
)

var cacheTestTime = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

// TestCachesPreserveResults is the bit-identity guarantee behind the shared
// training caches: a load served from cached training state must produce
// exactly the result an uncached load does, for every policy that trains.
func TestCachesPreserveResults(t *testing.T) {
	site := webpage.NewSite("cachepolicy", webpage.News, 3)
	profile := webpage.Profile{Device: webpage.PhoneSmall, UserID: 11}
	for _, pol := range []Policy{Vroom, VroomFirstParty, DepsFromPrevLoad, OfflineOnly, Polaris, H2} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			caches := NewCaches()
			for nonce := uint64(1); nonce <= 2; nonce++ {
				plain, err := Run(site, pol, Options{Time: cacheTestTime, Profile: profile, Nonce: nonce})
				if err != nil {
					t.Fatal(err)
				}
				cached, err := Run(site, pol, Options{Time: cacheTestTime, Profile: profile, Nonce: nonce, Caches: caches})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(plain, cached) {
					t.Errorf("nonce %d: cached result diverges from uncached (PLT %v vs %v)",
						nonce, cached.PLT, plain.PLT)
				}
			}
		})
	}
}

func TestTrainedResolverSharedAndKeyed(t *testing.T) {
	site := webpage.NewSite("cachekeys", webpage.News, 3)
	other := webpage.NewSite("cachekeys2", webpage.News, 4)
	caches := NewCaches()
	cfg := core.DefaultResolverConfig()

	a := caches.TrainedResolver(site, cacheTestTime, webpage.PhoneSmall, cfg)
	if b := caches.TrainedResolver(site, cacheTestTime, webpage.PhoneSmall, cfg); b != a {
		t.Error("same training key built a second resolver")
	}
	if b := caches.TrainedResolver(site, cacheTestTime, webpage.Tablet, cfg); b == a {
		t.Error("different device class shared a resolver")
	}
	offline := cfg
	offline.UseOnline = false
	if b := caches.TrainedResolver(site, cacheTestTime, webpage.PhoneSmall, offline); b == a {
		t.Error("different resolver config shared a resolver")
	}
	if b := caches.TrainedResolver(other, cacheTestTime, webpage.PhoneSmall, cfg); b == a {
		t.Error("different site shared a resolver")
	}
	if b := caches.TrainedResolver(site, cacheTestTime.Add(time.Hour), webpage.PhoneSmall, cfg); b == a {
		t.Error("different training instant shared a resolver")
	}

	// The shared instance trains identically to a fresh one, and clones
	// share its trained state while carrying their own Trace.
	fresh := core.NewResolver(cfg)
	fresh.Train(site, cacheTestTime, webpage.PhoneSmall)
	want := fresh.HintsFor(site.RootURL(), "", webpage.PhoneSmall)
	got := a.Clone().HintsFor(site.RootURL(), "", webpage.PhoneSmall)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("cached resolver hints diverge: %d vs %d hints", len(got), len(want))
	}
}

func TestCachesConcurrentTrainingSingleflight(t *testing.T) {
	site := webpage.NewSite("cacheconc", webpage.News, 3)
	caches := NewCaches()
	cfg := core.DefaultResolverConfig()
	const n = 16
	got := make([]*core.Resolver, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = caches.TrainedResolver(site, cacheTestTime, webpage.PhoneSmall, cfg)
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent training built distinct resolvers")
		}
	}
}
