package runner

import (
	"testing"
	"time"

	"vroom/internal/browser"
	"vroom/internal/webpage"
)

func TestCPUBreakdown(t *testing.T) {
	site := webpage.NewSite("smoketest", webpage.News, 1234)
	sn := site.Snapshot(time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC), webpage.Profile{}, 1)
	c := browser.MobileCosts()
	byType := map[webpage.ResourceType]time.Duration{}
	count := map[webpage.ResourceType]int{}
	bytes := map[webpage.ResourceType]int{}
	for _, r := range sn.Ordered() {
		byType[r.Type] += c.For(r.Type, r.Size)
		count[r.Type]++
		bytes[r.Type] += r.Size
	}
	var total time.Duration
	for typ, d := range byType {
		t.Logf("%-6s n=%3d bytes=%7dKB cpu=%7.2fs", typ, count[typ], bytes[typ]/1024, d.Seconds())
		total += d
	}
	t.Logf("TOTAL cpu=%.2fs", total.Seconds())
}
