package runner

import (
	"testing"

	"vroom/internal/webpage"
)

// TestDeepBlockingChainsComplete is a regression test for a deadlock where
// a document.write-injected script at chain depth 2 arrived before being
// gated (everything is prefetched under NetworkOnly) and was then never
// executed: the gating flag must be set before Require so ownership is
// known when processing starts.
func TestDeepBlockingChainsComplete(t *testing.T) {
	c := webpage.Generate(webpage.CorpusConfig{Seed: 2017, NumNews: 50, NumSports: 50})
	var site *webpage.Site
	for _, s := range c.Sites {
		if s.Name == "sportly42" {
			site = s
		}
	}
	if site == nil {
		t.Fatal("corpus changed; pick another deep-chain site")
	}
	for _, pol := range []Policy{NetworkOnly, Vroom, H2} {
		res, err := Run(site, pol, Options{Time: loadTime,
			Profile: webpage.Profile{Device: webpage.PhoneSmall, UserID: 11}, Nonce: 1})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.PLT <= 0 {
			t.Fatalf("%s: zero PLT", pol)
		}
	}
}

// TestAblationPoliciesComplete exercises the ablation policy wiring.
func TestAblationPoliciesComplete(t *testing.T) {
	site := webpage.NewSite("abl", webpage.News, 555)
	opts := Options{Time: loadTime, Profile: webpage.Profile{Device: webpage.PhoneSmall, UserID: 7}, Nonce: 1}
	vr, err := Run(site, Vroom, opts)
	if err != nil {
		t.Fatal(err)
	}
	noSer, err := Run(site, VroomNoSerialize, opts)
	if err != nil {
		t.Fatal(err)
	}
	ifr, err := Run(site, VroomIframeDeps, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("vroom=%.2fs no-serialize=%.2fs iframe-deps=%.2fs (waste %dB vs %dB)",
		vr.PLT.Seconds(), noSer.PLT.Seconds(), ifr.PLT.Seconds(), vr.WastedBytes, ifr.WastedBytes)
	if ifr.WastedBytes < vr.WastedBytes {
		t.Error("hinting iframe-derived deps should not reduce waste")
	}
}
