// Package runner assembles the full simulated stack — corpus snapshot,
// network, server farm, resolver, browser, scheduler — for each named
// policy the paper evaluates, and executes single page loads.
package runner

import (
	"fmt"
	"time"

	"vroom/internal/browser"
	"vroom/internal/core"
	"vroom/internal/event"
	"vroom/internal/faults"
	"vroom/internal/hintstore"
	"vroom/internal/netsim"
	"vroom/internal/obs"
	"vroom/internal/polaris"
	"vroom/internal/server"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// Policy names a complete client+server configuration.
type Policy string

// Policies. See DESIGN.md §4 for the figure each appears in.
const (
	HTTP1            Policy = "http1"              // status quo
	H2               Policy = "h2"                 // HTTP/2 baseline
	H2PushAllStatic  Policy = "h2-push-all-static" // Fig 3: first party pushes all static
	Vroom            Policy = "vroom"              // the full system
	VroomFirstParty  Policy = "vroom-first-party"  // incremental adoption
	PushAllFetchASAP Policy = "push-all-fetch-asap"
	PushHighNoHints  Policy = "push-high-no-hints"
	PushAllNoHints   Policy = "push-all-no-hints"
	DepsFromPrevLoad Policy = "deps-from-prev-load"
	OfflineOnly      Policy = "vroom-offline-only"
	OnlineOnly       Policy = "vroom-online-only"
	Polaris          Policy = "polaris"
	CPUOnly          Policy = "cpu-only"     // zero network: CPU-bottleneck bound
	NetworkOnly      Policy = "network-only" // zero CPU: network-bottleneck bound
	// Ablations (DESIGN.md §5).
	VroomNoSerialize Policy = "vroom-no-serialize" // servers interleave responses
	VroomIframeDeps  Policy = "vroom-iframe-deps"  // hint iframe-derived deps too
)

// AllPolicies lists every runnable policy.
func AllPolicies() []Policy {
	return []Policy{
		HTTP1, H2, H2PushAllStatic, Vroom, VroomFirstParty, PushAllFetchASAP,
		PushHighNoHints, PushAllNoHints, DepsFromPrevLoad, OfflineOnly,
		OnlineOnly, Polaris, CPUOnly, NetworkOnly, VroomNoSerialize, VroomIframeDeps,
	}
}

// Options configure one load.
type Options struct {
	// Time is the wall-clock instant of the load (drives content churn).
	Time time.Time
	// Profile is the client device/user.
	Profile webpage.Profile
	// Nonce distinguishes back-to-back loads.
	Nonce uint64
	// Cache carries the browser cache across loads (nil = cold).
	Cache *browser.Cache
	// Net overrides the network config (zero = LTE defaults for the
	// policy's protocol).
	Net *netsim.Config
	// CPUScale overrides the client CPU speed (0 = mobile baseline).
	CPUScale float64
	// EventLimit bounds simulation events (0 = default 5M).
	EventLimit uint64
	// Faults injects a fault plan into the network and server layers and
	// arms the browser's timeout/retry machinery. The root document is
	// exempted so every load has content to degrade around. Nil models the
	// perfect world. Plans carry per-load mutable state (attempt counters,
	// origin health): build a fresh Plan per Run, reusing only the seed.
	Faults *faults.Plan
	// Trace, when set, records the load's full structured trace (netsim
	// streams, main-thread tasks, scheduler holds, server decisions) into
	// the recording. Nil disables tracing — the zero-overhead path.
	Trace *obs.Recording
	// Caches, when set, shares the deterministic offline work across loads:
	// resolver training, snapshot materialization (measured and archive),
	// and Polaris graphs. Results are identical with or without it; nil
	// rebuilds everything per load. Safe for concurrent Runs.
	Caches *Caches
	// Quality, when set, accumulates the load's hint-efficacy accounting
	// (emissions, used/unused/missed, push bytes) into the store's
	// per-tenant ledgers, mirroring what the wire accountant does for the
	// served path. Nil disables.
	Quality *hintstore.Store
}

func (o *Options) fill() {
	if o.Time.IsZero() {
		o.Time = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	}
	if o.EventLimit == 0 {
		o.EventLimit = 5_000_000
	}
}

// Run executes one page load of site under the given policy.
func Run(site *webpage.Site, pol Policy, opts Options) (browser.Result, error) {
	opts.fill()
	eng := event.New(opts.Time)
	sn := opts.snapshot(site, opts.Time, opts.Profile, opts.Nonce)

	// Shield the root document: a load with no root has nothing to
	// degrade around.
	opts.Faults.ExemptURL(site.RootURL())

	var tracer *obs.Tracer
	if opts.Trace != nil {
		opts.Trace.Start = opts.Time
		tracer = obs.New(eng.Now, opts.Trace)
	}

	ncfg := networkConfig(pol, opts)
	ncfg.Faults = opts.Faults
	ncfg.Tracer = tracer
	net := netsim.New(eng, ncfg)

	resolver, srvPolicy := serverSide(site, pol, opts)
	resolver.Trace = tracer
	farm := server.NewFarm(net, sn, resolver, srvPolicy, server.DefaultConfig())
	farm.Faults = opts.Faults
	farm.Trace = tracer
	farm.Quality = opts.Quality
	// Old fingerprinted assets remain fetchable, as on real CDNs; stale
	// hints and stale Polaris graph entries hit these.
	for _, back := range []time.Duration{time.Hour, 2 * time.Hour, 3 * time.Hour, 24 * time.Hour, 7 * 24 * time.Hour} {
		at := opts.Time.Add(-back)
		farm.Archive = append(farm.Archive, opts.snapshot(site, at, opts.Profile, uint64(at.UnixNano())))
	}

	bcfg := browser.Config{CPUScale: opts.CPUScale, Cache: opts.Cache, Trace: tracer}
	if pol == NetworkOnly {
		bcfg.NoProcessing = true
	}
	if opts.Faults != nil {
		// Defaults documented in DESIGN.md's failure model: a 5s attempt
		// timeout (rescues stalled transfers well before PLT scales), three
		// attempts with 250ms..4s exponential backoff, and client-observed
		// failures feeding the server's push-suppression health state.
		bcfg.FetchTimeout = 5 * time.Second
		bcfg.Retry = browser.DefaultRetryPolicy()
		plan := opts.Faults
		bcfg.OnFetchFailure = func(u urlutil.URL, reason string) {
			plan.MarkFailing(u.Origin())
		}
	}

	sched := clientScheduler(site, pol, opts, sn)
	load := browser.NewLoad(eng, farm, bcfg, sched, site.RootURL())
	farm.Attach(load, opts.Cache)

	load.Start()
	if _, err := eng.Run(opts.EventLimit); err != nil {
		return browser.Result{}, fmt.Errorf("runner: %s on %s: %w", pol, site.Name, err)
	}
	if !load.Finished() {
		return browser.Result{}, fmt.Errorf("runner: %s on %s: load did not finish (%s)", pol, site.Name, load)
	}
	res := load.Result()
	farm.SettleQuality(res)
	return res, nil
}

// networkConfig picks protocol and link behaviour for a policy.
func networkConfig(pol Policy, opts Options) netsim.Config {
	var cfg netsim.Config
	if opts.Net != nil {
		cfg = *opts.Net
	} else {
		proto := netsim.HTTP2
		if pol == HTTP1 {
			proto = netsim.HTTP1
		}
		cfg = netsim.LTEDefaults(proto)
		// Cellular capacity varies on sub-second timescales; replay a
		// deterministic per-load trace (Mahimahi-style) by default.
		cfg.Trace = netsim.DefaultLTETrace(int64(opts.Nonce) + 1)
	}
	switch pol {
	case Vroom, VroomFirstParty, DepsFromPrevLoad, OfflineOnly, OnlineOnly, VroomIframeDeps:
		// Vroom-compliant servers answer in request order (§5.1).
		cfg.SerializeResponses = true
	case CPUOnly:
		cfg.Protocol = netsim.HTTP2
		cfg.DownlinkBytesPerSec = 1e15
		cfg.BaseRTT = 0
		cfg.DNSDelay = 0
		cfg.TLSRoundTrips = 0
		cfg.ExtraRTT = func(string) time.Duration { return 0 }
		cfg.DisableSlowStart = true
		cfg.Trace = nil
	}
	return cfg
}

// serverSide builds the resolver and server policy for a policy.
func serverSide(site *webpage.Site, pol Policy, opts Options) (*core.Resolver, server.Policy) {
	switch pol {
	case Vroom, VroomNoSerialize:
		return trainedResolver(site, core.DefaultResolverConfig(), opts), server.VroomPolicy()
	case VroomIframeDeps:
		cfg := core.DefaultResolverConfig()
		cfg.IncludeIframeDescendants = true
		return trainedResolver(site, cfg, opts), server.VroomPolicy()
	case VroomFirstParty:
		p := server.VroomPolicy()
		first := site.FirstPartyDomain()
		p.Compliant = func(host string) bool { return urlutil.RegistrableDomain(host) == first }
		return trainedResolver(site, core.DefaultResolverConfig(), opts), p
	case DepsFromPrevLoad:
		cfg := core.DefaultResolverConfig()
		cfg.SingleLoad = true
		cfg.UseOnline = false
		p := server.VroomPolicy()
		p.OnlineAnalysis = false
		return trainedResolver(site, cfg, opts), p
	case OfflineOnly:
		cfg := core.DefaultResolverConfig()
		cfg.UseOnline = false
		p := server.VroomPolicy()
		p.OnlineAnalysis = false
		return trainedResolver(site, cfg, opts), p
	case OnlineOnly:
		cfg := core.DefaultResolverConfig()
		cfg.UseOffline = false
		return core.NewResolver(cfg), server.VroomPolicy()
	case H2PushAllStatic:
		first := site.FirstPartyDomain()
		return trainedResolver(site, core.DefaultResolverConfig(), opts), server.Policy{
			Push:      server.PushAllLocal,
			Compliant: func(host string) bool { return urlutil.RegistrableDomain(host) == first },
		}
	case PushAllFetchASAP:
		return trainedResolver(site, core.DefaultResolverConfig(), opts),
			server.Policy{SendHints: true, Push: server.PushAllLocal, OnlineAnalysis: true}
	case PushHighNoHints:
		return trainedResolver(site, core.DefaultResolverConfig(), opts),
			server.Policy{Push: server.PushHighPriorityLocal, OnlineAnalysis: true}
	case PushAllNoHints:
		return trainedResolver(site, core.DefaultResolverConfig(), opts),
			server.Policy{Push: server.PushAllLocal, OnlineAnalysis: true}
	default: // HTTP1, H2, Polaris, CPUOnly, NetworkOnly
		return core.NewResolver(core.DefaultResolverConfig()), server.Policy{}
	}
}

// clientScheduler builds the client-side scheduler for a policy.
func clientScheduler(site *webpage.Site, pol Policy, opts Options, sn *webpage.Snapshot) browser.Scheduler {
	switch pol {
	case Vroom, VroomFirstParty, DepsFromPrevLoad, OfflineOnly, OnlineOnly, VroomNoSerialize, VroomIframeDeps:
		return core.NewStagedScheduler()
	case PushAllFetchASAP:
		return &browser.FetchASAP{FollowHints: true}
	case Polaris:
		if opts.Caches != nil {
			return polaris.New(opts.Caches.PolarisGraph(site, opts.Time, opts.Profile, time.Hour))
		}
		g := polaris.TrainGraph(site, opts.Time, opts.Profile, time.Hour)
		return polaris.New(g)
	case NetworkOnly:
		// Every resource known upfront, fetched but not evaluated (§2).
		set := webpage.CrawlURLSet(sn)
		urls := make([]urlutil.URL, 0, len(set))
		for _, r := range sn.Ordered() {
			if set[r.URL.String()] {
				urls = append(urls, r.URL)
			}
		}
		return &browser.ListScheduler{URLs: urls}
	case HTTP1:
		// HTTP/1.1-era browsers throttle delayable requests while
		// critical ones are outstanding.
		return &browser.FetchASAP{ThrottleDelayable: true}
	default:
		return &browser.FetchASAP{}
	}
}
