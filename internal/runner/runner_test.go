package runner

import (
	"strings"
	"testing"
	"time"

	"vroom/internal/browser"
	"vroom/internal/hintstore"
	"vroom/internal/loadgen"
	"vroom/internal/telemetry"
	"vroom/internal/webpage"
)

var loadTime = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

func newsSite(seed int64) *webpage.Site {
	return webpage.NewSite("smoketest", webpage.News, seed)
}

func TestAllPoliciesComplete(t *testing.T) {
	site := newsSite(1234)
	for _, pol := range AllPolicies() {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			res, err := Run(site, pol, Options{Time: loadTime, Nonce: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.PLT <= 0 {
				t.Fatalf("PLT = %v", res.PLT)
			}
			if res.NumRequired == 0 {
				t.Fatal("no required resources")
			}
			t.Logf("%-22s PLT=%8.2fs AFT=%7.2fs SI=%8.0f idle=%.2f discAll=%6.2fs fetchAll=%6.2fs req=%d fetched=%d waste=%dKB",
				pol, res.PLT.Seconds(), res.AFT.Seconds(), res.SpeedIndex, res.IdleFrac,
				res.DiscoverAll.Seconds(), res.FetchAll.Seconds(), res.NumRequired, res.NumFetched, res.WastedBytes/1024)
		})
	}
}

func TestVroomBeatsH2(t *testing.T) {
	var vroomWins int
	const n = 8
	for i := 0; i < n; i++ {
		site := webpage.NewSite("ordering", webpage.News, int64(100+i))
		h2, err := Run(site, H2, Options{Time: loadTime, Nonce: 1})
		if err != nil {
			t.Fatal(err)
		}
		vr, err := Run(site, Vroom, Options{Time: loadTime, Nonce: 1})
		if err != nil {
			t.Fatal(err)
		}
		if vr.PLT < h2.PLT {
			vroomWins++
		}
		t.Logf("site %d: h2=%.2fs vroom=%.2fs", i, h2.PLT.Seconds(), vr.PLT.Seconds())
	}
	if vroomWins < n*3/4 {
		t.Errorf("vroom beat h2 on only %d/%d sites", vroomWins, n)
	}
}

func TestLowerBoundIsLower(t *testing.T) {
	site := newsSite(77)
	cpu, err := Run(site, CPUOnly, Options{Time: loadTime, Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	netw, err := Run(site, NetworkOnly, Options{Time: loadTime, Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Run(site, H2, Options{Time: loadTime, Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	bound := cpu.PLT
	if netw.PLT > bound {
		bound = netw.PLT
	}
	t.Logf("cpu=%.2fs net=%.2fs bound=%.2fs h2=%.2fs", cpu.PLT.Seconds(), netw.PLT.Seconds(), bound.Seconds(), h2.PLT.Seconds())
	if bound >= h2.PLT {
		t.Errorf("lower bound %.2fs not below H2 %.2fs", bound.Seconds(), h2.PLT.Seconds())
	}
}

func TestWarmCacheFaster(t *testing.T) {
	site := newsSite(99)
	cache := browser.NewCache()
	cold, err := Run(site, Vroom, Options{Time: loadTime, Nonce: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(site, Vroom, Options{Time: loadTime, Nonce: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold=%.2fs warm=%.2fs cached=%d", cold.PLT.Seconds(), warm.PLT.Seconds(), cache.Len())
	if warm.PLT >= cold.PLT {
		t.Errorf("warm load %.2fs not faster than cold %.2fs", warm.PLT.Seconds(), cold.PLT.Seconds())
	}
}

// TestQualityAccountingFeedsStore runs the full Vroom policy with a quality
// store attached and checks the farm-side settlement agrees exactly with
// the browser's own ledger: the store's settled counters are fed from the
// same per-resource records the Result counts.
func TestQualityAccountingFeedsStore(t *testing.T) {
	site := newsSite(77)
	st := hintstore.New(hintstore.Config{TTL: time.Hour})
	reg := telemetry.NewRegistry()
	st.Instrument(reg)

	res, err := Run(site, Vroom, Options{Time: loadTime, Nonce: 1, Quality: st})
	if err != nil {
		t.Fatal(err)
	}
	if res.HintsEmitted == 0 || res.HintsUsed == 0 {
		t.Fatalf("vroom load settled no hints: %+v", res)
	}
	if p := res.HintPrecision(); p <= 0 || p > 1 {
		t.Fatalf("precision %v out of (0,1]", p)
	}
	if r := res.HintRecall(); r <= 0 || r > 1 {
		t.Fatalf("recall %v out of (0,1]", r)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	sc, err := loadgen.ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	used := int(sc.Sum(hintstore.MetricHintsUsed, nil))
	unused := int(sc.Sum(hintstore.MetricHintsUnused, nil))
	missed := int(sc.Sum(hintstore.MetricHintsMissed, nil))
	emitted := int(sc.Sum(hintstore.MetricHintsEmitted, nil))
	if used != res.HintsUsed || unused != res.HintsUnused || missed != res.HintsMissed {
		t.Fatalf("store settlement (used %d unused %d missed %d) != result (%d %d %d)",
			used, unused, missed, res.HintsUsed, res.HintsUnused, res.HintsMissed)
	}
	// The farm emits per served document, so repeats across documents can
	// only push emissions above the deduped settled count.
	if emitted < used+unused {
		t.Fatalf("emitted %d < settled %d", emitted, used+unused)
	}
	if res.WastedPushBytes > 0 {
		if got := int64(sc.Sum(hintstore.MetricWastedPush, nil)); got != res.WastedPushBytes {
			t.Fatalf("wasted push bytes: store %d, result %d", got, res.WastedPushBytes)
		}
	}
	if !strings.Contains(sb.String(), hintstore.MetricHintsUsed+`{origin="`) {
		t.Fatal("per-origin used series missing from exposition")
	}
}
