package runner

import (
	"testing"
	"time"

	"vroom/internal/browser"
	"vroom/internal/webpage"
)

var loadTime = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

func newsSite(seed int64) *webpage.Site {
	return webpage.NewSite("smoketest", webpage.News, seed)
}

func TestAllPoliciesComplete(t *testing.T) {
	site := newsSite(1234)
	for _, pol := range AllPolicies() {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			res, err := Run(site, pol, Options{Time: loadTime, Nonce: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.PLT <= 0 {
				t.Fatalf("PLT = %v", res.PLT)
			}
			if res.NumRequired == 0 {
				t.Fatal("no required resources")
			}
			t.Logf("%-22s PLT=%8.2fs AFT=%7.2fs SI=%8.0f idle=%.2f discAll=%6.2fs fetchAll=%6.2fs req=%d fetched=%d waste=%dKB",
				pol, res.PLT.Seconds(), res.AFT.Seconds(), res.SpeedIndex, res.IdleFrac,
				res.DiscoverAll.Seconds(), res.FetchAll.Seconds(), res.NumRequired, res.NumFetched, res.WastedBytes/1024)
		})
	}
}

func TestVroomBeatsH2(t *testing.T) {
	var vroomWins int
	const n = 8
	for i := 0; i < n; i++ {
		site := webpage.NewSite("ordering", webpage.News, int64(100+i))
		h2, err := Run(site, H2, Options{Time: loadTime, Nonce: 1})
		if err != nil {
			t.Fatal(err)
		}
		vr, err := Run(site, Vroom, Options{Time: loadTime, Nonce: 1})
		if err != nil {
			t.Fatal(err)
		}
		if vr.PLT < h2.PLT {
			vroomWins++
		}
		t.Logf("site %d: h2=%.2fs vroom=%.2fs", i, h2.PLT.Seconds(), vr.PLT.Seconds())
	}
	if vroomWins < n*3/4 {
		t.Errorf("vroom beat h2 on only %d/%d sites", vroomWins, n)
	}
}

func TestLowerBoundIsLower(t *testing.T) {
	site := newsSite(77)
	cpu, err := Run(site, CPUOnly, Options{Time: loadTime, Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	netw, err := Run(site, NetworkOnly, Options{Time: loadTime, Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Run(site, H2, Options{Time: loadTime, Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	bound := cpu.PLT
	if netw.PLT > bound {
		bound = netw.PLT
	}
	t.Logf("cpu=%.2fs net=%.2fs bound=%.2fs h2=%.2fs", cpu.PLT.Seconds(), netw.PLT.Seconds(), bound.Seconds(), h2.PLT.Seconds())
	if bound >= h2.PLT {
		t.Errorf("lower bound %.2fs not below H2 %.2fs", bound.Seconds(), h2.PLT.Seconds())
	}
}

func TestWarmCacheFaster(t *testing.T) {
	site := newsSite(99)
	cache := browser.NewCache()
	cold, err := Run(site, Vroom, Options{Time: loadTime, Nonce: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(site, Vroom, Options{Time: loadTime, Nonce: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold=%.2fs warm=%.2fs cached=%d", cold.PLT.Seconds(), warm.PLT.Seconds(), cache.Len())
	if warm.PLT >= cold.PLT {
		t.Errorf("warm load %.2fs not faster than cold %.2fs", warm.PLT.Seconds(), cold.PLT.Seconds())
	}
}
