// Package server models the web-server side of a page load over the
// simulated network: content lookup across snapshots, server think time,
// Vroom's online HTML analysis delay, dependency-hint headers, and HTTP/2
// push policies — per domain, so that incremental-adoption scenarios where
// only some domains are Vroom-compliant can be expressed.
package server

import (
	"fmt"
	"time"

	"vroom/internal/browser"
	"vroom/internal/core"
	"vroom/internal/faults"
	"vroom/internal/hints"
	"vroom/internal/hintstore"
	"vroom/internal/netsim"
	"vroom/internal/obs"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// PushMode selects what a compliant server pushes with an HTML response.
type PushMode int

// Push modes.
const (
	// PushNone disables push.
	PushNone PushMode = iota
	// PushHighPriorityLocal pushes same-origin high-priority dependencies
	// (Vroom's choice, §4.3).
	PushHighPriorityLocal
	// PushAllLocal pushes every same-origin dependency (strawman).
	PushAllLocal
)

// Policy is the per-deployment server behaviour.
type Policy struct {
	// Compliant reports whether a host has deployed Vroom. Non-compliant
	// hosts serve plain responses. Nil means all hosts are compliant.
	Compliant func(host string) bool
	// SendHints enables dependency-hint headers on HTML responses.
	SendHints bool
	// Push selects the push policy for HTML responses.
	Push PushMode
	// OnlineAnalysis adds the on-the-fly HTML parse to think time and
	// feeds the served body to the resolver (§4.1.2).
	OnlineAnalysis bool
	// CacheAware suppresses pushes of resources the client already holds
	// (the cache-digest cookie of footnote 2).
	CacheAware bool
}

// VroomPolicy is the full design: hints + high-priority local push + online
// analysis + cache awareness.
func VroomPolicy() Policy {
	return Policy{SendHints: true, Push: PushHighPriorityLocal, OnlineAnalysis: true, CacheAware: true}
}

// Config holds the farm's timing model.
type Config struct {
	// ThinkTime is the base server processing delay per request.
	ThinkTime time.Duration
	// ParseBase/ParsePerKB model the online HTML analysis delay the paper
	// measures at roughly 100 ms for large pages (§4.1.2).
	ParseBase  time.Duration
	ParsePerKB time.Duration
	// ErrorSize is the body size served for unknown URLs (stale hints).
	ErrorSize int
}

// DefaultConfig returns production-flavoured timings.
func DefaultConfig() Config {
	return Config{
		ThinkTime:  40 * time.Millisecond,
		ParseBase:  10 * time.Millisecond,
		ParsePerKB: 800 * time.Microsecond,
		ErrorSize:  1200,
	}
}

// Farm serves one client's page load: it implements browser.Transport over
// a netsim.Net and delivers pushes straight into the client's Load.
type Farm struct {
	Net      *netsim.Net
	Snapshot *webpage.Snapshot
	// Archive holds older snapshots; fingerprinted assets from previous
	// materializations remain fetchable there, as on real CDNs.
	Archive  []*webpage.Snapshot
	Resolver *core.Resolver
	Policy   Policy
	Cfg      Config

	// Client is the load to deliver push promises and push bodies to.
	// Set by Attach.
	Client *browser.Load
	// ClientCache is the client's cache digest for CacheAware push.
	ClientCache *browser.Cache
	// Faults, when set, injects server-level faults: hinted URLs go stale
	// (404 or redirect) and pushes to failing origins are suppressed. Nil
	// injects nothing.
	Faults *faults.Plan

	// Trace, when set, records hint emission and push decisions on the
	// server track. Nil disables.
	Trace *obs.Tracer

	// Quality, when set, receives the farm's hint-efficacy accounting:
	// emissions are credited to the hinting document's origin as they are
	// served, and SettleQuality (called with the finished load's result)
	// settles used/unused/missed and push-byte outcomes against each
	// resource's own host — the same attribution split the wire accountant
	// uses. Nil disables, the zero-overhead path.
	Quality *hintstore.Store

	pushed map[string]bool
	// redirects maps stale hinted URLs to the fresh URL they now point at.
	redirects map[string]urlutil.URL
}

// NewFarm builds a farm for one load.
func NewFarm(net *netsim.Net, sn *webpage.Snapshot, res *core.Resolver, pol Policy, cfg Config) *Farm {
	return &Farm{
		Net: net, Snapshot: sn, Resolver: res, Policy: pol, Cfg: cfg,
		pushed:    make(map[string]bool),
		redirects: make(map[string]urlutil.URL),
	}
}

// Attach wires the client load (for push delivery and cache digests).
func (f *Farm) Attach(l *browser.Load, cache *browser.Cache) {
	f.Client = l
	f.ClientCache = cache
}

// Lookup finds the content for a URL in the current snapshot or the
// archive.
func (f *Farm) Lookup(u urlutil.URL) (*webpage.Resource, bool) {
	if r, ok := f.Snapshot.Lookup(u); ok {
		return r, true
	}
	for _, sn := range f.Archive {
		if r, ok := sn.Lookup(u); ok {
			return r, true
		}
	}
	return nil, false
}

// Fetch implements browser.Transport. The returned abort func cancels the
// request from the client side (the browser's timeout path).
func (f *Farm) Fetch(u urlutil.URL, started func(), done func(*browser.Fetched)) func() {
	req := f.Net.Do(u, func(rt *netsim.RoundTrip) { f.handle(rt, done) })
	req.OnStart = started
	req.OnFail = func(reason string) {
		done(&browser.Fetched{URL: u, Failed: true, FailReason: reason})
	}
	return req.Abort
}

// sinceStart returns the offset from load start (for fault windows).
func (f *Farm) sinceStart() time.Duration {
	if f.Client == nil {
		return 0
	}
	return f.Client.Eng.Now().Sub(f.Client.StartTime())
}

// handle services one request at the server.
func (f *Farm) handle(rt *netsim.RoundTrip, done func(*browser.Fetched)) {
	// A stale hinted URL whose content moved: answer with a redirect to
	// the fresh URL (headers only, no content).
	if fresh, ok := f.redirects[rt.URL.String()]; ok {
		const redirectSize = 300
		rt.Respond(redirectSize, f.Cfg.ThinkTime, func() {
			done(&browser.Fetched{URL: rt.URL, Size: redirectSize, RedirectTo: fresh})
		})
		return
	}

	res, ok := f.Lookup(rt.URL)
	if !ok {
		size := f.Cfg.ErrorSize
		if size <= 0 {
			size = 1200
		}
		rt.Respond(size, f.Cfg.ThinkTime, func() {
			done(&browser.Fetched{URL: rt.URL, Res: nil, Size: size})
		})
		return
	}

	// Conditional revalidation: the client holds an expired copy of a
	// URL we still serve; fingerprinted URLs imply unchanged content, so
	// answer 304 with no body.
	if f.ClientCache != nil && f.Client != nil && f.ClientCache.Stale(rt.URL.String(), f.Client.Eng.Now()) {
		const headerOnly = 220
		rt.Respond(headerOnly, f.Cfg.ThinkTime, func() {
			done(&browser.Fetched{URL: rt.URL, Res: res, Size: headerOnly, NotModified: true})
		})
		return
	}

	think := f.Cfg.ThinkTime
	var hs []hints.Hint
	compliant := f.Policy.Compliant == nil || f.Policy.Compliant(rt.URL.Host)
	isHTML := res.Type == webpage.HTML
	if isHTML && compliant && (f.Policy.SendHints || f.Policy.Push != PushNone) {
		if f.Policy.OnlineAnalysis {
			think += f.Cfg.ParseBase + time.Duration(float64(res.Size)/1024*float64(f.Cfg.ParsePerKB))
		}
		device := f.Snapshot.Profile.Device
		body := ""
		if f.Policy.OnlineAnalysis {
			body = res.Body
		}
		hs = f.staleify(f.Resolver.HintsFor(rt.URL, body, device))
		if f.Trace.Enabled() {
			f.Trace.Instant(obs.TrackServer, "hints:"+rt.URL.String(),
				obs.Arg{Key: "count", Val: fmt.Sprint(len(hs))})
		}
		if f.Quality != nil && len(hs) > 0 {
			f.Quality.NoteQuality(rt.URL.Host, hintstore.QualityDelta{HintsEmitted: int64(len(hs))})
		}
		f.push(rt, hs)
		if !f.Policy.SendHints {
			hs = nil
		}
	}

	rt.Respond(res.Size, think, func() {
		done(&browser.Fetched{URL: rt.URL, Res: res, Size: res.Size, Hints: hs})
	})
}

// SettleQuality folds a finished load's hint outcomes into the quality
// store: hinted resources settle used or unused against their own host,
// required non-document resources the hints never named count missed, and
// pushed resources settle their byte and lead-time ledgers. No-op without
// a Quality store.
func (f *Farm) SettleQuality(r browser.Result) {
	if f.Quality == nil {
		return
	}
	for _, rt := range r.Resources {
		u, err := urlutil.Parse(rt.URL)
		if err != nil {
			continue
		}
		var d hintstore.QualityDelta
		switch {
		case rt.Hinted && rt.Required:
			d.HintsUsed = 1
		case rt.Hinted:
			d.HintsUnused = 1
		case rt.Required && !rt.Doc:
			d.HintsMissed = 1
		default:
			continue
		}
		if rt.Pushed {
			d.PushedCount, d.PushedBytes = 1, int64(rt.Size)
			if !rt.Required {
				d.WastedPushBytes = int64(rt.Size)
			} else if rt.ArrivedAt > 0 && rt.RequiredAt > rt.ArrivedAt {
				// The push beat the page's need: that headroom is its lead.
				d.PushLeadMs = float64((rt.RequiredAt - rt.ArrivedAt).Milliseconds())
				d.PushLeads = 1
			}
		}
		f.Quality.NoteQuality(u.Host, d)
	}
}

// staleify passes served hints through the fault plan: a stale hint's URL
// is mangled to what the resolver's outdated view carries, and redirecting
// ones are remembered so handle can answer them.
func (f *Farm) staleify(hs []hints.Hint) []hints.Hint {
	if f.Faults == nil || len(hs) == 0 {
		return hs
	}
	out := make([]hints.Hint, len(hs))
	for i, h := range hs {
		m, fate := f.Faults.StaleHint(h.URL)
		switch fate {
		case faults.HintRedirect:
			f.redirects[m.String()] = h.URL
			h.URL = m
		case faults.HintGone:
			h.URL = m
		}
		out[i] = h
	}
	return out
}

// push initiates the policy's pushes for an HTML response.
func (f *Farm) push(rt *netsim.RoundTrip, hs []hints.Hint) {
	if f.Policy.Push == PushNone || f.Client == nil {
		return
	}
	urls := core.PushSet(hs, rt.URL, f.Policy.Push == PushAllLocal)
	now := f.Client.Eng.Now()
	skip := func(key, why string) {
		if f.Trace.Enabled() {
			f.Trace.Instant(obs.TrackServer, "push-skip:"+key, obs.Arg{Key: "why", Val: why})
		}
	}
	for _, u := range urls {
		key := u.String()
		if f.pushed[key] {
			continue
		}
		res, ok := f.Lookup(u)
		if !ok {
			skip(key, "unknown-url")
			continue
		}
		if f.Policy.CacheAware && f.ClientCache != nil && f.ClientCache.Fresh(key, now) {
			skip(key, "client-cached")
			continue // client already holds it; pushing would waste bandwidth
		}
		if f.Faults.Failing(u.Origin(), f.sinceStart()) {
			skip(key, "origin-unhealthy")
			continue // origin marked unhealthy: pushing burns client bandwidth
		}
		f.pushed[key] = true
		if f.Trace.Enabled() {
			f.Trace.Instant(obs.TrackServer, "push-decide:"+key,
				obs.Arg{Key: "with", Val: rt.URL.String()})
		}
		// The PUSH_PROMISE reaches the client half an RTT after the
		// server emits it.
		promiseAt := f.Net.RTT(u.Host) / 2
		f.Client.Eng.ScheduleAfter(promiseAt, "push-promise", func() {
			f.Client.PushPromise(u)
		})
		pushedRes := res
		pushURL := u
		rt.Push(u, res.Size, f.Cfg.ThinkTime, func() {
			f.Client.PushArrived(&browser.Fetched{URL: pushURL, Res: pushedRes, Size: pushedRes.Size, Pushed: true})
		}, func(reason string) {
			f.Client.PushFailed(pushURL, reason)
		})
	}
}
