package server

import (
	"testing"
	"time"

	"vroom/internal/browser"
	"vroom/internal/core"
	"vroom/internal/event"
	"vroom/internal/netsim"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

var t0 = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

type env struct {
	eng  *event.Engine
	net  *netsim.Net
	farm *Farm
	load *browser.Load
	sn   *webpage.Snapshot
}

func setup(t *testing.T, pol Policy, sched browser.Scheduler) *env {
	t.Helper()
	site := webpage.NewSite("servertest", webpage.News, 44)
	sn := site.Snapshot(t0, webpage.Profile{Device: webpage.PhoneSmall, UserID: 3}, 1)
	eng := event.New(t0)
	net := netsim.New(eng, netsim.LTEDefaults(netsim.HTTP2))
	resolver := core.NewResolver(core.DefaultResolverConfig())
	resolver.Train(site, t0, webpage.PhoneSmall)
	farm := NewFarm(net, sn, resolver, pol, DefaultConfig())
	load := browser.NewLoad(eng, farm, browser.Config{}, sched, site.RootURL())
	farm.Attach(load, nil)
	return &env{eng: eng, net: net, farm: farm, load: load, sn: sn}
}

func (e *env) run(t *testing.T) browser.Result {
	t.Helper()
	e.load.Start()
	if _, err := e.eng.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if !e.load.Finished() {
		t.Fatalf("load unfinished: %s", e.load)
	}
	return e.load.Result()
}

func TestPlainServingCompletes(t *testing.T) {
	e := setup(t, Policy{}, nil)
	res := e.run(t)
	if res.NumRequired == 0 || res.PLT <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	// No hints, no pushes under the plain policy.
	for _, rt := range res.Resources {
		if rt.Pushed {
			t.Errorf("pushed without a push policy: %s", rt.URL)
		}
	}
}

func TestVroomPolicyPushesOnlySameOriginHigh(t *testing.T) {
	e := setup(t, VroomPolicy(), core.NewStagedScheduler())
	res := e.run(t)
	pushes := 0
	for _, rt := range res.Resources {
		if !rt.Pushed {
			continue
		}
		pushes++
		u, err := urlutil.Parse(rt.URL)
		if err != nil {
			t.Fatal(err)
		}
		r, ok := e.sn.Lookup(u)
		if !ok {
			t.Errorf("pushed unknown resource %s", rt.URL)
			continue
		}
		if !r.Type.NeedsProcessing() {
			t.Errorf("pushed low-priority resource %s (%s)", rt.URL, r.Type)
		}
	}
	if pushes == 0 {
		t.Error("vroom policy pushed nothing")
	}
}

func TestLookupFallsBackToArchive(t *testing.T) {
	site := webpage.NewSite("servertest", webpage.News, 44)
	old := site.Snapshot(t0.Add(-time.Hour), webpage.Profile{Device: webpage.PhoneSmall, UserID: 3}, 7)
	e := setup(t, Policy{}, nil)
	e.farm.Archive = append(e.farm.Archive, old)
	// A URL only in the old snapshot must resolve via the archive.
	var oldOnly urlutil.URL
	for _, r := range old.Ordered() {
		if _, inCurrent := e.sn.Lookup(r.URL); !inCurrent {
			oldOnly = r.URL
			break
		}
	}
	if oldOnly.IsZero() {
		t.Skip("no old-only resource")
	}
	if _, ok := e.farm.Lookup(oldOnly); !ok {
		t.Fatalf("archive lookup failed for %s", oldOnly)
	}
}

func TestUnknownURLServesErrorBody(t *testing.T) {
	e := setup(t, Policy{}, nil)
	done := false
	stale := urlutil.MustParse("https://static.servertest.com/js/nope-00.js")
	e.farm.Fetch(stale, nil, func(f *browser.Fetched) {
		done = true
		if f.Res != nil {
			t.Error("stale URL returned content")
		}
		if f.Size != DefaultConfig().ErrorSize {
			t.Errorf("error body size %d", f.Size)
		}
	})
	if _, err := e.eng.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("no response for stale URL")
	}
}

func TestIncrementalAdoptionScopesHints(t *testing.T) {
	pol := VroomPolicy()
	pol.Compliant = func(host string) bool { return urlutil.RegistrableDomain(host) == "servertest.com" }
	e := setup(t, pol, core.NewStagedScheduler())
	res := e.run(t)
	for _, rt := range res.Resources {
		if !rt.Pushed {
			continue
		}
		u, _ := urlutil.Parse(rt.URL)
		if urlutil.RegistrableDomain(u.Host) != "servertest.com" {
			t.Errorf("non-compliant domain pushed: %s", rt.URL)
		}
	}
}

func TestCacheAwarePushSkipsCachedContent(t *testing.T) {
	cache := browser.NewCache()
	// First load warms the cache.
	site := webpage.NewSite("servertest", webpage.News, 44)
	run := func(nonce uint64) browser.Result {
		sn := site.Snapshot(t0, webpage.Profile{Device: webpage.PhoneSmall, UserID: 3}, nonce)
		eng := event.New(t0)
		net := netsim.New(eng, netsim.LTEDefaults(netsim.HTTP2))
		resolver := core.NewResolver(core.DefaultResolverConfig())
		resolver.Train(site, t0, webpage.PhoneSmall)
		farm := NewFarm(net, sn, resolver, VroomPolicy(), DefaultConfig())
		load := browser.NewLoad(eng, farm, browser.Config{Cache: cache}, core.NewStagedScheduler(), site.RootURL())
		farm.Attach(load, cache)
		load.Start()
		if _, err := eng.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		if !load.Finished() {
			t.Fatal("unfinished")
		}
		return load.Result()
	}
	cold := run(1)
	// Pushed resources that entered the cache must not be pushed again on
	// the warm load.
	cachedPushed := map[string]bool{}
	coldPushes := 0
	for _, rt := range cold.Resources {
		if rt.Pushed {
			coldPushes++
			if cache.Fresh(rt.URL, t0) {
				cachedPushed[rt.URL] = true
			}
		}
	}
	if coldPushes == 0 {
		t.Fatal("no pushes on cold load")
	}
	if len(cachedPushed) == 0 {
		t.Skip("no pushed resource was cacheable on this site")
	}
	warm := run(2)
	for _, rt := range warm.Resources {
		if rt.Pushed && cachedPushed[rt.URL] {
			t.Errorf("cached resource pushed again: %s", rt.URL)
		}
	}
}

func TestOnlineAnalysisAddsThinkTime(t *testing.T) {
	plain := setup(t, Policy{}, nil)
	plainRes := plain.run(t)

	withParse := setup(t, Policy{SendHints: true, OnlineAnalysis: true}, nil)
	parseRes := withParse.run(t)

	// The HTML response must arrive later when the server parses it
	// on the fly (§4.1.2's ~100 ms overhead) — compare root arrivals.
	rootArrival := func(r browser.Result, root string) time.Duration {
		for _, rt := range r.Resources {
			if rt.URL == root {
				return rt.ArrivedAt
			}
		}
		return 0
	}
	root := plain.sn.Root.String()
	a, b := rootArrival(plainRes, root), rootArrival(parseRes, root)
	if b <= a {
		t.Errorf("online analysis added no delay: %v vs %v", b, a)
	}
}

func TestRevalidation304(t *testing.T) {
	site := webpage.NewSite("revalidate", webpage.Top100, 321)
	cache := browser.NewCache()
	run := func(at time.Time, nonce uint64) browser.Result {
		sn := site.Snapshot(at, webpage.Profile{Device: webpage.PhoneSmall, UserID: 3}, nonce)
		eng := event.New(at)
		net := netsim.New(eng, netsim.LTEDefaults(netsim.HTTP2))
		resolver := core.NewResolver(core.DefaultResolverConfig())
		farm := NewFarm(net, sn, resolver, Policy{}, DefaultConfig())
		load := browser.NewLoad(eng, farm, browser.Config{Cache: cache}, nil, site.RootURL())
		farm.Attach(load, cache)
		load.Start()
		if _, err := eng.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		if !load.Finished() {
			t.Fatal("unfinished")
		}
		return load.Result()
	}
	cold := run(t0, 1)
	// A day later: short-TTL stable assets are expired but unchanged, so
	// they revalidate with tiny 304 responses instead of full bodies.
	warm := run(t0.Add(24*time.Hour), 2)
	if warm.BytesFetched >= cold.BytesFetched {
		t.Fatalf("revalidated load not lighter: %d vs %d bytes", warm.BytesFetched, cold.BytesFetched)
	}
	reval := 0
	for _, rt := range warm.Resources {
		if rt.Required && rt.Size > 0 && rt.Size <= 256 {
			reval++
		}
	}
	if reval == 0 {
		t.Error("no 304-sized responses on the day-later load")
	}
}
