package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters accumulates named event counts — retries, timeouts, wasted-push
// bytes, injected faults — across the loads of an experiment, for the
// report alongside the PLT distributions. It is safe for concurrent use:
// experiments share one instance across loads, and callers may fan loads
// out over goroutines.
//
// This is the report-side sibling of Registry: experiments want a flat
// "name=value" line in a text report, not label sets and exposition, so the
// simple map stays. Both live here so event counting has one home; package
// metrics keeps only pure distribution statistics (Dist, Histogram,
// significance tests).
type Counters struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{counts: make(map[string]int64)} }

// Add increments a named counter.
func (c *Counters) Add(name string, n int64) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	c.counts[name] += n
	c.mu.Unlock()
}

// Get returns a counter's value (zero if never added).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Touch ensures a counter exists so it renders even at zero. Add skips
// zero increments to keep incidental counters out of reports, but headline
// counters (retries, timeouts, wasted-push bytes) should read "=0" rather
// than vanish when nothing fired.
func (c *Counters) Touch(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.counts[name]; !ok {
		c.counts[name] = 0
	}
}

// Names returns the counter names, sorted.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.names()
}

// names is Names without the lock, for callers that already hold it.
func (c *Counters) names() []string {
	out := make([]string, 0, len(c.counts))
	for name := range c.counts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// String renders "name=value" pairs sorted by name.
func (c *Counters) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	for i, name := range c.names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, c.counts[name])
	}
	return b.String()
}
