package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestCountersConcurrent hammers Add/Get/Names/String from many goroutines;
// run under -race (CI does) it proves the counter set is goroutine-safe —
// experiments share one across loads and may fan loads out.
func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add("shared", 1)
				c.Add(fmt.Sprintf("worker-%d", w), 2)
				if i%100 == 0 {
					_ = c.Names()
					_ = c.String()
					_ = c.Get("shared")
					c.Touch("touched")
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Get("shared"); got != workers*perWorker {
		t.Errorf("shared counter = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := c.Get(fmt.Sprintf("worker-%d", w)); got != 2*perWorker {
			t.Errorf("worker-%d = %d, want %d", w, got, 2*perWorker)
		}
	}
	if got := c.Get("touched"); got != 0 {
		t.Errorf("touched counter = %d, want 0", got)
	}
	// names: shared + touched + one per worker.
	if got := len(c.Names()); got != workers+2 {
		t.Errorf("len(Names()) = %d, want %d", got, workers+2)
	}
}
