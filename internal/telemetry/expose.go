package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name with HELP/TYPE headers,
// series sorted by label set, histograms as cumulative le-bucketed series
// with _sum and _count. Safe to call while every series is being updated.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshotFamilies() {
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, ss := range f.series {
			if err := writeSeries(w, f, ss); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *familySnap, ss seriesSnap) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ss.key, ss.s.ctr.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ss.key, ss.s.gauge.Value())
		return err
	default:
		snap := ss.s.hist.Snapshot(DefaultBuckets)
		for i, b := range DefaultBuckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				withLabel(ss.key, "le", formatBound(b)), snap.Cumulative[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			withLabel(ss.key, "le", "+Inf"), snap.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ss.key, formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ss.key, snap.Count)
		return err
	}
}

// withLabel appends one label to an already-rendered label set.
func withLabel(key, name, val string) string {
	extra := name + `="` + escapeLabel(val) + `"`
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// formatBound renders a bucket bound without trailing zeros (25, 2.5).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'f', -1, 64)
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonHist is a histogram series in the JSON dump.
type jsonHist struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Exemplar names one concrete recent observation's trace context, so a
	// distribution in a dump can be chased back to a specific load in the
	// merged Perfetto trace. The Prometheus text endpoint deliberately
	// omits exemplars: its consumers here are line-oriented parsers.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// jsonDump is the WriteJSON shape: series keyed by "name{labels}".
type jsonDump struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Histograms map[string]jsonHist `json:"histograms,omitempty"`
}

// WriteJSON dumps the registry as JSON, the machine-readable counterpart of
// the text scrape (vroom-client -metrics-out). Histograms carry count, sum,
// extremes, and headline quantiles instead of raw buckets.
func (r *Registry) WriteJSON(w io.Writer) error {
	dump := jsonDump{}
	if r != nil {
		for _, f := range r.snapshotFamilies() {
			for _, ss := range f.series {
				key := f.name + ss.key
				switch f.kind {
				case kindCounter:
					if dump.Counters == nil {
						dump.Counters = make(map[string]int64)
					}
					dump.Counters[key] = ss.s.ctr.Value()
				case kindGauge:
					if dump.Gauges == nil {
						dump.Gauges = make(map[string]int64)
					}
					dump.Gauges[key] = ss.s.gauge.Value()
				default:
					if dump.Histograms == nil {
						dump.Histograms = make(map[string]jsonHist)
					}
					snap := ss.s.hist.Snapshot(nil)
					h := jsonHist{Count: snap.Count, Sum: snap.Sum}
					if snap.Count > 0 {
						h.Min, h.Max = snap.Min, snap.Max
						h.P50 = ss.s.hist.h.Quantile(50)
						h.P90 = ss.s.hist.h.Quantile(90)
						h.P99 = ss.s.hist.h.Quantile(99)
						h.Exemplar = ss.s.hist.Exemplar()
					}
					dump.Histograms[key] = h
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
