package telemetry

import (
	"math"
	rtm "runtime/metrics"
	"sync"
	"time"
)

// Runtime metric family names. CI greps for the vroom_runtime_ prefix, so
// renames here must track .github/workflows/ci.yml and DESIGN.md §13.
const (
	MRuntimeHeapBytes    = "vroom_runtime_heap_bytes"
	MRuntimeTotalBytes   = "vroom_runtime_total_bytes"
	MRuntimeGoroutines   = "vroom_runtime_goroutines"
	MRuntimeGCCycles     = "vroom_runtime_gc_cycles_total"
	MRuntimeGCPauseMs    = "vroom_runtime_gc_pause_ms"
	MRuntimeSchedLatMs   = "vroom_runtime_sched_latency_ms"
	MRuntimeSampleErrors = "vroom_runtime_sample_errors_total"
)

// maxHistObsPerSample bounds how many synthetic observations one sample tick
// may feed into a telemetry histogram. The runtime's cumulative bucket
// counts can grow by millions of scheduling events between ticks; replaying
// each one would stall the collector, so deltas are downsampled
// proportionally (shape preserved, counts scaled) past this budget.
const maxHistObsPerSample = 4096

// RuntimeCollector periodically samples Go runtime health — heap in use,
// goroutine count, GC cycle count, GC pause and scheduler latency
// distributions — into registry series, so a /metrics scrape shows whether
// the process (not just the protocol) is healthy under load. Pause and
// latency distributions come from runtime/metrics cumulative histograms;
// each tick feeds the since-last-tick delta into log-bucketed telemetry
// histograms at bucket midpoints.
//
// A nil *RuntimeCollector no-ops, mirroring the registry's nil contract.
type RuntimeCollector struct {
	reg      *Registry
	interval time.Duration

	heap    *Gauge
	total   *Gauge
	gors    *Gauge
	cycles  *Counter
	gcPause *Histogram
	schedMs *Histogram
	errs    *Counter

	samples []rtm.Sample
	// prev holds last tick's cumulative histograms for delta computation.
	prevGC    *rtm.Float64Histogram
	prevSched *rtm.Float64Histogram
	prevCyc   uint64
	first     bool

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// runtimeSampleNames are the runtime/metrics keys sampled each tick, in the
// order the samples slice is laid out.
var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// NewRuntimeCollector builds a collector registering its series on reg.
// interval <= 0 defaults to 5s. Returns nil on a nil registry so callers
// can wire it unconditionally.
func NewRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	reg.Describe(MRuntimeHeapBytes, "Bytes of live heap objects at the last runtime sample.")
	reg.Describe(MRuntimeTotalBytes, "Total bytes of memory mapped by the Go runtime.")
	reg.Describe(MRuntimeGoroutines, "Live goroutines at the last runtime sample.")
	reg.Describe(MRuntimeGCCycles, "Completed GC cycles.")
	reg.Describe(MRuntimeGCPauseMs, "Stop-the-world GC pause durations (ms), sampled per collection tick.")
	reg.Describe(MRuntimeSchedLatMs, "Goroutine scheduling latencies (ms), downsampled per collection tick.")
	reg.Describe(MRuntimeSampleErrors, "Runtime metric samples with an unexpected kind (runtime version skew).")
	c := &RuntimeCollector{
		reg:      reg,
		interval: interval,
		heap:     reg.Gauge(MRuntimeHeapBytes),
		total:    reg.Gauge(MRuntimeTotalBytes),
		gors:     reg.Gauge(MRuntimeGoroutines),
		cycles:   reg.Counter(MRuntimeGCCycles),
		gcPause:  reg.Histogram(MRuntimeGCPauseMs),
		schedMs:  reg.Histogram(MRuntimeSchedLatMs),
		errs:     reg.Counter(MRuntimeSampleErrors),
		samples:  make([]rtm.Sample, len(runtimeSampleNames)),
		first:    true,
	}
	for i, n := range runtimeSampleNames {
		c.samples[i].Name = n
	}
	return c
}

// Start launches the sampling loop. Safe to call on nil; a second Start
// without Stop is a no-op.
func (c *RuntimeCollector) Start() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.loop(c.stop, c.done)
}

// Stop halts the sampling loop and waits for it to exit. Safe on nil and
// when never started.
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (c *RuntimeCollector) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	c.Sample()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.Sample()
		}
	}
}

// Sample takes one sample immediately. Exposed so tests and shutdown paths
// can force a final reading without waiting out the ticker.
func (c *RuntimeCollector) Sample() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rtm.Read(c.samples)
	for i, s := range c.samples {
		switch runtimeSampleNames[i] {
		case "/memory/classes/heap/objects:bytes":
			c.setGauge(c.heap, s)
		case "/memory/classes/total:bytes":
			c.setGauge(c.total, s)
		case "/sched/goroutines:goroutines":
			c.setGauge(c.gors, s)
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() != rtm.KindUint64 {
				c.errs.Inc()
				continue
			}
			cur := s.Value.Uint64()
			if !c.first && cur > c.prevCyc {
				c.cycles.Add(int64(cur - c.prevCyc))
			}
			c.prevCyc = cur
		case "/gc/pauses:seconds":
			c.prevGC = c.observeHistDelta(c.gcPause, s, c.prevGC)
		case "/sched/latencies:seconds":
			c.prevSched = c.observeHistDelta(c.schedMs, s, c.prevSched)
		}
	}
	c.first = false
}

func (c *RuntimeCollector) setGauge(g *Gauge, s rtm.Sample) {
	if s.Value.Kind() != rtm.KindUint64 {
		c.errs.Inc()
		return
	}
	g.Set(int64(s.Value.Uint64()))
}

// observeHistDelta feeds the delta between the current and previous
// cumulative runtime histogram into h, observing each bucket's midpoint (in
// ms) once per new event, downsampled past maxHistObsPerSample. Returns a
// copy of the current histogram for the next tick's delta.
func (c *RuntimeCollector) observeHistDelta(h *Histogram, s rtm.Sample, prev *rtm.Float64Histogram) *rtm.Float64Histogram {
	if s.Value.Kind() != rtm.KindFloat64Histogram {
		c.errs.Inc()
		return prev
	}
	cur := s.Value.Float64Histogram()
	if cur == nil {
		return prev
	}
	if prev != nil && len(prev.Counts) == len(cur.Counts) && !c.first {
		var total uint64
		for i, n := range cur.Counts {
			if n > prev.Counts[i] {
				total += n - prev.Counts[i]
			}
		}
		if total > 0 {
			scale := 1.0
			if total > maxHistObsPerSample {
				scale = float64(maxHistObsPerSample) / float64(total)
			}
			for i, n := range cur.Counts {
				if n <= prev.Counts[i] {
					continue
				}
				delta := float64(n - prev.Counts[i])
				obs := int(math.Round(delta * scale))
				if obs == 0 {
					obs = 1
				}
				mid := bucketMidMs(cur.Buckets, i)
				for k := 0; k < obs; k++ {
					h.Observe(mid)
				}
			}
		}
	}
	// Copy: the runtime may reuse the sample's backing arrays on next Read.
	cp := &rtm.Float64Histogram{
		Counts:  append([]uint64(nil), cur.Counts...),
		Buckets: append([]float64(nil), cur.Buckets...),
	}
	return cp
}

// bucketMidMs returns the midpoint of bucket i (Counts[i] spans
// Buckets[i]..Buckets[i+1], seconds) converted to milliseconds, clamping
// the infinite edge buckets to their finite bound.
func bucketMidMs(bounds []float64, i int) float64 {
	lo, hi := bounds[i], bounds[i+1]
	switch {
	case math.IsInf(lo, -1):
		lo = 0
	case math.IsInf(hi, +1):
		hi = lo
	}
	return (lo + hi) / 2 * 1000
}
