package telemetry

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRuntimeCollectorSamples proves one forced sample populates the gauge
// families and that GC/sched histograms pick up activity between samples.
func TestRuntimeCollectorSamples(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg, time.Hour) // ticker never fires; we drive Sample
	c.Sample()

	if v := reg.Gauge(MRuntimeGoroutines).Value(); v <= 0 {
		t.Errorf("goroutines gauge = %d, want > 0", v)
	}
	if v := reg.Gauge(MRuntimeHeapBytes).Value(); v <= 0 {
		t.Errorf("heap gauge = %d, want > 0", v)
	}

	// Generate runtime activity between samples: allocate and force GCs so
	// the pause histogram delta is nonzero.
	for i := 0; i < 3; i++ {
		sink := make([]byte, 1<<20)
		_ = sink
		runtime.GC()
	}
	c.Sample()
	if n := reg.Histogram(MRuntimeGCPauseMs).N(); n == 0 {
		t.Error("gc pause histogram empty after forced GCs between samples")
	}
	if got := reg.Counter(MRuntimeGCCycles).Value(); got < 3 {
		t.Errorf("gc cycles counter = %d, want >= 3", got)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, fam := range []string{MRuntimeHeapBytes, MRuntimeGoroutines, MRuntimeGCPauseMs, MRuntimeSchedLatMs} {
		if !strings.Contains(buf.String(), fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}
}

// TestRuntimeCollectorLifecycle exercises Start/Stop (idempotent, no leaked
// sampler goroutine) and the nil no-op contract.
func TestRuntimeCollectorLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	c := NewRuntimeCollector(NewRegistry(), 10*time.Millisecond)
	c.Start()
	c.Start() // second start is a no-op
	time.Sleep(30 * time.Millisecond)
	c.Stop()
	c.Stop() // second stop is a no-op
	if err := CheckGoroutineLeak(base, 2, time.Second); err != nil {
		t.Fatalf("sampler leaked: %v", err)
	}

	var nc *RuntimeCollector
	nc.Start()
	nc.Sample()
	nc.Stop()
	if NewRuntimeCollector(nil, time.Second) != nil {
		t.Error("NewRuntimeCollector(nil) should return nil")
	}
}
