// Package telemetry is the runtime metrics plane for the live wire stack:
// an atomic, scrape-safe registry of counters, gauges, and histograms with
// Prometheus text exposition and a JSON dump.
//
// It wraps the repository's existing metrics substrate (internal/metrics
// histograms) behind handles that are cheap on the hot path: a handle is
// resolved once (one locked map lookup) and then updated with a single
// atomic operation, so instrumented code can hold handles across a load.
// Every handle type is nil-safe — methods on a nil *Counter/*Gauge/
// *Histogram no-op — mirroring the nil-*obs.Tracer contract, so call sites
// resolve handles through a possibly-nil *Registry and use them
// unconditionally.
//
// Scrapes (WritePrometheus, WriteJSON) take a snapshot of the series list
// under a read lock and read each series atomically, so a scrape racing
// thousands of updates sees a consistent, if instantaneous, view and never
// blocks writers for longer than a map read.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vroom/internal/metrics"
)

// Label is one key/value dimension on a series (e.g. origin, phase, kind).
type Label struct {
	Key string
	Val string
}

// L is shorthand for building a Label.
func L(key, val string) Label { return Label{Key: key, Val: val} }

// Counter is a monotonically increasing series. A nil *Counter no-ops.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored: counters only
// rise).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can rise and fall (active connections, drain
// state). A nil *Gauge no-ops.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc and Dec move the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a sample-distribution series backed by the constant-memory
// log-bucketed metrics.Histogram. A nil *Histogram no-ops. Values are in
// the unit the caller observes; the wire stack records milliseconds.
type Histogram struct {
	h *metrics.Histogram
	// ex is the latest exemplar: one (value, trace context) pair kept per
	// series so a scrape can name a concrete recent trace behind the
	// distribution. Exposed in the JSON dump only — the Prometheus text
	// endpoint stays plain so simple line parsers keep working.
	ex atomic.Pointer[Exemplar]
}

// Exemplar links one observed sample to the trace it came from.
type Exemplar struct {
	Value float64
	// Trace is the caller-supplied trace context string (an
	// obs.TraceContext wire form on the wire stack).
	Trace string
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.h.Observe(v)
}

// ObserveExemplar records one sample and, when trace is non-empty, stamps
// it as the series' latest exemplar. With an empty trace it is exactly
// Observe, so call sites can pass their possibly-empty flow ID
// unconditionally.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	if h == nil {
		return
	}
	h.h.Observe(v)
	if trace != "" {
		h.ex.Store(&Exemplar{Value: v, Trace: trace})
	}
}

// Exemplar returns the latest exemplar, or nil when none was recorded.
func (h *Histogram) Exemplar() *Exemplar {
	if h == nil {
		return nil
	}
	return h.ex.Load()
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.h.ObserveDuration(d)
}

// Quantile estimates the p-th percentile (0 < p <= 100) of the observed
// samples (0 on nil or when nothing was observed).
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	return h.h.Quantile(p)
}

// N returns the number of samples observed (0 on nil).
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.h.N()
}

// Mean returns the mean of the observed samples (0 on nil).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	return h.h.Mean()
}

// Snapshot exposes the underlying histogram snapshot (zero value on nil).
func (h *Histogram) Snapshot(bounds []float64) metrics.Snapshot {
	if h == nil {
		return metrics.Snapshot{Cumulative: make([]uint64, len(bounds))}
	}
	return h.h.Snapshot(bounds)
}

// DefaultBuckets are the exposition upper bounds (milliseconds) used for
// every histogram family: roughly logarithmic from 1ms to a minute, wide
// enough for dial/header/body phases on broken links.
var DefaultBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// kind tags a series family for TYPE exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled time series.
type series struct {
	name   string
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	kind   kind
	help   string
	series map[string]*series // keyed by rendered label set
}

// Registry is a named set of series. The zero value is not usable; call
// NewRegistry. A nil *Registry resolves nil handles, so instrumented code
// works unconditionally.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Describe attaches HELP text to a metric name (before or after first use).
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, series: make(map[string]*series)}
		r.families[name] = f
	}
	f.help = help
	r.mu.Unlock()
}

// lookup returns (creating) the series for name+labels with the given kind.
// A name reused with a different kind keeps its first kind and the call
// returns a fresh unregistered series, so exposition stays well-formed.
func (r *Registry) lookup(k kind, name string, labels []Label) *series {
	key := labelKey(labels)

	r.mu.RLock()
	f, ok := r.families[name]
	if ok {
		s, ok2 := f.series[key]
		kindOK := f.kind == k || len(f.series) == 0
		r.mu.RUnlock()
		if ok2 {
			return s
		}
		if !kindOK {
			return newSeries(k, name, labels)
		}
	} else {
		r.mu.RUnlock()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok = r.families[name]
	if !ok {
		f = &family{name: name, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	}
	if len(f.series) == 0 {
		f.kind = k
	}
	if f.kind != k {
		return newSeries(k, name, labels)
	}
	s, ok := f.series[key]
	if !ok {
		s = newSeries(k, name, labels)
		f.series[key] = s
	}
	return s
}

func newSeries(k kind, name string, labels []Label) *series {
	s := &series{name: name, labels: append([]Label(nil), labels...)}
	sort.SliceStable(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
	switch k {
	case kindCounter:
		s.ctr = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	default:
		s.hist = &Histogram{h: metrics.NewHistogram()}
	}
	return s
}

// Counter returns (creating) the named counter series. Nil registry returns
// a nil (no-op) handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(kindCounter, name, labels).ctr
}

// Gauge returns (creating) the named gauge series.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(kindGauge, name, labels).gauge
}

// Histogram returns (creating) the named histogram series.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(kindHistogram, name, labels).hist
}

// labelKey renders a sorted, escaped label set: {k1="v1",k2="v2"} or "".
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Val))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// snapshotFamilies returns a sorted copy of the family list with sorted
// series, taken under the read lock; values are read atomically afterwards.
func (r *Registry) snapshotFamilies() []*familySnap {
	r.mu.RLock()
	fams := make([]*familySnap, 0, len(r.families))
	for _, f := range r.families {
		fs := &familySnap{name: f.name, kind: f.kind, help: f.help}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fs.series = append(fs.series, seriesSnap{key: k, s: f.series[k]})
		}
		fams = append(fams, fs)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

type familySnap struct {
	name   string
	kind   kind
	help   string
	series []seriesSnap
}

type seriesSnap struct {
	key string
	s   *series
}
