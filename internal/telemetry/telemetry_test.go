package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// populate builds a deterministic registry exercising every series kind,
// label escaping, and the histogram exposition path.
func populate() *Registry {
	r := NewRegistry()
	r.Describe("vroom_wire_requests_total", "Requests issued per origin.")
	r.Describe("vroom_wire_fetch_phase_ms", "Fetch phase latency in milliseconds.")
	r.Counter("vroom_wire_requests_total", L("origin", "https://www.dailynews00.com")).Add(7)
	r.Counter("vroom_wire_requests_total", L("origin", "https://img.dailynews00.com")).Add(3)
	r.Counter("vroom_wire_retries_total", L("origin", "https://img.dailynews00.com")).Add(2)
	r.Counter("vroom_wire_push_promises_total", L("state", "accepted")).Add(4)
	r.Counter("vroom_wire_push_promises_total", L("state", "orphaned")).Inc()
	r.Gauge("vroom_wire_active_conns").Set(2)
	r.Gauge("vroom_server_draining").Set(0)
	r.Counter("vroom_escapes_total", L("path", `a"b\c`)).Inc()
	h := r.Histogram("vroom_wire_fetch_phase_ms", L("phase", "headers"))
	for _, ms := range []float64{0.4, 3, 3, 12, 48, 230, 1800} {
		h.Observe(ms)
	}
	r.Histogram("vroom_wire_fetch_phase_ms", L("phase", "dial")).ObserveDuration(42 * time.Millisecond)
	return r
}

// TestPrometheusGolden pins the full text exposition of a populated
// registry: family ordering, HELP/TYPE lines, label escaping, cumulative
// le buckets with _sum/_count.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := populate().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "scrape.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusFormatShape sanity-checks invariants independent of the
// golden bytes, so a legitimate -update cannot smuggle in a malformed
// exposition.
func TestPrometheusFormatShape(t *testing.T) {
	var buf bytes.Buffer
	if err := populate().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var lastFamily string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if parts[2] < lastFamily {
				t.Errorf("family %q out of order after %q", parts[2], lastFamily)
			}
			lastFamily = parts[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if line == "" {
			t.Error("blank line in exposition")
			continue
		}
		// Every sample line is "name[{labels}] value".
		if idx := strings.LastIndexByte(line, ' '); idx < 0 {
			t.Errorf("sample line %q has no value", line)
		}
	}
	for _, want := range []string{
		`vroom_wire_fetch_phase_ms_bucket{phase="headers",le="+Inf"} 7`,
		`vroom_wire_fetch_phase_ms_count{phase="headers"} 7`,
		`vroom_escapes_total{path="a\"b\\c"} 1`,
		"# HELP vroom_wire_requests_total Requests issued per origin.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestScrapeUnderFire hammers one registry from 8 goroutines — counters,
// gauges, histograms, and new-series creation — while scrapes run, and
// checks the final totals. Run with -race, this is the scrape-safety proof.
func TestScrapeUnderFire(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	var scrapes int
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			var js bytes.Buffer
			if err := r.WriteJSON(&js); err != nil {
				t.Error(err)
				return
			}
			if !json.Valid(js.Bytes()) {
				t.Error("mid-fire JSON dump is invalid")
				return
			}
			scrapes++
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			origin := "https://origin" + string(rune('a'+w)) + ".example"
			ctr := r.Counter("fire_requests_total", L("origin", origin))
			hist := r.Histogram("fire_latency_ms", L("origin", origin))
			gauge := r.Gauge("fire_active")
			for i := 0; i < perW; i++ {
				ctr.Inc()
				hist.Observe(float64(i % 100))
				gauge.Inc()
				gauge.Dec()
				// Series churn: resolve an existing series again.
				r.Counter("fire_requests_total", L("origin", origin)).Add(0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone
	if scrapes == 0 {
		t.Error("scraper never completed a pass while writers were running")
	}

	total := int64(0)
	for w := 0; w < workers; w++ {
		origin := "https://origin" + string(rune('a'+w)) + ".example"
		total += r.Counter("fire_requests_total", L("origin", origin)).Value()
	}
	if total != workers*perW {
		t.Errorf("counters lost updates: total %d, want %d", total, workers*perW)
	}
	if g := r.Gauge("fire_active").Value(); g != 0 {
		t.Errorf("gauge ended at %d, want 0", g)
	}
}

// TestNilRegistryAndHandles pins the nil contract: a nil registry resolves
// nil handles and every handle method no-ops.
func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(5)
	r.Histogram("x").Observe(1)
	r.Describe("x", "help")
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("nil-registry JSON dump invalid")
	}
	if v := r.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value %d", v)
	}
}

// TestKindConflict pins that reusing a name with a different kind yields a
// working unregistered series instead of corrupting the family.
func TestKindConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total").Add(3)
	g := r.Gauge("conflict_total")
	g.Set(9) // must not panic, must not appear in exposition
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "conflict_total 3") {
		t.Errorf("counter lost: %s", out)
	}
	if strings.Contains(out, "conflict_total 9") {
		t.Errorf("conflicting gauge leaked into exposition: %s", out)
	}
}

// TestHistogramExemplar pins the exemplar contract: ObserveExemplar keeps
// the latest non-empty trace, an empty trace is exactly Observe, the JSON
// dump carries the exemplar, and the Prometheus text endpoint never does
// (its consumers here are line-oriented parsers).
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vroom_wire_fetch_ms", L("outcome", "ok"))

	h.ObserveExemplar(1.5, "")
	if ex := h.Exemplar(); ex != nil {
		t.Fatalf("empty trace stored an exemplar: %+v", ex)
	}
	h.ObserveExemplar(3.5, "00000000000000ab-0000000000000001")
	h.ObserveExemplar(9.0, "00000000000000ab-0000000000000002")
	ex := h.Exemplar()
	if ex == nil || ex.Value != 9.0 || ex.Trace != "00000000000000ab-0000000000000002" {
		t.Fatalf("latest exemplar not kept: %+v", ex)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Histograms map[string]struct {
			Count    uint64    `json:"count"`
			Exemplar *Exemplar `json:"exemplar"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	series, ok := dump.Histograms[`vroom_wire_fetch_ms{outcome="ok"}`]
	if !ok {
		t.Fatalf("series missing from JSON dump: %s", js.String())
	}
	if series.Count != 3 {
		t.Errorf("all three observations must count (exemplar or not), got %d", series.Count)
	}
	if series.Exemplar == nil || series.Exemplar.Trace != "00000000000000ab-0000000000000002" {
		t.Errorf("JSON dump lost the exemplar: %+v", series.Exemplar)
	}

	var text bytes.Buffer
	if err := r.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text.String(), "00000000000000ab") {
		t.Errorf("Prometheus text exposition leaked an exemplar:\n%s", text.String())
	}

	// Nil-handle discipline matches the rest of the package.
	var nilH *Histogram
	nilH.ObserveExemplar(1, "trace")
	if nilH.Exemplar() != nil {
		t.Error("nil histogram returned an exemplar")
	}
}
