package telemetry

import (
	"sync"
	"sync/atomic"
)

// OverflowLabel is the label value every series past a Vec's cardinality cap
// folds into. A tenant storm can mint unbounded origin strings; the scrape
// surface must not grow with them, so the cap'th-plus-one distinct value and
// everything after it share one "other" series.
const OverflowLabel = "other"

// DefaultVecCap bounds distinct label values per Vec family when the caller
// passes cap <= 0. 128 origins is far beyond any test corpus while keeping
// the /metrics exposition a few tens of KB.
const DefaultVecCap = 128

// vec is the shared bounded-cardinality handle cache behind CounterVec,
// GaugeVec and HistogramVec: one label key, a hard cap of distinct values,
// and an overflow series receiving every value past the cap. Handles are
// resolved once per value and cached, so the steady-state With is one RLock
// map hit — no label rendering, no allocation — cheap enough for
// per-request hot paths.
type vec struct {
	name string
	key  string
	cap  int
	mk   func(val string) any // builds the handle for one label value

	mu      sync.RWMutex
	handles map[string]any // label value -> cached handle
	other   any            // the OverflowLabel handle, built on first fold
	full    atomic.Bool    // len(handles) reached cap; overflow path skips the write lock
	dropped atomic.Int64   // observations folded into the overflow bucket
}

func newVec(name, key string, capN int, mk func(string) any) *vec {
	if capN <= 0 {
		capN = DefaultVecCap
	}
	return &vec{name: name, key: key, cap: capN, mk: mk, handles: make(map[string]any)}
}

// with resolves the cached handle for val, folding past-cap values into the
// overflow handle.
func (v *vec) with(val string) any {
	v.mu.RLock()
	h, ok := v.handles[val]
	v.mu.RUnlock()
	if ok {
		return h
	}
	if val == OverflowLabel {
		// A tenant literally named "other" is indistinguishable from the
		// overflow bucket in the exposition, so it shares its series.
		return v.overflow()
	}
	if v.full.Load() {
		// Every slot is taken and slots never free, so an unknown value is
		// overflow without touching the write lock — the storm path.
		v.dropped.Add(1)
		return v.overflow()
	}
	v.mu.Lock()
	if h, ok := v.handles[val]; ok {
		v.mu.Unlock()
		return h
	}
	if len(v.handles) >= v.cap {
		v.mu.Unlock()
		v.dropped.Add(1)
		return v.overflow()
	}
	h = v.mk(val)
	v.handles[val] = h
	if len(v.handles) >= v.cap {
		v.full.Store(true)
	}
	v.mu.Unlock()
	return h
}

// admit reports whether val keeps its own identity (used by WithLabels,
// which cannot cache handles across its extra-label combinations).
func (v *vec) admit(val string) bool {
	if val == OverflowLabel {
		return false
	}
	v.mu.RLock()
	_, ok := v.handles[val]
	v.mu.RUnlock()
	if ok {
		return true
	}
	// Force the slot (or the fold) through the caching path so admit and
	// with agree on which values are tracked.
	v.with(val)
	v.mu.RLock()
	_, ok = v.handles[val]
	v.mu.RUnlock()
	return ok
}

func (v *vec) overflow() any {
	v.mu.RLock()
	h := v.other
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	if v.other == nil {
		v.other = v.mk(OverflowLabel)
	}
	h = v.other
	v.mu.Unlock()
	return h
}

// cardinality returns the number of distinct tracked values (excluding the
// overflow bucket) and how many observations of untracked values were
// folded into it.
func (v *vec) cardinality() (tracked int, overflowed int64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.handles), v.dropped.Load()
}

// CounterVec is a bounded-cardinality family of counters sharing one metric
// name and one label key (typically "origin"). At most cap distinct label
// values get their own series; the rest share the OverflowLabel series, so
// a storm of unique tenants cannot explode the exposition. A nil
// *CounterVec resolves nil (no-op) handles.
type CounterVec struct {
	r *Registry
	v *vec
}

// CounterVec returns a bounded counter family on the registry. cap <= 0
// uses DefaultVecCap. A nil registry returns nil (all methods no-op).
func (r *Registry) CounterVec(name, labelKey string, cap int) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r: r, v: newVec(name, labelKey, cap, func(val string) any {
		return r.Counter(name, L(labelKey, val))
	})}
}

// With resolves the counter for one label value, folding past-cap values
// into the overflow series. Steady state is one read-locked map hit.
func (cv *CounterVec) With(val string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.with(val).(*Counter)
}

// WithLabels resolves the counter for one vec-keyed value plus constant
// extra labels (e.g. origin-bounded, kind-tagged). Cardinality is enforced
// on the vec key only; extra label values must come from small static
// sets. Unlike With, the handle is not cached across calls.
func (cv *CounterVec) WithLabels(val string, extra ...Label) *Counter {
	if cv == nil {
		return nil
	}
	if !cv.v.admit(val) {
		val = OverflowLabel
	}
	labels := make([]Label, 0, 1+len(extra))
	labels = append(labels, L(cv.v.key, val))
	labels = append(labels, extra...)
	return cv.r.Counter(cv.v.name, labels...)
}

// Cardinality returns (tracked values, observations folded into the
// overflow bucket). Zero on nil.
func (cv *CounterVec) Cardinality() (int, int64) {
	if cv == nil {
		return 0, 0
	}
	return cv.v.cardinality()
}

// GaugeVec is the gauge analog of CounterVec.
type GaugeVec struct {
	r *Registry
	v *vec
}

// GaugeVec returns a bounded gauge family on the registry.
func (r *Registry) GaugeVec(name, labelKey string, cap int) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r: r, v: newVec(name, labelKey, cap, func(val string) any {
		return r.Gauge(name, L(labelKey, val))
	})}
}

// With resolves the gauge for one label value.
func (gv *GaugeVec) With(val string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.v.with(val).(*Gauge)
}

// WithLabels resolves the gauge for one vec-keyed value plus constant
// extra labels. The handle is not cached across calls.
func (gv *GaugeVec) WithLabels(val string, extra ...Label) *Gauge {
	if gv == nil {
		return nil
	}
	if !gv.v.admit(val) {
		val = OverflowLabel
	}
	labels := make([]Label, 0, 1+len(extra))
	labels = append(labels, L(gv.v.key, val))
	labels = append(labels, extra...)
	return gv.r.Gauge(gv.v.name, labels...)
}

// Cardinality returns (tracked values, folded observations). Zero on nil.
func (gv *GaugeVec) Cardinality() (int, int64) {
	if gv == nil {
		return 0, 0
	}
	return gv.v.cardinality()
}

// HistogramVec is the histogram analog of CounterVec.
type HistogramVec struct {
	r *Registry
	v *vec
}

// HistogramVec returns a bounded histogram family on the registry.
func (r *Registry) HistogramVec(name, labelKey string, cap int) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r: r, v: newVec(name, labelKey, cap, func(val string) any {
		return r.Histogram(name, L(labelKey, val))
	})}
}

// With resolves the histogram for one label value.
func (hv *HistogramVec) With(val string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.v.with(val).(*Histogram)
}

// Cardinality returns (tracked values, folded observations). Zero on nil.
func (hv *HistogramVec) Cardinality() (int, int64) {
	if hv == nil {
		return 0, 0
	}
	return hv.v.cardinality()
}
