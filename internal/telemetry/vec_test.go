package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestVecCardinalityHammer storms a bounded counter family with 10k
// distinct origins from many goroutines (run under -race in CI) and proves
// the cardinality contract: at most cap tracked series plus the one
// overflow bucket, every observation accounted for, and the exposition
// bounded regardless of tenant count.
func TestVecCardinalityHammer(t *testing.T) {
	const (
		origins    = 10000
		cap        = 64
		workers    = 8
		perOrigin  = 3
		sizeBudget = 64 << 10 // 64 KiB exposition cap for the whole registry
	)
	reg := NewRegistry()
	cv := reg.CounterVec("vroom_test_origin_requests_total", "origin", cap)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < origins; i += workers {
				origin := fmt.Sprintf("tenant-%04d.example", i)
				for k := 0; k < perOrigin; k++ {
					cv.With(origin).Inc()
				}
			}
		}(w)
	}
	wg.Wait()

	tracked, overflowed := cv.Cardinality()
	if tracked != cap {
		t.Errorf("tracked cardinality = %d, want exactly cap %d", tracked, cap)
	}
	if overflowed == 0 {
		t.Error("no observations overflowed despite 10k origins against a cap of 64")
	}

	// Every observation must land somewhere: tracked series + other ==
	// origins*perOrigin.
	var total, other int64
	var series int
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "vroom_test_origin_requests_total{") {
			continue
		}
		series++
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("unparseable exposition line %q: %v", line, err)
		}
		total += v
		if strings.Contains(line, `origin="`+OverflowLabel+`"`) {
			other = v
		}
	}
	if series != cap+1 {
		t.Errorf("exposed %d series, want cap+overflow = %d", series, cap+1)
	}
	if want := int64(origins * perOrigin); total != want {
		t.Errorf("summed exposition = %d, want %d (observations lost)", total, want)
	}
	if want := int64((origins - cap) * perOrigin); other != want {
		t.Errorf("overflow bucket = %d, want %d", other, want)
	}
	if buf.Len() > sizeBudget {
		t.Errorf("exposition is %d bytes for 10k origins, budget %d", buf.Len(), sizeBudget)
	}
}

// TestVecKindsAndNil covers gauge/histogram vecs, the literal "other"
// tenant folding, and the nil no-op contract.
func TestVecKindsAndNil(t *testing.T) {
	reg := NewRegistry()
	gv := reg.GaugeVec("vroom_test_active", "origin", 2)
	gv.With("a").Set(3)
	gv.With("b").Set(4)
	gv.With("c").Set(5) // past cap -> other
	gv.With(OverflowLabel).Set(9)
	if got := reg.Gauge("vroom_test_active", L("origin", OverflowLabel)).Value(); got != 9 {
		t.Errorf("overflow gauge = %d, want 9 (last write wins)", got)
	}
	if tracked, _ := gv.Cardinality(); tracked != 2 {
		t.Errorf("gauge vec tracked = %d, want 2", tracked)
	}

	hv := reg.HistogramVec("vroom_test_lat_ms", "origin", 1)
	hv.With("a").Observe(5)
	hv.With("b").Observe(50)
	if n := reg.Histogram("vroom_test_lat_ms", L("origin", OverflowLabel)).N(); n != 1 {
		t.Errorf("overflow histogram N = %d, want 1", n)
	}

	var nilReg *Registry
	ncv := nilReg.CounterVec("x", "origin", 4)
	ncv.With("a").Inc() // must not panic
	if tracked, over := ncv.Cardinality(); tracked != 0 || over != 0 {
		t.Errorf("nil vec cardinality = %d/%d, want 0/0", tracked, over)
	}
	nilReg.GaugeVec("x", "o", 1).With("a").Set(1)
	nilReg.HistogramVec("x", "o", 1).With("a").Observe(1)
}
