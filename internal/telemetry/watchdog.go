package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog turns silent hangs into actionable dumps: it fires once if Pet is
// not called within the timeout, writing every goroutine stack — including
// pprof labels such as origin/phase set on the serving path — to the
// configured writer before the surrounding test or process deadline kills
// the run with no evidence. Progress loops (the loadgen storm, long tests)
// arm one and pet it on every unit of forward progress.
//
// A nil *Watchdog no-ops on every method, so call sites can arm one
// conditionally and pet unconditionally.
type Watchdog struct {
	name    string
	timeout time.Duration
	out     io.Writer
	onStall func()

	mu    sync.Mutex
	timer *time.Timer
	fired atomic.Bool
}

// NewWatchdog arms a watchdog that fires after timeout without a Pet.
// out defaults to os.Stderr; onStall (optional) runs after the dump is
// written — tests use it to fail the run with context. timeout <= 0
// returns nil (disabled).
func NewWatchdog(name string, timeout time.Duration, out io.Writer, onStall func()) *Watchdog {
	if timeout <= 0 {
		return nil
	}
	if out == nil {
		out = os.Stderr
	}
	w := &Watchdog{name: name, timeout: timeout, out: out, onStall: onStall}
	w.timer = time.AfterFunc(timeout, w.fire)
	return w
}

func (w *Watchdog) fire() {
	if !w.fired.CompareAndSwap(false, true) {
		return
	}
	fmt.Fprintf(w.out, "=== watchdog %q: no progress for %v; %d goroutines ===\n",
		w.name, w.timeout, runtime.NumGoroutine())
	DumpGoroutines(w.out)
	if w.onStall != nil {
		w.onStall()
	}
}

// Pet resets the countdown. Safe on nil and after Stop or a fire.
func (w *Watchdog) Pet() {
	if w == nil || w.fired.Load() {
		return
	}
	w.mu.Lock()
	if w.timer != nil {
		w.timer.Reset(w.timeout)
	}
	w.mu.Unlock()
}

// Stop disarms the watchdog and reports whether it ever fired. Safe on nil.
func (w *Watchdog) Stop() (fired bool) {
	if w == nil {
		return false
	}
	w.mu.Lock()
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	w.mu.Unlock()
	return w.fired.Load()
}

// Fired reports whether the watchdog has triggered (false on nil).
func (w *Watchdog) Fired() bool { return w != nil && w.fired.Load() }

// DumpGoroutines writes the goroutine profile twice: debug=1 (stacks
// deduplicated, with the pprof label sets — origin/phase — that attribute
// each group to a tenant) followed by debug=2 (every goroutine's full stack
// with wait reasons and durations). The runtime only renders labels in the
// debug=1 form, so both are needed to answer "whose goroutines, stuck
// where".
func DumpGoroutines(w io.Writer) {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return
	}
	fmt.Fprintln(w, "--- goroutine groups (with labels) ---")
	_ = p.WriteTo(w, 1)
	fmt.Fprintln(w, "--- full stacks ---")
	_ = p.WriteTo(w, 2)
}

// CheckGoroutineLeak waits up to `within` for the live goroutine count to
// drop back to baseline+slack, polling briefly, and returns an error naming
// the excess (with a full stack dump appended) if it never does. Tests take
// a baseline with runtime.NumGoroutine() before spawning work and call this
// in cleanup to catch leaked workers.
func CheckGoroutineLeak(baseline, slack int, within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return nil
		}
		if time.Now().After(deadline) {
			var b bytes.Buffer
			DumpGoroutines(&b)
			return fmt.Errorf("goroutine leak: %d live, baseline %d (+%d slack) after %v\n%s",
				n, baseline, slack, within, b.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
