package telemetry

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWatchdogFiresWithLabels arms a watchdog over a deliberately stalled
// labeled goroutine and asserts the dump carries the pprof labels — the
// property that makes a storm hang diagnosable per tenant.
func TestWatchdogFiresWithLabels(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go pprof.Do(context.Background(), pprof.Labels("origin", "stalled.example", "phase", "serve"), func(context.Context) {
		close(started)
		<-release
	})
	<-started

	var buf bytes.Buffer
	stalled := make(chan struct{})
	w := NewWatchdog("test-stall", 30*time.Millisecond, &buf, func() { close(stalled) })
	select {
	case <-stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired")
	}
	if !w.Fired() {
		t.Error("Fired() = false after stall callback")
	}
	dump := buf.String()
	if !strings.Contains(dump, "watchdog \"test-stall\"") {
		t.Errorf("dump missing banner:\n%s", firstLines(dump, 3))
	}
	if !strings.Contains(dump, `"stalled.example"`) || !strings.Contains(dump, "origin") {
		t.Errorf("dump does not carry pprof labels of the stalled goroutine:\n%s", firstLines(dump, 20))
	}
	if w.Stop() != true {
		t.Error("Stop() should report the watchdog fired")
	}
}

// TestWatchdogPetPreventsFire pets faster than the timeout and asserts the
// watchdog stays quiet, then checks nil safety.
func TestWatchdogPetPreventsFire(t *testing.T) {
	w := NewWatchdog("test-pet", 80*time.Millisecond, &bytes.Buffer{}, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			time.Sleep(20 * time.Millisecond)
			w.Pet()
		}
	}()
	wg.Wait()
	if w.Stop() {
		t.Error("watchdog fired despite regular petting")
	}

	var nw *Watchdog
	nw.Pet()
	if nw.Stop() || nw.Fired() {
		t.Error("nil watchdog should be inert")
	}
	if NewWatchdog("disabled", 0, nil, nil) != nil {
		t.Error("timeout <= 0 should return a nil (disabled) watchdog")
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
